// Package pac implements the Probably-Approximately-Correct learning
// direction that §6 of the qhorn paper sketches as future work: "we
// use randomly-generated membership questions to learn a query with a
// certain probability of error" (Valiant's model [20]).
//
// Unlike the exact learners of §3, the PAC learner never chooses its
// questions: it draws labeled examples from a distribution over
// objects and outputs the most-specific role-preserving hypothesis
// consistent with the positive examples —
//
//   - the minimal unfalsified universal Horn rules ∀B → h, where a
//     rule is consistent with a positive object S iff no tuple of S
//     contains B without h AND some tuple of S contains B ∪ {h} (the
//     guarantee clause, which evaluation enforces);
//   - the maximal conjunctions satisfied by every positive object,
//     computed by the classic intersect-and-maximalize generalization.
//
// Because the hypothesis is most-specific, it never misclassifies a
// training positive and errs one-sidedly on unseen objects; error
// under the training distribution decreases with the sample size, the
// behaviour experiment E14 measures. Frontier caps keep the learner
// polynomial; when a cap trims rules the hypothesis only becomes more
// general, never inconsistent with the training positives.
package pac

import (
	"math/rand"
	"sort"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// Params bounds the hypothesis search.
type Params struct {
	// MaxBodySize caps the variables per universal Horn body
	// (default 3).
	MaxBodySize int
	// MaxBodiesPerHead caps the frontier of minimal bodies kept per
	// head (default 8).
	MaxBodiesPerHead int
	// MaxConjs caps the number of candidate conjunctions carried
	// through generalization (default 64).
	MaxConjs int
}

func (p Params) normalize() Params {
	if p.MaxBodySize <= 0 {
		p.MaxBodySize = 3
	}
	if p.MaxBodiesPerHead <= 0 {
		p.MaxBodiesPerHead = 8
	}
	if p.MaxConjs <= 0 {
		p.MaxConjs = 64
	}
	return p
}

// Example is one labeled draw from the distribution.
type Example struct {
	Object   boolean.Set
	Positive bool
}

// Stats reports a PAC learning run.
type Stats struct {
	Samples   int
	Positives int
	// TrainingErrors counts training examples the hypothesis
	// misclassifies: always 0 on positives; non-zero on negatives
	// only when the caps trimmed needed rules.
	TrainingErrors int
}

// Sampler draws objects from the example distribution.
type Sampler interface {
	Sample() boolean.Set
}

// Learn draws m labeled examples (the sampler provides objects, the
// oracle labels them) and returns the most-specific hypothesis
// consistent with the positive examples.
func Learn(u boolean.Universe, o oracle.Oracle, s Sampler, m int, p Params) (query.Query, Stats) {
	examples := make([]Example, 0, m)
	for i := 0; i < m; i++ {
		obj := s.Sample()
		examples = append(examples, Example{Object: obj, Positive: o.Ask(obj)})
	}
	return LearnFromExamples(u, examples, p)
}

// LearnFromExamples builds the most-specific hypothesis from an
// explicit labeled sample.
func LearnFromExamples(u boolean.Universe, examples []Example, p Params) (query.Query, Stats) {
	p = p.normalize()
	st := Stats{Samples: len(examples)}
	var positives []boolean.Set
	for _, e := range examples {
		if e.Positive {
			positives = append(positives, e.Object)
			st.Positives++
		}
	}
	if len(positives) == 0 {
		// No positive evidence: the most-specific hypothesis rejects
		// everything. ∃x1…xn is the strictest expressible query.
		q := query.Query{U: u}
		if u.N() > 0 {
			q.Exprs = []query.Expr{query.Conjunction(u.All())}
		}
		st.TrainingErrors = countErrors(q, examples)
		return q, st
	}

	var exprs []query.Expr
	for h := 0; h < u.N(); h++ {
		for _, b := range minimalBodies(u, h, positives, p) {
			if b.IsEmpty() {
				exprs = append(exprs, query.BodylessUniversal(h))
			} else {
				exprs = append(exprs, query.UniversalHorn(b, h))
			}
		}
	}
	for _, c := range commonConjunctions(positives, p) {
		if !c.IsEmpty() {
			exprs = append(exprs, query.Conjunction(c))
		}
	}
	q := (query.Query{U: u, Exprs: exprs}).Normalize()
	st.TrainingErrors = countErrors(q, examples)
	return q, st
}

// minimalBodies searches breadth-first for the minimal bodies B such
// that the rule ∀B → h (with its guarantee clause) is consistent with
// every positive example.
func minimalBodies(u boolean.Universe, h int, positives []boolean.Set, p Params) []boolean.Tuple {
	type item struct{ body boolean.Tuple }
	var result []boolean.Tuple
	visited := map[boolean.Tuple]bool{}
	queue := []item{{0}}
	for len(queue) > 0 && len(result) < p.MaxBodiesPerHead {
		b := queue[0].body
		queue = queue[1:]
		if visited[b] {
			continue
		}
		visited[b] = true
		// Dominated by an already-found minimal body?
		dominated := false
		for _, r := range result {
			if b.Contains(r) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		// Guarantee: every positive has a tuple ⊇ B ∪ {h}. Supersets
		// of B only make this harder: prune the branch.
		need := b.With(h)
		ok := true
		for _, s := range positives {
			if !s.AnyContains(need) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Violation: a positive tuple contains B without h. Then B is
		// not a body; specialize by adding one variable the violating
		// tuple lacks.
		var violating boolean.Tuple
		violated := false
		for _, s := range positives {
			for _, t := range s.Tuples() {
				if t.Contains(b) && !t.Has(h) {
					violating, violated = t, true
					break
				}
			}
			if violated {
				break
			}
		}
		if !violated {
			result = append(result, b)
			continue
		}
		if b.Count() >= p.MaxBodySize {
			continue
		}
		for _, v := range u.Complement(violating).Without(h).Vars() {
			next := b.With(v)
			if !visited[next] {
				queue = append(queue, item{next})
			}
		}
	}
	return result
}

// commonConjunctions generalizes the positive examples to the maximal
// conjunctions every one of them satisfies.
func commonConjunctions(positives []boolean.Set, p Params) []boolean.Tuple {
	cands := append([]boolean.Tuple{}, positives[0].Tuples()...)
	cands = maximalize(cands, p.MaxConjs)
	for _, s := range positives[1:] {
		var next []boolean.Tuple
		for _, c := range cands {
			for _, t := range s.Tuples() {
				next = append(next, c.Intersect(t))
			}
		}
		cands = maximalize(next, p.MaxConjs)
	}
	return cands
}

// maximalize keeps the distinct ⊆-maximal tuples, trimming to the cap
// by popcount (largest first) if needed.
func maximalize(ts []boolean.Tuple, limit int) []boolean.Tuple {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Count() > ts[j].Count() })
	var out []boolean.Tuple
	for _, t := range ts {
		keep := true
		for _, kept := range out {
			if kept.Contains(t) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, t)
			if len(out) == limit {
				break
			}
		}
	}
	return out
}

func countErrors(q query.Query, examples []Example) int {
	errs := 0
	for _, e := range examples {
		if q.Eval(e.Object) != e.Positive {
			errs++
		}
	}
	return errs
}

// Error estimates the disagreement rate between the hypothesis and
// the target over m fresh draws from the sampler.
func Error(hypothesis, target query.Query, s Sampler, m int) float64 {
	if m <= 0 {
		return 0
	}
	wrong := 0
	for i := 0; i < m; i++ {
		obj := s.Sample()
		if hypothesis.Eval(obj) != target.Eval(obj) {
			wrong++
		}
	}
	return float64(wrong) / float64(m)
}

// BoundarySampler draws objects concentrated near a reference query's
// decision boundary: it starts from the reference's dominant
// distinguishing tuples (a canonical positive object) and applies a
// few random mutations — dropping or adding tuples and flipping
// variables — so both labels occur with substantial probability. PAC
// learning is distribution-specific; error is always measured under
// the same sampler used for training.
type BoundarySampler struct {
	U         boolean.Universe
	Reference query.Query
	Rng       *rand.Rand
	// Mutations is the number of random edits per draw (default 2).
	Mutations int

	base []boolean.Tuple
}

// NewBoundarySampler builds a sampler around the reference query.
func NewBoundarySampler(ref query.Query, rng *rand.Rand, mutations int) *BoundarySampler {
	if mutations <= 0 {
		mutations = 2
	}
	return &BoundarySampler{
		U:         ref.U,
		Reference: ref,
		Rng:       rng,
		Mutations: mutations,
		base:      ref.Normalize().DominantConjunctions(),
	}
}

// Sample implements Sampler.
func (b *BoundarySampler) Sample() boolean.Set {
	n := b.U.N()
	tuples := append([]boolean.Tuple{}, b.base...)
	if len(tuples) == 0 {
		tuples = append(tuples, b.U.All())
	}
	edits := 1 + b.Rng.Intn(b.Mutations)
	for e := 0; e < edits; e++ {
		switch b.Rng.Intn(3) {
		case 0: // flip a random variable in a random tuple
			if len(tuples) > 0 && n > 0 {
				i := b.Rng.Intn(len(tuples))
				v := b.Rng.Intn(n)
				tuples[i] ^= boolean.Tuple(1) << uint(v)
			}
		case 1: // drop a random tuple
			if len(tuples) > 1 {
				i := b.Rng.Intn(len(tuples))
				tuples = append(tuples[:i], tuples[i+1:]...)
			}
		default: // add a random tuple
			if n > 0 {
				tuples = append(tuples, boolean.Tuple(b.Rng.Int63())&b.U.All())
			}
		}
	}
	return boolean.NewSet(tuples...)
}
