package pac_test

import (
	"fmt"
	"math/rand"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/pac"
	"qhorn/internal/query"
)

func ExampleLearn() {
	u := boolean.MustUniverse(5)
	target := query.MustParse(u, "∀x1 → x2 ∃x3x4")

	// Draw 400 labeled examples near the target's decision boundary
	// and build the most-specific consistent hypothesis.
	rng := rand.New(rand.NewSource(1))
	train := pac.NewBoundarySampler(target, rng, 2)
	h, _ := pac.Learn(u, oracle.Target(target), train, 400, pac.Params{})

	test := pac.NewBoundarySampler(target, rand.New(rand.NewSource(2)), 2)
	fmt.Printf("error: %.3f\n", pac.Error(h, target, test, 2000))
	fmt.Println("exact:", h.Equivalent(target))
	// Output:
	// error: 0.000
	// exact: true
}
