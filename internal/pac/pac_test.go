package pac

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

func TestLearnFromExamplesConsistentOnPositives(t *testing.T) {
	// The hypothesis must accept every training positive, whatever
	// the sample.
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(5)
		u := boolean.MustUniverse(n)
		target := query.GenRolePreserving(rng, n, query.RPOptions{
			Heads: 1, BodiesPerHead: 1, MaxBodySize: 2, Conjs: 2, MaxConjSize: 3,
		})
		sampler := NewBoundarySampler(target, rng, 2)
		var examples []Example
		for i := 0; i < 30; i++ {
			obj := sampler.Sample()
			examples = append(examples, Example{Object: obj, Positive: target.Eval(obj)})
		}
		h, st := LearnFromExamples(u, examples, Params{})
		for _, e := range examples {
			if e.Positive && !h.Eval(e.Object) {
				t.Fatalf("hypothesis %s rejects training positive %s (target %s)",
					h, e.Object.Format(u), target)
			}
		}
		if st.Samples != len(examples) {
			t.Fatalf("stats samples = %d", st.Samples)
		}
	}
}

func TestLearnNoPositives(t *testing.T) {
	u := boolean.MustUniverse(3)
	examples := []Example{
		{Object: boolean.MustParseSet(u, "{100}"), Positive: false},
		{Object: boolean.MustParseSet(u, "{010}"), Positive: false},
	}
	h, st := LearnFromExamples(u, examples, Params{})
	if st.Positives != 0 {
		t.Fatal("positives miscounted")
	}
	for _, e := range examples {
		if h.Eval(e.Object) {
			t.Fatalf("most-specific hypothesis accepted %s", e.Object.Format(u))
		}
	}
}

func TestLearnConvergesToTarget(t *testing.T) {
	// With enough boundary samples the hypothesis agrees with the
	// target almost everywhere under the same distribution.
	rng := rand.New(rand.NewSource(82))
	u := boolean.MustUniverse(5)
	target := query.MustParse(u, "∀x1 → x2 ∃x3x4")
	train := NewBoundarySampler(target, rng, 2)
	o := oracle.Target(target)

	h, st := Learn(u, o, train, 400, Params{})
	if st.Positives == 0 {
		t.Fatal("boundary sampler produced no positives")
	}
	test := NewBoundarySampler(target, rand.New(rand.NewSource(99)), 2)
	if err := Error(h, target, test, 2000); err > 0.1 {
		t.Errorf("error after 400 samples = %.3f (hypothesis %s)", err, h)
	}
}

func TestErrorDecreasesWithSampleSize(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	u := boolean.MustUniverse(6)
	target := query.MustParse(u, "∀x1x2 → x5 ∃x3x4")
	o := oracle.Target(target)
	errAt := func(m int) float64 {
		total := 0.0
		const reps = 5
		for r := 0; r < reps; r++ {
			train := NewBoundarySampler(target, rng, 2)
			h, _ := Learn(u, o, train, m, Params{})
			test := NewBoundarySampler(target, rand.New(rand.NewSource(int64(100+r))), 2)
			total += Error(h, target, test, 1000)
		}
		return total / reps
	}
	small, large := errAt(10), errAt(300)
	if large > small {
		t.Errorf("error grew with sample size: %.3f (m=10) -> %.3f (m=300)", small, large)
	}
	if large > 0.15 {
		t.Errorf("error at m=300 still %.3f", large)
	}
}

func TestMinimalBodiesFindsTargetBody(t *testing.T) {
	// Positives drawn from ∀x1x2 → x3 must yield the body {x1,x2}
	// for head x3 (or something it dominates).
	u := boolean.MustUniverse(4)
	positives := []boolean.Set{
		boolean.MustParseSet(u, "{1110, 1000}"),
		boolean.MustParseSet(u, "{1110, 0100, 0010}"),
		boolean.MustParseSet(u, "{1111}"),
	}
	bodies := minimalBodies(u, 2, positives, Params{}.normalize())
	found := false
	for _, b := range bodies {
		if b == boolean.FromVars(0, 1) {
			found = true
		}
		// No returned body may be violated or lack its guarantee.
		for _, s := range positives {
			if !s.AnyContains(b.With(2)) {
				t.Fatalf("body %s lacks guarantee in %s", b, s.Format(u))
			}
			for _, tp := range s.Tuples() {
				if tp.Contains(b) && !tp.Has(2) {
					t.Fatalf("body %s violated by %s", b, u.Format(tp))
				}
			}
		}
	}
	if !found {
		t.Errorf("body x1x2 not found; got %v", bodies)
	}
}

func TestCommonConjunctions(t *testing.T) {
	u := boolean.MustUniverse(4)
	positives := []boolean.Set{
		boolean.MustParseSet(u, "{1110, 0001}"),
		boolean.MustParseSet(u, "{1100, 0011}"),
	}
	conjs := commonConjunctions(positives, Params{}.normalize())
	// Every positive satisfies each returned conjunction.
	for _, c := range conjs {
		for _, s := range positives {
			if !s.AnyContains(c) {
				t.Fatalf("conjunction %s unsatisfied by %s", c, s.Format(u))
			}
		}
	}
	// x1x2 is common (1110∩1100 = 1100).
	found := false
	for _, c := range conjs {
		if c.Contains(boolean.FromVars(0, 1)) {
			found = true
		}
	}
	if !found {
		t.Errorf("common conjunction x1x2 missing: %v", conjs)
	}
}

func TestMaximalize(t *testing.T) {
	ts := []boolean.Tuple{
		boolean.FromVars(0, 1, 2),
		boolean.FromVars(0, 1), // dominated
		boolean.FromVars(3),
		boolean.FromVars(0, 1, 2), // duplicate
	}
	out := maximalize(ts, 10)
	if len(out) != 2 {
		t.Fatalf("maximalize = %v", out)
	}
	capped := maximalize(ts, 1)
	if len(capped) != 1 || capped[0] != boolean.FromVars(0, 1, 2) {
		t.Fatalf("capped maximalize = %v", capped)
	}
}

func TestBoundarySamplerProducesBothLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	u := boolean.MustUniverse(5)
	target := query.MustParse(u, "∀x1 → x2 ∃x3x4")
	s := NewBoundarySampler(target, rng, 2)
	pos, neg := 0, 0
	for i := 0; i < 500; i++ {
		if target.Eval(s.Sample()) {
			pos++
		} else {
			neg++
		}
	}
	if pos < 50 || neg < 50 {
		t.Errorf("unbalanced sampler: %d positive, %d negative", pos, neg)
	}
	_ = u
}

func TestParamsNormalize(t *testing.T) {
	p := Params{}.normalize()
	if p.MaxBodySize != 3 || p.MaxBodiesPerHead != 8 || p.MaxConjs != 64 {
		t.Errorf("defaults = %+v", p)
	}
	p = Params{MaxBodySize: 2, MaxBodiesPerHead: 4, MaxConjs: 16}.normalize()
	if p.MaxBodySize != 2 || p.MaxBodiesPerHead != 4 || p.MaxConjs != 16 {
		t.Errorf("explicit params clobbered: %+v", p)
	}
}
