package revise

import (
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// TestDiffTable pins Diff's behavior at the extremes: equal queries
// (and syntactic variants of the same query) diff to nothing, while
// disjoint queries diff to a full rewrite — every expression of one
// side removed, every expression of the other added.
func TestDiffTable(t *testing.T) {
	u := boolean.MustUniverse(6)
	parse := func(s string) query.Query {
		q, err := query.Parse(u, s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return q
	}
	cases := []struct {
		name         string
		from, to     string
		wantRemoved  int
		wantAdded    int
		wantSameness string // Explain output for the no-edit cases
	}{
		{
			name: "identical queries",
			from: "Ax1 -> x2 Ex3", to: "Ax1 -> x2 Ex3",
			wantSameness: "(semantically identical)",
		},
		{
			name: "reordered expressions",
			from: "Ex3 Ax1 -> x2", to: "Ax1 -> x2 Ex3",
			wantSameness: "(semantically identical)",
		},
		{
			name: "both empty",
			from: "", to: "",
			wantSameness: "(semantically identical)",
		},
		{
			// Diff runs on normalized queries, where each Horn rule
			// also carries its entailed existential conjunct — so one
			// rule contributes two edits.
			name: "disjoint single rules",
			from: "Ax1 -> x2", to: "Ax3 -> x4",
			wantRemoved: 2, wantAdded: 2,
		},
		{
			name: "disjoint multi-rule queries",
			from: "Ax1 -> x2 Ax3 -> x4", to: "Ax5 -> x6",
			wantRemoved: 4, wantAdded: 2,
		},
		{
			name: "empty to full",
			from: "", to: "Ax1 -> x2 Ax3 -> x4",
			wantRemoved: 0, wantAdded: 4,
		},
		{
			name: "full to empty",
			from: "Ax1 -> x2 Ax3 -> x4", to: "",
			wantRemoved: 4, wantAdded: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			from, to := parse(tc.from), parse(tc.to)
			edits := Diff(from, to)
			var removed, added int
			for _, e := range edits {
				if e.Added {
					added++
				} else {
					removed++
				}
			}
			if tc.wantSameness != "" {
				if len(edits) != 0 {
					t.Fatalf("Diff(%q, %q) = %v, want no edits", tc.from, tc.to, edits)
				}
				if got := Explain(from, to); got != tc.wantSameness {
					t.Fatalf("Explain = %q, want %q", got, tc.wantSameness)
				}
				if _, ok := Witness(from, to); ok {
					t.Fatalf("Witness found a separating set for equivalent queries")
				}
				return
			}
			if removed != tc.wantRemoved || added != tc.wantAdded {
				t.Fatalf("Diff(%q, %q): %d removed, %d added; want %d/%d (edits %v)",
					tc.from, tc.to, removed, added, tc.wantRemoved, tc.wantAdded, edits)
			}
			if w, ok := Witness(from, to); !ok {
				t.Fatalf("no witness separating %q from %q", tc.from, tc.to)
			} else if from.Eval(w) == to.Eval(w) {
				t.Fatalf("witness %v does not separate the queries", w)
			}
		})
	}
}
