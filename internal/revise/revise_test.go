package revise

import (
	"math/rand"
	"strings"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

var u6 = boolean.MustUniverse(6)

func reviseTo(t *testing.T, given, intended query.Query) Result {
	t.Helper()
	res, err := Revise(given, oracle.Target(intended))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Revised.Equivalent(intended) {
		t.Fatalf("given %s, intended %s: revised to %s", given, intended, res.Revised)
	}
	return res
}

func TestReviseCorrectQueryIsCheap(t *testing.T) {
	q := query.MustParse(u6, "∀x1x4 → x5 ∃x2x3")
	res := reviseTo(t, q, q)
	if res.RepairQuestions != 0 || res.Escalated {
		t.Fatalf("correct query repaired: %+v", res)
	}
	if res.VerificationQuestions > 3*q.Normalize().Size()+5 {
		t.Fatalf("verification cost %d not O(k)", res.VerificationQuestions)
	}
}

func TestReviseSingleEdits(t *testing.T) {
	base := "∀x1x4 → x5 ∀x1x2 → x6 ∃x2x3"
	edits := []string{
		"∀x3x4 → x5 ∀x1x2 → x6 ∃x2x3",            // body changed
		"∀x1x4 → x5 ∀x1x2 → x6 ∃x2x3 ∃x3x4",      // conjunction added
		"∀x1x4 → x5 ∀x1x2 → x6 ∃x2",              // conjunction shrunk
		"∀x1x4 → x5 ∀x1x2 → x6 ∀x3 ∃x2x3",        // head added
		"∀x1x2 → x6 ∃x2x3",                       // expression dropped
		"∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x2x3", // body added (θ+1)
	}
	given := query.MustParse(u6, base)
	for _, e := range edits {
		intended := query.MustParse(u6, e)
		reviseTo(t, given, intended)
		// And the reverse direction.
		reviseTo(t, intended, given)
	}
}

func TestReviseRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	gen := func(n int) query.Query {
		return query.GenRolePreserving(rng, n, query.RPOptions{
			Heads:         rng.Intn(n / 2),
			BodiesPerHead: 1 + rng.Intn(2),
			MaxBodySize:   1 + rng.Intn(3),
			Conjs:         rng.Intn(3),
			MaxConjSize:   1 + rng.Intn(n),
		})
	}
	for i := 0; i < 120; i++ {
		n := 4 + rng.Intn(7)
		_ = n
		given, intended := gen(n), gen(n)
		reviseTo(t, given, intended)
	}
}

// TestReviseExhaustiveTwoVars revises every ordered pair of
// two-variable role-preserving queries.
func TestReviseExhaustiveTwoVars(t *testing.T) {
	u := boolean.MustUniverse(2)
	queries := query.AllQueries(u)
	for _, given := range queries {
		for _, intended := range queries {
			reviseTo(t, given, intended)
		}
	}
}

// TestReviseCheaperThanLearningWhenClose: a single-edit revision asks
// fewer questions than learning the intended query from scratch.
func TestReviseCheaperThanLearningWhenClose(t *testing.T) {
	u := boolean.MustUniverse(10)
	given := query.MustParse(u, "∀x1x2 → x9 ∀x3x4 → x10 ∃x5x6 ∃x7x8")
	intended := query.MustParse(u, "∀x1x2 → x9 ∀x3x4 → x10 ∃x5x6 ∃x7x8 ∃x5x7")

	res := reviseTo(t, given, intended)

	c := oracle.Count(oracle.Target(intended))
	learn.RolePreserving(u, c)
	if res.Questions() >= c.Questions {
		t.Errorf("revision cost %d not below learning cost %d", res.Questions(), c.Questions)
	}
	if res.Escalated {
		t.Error("single conjunction edit escalated to full learning")
	}
}

func TestReviseRejectsNonRolePreserving(t *testing.T) {
	bad := query.MustParse(u6, "∀x1x4 → x5 ∀x2x3x5 → x6")
	if _, err := Revise(bad, oracle.Target(bad)); err == nil {
		t.Fatal("non-role-preserving query accepted")
	}
}

func TestDistance(t *testing.T) {
	a := query.MustParse(u6, "∀x1x4 → x5 ∃x2x3")
	if Distance(a, a) != 0 {
		t.Error("self-distance nonzero")
	}
	// Equivalent queries are at distance 0 even with different syntax.
	b := query.MustParse(u6, "∀x1x4 → x5 ∃x2x3 ∃x1x4x5")
	if got := Distance(a, b); got != 0 {
		t.Errorf("equivalent distance = %d", got)
	}
	// One changed conjunction moves two tuples (one out, one in).
	c := query.MustParse(u6, "∀x1x4 → x5 ∃x2x3x4")
	if got := Distance(a, c); got != 2 {
		t.Errorf("conjunction edit distance = %d, want 2", got)
	}
	// One added universal expression moves its distinguishing tuple
	// and possibly the conjunction closures.
	d := query.MustParse(u6, "∀x1x4 → x5 ∀x2 → x6 ∃x2x3")
	if Distance(a, d) == 0 {
		t.Error("added universal not reflected in distance")
	}
	if Distance(a, d) != Distance(d, a) {
		t.Error("distance not symmetric")
	}
}

// TestDistanceCorrelatesWithEquivalence: distance 0 iff equivalent,
// over all two-variable pairs.
func TestDistanceCorrelatesWithEquivalence(t *testing.T) {
	u := boolean.MustUniverse(2)
	queries := query.AllQueries(u)
	for _, a := range queries {
		for _, b := range queries {
			zero := Distance(a, b) == 0
			if zero != a.Equivalent(b) {
				t.Fatalf("Distance(%s, %s)=0 is %v but Equivalent=%v", a, b, zero, a.Equivalent(b))
			}
		}
	}
}

// TestReviseExhaustiveThreeVars revises every ordered pair of
// three-variable role-preserving queries (83 × 83 = 6889 revisions).
func TestReviseExhaustiveThreeVars(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive pair revision on 3 variables")
	}
	u := boolean.MustUniverse(3)
	queries := query.AllQueries(u)
	for _, given := range queries {
		for _, intended := range queries {
			reviseTo(t, given, intended)
		}
	}
}

func TestDiffAndExplain(t *testing.T) {
	a := query.MustParse(u6, "∀x1x4 → x5 ∃x2x3")
	b := query.MustParse(u6, "∀x3x4 → x5 ∃x2x3 ∃x1x6")
	edits := Diff(a, b)
	if len(edits) != Distance(a, b) {
		t.Fatalf("|Diff| = %d, Distance = %d", len(edits), Distance(a, b))
	}
	var added, removed int
	for _, e := range edits {
		if e.Added {
			added++
		} else {
			removed++
		}
	}
	if added == 0 || removed == 0 {
		t.Fatalf("edits = %v", edits)
	}
	text := Explain(a, b)
	if !strings.Contains(text, "+") || !strings.Contains(text, "−") {
		t.Fatalf("Explain = %q", text)
	}
	if got := Explain(a, a); got != "(semantically identical)" {
		t.Fatalf("self-Explain = %q", got)
	}
	// Equivalent-but-syntactically-different queries have empty diff.
	c := query.MustParse(u6, "∀x1x4 → x5 ∃x2x3 ∃x1x4x5")
	if len(Diff(a, c)) != 0 {
		t.Fatalf("equivalent diff = %v", Diff(a, c))
	}
}

func TestWitness(t *testing.T) {
	a := query.MustParse(u6, "∀x1x4 → x5 ∃x2x3")
	b := query.MustParse(u6, "∀x3x4 → x5 ∃x2x3")
	obj, ok := Witness(a, b)
	if !ok {
		t.Fatal("no witness for different queries")
	}
	if a.Eval(obj) == b.Eval(obj) {
		t.Fatalf("witness %v does not separate", obj.Tuples())
	}
	if _, ok := Witness(a, a); ok {
		t.Fatal("witness for equivalent queries")
	}
}

// TestWitnessExhaustiveTwoVars: every inequivalent two-variable pair
// has a witness.
func TestWitnessExhaustiveTwoVars(t *testing.T) {
	u := boolean.MustUniverse(2)
	queries := query.AllQueries(u)
	for _, a := range queries {
		for _, b := range queries {
			obj, ok := Witness(a, b)
			if ok == a.Equivalent(b) {
				t.Fatalf("Witness(%s, %s) ok=%v", a, b, ok)
			}
			if ok && a.Eval(obj) == b.Eval(obj) {
				t.Fatalf("bad witness for (%s, %s)", a, b)
			}
		}
	}
}
