// Package revise implements query revision, the direction §6 of the
// qhorn paper sketches as future work: "Given a query which is close
// to the user's intended query, our goal is to determine the intended
// query through few membership questions."
//
// The algorithm combines the paper's two machines. It first runs the
// O(k)-question verification set of §4 against the user (free when
// the query is already right). Each disagreement carries structured
// attribution — which universal head or which conjunction it probes —
// so the repair step re-runs only the affected sub-learners of §3.2:
// the per-head body search for implicated heads, and the existential
// lattice descent when conjunctions disagree. When the disagreements
// implicate the head set itself (A4, or an N2 the user accepts), the
// scope widens to a full head re-classification. A final verification
// pass confirms the result; if anything still disagrees — possible
// only when the attribution under-approximated the damage — the
// algorithm escalates to the full learner, so Revise is never worse
// than learning from scratch plus O(k) verification questions, and is
// far cheaper when the edit distance is small.
//
// The paper also proposes the natural distance measure — the
// symmetric difference between the queries' distinguishing tuples on
// the Boolean lattice — which Distance implements; the E13 experiment
// plots questions against it.
package revise

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
	"qhorn/internal/verify"
)

// Result reports a revision run.
type Result struct {
	// Revised is the corrected query, semantically equivalent to the
	// user's intended query.
	Revised query.Query
	// VerificationQuestions counts the questions spent on the
	// verification passes.
	VerificationQuestions int
	// RepairQuestions counts the questions spent re-learning parts.
	RepairQuestions int
	// Escalated reports whether the targeted repair was insufficient
	// and the full learner ran.
	Escalated bool
}

// Questions returns the total number of membership questions asked.
func (r Result) Questions() int { return r.VerificationQuestions + r.RepairQuestions }

// Revise corrects the given role-preserving query to match the user's
// intent. Against an oracle backed by a role-preserving query, the
// result is exact. Question cost is O(k) when the query is already
// correct, proportional to the damaged region for local edits, and at
// worst one full learning run plus two verification passes.
func Revise(given query.Query, o oracle.Oracle) (Result, error) {
	if !given.IsRolePreserving() {
		return Result{}, fmt.Errorf("revise: query %s is not role-preserving", given)
	}
	res := Result{}
	u := given.U

	// Memoize so questions repeated across passes are counted once
	// and never re-asked of the user. The memo comes from the engine's
	// wrapper assembly; the counter deliberately sits below it — it
	// counts what actually reaches the user, not what the passes ask —
	// which is the inverse of the engine's run-facing Counter, so it is
	// not a run.WithCounter.
	counter := oracle.Count(o)
	memo := run.New(run.WithMemo()).Assemble(counter).Oracle

	current := given.Normalize()
	vres, err := runVerification(current, memo)
	if err != nil {
		return Result{}, err
	}
	res.VerificationQuestions = counter.Questions
	if vres.Correct {
		res.Revised = current
		return res, nil
	}

	// Targeted repair.
	before := counter.Questions
	current = repair(u, memo, current, vres)
	res.RepairQuestions += counter.Questions - before

	// Confirm; escalate to the full learner if anything still
	// disagrees.
	before = counter.Questions
	vres, err = runVerification(current, memo)
	if err != nil {
		return Result{}, err
	}
	res.VerificationQuestions += counter.Questions - before
	if !vres.Correct {
		res.Escalated = true
		before = counter.Questions
		current, _ = learn.RolePreserving(u, memo)
		res.RepairQuestions += counter.Questions - before
	}
	res.Revised = current
	return res, nil
}

// runVerification builds and runs the verification set of q.
func runVerification(q query.Query, o oracle.Oracle) (verify.Result, error) {
	vs, err := verify.Build(q)
	if err != nil {
		return verify.Result{}, err
	}
	return vs.Run(o), nil
}

// repair rebuilds the parts of current implicated by the verification
// disagreements.
func repair(u boolean.Universe, o oracle.Oracle, current query.Query, vres verify.Result) query.Query {
	// Classify the damage.
	headsSuspect := false        // the head set itself may be wrong
	conjSuspect := false         // the conjunctions may be wrong
	implicated := map[int]bool{} // heads whose bodies may be wrong
	for _, d := range vres.Disagreements {
		switch d.Question.Kind {
		case verify.A4:
			headsSuspect = true
		case verify.N2:
			// The user accepts a universal distinguishing tuple:
			// either the body is a strict superset in her query or h
			// is not a head at all.
			headsSuspect = true
			implicated[d.Question.Head] = true
		case verify.A2, verify.A3:
			implicated[d.Question.Head] = true
		case verify.A1, verify.N1:
			conjSuspect = true
		}
	}

	headSet := current.UniversalHeads()
	if headsSuspect {
		newHeads := learn.ClassifyHeads(u, o)
		if newHeads != headSet {
			// Heads changed: every body may be stale (the lattice of
			// every head pins the other heads).
			headSet = newHeads
			implicated = map[int]bool{}
			for _, h := range headSet.Vars() {
				implicated[h] = true
			}
			conjSuspect = true
		}
	}

	// Rebuild universal expressions: keep bodies of untouched heads,
	// re-learn implicated ones.
	var universals []query.Expr
	for _, h := range headSet.Vars() {
		if !implicated[h] {
			for _, e := range current.DominantUniversals() {
				if e.Head == h {
					universals = append(universals, e)
				}
			}
			continue
		}
		conjSuspect = true // closures depend on the universal part
		for _, b := range learn.LearnBodies(u, o, h, headSet) {
			if b.IsEmpty() {
				universals = append(universals, query.BodylessUniversal(h))
			} else {
				universals = append(universals, query.UniversalHorn(b, h))
			}
		}
	}

	// Rebuild conjunctions if implicated, else keep them.
	var exprs []query.Expr
	exprs = append(exprs, universals...)
	if conjSuspect {
		for _, c := range learn.LearnConjunctions(u, o, universals) {
			if !c.IsEmpty() {
				exprs = append(exprs, query.Conjunction(c))
			}
		}
	} else {
		for _, c := range current.DominantConjunctions() {
			exprs = append(exprs, query.Conjunction(c))
		}
	}
	return (query.Query{U: u, Exprs: exprs}).Normalize()
}

// Distance is the paper's suggested closeness measure between two
// role-preserving queries: the size of the symmetric difference
// between their sets of universal and existential distinguishing
// tuples (§6). Equivalent queries are at distance 0.
func Distance(a, b query.Query) int {
	d := 0
	d += symDiff(universalTuples(a), universalTuples(b))
	d += symDiff(conjTuples(a), conjTuples(b))
	return d
}

// headTuple keys a universal distinguishing tuple by the head it
// belongs to: two bodyless heads share the tuple but distinguish
// different expressions.
type headTuple struct {
	head  int
	tuple boolean.Tuple
}

func universalTuples(q query.Query) map[headTuple]bool {
	nf := q.Normalize()
	out := map[headTuple]bool{}
	for _, e := range nf.DominantUniversals() {
		out[headTuple{e.Head, nf.UniversalDistinguishingTuple(e)}] = true
	}
	return out
}

func conjTuples(q query.Query) map[headTuple]bool {
	nf := q.Normalize()
	out := map[headTuple]bool{}
	for _, c := range nf.DominantConjunctions() {
		out[headTuple{-1, c}] = true
	}
	return out
}

func symDiff(a, b map[headTuple]bool) int {
	d := 0
	for t := range a {
		if !b[t] {
			d++
		}
	}
	for t := range b {
		if !a[t] {
			d++
		}
	}
	return d
}
