package revise_test

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/revise"
)

func ExampleRevise() {
	u := boolean.MustUniverse(6)
	// The user wrote a query one conjunction away from her intent.
	given := query.MustParse(u, "∀x1x4 → x5 ∃x2x3")
	intended := query.MustParse(u, "∀x1x4 → x5 ∃x2x3 ∃x2x6")

	res, err := revise.Revise(given, oracle.Target(intended))
	if err != nil {
		panic(err)
	}
	fmt.Println("exact:", res.Revised.Equivalent(intended))
	fmt.Println("escalated:", res.Escalated)
	fmt.Println(revise.Explain(given, res.Revised))
	// Output:
	// exact: true
	// escalated: false
	// + ∃x2x6
}

func ExampleDistance() {
	u := boolean.MustUniverse(6)
	a := query.MustParse(u, "∀x1x4 → x5 ∃x2x3")
	b := query.MustParse(u, "∀x1x4 → x5 ∃x2x3x4")
	fmt.Println(revise.Distance(a, a))
	fmt.Println(revise.Distance(a, b))
	// Output:
	// 0
	// 2
}
