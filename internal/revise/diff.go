package revise

import (
	"sort"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
	"qhorn/internal/verify"
)

// Edit is one semantic difference between two queries, expressed over
// their normal forms.
type Edit struct {
	// Added is true when the expression exists in the second query
	// but not the first.
	Added bool
	// Expr is the differing expression (a dominant universal Horn
	// rule or a dominant conjunction).
	Expr query.Expr
}

// String renders the edit with a +/− prefix.
func (e Edit) String() string {
	sign := "−"
	if e.Added {
		sign = "+"
	}
	return sign + " " + e.Expr.String()
}

// Diff lists the semantic differences between two role-preserving
// queries as expression-level edits on their normal forms: the
// explanation a query interface shows next to a revision. An empty
// diff means the queries are equivalent, and len(Diff) == Distance.
func Diff(from, to query.Query) []Edit {
	var out []Edit
	fu, tu := universalTuples(from), universalTuples(to)
	nfFrom, nfTo := from.Normalize(), to.Normalize()
	for _, e := range nfFrom.DominantUniversals() {
		if !tu[headTuple{e.Head, nfFrom.UniversalDistinguishingTuple(e)}] {
			out = append(out, Edit{Added: false, Expr: e})
		}
	}
	for _, e := range nfTo.DominantUniversals() {
		if !fu[headTuple{e.Head, nfTo.UniversalDistinguishingTuple(e)}] {
			out = append(out, Edit{Added: true, Expr: e})
		}
	}
	fc, tc := conjTuples(from), conjTuples(to)
	var conjEdits []Edit
	for c := range fc {
		if !tc[c] {
			conjEdits = append(conjEdits, Edit{Added: false, Expr: query.Conjunction(c.tuple)})
		}
	}
	for c := range tc {
		if !fc[c] {
			conjEdits = append(conjEdits, Edit{Added: true, Expr: query.Conjunction(c.tuple)})
		}
	}
	sort.Slice(conjEdits, func(i, j int) bool {
		a, b := conjEdits[i], conjEdits[j]
		if a.Added != b.Added {
			return !a.Added
		}
		return a.Expr.Body < b.Expr.Body
	})
	return append(out, conjEdits...)
}

// Explain renders a diff as one line per edit, for CLIs.
func Explain(from, to query.Query) string {
	edits := Diff(from, to)
	if len(edits) == 0 {
		return "(semantically identical)"
	}
	s := ""
	for i, e := range edits {
		if i > 0 {
			s += "\n"
		}
		s += e.String()
	}
	return s
}

// Witness returns, for two inequivalent role-preserving queries, one
// object they classify differently — the concrete example a query
// interface shows the user alongside the Diff. By Theorem 4.2 the
// verification set of either query contains such an object whenever
// the queries differ; ok is false only for equivalent queries.
func Witness(a, b query.Query) (boolean.Set, bool) {
	if a.Equivalent(b) {
		return boolean.Set{}, false
	}
	for _, q := range []query.Query{a, b} {
		vs, err := verify.Build(q)
		if err != nil {
			continue
		}
		for _, question := range vs.Questions {
			if a.Eval(question.Set) != b.Eval(question.Set) {
				return question.Set, true
			}
		}
	}
	return boolean.Set{}, false
}
