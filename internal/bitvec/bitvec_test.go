package bitvec

import (
	"math/rand"
	"testing"
)

func TestWords(t *testing.T) {
	cases := []struct{ nbits, want int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {4096, 64},
	}
	for _, c := range cases {
		if got := Words(c.nbits); got != c.want {
			t.Errorf("Words(%d) = %d, want %d", c.nbits, got, c.want)
		}
	}
}

func TestFull(t *testing.T) {
	if Full(0) != nil || Full(-3) != nil {
		t.Fatal("Full of non-positive nbits should be nil")
	}
	for _, nbits := range []int{1, 7, 63, 64, 65, 100, 128, 200} {
		v := Full(nbits)
		if len(v) != Words(nbits) {
			t.Fatalf("Full(%d): %d words, want %d", nbits, len(v), Words(nbits))
		}
		if Count(v) != nbits {
			t.Errorf("Full(%d): count %d", nbits, Count(v))
		}
		for i := 0; i < nbits; i++ {
			if !Get(v, i) {
				t.Fatalf("Full(%d): bit %d clear", nbits, i)
			}
		}
		// Trailing bits beyond nbits must be clear.
		for i := nbits; i < 64*len(v); i++ {
			if Get(v, i) {
				t.Fatalf("Full(%d): trailing bit %d set", nbits, i)
			}
		}
	}
}

func TestGetSetCount(t *testing.T) {
	v := make([]uint64, 3)
	idx := []int{0, 1, 63, 64, 100, 191}
	for _, i := range idx {
		Set(v, i)
	}
	if Count(v) != len(idx) {
		t.Fatalf("count %d, want %d", Count(v), len(idx))
	}
	want := map[int]bool{}
	for _, i := range idx {
		want[i] = true
	}
	for i := 0; i < 192; i++ {
		if Get(v, i) != want[i] {
			t.Errorf("bit %d = %v, want %v", i, Get(v, i), want[i])
		}
	}
}

func TestWordOps(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		nw := 1 + rng.Intn(6)
		a := make([]uint64, nw)
		b := make([]uint64, nw)
		for w := range a {
			a[w], b[w] = rng.Uint64(), rng.Uint64()
		}

		// Reference popcount(a & b) bit by bit.
		want := 0
		for i := 0; i < 64*nw; i++ {
			if Get(a, i) && Get(b, i) {
				want++
			}
		}
		if got := AndCount(a, b); got != want {
			t.Fatalf("AndCount = %d, want %d", got, want)
		}

		and := append([]uint64{}, a...)
		AndInto(and, b)
		andNot := append([]uint64{}, a...)
		AndNotInto(andNot, b)
		for i := 0; i < 64*nw; i++ {
			if Get(and, i) != (Get(a, i) && Get(b, i)) {
				t.Fatalf("AndInto bit %d wrong", i)
			}
			if Get(andNot, i) != (Get(a, i) && !Get(b, i)) {
				t.Fatalf("AndNotInto bit %d wrong", i)
			}
		}
		if Count(and) != want {
			t.Fatalf("AndInto count %d, want %d", Count(and), want)
		}

		if !Equal(a, a) {
			t.Fatal("Equal(a, a) false")
		}
		c := append([]uint64{}, a...)
		flip := rng.Intn(64 * nw)
		c[flip>>6] ^= 1 << (uint(flip) & 63)
		if Equal(a, c) {
			t.Fatal("Equal true after flipping a bit")
		}
	}
}

func TestFirstBit(t *testing.T) {
	if FirstBit(make([]uint64, 4)) != 0 {
		t.Fatal("FirstBit of empty vector should be 0")
	}
	for _, i := range []int{0, 1, 17, 63, 64, 130, 255} {
		v := make([]uint64, 4)
		Set(v, i)
		Set(v, 255) // a later bit never wins
		if got := FirstBit(v); got != i {
			t.Errorf("FirstBit with lowest %d = %d", i, got)
		}
	}
}

// randomWords builds an nbits-bit vector with the given approximate
// set-bit density, trailing bits clear.
func randomWords(rng *rand.Rand, nbits int, density float64) []uint64 {
	v := make([]uint64, Words(nbits))
	for i := 0; i < nbits; i++ {
		if rng.Float64() < density {
			Set(v, i)
		}
	}
	return v
}

func TestRowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Densities chosen to hit all three container kinds: sparse →
	// array, dense random → bitmap, all-set/clustered → runs.
	for _, density := range []float64{0, 0.001, 0.01, 0.2, 0.5, 0.95, 1} {
		for _, nbits := range []int{1, 64, 100, 4096, 5000, 12288, 20000} {
			words := randomWords(rng, nbits, density)
			row := Compress(words, nbits)
			if row.Len() != nbits {
				t.Fatalf("Len = %d, want %d", row.Len(), nbits)
			}
			if row.Count() != Count(words) {
				t.Fatalf("density %v nbits %d: Count = %d, want %d", density, nbits, row.Count(), Count(words))
			}
			if back := row.Words(); !Equal(back, words) {
				t.Fatalf("density %v nbits %d: Words round trip mismatch", density, nbits)
			}
			for _, i := range []int{0, 1, nbits / 3, nbits / 2, nbits - 1} {
				if row.Bit(i) != Get(words, i) {
					t.Fatalf("density %v nbits %d: Bit(%d) = %v", density, nbits, i, row.Bit(i))
				}
			}
		}
	}
}

func TestRowContainerKinds(t *testing.T) {
	// A handful of set bits → array containers.
	nbits := 8192
	sparse := make([]uint64, Words(nbits))
	for _, i := range []int{3, 500, 4100, 8000} {
		Set(sparse, i)
	}
	if r := Compress(sparse, nbits); len(r.chunks) != 2 || r.chunks[0].kind != kindArray {
		t.Fatalf("sparse row: chunks %d kind %d, want 2 array chunks", len(r.chunks), r.chunks[0].kind)
	}

	// Every bit set → one run per chunk.
	full := Full(nbits)
	rf := Compress(full, nbits)
	for _, c := range rf.chunks {
		if c.kind != kindRuns {
			t.Fatalf("full row chunk kind %d, want runs", c.kind)
		}
	}
	if rf.SizeBytes() >= len(full)*8 {
		t.Fatalf("full row should compress: %d >= %d", rf.SizeBytes(), len(full)*8)
	}

	// Dense alternating bits (0101…) → bitmap (runs and array both
	// cost more than 512 bytes per chunk).
	alt := make([]uint64, Words(nbits))
	for i := 0; i < nbits; i += 2 {
		Set(alt, i)
	}
	ra := Compress(alt, nbits)
	for _, c := range ra.chunks {
		if c.kind != kindBitmap {
			t.Fatalf("alternating row chunk kind %d, want bitmap", c.kind)
		}
	}

	// Empty chunks are omitted entirely.
	gap := make([]uint64, Words(3*chunkBits))
	Set(gap, 10)
	Set(gap, 2*chunkBits+5)
	if r := Compress(gap, 3*chunkBits); len(r.chunks) != 2 || r.chunks[0].key != 0 || r.chunks[1].key != 2 {
		t.Fatalf("gap row: got %d chunks", len(r.chunks))
	}
}

func TestRowEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, density := range []float64{0.01, 0.5, 0.98} {
		nbits := 6000
		words := randomWords(rng, nbits, density)
		a, b := Compress(words, nbits), Compress(words, nbits)
		if !a.Equal(b) {
			t.Fatalf("identical rows not Equal at density %v", density)
		}
		flip := rng.Intn(nbits)
		words[flip>>6] ^= 1 << (uint(flip) & 63)
		c := Compress(words, nbits)
		if a.Equal(c) {
			t.Fatalf("rows differing at bit %d Equal", flip)
		}
	}
}

func TestRowOpsAgainstWords(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		nbits := 1 + rng.Intn(10000)
		rowDensity := []float64{0.005, 0.3, 0.97}[trial%3]
		rowWords := randomWords(rng, nbits, rowDensity)
		row := Compress(rowWords, nbits)
		v := randomWords(rng, nbits, 0.5)

		if got, want := row.AndCount(v), AndCount(rowWords, v); got != want {
			t.Fatalf("trial %d: AndCount = %d, want %d", trial, got, want)
		}

		and := append([]uint64{}, v...)
		row.AndInto(and)
		wantAnd := append([]uint64{}, v...)
		AndInto(wantAnd, rowWords)
		if !Equal(and, wantAnd) {
			t.Fatalf("trial %d: AndInto mismatch", trial)
		}

		andNot := append([]uint64{}, v...)
		row.AndNotInto(andNot)
		wantNot := append([]uint64{}, v...)
		AndNotInto(wantNot, rowWords)
		if !Equal(andNot, wantNot) {
			t.Fatalf("trial %d: AndNotInto mismatch", trial)
		}
	}
}

func TestRowBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var buf []byte
	var rows []Row
	for _, density := range []float64{0, 0.002, 0.4, 1} {
		nbits := 300 + rng.Intn(9000)
		row := Compress(randomWords(rng, nbits, density), nbits)
		rows = append(rows, row)
		buf = row.AppendBinary(buf)
	}
	// Decode the concatenated stream back.
	pos := 0
	for i, want := range rows {
		got, n, err := DecodeRow(buf[pos:])
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		pos += n
		if !got.Equal(want) {
			t.Fatalf("row %d: decode mismatch", i)
		}
	}
	if pos != len(buf) {
		t.Fatalf("decoded %d of %d bytes", pos, len(buf))
	}
}

func TestDecodeRowErrors(t *testing.T) {
	row := Compress(randomWords(rand.New(rand.NewSource(23)), 5000, 0.3), 5000)
	enc := row.AppendBinary(nil)
	// Every proper prefix must fail cleanly, not panic or succeed.
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeRow(enc[:cut]); err == nil {
			t.Fatalf("DecodeRow of %d-byte prefix succeeded", cut)
		}
	}
	// Unknown container kind.
	bad := append([]byte{}, enc...)
	bad[3] = 0xee // first chunk's kind byte (nbits uvarint is 2 bytes here, nchunks 1, key 1)
	if _, _, err := DecodeRow(bad); err == nil {
		t.Fatal("DecodeRow accepted unknown container kind")
	}
}

func TestCompressPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compress accepted a mis-sized word slice")
		}
	}()
	Compress(make([]uint64, 3), 64)
}

func BenchmarkAndCount(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	nbits := 65536
	x := randomWords(rng, nbits, 0.5)
	y := randomWords(rng, nbits, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndCount(x, y)
	}
}

func BenchmarkRowAndCount(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	nbits := 65536
	v := randomWords(rng, nbits, 0.5)
	for _, bench := range []struct {
		name    string
		density float64
	}{
		{"sparse", 0.002},
		{"dense", 0.5},
		{"runs", 0.999},
	} {
		row := Compress(randomWords(rng, nbits, bench.density), nbits)
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				row.AndCount(v)
			}
		})
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	nbits := 65536
	words := randomWords(rng, nbits, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(words, nbits)
	}
}
