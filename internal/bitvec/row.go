package bitvec

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// Row is an immutable compressed bitset in the roaring style: the bit
// space is cut into 4096-bit chunks, empty chunks are omitted, and
// each populated chunk stores its bits in whichever of three container
// forms is smallest — a sorted array of 16-bit offsets (sparse), a
// plain 64-word bitmap (dense), or a list of [start,end] runs
// (clustered). The choice is deterministic, so two Rows over the same
// bits are structurally equal and Equal can compare containers
// directly.
//
// Rows are the at-rest form of the brute answer matrix's
// question-major rows: the elimination working set stays a plain
// []uint64, and a Row ANDs into it (AndInto/AndNotInto) or counts
// against it (AndCount) without decompressing more than one chunk of
// scratch at a time. The binary encoding (AppendBinary/DecodeRow) is
// what MatrixOnDisk spills.
type Row struct {
	nbits  int
	chunks []chunk
}

// Chunk geometry: 4096 bits = 64 words per chunk keeps array offsets
// and run bounds in uint16 and the materialization scratch on the
// stack.
const (
	chunkBits  = 4096
	chunkWords = chunkBits / 64
)

// Container kinds, in canonical tie-break order: among equal encoded
// sizes runs win, then array, then bitmap.
const (
	kindRuns uint8 = iota
	kindArray
	kindBitmap
)

// chunk is one populated 4096-bit span of a Row.
type chunk struct {
	key  uint32 // chunk index: bits [key·4096, (key+1)·4096)
	kind uint8
	card int32    // cardinality, cached for Count
	arr  []uint16 // kindArray: sorted bit offsets within the chunk
	bm   []uint64 // kindBitmap: chunkWords words
	runs []uint16 // kindRuns: flat [start0, end0, start1, end1, …], inclusive
}

// Compress builds the canonical compressed form of the first nbits
// bits of words. Bits at or above nbits must be clear (Full-style
// trailing-word hygiene); len(words) must be Words(nbits).
func Compress(words []uint64, nbits int) Row {
	if len(words) != Words(nbits) {
		panic(fmt.Sprintf("bitvec: Compress: %d words for %d bits, want %d", len(words), nbits, Words(nbits)))
	}
	r := Row{nbits: nbits}
	var offs []uint16
	for base := 0; base < len(words); base += chunkWords {
		end := base + chunkWords
		if end > len(words) {
			end = len(words)
		}
		offs = offs[:0]
		for w := base; w < end; w++ {
			word := words[w]
			for word != 0 {
				offs = append(offs, uint16((w-base)<<6+bits.TrailingZeros64(word)))
				word &= word - 1
			}
		}
		if len(offs) == 0 {
			continue
		}
		r.chunks = append(r.chunks, buildChunk(uint32(base/chunkWords), offs))
	}
	return r
}

// buildChunk picks the smallest container for the sorted offsets.
func buildChunk(key uint32, offs []uint16) chunk {
	c := chunk{key: key, card: int32(len(offs))}
	// Count runs of consecutive offsets.
	nruns := 1
	for i := 1; i < len(offs); i++ {
		if offs[i] != offs[i-1]+1 {
			nruns++
		}
	}
	runBytes, arrBytes, bmBytes := 4*nruns, 2*len(offs), 8*chunkWords
	switch {
	case runBytes <= arrBytes && runBytes <= bmBytes:
		c.kind = kindRuns
		c.runs = make([]uint16, 0, 2*nruns)
		start := offs[0]
		for i := 1; i <= len(offs); i++ {
			if i == len(offs) || offs[i] != offs[i-1]+1 {
				c.runs = append(c.runs, start, offs[i-1])
				if i < len(offs) {
					start = offs[i]
				}
			}
		}
	case arrBytes <= bmBytes:
		c.kind = kindArray
		c.arr = append([]uint16{}, offs...)
	default:
		c.kind = kindBitmap
		c.bm = make([]uint64, chunkWords)
		for _, o := range offs {
			c.bm[o>>6] |= 1 << (uint(o) & 63)
		}
	}
	return c
}

// materialize expands the chunk into buf (zeroing it first).
func (c *chunk) materialize(buf *[chunkWords]uint64) {
	*buf = [chunkWords]uint64{}
	switch c.kind {
	case kindArray:
		for _, o := range c.arr {
			buf[o>>6] |= 1 << (uint(o) & 63)
		}
	case kindBitmap:
		copy(buf[:], c.bm)
	default:
		for i := 0; i < len(c.runs); i += 2 {
			setRange(buf[:], int(c.runs[i]), int(c.runs[i+1]))
		}
	}
}

// setRange sets bits [start, end] (inclusive) of words.
func setRange(words []uint64, start, end int) {
	for w := start >> 6; w <= end>>6; w++ {
		mask := ^uint64(0)
		if w == start>>6 {
			mask &= ^uint64(0) << (uint(start) & 63)
		}
		if w == end>>6 {
			mask &= ^uint64(0) >> (63 - uint(end)&63)
		}
		words[w] |= mask
	}
}

// Len returns the logical bit length the row was compressed from.
func (r Row) Len() int { return r.nbits }

// Count returns the number of set bits.
func (r Row) Count() int {
	n := 0
	for i := range r.chunks {
		n += int(r.chunks[i].card)
	}
	return n
}

// Bit reports bit i.
func (r Row) Bit(i int) bool {
	key := uint32(i / chunkBits)
	idx := sort.Search(len(r.chunks), func(j int) bool { return r.chunks[j].key >= key })
	if idx == len(r.chunks) || r.chunks[idx].key != key {
		return false
	}
	c := &r.chunks[idx]
	off := uint16(i % chunkBits)
	switch c.kind {
	case kindArray:
		j := sort.Search(len(c.arr), func(k int) bool { return c.arr[k] >= off })
		return j < len(c.arr) && c.arr[j] == off
	case kindBitmap:
		return c.bm[off>>6]&(1<<(uint(off)&63)) != 0
	default:
		for i := 0; i < len(c.runs); i += 2 {
			if off >= c.runs[i] && off <= c.runs[i+1] {
				return true
			}
		}
		return false
	}
}

// Words decompresses the row into a fresh word slice of Words(Len())
// words.
func (r Row) Words() []uint64 {
	out := make([]uint64, Words(r.nbits))
	var scratch [chunkWords]uint64
	for i := range r.chunks {
		c := &r.chunks[i]
		c.materialize(&scratch)
		base := int(c.key) * chunkWords
		end := base + chunkWords
		if end > len(out) {
			end = len(out)
		}
		copy(out[base:end], scratch[:end-base])
	}
	return out
}

// Equal reports whether two rows hold the same bits. The canonical
// container choice makes structural comparison sufficient.
func (r Row) Equal(o Row) bool {
	if r.nbits != o.nbits || len(r.chunks) != len(o.chunks) {
		return false
	}
	for i := range r.chunks {
		a, b := &r.chunks[i], &o.chunks[i]
		if a.key != b.key || a.kind != b.kind || a.card != b.card {
			return false
		}
		switch a.kind {
		case kindArray:
			for j, v := range a.arr {
				if b.arr[j] != v {
					return false
				}
			}
		case kindBitmap:
			if !Equal(a.bm, b.bm) {
				return false
			}
		default:
			for j, v := range a.runs {
				if b.runs[j] != v {
					return false
				}
			}
		}
	}
	return true
}

// AndCount returns popcount(v & row) without mutating v. len(v) must
// be Words(Len()).
func (r Row) AndCount(v []uint64) int {
	n := 0
	for i := range r.chunks {
		c := &r.chunks[i]
		base := int(c.key) * chunkWords
		limit := len(v) - base // words of v available in this chunk
		if limit > chunkWords {
			limit = chunkWords
		}
		switch c.kind {
		case kindArray:
			for _, o := range c.arr {
				if v[base+int(o>>6)]&(1<<(uint(o)&63)) != 0 {
					n++
				}
			}
		case kindBitmap:
			for w := 0; w < limit; w++ {
				n += bits.OnesCount64(c.bm[w] & v[base+w])
			}
		default:
			for j := 0; j < len(c.runs); j += 2 {
				n += countRange(v[base:base+limit], int(c.runs[j]), int(c.runs[j+1]))
			}
		}
	}
	return n
}

// countRange returns the popcount of bits [start, end] (inclusive) of
// words.
func countRange(words []uint64, start, end int) int {
	n := 0
	for w := start >> 6; w <= end>>6 && w < len(words); w++ {
		mask := ^uint64(0)
		if w == start>>6 {
			mask &= ^uint64(0) << (uint(start) & 63)
		}
		if w == end>>6 {
			mask &= ^uint64(0) >> (63 - uint(end)&63)
		}
		n += bits.OnesCount64(words[w] & mask)
	}
	return n
}

// AndInto folds v &= row: bits of v outside the row's chunks are
// cleared, bits inside are ANDed chunk by chunk.
func (r Row) AndInto(v []uint64) {
	var scratch [chunkWords]uint64
	next := 0
	for i := range r.chunks {
		c := &r.chunks[i]
		base := int(c.key) * chunkWords
		for w := next; w < base && w < len(v); w++ {
			v[w] = 0
		}
		c.materialize(&scratch)
		end := base + chunkWords
		if end > len(v) {
			end = len(v)
		}
		for w := base; w < end; w++ {
			v[w] &= scratch[w-base]
		}
		next = end
	}
	for w := next; w < len(v); w++ {
		v[w] = 0
	}
}

// AndNotInto folds v &^= row.
func (r Row) AndNotInto(v []uint64) {
	var scratch [chunkWords]uint64
	for i := range r.chunks {
		c := &r.chunks[i]
		base := int(c.key) * chunkWords
		c.materialize(&scratch)
		end := base + chunkWords
		if end > len(v) {
			end = len(v)
		}
		for w := base; w < end; w++ {
			v[w] &^= scratch[w-base]
		}
	}
}

// SizeBytes reports the in-memory payload size of the compressed form
// (container payloads only; per-chunk bookkeeping is a few words).
// Matrix shard accounting uses it to report compression ratios.
func (r Row) SizeBytes() int {
	n := 0
	for i := range r.chunks {
		c := &r.chunks[i]
		switch c.kind {
		case kindArray:
			n += 2 * len(c.arr)
		case kindBitmap:
			n += 8 * chunkWords
		default:
			n += 2 * len(c.runs)
		}
	}
	return n
}

// AppendBinary appends the row's binary encoding to buf and returns
// the extended slice. The format is self-delimiting; DecodeRow reads
// it back.
func (r Row) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.nbits))
	buf = binary.AppendUvarint(buf, uint64(len(r.chunks)))
	for i := range r.chunks {
		c := &r.chunks[i]
		buf = binary.AppendUvarint(buf, uint64(c.key))
		buf = append(buf, c.kind)
		switch c.kind {
		case kindArray:
			buf = binary.AppendUvarint(buf, uint64(len(c.arr)))
			for _, o := range c.arr {
				buf = binary.LittleEndian.AppendUint16(buf, o)
			}
		case kindBitmap:
			for _, w := range c.bm {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
		default:
			buf = binary.AppendUvarint(buf, uint64(len(c.runs)))
			for _, o := range c.runs {
				buf = binary.LittleEndian.AppendUint16(buf, o)
			}
		}
	}
	return buf
}

// DecodeRow decodes one row from data, returning the row and the
// number of bytes consumed.
func DecodeRow(data []byte) (Row, int, error) {
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("bitvec: truncated row encoding at byte %d", pos)
		}
		pos += n
		return v, nil
	}
	nbits, err := next()
	if err != nil {
		return Row{}, 0, err
	}
	nchunks, err := next()
	if err != nil {
		return Row{}, 0, err
	}
	r := Row{nbits: int(nbits)}
	for i := uint64(0); i < nchunks; i++ {
		key, err := next()
		if err != nil {
			return Row{}, 0, err
		}
		if pos >= len(data) {
			return Row{}, 0, fmt.Errorf("bitvec: truncated row encoding at byte %d", pos)
		}
		kind := data[pos]
		pos++
		c := chunk{key: uint32(key), kind: kind}
		switch kind {
		case kindArray:
			n, err := next()
			if err != nil {
				return Row{}, 0, err
			}
			if pos+2*int(n) > len(data) {
				return Row{}, 0, fmt.Errorf("bitvec: truncated array container at byte %d", pos)
			}
			c.arr = make([]uint16, n)
			for j := range c.arr {
				c.arr[j] = binary.LittleEndian.Uint16(data[pos:])
				pos += 2
			}
			c.card = int32(n)
		case kindBitmap:
			if pos+8*chunkWords > len(data) {
				return Row{}, 0, fmt.Errorf("bitvec: truncated bitmap container at byte %d", pos)
			}
			c.bm = make([]uint64, chunkWords)
			card := 0
			for j := range c.bm {
				c.bm[j] = binary.LittleEndian.Uint64(data[pos:])
				card += bits.OnesCount64(c.bm[j])
				pos += 8
			}
			c.card = int32(card)
		case kindRuns:
			n, err := next()
			if err != nil {
				return Row{}, 0, err
			}
			if n%2 != 0 || pos+2*int(n) > len(data) {
				return Row{}, 0, fmt.Errorf("bitvec: malformed run container at byte %d", pos)
			}
			c.runs = make([]uint16, n)
			card := 0
			for j := range c.runs {
				c.runs[j] = binary.LittleEndian.Uint16(data[pos:])
				pos += 2
			}
			for j := 0; j < len(c.runs); j += 2 {
				card += int(c.runs[j+1]) - int(c.runs[j]) + 1
			}
			c.card = int32(card)
		default:
			return Row{}, 0, fmt.Errorf("bitvec: unknown container kind %d at byte %d", kind, pos-1)
		}
		r.chunks = append(r.chunks, c)
	}
	return r, pos, nil
}
