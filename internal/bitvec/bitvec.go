// Package bitvec holds the word-wise bitset plumbing shared by the
// brute-force answer matrix and every other subsystem that packs
// per-candidate facts one bit per candidate (docs/PERFORMANCE.md).
// Before this package the popcount helpers were private to
// internal/brute and every new matrix user re-implemented them; now
// there is one copy, benchmarked and tested on its own.
//
// Two representations live here:
//
//   - plain word slices ([]uint64), the mutable working sets
//     (remaining-candidate masks, scratch rows), operated on by the
//     package-level functions;
//   - Row, an immutable roaring-style compressed bitset (array, bitmap
//     and run containers per 4096-bit chunk) for the sparse regions of
//     the candidate lattice, with AND/ANDNOT/popcount operations
//     against plain word slices and a binary encoding for disk spill.
package bitvec

import "math/bits"

// Words returns the number of 64-bit words needed to hold nbits bits.
func Words(nbits int) int { return (nbits + 63) / 64 }

// Full returns a word slice with the first nbits bits set and the
// trailing word bits clear — the canonical "every candidate remains"
// mask. A zero or negative nbits returns nil.
func Full(nbits int) []uint64 {
	if nbits <= 0 {
		return nil
	}
	v := make([]uint64, Words(nbits))
	for i := range v {
		v[i] = ^uint64(0)
	}
	if tail := uint(nbits) & 63; tail != 0 {
		v[len(v)-1] = (1 << tail) - 1
	}
	return v
}

// Get reports bit i of v.
func Get(v []uint64, i int) bool {
	return v[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i of v.
func Set(v []uint64, i int) {
	v[i>>6] |= 1 << (uint(i) & 63)
}

// Count returns the popcount of v.
func Count(v []uint64) int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// AndCount returns popcount(a & b) without mutating either side.
func AndCount(a, b []uint64) int {
	n := 0
	for w, x := range a {
		n += bits.OnesCount64(x & b[w])
	}
	return n
}

// AndInto folds a &= b.
func AndInto(a, b []uint64) {
	for w := range a {
		a[w] &= b[w]
	}
}

// AndNotInto folds a &^= b.
func AndNotInto(a, b []uint64) {
	for w := range a {
		a[w] &^= b[w]
	}
}

// Equal reports element-wise equality of two equal-length word slices.
func Equal(a, b []uint64) bool {
	for w, x := range a {
		if x != b[w] {
			return false
		}
	}
	return true
}

// FirstBit returns the index of the lowest set bit, or 0 when no bit
// is set (matching remaining[0] of the brute learner's serial path,
// which only consults it when at least one candidate survives).
func FirstBit(v []uint64) int {
	for w, word := range v {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	return 0
}
