// Package boolean implements the Boolean domain of the qhorn paper
// (Abouzied et al., PODS 2013, §2): Boolean tuples over n variables,
// sets of tuples (the objects that membership questions are made of),
// and the textual notation used throughout the paper ("111001" etc.).
//
// A Tuple assigns true/false to each of n Boolean variables x1..xn.
// Variables are indexed 0..n-1 internally; variable i corresponds to
// the paper's x_{i+1}. Tuples are represented as bitsets so that all
// learning and verification algorithms are allocation-light: a tuple
// over up to 64 variables is a single machine word.
package boolean

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// MaxVars is the largest number of Boolean variables supported by the
// bitset representation. The paper's algorithms ask O(n lg n) to
// O(n^(θ+1)) questions, so 64 variables is far beyond any interactive
// use and ample for every experiment in the evaluation.
const MaxVars = 64

// Tuple is a true/false assignment to n Boolean variables, stored as a
// bitset: bit i set means variable i is true. The tuple does not carry
// n itself; the surrounding context (Universe, Set, Query) does.
type Tuple uint64

// ErrTooManyVars is returned when a universe of more than MaxVars
// variables is requested.
var ErrTooManyVars = errors.New("boolean: more than 64 variables")

// AllTrue returns the tuple 1^n: every one of the n variables true.
// It panics if n is out of range; universes are validated at
// construction time so this is an internal invariant.
func AllTrue(n int) Tuple {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("boolean: invalid variable count %d", n))
	}
	if n == MaxVars {
		return ^Tuple(0)
	}
	return Tuple(1)<<uint(n) - 1
}

// Empty is the tuple with every variable false (the paper's 0^n).
const Empty Tuple = 0

// Has reports whether variable i is true in t.
func (t Tuple) Has(i int) bool { return t&(1<<uint(i)) != 0 }

// With returns t with variable i set true.
func (t Tuple) With(i int) Tuple { return t | 1<<uint(i) }

// Without returns t with variable i set false.
func (t Tuple) Without(i int) Tuple { return t &^ (1 << uint(i)) }

// Union returns the variables true in t or u.
func (t Tuple) Union(u Tuple) Tuple { return t | u }

// Intersect returns the variables true in both t and u.
func (t Tuple) Intersect(u Tuple) Tuple { return t & u }

// Minus returns the variables true in t but not in u.
func (t Tuple) Minus(u Tuple) Tuple { return t &^ u }

// Contains reports whether every variable true in u is also true in t
// (u ⊆ t when tuples are read as sets of true variables).
func (t Tuple) Contains(u Tuple) bool { return t&u == u }

// Intersects reports whether t and u share a true variable.
func (t Tuple) Intersects(u Tuple) bool { return t&u != 0 }

// IsEmpty reports whether no variable is true in t.
func (t Tuple) IsEmpty() bool { return t == 0 }

// Count returns the number of true variables in t.
func (t Tuple) Count() int { return bits.OnesCount64(uint64(t)) }

// Vars returns the indices of the true variables in ascending order.
func (t Tuple) Vars() []int {
	out := make([]int, 0, t.Count())
	for v := t; v != 0; {
		i := bits.TrailingZeros64(uint64(v))
		out = append(out, i)
		v &= v - 1
	}
	return out
}

// Lowest returns the index of the lowest true variable, or -1 if t is
// empty.
func (t Tuple) Lowest() int {
	if t == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(t))
}

// Comparable reports whether t and u are comparable in the Boolean
// lattice order: one contains the other. Incomparable tuples (the
// paper's t1 || t2) are related to distinct, non-dominating
// expressions.
func (t Tuple) Comparable(u Tuple) bool {
	return t.Contains(u) || u.Contains(t)
}

// InUpset reports whether t lies in the upset of u, i.e. t ⊇ u.
// Questions built from the upset of a universal distinguishing tuple
// are non-answers (§3.2.1).
func (t Tuple) InUpset(u Tuple) bool { return t.Contains(u) }

// InDownset reports whether t lies in the downset of u, i.e. t ⊆ u.
func (t Tuple) InDownset(u Tuple) bool { return u.Contains(t) }

// String renders t over an unknown universe width using the set of
// true variables, e.g. "{x1,x3}". For the paper's fixed-width 0/1
// notation use Universe.Format.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range t.Vars() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "x%d", v+1)
	}
	b.WriteByte('}')
	return b.String()
}

// FromVars builds a tuple whose true variables are exactly vars
// (indices, 0-based). Duplicate indices are allowed and idempotent.
func FromVars(vars ...int) Tuple {
	var t Tuple
	for _, v := range vars {
		if v < 0 || v >= MaxVars {
			panic(fmt.Sprintf("boolean: variable index %d out of range", v))
		}
		t = t.With(v)
	}
	return t
}

// Universe is a fixed set of n Boolean variables, one per proposition
// of the user's query outline. It provides parsing and formatting in
// the paper's notation, where the leftmost character is x1.
type Universe struct {
	n int
}

// NewUniverse returns a universe of n variables. It returns
// ErrTooManyVars if n exceeds MaxVars and an error for negative n.
func NewUniverse(n int) (Universe, error) {
	if n < 0 {
		return Universe{}, fmt.Errorf("boolean: negative variable count %d", n)
	}
	if n > MaxVars {
		return Universe{}, ErrTooManyVars
	}
	return Universe{n: n}, nil
}

// MustUniverse is NewUniverse for statically known sizes; it panics on
// error.
func MustUniverse(n int) Universe {
	u, err := NewUniverse(n)
	if err != nil {
		panic(err)
	}
	return u
}

// N returns the number of variables in the universe.
func (u Universe) N() int { return u.n }

// All returns the all-true tuple 1^n for this universe.
func (u Universe) All() Tuple { return AllTrue(u.n) }

// Complement returns the variables of the universe not true in t.
func (u Universe) Complement(t Tuple) Tuple { return u.All().Minus(t) }

// Contains reports whether t only uses variables of the universe.
func (u Universe) Contains(t Tuple) bool { return u.All().Contains(t) }

// Format renders t in the paper's fixed-width notation: one character
// per variable, leftmost is x1. Example for n=6: "100110".
func (u Universe) Format(t Tuple) string {
	b := make([]byte, u.n)
	for i := 0; i < u.n; i++ {
		if t.Has(i) {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// Parse reads a tuple in the paper's fixed-width notation. The string
// must be exactly n characters of '0' and '1'.
func (u Universe) Parse(s string) (Tuple, error) {
	if len(s) != u.n {
		return 0, fmt.Errorf("boolean: tuple %q has %d characters, universe has %d variables", s, len(s), u.n)
	}
	var t Tuple
	for i := 0; i < u.n; i++ {
		switch s[i] {
		case '1':
			t = t.With(i)
		case '0':
			// false: nothing to set
		default:
			return 0, fmt.Errorf("boolean: tuple %q has invalid character %q at position %d", s, s[i], i)
		}
	}
	return t, nil
}

// MustParse is Parse for test fixtures and examples; it panics on
// malformed input.
func (u Universe) MustParse(s string) Tuple {
	t, err := u.Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}
