package boolean

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllTrue(t *testing.T) {
	tests := []struct {
		n    int
		want Tuple
	}{
		{0, 0},
		{1, 0b1},
		{3, 0b111},
		{6, 0b111111},
		{63, 1<<63 - 1},
		{64, ^Tuple(0)},
	}
	for _, tc := range tests {
		if got := AllTrue(tc.n); got != tc.want {
			t.Errorf("AllTrue(%d) = %b, want %b", tc.n, got, tc.want)
		}
	}
}

func TestAllTruePanics(t *testing.T) {
	for _, n := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AllTrue(%d) did not panic", n)
				}
			}()
			AllTrue(n)
		}()
	}
}

func TestTupleBasics(t *testing.T) {
	tp := FromVars(0, 2, 5)
	if !tp.Has(0) || !tp.Has(2) || !tp.Has(5) {
		t.Fatalf("FromVars(0,2,5): missing variables: %v", tp.Vars())
	}
	if tp.Has(1) || tp.Has(3) {
		t.Fatalf("FromVars(0,2,5): spurious variables: %v", tp.Vars())
	}
	if got := tp.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := tp.With(1); !got.Has(1) || got.Count() != 4 {
		t.Errorf("With(1) = %v", got.Vars())
	}
	if got := tp.Without(2); got.Has(2) || got.Count() != 2 {
		t.Errorf("Without(2) = %v", got.Vars())
	}
	if got := tp.Without(3); got != tp {
		t.Errorf("Without absent variable changed tuple: %v", got.Vars())
	}
}

func TestTupleSetOps(t *testing.T) {
	a := FromVars(0, 1, 2)
	b := FromVars(1, 2, 3)
	if got := a.Union(b); got != FromVars(0, 1, 2, 3) {
		t.Errorf("Union = %v", got.Vars())
	}
	if got := a.Intersect(b); got != FromVars(1, 2) {
		t.Errorf("Intersect = %v", got.Vars())
	}
	if got := a.Minus(b); got != FromVars(0) {
		t.Errorf("Minus = %v", got.Vars())
	}
	if !a.Contains(FromVars(0, 2)) {
		t.Error("Contains(subset) = false")
	}
	if a.Contains(b) {
		t.Error("Contains(incomparable) = true")
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false")
	}
	if a.Intersects(FromVars(4, 5)) {
		t.Error("Intersects(disjoint) = true")
	}
}

func TestComparable(t *testing.T) {
	tests := []struct {
		a, b Tuple
		want bool
	}{
		{FromVars(0, 1), FromVars(0), true},
		{FromVars(0), FromVars(0, 1), true},
		{FromVars(0, 1), FromVars(0, 1), true},
		{FromVars(0, 1), FromVars(1, 2), false},
		{Empty, FromVars(3), true},
	}
	for _, tc := range tests {
		if got := tc.a.Comparable(tc.b); got != tc.want {
			t.Errorf("%v.Comparable(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestUpsetDownset(t *testing.T) {
	d := FromVars(1, 2) // distinguishing tuple for ∃x2x3
	if !FromVars(0, 1, 2).InUpset(d) {
		t.Error("supertuple not in upset")
	}
	if FromVars(1).InUpset(d) {
		t.Error("subtuple in upset")
	}
	if !FromVars(1).InDownset(d) {
		t.Error("subtuple not in downset")
	}
	if FromVars(1, 3).InDownset(d) {
		t.Error("incomparable tuple in downset")
	}
}

func TestVarsRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		tp := Tuple(raw)
		return FromVars(tp.Vars()...) == tp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLowest(t *testing.T) {
	if got := Empty.Lowest(); got != -1 {
		t.Errorf("Empty.Lowest() = %d, want -1", got)
	}
	if got := FromVars(3, 5).Lowest(); got != 3 {
		t.Errorf("Lowest = %d, want 3", got)
	}
}

func TestUniverseFormatParse(t *testing.T) {
	u := MustUniverse(6)
	tests := []struct {
		tuple Tuple
		text  string
	}{
		{u.All(), "111111"},
		{Empty, "000000"},
		{FromVars(0, 3, 4), "100110"},
		{FromVars(1, 2, 4, 5), "011011"},
	}
	for _, tc := range tests {
		if got := u.Format(tc.tuple); got != tc.text {
			t.Errorf("Format(%v) = %q, want %q", tc.tuple.Vars(), got, tc.text)
		}
		parsed, err := u.Parse(tc.text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.text, err)
		}
		if parsed != tc.tuple {
			t.Errorf("Parse(%q) = %v, want %v", tc.text, parsed.Vars(), tc.tuple.Vars())
		}
	}
}

func TestUniverseParseErrors(t *testing.T) {
	u := MustUniverse(3)
	for _, bad := range []string{"", "11", "1111", "1a1", "12 "} {
		if _, err := u.Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestNewUniverseErrors(t *testing.T) {
	if _, err := NewUniverse(-1); err == nil {
		t.Error("NewUniverse(-1) succeeded")
	}
	if _, err := NewUniverse(65); err != ErrTooManyVars {
		t.Errorf("NewUniverse(65) err = %v, want ErrTooManyVars", err)
	}
	if _, err := NewUniverse(64); err != nil {
		t.Errorf("NewUniverse(64): %v", err)
	}
}

func TestComplement(t *testing.T) {
	u := MustUniverse(4)
	if got := u.Complement(FromVars(0, 2)); got != FromVars(1, 3) {
		t.Errorf("Complement = %v", got.Vars())
	}
	if got := u.Complement(u.All()); got != Empty {
		t.Errorf("Complement(all) = %v", got.Vars())
	}
}

func TestTupleString(t *testing.T) {
	if got := FromVars(0, 2).String(); got != "{x1,x3}" {
		t.Errorf("String = %q", got)
	}
	if got := Empty.String(); got != "{}" {
		t.Errorf("Empty.String = %q", got)
	}
}

func TestContainmentIsPartialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := Tuple(rng.Uint64())
		b := Tuple(rng.Uint64())
		c := Tuple(rng.Uint64())
		// reflexive
		if !a.Contains(a) {
			t.Fatal("not reflexive")
		}
		// antisymmetric
		if a.Contains(b) && b.Contains(a) && a != b {
			t.Fatal("not antisymmetric")
		}
		// transitive: a ⊇ a∩b ⊇ a∩b∩c
		ab := a.Intersect(b)
		abc := ab.Intersect(c)
		if !a.Contains(ab) || !ab.Contains(abc) || !a.Contains(abc) {
			t.Fatal("not transitive")
		}
	}
}
