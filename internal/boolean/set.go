package boolean

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Set is a set of Boolean tuples: the Boolean-domain image of an
// object of the nested relation, and the payload of every membership
// question (§2.1.2). The zero value is the empty set, which the paper
// identifies with the empty box of chocolates.
//
// A Set is kept canonical: sorted ascending with no duplicates. Use
// NewSet or the mutating helpers; do not sort or append by hand.
type Set struct {
	tuples []Tuple
	// kc caches the canonical Key, computed at most once per
	// constructed set and shared by every copy of the value — the
	// memo-oracle hot path asks the same question sets repeatedly. A
	// nil cache (the zero-value empty set) computes the key directly.
	kc *keyCache
}

// keyCache holds the lazily built canonical key of one set.
type keyCache struct {
	once sync.Once
	key  string
}

// NewSet builds a canonical set from the given tuples, deduplicating
// and sorting. The input slice is not retained.
func NewSet(tuples ...Tuple) Set {
	if len(tuples) == 0 {
		return Set{}
	}
	ts := make([]Tuple, len(tuples))
	copy(ts, tuples)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return Set{tuples: out, kc: &keyCache{}}
}

// Size returns the number of distinct tuples in the set. The paper
// requires the number of tuples per question to be polynomial in n and
// k for interactive performance; experiment E7 records it.
func (s Set) Size() int { return len(s.tuples) }

// IsEmpty reports whether the set has no tuples.
func (s Set) IsEmpty() bool { return len(s.tuples) == 0 }

// Tuples returns the tuples in ascending order. The returned slice is
// shared; callers must not modify it.
func (s Set) Tuples() []Tuple { return s.tuples }

// Has reports whether t is a member of the set.
func (s Set) Has(t Tuple) bool {
	i := sort.Search(len(s.tuples), func(i int) bool { return s.tuples[i] >= t })
	return i < len(s.tuples) && s.tuples[i] == t
}

// With returns a new set with t added.
func (s Set) With(t Tuple) Set {
	if s.Has(t) {
		return s
	}
	return NewSet(append(append([]Tuple{}, s.tuples...), t)...)
}

// Without returns a new set with t removed.
func (s Set) Without(t Tuple) Set {
	if !s.Has(t) {
		return s
	}
	out := make([]Tuple, 0, len(s.tuples)-1)
	for _, u := range s.tuples {
		if u != t {
			out = append(out, u)
		}
	}
	return Set{tuples: out, kc: &keyCache{}}
}

// Union returns the union of s and other.
func (s Set) Union(other Set) Set {
	if other.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return other
	}
	return NewSet(append(append([]Tuple{}, s.tuples...), other.tuples...)...)
}

// Equal reports whether two sets contain exactly the same tuples.
func (s Set) Equal(other Set) bool {
	if len(s.tuples) != len(other.tuples) {
		return false
	}
	for i, t := range s.tuples {
		if other.tuples[i] != t {
			return false
		}
	}
	return true
}

// AnyContains reports whether some tuple in the set contains the given
// conjunction of variables, i.e. whether the existential conjunction
// ∃ conj is satisfied by the object.
func (s Set) AnyContains(conj Tuple) bool {
	for _, t := range s.tuples {
		if t.Contains(conj) {
			return true
		}
	}
	return false
}

// Key returns a canonical comparable key for the set, usable as a map
// key when memoizing oracle answers. The encoding is the sorted tuple
// list in lowercase hex, which is unique per set. The key is built at
// most once per constructed set — every value copy shares the cache —
// so repeated memo-oracle lookups on the same question pay only the
// first encoding.
func (s Set) Key() string {
	if s.kc == nil {
		// Zero-value (empty) or hand-literal set: no cache to fill.
		return buildKey(s.tuples)
	}
	s.kc.once.Do(func() { s.kc.key = buildKey(s.tuples) })
	return s.kc.key
}

// buildKey encodes the sorted tuple list as comma-separated lowercase
// hex, matching fmt's %x for each uint64 but without the fmt machinery.
func buildKey(tuples []Tuple) string {
	if len(tuples) == 0 {
		return ""
	}
	buf := make([]byte, 0, len(tuples)*17)
	for i, t := range tuples {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendUint(buf, uint64(t), 16)
	}
	return string(buf)
}

// Format renders the set in the paper's notation over universe u, e.g.
// "{111001, 011110}". Tuples print in ascending bitset order.
func (s Set) Format(u Universe) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range s.tuples {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(u.Format(t))
	}
	b.WriteByte('}')
	return b.String()
}

// ParseSet reads a set in the Format notation: comma- or
// whitespace-separated fixed-width tuples, optionally wrapped in
// braces. Examples: "{111, 011}", "111 011", "111,011".
func ParseSet(u Universe, s string) (Set, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "{")
	s = strings.TrimSuffix(s, "}")
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n'
	})
	tuples := make([]Tuple, 0, len(fields))
	for _, f := range fields {
		t, err := u.Parse(f)
		if err != nil {
			return Set{}, err
		}
		tuples = append(tuples, t)
	}
	return NewSet(tuples...), nil
}

// MustParseSet is ParseSet for fixtures; it panics on malformed input.
func MustParseSet(u Universe, s string) Set {
	set, err := ParseSet(u, s)
	if err != nil {
		panic(err)
	}
	return set
}

// AllObjects enumerates every distinct object over the universe: all
// 2^(2^n) subsets of the 2^n possible tuples. It is the search space
// that makes unrestricted query learning doubly exponential (§2) and
// is used by tests for exhaustive semantic-equivalence checks on small
// n. It panics if n > 4 (65536 objects), which would be astronomically
// large beyond that.
func AllObjects(u Universe) []Set {
	if u.n > 4 {
		panic("boolean: AllObjects is exhaustive and limited to n <= 4")
	}
	numTuples := 1 << uint(u.n)
	numObjects := 1 << uint(numTuples)
	objects := make([]Set, 0, numObjects)
	for mask := 0; mask < numObjects; mask++ {
		var tuples []Tuple
		for t := 0; t < numTuples; t++ {
			if mask&(1<<uint(t)) != 0 {
				tuples = append(tuples, Tuple(t))
			}
		}
		objects = append(objects, NewSet(tuples...))
	}
	return objects
}

// SampleObjects draws up to count distinct objects over the universe,
// for the sampled cross-validation range where AllObjects is
// intractable (n ≥ 5). The first two samples are the structural
// extremes — the empty box and the full object — and the rest are
// random subsets of the tuple space with density drawn uniformly per
// object, so sparse and dense regions are both probed. The result is a
// deterministic function of the rng stream.
func SampleObjects(rng *rand.Rand, u Universe, count int) []Set {
	numTuples := 1 << uint(u.n)
	seen := map[string]bool{}
	out := make([]Set, 0, count)
	add := func(s Set) {
		if len(out) < count && !seen[s.Key()] {
			seen[s.Key()] = true
			out = append(out, s)
		}
	}
	add(Set{})
	add(NewSet(AllTuples(u)...))
	for attempts := 0; len(out) < count && attempts < 50*count+100; attempts++ {
		density := rng.Float64()
		var tuples []Tuple
		for t := 0; t < numTuples; t++ {
			if rng.Float64() < density {
				tuples = append(tuples, Tuple(t))
			}
		}
		add(NewSet(tuples...))
	}
	return out
}

// AllTuples enumerates every tuple of the universe in ascending order.
func AllTuples(u Universe) []Tuple {
	out := make([]Tuple, 1<<uint(u.n))
	for i := range out {
		out[i] = Tuple(i)
	}
	return out
}
