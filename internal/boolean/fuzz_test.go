package boolean

import "testing"

// FuzzParseSet checks the set parser never panics and that accepted
// sets round-trip through Format.
func FuzzParseSet(f *testing.F) {
	seeds := []string{
		"{111, 011}",
		"111 011",
		"111,011",
		"{}",
		"",
		"{11101}",
		"1x1",
		"{111, 01}",
		"  {110, 110}  ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	u := MustUniverse(3)
	f.Fuzz(func(t *testing.T, s string) {
		set, err := ParseSet(u, s)
		if err != nil {
			return
		}
		back, err := ParseSet(u, set.Format(u))
		if err != nil {
			t.Fatalf("formatted set %q does not re-parse: %v", set.Format(u), err)
		}
		if !back.Equal(set) {
			t.Fatalf("round trip changed set: %s -> %s", set.Format(u), back.Format(u))
		}
	})
}

// FuzzTupleParse checks the tuple parser against its formatter.
func FuzzTupleParse(f *testing.F) {
	for _, s := range []string{"000000", "111111", "101010", "11111", "abc", ""} {
		f.Add(s)
	}
	u := MustUniverse(6)
	f.Fuzz(func(t *testing.T, s string) {
		tp, err := u.Parse(s)
		if err != nil {
			return
		}
		if got := u.Format(tp); got != s {
			t.Fatalf("Format(Parse(%q)) = %q", s, got)
		}
	})
}
