package boolean

import (
	"math/rand"
	"testing"
)

func TestNewSetCanonical(t *testing.T) {
	s := NewSet(FromVars(2), FromVars(0), FromVars(2), FromVars(0, 1))
	if got := s.Size(); got != 3 {
		t.Fatalf("Size = %d, want 3 (dedup)", got)
	}
	ts := s.Tuples()
	for i := 1; i < len(ts); i++ {
		if ts[i-1] >= ts[i] {
			t.Fatalf("not sorted: %v", ts)
		}
	}
}

func TestSetHasWithWithout(t *testing.T) {
	s := NewSet(FromVars(0), FromVars(1))
	if !s.Has(FromVars(0)) || s.Has(FromVars(2)) {
		t.Fatal("Has wrong")
	}
	s2 := s.With(FromVars(2))
	if s2.Size() != 3 || !s2.Has(FromVars(2)) {
		t.Fatal("With failed")
	}
	if s.Size() != 2 {
		t.Fatal("With mutated receiver")
	}
	s3 := s2.Without(FromVars(1))
	if s3.Size() != 2 || s3.Has(FromVars(1)) {
		t.Fatal("Without failed")
	}
	if got := s.With(FromVars(0)); !got.Equal(s) {
		t.Fatal("With existing tuple changed set")
	}
	if got := s.Without(FromVars(5)); !got.Equal(s) {
		t.Fatal("Without absent tuple changed set")
	}
}

func TestSetUnionEqual(t *testing.T) {
	a := NewSet(FromVars(0), FromVars(1))
	b := NewSet(FromVars(1), FromVars(2))
	u := a.Union(b)
	if u.Size() != 3 {
		t.Fatalf("Union size = %d", u.Size())
	}
	if !a.Union(Set{}).Equal(a) || !(Set{}).Union(a).Equal(a) {
		t.Fatal("Union with empty broken")
	}
	if a.Equal(b) {
		t.Fatal("distinct sets Equal")
	}
	if !a.Equal(NewSet(FromVars(1), FromVars(0))) {
		t.Fatal("order-insensitive equality broken")
	}
}

func TestAnyContains(t *testing.T) {
	u := MustUniverse(6)
	s := MustParseSet(u, "{100110, 111001}")
	tests := []struct {
		conj string
		want bool
	}{
		{"100110", true}, // exact tuple
		{"100000", true}, // subset of first
		{"110000", true}, // subset of second
		{"000001", true}, // x6 in second
		{"100001", true}, // x1,x6 both in second
		{"000101", false},
		{"111111", false},
	}
	for _, tc := range tests {
		conj := u.MustParse(tc.conj)
		if got := s.AnyContains(conj); got != tc.want {
			t.Errorf("AnyContains(%s) = %v, want %v", tc.conj, got, tc.want)
		}
	}
	if (Set{}).AnyContains(Empty) {
		t.Error("empty set satisfies empty conjunction: guarantee semantics require a witness tuple")
	}
	if !NewSet(Empty).AnyContains(Empty) {
		t.Error("set with 0^n tuple should satisfy empty conjunction")
	}
}

func TestSetKeyUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := map[string]Set{}
	for i := 0; i < 500; i++ {
		n := rng.Intn(5)
		tuples := make([]Tuple, n)
		for j := range tuples {
			tuples[j] = Tuple(rng.Intn(64))
		}
		s := NewSet(tuples...)
		k := s.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(s) {
			t.Fatalf("key collision: %v vs %v", prev, s)
		}
		seen[k] = s
	}
}

func TestFormatParseSetRoundTrip(t *testing.T) {
	u := MustUniverse(4)
	s := NewSet(u.MustParse("1010"), u.MustParse("0111"))
	text := s.Format(u)
	if text != "{0111, 1010}" && text != "{1010, 0111}" {
		// ascending bitset order: 1010 = 0b0101 = 5, 0111 = 0b1110 = 14
		t.Logf("format: %s", text)
	}
	back, err := ParseSet(u, text)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatalf("round trip: %s -> %s", text, back.Format(u))
	}
	// Bare forms.
	for _, in := range []string{"1010 0111", "1010,0111", "  {1010, 0111}  "} {
		got, err := ParseSet(u, in)
		if err != nil {
			t.Fatalf("ParseSet(%q): %v", in, err)
		}
		if !got.Equal(s) {
			t.Fatalf("ParseSet(%q) = %s", in, got.Format(u))
		}
	}
	if _, err := ParseSet(u, "10x0"); err == nil {
		t.Fatal("ParseSet accepted bad tuple")
	}
	empty, err := ParseSet(u, "{}")
	if err != nil || !empty.IsEmpty() {
		t.Fatalf("ParseSet({}) = %v, %v", empty, err)
	}
}

func TestAllObjects(t *testing.T) {
	u := MustUniverse(2)
	objs := AllObjects(u)
	if len(objs) != 16 {
		t.Fatalf("n=2: %d objects, want 2^(2^2)=16", len(objs))
	}
	seen := map[string]bool{}
	for _, o := range objs {
		k := o.Key()
		if seen[k] {
			t.Fatalf("duplicate object %s", o.Format(u))
		}
		seen[k] = true
	}
	u3 := MustUniverse(3)
	if got := len(AllObjects(u3)); got != 256 {
		t.Fatalf("n=3: %d objects, want 256", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AllObjects(n=5) did not panic")
		}
	}()
	AllObjects(MustUniverse(5))
}

func TestAllTuples(t *testing.T) {
	u := MustUniverse(3)
	ts := AllTuples(u)
	if len(ts) != 8 {
		t.Fatalf("len = %d", len(ts))
	}
	for i, tp := range ts {
		if tp != Tuple(i) {
			t.Fatalf("AllTuples[%d] = %v", i, tp)
		}
	}
}
