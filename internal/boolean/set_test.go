package boolean

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestNewSetCanonical(t *testing.T) {
	s := NewSet(FromVars(2), FromVars(0), FromVars(2), FromVars(0, 1))
	if got := s.Size(); got != 3 {
		t.Fatalf("Size = %d, want 3 (dedup)", got)
	}
	ts := s.Tuples()
	for i := 1; i < len(ts); i++ {
		if ts[i-1] >= ts[i] {
			t.Fatalf("not sorted: %v", ts)
		}
	}
}

func TestSetHasWithWithout(t *testing.T) {
	s := NewSet(FromVars(0), FromVars(1))
	if !s.Has(FromVars(0)) || s.Has(FromVars(2)) {
		t.Fatal("Has wrong")
	}
	s2 := s.With(FromVars(2))
	if s2.Size() != 3 || !s2.Has(FromVars(2)) {
		t.Fatal("With failed")
	}
	if s.Size() != 2 {
		t.Fatal("With mutated receiver")
	}
	s3 := s2.Without(FromVars(1))
	if s3.Size() != 2 || s3.Has(FromVars(1)) {
		t.Fatal("Without failed")
	}
	if got := s.With(FromVars(0)); !got.Equal(s) {
		t.Fatal("With existing tuple changed set")
	}
	if got := s.Without(FromVars(5)); !got.Equal(s) {
		t.Fatal("Without absent tuple changed set")
	}
}

func TestSetUnionEqual(t *testing.T) {
	a := NewSet(FromVars(0), FromVars(1))
	b := NewSet(FromVars(1), FromVars(2))
	u := a.Union(b)
	if u.Size() != 3 {
		t.Fatalf("Union size = %d", u.Size())
	}
	if !a.Union(Set{}).Equal(a) || !(Set{}).Union(a).Equal(a) {
		t.Fatal("Union with empty broken")
	}
	if a.Equal(b) {
		t.Fatal("distinct sets Equal")
	}
	if !a.Equal(NewSet(FromVars(1), FromVars(0))) {
		t.Fatal("order-insensitive equality broken")
	}
}

func TestAnyContains(t *testing.T) {
	u := MustUniverse(6)
	s := MustParseSet(u, "{100110, 111001}")
	tests := []struct {
		conj string
		want bool
	}{
		{"100110", true}, // exact tuple
		{"100000", true}, // subset of first
		{"110000", true}, // subset of second
		{"000001", true}, // x6 in second
		{"100001", true}, // x1,x6 both in second
		{"000101", false},
		{"111111", false},
	}
	for _, tc := range tests {
		conj := u.MustParse(tc.conj)
		if got := s.AnyContains(conj); got != tc.want {
			t.Errorf("AnyContains(%s) = %v, want %v", tc.conj, got, tc.want)
		}
	}
	if (Set{}).AnyContains(Empty) {
		t.Error("empty set satisfies empty conjunction: guarantee semantics require a witness tuple")
	}
	if !NewSet(Empty).AnyContains(Empty) {
		t.Error("set with 0^n tuple should satisfy empty conjunction")
	}
}

func TestSetKeyUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := map[string]Set{}
	for i := 0; i < 500; i++ {
		n := rng.Intn(5)
		tuples := make([]Tuple, n)
		for j := range tuples {
			tuples[j] = Tuple(rng.Intn(64))
		}
		s := NewSet(tuples...)
		k := s.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(s) {
			t.Fatalf("key collision: %v vs %v", prev, s)
		}
		seen[k] = s
	}
}

func TestFormatParseSetRoundTrip(t *testing.T) {
	u := MustUniverse(4)
	s := NewSet(u.MustParse("1010"), u.MustParse("0111"))
	text := s.Format(u)
	if text != "{0111, 1010}" && text != "{1010, 0111}" {
		// ascending bitset order: 1010 = 0b0101 = 5, 0111 = 0b1110 = 14
		t.Logf("format: %s", text)
	}
	back, err := ParseSet(u, text)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatalf("round trip: %s -> %s", text, back.Format(u))
	}
	// Bare forms.
	for _, in := range []string{"1010 0111", "1010,0111", "  {1010, 0111}  "} {
		got, err := ParseSet(u, in)
		if err != nil {
			t.Fatalf("ParseSet(%q): %v", in, err)
		}
		if !got.Equal(s) {
			t.Fatalf("ParseSet(%q) = %s", in, got.Format(u))
		}
	}
	if _, err := ParseSet(u, "10x0"); err == nil {
		t.Fatal("ParseSet accepted bad tuple")
	}
	empty, err := ParseSet(u, "{}")
	if err != nil || !empty.IsEmpty() {
		t.Fatalf("ParseSet({}) = %v, %v", empty, err)
	}
}

func TestAllObjects(t *testing.T) {
	u := MustUniverse(2)
	objs := AllObjects(u)
	if len(objs) != 16 {
		t.Fatalf("n=2: %d objects, want 2^(2^2)=16", len(objs))
	}
	seen := map[string]bool{}
	for _, o := range objs {
		k := o.Key()
		if seen[k] {
			t.Fatalf("duplicate object %s", o.Format(u))
		}
		seen[k] = true
	}
	u3 := MustUniverse(3)
	if got := len(AllObjects(u3)); got != 256 {
		t.Fatalf("n=3: %d objects, want 256", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AllObjects(n=5) did not panic")
		}
	}()
	AllObjects(MustUniverse(5))
}

func TestAllTuples(t *testing.T) {
	u := MustUniverse(3)
	ts := AllTuples(u)
	if len(ts) != 8 {
		t.Fatalf("len = %d", len(ts))
	}
	for i, tp := range ts {
		if tp != Tuple(i) {
			t.Fatalf("AllTuples[%d] = %v", i, tp)
		}
	}
}

// TestSetKeyEncoding pins the key encoding to what the old fmt-based
// builder produced: comma-separated lowercase hex of the sorted tuples.
// Session persistence files store keys, so the encoding is a contract.
func TestSetKeyEncoding(t *testing.T) {
	s := NewSet(Tuple(0), Tuple(10), Tuple(255), Tuple(1<<40))
	want := fmt.Sprintf("%x,%x,%x,%x", 0, 10, 255, uint64(1)<<40)
	if got := s.Key(); got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	if got := (Set{}).Key(); got != "" {
		t.Fatalf("zero-value Key() = %q, want empty", got)
	}
	if got := NewSet().Key(); got != "" {
		t.Fatalf("NewSet().Key() = %q, want empty", got)
	}
}

// TestSetKeyCached: every copy of a constructed set shares the cached
// key, and derived sets (With/Without/Union) carry independent caches
// that do not corrupt the original's.
func TestSetKeyCached(t *testing.T) {
	s := NewSet(Tuple(3), Tuple(9))
	k := s.Key()
	cp := s
	if cp.Key() != k {
		t.Fatal("copy disagrees with original key")
	}
	grown := s.With(Tuple(1))
	if grown.Key() == k {
		t.Fatal("With returned the parent's key")
	}
	shrunk := grown.Without(Tuple(1))
	if shrunk.Key() != k {
		t.Fatalf("Without key %q, want %q", shrunk.Key(), k)
	}
	if s.Key() != k {
		t.Fatal("original key mutated by derivation")
	}
	u := s.Union(NewSet(Tuple(70)))
	if u.Key() == k || !s.Equal(NewSet(Tuple(3), Tuple(9))) {
		t.Fatal("Union corrupted the receiver")
	}
}

// TestSetKeyConcurrent exercises the first-use cache fill from many
// goroutines; run with -race this proves the memo-oracle hot path can
// share one Set across the worker pool.
func TestSetKeyConcurrent(t *testing.T) {
	s := NewSet(Tuple(1), Tuple(2), Tuple(1<<30))
	want := s.Key()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if s.Key() != want {
					t.Error("concurrent Key mismatch")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkSetKey measures the memo-oracle hot path: repeated Key()
// calls on one set, which after the first call are a cache hit.
func BenchmarkSetKey(b *testing.B) {
	tuples := make([]Tuple, 32)
	for i := range tuples {
		tuples[i] = Tuple(i * 37)
	}
	s := NewSet(tuples...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Key()
	}
}

// BenchmarkSetKeyBuild measures the uncached encoder itself, the cost
// paid once per constructed set (previously paid on every call through
// fmt.Fprintf).
func BenchmarkSetKeyBuild(b *testing.B) {
	tuples := make([]Tuple, 32)
	for i := range tuples {
		tuples[i] = Tuple(i * 37)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = buildKey(tuples)
	}
}

// TestSampleObjects: samples are distinct, include the structural
// extremes, and reproduce deterministically from the seed.
func TestSampleObjects(t *testing.T) {
	u := MustUniverse(5)
	rng := rand.New(rand.NewSource(61))
	objs := SampleObjects(rng, u, 200)
	if len(objs) != 200 {
		t.Fatalf("sampled %d objects, want 200", len(objs))
	}
	if !objs[0].IsEmpty() {
		t.Fatal("first sample should be the empty object")
	}
	if objs[1].Size() != 1<<uint(u.N()) {
		t.Fatal("second sample should be the full object")
	}
	seen := map[string]bool{}
	for _, o := range objs {
		if seen[o.Key()] {
			t.Fatalf("duplicate object %s", o.Format(u))
		}
		seen[o.Key()] = true
	}
	again := SampleObjects(rand.New(rand.NewSource(61)), u, 200)
	for i := range objs {
		if !objs[i].Equal(again[i]) {
			t.Fatalf("sample %d differs across identical seeds", i)
		}
	}
	// A count smaller than the two structural extremes is honored.
	if short := SampleObjects(rng, u, 1); len(short) != 1 {
		t.Fatalf("count=1 returned %d objects", len(short))
	}
}
