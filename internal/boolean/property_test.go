package boolean

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomSet is a quick.Generator for small tuple sets over 6
// variables.
type randomSet struct{ S Set }

func (randomSet) Generate(rng *rand.Rand, size int) reflect.Value {
	m := rng.Intn(5)
	tuples := make([]Tuple, m)
	for i := range tuples {
		tuples[i] = Tuple(rng.Intn(64))
	}
	return reflect.ValueOf(randomSet{NewSet(tuples...)})
}

func TestQuickSetAlgebra(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	// Union is commutative, associative and idempotent.
	comm := func(a, b randomSet) bool {
		return a.S.Union(b.S).Equal(b.S.Union(a.S))
	}
	if err := quick.Check(comm, cfg); err != nil {
		t.Error("commutativity:", err)
	}
	assoc := func(a, b, c randomSet) bool {
		return a.S.Union(b.S).Union(c.S).Equal(a.S.Union(b.S.Union(c.S)))
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Error("associativity:", err)
	}
	idem := func(a randomSet) bool {
		return a.S.Union(a.S).Equal(a.S)
	}
	if err := quick.Check(idem, cfg); err != nil {
		t.Error("idempotence:", err)
	}
}

func TestQuickSetWithWithoutInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	f := func(a randomSet) bool {
		tp := Tuple(rng.Intn(64))
		if a.S.Has(tp) {
			return a.S.Without(tp).With(tp).Equal(a.S)
		}
		return a.S.With(tp).Without(tp).Equal(a.S)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickAnyContainsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	f := func(a randomSet) bool {
		conj := Tuple(rng.Intn(64))
		sub := conj & Tuple(rng.Intn(64)) // sub ⊆ conj
		// Satisfying the bigger conjunction satisfies the smaller.
		if a.S.AnyContains(conj) && !a.S.AnyContains(sub) {
			return false
		}
		// Adding a tuple never unsatisfies.
		extra := Tuple(rng.Intn(64))
		if a.S.AnyContains(conj) && !a.S.With(extra).AnyContains(conj) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyFaithful(t *testing.T) {
	f := func(a, b randomSet) bool {
		return (a.S.Key() == b.S.Key()) == a.S.Equal(b.S)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickFormatParseRoundTrip(t *testing.T) {
	u := MustUniverse(6)
	f := func(a randomSet) bool {
		back, err := ParseSet(u, a.S.Format(u))
		return err == nil && back.Equal(a.S)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
