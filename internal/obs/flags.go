package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// Flags is the shared observability flag bundle every CLI binds:
//
//	-trace        render the span tree on stdout at exit
//	-trace-out F  append the span stream as JSONL to file F
//	-metrics      print the Prometheus exposition on stdout at exit
//	-profile P    write P.cpu.pprof and P.heap.pprof around the run
//	-parallel N   answer independent questions with N workers
//	-interpreted-eval  force simulated users off the compiled kernel
//	-brute-shard N     shard brute answer matrices at N candidates
//	-brute-compress    store brute matrix rows roaring-compressed
//	-brute-spill DIR   spill brute answer matrices to disk under DIR
//	-brute-scalar      force brute matrix builds off the sliced kernel
//	-obs-addr A   serve /metrics, /spans, /progress, /healthz and
//	              /debug/pprof live on this address during the run
//	-obs-spans N  flight-recorder capacity (last N completed spans)
//	-obs-wait D   keep serving for D after the run completes
type Flags struct {
	Trace    bool
	TraceOut string
	Metrics  bool
	Profile  string
	// Parallel is the worker count of the parallel batched question
	// engine (docs/PARALLELISM.md); 0 keeps every CLI fully serial.
	Parallel int
	// InterpretedEval forces simulated-user oracles onto the
	// interpreted Query.Eval instead of the compiled kernel
	// (docs/PERFORMANCE.md) — the diagnostic escape hatch.
	InterpretedEval bool
	// BruteShard is the candidate-axis shard size of brute-force answer
	// matrices (docs/PERFORMANCE.md); 0 selects the default.
	BruteShard int
	// BruteCompress stores answer-matrix rows roaring-compressed.
	BruteCompress bool
	// BruteSpillDir, when non-empty, spills answer matrices to disk
	// under this directory instead of holding every row in RAM.
	BruteSpillDir string
	// BruteScalar builds answer matrices with the scalar per-candidate
	// kernel instead of the bit-sliced slab kernel — the diagnostic
	// escape hatch mirroring InterpretedEval.
	BruteScalar bool
	// ObsAddr, when non-empty, serves the live observability plane
	// (obs.Server) on this host:port for the life of the session; port
	// 0 picks a free port. It forces the tracer on: the server's span
	// flight recorder consumes the span stream.
	ObsAddr string
	// ObsSpans is the flight recorder's completed-span ring capacity;
	// <= 0 selects DefaultFlightSpans.
	ObsSpans int
	// ObsWait keeps the observability server up for this long after
	// Close has rendered the run's outputs — the window CI smoke jobs
	// (and humans) use to curl a finished run.
	ObsWait time.Duration
}

// BindFlags registers the shared observability flags on fs.
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Trace, "trace", false, "print the span tree of the run at exit")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write the span stream as JSONL to this file")
	fs.BoolVar(&f.Metrics, "metrics", false, "print the metrics exposition (Prometheus text format) at exit")
	fs.StringVar(&f.Profile, "profile", "", "write CPU and heap profiles with this file prefix")
	fs.IntVar(&f.Parallel, "parallel", 0, "answer independent membership questions with this many concurrent workers (0 = serial)")
	fs.BoolVar(&f.InterpretedEval, "interpreted-eval", false, "evaluate simulated users with the interpreted evaluator instead of the compiled kernel")
	fs.IntVar(&f.BruteShard, "brute-shard", 0, "candidate-axis shard size of brute-force answer matrices (0 = default)")
	fs.BoolVar(&f.BruteCompress, "brute-compress", false, "store brute-force answer-matrix rows roaring-compressed")
	fs.StringVar(&f.BruteSpillDir, "brute-spill", "", "spill brute-force answer matrices to disk under this directory")
	fs.BoolVar(&f.BruteScalar, "brute-scalar", false, "build brute-force answer matrices with the scalar kernel instead of the bit-sliced slab kernel")
	fs.StringVar(&f.ObsAddr, "obs-addr", "", "serve /metrics, /spans, /progress, /healthz and /debug/pprof live on this host:port (port 0 picks a free port)")
	fs.IntVar(&f.ObsSpans, "obs-spans", 0, "flight-recorder capacity: keep the last N completed spans (0 = default)")
	fs.DurationVar(&f.ObsWait, "obs-wait", 0, "keep the -obs-addr server up this long after the run completes")
	return f
}

// Session is a live observability context for one CLI run: the span
// tracer (nil when no trace output was requested and no extra sinks
// were passed), the metrics registry (always usable), and the
// deferred outputs that Close flushes.
type Session struct {
	// Tracer is the span tracer; nil when tracing is off, which the
	// instrumented packages treat as silent.
	Tracer *Tracer
	// Metrics is the run's registry; always non-nil.
	Metrics *Registry

	flags   *Flags
	out     io.Writer
	tree    *TreeSink
	jsonl   *JSONLSink
	jsonlF  *os.File
	profile *Profile
	server  *Server
	closed  bool
}

// Start opens a session for the parsed flags. Tree and metrics output
// go to out at Close. Extra sinks (e.g. a CLI's -explain printer)
// force the tracer on even without -trace.
func (f *Flags) Start(out io.Writer, extra ...SpanSink) (*Session, error) {
	s := &Session{flags: f, out: out, Metrics: NewRegistry()}
	var sinks []SpanSink
	if f.Trace {
		s.tree = NewTreeSink()
		sinks = append(sinks, s.tree)
	}
	if f.TraceOut != "" {
		file, err := os.Create(f.TraceOut)
		if err != nil {
			return nil, fmt.Errorf("obs: trace-out: %w", err)
		}
		s.jsonlF = file
		s.jsonl = NewJSONLSink(file)
		sinks = append(sinks, s.jsonl)
	}
	sinks = append(sinks, extra...)
	if len(sinks) > 0 || f.ObsAddr != "" {
		// -obs-addr forces the tracer on even without -trace: the
		// server's flight recorder (attached by NewServer) consumes the
		// span stream.
		s.Tracer = NewTracer(sinks...)
	}
	if f.ObsAddr != "" {
		srv := NewServer(s.Metrics, s.Tracer, NewFlightRecorder(f.ObsSpans))
		if err := srv.Start(f.ObsAddr); err != nil {
			s.closeFiles()
			return nil, err
		}
		s.server = srv
		fmt.Fprintf(out, "obs: serving /metrics /spans /progress /healthz /debug/pprof on %s\n", srv.URL())
	}
	if f.Profile != "" {
		p, err := StartProfile(f.Profile)
		if err != nil {
			s.closeFiles()
			s.closeServer()
			return nil, err
		}
		s.profile = p
	}
	return s, nil
}

func (s *Session) closeFiles() {
	if s.jsonlF != nil {
		s.jsonlF.Close()
		s.jsonlF = nil
	}
}

func (s *Session) closeServer() {
	if s.server != nil {
		s.server.Close()
		s.server = nil
	}
}

// Close flushes the session: renders the span tree, prints the
// metrics exposition, closes the JSONL file and stops profiling. It
// returns the first error encountered but always attempts every step.
// Closing twice is a no-op, so a CLI may both defer Close (for error
// paths) and check its error explicitly on success.
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.tree != nil {
		fmt.Fprintln(s.out, "\nSpan tree:")
		s.tree.Render(s.out)
	}
	if s.flags.Metrics {
		fmt.Fprintln(s.out, "\nMetrics:")
		keep(s.Metrics.WritePrometheus(s.out))
	}
	if s.jsonl != nil {
		keep(s.jsonl.Err())
	}
	if s.jsonlF != nil {
		keep(s.jsonlF.Close())
		s.jsonlF = nil
	}
	keep(s.profile.Stop())
	if s.server != nil && s.flags.ObsWait > 0 {
		fmt.Fprintf(s.out, "obs: run complete; serving %s for another %s\n", s.server.URL(), s.flags.ObsWait)
		time.Sleep(s.flags.ObsWait)
	}
	s.closeServer()
	return first
}

// Tree returns the collected tree sink, or nil when -trace is off;
// tests use it to assert span coverage without parsing output.
func (s *Session) Tree() *TreeSink { return s.tree }

// Server returns the live observability server, or nil when -obs-addr
// is unset. It serves until the session closes (plus -obs-wait).
func (s *Session) Server() *Server { return s.server }
