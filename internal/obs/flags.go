package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// Flags is the shared observability flag bundle every CLI binds:
//
//	-trace        render the span tree on stdout at exit
//	-trace-out F  append the span stream as JSONL to file F
//	-metrics      print the Prometheus exposition on stdout at exit
//	-profile P    write P.cpu.pprof and P.heap.pprof around the run
//	-parallel N   answer independent questions with N workers
//	-interpreted-eval  force simulated users off the compiled kernel
type Flags struct {
	Trace    bool
	TraceOut string
	Metrics  bool
	Profile  string
	// Parallel is the worker count of the parallel batched question
	// engine (docs/PARALLELISM.md); 0 keeps every CLI fully serial.
	Parallel int
	// InterpretedEval forces simulated-user oracles onto the
	// interpreted Query.Eval instead of the compiled kernel
	// (docs/PERFORMANCE.md) — the diagnostic escape hatch.
	InterpretedEval bool
}

// BindFlags registers the shared observability flags on fs.
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Trace, "trace", false, "print the span tree of the run at exit")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write the span stream as JSONL to this file")
	fs.BoolVar(&f.Metrics, "metrics", false, "print the metrics exposition (Prometheus text format) at exit")
	fs.StringVar(&f.Profile, "profile", "", "write CPU and heap profiles with this file prefix")
	fs.IntVar(&f.Parallel, "parallel", 0, "answer independent membership questions with this many concurrent workers (0 = serial)")
	fs.BoolVar(&f.InterpretedEval, "interpreted-eval", false, "evaluate simulated users with the interpreted evaluator instead of the compiled kernel")
	return f
}

// Session is a live observability context for one CLI run: the span
// tracer (nil when no trace output was requested and no extra sinks
// were passed), the metrics registry (always usable), and the
// deferred outputs that Close flushes.
type Session struct {
	// Tracer is the span tracer; nil when tracing is off, which the
	// instrumented packages treat as silent.
	Tracer *Tracer
	// Metrics is the run's registry; always non-nil.
	Metrics *Registry

	flags   *Flags
	out     io.Writer
	tree    *TreeSink
	jsonl   *JSONLSink
	jsonlF  *os.File
	profile *Profile
	closed  bool
}

// Start opens a session for the parsed flags. Tree and metrics output
// go to out at Close. Extra sinks (e.g. a CLI's -explain printer)
// force the tracer on even without -trace.
func (f *Flags) Start(out io.Writer, extra ...SpanSink) (*Session, error) {
	s := &Session{flags: f, out: out, Metrics: NewRegistry()}
	var sinks []SpanSink
	if f.Trace {
		s.tree = NewTreeSink()
		sinks = append(sinks, s.tree)
	}
	if f.TraceOut != "" {
		file, err := os.Create(f.TraceOut)
		if err != nil {
			return nil, fmt.Errorf("obs: trace-out: %w", err)
		}
		s.jsonlF = file
		s.jsonl = NewJSONLSink(file)
		sinks = append(sinks, s.jsonl)
	}
	sinks = append(sinks, extra...)
	if len(sinks) > 0 {
		s.Tracer = NewTracer(sinks...)
	}
	if f.Profile != "" {
		p, err := StartProfile(f.Profile)
		if err != nil {
			s.closeFiles()
			return nil, err
		}
		s.profile = p
	}
	return s, nil
}

func (s *Session) closeFiles() {
	if s.jsonlF != nil {
		s.jsonlF.Close()
		s.jsonlF = nil
	}
}

// Close flushes the session: renders the span tree, prints the
// metrics exposition, closes the JSONL file and stops profiling. It
// returns the first error encountered but always attempts every step.
// Closing twice is a no-op, so a CLI may both defer Close (for error
// paths) and check its error explicitly on success.
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.tree != nil {
		fmt.Fprintln(s.out, "\nSpan tree:")
		s.tree.Render(s.out)
	}
	if s.flags.Metrics {
		fmt.Fprintln(s.out, "\nMetrics:")
		keep(s.Metrics.WritePrometheus(s.out))
	}
	if s.jsonl != nil {
		keep(s.jsonl.Err())
	}
	if s.jsonlF != nil {
		keep(s.jsonlF.Close())
		s.jsonlF = nil
	}
	keep(s.profile.Stop())
	return first
}

// Tree returns the collected tree sink, or nil when -trace is off;
// tests use it to assert span coverage without parsing output.
func (s *Session) Tree() *TreeSink { return s.tree }
