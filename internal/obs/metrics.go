package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named counters, gauges and histograms, optionally
// labeled, and renders them in the Prometheus text exposition format
// or through the expvar bridge. All operations are goroutine-safe. A
// nil *Registry hands out discard metrics, so instrumented code never
// branches on whether metrics are enabled.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	help     map[string]string
}

// family groups all label variants of one metric name.
type family struct {
	name string
	typ  string // "counter", "gauge" or "histogram"
	// metrics maps the rendered label string ("" for unlabeled) to
	// the metric instance; order preserves first-registration order
	// for stable exposition.
	metrics map[string]interface{}
	order   []string
	labels  map[string][]Attr
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}, help: map[string]string{}}
}

// Describe attaches HELP text to a metric name, rendered in the
// exposition.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// discard instances returned by a nil registry.
var (
	discardCounter   = &Counter{}
	discardGauge     = &Gauge{}
	discardHistogram = &Histogram{}
)

// labelKey renders "k1,v1,k2,v2" pairs canonically (sorted by key).
func labelKey(labels []string) (string, []Attr) {
	if len(labels) == 0 {
		return "", nil
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q (want key/value pairs)", labels))
	}
	attrs := make([]Attr, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		attrs = append(attrs, Attr{Key: labels[i], Value: labels[i+1]})
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = fmt.Sprintf("%s=%q", a.Key, a.Value)
	}
	return strings.Join(parts, ","), attrs
}

// lookup returns the metric instance for name+labels, creating it with
// make when absent. It panics when name is already registered with a
// different type — a programming error worth failing loudly on.
func (r *Registry) lookup(name, typ string, labels []string, make func() interface{}) interface{} {
	key, attrs := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, typ: typ, metrics: map[string]interface{}{}, labels: map[string][]Attr{}}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	m, ok := f.metrics[key]
	if !ok {
		m = make()
		f.metrics[key] = m
		f.order = append(f.order, key)
		f.labels[key] = attrs
	}
	return m
}

// Counter returns the monotonically increasing counter for
// name+labels (alternating key/value), registering it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return discardCounter
	}
	return r.lookup(name, "counter", labels, func() interface{} { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for name+labels, registering it on first
// use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return discardGauge
	}
	return r.lookup(name, "gauge", labels, func() interface{} { return &Gauge{} }).(*Gauge)
}

// Histogram returns the fixed-bucket histogram for name+labels,
// registering it on first use with the given upper bounds (sorted
// ascending; a +Inf bucket is implicit).
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return discardHistogram
	}
	return r.lookup(name, "histogram", labels, func() interface{} {
		h := &Histogram{buckets: append([]float64{}, buckets...)}
		h.counts = make([]uint64, len(h.buckets))
		return h
	}).(*Histogram)
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n panics (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Max raises the gauge to v if v is larger — the idiom for tracking
// maxima like the largest question asked.
func (g *Gauge) Max(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, ascending
	counts  []uint64  // non-cumulative per-bucket counts
	sum     float64
	count   uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.sum += v
	h.count++
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
			break
		}
	}
	h.mu.Unlock()
}

// Count reports the number of samples observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the sum of all samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts, sum and count.
func (h *Histogram) snapshot() ([]float64, []uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return append([]float64{}, h.buckets...), cum, h.sum, h.count
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation within the bucket containing
// the target rank — the same estimator as Prometheus's
// histogram_quantile. It returns NaN on an empty histogram; samples
// beyond the last finite bucket clamp to that bucket's upper bound
// (the estimator cannot see past its buckets). Use it to report
// p50/p95/p99 ask latency from exit dumps and /progress.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, cum, _, count := h.snapshot()
	return quantile(q, bounds, cum, count)
}

// quantile is the shared bucket-interpolation estimator over a
// cumulative snapshot.
func quantile(q float64, bounds []float64, cum []uint64, count uint64) float64 {
	if count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	for i, ub := range bounds {
		c := float64(cum[i])
		if c < rank {
			continue
		}
		lower, below := 0.0, 0.0
		if i > 0 {
			lower, below = bounds[i-1], float64(cum[i-1])
		}
		inBucket := c - below
		if inBucket == 0 {
			return ub
		}
		return lower + (ub-lower)*((rank-below)/inBucket)
	}
	// The rank falls in the implicit +Inf bucket: clamp to the largest
	// finite bound (or NaN when the histogram has no finite buckets).
	if len(bounds) == 0 {
		return math.NaN()
	}
	return bounds[len(bounds)-1]
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (families sorted by name, label variants in
// first-registration order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		if help, ok := r.help[name]; ok {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.typ)
		for _, key := range f.order {
			switch m := f.metrics[key].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", name, renderLabels(key), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", name, renderLabels(key), formatFloat(m.Value()))
			case *Histogram:
				bounds, cum, sum, count := m.snapshot()
				for i, ub := range bounds {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", name, renderLabels(appendLabel(key, "le", formatFloat(ub))), cum[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", name, renderLabels(appendLabel(key, "le", "+Inf")), count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", name, renderLabels(key), formatFloat(sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", name, renderLabels(key), count)
			}
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// renderLabels wraps a canonical label key in braces, or returns ""
// for the unlabeled variant.
func renderLabels(key string) string {
	if key == "" {
		return ""
	}
	return "{" + key + "}"
}

// appendLabel extends a canonical label key with one more pair.
func appendLabel(key, k, v string) string {
	pair := fmt.Sprintf("%s=%q", k, v)
	if key == "" {
		return pair
	}
	return key + "," + pair
}

// formatFloat renders a float the Prometheus way: integers bare,
// +Inf literal, otherwise shortest representation.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// CounterValue reads the counter for name+labels without registering
// it; absent counters read 0. Tests and the bench writer use it.
func (r *Registry) CounterValue(name string, labels ...string) int64 {
	if r == nil {
		return 0
	}
	key, _ := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return 0
	}
	c, ok := f.metrics[key].(*Counter)
	if !ok {
		return 0
	}
	return c.Value()
}

// SumCounter sums every label variant of the named counter family —
// e.g. total questions across phases.
func (r *Registry) SumCounter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return 0
	}
	var total int64
	for _, m := range f.metrics {
		if c, ok := m.(*Counter); ok {
			total += c.Value()
		}
	}
	return total
}

// PublishExpvar exposes the registry under the given expvar name as a
// JSON map of "metric{labels}" to value (histograms expose _sum and
// _count). It reports whether the registry was published: expvar is
// append-only per process, so publishing a name that is already taken
// — by an earlier registry or any other expvar — changes nothing and
// returns false, letting callers (and the obs server) detect the
// double registration instead of silently serving stale metrics.
func (r *Registry) PublishExpvar(name string) bool {
	if r == nil {
		return false
	}
	expvarPublishMu.Lock()
	defer expvarPublishMu.Unlock()
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return r.expvarMap() }))
	return true
}

// expvarPublishMu serializes the Get-then-Publish pair so two
// registries racing on one name cannot both pass the duplicate check
// (expvar.Publish panics on duplicates; the check must be atomic).
var expvarPublishMu sync.Mutex

// Point is one metric instance in a registry snapshot: a counter or
// gauge with its value, or a histogram with its cumulative snapshot.
type Point struct {
	// Name is the metric family name.
	Name string `json:"name"`
	// Labels are the instance's label pairs, sorted by key.
	Labels []Attr `json:"labels,omitempty"`
	// Type is "counter", "gauge" or "histogram".
	Type string `json:"type"`
	// Value is the counter or gauge value (0 for histograms).
	Value float64 `json:"value"`
	// Hist is the histogram snapshot (nil for counters and gauges).
	Hist *HistogramSnapshot `json:"hist,omitempty"`
}

// HistogramSnapshot is a consistent point-in-time view of one
// histogram: bucket upper bounds, cumulative counts, sum and count.
type HistogramSnapshot struct {
	Buckets []float64 `json:"buckets"`
	// Cumulative[i] counts samples ≤ Buckets[i]; Count covers the
	// implicit +Inf bucket.
	Cumulative []uint64 `json:"cumulative"`
	Sum        float64  `json:"sum"`
	Count      uint64   `json:"count"`
}

// Quantile estimates the q-quantile of the snapshot (see
// Histogram.Quantile).
func (h *HistogramSnapshot) Quantile(q float64) float64 {
	return quantile(q, h.Buckets, h.Cumulative, h.Count)
}

// Snapshot returns every metric instance in the registry — families
// sorted by name, label variants in first-registration order — as a
// flat point list. The obs server's /progress endpoint is built on it;
// a nil registry snapshots empty.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Point
	for _, name := range names {
		f := r.families[name]
		for _, key := range f.order {
			p := Point{Name: name, Labels: f.labels[key], Type: f.typ}
			switch m := f.metrics[key].(type) {
			case *Counter:
				p.Value = float64(m.Value())
			case *Gauge:
				p.Value = m.Value()
			case *Histogram:
				bounds, cum, sum, count := m.snapshot()
				p.Hist = &HistogramSnapshot{Buckets: bounds, Cumulative: cum, Sum: sum, Count: count}
			}
			out = append(out, p)
		}
	}
	r.mu.Unlock()
	return out
}

// expvarMap flattens the registry into a string-keyed map for expvar.
func (r *Registry) expvarMap() map[string]interface{} {
	out := map[string]interface{}{}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range r.families {
		for _, key := range f.order {
			full := name + renderLabels(key)
			switch m := f.metrics[key].(type) {
			case *Counter:
				out[full] = m.Value()
			case *Gauge:
				out[full] = m.Value()
			case *Histogram:
				m.mu.Lock()
				out[full+"_sum"] = m.sum
				out[full+"_count"] = m.count
				m.mu.Unlock()
			}
		}
	}
	return out
}
