package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named counters, gauges and histograms, optionally
// labeled, and renders them in the Prometheus text exposition format
// or through the expvar bridge. All operations are goroutine-safe. A
// nil *Registry hands out discard metrics, so instrumented code never
// branches on whether metrics are enabled.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	help     map[string]string
}

// family groups all label variants of one metric name.
type family struct {
	name string
	typ  string // "counter", "gauge" or "histogram"
	// metrics maps the rendered label string ("" for unlabeled) to
	// the metric instance; order preserves first-registration order
	// for stable exposition.
	metrics map[string]interface{}
	order   []string
	labels  map[string][]Attr
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}, help: map[string]string{}}
}

// Describe attaches HELP text to a metric name, rendered in the
// exposition.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// discard instances returned by a nil registry.
var (
	discardCounter   = &Counter{}
	discardGauge     = &Gauge{}
	discardHistogram = &Histogram{}
)

// labelKey renders "k1,v1,k2,v2" pairs canonically (sorted by key).
func labelKey(labels []string) (string, []Attr) {
	if len(labels) == 0 {
		return "", nil
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q (want key/value pairs)", labels))
	}
	attrs := make([]Attr, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		attrs = append(attrs, Attr{Key: labels[i], Value: labels[i+1]})
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = fmt.Sprintf("%s=%q", a.Key, a.Value)
	}
	return strings.Join(parts, ","), attrs
}

// lookup returns the metric instance for name+labels, creating it with
// make when absent. It panics when name is already registered with a
// different type — a programming error worth failing loudly on.
func (r *Registry) lookup(name, typ string, labels []string, make func() interface{}) interface{} {
	key, attrs := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, typ: typ, metrics: map[string]interface{}{}, labels: map[string][]Attr{}}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	m, ok := f.metrics[key]
	if !ok {
		m = make()
		f.metrics[key] = m
		f.order = append(f.order, key)
		f.labels[key] = attrs
	}
	return m
}

// Counter returns the monotonically increasing counter for
// name+labels (alternating key/value), registering it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return discardCounter
	}
	return r.lookup(name, "counter", labels, func() interface{} { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for name+labels, registering it on first
// use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return discardGauge
	}
	return r.lookup(name, "gauge", labels, func() interface{} { return &Gauge{} }).(*Gauge)
}

// Histogram returns the fixed-bucket histogram for name+labels,
// registering it on first use with the given upper bounds (sorted
// ascending; a +Inf bucket is implicit).
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return discardHistogram
	}
	return r.lookup(name, "histogram", labels, func() interface{} {
		h := &Histogram{buckets: append([]float64{}, buckets...)}
		h.counts = make([]uint64, len(h.buckets))
		return h
	}).(*Histogram)
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n panics (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Max raises the gauge to v if v is larger — the idiom for tracking
// maxima like the largest question asked.
func (g *Gauge) Max(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, ascending
	counts  []uint64  // non-cumulative per-bucket counts
	sum     float64
	count   uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.sum += v
	h.count++
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
			break
		}
	}
	h.mu.Unlock()
}

// Count reports the number of samples observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the sum of all samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts, sum and count.
func (h *Histogram) snapshot() ([]float64, []uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return append([]float64{}, h.buckets...), cum, h.sum, h.count
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (families sorted by name, label variants in
// first-registration order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		if help, ok := r.help[name]; ok {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.typ)
		for _, key := range f.order {
			switch m := f.metrics[key].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", name, renderLabels(key), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", name, renderLabels(key), formatFloat(m.Value()))
			case *Histogram:
				bounds, cum, sum, count := m.snapshot()
				for i, ub := range bounds {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", name, renderLabels(appendLabel(key, "le", formatFloat(ub))), cum[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", name, renderLabels(appendLabel(key, "le", "+Inf")), count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", name, renderLabels(key), formatFloat(sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", name, renderLabels(key), count)
			}
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// renderLabels wraps a canonical label key in braces, or returns ""
// for the unlabeled variant.
func renderLabels(key string) string {
	if key == "" {
		return ""
	}
	return "{" + key + "}"
}

// appendLabel extends a canonical label key with one more pair.
func appendLabel(key, k, v string) string {
	pair := fmt.Sprintf("%s=%q", k, v)
	if key == "" {
		return pair
	}
	return key + "," + pair
}

// formatFloat renders a float the Prometheus way: integers bare,
// +Inf literal, otherwise shortest representation.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// CounterValue reads the counter for name+labels without registering
// it; absent counters read 0. Tests and the bench writer use it.
func (r *Registry) CounterValue(name string, labels ...string) int64 {
	if r == nil {
		return 0
	}
	key, _ := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return 0
	}
	c, ok := f.metrics[key].(*Counter)
	if !ok {
		return 0
	}
	return c.Value()
}

// SumCounter sums every label variant of the named counter family —
// e.g. total questions across phases.
func (r *Registry) SumCounter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return 0
	}
	var total int64
	for _, m := range f.metrics {
		if c, ok := m.(*Counter); ok {
			total += c.Value()
		}
	}
	return total
}

// PublishExpvar exposes the registry under the given expvar name as a
// JSON map of "metric{labels}" to value (histograms expose _sum and
// _count). Publishing the same name twice replaces nothing and does
// not panic; the first registry wins for the lifetime of the process,
// matching expvar's append-only model.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return r.expvarMap() }))
}

// expvarMap flattens the registry into a string-keyed map for expvar.
func (r *Registry) expvarMap() map[string]interface{} {
	out := map[string]interface{}{}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range r.families {
		for _, key := range f.order {
			full := name + renderLabels(key)
			switch m := f.metrics[key].(type) {
			case *Counter:
				out[full] = m.Value()
			case *Gauge:
				out[full] = m.Value()
			case *Histogram:
				m.mu.Lock()
				out[full+"_sum"] = m.sum
				out[full+"_count"] = m.count
				m.mu.Unlock()
			}
		}
	}
	return out
}
