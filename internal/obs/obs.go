// Package obs is the unified observability layer of the repository:
// hierarchical span tracing, a metrics registry with Prometheus text
// exposition and an expvar bridge, and profiling hooks — all over the
// standard library only.
//
// Every theorem the repository reproduces is a claim about observable
// cost: questions asked, tuples per question, lattice nodes explored
// (Theorems 3.1, 3.5, 3.8, 4.2). This package is the single substrate
// through which the learners (internal/learn), the verifier
// (internal/verify), the oracles (internal/oracle) and the experiment
// harness (internal/exp) report that cost, and through which the CLIs
// expose it (-trace, -trace-out, -metrics, -profile).
//
// The span vocabulary mirrors the paper's algorithm structure: a
// learning run is a root span ("learn/qhorn1", "learn/rp") with one
// child per phase ("heads", "bodies", "existential") and grandchildren
// for the subroutines ("find", "findall", "gethead", "lattice-search",
// "prune"); a verification run is a root span ("verify") with one
// child per question family ("verify/A1" … "verify/N2"). Each
// membership question is an event on the innermost open span.
//
// Everything is nil-safe: a nil *Tracer yields nil *Spans whose
// methods no-op, and a nil *Registry hands out discard metrics, so
// instrumented code needs no "is observability on?" branches.
package obs

import "fmt"

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A builds an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Af builds an Attr with a formatted value.
func Af(key, format string, args ...interface{}) Attr {
	return Attr{Key: key, Value: fmt.Sprintf(format, args...)}
}

// Names of the metrics the instrumented packages maintain. Exposed as
// constants so CLIs, tests and dashboards agree on spelling.
const (
	// MetricQuestions counts membership questions at the oracle
	// boundary (oracle.CountInto); it is the paper's primary cost.
	MetricQuestions = "qhorn_questions_total"
	// MetricTuples counts tuples across all questions.
	MetricTuples = "qhorn_tuples_total"
	// MetricTuplesPerQuestion is the distribution of tuples per
	// question (Lemma 3.4 bounds cost when this is constant).
	MetricTuplesPerQuestion = "qhorn_tuples_per_question"
	// MetricOracleAskSeconds is the distribution of per-question oracle
	// answer latency in seconds. Serial asks are timed at the counting
	// adapter (oracle.CountInto); batched asks are timed worker-side by
	// the pool (oracle.ParallelInto), where individual answers overlap
	// but each inner ask is still bounded on its own.
	MetricOracleAskSeconds = "qhorn_oracle_ask_seconds"
	// MetricQuestionsByPhase counts questions per algorithm phase
	// (label "phase": heads, bodies, existential).
	MetricQuestionsByPhase = "qhorn_questions_by_phase_total"
	// MetricLatticeVisited counts lattice nodes the role-preserving
	// learner actually explored.
	MetricLatticeVisited = "qhorn_lattice_nodes_visited_total"
	// MetricLatticePruned counts lattice nodes skipped by dominance
	// or violation pruning.
	MetricLatticePruned = "qhorn_lattice_nodes_pruned_total"
	// MetricVerifyQuestions counts verification questions per family
	// (label "kind": A1…A4, N1, N2).
	MetricVerifyQuestions = "qhorn_verify_questions_total"
	// MetricVerifyDisagreements counts verification disagreements.
	MetricVerifyDisagreements = "qhorn_verify_disagreements_total"
	// MetricExperiments counts experiment-harness runs.
	MetricExperiments = "qhorn_experiments_total"
	// MetricFuzzCases counts differential-fuzz cases checked (label
	// "class": qhorn1, rp, verify).
	MetricFuzzCases = "qhorn_fuzz_cases_total"
	// MetricFuzzDisagreements counts differential-fuzz disagreements
	// (label "kind": the difffuzz.Kind that fired).
	MetricFuzzDisagreements = "qhorn_fuzz_disagreements_total"
	// MetricOracleInFlight gauges the membership questions currently
	// being answered by the batch engine's workers (oracle.Pool).
	MetricOracleInFlight = "qhorn_oracle_in_flight"
	// MetricBatches counts AskBatch calls through the worker pool.
	MetricBatches = "qhorn_oracle_batches_total"
	// MetricBatchSize is the distribution of questions per batch.
	MetricBatchSize = "qhorn_oracle_batch_size"
	// MetricBatchSeconds is the distribution of wall time per batch in
	// seconds.
	MetricBatchSeconds = "qhorn_oracle_batch_seconds"
	// MetricMemoHits counts questions the Memo wrapper answered from
	// its cache (or by joining another asker's in-flight question)
	// without consulting the inner oracle.
	MetricMemoHits = "qhorn_oracle_memo_hits_total"
	// MetricMemoMisses counts questions the Memo wrapper had to forward
	// to the inner oracle.
	MetricMemoMisses = "qhorn_oracle_memo_misses_total"
	// MetricBudgetSheds counts questions refused by an exhausted Budget
	// — the load-shedding signal of an admission-controlled service.
	MetricBudgetSheds = "qhorn_oracle_budget_shed_total"
	// MetricPhaseSeconds is the distribution of per-phase wall time:
	// one observation per phase/subroutine span of a learning run
	// (label "phase": learn/qhorn1, heads, find, lattice-search, …) and
	// per question family of a verification run (verify, verify/A1 …).
	MetricPhaseSeconds = "qhorn_phase_seconds"
	// MetricBruteBuildSeconds is the distribution of brute answer-
	// matrix build wall time (brute.NewMatrixInto).
	MetricBruteBuildSeconds = "qhorn_brute_matrix_build_seconds"
	// MetricBruteLearnSeconds is the distribution of per-learn wall
	// time through the brute answer matrix (label "algo": greedy or
	// exhaustive).
	MetricBruteLearnSeconds = "qhorn_brute_learn_seconds"
	// MetricServeSessionsActive gauges the live learn/verify sessions
	// of a qhornd server: sessions whose learner goroutine is running
	// (computing or awaiting remote answers).
	MetricServeSessionsActive = "qhornd_sessions_active"
	// MetricServeQuestionsOutstanding gauges membership questions
	// posted to remote answerers and not yet answered, summed across
	// every session of the server.
	MetricServeQuestionsOutstanding = "qhornd_questions_outstanding"
	// MetricServeAnswerSeconds is the distribution of remote answer
	// latency: time from a question entering a session's outstanding
	// batch to its answer arriving over POST /sessions/{id}/answers.
	MetricServeAnswerSeconds = "qhornd_answer_latency_seconds"
	// MetricServeSessions counts finished qhornd session runs by
	// outcome (label "outcome": done, budget, aborted, panic).
	MetricServeSessions = "qhornd_sessions_total"
	// MetricServeRejected counts session creations the admission gate
	// refused with HTTP 429 (server at max-sessions capacity).
	MetricServeRejected = "qhornd_admission_rejected_total"
	// MetricMemoTierHits counts questions the shared cross-session
	// memo tier (oracle.SharedMemo) answered from its cache or by
	// joining another session's in-flight question.
	MetricMemoTierHits = "qhornd_memo_hits_total"
	// MetricMemoTierMisses counts questions the shared memo tier
	// forwarded to an inner oracle and obtained an answer for. A
	// question whose leader panicked (budget, abort) is not a miss —
	// no answer was obtained.
	MetricMemoTierMisses = "qhornd_memo_misses_total"
	// MetricMemoTierEvictions counts cached answers the shared memo
	// tier's bounded 2Q replacement policy discarded.
	MetricMemoTierEvictions = "qhornd_memo_evictions_total"
	// MetricMemoTierSize gauges the answers currently cached by the
	// shared memo tier, across all shards and identities.
	MetricMemoTierSize = "qhornd_memo_size"
	// MetricServeHTTPSeconds is the distribution of qhornd HTTP handler
	// wall time, labeled by route (label "route": create, list, info,
	// delete, questions, answers, history, snapshot, amend, obs). Long-
	// poll waits count toward the questions/answers routes, so their
	// upper buckets stretch to the maxQuestionWait bound.
	MetricServeHTTPSeconds = "qhornd_http_seconds"
	// MetricServeHTTPInFlight gauges HTTP requests currently inside a
	// qhornd handler, long-polls included.
	MetricServeHTTPInFlight = "qhornd_http_in_flight"
)

// AnswerLatencyBuckets are the fixed histogram buckets for
// MetricServeAnswerSeconds: remote human answers arrive in seconds to
// minutes, simulated answerers in microseconds.
var AnswerLatencyBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60, 300, 1800}

// TuplesPerQuestionBuckets are the fixed histogram buckets for
// MetricTuplesPerQuestion: question payloads are small (most questions
// carry O(1)–O(n) tuples on n ≤ 64 variables).
var TuplesPerQuestionBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// LatencyBuckets are the fixed histogram buckets for
// MetricOracleAskSeconds, MetricPhaseSeconds and the other wall-time
// distributions, from microseconds (simulated oracles) to seconds
// (interactive users).
var LatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60}

// HTTPLatencyBuckets are the fixed histogram buckets for
// MetricServeHTTPSeconds: sub-millisecond for the pooled hot routes,
// stretching to tens of seconds for long-polled question fetches.
var HTTPLatencyBuckets = []float64{1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 0.05, 0.1, 0.5, 1, 5, 30}

// BatchSizeBuckets are the fixed histogram buckets for
// MetricBatchSize: batches range from a lone binary-search probe to
// the n head questions of §3.1.1 on universes of up to 64 variables.
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
