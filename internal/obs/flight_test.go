package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderDefaultCapacity(t *testing.T) {
	if got := NewFlightRecorder(0).Capacity(); got != DefaultFlightSpans {
		t.Errorf("default capacity = %d, want %d", got, DefaultFlightSpans)
	}
	if got := NewFlightRecorder(-3).Capacity(); got != DefaultFlightSpans {
		t.Errorf("negative capacity = %d, want %d", got, DefaultFlightSpans)
	}
	if got := NewFlightRecorder(7).Capacity(); got != 7 {
		t.Errorf("capacity = %d, want 7", got)
	}
}

func TestFlightRecorderOpenAndCompleted(t *testing.T) {
	f := NewFlightRecorder(8)
	tr := NewTracer(f)

	root := tr.StartSpan("learn/qhorn1", A("n", "6"))
	child := root.StartChild("heads")
	child.Event("question", A("phase", "heads"))
	child.Event("question", A("phase", "heads"))

	open, completed, dropped := f.Snapshot()
	if len(open) != 2 || len(completed) != 0 || dropped != 0 {
		t.Fatalf("open=%d completed=%d dropped=%d, want 2/0/0", len(open), len(completed), dropped)
	}
	// Oldest (root) first; both marked open.
	if open[0].Name != "learn/qhorn1" || open[1].Name != "heads" {
		t.Errorf("open order = %s, %s", open[0].Name, open[1].Name)
	}
	for _, fs := range open {
		if !fs.Open || !fs.Ended.IsZero() || fs.DurationUS != 0 {
			t.Errorf("open span %s carries completion state: %+v", fs.Name, fs)
		}
	}
	if open[1].Events != 2 {
		t.Errorf("child events = %d, want 2", open[1].Events)
	}
	if open[1].Parent != open[0].ID {
		t.Error("child does not reference the root as parent")
	}

	child.End()
	root.End()
	open, completed, dropped = f.Snapshot()
	if len(open) != 0 || len(completed) != 2 || dropped != 0 {
		t.Fatalf("after End: open=%d completed=%d dropped=%d, want 0/2/0", len(open), len(completed), dropped)
	}
	// The event count carries over from the open phase.
	var childDone *FlightSpan
	for i := range completed {
		if completed[i].Name == "heads" {
			childDone = &completed[i]
		}
	}
	if childDone == nil || childDone.Events != 2 {
		t.Fatalf("completed child = %+v, want 2 events", childDone)
	}
	if childDone.Open || childDone.Ended.IsZero() {
		t.Error("completed span still marked open")
	}
}

func TestFlightRecorderRingEviction(t *testing.T) {
	f := NewFlightRecorder(4)
	tr := NewTracer(f)
	for i := 0; i < 10; i++ {
		tr.StartSpan(fmt.Sprintf("s%d", i)).End()
	}
	open, completed, dropped := f.Snapshot()
	if len(open) != 0 {
		t.Errorf("open = %d, want 0", len(open))
	}
	if len(completed) != 4 || dropped != 6 {
		t.Fatalf("completed=%d dropped=%d, want 4/6", len(completed), dropped)
	}
	// The ring keeps the newest spans, unrolled oldest-first.
	for i, fs := range completed {
		if want := fmt.Sprintf("s%d", 6+i); fs.Name != want {
			t.Errorf("completed[%d] = %s, want %s", i, fs.Name, want)
		}
	}
}

func TestFlightRecorderWriteJSONL(t *testing.T) {
	f := NewFlightRecorder(8)
	tr := NewTracer(f)
	tr.StartSpan("done", A("k", "v")).End()
	still := tr.StartSpan("still-open")

	var b strings.Builder
	if err := f.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	var lines []FlightSpan
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		var fs FlightSpan
		if err := json.Unmarshal(sc.Bytes(), &fs); err != nil {
			t.Fatalf("line not JSON: %v\n%s", err, sc.Text())
		}
		lines = append(lines, fs)
	}
	if len(lines) != 2 {
		t.Fatalf("JSONL lines = %d, want 2", len(lines))
	}
	// Completed first, then open.
	if lines[0].Name != "done" || lines[0].Open {
		t.Errorf("first line = %+v, want completed 'done'", lines[0])
	}
	if lines[1].Name != "still-open" || !lines[1].Open {
		t.Errorf("second line = %+v, want open 'still-open'", lines[1])
	}
	if len(lines[0].Attrs) != 1 || lines[0].Attrs[0].Key != "k" {
		t.Errorf("attrs not preserved: %+v", lines[0].Attrs)
	}
	still.End()
}

// TestFlightRecorderConcurrent hammers one recorder from several
// tracers at once — the -obs-addr topology, where the session tracer
// and any embedded servers share the recorder — while concurrently
// dumping it. Run under -race this is the recorder's safety proof.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	const tracers, spansPer = 4, 200
	var wg sync.WaitGroup
	for i := 0; i < tracers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := NewTracer(f)
			for j := 0; j < spansPer; j++ {
				sp := tr.StartSpan("work")
				sp.Event("question", A("phase", "heads"))
				child := sp.StartChild("inner")
				child.End()
				sp.End()
			}
		}()
	}
	// Concurrent dumps must see a consistent snapshot at every point.
	dumpDone := make(chan struct{})
	go func() {
		defer close(dumpDone)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := f.WriteJSONL(&b); err != nil {
				t.Errorf("dump: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-dumpDone

	open, completed, dropped := f.Snapshot()
	if len(open) != 0 {
		t.Errorf("open = %d after all spans ended", len(open))
	}
	total := dropped + uint64(len(completed))
	if want := uint64(tracers * spansPer * 2); total != want {
		t.Errorf("completed total = %d, want %d", total, want)
	}
	if len(completed) != 64 {
		t.Errorf("ring holds %d, want capacity 64", len(completed))
	}
}
