package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock yields deterministic, strictly increasing times.
func fakeClock() func() time.Time {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestSpanHierarchyAndTreeRender(t *testing.T) {
	tree := NewTreeSink()
	tr := NewTracer(tree)
	tr.SetClock(fakeClock())

	root := tr.StartSpan("learn/rp", A("class", "rp"))
	heads := root.StartChild("heads")
	heads.Event("question", A("phase", "heads"))
	heads.Event("question", A("phase", "heads"))
	heads.End()
	bodies := root.StartChild("bodies")
	ls := bodies.StartChild("lattice-search", A("head", "x5"))
	ls.Event("question")
	ls.End()
	bodies.End()
	root.End()

	if got := heads.Events(); got != 2 {
		t.Errorf("heads events = %d, want 2", got)
	}
	if root.Duration() <= 0 {
		t.Error("root duration not positive")
	}

	var b strings.Builder
	tree.Render(&b)
	out := b.String()
	for _, want := range []string{"learn/rp", "├─ heads", "└─ bodies", "   └─ lattice-search", "(2 questions)", "class=rp", "head=x5"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
	names := tree.SpanNames()
	if len(names) != 4 {
		t.Errorf("SpanNames = %v, want 4 names", names)
	}
}

func TestNilTracerAndSpanAreSilent(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("root")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	// All operations on nil spans must be no-ops, not panics.
	child := sp.StartChild("x")
	child.Event("question")
	child.Annotate(A("k", "v"))
	child.End()
	sp.End()
	if sp.Duration() != 0 || sp.Events() != 0 {
		t.Error("nil span reported nonzero state")
	}
	tr.AddSink(NewTreeSink())
	tr.SetClock(time.Now)
}

func TestSpanDoubleEndIsIdempotent(t *testing.T) {
	tree := NewTreeSink()
	tr := NewTracer(tree)
	tr.SetClock(fakeClock())
	sp := tr.StartSpan("s")
	sp.End()
	first := sp.Ended
	sp.End()
	if !sp.Ended.Equal(first) {
		t.Error("second End moved the end time")
	}
}

func TestJSONLSinkRecords(t *testing.T) {
	var b strings.Builder
	sink := NewJSONLSink(&b)
	tr := NewTracer(sink)
	tr.SetClock(fakeClock())

	root := tr.StartSpan("verify")
	q := root.StartChild("verify/A1")
	q.Event("question", A("expect", "answer"), A("got", "answer"))
	q.End()
	root.End()
	if sink.Err() != nil {
		t.Fatalf("sink error: %v", sink.Err())
	}

	var types []string
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		var rec map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		types = append(types, rec["type"].(string))
	}
	want := []string{"start", "start", "event", "end", "end"}
	if len(types) != len(want) {
		t.Fatalf("got %d records %v, want %v", len(types), types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Errorf("record %d type = %s, want %s", i, types[i], want[i])
		}
	}
	// End records carry duration and parent linkage.
	if !strings.Contains(b.String(), `"duration_us"`) {
		t.Error("no duration_us in end records")
	}
	if !strings.Contains(b.String(), `"name":"verify/A1"`) {
		t.Error("child span name missing")
	}
}

func TestAddSinkSeesLaterSpans(t *testing.T) {
	tr := NewTracer()
	tr.SetClock(fakeClock())
	early := tr.StartSpan("early")
	early.End()
	tree := NewTreeSink()
	tr.AddSink(tree)
	late := tr.StartSpan("late")
	late.End()
	names := tree.SpanNames()
	if len(names) != 1 || names[0] != "late" {
		t.Errorf("late-attached sink saw %v", names)
	}
}
