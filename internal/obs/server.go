package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"
)

// Server is the live observability plane of a running process: one
// embeddable HTTP endpoint serving the metrics registry, the span
// flight recorder and the runtime profiler while learners, verifiers
// and experiments are still in flight. Every CLI mounts one with
// -obs-addr (obs.Flags); the qhornd session server of the ROADMAP
// mounts its sessions onto the same skeleton.
//
// Endpoints:
//
//	/            plain-text index of the endpoints below
//	/healthz     liveness probe ("ok")
//	/metrics     live Prometheus text exposition of the Registry
//	/spans       flight-recorder dump as JSONL (completed then open)
//	/progress    JSON snapshot: open spans, span totals, counters and
//	             histogram quantiles (p50/p95/p99)
//	/debug/pprof the standard runtime profiler (goroutine, heap,
//	             profile, trace, …)
type Server struct {
	reg    *Registry
	tracer *Tracer
	flight *FlightRecorder
	mux    *http.ServeMux
	start  time.Time

	srv *http.Server
	ln  net.Listener
}

// NewServer builds an observability server over the given registry,
// tracer and flight recorder, creating any nil piece: a nil flight
// recorder becomes NewFlightRecorder(0), a nil registry a fresh one,
// and a nil tracer a fresh tracer. Either way the flight recorder is
// attached to the tracer as a sink, so the span stream of every run
// instrumented with the tracer is dumpable at /spans. The server is
// inert until Start (or until its Handler is mounted elsewhere).
func NewServer(reg *Registry, tracer *Tracer, flight *FlightRecorder) *Server {
	if reg == nil {
		reg = NewRegistry()
	}
	if flight == nil {
		flight = NewFlightRecorder(0)
	}
	if tracer == nil {
		tracer = NewTracer(flight)
	} else {
		tracer.AddSink(flight)
	}
	s := &Server{reg: reg, tracer: tracer, flight: flight, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/spans", s.handleSpans)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// Registry returns the registry the server exposes at /metrics.
func (s *Server) Registry() *Registry { return s.reg }

// SpanTracer returns the tracer whose span stream feeds the flight
// recorder; instrument runs with it (run.WithObsServer does) to make
// them visible at /spans and /progress.
func (s *Server) SpanTracer() *Tracer { return s.tracer }

// Flight returns the server's flight recorder.
func (s *Server) Flight() *FlightRecorder { return s.flight }

// Handler returns the server's HTTP handler, for mounting into an
// existing server or an httptest harness.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port; an empty host binds all
// interfaces, port 0 picks a free port) and serves in a background
// goroutine until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: server: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return nil
}

// Addr returns the listening address ("127.0.0.1:6060"), or "" before
// Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL, or "" before Start.
func (s *Server) URL() string {
	if s.ln == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close stops the listener. Closing an unstarted or already-closed
// server is a no-op.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	srv := s.srv
	s.srv, s.ln = nil, nil
	return srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "qhorn observability endpoint (up %s)\n\n", time.Since(s.start).Round(time.Second))
	fmt.Fprintln(w, "/healthz      liveness probe")
	fmt.Fprintln(w, "/metrics      Prometheus text exposition")
	fmt.Fprintln(w, "/spans        flight-recorder dump (JSONL)")
	fmt.Fprintln(w, "/progress     JSON progress snapshot")
	fmt.Fprintln(w, "/debug/pprof  runtime profiles")
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // the write error is the client's disconnect
}

func (s *Server) handleSpans(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.flight.WriteJSONL(w) //nolint:errcheck // the write error is the client's disconnect
}

// Progress is the JSON document /progress serves: what is in flight
// right now and how the run's distributions look, computed live from
// the flight recorder and the metrics registry.
type Progress struct {
	// Now is the server's clock at snapshot time; UptimeSeconds counts
	// from server construction.
	Now           time.Time `json:"now"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	// OpenSpans are the currently-open spans, oldest first — the
	// in-flight sessions and phases.
	OpenSpans []FlightSpan `json:"open_spans"`
	// CompletedSpans counts spans the flight recorder has seen end;
	// DroppedSpans of them have been evicted from the ring.
	CompletedSpans uint64 `json:"completed_spans"`
	DroppedSpans   uint64 `json:"dropped_spans"`
	// Counters holds every counter and gauge, keyed "name{labels}".
	Counters map[string]float64 `json:"counters,omitempty"`
	// Histograms summarizes every histogram, keyed "name{labels}".
	Histograms map[string]ProgressHistogram `json:"histograms,omitempty"`
}

// ProgressHistogram is the /progress summary of one histogram:
// count, sum and interpolated quantiles (Histogram.Quantile).
type ProgressHistogram struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// ProgressSnapshot builds the /progress document (exported so embedded
// servers and tests can render it without HTTP).
func (s *Server) ProgressSnapshot() Progress {
	open, completed, dropped := s.flight.Snapshot()
	p := Progress{
		Now:            time.Now(),
		UptimeSeconds:  time.Since(s.start).Seconds(),
		OpenSpans:      open,
		CompletedSpans: dropped + uint64(len(completed)),
		DroppedSpans:   dropped,
	}
	if p.OpenSpans == nil {
		p.OpenSpans = []FlightSpan{}
	}
	for _, pt := range s.reg.Snapshot() {
		key := pointKey(pt)
		switch {
		case pt.Hist != nil:
			if p.Histograms == nil {
				p.Histograms = map[string]ProgressHistogram{}
			}
			p.Histograms[key] = ProgressHistogram{
				Count: pt.Hist.Count,
				Sum:   pt.Hist.Sum,
				P50:   jsonSafe(pt.Hist.Quantile(0.50)),
				P95:   jsonSafe(pt.Hist.Quantile(0.95)),
				P99:   jsonSafe(pt.Hist.Quantile(0.99)),
			}
		default:
			if p.Counters == nil {
				p.Counters = map[string]float64{}
			}
			p.Counters[key] = pt.Value
		}
	}
	return p
}

// pointKey renders a snapshot point as "name{k="v",…}", matching the
// exposition spelling.
func pointKey(pt Point) string {
	if len(pt.Labels) == 0 {
		return pt.Name
	}
	parts := make([]string, len(pt.Labels))
	for i, a := range pt.Labels {
		parts[i] = fmt.Sprintf("%s=%q", a.Key, a.Value)
	}
	sort.Strings(parts)
	key := pt.Name + "{"
	for i, p := range parts {
		if i > 0 {
			key += ","
		}
		key += p
	}
	return key + "}"
}

// jsonSafe maps NaN/Inf (empty-histogram quantiles) to 0, which
// encoding/json cannot represent.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.ProgressSnapshot()) //nolint:errcheck // the write error is the client's disconnect
}
