package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// serverFixture builds a server with one completed learning span, one
// open span and a few metrics — enough for every endpoint to have
// content.
func serverFixture() (*Server, *Span) {
	reg := NewRegistry()
	reg.Counter(MetricQuestions).Add(12)
	h := reg.Histogram(MetricOracleAskSeconds, LatencyBuckets)
	h.Observe(0.002)
	h.Observe(0.004)

	srv := NewServer(reg, nil, NewFlightRecorder(16))
	tr := srv.SpanTracer()
	tr.StartSpan("learn/qhorn1").End()
	open := tr.StartSpan("verify")
	return srv, open
}

func get(t *testing.T, h http.Handler, path string) (int, string, http.Header) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String(), rec.Header()
}

func TestServerHealthz(t *testing.T) {
	srv, _ := serverFixture()
	code, body, _ := get(t, srv.Handler(), "/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz = %d %q", code, body)
	}
}

func TestServerIndex(t *testing.T) {
	srv, _ := serverFixture()
	code, body, _ := get(t, srv.Handler(), "/")
	if code != 200 {
		t.Fatalf("index = %d", code)
	}
	for _, want := range []string{"/healthz", "/metrics", "/spans", "/progress", "/debug/pprof"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %s", want)
		}
	}
	if code, _, _ := get(t, srv.Handler(), "/no-such-page"); code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestServerMetrics(t *testing.T) {
	srv, _ := serverFixture()
	code, body, hdr := get(t, srv.Handler(), "/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Errorf("metrics content type = %q", ct)
	}
	for _, want := range []string{
		"qhorn_questions_total 12",
		"# TYPE qhorn_oracle_ask_seconds histogram",
		"qhorn_oracle_ask_seconds_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestServerSpans(t *testing.T) {
	srv, _ := serverFixture()
	code, body, hdr := get(t, srv.Handler(), "/spans")
	if code != 200 {
		t.Fatalf("spans = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("spans content type = %q", ct)
	}
	var names []string
	var opens []bool
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		var fs FlightSpan
		if err := json.Unmarshal(sc.Bytes(), &fs); err != nil {
			t.Fatalf("spans line not JSON: %v", err)
		}
		names = append(names, fs.Name)
		opens = append(opens, fs.Open)
	}
	if len(names) != 2 || names[0] != "learn/qhorn1" || names[1] != "verify" {
		t.Fatalf("spans = %v", names)
	}
	if opens[0] || !opens[1] {
		t.Errorf("open flags = %v, want [false true]", opens)
	}
}

func TestServerProgress(t *testing.T) {
	srv, openSpan := serverFixture()
	code, body, hdr := get(t, srv.Handler(), "/progress")
	if code != 200 {
		t.Fatalf("progress = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("progress content type = %q", ct)
	}
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("progress not JSON: %v", err)
	}
	if len(p.OpenSpans) != 1 || p.OpenSpans[0].Name != "verify" {
		t.Fatalf("open spans = %+v", p.OpenSpans)
	}
	if p.CompletedSpans != 1 || p.DroppedSpans != 0 {
		t.Errorf("completed=%d dropped=%d, want 1/0", p.CompletedSpans, p.DroppedSpans)
	}
	if p.Counters[MetricQuestions] != 12 {
		t.Errorf("counters = %v", p.Counters)
	}
	hist, ok := p.Histograms[MetricOracleAskSeconds]
	if !ok || hist.Count != 2 {
		t.Fatalf("histograms = %v", p.Histograms)
	}
	if hist.P50 <= 0 || hist.P99 < hist.P50 {
		t.Errorf("quantiles p50=%v p99=%v", hist.P50, hist.P99)
	}
	openSpan.End()

	// With no open spans the JSON still carries an empty array, not
	// null — consumers iterate without a nil check.
	_, body, _ = get(t, srv.Handler(), "/progress")
	if !strings.Contains(body, `"open_spans": []`) {
		t.Errorf("empty open span list not rendered as []:\n%s", body)
	}
}

func TestServerPprof(t *testing.T) {
	srv, _ := serverFixture()
	code, body, _ := get(t, srv.Handler(), "/debug/pprof/goroutine?debug=1")
	if code != 200 || !strings.Contains(body, "goroutine profile") {
		t.Fatalf("pprof goroutine = %d %q…", code, body[:min(len(body), 60)])
	}
	code, _, _ = get(t, srv.Handler(), "/debug/pprof/")
	if code != 200 {
		t.Errorf("pprof index = %d", code)
	}
}

func TestServerStartServesAndCloses(t *testing.T) {
	srv, _ := serverFixture()
	if srv.Addr() != "" || srv.URL() != "" {
		t.Error("unstarted server reports an address")
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("live healthz = %d %q", resp.StatusCode, body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close errored: %v", err)
	}
	if _, err := http.Get(srv.URL() + "/healthz"); err == nil {
		t.Error("server still answering after Close")
	}
}

func TestServerStartBadAddr(t *testing.T) {
	srv, _ := serverFixture()
	if err := srv.Start("256.256.256.256:99999"); err == nil {
		srv.Close()
		t.Fatal("Start on a bogus address did not error")
	}
}

// NewServer with an existing tracer must attach the flight recorder to
// it, so spans recorded before/after construction both reach /spans.
func TestServerAttachesToExistingTracer(t *testing.T) {
	tr := NewTracer()
	srv := NewServer(nil, tr, nil)
	if srv.SpanTracer() != tr {
		t.Fatal("server replaced the supplied tracer")
	}
	tr.StartSpan("late").End()
	_, completed, _ := srv.Flight().Snapshot()
	if len(completed) != 1 || completed[0].Name != "late" {
		t.Fatalf("flight = %+v", completed)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
