package obs

import (
	"encoding/json"
	"expvar"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("qhorn_questions_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("qhorn_questions_total") != c {
		t.Error("second lookup returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2.0 {
		t.Errorf("gauge = %v, want 2", g.Value())
	}
	g.Max(1.0)
	if g.Value() != 2.0 {
		t.Error("Max lowered the gauge")
	}
	g.Max(7)
	if g.Value() != 7.0 {
		t.Error("Max did not raise the gauge")
	}

	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 105 {
		t.Errorf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestLabeledVariantsAreDistinct(t *testing.T) {
	r := NewRegistry()
	r.Counter("q", "phase", "heads").Add(3)
	r.Counter("q", "phase", "bodies").Add(4)
	if got := r.CounterValue("q", "phase", "heads"); got != 3 {
		t.Errorf("heads = %d", got)
	}
	if got := r.SumCounter("q"); got != 7 {
		t.Errorf("sum = %d, want 7", got)
	}
	if got := r.CounterValue("q", "phase", "existential"); got != 0 {
		t.Errorf("absent variant = %d, want 0", got)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("gauge lookup of a counter name did not panic")
		}
	}()
	r.Gauge("m")
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Describe("qhorn_questions_total", "membership questions asked")
	r.Counter("qhorn_questions_total").Add(12)
	r.Counter("qhorn_questions_by_phase_total", "phase", "heads").Add(5)
	r.Gauge("qhorn_max_tuples").Set(8)
	h := r.Histogram("qhorn_tuples_per_question", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP qhorn_questions_total membership questions asked",
		"# TYPE qhorn_questions_total counter",
		"qhorn_questions_total 12",
		`qhorn_questions_by_phase_total{phase="heads"} 5`,
		"# TYPE qhorn_max_tuples gauge",
		"qhorn_max_tuples 8",
		"# TYPE qhorn_tuples_per_question histogram",
		`qhorn_tuples_per_question_bucket{le="1"} 1`,
		`qhorn_tuples_per_question_bucket{le="2"} 1`,
		`qhorn_tuples_per_question_bucket{le="4"} 2`,
		`qhorn_tuples_per_question_bucket{le="+Inf"} 3`,
		"qhorn_tuples_per_question_sum 13",
		"qhorn_tuples_per_question_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNilRegistryDiscards(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", []float64{1}).Observe(1)
	r.Describe("c", "x")
	r.PublishExpvar("nil-registry-test")
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.CounterValue("c") != 0 || r.SumCounter("c") != 0 {
		t.Error("nil registry reported values")
	}
}

func TestExpvarBridge(t *testing.T) {
	r := NewRegistry()
	r.Counter("qhorn_questions_total").Add(9)
	h := r.Histogram("lat", []float64{1})
	h.Observe(0.5)
	r.PublishExpvar("qhorn-test-metrics")
	// Publishing a second registry under the same name must not panic
	// and must not displace the first.
	NewRegistry().PublishExpvar("qhorn-test-metrics")

	v := expvar.Get("qhorn-test-metrics")
	if v == nil {
		t.Fatal("expvar not published")
	}
	var m map[string]interface{}
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("expvar not JSON: %v", err)
	}
	if m["qhorn_questions_total"].(float64) != 9 {
		t.Errorf("expvar questions = %v", m["qhorn_questions_total"])
	}
	if m["lat_count"].(float64) != 1 {
		t.Errorf("expvar lat_count = %v", m["lat_count"])
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			phase := []string{"heads", "bodies", "existential"}[i%3]
			for j := 0; j < 500; j++ {
				r.Counter("q", "phase", phase).Inc()
				r.Gauge("g").Max(float64(j))
				r.Histogram("h", []float64{1, 10, 100}).Observe(float64(j))
			}
		}(i)
	}
	wg.Wait()
	if got := r.SumCounter("q"); got != 8*500 {
		t.Errorf("sum = %d, want %d", got, 8*500)
	}
	if r.Histogram("h", []float64{1, 10, 100}).Count() != 8*500 {
		t.Error("histogram lost samples")
	}
}
