package obs

import (
	"encoding/json"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("qhorn_questions_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("qhorn_questions_total") != c {
		t.Error("second lookup returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2.0 {
		t.Errorf("gauge = %v, want 2", g.Value())
	}
	g.Max(1.0)
	if g.Value() != 2.0 {
		t.Error("Max lowered the gauge")
	}
	g.Max(7)
	if g.Value() != 7.0 {
		t.Error("Max did not raise the gauge")
	}

	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 105 {
		t.Errorf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestLabeledVariantsAreDistinct(t *testing.T) {
	r := NewRegistry()
	r.Counter("q", "phase", "heads").Add(3)
	r.Counter("q", "phase", "bodies").Add(4)
	if got := r.CounterValue("q", "phase", "heads"); got != 3 {
		t.Errorf("heads = %d", got)
	}
	if got := r.SumCounter("q"); got != 7 {
		t.Errorf("sum = %d, want 7", got)
	}
	if got := r.CounterValue("q", "phase", "existential"); got != 0 {
		t.Errorf("absent variant = %d, want 0", got)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("gauge lookup of a counter name did not panic")
		}
	}()
	r.Gauge("m")
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Describe("qhorn_questions_total", "membership questions asked")
	r.Counter("qhorn_questions_total").Add(12)
	r.Counter("qhorn_questions_by_phase_total", "phase", "heads").Add(5)
	r.Gauge("qhorn_max_tuples").Set(8)
	h := r.Histogram("qhorn_tuples_per_question", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP qhorn_questions_total membership questions asked",
		"# TYPE qhorn_questions_total counter",
		"qhorn_questions_total 12",
		`qhorn_questions_by_phase_total{phase="heads"} 5`,
		"# TYPE qhorn_max_tuples gauge",
		"qhorn_max_tuples 8",
		"# TYPE qhorn_tuples_per_question histogram",
		`qhorn_tuples_per_question_bucket{le="1"} 1`,
		`qhorn_tuples_per_question_bucket{le="2"} 1`,
		`qhorn_tuples_per_question_bucket{le="4"} 2`,
		`qhorn_tuples_per_question_bucket{le="+Inf"} 3`,
		"qhorn_tuples_per_question_sum 13",
		"qhorn_tuples_per_question_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNilRegistryDiscards(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", []float64{1}).Observe(1)
	r.Describe("c", "x")
	if r.PublishExpvar("nil-registry-test") {
		t.Error("nil registry claimed to publish an expvar")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry returned a non-nil snapshot")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.CounterValue("c") != 0 || r.SumCounter("c") != 0 {
		t.Error("nil registry reported values")
	}
}

func TestExpvarBridge(t *testing.T) {
	r := NewRegistry()
	r.Counter("qhorn_questions_total").Add(9)
	h := r.Histogram("lat", []float64{1})
	h.Observe(0.5)
	if !r.PublishExpvar("qhorn-test-metrics") {
		t.Error("first PublishExpvar reported failure")
	}
	// Publishing a second registry under the same name must not panic,
	// must not displace the first, and must report the refusal instead
	// of silently dropping the registry.
	if NewRegistry().PublishExpvar("qhorn-test-metrics") {
		t.Error("duplicate PublishExpvar reported success")
	}

	v := expvar.Get("qhorn-test-metrics")
	if v == nil {
		t.Fatal("expvar not published")
	}
	var m map[string]interface{}
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("expvar not JSON: %v", err)
	}
	if m["qhorn_questions_total"].(float64) != 9 {
		t.Errorf("expvar questions = %v", m["qhorn_questions_total"])
	}
	if m["lat_count"].(float64) != 1 {
		t.Errorf("expvar lat_count = %v", m["lat_count"])
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewRegistry().Histogram("lat", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile is not NaN")
	}
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	cases := []struct{ q, want float64 }{
		{0.125, 0.5}, // half-way into the first bucket [0,1]
		{0.25, 1},    // exactly the first bucket's upper bound
		{0.5, 2},     // exactly the second bucket's upper bound
		{0.75, 4},    // exactly the third bucket's upper bound
		{0.99, 4},    // +Inf bucket clamps to the last finite bound
		{1, 4},
		{-3, 0}, // q clamps into [0,1]
		{7, 4},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(h.Quantile(math.NaN())) {
		t.Error("Quantile(NaN) is not NaN")
	}

	// Uniform interpolation inside one bucket.
	u := NewRegistry().Histogram("u", []float64{10})
	for i := 0; i < 4; i++ {
		u.Observe(5)
	}
	if got := u.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("uniform Quantile(0.5) = %v, want 5", got)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "phase", "heads").Add(3)
	r.Gauge("a_gauge").Set(2.5)
	h := r.Histogram("c_lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)

	pts := r.Snapshot()
	if len(pts) != 3 {
		t.Fatalf("snapshot has %d points, want 3", len(pts))
	}
	// Families come sorted by name.
	if pts[0].Name != "a_gauge" || pts[1].Name != "b_total" || pts[2].Name != "c_lat" {
		t.Fatalf("snapshot order = %s, %s, %s", pts[0].Name, pts[1].Name, pts[2].Name)
	}
	if pts[0].Type != "gauge" || pts[0].Value != 2.5 {
		t.Errorf("gauge point = %+v", pts[0])
	}
	if pts[1].Type != "counter" || pts[1].Value != 3 || len(pts[1].Labels) != 1 || pts[1].Labels[0].Value != "heads" {
		t.Errorf("counter point = %+v", pts[1])
	}
	hist := pts[2].Hist
	if hist == nil || hist.Count != 2 || hist.Sum != 2 {
		t.Fatalf("histogram snapshot = %+v", hist)
	}
	if got := hist.Quantile(0.5); math.Abs(got-1) > 1e-9 {
		t.Errorf("snapshot Quantile(0.5) = %v, want 1", got)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			phase := []string{"heads", "bodies", "existential"}[i%3]
			for j := 0; j < 500; j++ {
				r.Counter("q", "phase", phase).Inc()
				r.Gauge("g").Max(float64(j))
				r.Histogram("h", []float64{1, 10, 100}).Observe(float64(j))
			}
		}(i)
	}
	wg.Wait()
	if got := r.SumCounter("q"); got != 8*500 {
		t.Errorf("sum = %d, want %d", got, 8*500)
	}
	if r.Histogram("h", []float64{1, 10, 100}).Count() != 8*500 {
		t.Error("histogram lost samples")
	}
}
