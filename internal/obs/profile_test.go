package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestProfileWritesBothFiles(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "run")
	p, err := StartProfile(prefix)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		info, err := os.Stat(prefix + suffix)
		if err != nil {
			t.Fatalf("%s: %v", suffix, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", suffix)
		}
	}
}

func TestProfileStartErrorOnBadPrefix(t *testing.T) {
	if _, err := StartProfile(filepath.Join(t.TempDir(), "no-such-dir", "run")); err == nil {
		t.Fatal("StartProfile into a missing directory did not error")
	}
}

func TestProfileStopNilIsNoop(t *testing.T) {
	var p *Profile
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}
