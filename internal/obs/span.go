package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed region of a run: a learning phase, a lattice
// search, a verification family. Spans form a tree; membership
// questions are recorded as events on the innermost open span.
//
// A nil *Span is valid and silent, so callers never branch on whether
// tracing is enabled.
type Span struct {
	tracer *Tracer
	parent *Span

	// ID is unique within the tracer; ParentID is 0 for roots.
	ID       uint64
	ParentID uint64
	// Name labels the span ("learn/rp", "heads", "lattice-search", …).
	Name string
	// Started and Ended bound the span; Ended is zero while open.
	Started time.Time
	Ended   time.Time
	// Attrs are the span's annotations.
	Attrs []Attr

	events int64 // number of events recorded, for cheap summaries
}

// Event is one point-in-time occurrence inside a span — typically one
// membership question with its phase, purpose and answer.
type Event struct {
	Name  string
	Time  time.Time
	Attrs []Attr
}

// SpanSink receives the span stream. The Tracer serializes all sink
// calls under its lock, so implementations need no locking of their
// own.
type SpanSink interface {
	// SpanStart is called when a span opens.
	SpanStart(s *Span)
	// SpanEvent is called for each event recorded on a span.
	SpanEvent(s *Span, e Event)
	// SpanEnd is called when a span closes; s.Ended is set.
	SpanEnd(s *Span)
}

// Tracer creates spans and fans them out to its sinks. A nil *Tracer
// is valid and produces nil (silent) spans.
type Tracer struct {
	mu     sync.Mutex
	sinks  []SpanSink
	nextID atomic.Uint64
	// now is the clock, replaceable in tests for deterministic trees.
	now func() time.Time
}

// NewTracer returns a tracer emitting to the given sinks.
func NewTracer(sinks ...SpanSink) *Tracer {
	return &Tracer{sinks: sinks, now: time.Now}
}

// AddSink attaches another sink. It only sees spans started after the
// call.
func (t *Tracer) AddSink(s SpanSink) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	t.sinks = append(t.sinks, s)
	t.mu.Unlock()
}

// SetClock replaces the tracer's clock; tests use it to render
// deterministic trees.
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

// StartSpan opens a root span. End it with Span.End.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	return t.start(nil, name, attrs)
}

func (t *Tracer) start(parent *Span, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		tracer: t,
		parent: parent,
		ID:     t.nextID.Add(1),
		Name:   name,
		Attrs:  attrs,
	}
	if parent != nil {
		s.ParentID = parent.ID
	}
	t.mu.Lock()
	s.Started = t.now()
	for _, sink := range t.sinks {
		sink.SpanStart(s)
	}
	t.mu.Unlock()
	return s
}

// StartChild opens a child span of s. On a nil span it returns nil,
// so instrumentation chains freely when tracing is off.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(s, name, attrs)
}

// Annotate appends attributes to an open span.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	s.Attrs = append(s.Attrs, attrs...)
	s.tracer.mu.Unlock()
}

// Event records a point-in-time event on the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	e := Event{Name: name, Time: t.now(), Attrs: attrs}
	s.events++
	for _, sink := range t.sinks {
		sink.SpanEvent(s, e)
	}
	t.mu.Unlock()
}

// Events reports how many events the span has recorded.
func (s *Span) Events() int64 {
	if s == nil {
		return 0
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return s.events
}

// End closes the span. Ending a nil or already-ended span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	if !s.Ended.IsZero() {
		t.mu.Unlock()
		return
	}
	s.Ended = t.now()
	for _, sink := range t.sinks {
		sink.SpanEnd(s)
	}
	t.mu.Unlock()
}

// Duration is Ended − Started for a closed span, 0 for an open one.
func (s *Span) Duration() time.Duration {
	if s == nil || s.Ended.IsZero() {
		return 0
	}
	return s.Ended.Sub(s.Started)
}
