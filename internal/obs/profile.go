package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile captures CPU and heap profiles around a run: StartProfile
// begins CPU sampling into <prefix>.cpu.pprof, and Stop finishes it
// and writes the heap profile to <prefix>.heap.pprof. Both files are
// readable with `go tool pprof`.
type Profile struct {
	cpu      *os.File
	heapPath string
}

// StartProfile begins profiling with the given file prefix. The
// returned Profile must be stopped exactly once.
func StartProfile(prefix string) (*Profile, error) {
	f, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return &Profile{cpu: f, heapPath: prefix + ".heap.pprof"}, nil
}

// Stop ends CPU sampling and writes the heap profile. Stopping a nil
// Profile is a no-op.
func (p *Profile) Stop() error {
	if p == nil {
		return nil
	}
	pprof.StopCPUProfile()
	if err := p.cpu.Close(); err != nil {
		return err
	}
	f, err := os.Create(p.heapPath)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC() // flush recently freed objects so the profile reflects live heap
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
