package obs

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseFlags(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFlagsOffProducesNilTracer(t *testing.T) {
	f := parseFlags(t)
	s, err := f.Start(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tracer != nil {
		t.Error("tracer created with no trace flags")
	}
	if s.Metrics == nil {
		t.Error("metrics registry missing")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFlagsTraceAndMetricsOutput(t *testing.T) {
	f := parseFlags(t, "-trace", "-metrics")
	var out strings.Builder
	s, err := f.Start(&out)
	if err != nil {
		t.Fatal(err)
	}
	sp := s.Tracer.StartSpan("learn/qhorn1")
	sp.StartChild("heads").End()
	sp.End()
	s.Metrics.Counter(MetricQuestions).Add(3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Span tree:", "learn/qhorn1", "└─ heads", "Metrics:", "qhorn_questions_total 3"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestFlagsTraceOutWritesJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f := parseFlags(t, "-trace-out", path)
	s, err := f.Start(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	s.Tracer.StartSpan("root").End()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"type":"start"`) || !strings.Contains(string(raw), `"type":"end"`) {
		t.Errorf("JSONL incomplete:\n%s", raw)
	}
}

func TestFlagsProfileWritesFiles(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "prof")
	f := parseFlags(t, "-profile", prefix)
	s, err := f.Start(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Some work so the CPU profile is non-degenerate.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i
	}
	_ = x
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		if fi, err := os.Stat(prefix + suffix); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty: %v", suffix, err)
		}
	}
}

func TestFlagsExtraSinkForcesTracer(t *testing.T) {
	f := parseFlags(t)
	s, err := f.Start(io.Discard, NewTreeSink())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Tracer == nil {
		t.Error("extra sink did not force a tracer")
	}
}

func TestFlagsBadTraceOutPath(t *testing.T) {
	f := parseFlags(t, "-trace-out", "/nonexistent-dir/x/y.jsonl")
	if _, err := f.Start(io.Discard); err == nil {
		t.Error("bad trace-out path accepted")
	}
}

func TestFlagsObsAddrServesSession(t *testing.T) {
	f := parseFlags(t, "-obs-addr", "127.0.0.1:0", "-obs-spans", "32")
	var out strings.Builder
	s, err := f.Start(&out)
	if err != nil {
		t.Fatal(err)
	}
	if s.Server() == nil {
		t.Fatal("no server despite -obs-addr")
	}
	if s.Tracer == nil {
		t.Error("-obs-addr did not force the tracer on")
	}
	if got := s.Server().Flight().Capacity(); got != 32 {
		t.Errorf("flight capacity = %d, want 32 from -obs-spans", got)
	}
	if !strings.Contains(out.String(), s.Server().URL()) {
		t.Errorf("startup banner does not announce %s:\n%s", s.Server().URL(), out.String())
	}

	// A run instrumented with the session's tracer and registry is
	// visible at the live endpoints.
	s.Tracer.StartSpan("learn/qhorn1").End()
	s.Metrics.Counter(MetricQuestions).Add(5)
	url := s.Server().URL()
	if body := httpGet(t, url+"/metrics"); !strings.Contains(body, "qhorn_questions_total 5") {
		t.Errorf("live /metrics missing counter:\n%s", body)
	}
	if body := httpGet(t, url+"/spans"); !strings.Contains(body, `"name":"learn/qhorn1"`) {
		t.Errorf("live /spans missing span:\n%s", body)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Server() != nil {
		t.Error("server still referenced after Close")
	}
}

func TestFlagsObsAddrBadAddrFailsStart(t *testing.T) {
	f := parseFlags(t, "-obs-addr", "256.256.256.256:99999")
	if _, err := f.Start(io.Discard); err == nil {
		t.Error("bogus -obs-addr accepted")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
