package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// JSONLSink writes the span stream as one JSON object per line:
// {"type":"start"|"event"|"end", …}. The format is append-only and
// replayable, suitable for -trace-out files consumed by external
// tooling.
type JSONLSink struct {
	w   io.Writer
	err error
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Err reports the first write or encode error, if any.
func (j *JSONLSink) Err() error { return j.err }

type jsonlRecord struct {
	Type   string `json:"type"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	Time   string `json:"time"`
	// DurationUS is the span duration in microseconds (end records).
	DurationUS int64  `json:"duration_us,omitempty"`
	Events     int64  `json:"events,omitempty"`
	Attrs      []Attr `json:"attrs,omitempty"`
}

func (j *JSONLSink) write(r jsonlRecord) {
	if j.err != nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		j.err = err
	}
}

func (j *JSONLSink) SpanStart(s *Span) {
	j.write(jsonlRecord{Type: "start", ID: s.ID, Parent: s.ParentID, Name: s.Name,
		Time: s.Started.Format(time.RFC3339Nano), Attrs: s.Attrs})
}

func (j *JSONLSink) SpanEvent(s *Span, e Event) {
	j.write(jsonlRecord{Type: "event", ID: s.ID, Name: e.Name,
		Time: e.Time.Format(time.RFC3339Nano), Attrs: e.Attrs})
}

func (j *JSONLSink) SpanEnd(s *Span) {
	j.write(jsonlRecord{Type: "end", ID: s.ID, Parent: s.ParentID, Name: s.Name,
		Time:       s.Ended.Format(time.RFC3339Nano),
		DurationUS: s.Duration().Microseconds(), Events: s.events})
}

// TreeSink accumulates the span tree in memory and renders it as a
// human-readable outline — the -trace output the CLIs print at exit.
type TreeSink struct {
	nodes map[uint64]*treeNode
	roots []*treeNode
}

type treeNode struct {
	span     *Span
	children []*treeNode
	// questions counts "question" events; other counts the rest, so
	// e.g. a verification span's "disagreement" events are not
	// mislabeled as questions in the rendering.
	questions int64
	other     int64
	dur       time.Duration
	attrs     []Attr
}

// NewTreeSink returns an empty tree collector.
func NewTreeSink() *TreeSink { return &TreeSink{nodes: map[uint64]*treeNode{}} }

func (t *TreeSink) SpanStart(s *Span) {
	n := &treeNode{span: s}
	t.nodes[s.ID] = n
	if p, ok := t.nodes[s.ParentID]; ok && s.ParentID != 0 {
		p.children = append(p.children, n)
	} else {
		t.roots = append(t.roots, n)
	}
}

func (t *TreeSink) SpanEvent(s *Span, e Event) {
	if n, ok := t.nodes[s.ID]; ok {
		if e.Name == "question" {
			n.questions++
		} else {
			n.other++
		}
	}
}

func (t *TreeSink) SpanEnd(s *Span) {
	if n, ok := t.nodes[s.ID]; ok {
		n.dur = s.Duration()
		n.attrs = append([]Attr{}, s.Attrs...)
	}
}

// Render writes the collected tree: one line per span with duration,
// question (event) count and attributes, indented with box-drawing
// connectors.
func (t *TreeSink) Render(w io.Writer) {
	for _, r := range t.roots {
		renderNode(w, r, "", "")
	}
}

// SpanNames returns the distinct span names collected, sorted — the
// cheap way for tests to assert phase coverage.
func (t *TreeSink) SpanNames() []string {
	seen := map[string]bool{}
	for _, n := range t.nodes {
		seen[n.span.Name] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func renderNode(w io.Writer, n *treeNode, prefix, childPrefix string) {
	var b strings.Builder
	b.WriteString(prefix)
	b.WriteString(n.span.Name)
	fmt.Fprintf(&b, "  %s", formatDuration(n.dur))
	if n.questions > 0 {
		fmt.Fprintf(&b, "  (%d questions)", n.questions)
	}
	if n.other > 0 {
		fmt.Fprintf(&b, "  (%d events)", n.other)
	}
	for _, a := range n.attrs {
		fmt.Fprintf(&b, "  %s=%s", a.Key, a.Value)
	}
	fmt.Fprintln(w, b.String())
	for i, c := range n.children {
		if i == len(n.children)-1 {
			renderNode(w, c, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			renderNode(w, c, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// formatDuration renders a duration compactly at µs resolution.
func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
