package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultFlightSpans is the completed-span ring capacity a
// FlightRecorder gets when none is requested (the -obs-spans default).
const DefaultFlightSpans = 512

// FlightSpan is one span as the flight recorder keeps it: a plain
// value snapshot, detached from the Tracer, safe to hold and marshal
// after the originating span has moved on.
type FlightSpan struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Started and Ended bound the span; Ended is zero while open.
	Started time.Time `json:"started"`
	Ended   time.Time `json:"ended,omitempty"`
	// DurationUS is the span duration in microseconds (0 while open).
	DurationUS int64 `json:"duration_us,omitempty"`
	// Events is the number of events the span recorded.
	Events int64  `json:"events,omitempty"`
	Attrs  []Attr `json:"attrs,omitempty"`
	// Open marks a span that had not ended at snapshot time.
	Open bool `json:"open,omitempty"`
}

// FlightRecorder is a bounded, always-on span sink: it keeps every
// currently-open span plus a ring of the last N completed spans, and
// dumps them on demand — the flight-recorder shape of production
// tracing, where the stream is always captured but never unbounded.
// The obs server's /spans endpoint serves its dump as JSONL.
//
// All operations are O(1) under one short mutex, so the recorder may
// be shared by several tracers (each tracer serializes its own sink
// calls, but different tracers call concurrently) and dumped while
// spans are still being recorded.
type FlightRecorder struct {
	mu   sync.Mutex
	open map[uint64]*FlightSpan
	// ring holds the last cap completed spans; next is the slot the
	// next completed span overwrites, total counts completions ever.
	ring  []FlightSpan
	next  int
	total uint64
}

// NewFlightRecorder returns a recorder keeping the last n completed
// spans; n <= 0 selects DefaultFlightSpans.
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightSpans
	}
	return &FlightRecorder{
		open: map[uint64]*FlightSpan{},
		ring: make([]FlightSpan, 0, n),
	}
}

// Capacity reports the completed-span ring capacity.
func (f *FlightRecorder) Capacity() int { return cap(f.ring) }

// snap copies the span's current state into a detached value. Called
// from sink methods only, i.e. under the owning tracer's lock, so
// reading the span's fields is safe.
func snap(s *Span) FlightSpan {
	fs := FlightSpan{
		ID:      s.ID,
		Parent:  s.ParentID,
		Name:    s.Name,
		Started: s.Started,
	}
	if len(s.Attrs) > 0 {
		fs.Attrs = append([]Attr{}, s.Attrs...)
	}
	return fs
}

// SpanStart implements SpanSink: the span joins the open set.
func (f *FlightRecorder) SpanStart(s *Span) {
	fs := snap(s)
	fs.Open = true
	f.mu.Lock()
	f.open[s.ID] = &fs
	f.mu.Unlock()
}

// SpanEvent implements SpanSink: events are counted, not stored — the
// recorder bounds memory by keeping span skeletons only.
func (f *FlightRecorder) SpanEvent(s *Span, _ Event) {
	f.mu.Lock()
	if fs, ok := f.open[s.ID]; ok {
		fs.Events++
	}
	f.mu.Unlock()
}

// SpanEnd implements SpanSink: the span leaves the open set and enters
// the completed ring, evicting the oldest entry when full.
func (f *FlightRecorder) SpanEnd(s *Span) {
	fs := snap(s) // re-snap: attrs may have grown since start
	fs.Ended = s.Ended
	fs.DurationUS = s.Duration().Microseconds()
	f.mu.Lock()
	if prev, ok := f.open[s.ID]; ok {
		fs.Events = prev.Events
		delete(f.open, s.ID)
	}
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, fs)
	} else {
		f.ring[f.next] = fs
		f.next = (f.next + 1) % cap(f.ring)
	}
	f.total++
	f.mu.Unlock()
}

// Snapshot returns the recorder's state: the currently-open spans
// (oldest first), the retained completed spans (oldest first), and the
// number of completed spans evicted from the ring.
func (f *FlightRecorder) Snapshot() (open, completed []FlightSpan, dropped uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, fs := range f.open {
		open = append(open, *fs)
	}
	sortFlight(open)
	// The ring is oldest-first from next when full, from 0 otherwise.
	if len(f.ring) == cap(f.ring) && cap(f.ring) > 0 {
		completed = append(completed, f.ring[f.next:]...)
		completed = append(completed, f.ring[:f.next]...)
	} else {
		completed = append(completed, f.ring...)
	}
	dropped = f.total - uint64(len(f.ring))
	return open, completed, dropped
}

// sortFlight orders spans by start time, then ID (IDs are allocated
// monotonically per tracer, so this is stable under equal clocks).
func sortFlight(spans []FlightSpan) {
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Started.Equal(spans[j].Started) {
			return spans[i].Started.Before(spans[j].Started)
		}
		return spans[i].ID < spans[j].ID
	})
}

// WriteJSONL dumps the recorder as one JSON object per line —
// completed spans oldest-first, then open spans marked "open":true —
// the format /spans serves. It returns the first write or encode
// error.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	open, completed, _ := f.Snapshot()
	enc := json.NewEncoder(w)
	for _, fs := range completed {
		if err := enc.Encode(fs); err != nil {
			return err
		}
	}
	for _, fs := range open {
		if err := enc.Encode(fs); err != nil {
			return err
		}
	}
	return nil
}
