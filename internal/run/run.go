// Package run is the composable run engine shared by the learners and
// the verifier (docs/ENGINE.md). The paper's algorithms (Alg 1–8,
// Fig 6) are single procedures; the cross-cutting dimensions a session
// may add — naive search baselines, ablations, step/span/metric
// instrumentation, batched parallel questioning, question budgets,
// memoization, noisy users — are not new algorithms but configuration
// of the same run. This package holds that configuration:
//
//   - Config is the composed run configuration; Option mutates it.
//     learn.Run and verify.Run accept Options and construct their
//     single core path from the resulting Config.
//   - Assemble builds the oracle wrapper stack (worker Pool, Noisy,
//     Budget, Memo, Counter, Transcript) in one place, in one
//     documented order.
//   - Instrumentation, Step, Tracer and Ablations are the shared
//     cross-cutting types; internal/learn and internal/verify alias
//     them so one instrumentation value threads through both.
//   - FromFlags translates the shared CLI flag bundle (obs.Flags)
//     into Options, so every CLI builds its run config the same way.
//
// Adding a new dimension (noise recovery, PAC sampling, sharded
// oracles) means one new Option here, not a new exported function per
// learner and verifier variant.
package run

import (
	"fmt"
	"math/rand"

	"qhorn/internal/boolean"
	"qhorn/internal/brute"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// Algorithm selects the learning algorithm of a run.
type Algorithm int

// The two exactly-learnable classes of the paper.
const (
	// Qhorn1 learns qhorn-1 queries with O(n lg n) questions (§3.1).
	Qhorn1 Algorithm = iota
	// RolePreserving learns role-preserving qhorn queries with
	// O(n^(θ+1) + k·n·lg n) questions (§3.2).
	RolePreserving
)

// String returns the CLI spelling of the algorithm.
func (a Algorithm) String() string {
	if a == RolePreserving {
		return "rp"
	}
	return "qhorn1"
}

// ParseAlgorithm reads the CLI spelling of an algorithm ("qhorn1" or
// "rp"; "role-preserving" is accepted as an alias).
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "qhorn1":
		return Qhorn1, nil
	case "rp", "role-preserving":
		return RolePreserving, nil
	}
	return Qhorn1, fmt.Errorf("unknown class %q (want qhorn1 or rp)", s)
}

// Step describes one membership question at the moment it is asked:
// which phase of the algorithm produced it, what it is for in plain
// words, and how the user answered. Interactive interfaces show the
// purpose next to the example so the user understands why she is
// being asked — the "human-like interaction" the paper's introduction
// motivates.
type Step struct {
	// Phase is the algorithm phase: "heads", "bodies", "existential",
	// or "verify/<kind>" for verification questions.
	Phase string
	// Purpose explains the question, e.g. "is x3 a universal head
	// variable?".
	Purpose string
	// Question is the membership question asked.
	Question boolean.Set
	// Answer is the user's response.
	Answer bool
}

// Tracer observes run questions as they are asked. A nil Tracer is
// silent. Tracer is the step-level view; Instrumentation carries it
// alongside span tracing and metrics.
type Tracer func(Step)

// Instrumentation bundles the observability hooks a run may carry.
// Every field is optional; the zero value is completely silent and
// costs nothing on the question path. The learners and the verifier
// share this one type (learn.Instrumentation and
// verify.Instrumentation alias it).
type Instrumentation struct {
	// Steps receives one annotated Step per membership question —
	// the self-explaining interface of the paper's introduction.
	Steps Tracer
	// Spans receives the hierarchical span stream: one root span per
	// run ("learn/qhorn1", "learn/rp", "verify"), one child per phase
	// or question family, and grandchildren for the subroutines, with
	// one "question" event per membership question.
	Spans *obs.Tracer
	// Metrics receives the counters of the paper's cost model:
	// questions by phase, verification questions by kind, and lattice
	// nodes visited/pruned.
	Metrics *obs.Registry
}

// merge overlays the non-nil hooks of other onto in, so WithSteps and
// WithInstrumentation compose in either order.
func (in Instrumentation) merge(other Instrumentation) Instrumentation {
	if other.Steps != nil {
		in.Steps = other.Steps
	}
	if other.Spans != nil {
		in.Spans = other.Spans
	}
	if other.Metrics != nil {
		in.Metrics = other.Metrics
	}
	return in
}

// Ablations disables individual optimizations of the role-preserving
// learner so their contribution can be measured (experiment E16).
// Both settings preserve exactness; they only cost questions.
type Ablations struct {
	// NoGuaranteeSeeds skips pre-seeding the discovered set with the
	// guarantee-clause distinguishing tuples (the paper's "do not
	// search the downset" optimization of §3.2.2); the lattice
	// descent then rediscovers every guarantee clause from the top.
	NoGuaranteeSeeds bool
	// SerialPrune replaces the binary-search pruning of Algorithm 8
	// with the remove-one-tuple-at-a-time strategy the paper
	// describes first ("we asked O(n) questions to determine which
	// tuples to safely prune; we can do better").
	SerialPrune bool
}

// Stats reports the per-phase question counts of an engine learning
// run, unified across algorithms: the qhorn-1 learner's body phase and
// the role-preserving learner's universal phase both land in
// BodyQuestions.
type Stats struct {
	HeadQuestions        int
	BodyQuestions        int
	ExistentialQuestions int
}

// Total returns the total number of membership questions asked.
func (s Stats) Total() int {
	return s.HeadQuestions + s.BodyQuestions + s.ExistentialQuestions
}

// Config is the composed configuration of one run. Build it with New
// and Options; learn.Run and verify.Run construct their core paths
// from it, and Assemble builds the oracle wrapper stack it describes.
type Config struct {
	// Algorithm selects the learner (ignored by verify runs).
	Algorithm Algorithm
	// Naive switches the qhorn-1 variable searches to the
	// one-question-per-variable baseline of §3.1.2.
	Naive bool
	// Ablations disables role-preserving optimizations (E16).
	Ablations Ablations
	// Ins carries the observability hooks; the zero value is silent.
	Ins Instrumentation
	// Batch surfaces independent question sets as oracle.AskAll
	// batches. The questions and per-phase counts are identical to
	// the serial run; only the asking overlaps in time when the
	// oracle is a BatchOracle.
	Batch bool
	// Workers, when positive, makes Assemble wrap the user's oracle
	// in a worker pool of this size (and implies Batch).
	Workers int
	// Budget, when positive, caps the questions reaching the user;
	// the run panics with oracle.ErrBudget when exhausted.
	Budget int
	// Memo deduplicates repeated questions before they reach the
	// user.
	Memo bool
	// NoiseP, when positive, flips each of the user's answers with
	// this probability, driven by NoiseRNG.
	NoiseP   float64
	NoiseRNG *rand.Rand
	// Count wraps the learner-facing top of the stack in a Counter
	// mirroring into Ins.Metrics (qhorn_questions_total and friends).
	Count bool
	// Record wraps the learner-facing top of the stack in a
	// Transcript; retrieve it from the assembled Stack.
	Record bool
	// FirstOnly stops a verify run at the first disagreement
	// (ignored by learning runs).
	FirstOnly bool
	// InterpretedEval forces simulated users built through this Config
	// onto the interpreted Query.Eval. The zero value selects the
	// compiled kernel (query.Compile) — compiled evaluation is on by
	// default; WithInterpretedEval is the escape hatch.
	InterpretedEval bool
	// SharedMemo, when non-nil, serves the run's questions from a
	// shared cross-session answer cache under SharedIdentity before
	// they reach the user (or the budget).
	SharedMemo *oracle.SharedMemo
	// SharedIdentity keys this run's entries in SharedMemo; runs of
	// distinct identities never share answers.
	SharedIdentity string
	// BruteShardSize, BruteCompress, BruteSpillDir and BruteScalar
	// configure brute-force answer-matrix builds reached through this
	// run (the difffuzz brute judges, the brute experiments):
	// candidate-axis shard size (0 = default), roaring row compression,
	// a disk spill directory, and the scalar-kernel escape hatch
	// mirroring InterpretedEval. Read them back composed through
	// BruteMatrixOptions.
	BruteShardSize int
	BruteCompress  bool
	BruteSpillDir  string
	BruteScalar    bool
}

// BruteMatrixOptions translates the Config's brute-matrix dimensions
// into the matrix builder's options, carrying the run's worker count
// and metrics registry so matrix builds share the run's parallelism
// and exposition.
func (c Config) BruteMatrixOptions() brute.MatrixOptions {
	return brute.MatrixOptions{
		Workers:   c.Workers,
		ShardSize: c.BruteShardSize,
		Compress:  c.BruteCompress,
		SpillDir:  c.BruteSpillDir,
		Scalar:    c.BruteScalar,
		Registry:  c.Ins.Metrics,
	}
}

// SimulatedUser returns the simulated-user oracle for target under
// this Config's evaluation mode: the compiled kernel by default, the
// interpreted evaluator under WithInterpretedEval. Both answer
// identically (the difffuzz kernel judge enforces it); only the cost
// per question differs.
func (c Config) SimulatedUser(target query.Query) oracle.Oracle {
	if c.InterpretedEval {
		return oracle.TargetInterpreted(target)
	}
	return oracle.Target(target)
}

// Option mutates one dimension of a run's Config.
type Option func(*Config)

// New composes options into a Config.
func New(opts ...Option) Config {
	var c Config
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// WithAlgorithm selects the learning algorithm.
func WithAlgorithm(a Algorithm) Option {
	return func(c *Config) { c.Algorithm = a }
}

// WithNaiveSearch selects the serial one-question-per-variable
// baseline of §3.1.2 for the qhorn-1 learner.
func WithNaiveSearch() Option {
	return func(c *Config) { c.Naive = true }
}

// WithAblations disables selected role-preserving optimizations.
func WithAblations(ab Ablations) Option {
	return func(c *Config) { c.Ablations = ab }
}

// WithSteps adds a per-question step tracer to the run.
func WithSteps(t Tracer) Option {
	return func(c *Config) { c.Ins = c.Ins.merge(Instrumentation{Steps: t}) }
}

// WithInstrumentation overlays the non-nil hooks of ins onto the run's
// instrumentation.
func WithInstrumentation(ins Instrumentation) Option {
	return func(c *Config) { c.Ins = c.Ins.merge(ins) }
}

// WithParallel answers independent question batches with n concurrent
// workers: the engine wraps the user's oracle in a worker pool and
// selects the batch question structure. n <= 0 is a no-op (serial).
func WithParallel(n int) Option {
	return func(c *Config) {
		if n > 0 {
			c.Workers = n
			c.Batch = true
		}
	}
}

// WithBatch selects the batch question structure without wrapping a
// pool — the caller brings its own BatchOracle, or accepts the serial
// degradation of oracle.AskAll. Questions and counts are identical to
// the serial run either way.
func WithBatch() Option {
	return func(c *Config) { c.Batch = true }
}

// WithBudget caps the questions reaching the user at limit; the run
// panics with oracle.ErrBudget when the cap is exceeded.
func WithBudget(limit int) Option {
	return func(c *Config) { c.Budget = limit }
}

// WithMemo deduplicates repeated questions before they reach the
// user.
func WithMemo() Option {
	return func(c *Config) { c.Memo = true }
}

// WithSharedMemo serves the run's questions from a shared
// cross-session answer cache (oracle.SharedMemo) under the given
// identity: questions another run of the same identity already
// settled are answered from the tier without reaching the user, and
// this run's fresh answers are published for later runs. Distinct
// identities never share answers. A nil tier is a no-op, so callers
// may pass an optional tier through unconditionally.
func WithSharedMemo(sm *oracle.SharedMemo, identity string) Option {
	return func(c *Config) { c.SharedMemo, c.SharedIdentity = sm, identity }
}

// WithNoise flips each of the user's answers with probability p,
// driven by rng (§5's noisy-user model).
func WithNoise(p float64, rng *rand.Rand) Option {
	return func(c *Config) { c.NoiseP, c.NoiseRNG = p, rng }
}

// WithCounter counts every question the run asks, mirroring into the
// run's metrics registry when one is configured.
func WithCounter() Option {
	return func(c *Config) { c.Count = true }
}

// WithTranscript records the run's full question stream; retrieve it
// from the assembled Stack's Transcript.
func WithTranscript() Option {
	return func(c *Config) { c.Record = true }
}

// WithFirstDisagreement stops a verify run at the first disagreement
// instead of running the full set.
func WithFirstDisagreement() Option {
	return func(c *Config) { c.FirstOnly = true }
}

// WithObsServer instruments the run with a live observability server's
// registry and span tracer, so the run's metrics appear at the server's
// /metrics and its spans in the flight recorder behind /spans and
// /progress. A nil server is a no-op, so callers may pass an optional
// server through unconditionally.
func WithObsServer(s *obs.Server) Option {
	if s == nil {
		return nil
	}
	return func(c *Config) {
		c.Ins = c.Ins.merge(Instrumentation{Spans: s.SpanTracer(), Metrics: s.Registry()})
	}
}

// WithBruteMatrix sets the brute-force answer-matrix dimensions of the
// run: candidate-axis shard size (0 = default), roaring row
// compression, an optional disk spill directory, and the scalar-kernel
// escape hatch.
func WithBruteMatrix(shardSize int, compress bool, spillDir string, scalar bool) Option {
	return func(c *Config) {
		c.BruteShardSize = shardSize
		c.BruteCompress = compress
		c.BruteSpillDir = spillDir
		c.BruteScalar = scalar
	}
}

// WithCompiledEval makes simulated users evaluate through the
// compiled kernel. This is the default; the option exists so call
// sites can state the choice explicitly and undo an earlier
// WithInterpretedEval.
func WithCompiledEval() Option {
	return func(c *Config) { c.InterpretedEval = false }
}

// WithInterpretedEval forces simulated users onto the interpreted
// Query.Eval — the escape hatch for diagnosing the kernel or measuring
// it (the qhornexp kernel experiment runs both modes).
func WithInterpretedEval() Option {
	return func(c *Config) { c.InterpretedEval = true }
}

// Stack is the assembled oracle wrapper stack of one run. Oracle is
// the learner-facing top; the named wrappers are non-nil only when the
// Config requested them.
type Stack struct {
	// Oracle is the top of the stack: what the run asks.
	Oracle oracle.Oracle
	// Pool is the worker pool around the user (Workers > 0).
	Pool *oracle.Pool
	// Budget is the question cap (Budget > 0).
	Budget *oracle.Budget
	// Counter counts the run's questions (Count).
	Counter *oracle.Counter
	// Transcript records the run's question stream (Record).
	Transcript *oracle.Transcript
}

// Assemble wraps the user's oracle with the wrapper stack the Config
// describes, innermost (closest to the user) to outermost (what the
// run asks):
//
//	user → Pool → Noisy → Budget → SharedMemo → Memo → Counter → Transcript
//
// The order is part of the engine's contract (docs/ENGINE.md): the
// pool parallelizes real user answers; noise models the user's
// mistakes, so it sits directly above her; the budget spends on
// distinct questions only (memoized replays are free); the shared
// cross-session tier sits above the budget for the same reason —
// answers another session already settled cost this run nothing — and
// below the per-run memo so the run's own repeats never touch the
// shared shards; the counter and transcript face the run, observing
// every question it asks. With a zero Config the user's oracle is
// returned untouched.
func (c Config) Assemble(user oracle.Oracle) Stack {
	st := Stack{Oracle: user}
	if c.Workers > 0 {
		st.Pool = oracle.ParallelInto(st.Oracle, c.Workers, c.Ins.Metrics)
		st.Oracle = st.Pool
	}
	if c.NoiseP > 0 {
		st.Oracle = oracle.Noisy(st.Oracle, c.NoiseP, c.NoiseRNG)
	}
	if c.Budget > 0 {
		st.Budget = oracle.WithBudgetInto(st.Oracle, c.Budget, c.Ins.Metrics)
		st.Oracle = st.Budget
	}
	if c.SharedMemo != nil {
		st.Oracle = c.SharedMemo.Oracle(c.SharedIdentity, st.Oracle)
	}
	if c.Memo {
		st.Oracle = oracle.MemoInto(st.Oracle, c.Ins.Metrics)
	}
	if c.Count {
		st.Counter = oracle.CountInto(st.Oracle, c.Ins.Metrics)
		st.Oracle = st.Counter
	}
	if c.Record {
		st.Transcript = oracle.Record(st.Oracle)
		st.Oracle = st.Transcript
	}
	return st
}

// FromFlags translates the shared CLI observability flag bundle into
// engine options: span/metric instrumentation from the session, a
// question counter feeding the metrics registry, and — when -parallel
// is set — a worker pool of that size. Every CLI builds its run config
// through this one helper; per-CLI flag ladders are gone.
func FromFlags(f *obs.Flags, s *obs.Session) []Option {
	opts := []Option{
		WithInstrumentation(Instrumentation{Spans: s.Tracer, Metrics: s.Metrics}),
		WithCounter(),
	}
	if f.Parallel > 0 {
		opts = append(opts, WithParallel(f.Parallel))
	}
	if f.InterpretedEval {
		opts = append(opts, WithInterpretedEval())
	}
	if f.BruteShard > 0 || f.BruteCompress || f.BruteSpillDir != "" || f.BruteScalar {
		opts = append(opts, WithBruteMatrix(f.BruteShard, f.BruteCompress, f.BruteSpillDir, f.BruteScalar))
	}
	return opts
}
