package run

import (
	"math/rand"
	"strings"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

func TestAlgorithmString(t *testing.T) {
	if got := Qhorn1.String(); got != "qhorn1" {
		t.Errorf("Qhorn1.String() = %q", got)
	}
	if got := RolePreserving.String(); got != "rp" {
		t.Errorf("RolePreserving.String() = %q", got)
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Algorithm
	}{
		{"qhorn1", Qhorn1},
		{"rp", RolePreserving},
		{"role-preserving", RolePreserving},
	} {
		got, err := ParseAlgorithm(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil || !strings.Contains(err.Error(), "unknown class") {
		t.Errorf("ParseAlgorithm(bogus) err = %v", err)
	}
}

// TestNewComposesOptions: every option lands on its Config field, and
// nil options are skipped.
func TestNewComposesOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	steps := func(Step) {}
	reg := obs.NewRegistry()
	c := New(
		WithAlgorithm(RolePreserving),
		WithNaiveSearch(),
		WithAblations(Ablations{NoGuaranteeSeeds: true}),
		WithSteps(steps),
		WithInstrumentation(Instrumentation{Metrics: reg}),
		WithParallel(4),
		WithBudget(99),
		WithMemo(),
		WithNoise(0.25, rng),
		WithCounter(),
		WithTranscript(),
		WithFirstDisagreement(),
		nil,
	)
	if c.Algorithm != RolePreserving || !c.Naive || !c.Ablations.NoGuaranteeSeeds {
		t.Errorf("algorithm options not applied: %+v", c)
	}
	if c.Ins.Steps == nil || c.Ins.Metrics != reg {
		t.Errorf("instrumentation options not merged: %+v", c.Ins)
	}
	if c.Workers != 4 || !c.Batch {
		t.Errorf("WithParallel(4): Workers=%d Batch=%v", c.Workers, c.Batch)
	}
	if c.Budget != 99 || !c.Memo || c.NoiseP != 0.25 || c.NoiseRNG != rng {
		t.Errorf("oracle options not applied: %+v", c)
	}
	if !c.Count || !c.Record || !c.FirstOnly {
		t.Errorf("counter/transcript/first options not applied: %+v", c)
	}
}

// TestWithParallelNonPositive: n <= 0 is a serial no-op.
func TestWithParallelNonPositive(t *testing.T) {
	c := New(WithParallel(0))
	if c.Workers != 0 || c.Batch {
		t.Errorf("WithParallel(0) = %+v, want serial", c)
	}
	c = New(WithParallel(-3))
	if c.Workers != 0 || c.Batch {
		t.Errorf("WithParallel(-3) = %+v, want serial", c)
	}
}

// TestWithBatchAlone selects the batch structure without a pool.
func TestWithBatchAlone(t *testing.T) {
	c := New(WithBatch())
	if !c.Batch || c.Workers != 0 {
		t.Errorf("WithBatch() = %+v", c)
	}
}

// TestInstrumentationMergeOrder: WithSteps and WithInstrumentation
// overlay non-nil hooks in either order without clobbering the rest.
func TestInstrumentationMergeOrder(t *testing.T) {
	reg := obs.NewRegistry()
	steps := func(Step) {}
	a := New(WithSteps(steps), WithInstrumentation(Instrumentation{Metrics: reg}))
	if a.Ins.Steps == nil || a.Ins.Metrics != reg {
		t.Errorf("steps-then-ins lost a hook: %+v", a.Ins)
	}
	b := New(WithInstrumentation(Instrumentation{Metrics: reg}), WithSteps(steps))
	if b.Ins.Steps == nil || b.Ins.Metrics != reg {
		t.Errorf("ins-then-steps lost a hook: %+v", b.Ins)
	}
}

// TestWithObsServer: the option merges the server's tracer and
// registry into the run's instrumentation, and a nil server is a
// skipped nil option.
func TestWithObsServer(t *testing.T) {
	srv := obs.NewServer(obs.NewRegistry(), nil, obs.NewFlightRecorder(8))
	c := New(WithObsServer(srv))
	if c.Ins.Spans != srv.SpanTracer() {
		t.Error("server tracer not merged into Config.Ins.Spans")
	}
	if c.Ins.Metrics != srv.Registry() {
		t.Error("server registry not merged into Config.Ins.Metrics")
	}
	// Composes with other hooks rather than clobbering them.
	steps := func(Step) {}
	c = New(WithSteps(steps), WithObsServer(srv))
	if c.Ins.Steps == nil || c.Ins.Metrics != srv.Registry() {
		t.Errorf("WithObsServer clobbered hooks: %+v", c.Ins)
	}
	if c := New(WithObsServer(nil)); c.Ins.Spans != nil || c.Ins.Metrics != nil {
		t.Errorf("nil server attached instrumentation: %+v", c.Ins)
	}
}

// TestAssembleZeroConfig: a zero Config returns the user's oracle
// untouched with no wrappers.
func TestAssembleZeroConfig(t *testing.T) {
	user := oracle.Func(func(boolean.Set) bool { return true })
	st := Config{}.Assemble(user)
	if st.Pool != nil || st.Budget != nil || st.Counter != nil || st.Transcript != nil {
		t.Errorf("zero config grew wrappers: %+v", st)
	}
	if !st.Oracle.Ask(boolean.Set{}) {
		t.Error("zero config changed the oracle's answers")
	}
}

// TestAssembleFullStack: every requested wrapper is present, the
// counter and transcript face the run, and the memo deduplicates
// before the budget and the user.
func TestAssembleFullStack(t *testing.T) {
	u := boolean.MustUniverse(3)
	asked := 0
	user := oracle.Func(func(boolean.Set) bool { asked++; return true })
	cfg := New(WithParallel(2), WithBudget(5), WithMemo(), WithCounter(), WithTranscript())
	st := cfg.Assemble(user)
	if st.Pool == nil || st.Budget == nil || st.Counter == nil || st.Transcript == nil {
		t.Fatalf("missing wrappers: %+v", st)
	}

	q := boolean.NewSet(u.All())
	st.Oracle.Ask(q)
	st.Oracle.Ask(q) // memoized: free for the user and the budget
	if asked != 1 {
		t.Errorf("user asked %d times, memo should dedup to 1", asked)
	}
	if st.Counter.Questions != 2 {
		t.Errorf("run-facing counter saw %d questions, want 2", st.Counter.Questions)
	}
	if st.Transcript.Len() != 2 {
		t.Errorf("transcript recorded %d questions, want 2", st.Transcript.Len())
	}
	if st.Budget.Remaining() != 4 {
		t.Errorf("budget remaining = %d, want 4 (one distinct question spent)", st.Budget.Remaining())
	}
}

// TestAssembleSharedMemo: the shared tier sits above the budget —
// answers another run of the same identity already settled cost this
// run's user and budget nothing — and distinct identities don't share.
func TestAssembleSharedMemo(t *testing.T) {
	u := boolean.MustUniverse(3)
	sm := oracle.NewSharedMemo(64)
	q := boolean.NewSet(u.All())

	asked := 0
	user := oracle.Func(func(boolean.Set) bool { asked++; return true })
	first := New(WithSharedMemo(sm, "alice"), WithBudget(5)).Assemble(user)
	first.Oracle.Ask(q)
	if asked != 1 || first.Budget.Remaining() != 4 {
		t.Fatalf("cold ask: user=%d, remaining=%d", asked, first.Budget.Remaining())
	}

	second := New(WithSharedMemo(sm, "alice"), WithBudget(5)).Assemble(user)
	if !second.Oracle.Ask(q) {
		t.Error("warm ask lost the cached answer")
	}
	if asked != 1 {
		t.Errorf("warm run re-asked the user (%d asks)", asked)
	}
	if second.Budget.Remaining() != 5 {
		t.Errorf("warm run spent budget on a tier hit: remaining %d", second.Budget.Remaining())
	}

	stranger := New(WithSharedMemo(sm, "bob")).Assemble(user)
	stranger.Oracle.Ask(q)
	if asked != 2 {
		t.Errorf("identity isolation broken: user asked %d times, want 2", asked)
	}

	// A nil tier is a no-op, mirroring WithObsServer's contract.
	if st := New(WithSharedMemo(nil, "alice")).Assemble(user); st.Oracle == nil {
		t.Error("nil tier broke assembly")
	}
}

// TestAssembleBudgetPanics: exceeding the budget panics with
// oracle.ErrBudget, the engine's advertised failure mode.
func TestAssembleBudgetPanics(t *testing.T) {
	u := boolean.MustUniverse(2)
	user := oracle.Func(func(boolean.Set) bool { return false })
	st := New(WithBudget(1)).Assemble(user)
	st.Oracle.Ask(boolean.NewSet())
	defer func() {
		if recover() == nil {
			t.Error("second question did not panic against budget 1")
		}
	}()
	st.Oracle.Ask(boolean.NewSet(u.All()))
}

// TestAssembleNoise: with p=1 every answer is flipped.
func TestAssembleNoise(t *testing.T) {
	user := oracle.Func(func(boolean.Set) bool { return true })
	st := New(WithNoise(1, rand.New(rand.NewSource(1)))).Assemble(user)
	if st.Oracle.Ask(boolean.Set{}) {
		t.Error("noise p=1 did not flip the answer")
	}
}

// TestStatsTotal sums the phases.
func TestStatsTotal(t *testing.T) {
	s := Stats{HeadQuestions: 1, BodyQuestions: 2, ExistentialQuestions: 4}
	if s.Total() != 7 {
		t.Errorf("Total() = %d", s.Total())
	}
}

// TestFromFlags: the CLI bundle becomes instrumentation + counter,
// plus a worker pool when -parallel is set.
func TestFromFlags(t *testing.T) {
	var f obs.Flags
	s, err := f.Start(nil)
	if err != nil {
		t.Fatal(err)
	}
	c := New(FromFlags(&f, s)...)
	if !c.Count {
		t.Error("FromFlags dropped the counter")
	}
	if c.Ins.Metrics != s.Metrics {
		t.Error("FromFlags dropped the metrics registry")
	}
	if c.Workers != 0 || c.Batch {
		t.Errorf("serial flags grew a pool: %+v", c)
	}

	f.Parallel = 3
	c = New(FromFlags(&f, s)...)
	if c.Workers != 3 || !c.Batch {
		t.Errorf("-parallel 3 not applied: %+v", c)
	}
}

// TestEvalModeOptions: compiled evaluation is the zero-value default,
// WithInterpretedEval is the escape hatch, WithCompiledEval undoes it,
// and the -interpreted-eval flag reaches the Config through FromFlags.
func TestEvalModeOptions(t *testing.T) {
	if c := New(); c.InterpretedEval {
		t.Error("zero Config is not compiled-by-default")
	}
	if c := New(WithInterpretedEval()); !c.InterpretedEval {
		t.Error("WithInterpretedEval not applied")
	}
	if c := New(WithInterpretedEval(), WithCompiledEval()); c.InterpretedEval {
		t.Error("WithCompiledEval did not undo WithInterpretedEval")
	}

	f := obs.Flags{InterpretedEval: true}
	s, err := f.Start(nil)
	if err != nil {
		t.Fatal(err)
	}
	if c := New(FromFlags(&f, s)...); !c.InterpretedEval {
		t.Error("-interpreted-eval not threaded through FromFlags")
	}
}

// TestSimulatedUser: both evaluation modes answer identically; the
// modes differ only in which evaluator computes the answer.
func TestSimulatedUser(t *testing.T) {
	u := boolean.MustUniverse(4)
	target := query.MustParse(u, "∀x1x2 → x3 ∃x4")
	compiled := New().SimulatedUser(target)
	interpreted := New(WithInterpretedEval()).SimulatedUser(target)
	for _, o := range boolean.AllObjects(u) {
		c, i := compiled.Ask(o), interpreted.Ask(o)
		if c != i || c != target.Eval(o) {
			t.Fatalf("object %s: compiled %v, interpreted %v, truth %v",
				o.Format(u), c, i, target.Eval(o))
		}
	}
}
