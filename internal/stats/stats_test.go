package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Count != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev, want)
	}
	if got := Summarize(nil); got.Count != 0 {
		t.Errorf("empty Summarize = %+v", got)
	}
	one := Summarize([]float64{5})
	if one.StdDev != 0 || one.Mean != 5 {
		t.Errorf("single-sample Summary = %+v", one)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{2, 4})
	if s.Mean != 3 || s.Min != 2 || s.Max != 4 {
		t.Errorf("SummarizeInts = %+v", s)
	}
}

func TestGrowthExponent(t *testing.T) {
	// y = 3 x^2 exactly.
	xs := []float64{2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	if e := GrowthExponent(xs, ys); math.Abs(e-2) > 1e-9 {
		t.Errorf("exponent = %v, want 2", e)
	}
	// y = 7 x exactly.
	for i, x := range xs {
		ys[i] = 7 * x
	}
	if e := GrowthExponent(xs, ys); math.Abs(e-1) > 1e-9 {
		t.Errorf("exponent = %v, want 1", e)
	}
	// n lg n sits between 1 and 1.6 on this range.
	for i, x := range xs {
		ys[i] = x * math.Log2(x)
	}
	if e := GrowthExponent(xs, ys); e < 1.0 || e > 1.7 {
		t.Errorf("n lg n exponent = %v", e)
	}
	if !math.IsNaN(GrowthExponent([]float64{1}, []float64{1})) {
		t.Error("single point should yield NaN")
	}
	if !math.IsNaN(GrowthExponent([]float64{0, -1}, []float64{1, 2})) {
		t.Error("non-positive points should be skipped")
	}
}

func TestTableText(t *testing.T) {
	tb := NewTable("Demo", "n", "questions")
	tb.AddRow(8, 24)
	tb.AddRow(16, 64.5)
	tb.AddNote("exponent %.2f", 1.42)
	out := tb.Text()
	for _, want := range []string{"## Demo", "n", "questions", "8", "64.50", "note: exponent 1.42"} {
		if !strings.Contains(out, want) {
			t.Errorf("Text missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "a", "b")
	tb.AddRow("x", 1)
	out := tb.Markdown()
	for _, want := range []string{"### Demo", "| a | b |", "| --- | --- |", "| x | 1 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("Markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`has,comma`, `has"quote`)
	out := tb.CSV()
	if !strings.Contains(out, `"has,comma","has""quote"`) {
		t.Errorf("CSV quoting wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{3.14159, "3.14"},
		{math.NaN(), "-"},
		{-2, "-2"},
	}
	for _, tc := range tests {
		if got := FormatFloat(tc.in); got != tc.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSortRowsNumeric(t *testing.T) {
	tb := NewTable("", "n")
	tb.AddRow(32)
	tb.AddRow(8)
	tb.AddRow(16)
	tb.SortRowsNumeric(0)
	if tb.Rows[0][0] != "8" || tb.Rows[2][0] != "32" {
		t.Errorf("sorted rows = %v", tb.Rows)
	}
}
