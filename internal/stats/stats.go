// Package stats provides the small aggregation and table-rendering
// toolkit used by the experiment harness (internal/exp): summary
// statistics over repeated trials, log-log growth-exponent fits for
// checking asymptotic claims, and aligned-text / markdown / CSV table
// output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary aggregates a sample of measurements.
type Summary struct {
	Count  int
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes summary statistics over xs. The zero Summary is
// returned for an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// SummarizeInts is Summarize over integer measurements.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// GrowthExponent fits y ≈ c·x^e by least squares on log-log scale and
// returns the exponent e. It is the harness's check that a measured
// question-count series has the polynomial degree a theorem claims
// (e.g. ≈1 for n lg n up to the log factor, ≈θ for n^θ). Points with
// non-positive coordinates are skipped; fewer than two usable points
// yield NaN.
func GrowthExponent(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return math.NaN()
	}
	n := float64(len(lx))
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// Table is a simple column-oriented result table with a title and
// optional per-table notes, rendered as aligned text, markdown or
// CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
			continue
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-text note rendered under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// FormatFloat renders a float compactly: integers without decimals,
// otherwise two decimal places.
func FormatFloat(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// Text renders the table as aligned plain text.
func (t *Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only when
// needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SortRowsNumeric sorts rows by the given column parsed as a number,
// falling back to string order for unparsable cells.
func (t *Table) SortRowsNumeric(col int) {
	sort.SliceStable(t.Rows, func(i, j int) bool {
		var a, b float64
		an, errA := fmt.Sscanf(t.Rows[i][col], "%g", &a)
		bn, errB := fmt.Sscanf(t.Rows[j][col], "%g", &b)
		if an == 1 && bn == 1 && errA == nil && errB == nil {
			return a < b
		}
		return t.Rows[i][col] < t.Rows[j][col]
	})
}
