// Package dataplay is the application layer the paper's introduction
// describes: a DataPlay-style system that holds the user's
// propositions and a dataset, turns the Boolean-domain algorithms
// into conversations about concrete data objects, and carries a query
// through its whole lifecycle — learn it from examples, verify it,
// revise it when the user's intent drifts, and execute it.
//
// Everything below is a thin orchestration over the other packages:
// questions prefer real tuples from the indexed dataset (§5), the
// interaction history supports §5's response amendment, verification
// and revision are §4 and §6, and results come back as data objects.
package dataplay

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/nested"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/revise"
	"qhorn/internal/run"
	"qhorn/internal/session"
	"qhorn/internal/verify"
)

// Class selects the query class to learn. It is the run engine's
// Algorithm, so a System.Learn call composes directly with engine
// options.
type Class = run.Algorithm

// The two exactly-learnable classes.
const (
	// Qhorn1 learns with O(n lg n) questions but forbids variable
	// repetition (§3.1).
	Qhorn1 = run.Qhorn1
	// RolePreserving allows repetition with preserved roles and
	// learns with O(n^(θ+1) + k·n·lg n) questions (§3.2).
	RolePreserving = run.RolePreserving
)

// User classifies concrete data objects, the way a person would.
// Adapters turn it into the Boolean-domain oracle the algorithms use.
type User interface {
	// Classify reports whether the object is an answer to the user's
	// intended query.
	Classify(o nested.Object) bool
}

// UserFunc adapts a function to the User interface.
type UserFunc func(nested.Object) bool

// Classify implements User.
func (f UserFunc) Classify(o nested.Object) bool { return f(o) }

// SimulatedUser returns a user whose intent is the given query,
// evaluated over the system's propositions.
func SimulatedUser(ps nested.Propositions, intended query.Query) User {
	c := query.Compile(intended)
	return UserFunc(func(o nested.Object) bool {
		return c.Eval(ps.AbstractObject(o))
	})
}

// System holds the propositions, the (indexed) dataset and the
// interaction history of one query-specification session.
type System struct {
	ps    nested.Propositions
	index *nested.Index
	// Questions counts the objects shown to the user so far.
	Questions int

	sess        *session.Session
	currentUser User
}

// New builds a system over the propositions and dataset. The dataset
// may be empty; questions are then fully synthesized.
func New(ps nested.Propositions, d nested.Dataset) (*System, error) {
	if len(ps.Props) == 0 {
		return nil, fmt.Errorf("dataplay: no propositions")
	}
	if inter := ps.Interferences(); len(inter) > 0 {
		return nil, fmt.Errorf("dataplay: propositions %d and %d interfere; the Boolean abstraction requires independent propositions (§2)",
			inter[0][0]+1, inter[0][1]+1)
	}
	ix, err := nested.NewIndex(ps, d)
	if err != nil {
		return nil, err
	}
	return &System{ps: ps, index: ix}, nil
}

// Universe returns the Boolean universe of the propositions.
func (s *System) Universe() boolean.Universe { return s.ps.Universe() }

// oracleFor wraps a data-domain user as a Boolean oracle that renders
// each question with real tuples where the dataset has them, behind
// the amendable session history. One session spans the whole system
// lifetime so answers replay across Learn/Verify/Revise calls; the
// caller is responsible for keeping the user's intent stable within a
// system (start a fresh System for a new intent).
func (s *System) oracleFor(u User) oracle.Oracle {
	s.currentUser = u
	if s.sess == nil {
		inner := oracle.Func(func(q boolean.Set) bool {
			s.Questions++
			obj, err := s.index.Select(fmt.Sprintf("sample #%d", s.Questions), q)
			if err != nil {
				// Unsatisfiable Boolean class: impossible here because
				// New rejects interfering propositions.
				panic(err)
			}
			return s.currentUser.Classify(obj)
		})
		s.sess = session.New(inner)
	}
	return s.sess
}

// Learn runs the chosen learner against the user and returns the
// exact query. Additional engine options compose onto the run — but
// note the session constraint below: the amendable history is not
// concurrency-safe, so run.WithParallel must not be passed here (use
// run.WithBatch for the serial-degradation batch structure).
func (s *System) Learn(class Class, u User, opts ...run.Option) (query.Query, error) {
	switch class {
	case Qhorn1, RolePreserving:
	default:
		return query.Query{}, fmt.Errorf("dataplay: unknown class %d", int(class))
	}
	all := append([]run.Option{run.WithAlgorithm(class)}, opts...)
	q, _ := learn.Run(s.Universe(), s.oracleFor(u), all...)
	return q, nil
}

// LearnParallel is Learn through the batch-structured learners of the
// parallel question engine (docs/PARALLELISM.md). The DataPlay session
// answers questions one at a time regardless — the amendment protocol
// of §5 needs a serialized transcript to replay — so the engine's
// serial-degradation path is exercised: identical questions, identical
// counts, no concurrency against the session.
func (s *System) LearnParallel(class Class, u User) (query.Query, error) {
	return s.Learn(class, u, run.WithBatch())
}

// VerifyQuery runs the §4 verification set against the user.
func (s *System) VerifyQuery(q query.Query, u User) (verify.Result, error) {
	return verify.Verify(q, s.oracleFor(u))
}

// ReviseQuery corrects a nearly-right query against the user (§6).
func (s *System) ReviseQuery(q query.Query, u User) (revise.Result, error) {
	return revise.Revise(q, s.oracleFor(u))
}

// Execute runs the query over the system's dataset.
func (s *System) Execute(q query.Query) ([]nested.Object, error) {
	return s.index.Execute(q)
}

// SQL renders the query over the system's schema.
func (s *System) SQL(q query.Query) (string, error) {
	return nested.SQL(q, s.ps)
}

// History returns the interaction transcript so far (questions in
// first-asked order with the responses on record).
func (s *System) History() []session.Entry {
	if s.sess == nil {
		return nil
	}
	return s.sess.Entries()
}

// QuestionObject renders history entry i as the data object that was
// shown to the user.
func (s *System) QuestionObject(i int) (nested.Object, error) {
	h := s.History()
	if i < 0 || i >= len(h) {
		return nested.Object{}, fmt.Errorf("dataplay: no history entry %d", i)
	}
	return s.index.Select(fmt.Sprintf("history #%d", i+1), h[i].Question)
}

// Amend flips the recorded response of history entry i (§5); the next
// Learn/Verify/Revise call replays the corrected history and only
// consults the user for new questions.
func (s *System) Amend(i int) error {
	if s.sess == nil {
		return fmt.Errorf("dataplay: no session yet")
	}
	err := s.sess.Amend(i)
	if err == nil {
		s.sess.ResetRun()
	}
	return err
}

// Review returns the history indices whose recorded answers the user
// now disagrees with, by re-asking her about each recorded object —
// the §5 "double-check your responses" pass. Amend the returned
// indices (or call AmendReview) and re-run Learn to recover.
func (s *System) Review(u User) ([]int, error) {
	if s.sess == nil {
		return nil, fmt.Errorf("dataplay: no session yet")
	}
	var reviewErr error
	bad := s.sess.InconsistentWith(func(q boolean.Set) bool {
		obj, err := s.index.Select("review", q)
		if err != nil {
			reviewErr = err
			return false
		}
		return u.Classify(obj)
	})
	if reviewErr != nil {
		return nil, reviewErr
	}
	return bad, nil
}

// AmendReview runs Review and amends every disagreement in one step,
// returning how many entries were corrected.
func (s *System) AmendReview(u User) (int, error) {
	bad, err := s.Review(u)
	if err != nil {
		return 0, err
	}
	if len(bad) == 0 {
		return 0, nil
	}
	return len(bad), s.sess.AmendAll(bad)
}
