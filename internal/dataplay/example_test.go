package dataplay_test

import (
	"fmt"
	"math/rand"

	"qhorn/internal/dataplay"
	"qhorn/internal/nested"
	"qhorn/internal/query"
)

func Example() {
	// The whole lifecycle of §1's chocolate-shop conversation.
	ps := nested.ChocolatePropositions()
	store := nested.RandomChocolates(rand.New(rand.NewSource(19)), 200, 5)
	sys, err := dataplay.New(ps, store)
	if err != nil {
		panic(err)
	}
	intended := query.MustParse(sys.Universe(), "∀x1 ∃x2x3")
	user := dataplay.SimulatedUser(ps, intended)

	learned, err := sys.Learn(dataplay.Qhorn1, user)
	if err != nil {
		panic(err)
	}
	fmt.Println("learned:", learned)
	fmt.Println("exact:", learned.Equivalent(intended))

	res, err := sys.VerifyQuery(learned, user)
	if err != nil {
		panic(err)
	}
	fmt.Println("verified:", res.Correct)

	matches, err := sys.Execute(learned)
	if err != nil {
		panic(err)
	}
	fmt.Println("answers in the store:", len(matches))
	// Output:
	// learned: ∀x1 ∃x3 → x2
	// exact: true
	// verified: true
	// answers in the store: 7
}
