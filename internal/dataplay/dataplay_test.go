package dataplay

import (
	"math/rand"
	"strings"
	"testing"

	"qhorn/internal/nested"
	"qhorn/internal/query"
)

func newChocolateSystem(t *testing.T) *System {
	t.Helper()
	rng := rand.New(rand.NewSource(19))
	s, err := New(nested.ChocolatePropositions(), nested.RandomChocolates(rng, 200, 5))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLifecycleLearnVerifyExecute(t *testing.T) {
	s := newChocolateSystem(t)
	u := s.Universe()
	intended := query.MustParse(u, "∀x1 ∃x2x3")
	user := SimulatedUser(nested.ChocolatePropositions(), intended)

	learned, err := s.Learn(Qhorn1, user)
	if err != nil {
		t.Fatal(err)
	}
	if !learned.Equivalent(intended) {
		t.Fatalf("learned %s", learned)
	}
	if s.Questions == 0 || len(s.History()) == 0 {
		t.Fatal("no interaction recorded")
	}

	res, err := s.VerifyQuery(learned, user)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatalf("verification failed: %+v", res.Disagreements)
	}

	matches, err := s.Execute(learned)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := s.Execute(intended)
	if err != nil || len(matches) != len(direct) {
		t.Fatalf("execution mismatch: %d vs %d (%v)", len(matches), len(direct), err)
	}

	sql, err := s.SQL(learned)
	if err != nil || !strings.Contains(sql, "SELECT") {
		t.Fatalf("SQL: %v\n%s", err, sql)
	}
}

func TestLifecycleRevise(t *testing.T) {
	s := newChocolateSystem(t)
	u := s.Universe()
	intended := query.MustParse(u, "∀x1 ∃x2x3")
	user := SimulatedUser(nested.ChocolatePropositions(), intended)
	almost := query.MustParse(u, "∀x1 ∃x2")
	res, err := s.ReviseQuery(almost, user)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Revised.Equivalent(intended) {
		t.Fatalf("revised to %s", res.Revised)
	}
}

func TestAmendmentFlow(t *testing.T) {
	s := newChocolateSystem(t)
	u := s.Universe()
	intended := query.MustParse(u, "∀x1 ∃x2x3")
	honest := SimulatedUser(nested.ChocolatePropositions(), intended)

	// A user who misclassifies the third box shown.
	shown := 0
	liar := UserFunc(func(o nested.Object) bool {
		shown++
		v := honest.Classify(o)
		if shown == 3 {
			return !v
		}
		return v
	})
	first, err := s.Learn(Qhorn1, liar)
	if err != nil {
		t.Fatal(err)
	}
	if first.Equivalent(intended) {
		t.Skip("lie was harmless")
	}
	// Review the history against the honest classification, flip the
	// bad answers, re-learn with the same session.
	for i, e := range s.History() {
		obj, err := s.QuestionObject(i)
		if err != nil {
			t.Fatal(err)
		}
		if honest.Classify(obj) != e.Answer {
			if err := s.Amend(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	again, err := s.Learn(Qhorn1, liar)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Equivalent(intended) {
		t.Fatalf("after amendment: %s", again)
	}
}

func TestNewRejectsInterference(t *testing.T) {
	ps := nested.Propositions{
		Schema: nested.ChocolateSchema(),
		Props: []nested.Proposition{
			{Name: "m", Attr: "origin", Op: nested.Eq, Val: nested.S("Madagascar")},
			{Name: "b", Attr: "origin", Op: nested.Eq, Val: nested.S("Belgium")},
		},
	}
	if _, err := New(ps, nested.Fig1Dataset()); err == nil {
		t.Fatal("interfering propositions accepted")
	}
	if _, err := New(nested.Propositions{Schema: nested.ChocolateSchema()}, nested.Dataset{Schema: nested.ChocolateSchema()}); err == nil {
		t.Fatal("empty proposition set accepted")
	}
}

func TestQuestionObjectErrors(t *testing.T) {
	s := newChocolateSystem(t)
	if _, err := s.QuestionObject(0); err == nil {
		t.Fatal("empty history indexed")
	}
	if err := s.Amend(0); err == nil {
		t.Fatal("amend before any session succeeded")
	}
}

func TestUnknownClass(t *testing.T) {
	s := newChocolateSystem(t)
	user := SimulatedUser(nested.ChocolatePropositions(), query.MustParse(s.Universe(), "∃x1"))
	if _, err := s.Learn(Class(99), user); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestRolePreservingClass(t *testing.T) {
	s := newChocolateSystem(t)
	u := s.Universe()
	// ∃x2x3 alone is outside qhorn-1 (x1 uncovered) but fine for the
	// role-preserving learner.
	intended := query.MustParse(u, "∃x2x3")
	user := SimulatedUser(nested.ChocolatePropositions(), intended)
	learned, err := s.Learn(RolePreserving, user)
	if err != nil {
		t.Fatal(err)
	}
	if !learned.Equivalent(intended) {
		t.Fatalf("learned %s", learned)
	}
}

func TestReviewAndAmendReview(t *testing.T) {
	s := newChocolateSystem(t)
	u := s.Universe()
	intended := query.MustParse(u, "∀x1 ∃x2x3")
	honest := SimulatedUser(nested.ChocolatePropositions(), intended)
	shown := 0
	liar := UserFunc(func(o nested.Object) bool {
		shown++
		v := honest.Classify(o)
		if shown == 3 {
			return !v
		}
		return v
	})
	first, err := s.Learn(Qhorn1, liar)
	if err != nil {
		t.Fatal(err)
	}
	if first.Equivalent(intended) {
		t.Skip("lie harmless")
	}
	fixedCount, err := s.AmendReview(honest)
	if err != nil {
		t.Fatal(err)
	}
	if fixedCount == 0 {
		t.Fatal("review found nothing to fix")
	}
	again, err := s.Learn(Qhorn1, UserFunc(honest.Classify))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Equivalent(intended) {
		t.Fatalf("after AmendReview learned %s", again)
	}
	// A clean session reviews clean.
	if n, err := s.AmendReview(honest); err != nil || n != 0 {
		t.Fatalf("clean review: %d, %v", n, err)
	}
}

func TestReviewBeforeSession(t *testing.T) {
	s := newChocolateSystem(t)
	if _, err := s.Review(SimulatedUser(nested.ChocolatePropositions(), query.MustParse(s.Universe(), "∃x1"))); err == nil {
		t.Fatal("review before any session succeeded")
	}
}
