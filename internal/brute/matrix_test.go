package brute

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"qhorn/internal/bitvec"
	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// recordingOracle wraps an oracle and records the exact question
// sequence, for pinning the matrix path's questions against serial.
type recordingOracle struct {
	inner oracle.Oracle
	asked []boolean.Set
}

func (r *recordingOracle) Ask(s boolean.Set) bool {
	r.asked = append(r.asked, s)
	return r.inner.Ask(s)
}

func sameQuestions(a, b []boolean.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestMatrixBitIdentical pins the matrix-backed Learn and LearnGreedy
// against the serial reference paths on every role-preserving target
// over 2 variables: same questions in the same order, same counts,
// same learned query.
func TestMatrixBitIdentical(t *testing.T) {
	u := boolean.MustUniverse(2)
	candidates := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	m := NewMatrix(candidates, pool, 2)
	for _, target := range candidates {
		for _, path := range []struct {
			name   string
			serial func([]query.Query, oracle.Oracle, []boolean.Set) (Result, error)
			matrix func(oracle.Oracle) (Result, error)
		}{
			{"Learn", LearnSerial, m.Learn},
			{"LearnGreedy", LearnGreedySerial, m.LearnGreedy},
		} {
			rs := &recordingOracle{inner: oracle.Target(target)}
			rm := &recordingOracle{inner: oracle.Target(target)}
			resS, errS := path.serial(candidates, rs, pool)
			resM, errM := path.matrix(rm)
			if errS != errM {
				t.Fatalf("%s target %s: serial err %v, matrix err %v", path.name, target, errS, errM)
			}
			if !sameQuestions(rs.asked, rm.asked) {
				t.Fatalf("%s target %s: question sequences differ (%d vs %d)",
					path.name, target, len(rs.asked), len(rm.asked))
			}
			if resS.Questions != resM.Questions || resS.Remaining != resM.Remaining {
				t.Fatalf("%s target %s: serial %+v, matrix %+v", path.name, target, resS, resM)
			}
			if !resS.Learned.Equal(resM.Learned) {
				t.Fatalf("%s target %s: serial learned %s, matrix learned %s",
					path.name, target, resS.Learned, resM.Learned)
			}
		}
	}
}

// TestMatrixBitIdenticalAdversary repeats the identity check against
// the alias adversary, whose answers depend on the exact question
// sequence — any divergence would change the count.
func TestMatrixBitIdenticalAdversary(t *testing.T) {
	for _, n := range []int{3, 4} {
		u := boolean.MustUniverse(n)
		class := oracle.AliasClass(u)
		pool := oracle.AliasQuestions(u)
		for name, fns := range map[string][2]func() (Result, error){
			"Learn": {
				func() (Result, error) { return LearnSerial(class, oracle.NewAdversary(class), pool) },
				func() (Result, error) { return Learn(class, oracle.NewAdversary(class), pool) },
			},
			"LearnGreedy": {
				func() (Result, error) { return LearnGreedySerial(class, oracle.NewAdversary(class), pool) },
				func() (Result, error) { return LearnGreedy(class, oracle.NewAdversary(class), pool) },
			},
		} {
			resS, errS := fns[0]()
			resM, errM := fns[1]()
			if errS != errM || resS.Questions != resM.Questions || resS.Remaining != resM.Remaining {
				t.Fatalf("%s n=%d: serial (%+v, %v), matrix (%+v, %v)", name, n, resS, errS, resM, errM)
			}
			if !resS.Learned.Equal(resM.Learned) {
				t.Fatalf("%s n=%d: learned queries differ", name, n)
			}
		}
	}
}

// TestLearnGreedyTieBreakDeterminism: among equal-split questions the
// greedy learner must pick the lowest pool index, on both paths.
func TestLearnGreedyTieBreakDeterminism(t *testing.T) {
	u := boolean.MustUniverse(2)
	candidates := []query.Query{
		query.MustParse(u, "∃x1"),
		query.MustParse(u, "∃x2"),
	}
	// Both questions split the two candidates 1/1; the learner must
	// take index 0 ({10}) first, on both paths, every run.
	pool := []boolean.Set{
		boolean.MustParseSet(u, "{10}"),
		boolean.MustParseSet(u, "{01}"),
	}
	want := pool[0]
	for run := 0; run < 3; run++ {
		rs := &recordingOracle{inner: oracle.Target(candidates[0])}
		if _, err := LearnGreedySerial(candidates, rs, pool); err != nil {
			t.Fatal(err)
		}
		rm := &recordingOracle{inner: oracle.Target(candidates[0])}
		if _, err := LearnGreedy(candidates, rm, pool); err != nil {
			t.Fatal(err)
		}
		if len(rs.asked) == 0 || !rs.asked[0].Equal(want) {
			t.Fatalf("serial first question %v, want lowest pool index %v", rs.asked, want)
		}
		if !sameQuestions(rs.asked, rm.asked) {
			t.Fatalf("run %d: tie-break diverged: serial %v, matrix %v", run, rs.asked, rm.asked)
		}
	}
}

// TestAllEquivalentFallback: when the pool cannot distinguish the
// candidates their matrix rows are identical, so the equivalence
// prefilter is inconclusive and the semantic check decides — stopping
// immediately for equivalent candidates, ErrAmbiguous otherwise.
func TestAllEquivalentFallback(t *testing.T) {
	u := boolean.MustUniverse(3)

	// Syntactically different but semantically equivalent candidates:
	// rows identical, semantic fallback says stop without a question.
	equivalent := []query.Query{
		query.MustParse(u, "∃x1x2x3 ∃x1x2"),
		query.MustParse(u, "∃x1x2x3"),
	}
	c := oracle.Count(oracle.Target(equivalent[0]))
	res, err := NewMatrix(equivalent, boolean.AllObjects(u), 0).Learn(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Questions != 0 || c.Questions != 0 {
		t.Errorf("equivalent candidates cost %d questions, want 0", res.Questions)
	}

	// Semantically distinct candidates over a pool that cannot separate
	// them: rows identical, fallback must detect inequivalence and both
	// paths report ErrAmbiguous with both candidates remaining.
	distinct := []query.Query{
		query.MustParse(u, "∃x1"),
		query.MustParse(u, "∃x2"),
	}
	blind := []boolean.Set{boolean.MustParseSet(u, "{110}"), boolean.MustParseSet(u, "{111}")}
	m := NewMatrix(distinct, blind, 0)
	if m.Answer(0, 0) != m.Answer(1, 0) || m.Answer(0, 1) != m.Answer(1, 1) {
		t.Fatal("pool unexpectedly distinguishes the candidates")
	}
	for name, f := range map[string]func(oracle.Oracle) (Result, error){
		"Learn": m.Learn, "LearnGreedy": m.LearnGreedy,
	} {
		res, err := f(oracle.Target(distinct[0]))
		if err != ErrAmbiguous {
			t.Errorf("%s: err = %v, want ErrAmbiguous", name, err)
		}
		if res.Remaining != 2 {
			t.Errorf("%s: remaining = %d, want 2", name, res.Remaining)
		}
	}
	serialRes, serialErr := LearnSerial(distinct, oracle.Target(distinct[0]), blind)
	if serialErr != ErrAmbiguous || serialRes.Remaining != 2 {
		t.Errorf("serial: (%+v, %v), want ErrAmbiguous with 2 remaining", serialRes, serialErr)
	}
}

// TestMatrixReuse: one matrix drives multiple runs against different
// oracles without cross-talk (the elimination state is per-run).
func TestMatrixReuse(t *testing.T) {
	u := boolean.MustUniverse(2)
	candidates := query.AllQueries(u)
	m := NewMatrix(candidates, boolean.AllObjects(u), 0)
	if len(m.Candidates()) != len(candidates) || len(m.Pool()) != len(boolean.AllObjects(u)) {
		t.Fatal("matrix accessors disagree with inputs")
	}
	for _, target := range candidates {
		res, err := m.LearnGreedy(oracle.Target(target))
		if err != nil {
			t.Fatalf("target %s: %v", target, err)
		}
		if !res.Learned.Equivalent(target) {
			t.Fatalf("target %s learned as %s", target, res.Learned)
		}
	}
}

// TestMatrixLargeCandidateSet crosses the one-word boundary (>64
// candidates) so multi-word rem/row handling is exercised, and pins a
// sampled run against serial.
func TestMatrixLargeCandidateSet(t *testing.T) {
	u := boolean.MustUniverse(3)
	candidates := query.AllQueries(u)
	if len(candidates) <= 64 {
		t.Fatalf("want >64 candidates, got %d", len(candidates))
	}
	pool := boolean.AllObjects(u)
	m := NewMatrix(candidates, pool, 4)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		target := candidates[rng.Intn(len(candidates))]
		rs := &recordingOracle{inner: oracle.Target(target)}
		rm := &recordingOracle{inner: oracle.Target(target)}
		resS, errS := LearnGreedySerial(candidates, rs, pool)
		resM, errM := m.LearnGreedy(rm)
		if errS != errM || resS.Questions != resM.Questions || !resS.Learned.Equal(resM.Learned) {
			t.Fatalf("target %s: serial (%+v, %v), matrix (%+v, %v)", target, resS, errS, resM, errM)
		}
		if !sameQuestions(rs.asked, rm.asked) {
			t.Fatalf("target %s: question sequences diverged", target)
		}
	}
}

// TestMatrixEmptyInputs covers the degenerate corners.
func TestMatrixEmptyInputs(t *testing.T) {
	u := boolean.MustUniverse(2)
	m := NewMatrix(nil, boolean.AllObjects(u), 0)
	if _, err := m.Learn(oracle.Func(func(boolean.Set) bool { return false })); err != ErrNoCandidates {
		t.Errorf("Learn on empty candidates: err = %v", err)
	}
	if _, err := m.LearnGreedy(oracle.Func(func(boolean.Set) bool { return false })); err != ErrNoCandidates {
		t.Errorf("LearnGreedy on empty candidates: err = %v", err)
	}
	// Empty pool with equivalent candidates: immediate success.
	one := []query.Query{query.MustParse(u, "∃x1")}
	res, err := NewMatrix(one, nil, 0).Learn(oracle.Target(one[0]))
	if err != nil || res.Questions != 0 || res.Remaining != 1 {
		t.Errorf("empty pool: (%+v, %v)", res, err)
	}
}

// TestMatrixIntoTimingMetrics checks the registry-threaded constructor
// records the build and per-algorithm learn durations, and that the
// plain constructor stays metric-silent.
func TestMatrixIntoTimingMetrics(t *testing.T) {
	u := boolean.MustUniverse(2)
	candidates := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	reg := obs.NewRegistry()
	m := NewMatrixInto(candidates, pool, 2, reg)
	if got := reg.Histogram(obs.MetricBruteBuildSeconds, obs.LatencyBuckets).Count(); got != 1 {
		t.Errorf("build observations = %d, want 1", got)
	}

	target := oracle.Target(candidates[0])
	if _, err := m.Learn(target); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LearnGreedy(target); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Learn(target); err != nil {
		t.Fatal(err)
	}
	if got := reg.Histogram(obs.MetricBruteLearnSeconds, obs.LatencyBuckets, "algo", "sequential").Count(); got != 2 {
		t.Errorf("sequential learn observations = %d, want 2", got)
	}
	if got := reg.Histogram(obs.MetricBruteLearnSeconds, obs.LatencyBuckets, "algo", "greedy").Count(); got != 1 {
		t.Errorf("greedy learn observations = %d, want 1", got)
	}

	// NewMatrix (no registry) must not panic and must record nothing.
	bare := NewMatrix(candidates, pool, 2)
	if _, err := bare.Learn(target); err != nil {
		t.Fatal(err)
	}
	if got := reg.Histogram(obs.MetricBruteLearnSeconds, obs.LatencyBuckets, "algo", "sequential").Count(); got != 2 {
		t.Errorf("bare matrix leaked observations into the registry: %d", got)
	}
}

// matrixVariants enumerates every storage configuration of the matrix
// engine: sliced vs scalar build, sharded vs single-shard, compressed
// vs raw, in-RAM vs spilled to disk.
func matrixVariants(t *testing.T) []struct {
	name string
	opt  MatrixOptions
} {
	t.Helper()
	dir := t.TempDir()
	return []struct {
		name string
		opt  MatrixOptions
	}{
		{"sliced", MatrixOptions{}},
		{"scalar", MatrixOptions{Scalar: true}},
		{"sharded", MatrixOptions{ShardSize: 64}},
		{"compressed", MatrixOptions{Compress: true}},
		{"sharded-compressed", MatrixOptions{ShardSize: 64, Compress: true}},
		{"spilled", MatrixOptions{SpillDir: dir}},
		{"sharded-spilled", MatrixOptions{ShardSize: 64, SpillDir: dir}},
		{"scalar-sharded-compressed", MatrixOptions{Scalar: true, ShardSize: 64, Compress: true}},
	}
}

// TestMatrixBitIdenticalVariants extends the bit-identity pin to every
// shard/compression/spill combination: each variant must ask exactly
// the serial reference's questions, in order, on every target, for
// both learners.
func TestMatrixBitIdenticalVariants(t *testing.T) {
	u := boolean.MustUniverse(3)
	candidates := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	rng := rand.New(rand.NewSource(67))
	var targets []query.Query
	for i := 0; i < 6; i++ {
		targets = append(targets, candidates[rng.Intn(len(candidates))])
	}
	for _, v := range matrixVariants(t) {
		t.Run(v.name, func(t *testing.T) {
			m, err := NewMatrixOpts(candidates, pool, v.opt)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if v.opt.ShardSize == 64 && m.Shards() != (len(candidates)+63)/64 {
				t.Fatalf("shards = %d, want %d", m.Shards(), (len(candidates)+63)/64)
			}
			if m.OnDisk() != (v.opt.SpillDir != "") {
				t.Fatalf("OnDisk = %v", m.OnDisk())
			}
			for _, target := range targets {
				for _, path := range []struct {
					name   string
					serial func([]query.Query, oracle.Oracle, []boolean.Set) (Result, error)
					matrix func(oracle.Oracle) (Result, error)
				}{
					{"Learn", LearnSerial, m.Learn},
					{"LearnGreedy", LearnGreedySerial, m.LearnGreedy},
				} {
					rs := &recordingOracle{inner: oracle.Target(target)}
					rm := &recordingOracle{inner: oracle.Target(target)}
					resS, errS := path.serial(candidates, rs, pool)
					resM, errM := path.matrix(rm)
					if errS != errM {
						t.Fatalf("%s target %s: serial err %v, matrix err %v", path.name, target, errS, errM)
					}
					if !sameQuestions(rs.asked, rm.asked) {
						t.Fatalf("%s target %s: question sequences differ (%d vs %d)",
							path.name, target, len(rs.asked), len(rm.asked))
					}
					if resS.Questions != resM.Questions || resS.Remaining != resM.Remaining ||
						!resS.Learned.Equal(resM.Learned) {
						t.Fatalf("%s target %s: serial %+v, matrix %+v", path.name, target, resS, resM)
					}
				}
			}
		})
	}
}

// TestMatrixAnswerVariants: Answer must read the same bit out of every
// storage form, pinned against direct kernel evaluation.
func TestMatrixAnswerVariants(t *testing.T) {
	u := boolean.MustUniverse(3)
	candidates := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	compiled := make([]*query.Compiled, len(candidates))
	for i, q := range candidates {
		compiled[i] = query.Compile(q)
	}
	rng := rand.New(rand.NewSource(71))
	for _, v := range matrixVariants(t) {
		m, err := NewMatrixOpts(candidates, pool, v.opt)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 400; probe++ {
			i, j := rng.Intn(len(candidates)), rng.Intn(len(pool))
			if got, want := m.Answer(i, j), compiled[i].Eval(pool[j]); got != want {
				t.Fatalf("%s: Answer(%d, %d) = %v, kernel says %v", v.name, i, j, got, want)
			}
		}
		m.Close()
	}
}

// TestMatrixSpillSeam is the disk seam test: a spilled matrix must
// learn identically to the in-RAM builds — and its spill file must
// exist while in use and vanish on Close.
func TestMatrixSpillSeam(t *testing.T) {
	u := boolean.MustUniverse(3)
	candidates := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	ram, err := NewMatrixOpts(candidates, pool, MatrixOptions{ShardSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	disk, err := MatrixOnDisk(candidates, pool, dir, MatrixOptions{ShardSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !disk.OnDisk() || ram.OnDisk() {
		t.Fatal("OnDisk flags wrong")
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("spill dir has %d entries (%v), want 1", len(entries), err)
	}
	if disk.StorageBytes() <= 0 || ram.StorageBytes() <= 0 {
		t.Fatal("StorageBytes should be positive")
	}
	for _, target := range candidates[:20] {
		rr := &recordingOracle{inner: oracle.Target(target)}
		rd := &recordingOracle{inner: oracle.Target(target)}
		resR, errR := ram.LearnGreedy(rr)
		resD, errD := disk.LearnGreedy(rd)
		if errR != errD || resR.Questions != resD.Questions || !resR.Learned.Equal(resD.Learned) {
			t.Fatalf("target %s: RAM (%+v, %v), disk (%+v, %v)", target, resR, errR, resD, errD)
		}
		if !sameQuestions(rr.asked, rd.asked) {
			t.Fatalf("target %s: question sequences diverged across the disk seam", target)
		}
	}
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}
	if err := disk.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Fatalf("spill file survived Close: %v", entries)
	}
}

// TestMatrixSpillDirCreated: a spill directory that does not exist yet
// (a fresh -brute-spill path, a cleaned CI workspace) is created
// rather than failing the build.
func TestMatrixSpillDirCreated(t *testing.T) {
	u := boolean.MustUniverse(2)
	candidates := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	dir := filepath.Join(t.TempDir(), "nested", "spill")
	m, err := MatrixOnDisk(candidates, pool, dir, MatrixOptions{})
	if err != nil {
		t.Fatalf("MatrixOnDisk into a missing dir: %v", err)
	}
	defer m.Close()
	if !m.OnDisk() {
		t.Fatal("matrix not on disk")
	}
	if entries, err := os.ReadDir(dir); err != nil || len(entries) != 1 {
		t.Fatalf("spill dir has %d entries (%v), want 1", len(entries), err)
	}
}

// TestMatrixScalarSlicedIdenticalRows: the scalar (per-candidate
// kernel) and sliced (slab kernel) builds must produce the exact same
// matrix.
func TestMatrixScalarSlicedIdenticalRows(t *testing.T) {
	u := boolean.MustUniverse(3)
	candidates := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	sliced, err := NewMatrixOpts(candidates, pool, MatrixOptions{})
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := NewMatrixOpts(candidates, pool, MatrixOptions{Scalar: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range candidates {
		if sliced.finger[i] != scalar.finger[i] {
			t.Fatalf("candidate %d: sliced and scalar fingerprints differ", i)
		}
		if !bitvec.Equal(sliced.candRows[i], scalar.candRows[i]) {
			t.Fatalf("candidate %d: sliced and scalar rows differ", i)
		}
	}
	for j := range pool {
		for i := range candidates {
			if sliced.Answer(i, j) != scalar.Answer(i, j) {
				t.Fatalf("Answer(%d, %d) differs between sliced and scalar builds", i, j)
			}
		}
	}
}

// TestMatrixBitIdenticalExhaustiveN4 is the CI brute-smoke gate: at
// n=4 (1576 candidates × 65536 objects) the matrix learners must stay
// bit-identical to the serial sequential reference on sampled targets,
// across the sliced, compressed and spilled storages. The serial
// baseline is minutes of interpreted evaluation, so the gate only runs
// when QHORN_BRUTE_N4 is set (the brute-smoke CI job) and never under
// -short.
func TestMatrixBitIdenticalExhaustiveN4(t *testing.T) {
	if testing.Short() {
		t.Skip("n=4 exhaustive identity gate skipped in -short")
	}
	if os.Getenv("QHORN_BRUTE_N4") == "" {
		t.Skip("set QHORN_BRUTE_N4=1 to run the n=4 exhaustive identity gate")
	}
	u := boolean.MustUniverse(4)
	candidates := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	rng := rand.New(rand.NewSource(73))
	var targets []query.Query
	for i := 0; i < 3; i++ {
		targets = append(targets, candidates[rng.Intn(len(candidates))])
	}
	// One serial reference run per target, reused against every variant.
	type ref struct {
		res   Result
		err   error
		asked []boolean.Set
	}
	refs := make([]ref, len(targets))
	for i, target := range targets {
		rs := &recordingOracle{inner: oracle.Target(target)}
		res, err := LearnSerial(candidates, rs, pool)
		refs[i] = ref{res: res, err: err, asked: rs.asked}
	}
	for _, v := range []struct {
		name string
		opt  MatrixOptions
	}{
		{"sliced", MatrixOptions{}},
		{"sharded-compressed", MatrixOptions{ShardSize: 512, Compress: true}},
		{"spilled", MatrixOptions{ShardSize: 512}},
	} {
		opt := v.opt
		if v.name == "spilled" {
			opt.SpillDir = t.TempDir()
		}
		m, err := NewMatrixOpts(candidates, pool, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i, target := range targets {
			rm := &recordingOracle{inner: oracle.Target(target)}
			res, err := m.Learn(rm)
			if err != refs[i].err || res.Questions != refs[i].res.Questions ||
				res.Remaining != refs[i].res.Remaining || !res.Learned.Equal(refs[i].res.Learned) {
				t.Fatalf("%s target %s: matrix (%+v, %v), serial (%+v, %v)",
					v.name, target, res, err, refs[i].res, refs[i].err)
			}
			if !sameQuestions(refs[i].asked, rm.asked) {
				t.Fatalf("%s target %s: question sequence diverged from serial", v.name, target)
			}
		}
		m.Close()
	}
}
