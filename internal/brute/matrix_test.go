package brute

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// recordingOracle wraps an oracle and records the exact question
// sequence, for pinning the matrix path's questions against serial.
type recordingOracle struct {
	inner oracle.Oracle
	asked []boolean.Set
}

func (r *recordingOracle) Ask(s boolean.Set) bool {
	r.asked = append(r.asked, s)
	return r.inner.Ask(s)
}

func sameQuestions(a, b []boolean.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestMatrixBitIdentical pins the matrix-backed Learn and LearnGreedy
// against the serial reference paths on every role-preserving target
// over 2 variables: same questions in the same order, same counts,
// same learned query.
func TestMatrixBitIdentical(t *testing.T) {
	u := boolean.MustUniverse(2)
	candidates := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	m := NewMatrix(candidates, pool, 2)
	for _, target := range candidates {
		for _, path := range []struct {
			name   string
			serial func([]query.Query, oracle.Oracle, []boolean.Set) (Result, error)
			matrix func(oracle.Oracle) (Result, error)
		}{
			{"Learn", LearnSerial, m.Learn},
			{"LearnGreedy", LearnGreedySerial, m.LearnGreedy},
		} {
			rs := &recordingOracle{inner: oracle.Target(target)}
			rm := &recordingOracle{inner: oracle.Target(target)}
			resS, errS := path.serial(candidates, rs, pool)
			resM, errM := path.matrix(rm)
			if errS != errM {
				t.Fatalf("%s target %s: serial err %v, matrix err %v", path.name, target, errS, errM)
			}
			if !sameQuestions(rs.asked, rm.asked) {
				t.Fatalf("%s target %s: question sequences differ (%d vs %d)",
					path.name, target, len(rs.asked), len(rm.asked))
			}
			if resS.Questions != resM.Questions || resS.Remaining != resM.Remaining {
				t.Fatalf("%s target %s: serial %+v, matrix %+v", path.name, target, resS, resM)
			}
			if !resS.Learned.Equal(resM.Learned) {
				t.Fatalf("%s target %s: serial learned %s, matrix learned %s",
					path.name, target, resS.Learned, resM.Learned)
			}
		}
	}
}

// TestMatrixBitIdenticalAdversary repeats the identity check against
// the alias adversary, whose answers depend on the exact question
// sequence — any divergence would change the count.
func TestMatrixBitIdenticalAdversary(t *testing.T) {
	for _, n := range []int{3, 4} {
		u := boolean.MustUniverse(n)
		class := oracle.AliasClass(u)
		pool := oracle.AliasQuestions(u)
		for name, fns := range map[string][2]func() (Result, error){
			"Learn": {
				func() (Result, error) { return LearnSerial(class, oracle.NewAdversary(class), pool) },
				func() (Result, error) { return Learn(class, oracle.NewAdversary(class), pool) },
			},
			"LearnGreedy": {
				func() (Result, error) { return LearnGreedySerial(class, oracle.NewAdversary(class), pool) },
				func() (Result, error) { return LearnGreedy(class, oracle.NewAdversary(class), pool) },
			},
		} {
			resS, errS := fns[0]()
			resM, errM := fns[1]()
			if errS != errM || resS.Questions != resM.Questions || resS.Remaining != resM.Remaining {
				t.Fatalf("%s n=%d: serial (%+v, %v), matrix (%+v, %v)", name, n, resS, errS, resM, errM)
			}
			if !resS.Learned.Equal(resM.Learned) {
				t.Fatalf("%s n=%d: learned queries differ", name, n)
			}
		}
	}
}

// TestLearnGreedyTieBreakDeterminism: among equal-split questions the
// greedy learner must pick the lowest pool index, on both paths.
func TestLearnGreedyTieBreakDeterminism(t *testing.T) {
	u := boolean.MustUniverse(2)
	candidates := []query.Query{
		query.MustParse(u, "∃x1"),
		query.MustParse(u, "∃x2"),
	}
	// Both questions split the two candidates 1/1; the learner must
	// take index 0 ({10}) first, on both paths, every run.
	pool := []boolean.Set{
		boolean.MustParseSet(u, "{10}"),
		boolean.MustParseSet(u, "{01}"),
	}
	want := pool[0]
	for run := 0; run < 3; run++ {
		rs := &recordingOracle{inner: oracle.Target(candidates[0])}
		if _, err := LearnGreedySerial(candidates, rs, pool); err != nil {
			t.Fatal(err)
		}
		rm := &recordingOracle{inner: oracle.Target(candidates[0])}
		if _, err := LearnGreedy(candidates, rm, pool); err != nil {
			t.Fatal(err)
		}
		if len(rs.asked) == 0 || !rs.asked[0].Equal(want) {
			t.Fatalf("serial first question %v, want lowest pool index %v", rs.asked, want)
		}
		if !sameQuestions(rs.asked, rm.asked) {
			t.Fatalf("run %d: tie-break diverged: serial %v, matrix %v", run, rs.asked, rm.asked)
		}
	}
}

// TestAllEquivalentFallback: when the pool cannot distinguish the
// candidates their matrix rows are identical, so the equivalence
// prefilter is inconclusive and the semantic check decides — stopping
// immediately for equivalent candidates, ErrAmbiguous otherwise.
func TestAllEquivalentFallback(t *testing.T) {
	u := boolean.MustUniverse(3)

	// Syntactically different but semantically equivalent candidates:
	// rows identical, semantic fallback says stop without a question.
	equivalent := []query.Query{
		query.MustParse(u, "∃x1x2x3 ∃x1x2"),
		query.MustParse(u, "∃x1x2x3"),
	}
	c := oracle.Count(oracle.Target(equivalent[0]))
	res, err := NewMatrix(equivalent, boolean.AllObjects(u), 0).Learn(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Questions != 0 || c.Questions != 0 {
		t.Errorf("equivalent candidates cost %d questions, want 0", res.Questions)
	}

	// Semantically distinct candidates over a pool that cannot separate
	// them: rows identical, fallback must detect inequivalence and both
	// paths report ErrAmbiguous with both candidates remaining.
	distinct := []query.Query{
		query.MustParse(u, "∃x1"),
		query.MustParse(u, "∃x2"),
	}
	blind := []boolean.Set{boolean.MustParseSet(u, "{110}"), boolean.MustParseSet(u, "{111}")}
	m := NewMatrix(distinct, blind, 0)
	if m.Answer(0, 0) != m.Answer(1, 0) || m.Answer(0, 1) != m.Answer(1, 1) {
		t.Fatal("pool unexpectedly distinguishes the candidates")
	}
	for name, f := range map[string]func(oracle.Oracle) (Result, error){
		"Learn": m.Learn, "LearnGreedy": m.LearnGreedy,
	} {
		res, err := f(oracle.Target(distinct[0]))
		if err != ErrAmbiguous {
			t.Errorf("%s: err = %v, want ErrAmbiguous", name, err)
		}
		if res.Remaining != 2 {
			t.Errorf("%s: remaining = %d, want 2", name, res.Remaining)
		}
	}
	serialRes, serialErr := LearnSerial(distinct, oracle.Target(distinct[0]), blind)
	if serialErr != ErrAmbiguous || serialRes.Remaining != 2 {
		t.Errorf("serial: (%+v, %v), want ErrAmbiguous with 2 remaining", serialRes, serialErr)
	}
}

// TestMatrixReuse: one matrix drives multiple runs against different
// oracles without cross-talk (the elimination state is per-run).
func TestMatrixReuse(t *testing.T) {
	u := boolean.MustUniverse(2)
	candidates := query.AllQueries(u)
	m := NewMatrix(candidates, boolean.AllObjects(u), 0)
	if len(m.Candidates()) != len(candidates) || len(m.Pool()) != len(boolean.AllObjects(u)) {
		t.Fatal("matrix accessors disagree with inputs")
	}
	for _, target := range candidates {
		res, err := m.LearnGreedy(oracle.Target(target))
		if err != nil {
			t.Fatalf("target %s: %v", target, err)
		}
		if !res.Learned.Equivalent(target) {
			t.Fatalf("target %s learned as %s", target, res.Learned)
		}
	}
}

// TestMatrixLargeCandidateSet crosses the one-word boundary (>64
// candidates) so multi-word rem/row handling is exercised, and pins a
// sampled run against serial.
func TestMatrixLargeCandidateSet(t *testing.T) {
	u := boolean.MustUniverse(3)
	candidates := query.AllQueries(u)
	if len(candidates) <= 64 {
		t.Fatalf("want >64 candidates, got %d", len(candidates))
	}
	pool := boolean.AllObjects(u)
	m := NewMatrix(candidates, pool, 4)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		target := candidates[rng.Intn(len(candidates))]
		rs := &recordingOracle{inner: oracle.Target(target)}
		rm := &recordingOracle{inner: oracle.Target(target)}
		resS, errS := LearnGreedySerial(candidates, rs, pool)
		resM, errM := m.LearnGreedy(rm)
		if errS != errM || resS.Questions != resM.Questions || !resS.Learned.Equal(resM.Learned) {
			t.Fatalf("target %s: serial (%+v, %v), matrix (%+v, %v)", target, resS, errS, resM, errM)
		}
		if !sameQuestions(rs.asked, rm.asked) {
			t.Fatalf("target %s: question sequences diverged", target)
		}
	}
}

// TestMatrixEmptyInputs covers the degenerate corners.
func TestMatrixEmptyInputs(t *testing.T) {
	u := boolean.MustUniverse(2)
	m := NewMatrix(nil, boolean.AllObjects(u), 0)
	if _, err := m.Learn(oracle.Func(func(boolean.Set) bool { return false })); err != ErrNoCandidates {
		t.Errorf("Learn on empty candidates: err = %v", err)
	}
	if _, err := m.LearnGreedy(oracle.Func(func(boolean.Set) bool { return false })); err != ErrNoCandidates {
		t.Errorf("LearnGreedy on empty candidates: err = %v", err)
	}
	// Empty pool with equivalent candidates: immediate success.
	one := []query.Query{query.MustParse(u, "∃x1")}
	res, err := NewMatrix(one, nil, 0).Learn(oracle.Target(one[0]))
	if err != nil || res.Questions != 0 || res.Remaining != 1 {
		t.Errorf("empty pool: (%+v, %v)", res, err)
	}
}

// TestMatrixIntoTimingMetrics checks the registry-threaded constructor
// records the build and per-algorithm learn durations, and that the
// plain constructor stays metric-silent.
func TestMatrixIntoTimingMetrics(t *testing.T) {
	u := boolean.MustUniverse(2)
	candidates := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	reg := obs.NewRegistry()
	m := NewMatrixInto(candidates, pool, 2, reg)
	if got := reg.Histogram(obs.MetricBruteBuildSeconds, obs.LatencyBuckets).Count(); got != 1 {
		t.Errorf("build observations = %d, want 1", got)
	}

	target := oracle.Target(candidates[0])
	if _, err := m.Learn(target); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LearnGreedy(target); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Learn(target); err != nil {
		t.Fatal(err)
	}
	if got := reg.Histogram(obs.MetricBruteLearnSeconds, obs.LatencyBuckets, "algo", "sequential").Count(); got != 2 {
		t.Errorf("sequential learn observations = %d, want 2", got)
	}
	if got := reg.Histogram(obs.MetricBruteLearnSeconds, obs.LatencyBuckets, "algo", "greedy").Count(); got != 1 {
		t.Errorf("greedy learn observations = %d, want 1", got)
	}

	// NewMatrix (no registry) must not panic and must record nothing.
	bare := NewMatrix(candidates, pool, 2)
	if _, err := bare.Learn(target); err != nil {
		t.Fatal(err)
	}
	if got := reg.Histogram(obs.MetricBruteLearnSeconds, obs.LatencyBuckets, "algo", "sequential").Count(); got != 2 {
		t.Errorf("bare matrix leaked observations into the registry: %d", got)
	}
}
