package brute

import (
	"fmt"
	"math/bits"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"qhorn/internal/bitvec"
	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// This file implements the bitset answer-matrix engine behind Learn
// and LearnGreedy (docs/PERFORMANCE.md). The serial learners
// re-evaluate every remaining candidate against every pool question on
// every elimination step — O(remaining·pool) interpreted Eval calls per
// question — and allEquivalent re-normalizes candidate pairs per round.
// The matrix precomputes every candidate's answer to every pool
// question exactly once, after which split counting, elimination and
// greedy selection are word-wise AND plus popcount over packed rows.
// The question sequence is bit-identical to the serial path:
// TestMatrixBitIdentical pins questions, counts and outcomes against
// LearnSerial/LearnGreedySerial on every target.
//
// The matrix is organized along the candidate axis into shards of
// ShardSize candidates (always a multiple of 64, so shard row words
// align with words of the full-width remaining-candidate mask). Each
// shard is built by its own worker pool through the bit-sliced kernel
// — query.CompileSlab answers one pool question for 64 candidates per
// EvalAll call, deduplicating the requirement masks and Horn rules the
// candidates share — and stores its question-major rows in one of
// three forms: plain words, bitvec.Row compressed, or compressed and
// spilled to disk (MatrixOnDisk), streamed back per question at learn
// time. All three learn bit-identically; only footprint and wall time
// differ.

// DefaultShardSize is the default number of candidates per shard:
// large enough that every exhaustive enumeration this repo reaches
// (n ≤ 4, 1576 candidates) stays single-shard, small enough that a
// sampled n=5 space splits into parallel build units.
const DefaultShardSize = 1 << 13

// MatrixOptions tunes NewMatrixOpts. The zero value is the default
// configuration: sliced build, DefaultShardSize, plain in-RAM rows.
type MatrixOptions struct {
	// Workers sizes each shard's build worker pool; <= 0 selects
	// oracle.DefaultWorkers, the PR-3 engine's sizing.
	Workers int
	// ShardSize is the number of candidates per shard, rounded up to a
	// multiple of 64; <= 0 selects DefaultShardSize.
	ShardSize int
	// Compress stores question-major rows as bitvec.Row containers
	// instead of plain words.
	Compress bool
	// SpillDir, when non-empty, writes every shard's compressed rows
	// to one temporary file under the directory and streams them back
	// per question during learning; "." spills to the working
	// directory. Implies Compress for the at-rest form.
	SpillDir string
	// Scalar builds rows through the per-candidate compiled kernel
	// (the PR-5 path) instead of the bit-sliced slab kernel. The rows
	// are identical either way; this is the experiment baseline.
	Scalar bool
	// Registry receives the build and learn wall-time histograms; nil
	// is silent.
	Registry *obs.Registry
}

// Matrix is a precomputed candidates×pool answer matrix: bit i of
// question row j is candidate i's answer to pool question j. It is
// immutable after construction and safe for concurrent use; one matrix
// can drive any number of Learn/LearnGreedy runs against different
// oracles (the elimination state lives in the run, not the matrix).
// Spilled matrices hold an open file handle; Close releases it.
type Matrix struct {
	candidates []query.Query
	compiled   []*query.Compiled
	pool       []boolean.Set
	shards     []*shard
	shardSize  int
	words      int // words per full-width candidate mask
	// finger[i] is a hash of candidate i's full answer row. Differing
	// fingerprints certify differing rows, hence inequivalence under
	// the pool — the always-available half of the equivalence
	// prefilter.
	finger []uint64
	// candRows[i][w] holds bit j of word w set iff candidate i answers
	// yes to pool question 64w+j (candidate-major, the exact
	// equivalence prefilter: differing rows certify inequivalence).
	// nil when the matrix is spilled to disk; the fingerprint
	// prefilter and the semantic fallback then carry the decision.
	candRows [][]uint64
	spill    *os.File
	// reg receives the matrix's engine metrics (build and learn wall
	// times); nil is silent.
	reg *obs.Registry
}

// shard holds the question-major rows of candidates [lo, hi) in
// exactly one of three storages: raw words, compressed rows, or
// offsets into the shared spill file.
type shard struct {
	lo, hi int
	n      int // hi - lo
	words  int // words per row segment
	raw    [][]uint64
	comp   []bitvec.Row
	offs   []int64
	file   *os.File
}

// NewMatrix builds the answer matrix with default options and the
// given worker-pool size; see NewMatrixOpts.
func NewMatrix(candidates []query.Query, pool []boolean.Set, workers int) *Matrix {
	return NewMatrixInto(candidates, pool, workers, nil)
}

// NewMatrixInto is NewMatrix with engine metrics recorded into reg: the
// build's wall time lands in qhorn_brute_matrix_build_seconds, and the
// matrix's Learn/LearnGreedy runs observe qhorn_brute_learn_seconds
// (labeled by algorithm). A nil registry degrades to NewMatrix.
func NewMatrixInto(candidates []query.Query, pool []boolean.Set, workers int, reg *obs.Registry) *Matrix {
	m, err := NewMatrixOpts(candidates, pool, MatrixOptions{Workers: workers, Registry: reg})
	if err != nil {
		// Without a spill directory no I/O happens and no error is
		// possible; reaching here is a bug, not an environment failure.
		panic(err)
	}
	return m
}

// MatrixOnDisk builds the matrix with its rows compressed and spilled
// to a temporary file under dir (see MatrixOptions.SpillDir), for
// candidate spaces whose rows outgrow RAM. The caller owns the matrix
// lifetime: Close removes the spill file.
func MatrixOnDisk(candidates []query.Query, pool []boolean.Set, dir string, opt MatrixOptions) (*Matrix, error) {
	opt.SpillDir = dir
	return NewMatrixOpts(candidates, pool, opt)
}

// NewMatrixOpts builds the answer matrix for the candidate set over
// the question pool. Candidates are cut into shards of opt.ShardSize;
// each shard's rows are filled by a worker pool claiming one 64-wide
// candidate slab at a time — the slab's EvalAll answers a question for
// the whole word of candidates, and slabs touch disjoint row words, so
// the build needs no locking. An error is only possible when spilling
// to disk.
func NewMatrixOpts(candidates []query.Query, pool []boolean.Set, opt MatrixOptions) (*Matrix, error) {
	buildStart := time.Now()
	if opt.Workers <= 0 {
		opt.Workers = oracle.DefaultWorkers()
	}
	if opt.ShardSize <= 0 {
		opt.ShardSize = DefaultShardSize
	}
	opt.ShardSize = (opt.ShardSize + 63) &^ 63
	m := &Matrix{
		candidates: candidates,
		compiled:   make([]*query.Compiled, len(candidates)),
		pool:       pool,
		shardSize:  opt.ShardSize,
		words:      bitvec.Words(len(candidates)),
		finger:     make([]uint64, len(candidates)),
		reg:        opt.Registry,
	}
	spilling := opt.SpillDir != ""
	if !spilling {
		m.candRows = make([][]uint64, len(candidates))
	} else {
		if err := os.MkdirAll(opt.SpillDir, 0o755); err != nil {
			return nil, fmt.Errorf("brute: creating matrix spill dir: %w", err)
		}
		f, err := os.CreateTemp(opt.SpillDir, "qhorn-matrix-*.spill")
		if err != nil {
			return nil, fmt.Errorf("brute: creating matrix spill file: %w", err)
		}
		m.spill = f
	}
	var spillOff int64
	for lo := 0; lo < len(candidates); lo += opt.ShardSize {
		hi := lo + opt.ShardSize
		if hi > len(candidates) {
			hi = len(candidates)
		}
		s := &shard{lo: lo, hi: hi, n: hi - lo, words: bitvec.Words(hi - lo)}
		m.buildShard(s, opt)
		switch {
		case spilling:
			var err error
			spillOff, err = m.spillShard(s, spillOff)
			if err != nil {
				m.Close()
				return nil, err
			}
		case opt.Compress:
			s.comp = make([]bitvec.Row, len(pool))
			for j, row := range s.raw {
				s.comp[j] = bitvec.Compress(row, s.n)
			}
			s.raw = nil
		}
		m.shards = append(m.shards, s)
	}
	m.reg.Histogram(obs.MetricBruteBuildSeconds, obs.LatencyBuckets).Observe(time.Since(buildStart).Seconds())
	return m, nil
}

// buildShard fills one shard's raw rows (and the matrix's compiled
// kernels, candidate-major rows and fingerprints for its candidate
// range) with a worker pool claiming 64-candidate slabs.
func (m *Matrix) buildShard(s *shard, opt MatrixOptions) {
	s.raw = make([][]uint64, len(m.pool))
	for j := range s.raw {
		s.raw[j] = make([]uint64, s.words)
	}
	poolWords := bitvec.Words(len(m.pool))
	workers := opt.Workers
	if workers > s.words {
		workers = s.words
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				sw := int(atomic.AddInt64(&next, 1))
				if sw >= s.words {
					return
				}
				gLo := s.lo + sw<<6
				gHi := gLo + 64
				if gHi > s.hi {
					gHi = s.hi
				}
				chunk := m.candidates[gLo:gHi]
				for i, q := range chunk {
					m.compiled[gLo+i] = query.Compile(q)
				}
				// Candidate-major rows for this slab, kept (no spill)
				// or reduced to fingerprints (spill).
				rows := make([][]uint64, len(chunk))
				for i := range rows {
					rows[i] = make([]uint64, poolWords)
				}
				if opt.Scalar {
					for i := range chunk {
						c := m.compiled[gLo+i]
						bit := uint64(1) << uint(i)
						for j, obj := range m.pool {
							if c.Eval(obj) {
								s.raw[j][sw] |= bit
								bitvec.Set(rows[i], j)
							}
						}
					}
				} else {
					slab := query.CompileSlab(chunk)
					for j, obj := range m.pool {
						word := slab.EvalAll(obj)
						s.raw[j][sw] = word
						for word != 0 {
							i := bits.TrailingZeros64(word)
							word &= word - 1
							bitvec.Set(rows[i], j)
						}
					}
				}
				for i, row := range rows {
					m.finger[gLo+i] = fingerprint(row)
					if m.candRows != nil {
						m.candRows[gLo+i] = row
					}
				}
			}
		}()
	}
	wg.Wait()
}

// spillShard compresses the shard's raw rows, appends their binary
// encoding to the spill file starting at off, and swaps the shard's
// storage to the recorded offsets. Returns the next free offset.
func (m *Matrix) spillShard(s *shard, off int64) (int64, error) {
	s.offs = make([]int64, len(m.pool)+1)
	var buf []byte
	for j, row := range s.raw {
		s.offs[j] = off
		buf = bitvec.Compress(row, s.n).AppendBinary(buf[:0])
		n, err := m.spill.WriteAt(buf, off)
		if err != nil {
			return 0, fmt.Errorf("brute: spilling matrix row: %w", err)
		}
		off += int64(n)
	}
	s.offs[len(m.pool)] = off
	s.raw = nil
	s.file = m.spill
	return off, nil
}

// fingerprint hashes one candidate-major row (FNV-1a over its words).
func fingerprint(row []uint64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, w := range row {
		for b := 0; b < 64; b += 8 {
			h ^= (w >> uint(b)) & 0xff
			h *= prime
		}
	}
	return h
}

// rowAt streams one question row back from the spill file.
func (s *shard) rowAt(j int) bitvec.Row {
	buf := make([]byte, s.offs[j+1]-s.offs[j])
	if _, err := s.file.ReadAt(buf, s.offs[j]); err != nil {
		panic(fmt.Sprintf("brute: reading spilled matrix row %d: %v", j, err))
	}
	row, _, err := bitvec.DecodeRow(buf)
	if err != nil {
		panic(fmt.Sprintf("brute: decoding spilled matrix row %d: %v", j, err))
	}
	return row
}

// seg returns the shard's window of a full-width candidate mask; shard
// boundaries are 64-aligned, so the window is a plain word subslice.
func (s *shard) seg(rem []uint64) []uint64 {
	return rem[s.lo>>6 : s.lo>>6+s.words]
}

// rowCount returns popcount(rem & row j) across all shards.
func (m *Matrix) rowCount(rem []uint64, j int) int {
	n := 0
	for _, s := range m.shards {
		switch {
		case s.raw != nil:
			n += bitvec.AndCount(s.raw[j], s.seg(rem))
		case s.comp != nil:
			n += s.comp[j].AndCount(s.seg(rem))
		default:
			n += s.rowAt(j).AndCount(s.seg(rem))
		}
	}
	return n
}

// rowApply folds question j's answer into the remaining mask:
// rem &= row (keep) or rem &^= row (eliminate the yes-sayers).
func (m *Matrix) rowApply(rem []uint64, j int, keep bool) {
	for _, s := range m.shards {
		seg := s.seg(rem)
		switch {
		case s.raw != nil:
			if keep {
				bitvec.AndInto(seg, s.raw[j])
			} else {
				bitvec.AndNotInto(seg, s.raw[j])
			}
		case s.comp != nil:
			if keep {
				s.comp[j].AndInto(seg)
			} else {
				s.comp[j].AndNotInto(seg)
			}
		default:
			row := s.rowAt(j)
			if keep {
				row.AndInto(seg)
			} else {
				row.AndNotInto(seg)
			}
		}
	}
}

// timeLearn observes one Learn/LearnGreedy run's wall time, labeled by
// algorithm ("sequential" or "greedy"); a no-op without a registry.
func (m *Matrix) timeLearn(algo string) func() {
	if m.reg == nil {
		return func() {}
	}
	h := m.reg.Histogram(obs.MetricBruteLearnSeconds, obs.LatencyBuckets, "algo", algo)
	begun := time.Now()
	return func() { h.Observe(time.Since(begun).Seconds()) }
}

// Candidates returns the candidate slice the matrix was built over.
func (m *Matrix) Candidates() []query.Query { return m.candidates }

// Pool returns the question pool the matrix was built over.
func (m *Matrix) Pool() []boolean.Set { return m.pool }

// Shards returns the number of candidate-axis shards.
func (m *Matrix) Shards() int { return len(m.shards) }

// OnDisk reports whether the matrix's rows stream from a spill file.
func (m *Matrix) OnDisk() bool { return m.spill != nil }

// StorageBytes reports the at-rest footprint of the question-major
// rows: raw words, compressed container payloads, or spill-file bytes.
func (m *Matrix) StorageBytes() int64 {
	var n int64
	for _, s := range m.shards {
		switch {
		case s.raw != nil:
			for _, row := range s.raw {
				n += int64(len(row)) * 8
			}
		case s.comp != nil:
			for _, row := range s.comp {
				n += int64(row.SizeBytes())
			}
		default:
			n += s.offs[len(s.offs)-1] - s.offs[0]
		}
	}
	return n
}

// Close releases the spill file, if any. It is a no-op for in-RAM
// matrices and safe to call more than once; the matrix must not be
// used for learning after Close when spilled.
func (m *Matrix) Close() error {
	if m.spill == nil {
		return nil
	}
	name := m.spill.Name()
	err := m.spill.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	m.spill = nil
	return err
}

// Answer reports the precomputed answer of candidate i to pool
// question j.
func (m *Matrix) Answer(i, j int) bool {
	s := m.shards[i/m.shardSize]
	rel := i - s.lo
	switch {
	case s.raw != nil:
		return bitvec.Get(s.raw[j], rel)
	case s.comp != nil:
		return s.comp[j].Bit(rel)
	default:
		return s.rowAt(j).Bit(rel)
	}
}

// Learn runs the sequential elimination learner over the matrix; see
// Learn for the contract. Question selection, counts and the learned
// query are bit-identical to LearnSerial.
func (m *Matrix) Learn(o oracle.Oracle) (Result, error) {
	if len(m.candidates) == 0 {
		return Result{}, ErrNoCandidates
	}
	defer m.timeLearn("sequential")()
	rem := bitvec.Full(len(m.candidates))
	count := len(m.candidates)
	res := Result{}
	for j := range m.pool {
		if m.allEquivalentRem(rem, count) {
			break
		}
		yes := m.rowCount(rem, j)
		no := count - yes
		if yes == 0 || no == 0 {
			continue // uninformative
		}
		res.Questions++
		if o.Ask(m.pool[j]) {
			m.rowApply(rem, j, true)
			count = yes
		} else {
			m.rowApply(rem, j, false)
			count = no
		}
	}
	res.Remaining = count
	res.Learned = m.candidates[bitvec.FirstBit(rem)]
	if !m.allEquivalentRem(rem, count) {
		return res, ErrAmbiguous
	}
	return res, nil
}

// LearnGreedy runs the halving learner over the matrix; see
// LearnGreedy for the contract. Ties between equal-split questions
// break to the lowest pool index, exactly as in LearnGreedySerial.
func (m *Matrix) LearnGreedy(o oracle.Oracle) (Result, error) {
	if len(m.candidates) == 0 {
		return Result{}, ErrNoCandidates
	}
	defer m.timeLearn("greedy")()
	rem := bitvec.Full(len(m.candidates))
	count := len(m.candidates)
	used := make([]bool, len(m.pool))
	res := Result{}
	for !m.allEquivalentRem(rem, count) {
		// Pick the unused question with the most balanced split: the
		// strict > keeps the lowest index among equal splits.
		best, bestMin := -1, 0
		for j := range m.pool {
			if used[j] {
				continue
			}
			yes := m.rowCount(rem, j)
			no := count - yes
			min := yes
			if no < min {
				min = no
			}
			if min > bestMin {
				bestMin, best = min, j
			}
		}
		if best == -1 {
			res.Remaining = count
			res.Learned = m.candidates[bitvec.FirstBit(rem)]
			return res, ErrAmbiguous
		}
		used[best] = true
		res.Questions++
		yes := m.rowCount(rem, best)
		if o.Ask(m.pool[best]) {
			m.rowApply(rem, best, true)
			count = yes
		} else {
			m.rowApply(rem, best, false)
			count -= yes
		}
	}
	res.Remaining = count
	res.Learned = m.candidates[bitvec.FirstBit(rem)]
	return res, nil
}

// allEquivalentRem reports whether every remaining candidate is
// semantically equivalent to the first. Candidates whose matrix rows
// differ are separated by a pool question, hence certainly
// inequivalent; differing row fingerprints certify that cheaply, and
// with candidate-major rows in RAM an exact row comparison catches the
// rest of the separable pairs. Only candidates these filters cannot
// split fall through to the pairwise semantic check, which reuses the
// kernels' cached normal forms. The decision is exactly
// allEquivalent's over the remaining candidates.
func (m *Matrix) allEquivalentRem(rem []uint64, count int) bool {
	if count <= 1 {
		return true
	}
	first := -1
	for w, word := range rem {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if first == -1 {
				first = i
				continue
			}
			if m.finger[first] != m.finger[i] {
				return false
			}
			if m.candRows != nil && !bitvec.Equal(m.candRows[first], m.candRows[i]) {
				return false
			}
			if !m.compiled[first].Equivalent(m.compiled[i]) {
				return false
			}
		}
	}
	return true
}
