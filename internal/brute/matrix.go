package brute

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// This file implements the bitset answer-matrix engine behind Learn
// and LearnGreedy (docs/PERFORMANCE.md). The serial learners
// re-evaluate every remaining candidate against every pool question on
// every elimination step — O(remaining·pool) interpreted Eval calls per
// question — and allEquivalent re-normalizes candidate pairs per round.
// The matrix precomputes every candidate's answer to every pool
// question exactly once through the compiled kernel, after which split
// counting, elimination and greedy selection are word-wise AND plus
// popcount over packed rows. The question sequence is bit-identical to
// the serial path: TestMatrixBitIdentical pins questions, counts and
// outcomes against LearnSerial/LearnGreedySerial on every target.

// Matrix is a precomputed candidates×pool answer matrix: row j packs
// candidate answers to pool question j, one bit per candidate. It is
// immutable after NewMatrix and safe for concurrent use; one matrix
// can drive any number of Learn/LearnGreedy runs against different
// oracles (the elimination state lives in the run, not the matrix).
type Matrix struct {
	candidates []query.Query
	compiled   []*query.Compiled
	pool       []boolean.Set
	// rows[j][w] holds bit i of word w set iff candidate 64w+i answers
	// yes to pool question j (question-major, for split counting).
	rows [][]uint64
	// candRows[i][w] holds bit j of word w set iff candidate i answers
	// yes to pool question 64w+j (candidate-major, the equivalence
	// prefilter: differing rows certify inequivalence).
	candRows [][]uint64
	words    int // words per question-major row
	// reg receives the matrix's engine metrics (build and learn wall
	// times); nil is silent.
	reg *obs.Registry
}

// NewMatrix builds the answer matrix for the candidate set over the
// question pool, evaluating each candidate through the compiled
// kernel. The build fans out across a worker pool of the given size
// (<= 0 selects oracle.DefaultWorkers, the PR-3 engine's sizing), one
// candidate row per task: coarse tasks keep the |C|·|P| evaluations
// free of per-question synchronization.
func NewMatrix(candidates []query.Query, pool []boolean.Set, workers int) *Matrix {
	return NewMatrixInto(candidates, pool, workers, nil)
}

// NewMatrixInto is NewMatrix with engine metrics recorded into reg: the
// build's wall time lands in qhorn_brute_matrix_build_seconds, and the
// matrix's Learn/LearnGreedy runs observe qhorn_brute_learn_seconds
// (labeled by algorithm). A nil registry degrades to NewMatrix.
func NewMatrixInto(candidates []query.Query, pool []boolean.Set, workers int, reg *obs.Registry) *Matrix {
	buildStart := time.Now()
	m := &Matrix{
		candidates: candidates,
		compiled:   make([]*query.Compiled, len(candidates)),
		pool:       pool,
		words:      (len(candidates) + 63) / 64,
		reg:        reg,
	}
	poolWords := (len(pool) + 63) / 64
	m.candRows = make([][]uint64, len(candidates))
	if workers <= 0 {
		workers = oracle.DefaultWorkers()
	}
	if workers > len(candidates) {
		workers = len(candidates)
	}
	// Each worker claims candidate indices and fills that candidate's
	// row; rows are disjoint, so the build needs no locking.
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(candidates) {
					return
				}
				c := query.Compile(candidates[i])
				m.compiled[i] = c
				row := make([]uint64, poolWords)
				for j, q := range pool {
					if c.Eval(q) {
						row[j>>6] |= 1 << (uint(j) & 63)
					}
				}
				m.candRows[i] = row
			}
		}()
	}
	wg.Wait()
	// Transpose into question-major rows for split counting.
	m.rows = make([][]uint64, len(pool))
	for j := range m.rows {
		m.rows[j] = make([]uint64, m.words)
	}
	for i, row := range m.candRows {
		for j := range pool {
			if row[j>>6]&(1<<(uint(j)&63)) != 0 {
				m.rows[j][i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	m.reg.Histogram(obs.MetricBruteBuildSeconds, obs.LatencyBuckets).Observe(time.Since(buildStart).Seconds())
	return m
}

// timeLearn observes one Learn/LearnGreedy run's wall time, labeled by
// algorithm ("sequential" or "greedy"); a no-op without a registry.
func (m *Matrix) timeLearn(algo string) func() {
	if m.reg == nil {
		return func() {}
	}
	h := m.reg.Histogram(obs.MetricBruteLearnSeconds, obs.LatencyBuckets, "algo", algo)
	begun := time.Now()
	return func() { h.Observe(time.Since(begun).Seconds()) }
}

// Candidates returns the candidate slice the matrix was built over.
func (m *Matrix) Candidates() []query.Query { return m.candidates }

// Pool returns the question pool the matrix was built over.
func (m *Matrix) Pool() []boolean.Set { return m.pool }

// Answer reports the precomputed answer of candidate i to pool
// question j.
func (m *Matrix) Answer(i, j int) bool {
	return m.rows[j][i>>6]&(1<<(uint(i)&63)) != 0
}

// Learn runs the sequential elimination learner over the matrix; see
// Learn for the contract. Question selection, counts and the learned
// query are bit-identical to LearnSerial.
func (m *Matrix) Learn(o oracle.Oracle) (Result, error) {
	if len(m.candidates) == 0 {
		return Result{}, ErrNoCandidates
	}
	defer m.timeLearn("sequential")()
	rem := m.fullRem()
	count := len(m.candidates)
	res := Result{}
	for j := range m.pool {
		if m.allEquivalentRem(rem, count) {
			break
		}
		yes := andCount(rem, m.rows[j])
		no := count - yes
		if yes == 0 || no == 0 {
			continue // uninformative
		}
		res.Questions++
		if o.Ask(m.pool[j]) {
			andInto(rem, m.rows[j])
			count = yes
		} else {
			andNotInto(rem, m.rows[j])
			count = no
		}
	}
	res.Remaining = count
	res.Learned = m.candidates[firstBit(rem)]
	if !m.allEquivalentRem(rem, count) {
		return res, ErrAmbiguous
	}
	return res, nil
}

// LearnGreedy runs the halving learner over the matrix; see
// LearnGreedy for the contract. Ties between equal-split questions
// break to the lowest pool index, exactly as in LearnGreedySerial.
func (m *Matrix) LearnGreedy(o oracle.Oracle) (Result, error) {
	if len(m.candidates) == 0 {
		return Result{}, ErrNoCandidates
	}
	defer m.timeLearn("greedy")()
	rem := m.fullRem()
	count := len(m.candidates)
	used := make([]bool, len(m.pool))
	res := Result{}
	for !m.allEquivalentRem(rem, count) {
		// Pick the unused question with the most balanced split: the
		// strict > keeps the lowest index among equal splits.
		best, bestMin := -1, 0
		for j := range m.pool {
			if used[j] {
				continue
			}
			yes := andCount(rem, m.rows[j])
			no := count - yes
			min := yes
			if no < min {
				min = no
			}
			if min > bestMin {
				bestMin, best = min, j
			}
		}
		if best == -1 {
			res.Remaining = count
			res.Learned = m.candidates[firstBit(rem)]
			return res, ErrAmbiguous
		}
		used[best] = true
		res.Questions++
		yes := andCount(rem, m.rows[best])
		if o.Ask(m.pool[best]) {
			andInto(rem, m.rows[best])
			count = yes
		} else {
			andNotInto(rem, m.rows[best])
			count -= yes
		}
	}
	res.Remaining = count
	res.Learned = m.candidates[firstBit(rem)]
	return res, nil
}

// fullRem returns the remaining-candidate bitset with every candidate
// bit set and the trailing word bits clear.
func (m *Matrix) fullRem() []uint64 {
	rem := make([]uint64, m.words)
	for i := range rem {
		rem[i] = ^uint64(0)
	}
	if tail := uint(len(m.candidates)) & 63; tail != 0 {
		rem[m.words-1] = (1 << tail) - 1
	}
	if len(m.candidates) == 0 {
		rem = nil
	}
	return rem
}

// allEquivalentRem reports whether every remaining candidate is
// semantically equivalent to the first. Candidates whose matrix rows
// differ are separated by a pool question, hence certainly
// inequivalent; only candidates with identical rows fall through to
// the pairwise semantic check, which reuses the kernels' cached normal
// forms. The decision is exactly allEquivalent's over the remaining
// candidates.
func (m *Matrix) allEquivalentRem(rem []uint64, count int) bool {
	if count <= 1 {
		return true
	}
	first := -1
	for w, word := range rem {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if first == -1 {
				first = i
				continue
			}
			if !equalWords(m.candRows[first], m.candRows[i]) {
				return false
			}
			if !m.compiled[first].Equivalent(m.compiled[i]) {
				return false
			}
		}
	}
	return true
}

// andCount returns popcount(a & b).
func andCount(a, b []uint64) int {
	n := 0
	for w, x := range a {
		n += bits.OnesCount64(x & b[w])
	}
	return n
}

// andInto folds a &= b.
func andInto(a, b []uint64) {
	for w := range a {
		a[w] &= b[w]
	}
}

// andNotInto folds a &^= b.
func andNotInto(a, b []uint64) {
	for w := range a {
		a[w] &^= b[w]
	}
}

// equalWords reports element-wise equality of two equal-length rows.
func equalWords(a, b []uint64) bool {
	for w, x := range a {
		if x != b[w] {
			return false
		}
	}
	return true
}

// firstBit returns the index of the lowest set bit (the first
// surviving candidate, matching remaining[0] of the serial path).
func firstBit(rem []uint64) int {
	for w, word := range rem {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	return 0
}
