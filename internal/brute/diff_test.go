package brute_test

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/brute"
	"qhorn/internal/difffuzz"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// TestBruteAgreesWithEngineCases: on universes small enough to
// enumerate, brute-force elimination learns a query equivalent to
// every hidden query the differential generator draws — the same
// cross-check the fuzz engine applies, pinned here as a direct brute
// test with the generator's variety instead of hand fixtures.
func TestBruteAgreesWithEngineCases(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	u := boolean.MustUniverse(2)
	candidates := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	for i := 0; i < 30; i++ {
		class := difffuzz.ClassQhorn1
		if i%2 == 1 {
			class = difffuzz.ClassRP
		}
		hidden := difffuzz.GenCase(rng, class, 2, 2).Hidden
		res, err := brute.Learn(candidates, oracle.Target(hidden), pool)
		if err != nil {
			t.Fatalf("hidden %s: %v", hidden, err)
		}
		if !res.Learned.Equivalent(hidden) {
			t.Errorf("brute learned %s for hidden %s", res.Learned, hidden)
		}
	}
}
