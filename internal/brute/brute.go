// Package brute implements a brute-force elimination learner: it
// maintains an explicit candidate set of queries and asks membership
// questions until a single semantic equivalence class remains. It is
// the reference implementation used to cross-validate the polynomial
// learners on small universes and to measure the paper's lower bounds
// (Theorem 2.1, Lemma 3.4, Theorem 3.6), where each question can
// eliminate only one candidate.
package brute

import (
	"errors"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// ErrAmbiguous is returned when the question pool is exhausted but
// more than one semantically distinct candidate remains.
var ErrAmbiguous = errors.New("brute: question pool exhausted with multiple candidates")

// ErrNoCandidates is returned when Learn is called with an empty
// candidate set.
var ErrNoCandidates = errors.New("brute: empty candidate set")

// Result reports the outcome of a brute-force learning run.
type Result struct {
	// Learned is a remaining candidate (the unique one on success).
	Learned query.Query
	// Questions is the number of membership questions asked.
	Questions int
	// Remaining is the number of candidates consistent with all
	// responses when learning stopped.
	Remaining int
}

// Learn eliminates candidates with questions from pool until all
// remaining candidates are semantically equivalent. It only asks
// informative questions — those on which the remaining candidates
// disagree — so the question count is exactly the paper's measure.
// Because every asked question splits the remaining candidates, at
// least one candidate always survives; if the oracle is not backed by
// a query in the class, the survivor is simply wrong
// (garbage-in-garbage-out, as for any exact learner).
//
// Learn runs on the bitset answer matrix (see Matrix); it asks exactly
// the questions LearnSerial asks, in the same order. Callers running
// several experiments over one candidate set should build the Matrix
// once and call its Learn method directly.
func Learn(candidates []query.Query, o oracle.Oracle, pool []boolean.Set) (Result, error) {
	if len(candidates) == 0 {
		return Result{}, ErrNoCandidates
	}
	return NewMatrix(candidates, pool, 0).Learn(o)
}

// LearnSerial is the direct-evaluation reference implementation of
// Learn: it re-evaluates every remaining candidate on every pool
// question per step. The matrix path is pinned bit-identical to it in
// tests; it survives as the baseline the kernel experiment measures
// against.
func LearnSerial(candidates []query.Query, o oracle.Oracle, pool []boolean.Set) (Result, error) {
	if len(candidates) == 0 {
		return Result{}, ErrNoCandidates
	}
	remaining := append([]query.Query{}, candidates...)
	res := Result{}
	for _, question := range pool {
		if allEquivalent(remaining) {
			break
		}
		var yes, no int
		for _, q := range remaining {
			if q.Eval(question) {
				yes++
			} else {
				no++
			}
		}
		if yes == 0 || no == 0 {
			continue // uninformative
		}
		res.Questions++
		keepAnswer := o.Ask(question)
		next := remaining[:0]
		for _, q := range remaining {
			if q.Eval(question) == keepAnswer {
				next = append(next, q)
			}
		}
		remaining = next
	}
	res.Remaining = len(remaining)
	res.Learned = remaining[0]
	if !allEquivalent(remaining) {
		return res, ErrAmbiguous
	}
	return res, nil
}

// LearnGreedy is Learn with adaptive question selection: at each step
// it asks the pool question whose answer splits the remaining
// candidates most evenly (maximum worst-case elimination — the
// classic halving strategy). Against a benign oracle it identifies
// the target in about lg |candidates| questions; against the paper's
// adversarial classes it degrades to the same lower bounds as Learn,
// which is the point of Theorem 2.1.
//
// LearnGreedy runs on the bitset answer matrix (see Matrix); question
// selection — including the lowest-pool-index tie-break between
// equal splits — is bit-identical to LearnGreedySerial.
func LearnGreedy(candidates []query.Query, o oracle.Oracle, pool []boolean.Set) (Result, error) {
	if len(candidates) == 0 {
		return Result{}, ErrNoCandidates
	}
	return NewMatrix(candidates, pool, 0).LearnGreedy(o)
}

// LearnGreedySerial is the direct-evaluation reference implementation
// of LearnGreedy, kept as the bit-identity baseline and benchmark
// comparison point.
func LearnGreedySerial(candidates []query.Query, o oracle.Oracle, pool []boolean.Set) (Result, error) {
	if len(candidates) == 0 {
		return Result{}, ErrNoCandidates
	}
	remaining := append([]query.Query{}, candidates...)
	used := make([]bool, len(pool))
	res := Result{}
	for !allEquivalent(remaining) {
		// Pick the unused question with the most balanced split.
		best, bestMin := -1, 0
		for i, question := range pool {
			if used[i] {
				continue
			}
			yes := 0
			for _, q := range remaining {
				if q.Eval(question) {
					yes++
				}
			}
			no := len(remaining) - yes
			min := yes
			if no < min {
				min = no
			}
			if min > bestMin {
				bestMin, best = min, i
			}
		}
		if best == -1 {
			res.Remaining = len(remaining)
			res.Learned = remaining[0]
			return res, ErrAmbiguous
		}
		used[best] = true
		res.Questions++
		keep := o.Ask(pool[best])
		next := remaining[:0]
		for _, q := range remaining {
			if q.Eval(pool[best]) == keep {
				next = append(next, q)
			}
		}
		remaining = next
	}
	res.Remaining = len(remaining)
	res.Learned = remaining[0]
	return res, nil
}

func allEquivalent(qs []query.Query) bool {
	for i := 1; i < len(qs); i++ {
		if !qs[0].Equivalent(qs[i]) {
			return false
		}
	}
	return true
}
