package brute

import (
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

func TestLearnIdentifiesTargetExhaustively(t *testing.T) {
	// Over all role-preserving queries on 2 variables, with the full
	// object space as the question pool, the brute learner must
	// recover every target exactly.
	u := boolean.MustUniverse(2)
	candidates := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	for _, target := range candidates {
		res, err := Learn(candidates, oracle.Target(target), pool)
		if err != nil {
			t.Fatalf("target %s: %v", target, err)
		}
		if !res.Learned.Equivalent(target) {
			t.Fatalf("target %s learned as %s", target, res.Learned)
		}
	}
}

func TestLearnAliasClassNeedsExponentialQuestions(t *testing.T) {
	// Theorem 2.1 measured: against the adversary, the brute learner
	// on the alias class asks 2^n − 1 questions.
	for _, n := range []int{3, 4, 5} {
		u := boolean.MustUniverse(n)
		class := oracle.AliasClass(u)
		adv := oracle.NewAdversary(class)
		res, err := Learn(class, adv, oracle.AliasQuestions(u))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := 1<<uint(n) - 1
		if res.Questions != want {
			t.Errorf("n=%d: questions = %d, want %d", n, res.Questions, want)
		}
	}
}

func TestLearnEmptyCandidates(t *testing.T) {
	u := boolean.MustUniverse(2)
	pool := []boolean.Set{boolean.MustParseSet(u, "{10}")}
	if _, err := Learn(nil, oracle.Func(func(boolean.Set) bool { return false }), pool); err != ErrNoCandidates {
		t.Errorf("err = %v, want ErrNoCandidates", err)
	}
}

func TestLearnAmbiguousPool(t *testing.T) {
	u := boolean.MustUniverse(2)
	candidates := []query.Query{
		query.MustParse(u, "∃x1"),
		query.MustParse(u, "∃x2"),
	}
	// A pool that cannot separate the candidates.
	pool := []boolean.Set{boolean.MustParseSet(u, "{11}")}
	if _, err := Learn(candidates, oracle.Target(candidates[0]), pool); err != ErrAmbiguous {
		t.Errorf("err = %v, want ErrAmbiguous", err)
	}
}

func TestLearnSkipsUninformativeQuestions(t *testing.T) {
	u := boolean.MustUniverse(2)
	candidates := []query.Query{
		query.MustParse(u, "∃x1"),
		query.MustParse(u, "∃x2"),
	}
	c := oracle.Count(oracle.Target(candidates[0]))
	pool := []boolean.Set{
		boolean.MustParseSet(u, "{11}"), // both say answer: skipped
		boolean.NewSet(),                // both say non-answer: skipped
		boolean.MustParseSet(u, "{10}"), // informative
	}
	res, err := Learn(candidates, c, pool)
	if err != nil {
		t.Fatal(err)
	}
	if res.Questions != 1 || c.Questions != 1 {
		t.Errorf("questions = %d (oracle %d), want 1", res.Questions, c.Questions)
	}
}

func TestLearnEquivalentCandidatesNoQuestions(t *testing.T) {
	u := boolean.MustUniverse(3)
	candidates := []query.Query{
		query.MustParse(u, "∃x1x2x3 ∃x1x2"),
		query.MustParse(u, "∃x1x2x3"),
	}
	c := oracle.Count(oracle.Target(candidates[0]))
	res, err := Learn(candidates, c, boolean.AllObjects(u))
	if err != nil {
		t.Fatal(err)
	}
	if res.Questions != 0 {
		t.Errorf("asked %d questions for equivalent candidates", res.Questions)
	}
}

func TestLearnGreedyIdentifiesTargets(t *testing.T) {
	u := boolean.MustUniverse(2)
	candidates := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	for _, target := range candidates {
		res, err := LearnGreedy(candidates, oracle.Target(target), pool)
		if err != nil {
			t.Fatalf("target %s: %v", target, err)
		}
		if !res.Learned.Equivalent(target) {
			t.Fatalf("target %s learned as %s", target, res.Learned)
		}
		// Near the information-theoretic lg |class| against a benign
		// oracle.
		if res.Questions > 8 {
			t.Errorf("target %s took %d greedy questions", target, res.Questions)
		}
	}
}

func TestLearnGreedyBeatsSequentialOnBenignOracle(t *testing.T) {
	u := boolean.MustUniverse(3)
	candidates := query.AllQueries(u)
	pool := boolean.AllObjects(u)
	var seq, greedy int
	for i, target := range candidates {
		if i%5 != 0 {
			continue // sample
		}
		r1, err := Learn(candidates, oracle.Target(target), pool)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := LearnGreedy(candidates, oracle.Target(target), pool)
		if err != nil {
			t.Fatal(err)
		}
		if !r2.Learned.Equivalent(target) {
			t.Fatalf("greedy learned wrong query for %s", target)
		}
		seq += r1.Questions
		greedy += r2.Questions
	}
	if greedy >= seq {
		t.Errorf("greedy asked %d, sequential asked %d", greedy, seq)
	}
}

func TestLearnGreedyAdversaryStillExponential(t *testing.T) {
	// Theorem 2.1 applies to every learner: greedy selection cannot
	// beat the alias adversary either.
	u := boolean.MustUniverse(5)
	class := oracle.AliasClass(u)
	adv := oracle.NewAdversary(class)
	res, err := LearnGreedy(class, adv, oracle.AliasQuestions(u))
	if err != nil {
		t.Fatal(err)
	}
	if res.Questions != 1<<5-1 {
		t.Errorf("greedy against adversary: %d questions, want %d", res.Questions, 1<<5-1)
	}
}

func TestLearnGreedyErrors(t *testing.T) {
	u := boolean.MustUniverse(2)
	if _, err := LearnGreedy(nil, oracle.Target(query.MustParse(u, "∃x1")), nil); err != ErrNoCandidates {
		t.Errorf("err = %v", err)
	}
	candidates := []query.Query{query.MustParse(u, "∃x1"), query.MustParse(u, "∃x2")}
	pool := []boolean.Set{boolean.MustParseSet(u, "{11}")}
	if _, err := LearnGreedy(candidates, oracle.Target(candidates[0]), pool); err != ErrAmbiguous {
		t.Errorf("err = %v", err)
	}
}
