package nested

import (
	"strings"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// Small-surface tests completing coverage of the rendering and
// encoding branches.

func TestKindOpStrings(t *testing.T) {
	if String.String() != "string" || Bool.String() != "bool" || Number.String() != "number" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind should show its value")
	}
	ops := map[Op]string{Eq: "=", Ne: "≠", Lt: "<", Gt: ">", IsTrue: "is true", IsFalse: "is false"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("Op %v = %q, want %q", int(op), op.String(), want)
		}
	}
	if !strings.Contains(Op(9).String(), "9") {
		t.Error("unknown op should show its value")
	}
}

func TestPropositionStringForms(t *testing.T) {
	tests := []struct {
		p    Proposition
		want string
	}{
		{Proposition{Attr: "a", Op: IsTrue}, "a"},
		{Proposition{Attr: "a", Op: IsFalse}, "¬a"},
		{Proposition{Attr: "price", Op: Gt, Val: N(3)}, "price > 3"},
		{Proposition{Attr: "s", Op: Ne, Val: S("x")}, "s ≠ x"},
	}
	for _, tc := range tests {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestHoldsUnknownAttributeAndOp(t *testing.T) {
	s := ChocolateSchema()
	tup := Fig1Dataset().Objects[0].Tuples[0]
	if (Proposition{Attr: "missing", Op: IsTrue}).Holds(s, tup) {
		t.Error("unknown attribute held")
	}
	if (Proposition{Attr: "isDark", Op: Op(9)}).Holds(s, tup) {
		t.Error("unknown operator held")
	}
	// Lt/Gt on non-numbers are false.
	if (Proposition{Attr: "origin", Op: Lt, Val: N(3)}).Holds(s, tup) {
		t.Error("Lt on string held")
	}
}

func TestDistinctValueAllKinds(t *testing.T) {
	for _, v := range []Value{S("a"), B(true), B(false), N(7)} {
		if distinctValue(v).Equal(v) {
			t.Errorf("distinctValue(%s) equals input", v)
		}
		if distinctValue(v).Kind() != v.Kind() {
			t.Errorf("distinctValue changed kind of %s", v)
		}
	}
}

func TestEncodeDatasetRejectsInvalid(t *testing.T) {
	bad := Fig1Dataset()
	bad.Objects[0].Tuples[0] = bad.Objects[0].Tuples[0][:1]
	if _, err := EncodeDataset(bad); err == nil {
		t.Error("invalid dataset encoded")
	}
}

func TestMarshalUnknownKindOp(t *testing.T) {
	if _, err := Kind(9).MarshalJSON(); err == nil {
		t.Error("unknown kind marshaled")
	}
	if _, err := Op(9).MarshalJSON(); err == nil {
		t.Error("unknown op marshaled")
	}
	if err := new(Kind).UnmarshalJSON([]byte(`123`)); err == nil {
		t.Error("numeric kind accepted")
	}
	if err := new(Op).UnmarshalJSON([]byte(`123`)); err == nil {
		t.Error("numeric op accepted")
	}
}

func TestSQLUnsupportedOpAndBoolValue(t *testing.T) {
	s := Schema{Object: "O", Tuple: "T", Attrs: []Attr{{Name: "a", Kind: Bool}}}
	ps := Propositions{Schema: s, Props: []Proposition{{Attr: "a", Op: Op(9)}}}
	q := query.MustParse(ps.Universe(), "∃x1")
	if _, err := SQL(q, ps); err == nil {
		t.Error("unsupported operator rendered")
	}
	// Bool constants render as TRUE/FALSE.
	ps2 := Propositions{Schema: s, Props: []Proposition{{Attr: "a", Op: Eq, Val: B(true)}}}
	sql, err := SQL(query.MustParse(ps2.Universe(), "∃x1"), ps2)
	if err != nil || !strings.Contains(sql, "t.a = TRUE") {
		t.Errorf("bool rendering: %v\n%s", err, sql)
	}
	ps3 := Propositions{Schema: s, Props: []Proposition{{Attr: "a", Op: Ne, Val: B(false)}}}
	sql, err = SQL(query.MustParse(ps3.Universe(), "∃x1"), ps3)
	if err != nil || !strings.Contains(sql, "t.a <> FALSE") {
		t.Errorf("bool rendering: %v\n%s", err, sql)
	}
}

func TestConcretizeUnknownAttribute(t *testing.T) {
	ps := Propositions{
		Schema: ChocolateSchema(),
		Props:  []Proposition{{Name: "ghost", Attr: "missing", Op: IsTrue}},
	}
	if _, err := ps.Concretize(boolean.FromVars(0)); err == nil {
		t.Error("unknown attribute concretized")
	}
}
