package nested

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

func TestSelectivityFig1(t *testing.T) {
	ps := ChocolatePropositions()
	d := Fig1Dataset()
	p := Selectivity(ps, d)
	if p.TotalObjects != 2 || p.TotalTuples != 6 {
		t.Fatalf("totals: %d objects, %d tuples", p.TotalObjects, p.TotalTuples)
	}
	u := ps.Universe()
	// Class 110 (dark, filled, not Madagascar) occurs three times:
	// Germany in box 1, Belgium in box 2... Germany (dark, filled) and
	// the dark filled Belgian.
	c110 := p.Count(u.MustParse("110"))
	if c110.Tuples != 2 || c110.Objects != 2 {
		t.Errorf("class 110: %+v", c110)
	}
	// 111 occurs once (the Madagascar chocolate).
	c111 := p.Count(u.MustParse("111"))
	if c111.Tuples != 1 || c111.Objects != 1 {
		t.Errorf("class 111: %+v", c111)
	}
	// Absent class.
	if got := p.Count(u.MustParse("001")); got.Tuples != 0 {
		t.Errorf("absent class counted: %+v", got)
	}
	// Histogram is sorted by frequency.
	for i := 1; i < len(p.Classes); i++ {
		if p.Classes[i-1].Tuples < p.Classes[i].Tuples {
			t.Fatal("histogram not sorted")
		}
	}
}

func TestProfileCoverage(t *testing.T) {
	ps := ChocolatePropositions()
	p := Selectivity(ps, Fig1Dataset())
	u := ps.Universe()
	if !p.Covers(boolean.MustParseSet(u, "{111, 110}")) {
		t.Error("present classes reported uncovered")
	}
	q := boolean.MustParseSet(u, "{111, 001}")
	if p.Covers(q) {
		t.Error("absent class reported covered")
	}
	missing := p.MissingClasses(q)
	if len(missing) != 1 || missing[0] != u.MustParse("001") {
		t.Errorf("missing = %v", missing)
	}
}

func TestEstimateSelectivity(t *testing.T) {
	ps := ChocolatePropositions()
	u := ps.Universe()
	rng := rand.New(rand.NewSource(7))
	d := RandomChocolates(rng, 200, 5)
	all := query.MustParse(u, "∃x1")
	sel, err := EstimateSelectivity(all, ps, d)
	if err != nil {
		t.Fatal(err)
	}
	if sel <= 0.5 || sel > 1 {
		t.Errorf("∃ dark selectivity = %.2f", sel)
	}
	strict := query.MustParse(u, "∀x1 ∃x2x3")
	strictSel, err := EstimateSelectivity(strict, ps, d)
	if err != nil {
		t.Fatal(err)
	}
	if strictSel >= sel {
		t.Errorf("stricter query selects more: %.2f >= %.2f", strictSel, sel)
	}
	empty := Dataset{Schema: ChocolateSchema()}
	if sel, err := EstimateSelectivity(all, ps, empty); err != nil || sel != 0 {
		t.Errorf("empty dataset selectivity = %v, %v", sel, err)
	}
	if _, err := EstimateSelectivity(query.Query{U: boolean.MustUniverse(7)}, ps, d); err == nil {
		t.Error("mismatched universe accepted")
	}
}

func TestBiasedChocolates(t *testing.T) {
	ps := ChocolatePropositions()
	u := ps.Universe()
	target := query.MustParse(u, "∀x1 ∃x2x3")
	rng := rand.New(rand.NewSource(27))
	d, err := BiasedChocolates(rng, ps, target, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	sel, err := EstimateSelectivity(target, ps, d)
	if err != nil {
		t.Fatal(err)
	}
	// A purely random store selects almost nothing; the biased store
	// must have a healthy share of both labels.
	if sel < 0.1 || sel > 0.9 {
		t.Errorf("biased selectivity = %.2f, want boundary-balanced", sel)
	}
	randomStore := RandomChocolates(rand.New(rand.NewSource(27)), 200, 4)
	randomSel, err := EstimateSelectivity(target, ps, randomStore)
	if err != nil {
		t.Fatal(err)
	}
	if sel <= randomSel {
		t.Errorf("bias ineffective: %.2f vs random %.2f", sel, randomSel)
	}
	// Universe mismatch rejected.
	if _, err := BiasedChocolates(rng, ps, query.Query{U: boolean.MustUniverse(5)}, 5, 3); err == nil {
		t.Error("mismatched universe accepted")
	}
}

func TestProposePropositions(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	d := RandomChocolates(rng, 80, 5)
	ps, err := ProposePropositions(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Props) == 0 {
		t.Fatal("no propositions proposed")
	}
	if got := ps.Interferences(); len(got) != 0 {
		t.Fatalf("proposals interfere: %v", got)
	}
	// One per varying attribute; the chocolate schema has 4 bools +
	// origin.
	if len(ps.Props) != 5 {
		t.Fatalf("proposed %d propositions: %v", len(ps.Props), ps.Props)
	}
	// Every proposal must actually vary across the data.
	for i := range ps.Props {
		seenTrue, seenFalse := false, false
		for _, o := range d.Objects {
			for _, tup := range o.Tuples {
				if ps.Props[i].Holds(ps.Schema, tup) {
					seenTrue = true
				} else {
					seenFalse = true
				}
			}
		}
		if !seenTrue || !seenFalse {
			t.Errorf("proposition %s is constant on the data", ps.Props[i])
		}
	}
	// A learning session over the proposed propositions works end to
	// end.
	u := ps.Universe()
	intended := query.MustParse(u, "∀x1 ∃x2")
	user := oracle.Func(func(s boolean.Set) bool {
		obj, err := ps.ConcretizeQuestion("q", s)
		if err != nil {
			t.Fatalf("concretize: %v", err)
		}
		return intended.Eval(ps.AbstractObject(obj))
	})
	learned, _ := learn.RolePreserving(u, user)
	if !learned.Equivalent(intended) {
		t.Fatalf("learned %s over proposed propositions", learned)
	}
}

func TestProposePropositionsSkipsConstants(t *testing.T) {
	s := Schema{Object: "O", Tuple: "T", Attrs: []Attr{
		{Name: "flag", Kind: Bool},
		{Name: "always", Kind: String},
		{Name: "price", Kind: Number},
	}}
	d := Dataset{Schema: s, Objects: []Object{
		{Name: "a", Tuples: []Tuple{
			{B(true), S("same"), N(1)},
			{B(false), S("same"), N(5)},
		}},
	}}
	ps, err := ProposePropositions(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Props) != 2 {
		t.Fatalf("proposed %v, want flag and price only", ps.Props)
	}
	for _, p := range ps.Props {
		if p.Attr == "always" {
			t.Error("constant attribute proposed")
		}
	}
	// The numeric proposal splits at the median.
	probe := Tuple{B(true), S("same"), N(3)}
	for _, p := range ps.Props {
		if p.Attr == "price" && !p.Holds(s, probe) {
			t.Errorf("price>1 should hold for 3: %s", p)
		}
	}
	// Cap respected.
	capped, err := ProposePropositions(d, 1)
	if err != nil || len(capped.Props) != 1 {
		t.Fatalf("cap ignored: %v %v", capped.Props, err)
	}
	// Invalid dataset rejected.
	bad := Dataset{Schema: s, Objects: []Object{{Name: "x", Tuples: []Tuple{{B(true)}}}}}
	if _, err := ProposePropositions(bad, 0); err == nil {
		t.Error("invalid dataset accepted")
	}
}
