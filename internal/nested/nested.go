// Package nested implements the data-domain substrate of the qhorn
// paper (§2, Fig. 1): nested relations with single-level nesting —
// objects that embed a set of flat tuples — together with the
// Boolean abstraction that turns data tuples into Boolean tuples over
// user-specified propositions, and the reverse synthesis that turns
// the learner's Boolean membership questions back into concrete data
// objects the user can look at.
//
// This is the DataPlay-style layer that the learning and verification
// algorithms of the paper sit on: the algorithms operate purely in the
// Boolean domain (internal/boolean, internal/query) and this package
// carries them to and from real data.
package nested

import (
	"fmt"
	"sort"
	"strings"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// Kind is the type of an attribute value.
type Kind int

// The supported attribute kinds.
const (
	String Kind = iota
	Bool
	Number
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case String:
		return "string"
	case Bool:
		return "bool"
	case Number:
		return "number"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is one attribute value of a tuple: a string, boolean or
// number. The zero value is the empty string.
type Value struct {
	kind Kind
	s    string
	b    bool
	f    float64
}

// S returns a string value.
func S(s string) Value { return Value{kind: String, s: s} }

// B returns a boolean value.
func B(b bool) Value { return Value{kind: Bool, b: b} }

// N returns a numeric value.
func N(f float64) Value { return Value{kind: Number, f: f} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// Bool returns the boolean payload (false for other kinds).
func (v Value) Bool() bool { return v.kind == Bool && v.b }

// Str returns the string payload ("" for other kinds).
func (v Value) Str() string {
	if v.kind == String {
		return v.s
	}
	return ""
}

// Num returns the numeric payload (0 for other kinds).
func (v Value) Num() float64 {
	if v.kind == Number {
		return v.f
	}
	return 0
}

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool { return v == o }

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case String:
		return v.s
	case Bool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return strings.TrimSuffix(strings.TrimSuffix(fmt.Sprintf("%.4f", v.f), "0000"), ".")
	}
}

// Attr declares one attribute of the embedded flat relation.
type Attr struct {
	Name string
	Kind Kind
}

// Schema describes a nested relation with single-level nesting
// (Definition 2.2): objects named Object embedding a set of flat
// tuples named Tuple over the attributes Attrs, e.g.
// Box(name, Chocolate(isDark, hasFilling, …)).
type Schema struct {
	Object string
	Tuple  string
	Attrs  []Attr
}

// AttrIndex returns the index of the named attribute, or -1.
func (s Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks the schema for duplicate or empty attribute names.
func (s Schema) Validate() error {
	seen := map[string]bool{}
	for _, a := range s.Attrs {
		if a.Name == "" {
			return fmt.Errorf("nested: empty attribute name in schema %s", s.Object)
		}
		if seen[a.Name] {
			return fmt.Errorf("nested: duplicate attribute %q in schema %s", a.Name, s.Object)
		}
		seen[a.Name] = true
	}
	return nil
}

// Tuple is one element of the embedded flat relation: values aligned
// with the schema's attributes.
type Tuple []Value

// Object is one element of the nested relation: a named set of
// embedded tuples (a box of chocolates).
type Object struct {
	Name   string
	Tuples []Tuple
}

// Dataset is an in-memory instance of a nested relation.
type Dataset struct {
	Schema  Schema
	Objects []Object
}

// Validate checks that every tuple matches the schema's arity and
// kinds.
func (d Dataset) Validate() error {
	if err := d.Schema.Validate(); err != nil {
		return err
	}
	for _, o := range d.Objects {
		for ti, t := range o.Tuples {
			if len(t) != len(d.Schema.Attrs) {
				return fmt.Errorf("nested: object %q tuple %d has %d values, schema has %d attributes",
					o.Name, ti, len(t), len(d.Schema.Attrs))
			}
			for i, v := range t {
				if v.Kind() != d.Schema.Attrs[i].Kind {
					return fmt.Errorf("nested: object %q tuple %d attribute %q: kind %s, schema wants %s",
						o.Name, ti, d.Schema.Attrs[i].Name, v.Kind(), d.Schema.Attrs[i].Kind)
				}
			}
		}
	}
	return nil
}

// Op is a comparison operator of a proposition.
type Op int

// The supported proposition operators.
const (
	Eq Op = iota
	Ne
	Lt
	Gt
	IsTrue
	IsFalse
)

// String returns the operator's symbol.
func (op Op) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "≠"
	case Lt:
		return "<"
	case Gt:
		return ">"
	case IsTrue:
		return "is true"
	case IsFalse:
		return "is false"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// Proposition is one simple Boolean predicate over a tuple of the
// embedded relation — the atoms users specify before learning starts
// (§2), e.g. p1: c.isDark or p3: c.origin = Madagascar.
type Proposition struct {
	// Name is a display label, e.g. "isDark".
	Name string
	// Attr is the attribute the proposition tests.
	Attr string
	// Op is the comparison.
	Op Op
	// Val is the right-hand side for Eq/Ne/Lt/Gt.
	Val Value
}

// String renders the proposition.
func (p Proposition) String() string {
	switch p.Op {
	case IsTrue:
		return p.Attr
	case IsFalse:
		return "¬" + p.Attr
	default:
		return fmt.Sprintf("%s %s %s", p.Attr, p.Op, p.Val)
	}
}

// Holds evaluates the proposition on a tuple under the schema. An
// unknown attribute evaluates to false.
func (p Proposition) Holds(s Schema, t Tuple) bool {
	i := s.AttrIndex(p.Attr)
	if i < 0 || i >= len(t) {
		return false
	}
	v := t[i]
	switch p.Op {
	case Eq:
		return v.Equal(p.Val)
	case Ne:
		return !v.Equal(p.Val)
	case Lt:
		return v.Kind() == Number && p.Val.Kind() == Number && v.Num() < p.Val.Num()
	case Gt:
		return v.Kind() == Number && p.Val.Kind() == Number && v.Num() > p.Val.Num()
	case IsTrue:
		return v.Bool()
	case IsFalse:
		return v.Kind() == Bool && !v.Bool()
	default:
		return false
	}
}

// Propositions is the ordered collection of propositions that defines
// the Boolean universe: proposition i is Boolean variable x_{i+1}.
type Propositions struct {
	Schema Schema
	Props  []Proposition
}

// Universe returns the Boolean universe of the propositions.
func (ps Propositions) Universe() boolean.Universe {
	return boolean.MustUniverse(len(ps.Props))
}

// Abstract maps a data tuple into the Boolean domain (Fig. 1): bit i
// is set iff proposition i holds on the tuple.
func (ps Propositions) Abstract(t Tuple) boolean.Tuple {
	var bt boolean.Tuple
	for i, p := range ps.Props {
		if p.Holds(ps.Schema, t) {
			bt = bt.With(i)
		}
	}
	return bt
}

// AbstractObject maps an object into a Boolean tuple-set, collapsing
// duplicate Boolean classes exactly as the paper's model does.
func (ps Propositions) AbstractObject(o Object) boolean.Set {
	tuples := make([]boolean.Tuple, 0, len(o.Tuples))
	for _, t := range o.Tuples {
		tuples = append(tuples, ps.Abstract(t))
	}
	return boolean.NewSet(tuples...)
}

// Interferences returns the pairs of propositions that provably
// interfere (§2): the true/false assignment of one constrains the
// other, violating the independence assumption of the Boolean
// abstraction. Detected cases: two Eq propositions on the same
// attribute with different values (pm → ¬pb), an Eq and an Ne on the
// same attribute with the same value (each the other's negation), and
// IsTrue/IsFalse on the same attribute.
func (ps Propositions) Interferences() [][2]int {
	var out [][2]int
	for i := 0; i < len(ps.Props); i++ {
		for j := i + 1; j < len(ps.Props); j++ {
			if ps.interfere(ps.Props[i], ps.Props[j]) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

func (ps Propositions) interfere(a, b Proposition) bool {
	if a.Attr != b.Attr {
		return false
	}
	switch {
	case a.Op == Eq && b.Op == Eq:
		return !a.Val.Equal(b.Val)
	case (a.Op == Eq && b.Op == Ne || a.Op == Ne && b.Op == Eq):
		return a.Val.Equal(b.Val)
	case a.Op == IsTrue && b.Op == IsFalse, a.Op == IsFalse && b.Op == IsTrue:
		return true
	case a.Op == Lt && b.Op == Gt:
		return a.Val.Kind() == Number && b.Val.Kind() == Number && a.Val.Num() <= b.Val.Num()
	default:
		return false
	}
}

// Concretize synthesizes a data tuple whose Boolean abstraction is
// exactly bt — the step that turns the learner's Boolean membership
// questions into objects the user can classify (§2.1.2). It returns
// an error when the assignment is unsatisfiable, which can only
// happen when propositions interfere.
func (ps Propositions) Concretize(bt boolean.Tuple) (Tuple, error) {
	t := make(Tuple, len(ps.Schema.Attrs))
	// Default values per kind.
	for i, a := range ps.Schema.Attrs {
		switch a.Kind {
		case String:
			t[i] = S("·")
		case Bool:
			t[i] = B(false)
		case Number:
			t[i] = N(0)
		}
	}
	// First pass: satisfy the true propositions.
	for i, p := range ps.Props {
		if !bt.Has(i) {
			continue
		}
		ai := ps.Schema.AttrIndex(p.Attr)
		if ai < 0 {
			return nil, fmt.Errorf("nested: proposition %s references unknown attribute %q", p, p.Attr)
		}
		switch p.Op {
		case Eq:
			t[ai] = p.Val
		case Ne:
			t[ai] = distinctValue(p.Val)
		case IsTrue:
			t[ai] = B(true)
		case IsFalse:
			t[ai] = B(false)
		case Lt:
			t[ai] = N(p.Val.Num() - 1)
		case Gt:
			t[ai] = N(p.Val.Num() + 1)
		}
	}
	// Repair pass: adjust attributes so false propositions are false,
	// without breaking true ones. Iterate to a fixpoint per attribute.
	for ai := range ps.Schema.Attrs {
		if v, ok := ps.solveAttr(ai, bt, t[ai]); ok {
			t[ai] = v
		} else {
			return nil, fmt.Errorf("nested: assignment %v unsatisfiable for attribute %q (interfering propositions)",
				bt.Vars(), ps.Schema.Attrs[ai].Name)
		}
	}
	// Final check.
	if got := ps.Abstract(t); got != bt {
		return nil, fmt.Errorf("nested: synthesized tuple abstracts to %v, want %v (interfering propositions)",
			got.Vars(), bt.Vars())
	}
	return t, nil
}

// solveAttr finds a value for attribute ai consistent with every
// proposition on that attribute under assignment bt, preferring the
// current candidate.
func (ps Propositions) solveAttr(ai int, bt boolean.Tuple, current Value) (Value, bool) {
	attr := ps.Schema.Attrs[ai]
	var related []int
	for pi, p := range ps.Props {
		if ps.Schema.AttrIndex(p.Attr) == ai {
			related = append(related, pi)
		}
	}
	// A full-width probe tuple so Holds indexes the right attribute;
	// only attribute ai matters to the related propositions.
	probe := make(Tuple, len(ps.Schema.Attrs))
	okFull := func(v Value) bool {
		probe[ai] = v
		for _, pi := range related {
			if ps.Props[pi].Holds(ps.Schema, probe) != bt.Has(pi) {
				return false
			}
		}
		return true
	}
	if okFull(current) {
		return current, true
	}
	// Candidate values: every proposition constant, plus perturbed
	// variants, plus kind defaults.
	var cands []Value
	for _, pi := range related {
		p := ps.Props[pi]
		cands = append(cands, p.Val, distinctValue(p.Val))
		if p.Val.Kind() == Number {
			cands = append(cands, N(p.Val.Num()-1), N(p.Val.Num()+1))
		}
	}
	switch attr.Kind {
	case Bool:
		cands = append(cands, B(true), B(false))
	case String:
		cands = append(cands, S("·"), S("··"))
	case Number:
		cands = append(cands, N(0), N(1e9), N(-1e9))
	}
	for _, v := range cands {
		if v.Kind() == attr.Kind && okFull(v) {
			return v, true
		}
	}
	return Value{}, false
}

// distinctValue returns a value of the same kind guaranteed different
// from v.
func distinctValue(v Value) Value {
	switch v.Kind() {
	case String:
		return S(v.Str() + "′")
	case Bool:
		return B(!v.Bool())
	default:
		return N(v.Num() + 1)
	}
}

// ConcretizeQuestion synthesizes a data object for a Boolean
// membership question, naming it name.
func (ps Propositions) ConcretizeQuestion(name string, q boolean.Set) (Object, error) {
	o := Object{Name: name}
	for _, bt := range q.Tuples() {
		t, err := ps.Concretize(bt)
		if err != nil {
			return Object{}, err
		}
		o.Tuples = append(o.Tuples, t)
	}
	return o, nil
}

// SelectFromDataset builds a data object for a Boolean question using
// real tuples from the dataset where available (§5: selecting
// instances from a rich database beats synthesizing hybrids), falling
// back to synthesis for Boolean classes the dataset lacks.
func (ps Propositions) SelectFromDataset(name string, q boolean.Set, d Dataset) (Object, error) {
	index := map[boolean.Tuple]Tuple{}
	for _, o := range d.Objects {
		for _, t := range o.Tuples {
			bt := ps.Abstract(t)
			if _, ok := index[bt]; !ok {
				index[bt] = t
			}
		}
	}
	o := Object{Name: name}
	for _, bt := range q.Tuples() {
		if t, ok := index[bt]; ok {
			o.Tuples = append(o.Tuples, t)
			continue
		}
		t, err := ps.Concretize(bt)
		if err != nil {
			return Object{}, err
		}
		o.Tuples = append(o.Tuples, t)
	}
	return o, nil
}

// Execute runs a qhorn query over the dataset and returns the objects
// classified as answers (Definition 2.4). The query's universe must
// match the proposition count.
func Execute(q query.Query, ps Propositions, d Dataset) ([]Object, error) {
	if q.N() != len(ps.Props) {
		return nil, fmt.Errorf("nested: query over %d variables, %d propositions", q.N(), len(ps.Props))
	}
	var out []Object
	for _, o := range d.Objects {
		if q.Eval(ps.AbstractObject(o)) {
			out = append(out, o)
		}
	}
	return out, nil
}

// FormatObject renders an object as an aligned text table for
// interactive sessions.
func FormatObject(s Schema, o Object) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %q (%d %s tuples)\n", s.Object, o.Name, len(o.Tuples), s.Tuple)
	widths := make([]int, len(s.Attrs))
	for i, a := range s.Attrs {
		widths[i] = len(a.Name)
	}
	rows := make([][]string, len(o.Tuples))
	for ti, t := range o.Tuples {
		rows[ti] = make([]string, len(t))
		for i, v := range t {
			rows[ti][i] = v.String()
			if len(rows[ti][i]) > widths[i] {
				widths[i] = len(rows[ti][i])
			}
		}
	}
	for i, a := range s.Attrs {
		fmt.Fprintf(&b, "  %-*s", widths[i]+2, a.Name)
	}
	b.WriteByte('\n')
	for _, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "  %-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortObjects orders objects by name, for deterministic output.
func SortObjects(objs []Object) {
	sort.Slice(objs, func(i, j int) bool { return objs[i].Name < objs[j].Name })
}
