package nested

import (
	"fmt"
	"sort"
)

// ProposePropositions derives a non-interfering proposition set from
// a dataset — the starting point of a DataPlay session when the user
// has data but has not written her propositions yet (§1: "users first
// specify the simple propositions"). For each attribute it proposes
// at most one predicate, so no two proposals interfere (§2's
// independence assumption holds by construction):
//
//   - Bool attributes: the attribute itself (IsTrue);
//   - String attributes: equality with the most frequent value;
//   - Number attributes: greater-than the median.
//
// Attributes that are constant across the dataset are skipped — a
// proposition that never varies cannot influence any query. maxProps
// caps the proposal count (≤ 64, the Boolean universe limit);
// attributes are kept in schema order.
func ProposePropositions(d Dataset, maxProps int) (Propositions, error) {
	if err := d.Validate(); err != nil {
		return Propositions{}, err
	}
	if maxProps <= 0 || maxProps > 64 {
		maxProps = 64
	}
	ps := Propositions{Schema: d.Schema}
	for ai, attr := range d.Schema.Attrs {
		if len(ps.Props) == maxProps {
			break
		}
		var values []Value
		for _, o := range d.Objects {
			for _, t := range o.Tuples {
				values = append(values, t[ai])
			}
		}
		if len(values) == 0 {
			continue
		}
		constant := true
		for _, v := range values[1:] {
			if !v.Equal(values[0]) {
				constant = false
				break
			}
		}
		if constant {
			continue
		}
		switch attr.Kind {
		case Bool:
			ps.Props = append(ps.Props, Proposition{
				Name: attr.Name, Attr: attr.Name, Op: IsTrue,
			})
		case String:
			top := mostFrequent(values)
			ps.Props = append(ps.Props, Proposition{
				Name: fmt.Sprintf("%s=%s", attr.Name, top.Str()),
				Attr: attr.Name, Op: Eq, Val: top,
			})
		case Number:
			med := median(values)
			ps.Props = append(ps.Props, Proposition{
				Name: fmt.Sprintf("%s>%s", attr.Name, med),
				Attr: attr.Name, Op: Gt, Val: med,
			})
		}
	}
	if inter := ps.Interferences(); len(inter) > 0 {
		// Unreachable by construction (one proposition per attribute),
		// but guard the invariant.
		return Propositions{}, fmt.Errorf("nested: proposed propositions interfere")
	}
	return ps, nil
}

// mostFrequent returns the most common value (ties break toward the
// lexicographically smaller string for determinism).
func mostFrequent(values []Value) Value {
	counts := map[string]int{}
	byKey := map[string]Value{}
	for _, v := range values {
		k := v.String()
		counts[k]++
		byKey[k] = v
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best := keys[0]
	for _, k := range keys[1:] {
		if counts[k] > counts[best] {
			best = k
		}
	}
	return byKey[best]
}

// median returns the middle numeric value (lower of the two middles
// for even counts).
func median(values []Value) Value {
	nums := make([]float64, 0, len(values))
	for _, v := range values {
		nums = append(nums, v.Num())
	}
	sort.Float64s(nums)
	return N(nums[(len(nums)-1)/2])
}
