package nested

import (
	"encoding/json"
	"fmt"
)

// JSON encodings let users bring their own nested datasets and
// proposition sets to the CLIs. Values are encoded as native JSON
// scalars (string, bool, number); kinds round-trip through the
// schema.

// MarshalJSON encodes the value as its natural JSON scalar.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case String:
		return json.Marshal(v.s)
	case Bool:
		return json.Marshal(v.b)
	default:
		return json.Marshal(v.f)
	}
}

// UnmarshalJSON decodes a JSON scalar into a value of the matching
// kind.
func (v *Value) UnmarshalJSON(data []byte) error {
	var raw interface{}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	switch x := raw.(type) {
	case string:
		*v = S(x)
	case bool:
		*v = B(x)
	case float64:
		*v = N(x)
	default:
		return fmt.Errorf("nested: value %s is not a string, bool or number", data)
	}
	return nil
}

// kindNames maps Kind to its JSON name.
var kindNames = map[Kind]string{String: "string", Bool: "bool", Number: "number"}

// MarshalJSON encodes the kind by name.
func (k Kind) MarshalJSON() ([]byte, error) {
	name, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("nested: unknown kind %d", int(k))
	}
	return json.Marshal(name)
}

// UnmarshalJSON decodes a kind name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for kind, n := range kindNames {
		if n == name {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("nested: unknown kind %q", name)
}

// opNames maps Op to its JSON name.
var opNames = map[Op]string{
	Eq: "eq", Ne: "ne", Lt: "lt", Gt: "gt", IsTrue: "isTrue", IsFalse: "isFalse",
}

// MarshalJSON encodes the operator by name.
func (op Op) MarshalJSON() ([]byte, error) {
	name, ok := opNames[op]
	if !ok {
		return nil, fmt.Errorf("nested: unknown operator %d", int(op))
	}
	return json.Marshal(name)
}

// UnmarshalJSON decodes an operator name.
func (op *Op) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for o, n := range opNames {
		if n == name {
			*op = o
			return nil
		}
	}
	return fmt.Errorf("nested: unknown operator %q", name)
}

// EncodeDataset renders the dataset as indented JSON.
func EncodeDataset(d Dataset) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(d, "", "  ")
}

// DecodeDataset parses and validates a JSON dataset.
func DecodeDataset(data []byte) (Dataset, error) {
	var d Dataset
	if err := json.Unmarshal(data, &d); err != nil {
		return Dataset{}, err
	}
	// JSON numbers arrive as Number values; coerce to the schema's
	// kinds where the encoding is ambiguous is not needed because
	// scalars carry their kind, but validate to catch mismatches.
	if err := d.Validate(); err != nil {
		return Dataset{}, err
	}
	return d, nil
}

// EncodePropositions renders a proposition set as indented JSON.
func EncodePropositions(ps Propositions) ([]byte, error) {
	return json.MarshalIndent(ps, "", "  ")
}

// DecodePropositions parses a JSON proposition set and checks every
// proposition references a schema attribute.
func DecodePropositions(data []byte) (Propositions, error) {
	var ps Propositions
	if err := json.Unmarshal(data, &ps); err != nil {
		return Propositions{}, err
	}
	if err := ps.Schema.Validate(); err != nil {
		return Propositions{}, err
	}
	for _, p := range ps.Props {
		if ps.Schema.AttrIndex(p.Attr) < 0 {
			return Propositions{}, fmt.Errorf("nested: proposition %s references unknown attribute %q", p, p.Attr)
		}
	}
	return ps, nil
}
