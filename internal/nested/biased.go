package nested

import (
	"fmt"
	"math/rand"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// BiasedChocolates generates a chocolate store concentrated near a
// target query's decision boundary: roughly half the boxes are built
// from the query's dominant distinguishing tuples (answers, §4.1)
// with a few mutations, the rest are random. Purely random stores
// rarely contain answers to selective quantified queries (the
// demo problem of the hundred boxes in §1); this generator gives
// examples and interactive sessions a store where both labels occur.
func BiasedChocolates(rng *rand.Rand, ps Propositions, target query.Query, numBoxes, maxPerBox int) (Dataset, error) {
	if target.N() != len(ps.Props) {
		return Dataset{}, fmt.Errorf("nested: query over %d variables, %d propositions", target.N(), len(ps.Props))
	}
	base := target.Normalize().DominantConjunctions()
	d := Dataset{Schema: ps.Schema}
	u := ps.Universe()
	for b := 0; b < numBoxes; b++ {
		o := Object{Name: fmt.Sprintf("box-%03d", b+1)}
		var classes []boolean.Tuple
		if b%2 == 0 && len(base) > 0 {
			// Start from a canonical answer and mutate a little.
			classes = append(classes, base...)
			for e := 0; e < 1+rng.Intn(2); e++ {
				switch rng.Intn(3) {
				case 0:
					if len(classes) > 1 {
						i := rng.Intn(len(classes))
						classes = append(classes[:i], classes[i+1:]...)
					}
				case 1:
					i := rng.Intn(len(classes))
					v := rng.Intn(u.N())
					classes[i] ^= boolean.Tuple(1) << uint(v)
				default:
					classes = append(classes, boolean.Tuple(rng.Int63())&u.All())
				}
			}
		} else {
			n := 1 + rng.Intn(maxPerBox)
			for i := 0; i < n; i++ {
				classes = append(classes, boolean.Tuple(rng.Int63())&u.All())
			}
		}
		for _, c := range classes {
			t, err := ps.Concretize(c)
			if err != nil {
				return Dataset{}, err
			}
			o.Tuples = append(o.Tuples, t)
		}
		if len(o.Tuples) == 0 {
			t, err := ps.Concretize(u.All())
			if err != nil {
				return Dataset{}, err
			}
			o.Tuples = append(o.Tuples, t)
		}
		d.Objects = append(d.Objects, o)
	}
	return d, nil
}
