package nested

import (
	"math/rand"
	"strings"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

func TestFig1Abstraction(t *testing.T) {
	// Figure 1: the two boxes map to the Boolean sets
	// S1 = {111, 100, 111} and S2 = {110, 010, 010} over
	// (isDark, hasFilling, origin=Madagascar).
	ps := ChocolatePropositions()
	d := Fig1Dataset()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	u := ps.Universe()
	s1 := ps.AbstractObject(d.Objects[0])
	// Fig 1 shows S1 = {111, 110, 100}: Madagascar dark+filled (111),
	// Belgium dark unfilled (100), Germany dark filled (110).
	want1 := boolean.MustParseSet(u, "{111, 100, 110}")
	if !s1.Equal(want1) {
		t.Errorf("S1 = %s, want %s", s1.Format(u), want1.Format(u))
	}
	s2 := ps.AbstractObject(d.Objects[1])
	// Europe's Finest: dark filled Belgium (110), milk filled ×2 (010).
	want2 := boolean.MustParseSet(u, "{110, 010}")
	if !s2.Equal(want2) {
		t.Errorf("S2 = %s, want %s", s2.Format(u), want2.Format(u))
	}
}

func TestExecuteIntroQuery(t *testing.T) {
	// Query (1): ∀ isDark ∧ ∃ (hasFilling ∧ fromMadagascar).
	ps := ChocolatePropositions()
	u := ps.Universe()
	q := query.MustParse(u, "∀x1 ∃x2x3")
	got, err := Execute(q, ps, Fig1Dataset())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "Global Ground" {
		t.Fatalf("Execute = %v", got)
	}
}

func TestConcretizeRoundTrip(t *testing.T) {
	ps := ChocolatePropositions()
	u := ps.Universe()
	for _, bt := range boolean.AllTuples(u) {
		tup, err := ps.Concretize(bt)
		if err != nil {
			t.Fatalf("Concretize(%s): %v", u.Format(bt), err)
		}
		if got := ps.Abstract(tup); got != bt {
			t.Errorf("round trip %s -> %s", u.Format(bt), u.Format(got))
		}
	}
}

func TestConcretizeQuestion(t *testing.T) {
	ps := ChocolatePropositions()
	u := ps.Universe()
	q := boolean.MustParseSet(u, "{111, 011}")
	obj, err := ps.ConcretizeQuestion("probe", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(obj.Tuples) != 2 {
		t.Fatalf("tuples = %d", len(obj.Tuples))
	}
	if !ps.AbstractObject(obj).Equal(q) {
		t.Errorf("object abstracts to %s", ps.AbstractObject(obj).Format(u))
	}
}

func TestConcretizeInterferenceFails(t *testing.T) {
	// Two equality propositions on the same attribute interfere: the
	// assignment "both true" is unsatisfiable (§2).
	ps := Propositions{
		Schema: ChocolateSchema(),
		Props: []Proposition{
			{Name: "fromMadagascar", Attr: "origin", Op: Eq, Val: S("Madagascar")},
			{Name: "fromBelgium", Attr: "origin", Op: Eq, Val: S("Belgium")},
		},
	}
	if ints := ps.Interferences(); len(ints) != 1 || ints[0] != [2]int{0, 1} {
		t.Fatalf("Interferences = %v", ints)
	}
	if _, err := ps.Concretize(boolean.FromVars(0, 1)); err == nil {
		t.Fatal("interfering assignment concretized")
	}
	// But each alone is fine.
	if _, err := ps.Concretize(boolean.FromVars(0)); err != nil {
		t.Fatal(err)
	}
}

func TestInterferenceKinds(t *testing.T) {
	s := Schema{Object: "O", Tuple: "T", Attrs: []Attr{
		{Name: "a", Kind: Bool}, {Name: "n", Kind: Number}, {Name: "s", Kind: String},
	}}
	tests := []struct {
		a, b Proposition
		want bool
	}{
		{Proposition{Attr: "a", Op: IsTrue}, Proposition{Attr: "a", Op: IsFalse}, true},
		{Proposition{Attr: "s", Op: Eq, Val: S("x")}, Proposition{Attr: "s", Op: Ne, Val: S("x")}, true},
		{Proposition{Attr: "s", Op: Eq, Val: S("x")}, Proposition{Attr: "s", Op: Ne, Val: S("y")}, false},
		{Proposition{Attr: "n", Op: Lt, Val: N(3)}, Proposition{Attr: "n", Op: Gt, Val: N(5)}, true},
		{Proposition{Attr: "n", Op: Lt, Val: N(5)}, Proposition{Attr: "n", Op: Gt, Val: N(3)}, false},
		{Proposition{Attr: "a", Op: IsTrue}, Proposition{Attr: "s", Op: Eq, Val: S("x")}, false},
	}
	for _, tc := range tests {
		ps := Propositions{Schema: s, Props: []Proposition{tc.a, tc.b}}
		got := len(ps.Interferences()) > 0
		if got != tc.want {
			t.Errorf("interfere(%s, %s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestConcretizeNumericProps(t *testing.T) {
	s := Schema{Object: "O", Tuple: "T", Attrs: []Attr{{Name: "price", Kind: Number}}}
	ps := Propositions{Schema: s, Props: []Proposition{
		{Name: "cheap", Attr: "price", Op: Lt, Val: N(10)},
		{Name: "luxury", Attr: "price", Op: Gt, Val: N(100)},
	}}
	u := ps.Universe()
	for _, bt := range []boolean.Tuple{0, boolean.FromVars(0), boolean.FromVars(1)} {
		tup, err := ps.Concretize(bt)
		if err != nil {
			t.Fatalf("Concretize(%s): %v", u.Format(bt), err)
		}
		if got := ps.Abstract(tup); got != bt {
			t.Errorf("round trip %s -> %s (price %s)", u.Format(bt), u.Format(got), tup[0])
		}
	}
	// cheap ∧ luxury is unsatisfiable.
	if _, err := ps.Concretize(boolean.FromVars(0, 1)); err == nil {
		t.Fatal("price < 10 ∧ price > 100 concretized")
	}
}

func TestSelectFromDatasetPrefersRealTuples(t *testing.T) {
	ps := ChocolatePropositions()
	u := ps.Universe()
	d := Fig1Dataset()
	// 111 exists in the dataset (the Madagascar chocolate): selection
	// must return it, with its real origin and nut content.
	obj, err := ps.SelectFromDataset("probe", boolean.MustParseSet(u, "{111}"), d)
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.Tuples[0][4].Str(); got != "Madagascar" {
		t.Errorf("selected tuple origin = %q, want real Madagascar tuple", got)
	}
	// 001 (not dark, no filling, from Madagascar) is absent: falls
	// back to synthesis.
	obj, err = ps.SelectFromDataset("probe2", boolean.MustParseSet(u, "{001}"), d)
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.Abstract(obj.Tuples[0]); got != boolean.FromVars(2) {
		t.Errorf("synthesized tuple abstracts to %v", got.Vars())
	}
}

// TestEndToEndLearningOverData: the full loop of the paper — a hidden
// query about chocolate boxes, an oracle that classifies synthesized
// boxes by evaluating the data tuples, and the qhorn-1 learner
// recovering the query.
func TestEndToEndLearningOverData(t *testing.T) {
	ps := ChocolatePropositions()
	u := ps.Universe()
	intended := query.MustParse(u, "∀x1 ∃x2x3")
	// The "user": classifies concrete data objects, not Boolean sets.
	user := oracle.Func(func(s boolean.Set) bool {
		obj, err := ps.ConcretizeQuestion("q", s)
		if err != nil {
			t.Fatalf("concretize: %v", err)
		}
		return intended.Eval(ps.AbstractObject(obj))
	})
	learned, _ := learn.Qhorn1(u, user)
	if !learned.Equivalent(intended) {
		t.Fatalf("learned %s, want %s", learned, intended)
	}
	// Execute the learned query over random data and cross-check
	// against the intended query.
	rng := rand.New(rand.NewSource(41))
	d := RandomChocolates(rng, 100, 6)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	gotObjs, err := Execute(learned, ps, d)
	if err != nil {
		t.Fatal(err)
	}
	wantObjs, err := Execute(intended, ps, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotObjs) != len(wantObjs) {
		t.Fatalf("learned query returns %d boxes, intended %d", len(gotObjs), len(wantObjs))
	}
	for i := range gotObjs {
		if gotObjs[i].Name != wantObjs[i].Name {
			t.Fatalf("result mismatch at %d: %s vs %s", i, gotObjs[i].Name, wantObjs[i].Name)
		}
	}
}

func TestFormatObject(t *testing.T) {
	d := Fig1Dataset()
	out := FormatObject(d.Schema, d.Objects[0])
	for _, want := range []string{"Global Ground", "isDark", "Madagascar", "Chocolate"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatObject missing %q:\n%s", want, out)
		}
	}
}

func TestDatasetValidate(t *testing.T) {
	d := Fig1Dataset()
	// Break arity.
	d.Objects[0].Tuples[0] = d.Objects[0].Tuples[0][:2]
	if err := d.Validate(); err == nil {
		t.Error("short tuple accepted")
	}
	d = Fig1Dataset()
	// Break kind.
	d.Objects[0].Tuples[0][0] = S("not-a-bool")
	if err := d.Validate(); err == nil {
		t.Error("wrong kind accepted")
	}
	bad := Schema{Object: "O", Tuple: "T", Attrs: []Attr{{Name: "a", Kind: Bool}, {Name: "a", Kind: Bool}}}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate attribute accepted")
	}
	empty := Schema{Object: "O", Tuple: "T", Attrs: []Attr{{Name: "", Kind: Bool}}}
	if err := empty.Validate(); err == nil {
		t.Error("empty attribute name accepted")
	}
}

func TestSortObjects(t *testing.T) {
	objs := []Object{{Name: "b"}, {Name: "a"}, {Name: "c"}}
	SortObjects(objs)
	if objs[0].Name != "a" || objs[2].Name != "c" {
		t.Errorf("SortObjects = %v", objs)
	}
}

func TestValueAccessors(t *testing.T) {
	if S("x").Str() != "x" || S("x").Kind() != String {
		t.Error("S broken")
	}
	if !B(true).Bool() || B(true).Kind() != Bool {
		t.Error("B broken")
	}
	if N(2.5).Num() != 2.5 || N(2.5).Kind() != Number {
		t.Error("N broken")
	}
	if B(true).Str() != "" || S("x").Num() != 0 || N(1).Bool() {
		t.Error("cross-kind accessors should zero")
	}
	if S("x").String() != "x" || B(false).String() != "false" || N(3).String() != "3" {
		t.Errorf("String renderings: %q %q %q", S("x"), B(false), N(3))
	}
}

func TestRandomChocolates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := RandomChocolates(rng, 50, 8)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Objects) != 50 {
		t.Fatalf("boxes = %d", len(d.Objects))
	}
	for _, o := range d.Objects {
		if len(o.Tuples) < 1 || len(o.Tuples) > 8 {
			t.Fatalf("box %s has %d chocolates", o.Name, len(o.Tuples))
		}
	}
}
