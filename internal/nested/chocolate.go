package nested

import (
	"fmt"
	"math/rand"
)

// ChocolateSchema is the nested relation of the paper's running
// example: Box(name, Chocolate(isDark, hasFilling, isSugarFree,
// hasNuts, origin)).
func ChocolateSchema() Schema {
	return Schema{
		Object: "Box",
		Tuple:  "Chocolate",
		Attrs: []Attr{
			{Name: "isDark", Kind: Bool},
			{Name: "hasFilling", Kind: Bool},
			{Name: "isSugarFree", Kind: Bool},
			{Name: "hasNuts", Kind: Bool},
			{Name: "origin", Kind: String},
		},
	}
}

// ChocolatePropositions returns the three propositions of Fig. 1:
// p1: isDark, p2: hasFilling, p3: origin = Madagascar.
func ChocolatePropositions() Propositions {
	return Propositions{
		Schema: ChocolateSchema(),
		Props: []Proposition{
			{Name: "isDark", Attr: "isDark", Op: IsTrue},
			{Name: "hasFilling", Attr: "hasFilling", Op: IsTrue},
			{Name: "fromMadagascar", Attr: "origin", Op: Eq, Val: S("Madagascar")},
		},
	}
}

// chocolate builds one tuple of the chocolate relation.
func chocolate(dark, filling, sugarFree, nuts bool, origin string) Tuple {
	return Tuple{B(dark), B(filling), B(sugarFree), B(nuts), S(origin)}
}

// Fig1Dataset returns the two boxes of Figure 1: "Global Ground" and
// "Europe's Finest".
func Fig1Dataset() Dataset {
	return Dataset{
		Schema: ChocolateSchema(),
		Objects: []Object{
			{
				Name: "Global Ground",
				Tuples: []Tuple{
					chocolate(true, true, true, false, "Madagascar"),
					chocolate(true, false, false, true, "Belgium"),
					chocolate(true, true, true, true, "Germany"),
				},
			},
			{
				Name: "Europe's Finest",
				Tuples: []Tuple{
					chocolate(true, true, false, false, "Belgium"),
					chocolate(false, true, false, true, "Belgium"),
					chocolate(false, true, true, true, "Sweden"),
				},
			},
		},
	}
}

// chocolateOrigins are the origins used by the random generator.
var chocolateOrigins = []string{
	"Madagascar", "Belgium", "Germany", "Sweden", "Ecuador", "Ghana",
	"Venezuela", "Peru",
}

// RandomChocolates generates a dataset of numBoxes boxes with up to
// maxPerBox chocolates each — the hundred boxes the pedantic
// logician brings out in the introduction. The generator is
// deterministic for a given rng.
func RandomChocolates(rng *rand.Rand, numBoxes, maxPerBox int) Dataset {
	d := Dataset{Schema: ChocolateSchema()}
	for b := 0; b < numBoxes; b++ {
		o := Object{Name: fmt.Sprintf("box-%03d", b+1)}
		n := 1 + rng.Intn(maxPerBox)
		for i := 0; i < n; i++ {
			o.Tuples = append(o.Tuples, chocolate(
				rng.Intn(2) == 0,
				rng.Intn(2) == 0,
				rng.Intn(2) == 0,
				rng.Intn(2) == 0,
				chocolateOrigins[rng.Intn(len(chocolateOrigins))],
			))
		}
		d.Objects = append(d.Objects, o)
	}
	return d
}
