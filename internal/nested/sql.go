package nested

import (
	"fmt"
	"strings"

	"qhorn/internal/query"
)

// SQL renders a qhorn query as an executable SQL SELECT over a
// conventional two-table encoding of the nested relation: a parent
// table (one row per object) and a child table (one row per embedded
// tuple) joined by parent id. This is the "precise quantified query"
// the paper's users could not write by hand (§1): each universal Horn
// expression becomes a NOT EXISTS for its violation plus an EXISTS
// for its guarantee clause; each existential expression becomes an
// EXISTS.
//
// Table and column names derive from the schema: for the chocolate
// schema the parent table is box(id, name) and the child table is
// chocolate(box_id, isDark, ...).
func SQL(q query.Query, ps Propositions) (string, error) {
	if q.N() != len(ps.Props) {
		return "", fmt.Errorf("nested: query over %d variables, %d propositions", q.N(), len(ps.Props))
	}
	parent := strings.ToLower(ps.Schema.Object)
	child := strings.ToLower(ps.Schema.Tuple)
	fk := parent + "_id"

	cond := func(i int, negate bool) (string, error) {
		c, err := propSQL(ps.Props[i])
		if err != nil {
			return "", err
		}
		if negate {
			return "NOT (" + c + ")", nil
		}
		return c, nil
	}
	exists := func(conds []string) string {
		where := strings.Join(append([]string{fmt.Sprintf("t.%s = o.id", fk)}, conds...), " AND ")
		return fmt.Sprintf("EXISTS (SELECT 1 FROM %s t WHERE %s)", child, where)
	}

	var clauses []string
	for _, e := range q.Exprs {
		switch {
		case e.Quant == query.Forall:
			// No tuple satisfies the body while falsifying the head…
			var conds []string
			for _, v := range e.Body.Vars() {
				c, err := cond(v, false)
				if err != nil {
					return "", err
				}
				conds = append(conds, c)
			}
			hc, err := cond(e.Head, true)
			if err != nil {
				return "", err
			}
			clauses = append(clauses, "NOT "+exists(append(conds, hc)))
			// …and the guarantee clause: some tuple satisfies both.
			gc, err := cond(e.Head, false)
			if err != nil {
				return "", err
			}
			clauses = append(clauses, exists(append(conds[:len(conds):len(conds)], gc)))
		default:
			var conds []string
			for _, v := range e.Vars().Vars() {
				c, err := cond(v, false)
				if err != nil {
					return "", err
				}
				conds = append(conds, c)
			}
			clauses = append(clauses, exists(conds))
		}
	}
	where := "TRUE"
	if len(clauses) > 0 {
		where = strings.Join(clauses, "\n  AND ")
	}
	return fmt.Sprintf("SELECT o.id, o.name\nFROM %s o\nWHERE %s;", parent, where), nil
}

// propSQL renders one proposition as a SQL condition over the child
// alias t.
func propSQL(p Proposition) (string, error) {
	col := "t." + p.Attr
	switch p.Op {
	case IsTrue:
		return col, nil
	case IsFalse:
		return "NOT " + col, nil
	case Eq:
		return col + " = " + sqlValue(p.Val), nil
	case Ne:
		return col + " <> " + sqlValue(p.Val), nil
	case Lt:
		return col + " < " + sqlValue(p.Val), nil
	case Gt:
		return col + " > " + sqlValue(p.Val), nil
	default:
		return "", fmt.Errorf("nested: proposition %s has no SQL rendering", p)
	}
}

func sqlValue(v Value) string {
	switch v.Kind() {
	case String:
		return "'" + strings.ReplaceAll(v.Str(), "'", "''") + "'"
	case Bool:
		if v.Bool() {
			return "TRUE"
		}
		return "FALSE"
	default:
		return v.String()
	}
}
