package nested

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// Index precomputes the Boolean abstraction of every object of a
// dataset, so that executing queries and answering membership
// questions with real tuples become pure Boolean-domain operations:
// proposition evaluation happens once per tuple at build time instead
// of once per query. Interactive sessions execute many candidate
// queries over the same store — the learner's intermediate
// hypotheses, the verifier's probes, the final query — which is
// exactly the access pattern the index serves.
type Index struct {
	ps        Propositions
	dataset   Dataset
	abstracts []boolean.Set
	// byClass maps each Boolean class to one concrete representative
	// tuple, for real-instance question synthesis (§5).
	byClass map[boolean.Tuple]Tuple
}

// NewIndex abstracts every tuple of the dataset once. It validates
// the dataset first.
func NewIndex(ps Propositions, d Dataset) (*Index, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		ps:        ps,
		dataset:   d,
		abstracts: make([]boolean.Set, len(d.Objects)),
		byClass:   map[boolean.Tuple]Tuple{},
	}
	for i, o := range d.Objects {
		tuples := make([]boolean.Tuple, 0, len(o.Tuples))
		for _, t := range o.Tuples {
			bt := ps.Abstract(t)
			tuples = append(tuples, bt)
			if _, ok := ix.byClass[bt]; !ok {
				ix.byClass[bt] = t
			}
		}
		ix.abstracts[i] = boolean.NewSet(tuples...)
	}
	return ix, nil
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return len(ix.dataset.Objects) }

// Execute returns the objects classified as answers, evaluating the
// query over the precomputed abstractions only.
func (ix *Index) Execute(q query.Query) ([]Object, error) {
	if q.N() != len(ix.ps.Props) {
		return nil, fmt.Errorf("nested: query over %d variables, index has %d propositions", q.N(), len(ix.ps.Props))
	}
	var out []Object
	for i, s := range ix.abstracts {
		if q.Eval(s) {
			out = append(out, ix.dataset.Objects[i])
		}
	}
	return out, nil
}

// Count returns how many indexed objects the query selects, without
// materializing them.
func (ix *Index) Count(q query.Query) (int, error) {
	if q.N() != len(ix.ps.Props) {
		return 0, fmt.Errorf("nested: query over %d variables, index has %d propositions", q.N(), len(ix.ps.Props))
	}
	n := 0
	for _, s := range ix.abstracts {
		if q.Eval(s) {
			n++
		}
	}
	return n, nil
}

// Select builds a data object for a Boolean membership question using
// the indexed representative of each class where available, falling
// back to synthesis — SelectFromDataset without the per-question
// dataset scan.
func (ix *Index) Select(name string, q boolean.Set) (Object, error) {
	o := Object{Name: name}
	for _, bt := range q.Tuples() {
		if t, ok := ix.byClass[bt]; ok {
			o.Tuples = append(o.Tuples, t)
			continue
		}
		t, err := ix.ps.Concretize(bt)
		if err != nil {
			return Object{}, err
		}
		o.Tuples = append(o.Tuples, t)
	}
	return o, nil
}

// HasClass reports whether the Boolean class occurs in the indexed
// data.
func (ix *Index) HasClass(class boolean.Tuple) bool {
	_, ok := ix.byClass[class]
	return ok
}
