package nested

import (
	"sort"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// ClassCount reports how often one Boolean class (a distinct
// true/false combination of the propositions) occurs in a dataset.
type ClassCount struct {
	// Class is the Boolean tuple of the class.
	Class boolean.Tuple
	// Tuples is the number of embedded tuples in the class.
	Tuples int
	// Objects is the number of objects containing at least one tuple
	// of the class.
	Objects int
}

// Profile is the Boolean-class histogram of a dataset under a
// proposition set. It drives the §5 strategy of answering membership
// questions with real instances: a question is fully coverable only
// if every Boolean class it mentions occurs in the data.
type Profile struct {
	// Classes holds the non-empty classes, most frequent first.
	Classes []ClassCount
	// TotalTuples and TotalObjects size the dataset.
	TotalTuples  int
	TotalObjects int

	index map[boolean.Tuple]ClassCount
}

// Selectivity profiles the dataset: one histogram bucket per Boolean
// class that occurs.
func Selectivity(ps Propositions, d Dataset) Profile {
	perClassTuples := map[boolean.Tuple]int{}
	perClassObjects := map[boolean.Tuple]int{}
	p := Profile{index: map[boolean.Tuple]ClassCount{}}
	for _, o := range d.Objects {
		p.TotalObjects++
		seen := map[boolean.Tuple]bool{}
		for _, t := range o.Tuples {
			p.TotalTuples++
			bt := ps.Abstract(t)
			perClassTuples[bt]++
			if !seen[bt] {
				seen[bt] = true
				perClassObjects[bt]++
			}
		}
	}
	for class, n := range perClassTuples {
		cc := ClassCount{Class: class, Tuples: n, Objects: perClassObjects[class]}
		p.Classes = append(p.Classes, cc)
		p.index[class] = cc
	}
	sort.Slice(p.Classes, func(i, j int) bool {
		if p.Classes[i].Tuples != p.Classes[j].Tuples {
			return p.Classes[i].Tuples > p.Classes[j].Tuples
		}
		return p.Classes[i].Class < p.Classes[j].Class
	})
	return p
}

// Count returns the histogram bucket for a class (zero if absent).
func (p Profile) Count(class boolean.Tuple) ClassCount {
	return p.index[class]
}

// Covers reports whether every tuple of the Boolean question occurs
// as a real class in the profiled data, i.e. whether
// SelectFromDataset can answer it without synthesizing hybrids.
func (p Profile) Covers(q boolean.Set) bool {
	for _, t := range q.Tuples() {
		if p.index[t].Tuples == 0 {
			return false
		}
	}
	return true
}

// MissingClasses returns the Boolean classes of the question absent
// from the data — the tuples SelectFromDataset would synthesize.
func (p Profile) MissingClasses(q boolean.Set) []boolean.Tuple {
	var out []boolean.Tuple
	for _, t := range q.Tuples() {
		if p.index[t].Tuples == 0 {
			out = append(out, t)
		}
	}
	return out
}

// EstimateSelectivity returns the fraction of profiled objects a
// query would select, by re-evaluating it over the dataset.
func EstimateSelectivity(q query.Query, ps Propositions, d Dataset) (float64, error) {
	matches, err := Execute(q, ps, d)
	if err != nil {
		return 0, err
	}
	if len(d.Objects) == 0 {
		return 0, nil
	}
	return float64(len(matches)) / float64(len(d.Objects)), nil
}
