package nested

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

func TestIndexExecuteMatchesDirect(t *testing.T) {
	ps := ChocolatePropositions()
	u := ps.Universe()
	rng := rand.New(rand.NewSource(17))
	d := RandomChocolates(rng, 150, 5)
	ix, err := NewIndex(ps, d)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 150 {
		t.Fatalf("Len = %d", ix.Len())
	}
	queries := []string{"∀x1 ∃x2x3", "∃x1", "∀x3 → x1 ∃x2", "∃x1x2x3"}
	for _, s := range queries {
		q := query.MustParse(u, s)
		direct, err := Execute(q, ps, d)
		if err != nil {
			t.Fatal(err)
		}
		indexed, err := ix.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(direct) != len(indexed) {
			t.Fatalf("query %s: direct %d, indexed %d", s, len(direct), len(indexed))
		}
		for i := range direct {
			if direct[i].Name != indexed[i].Name {
				t.Fatalf("query %s: order mismatch at %d", s, i)
			}
		}
		n, err := ix.Count(q)
		if err != nil || n != len(direct) {
			t.Fatalf("Count = %d, %v", n, err)
		}
	}
}

func TestIndexSelect(t *testing.T) {
	ps := ChocolatePropositions()
	u := ps.Universe()
	ix, err := NewIndex(ps, Fig1Dataset())
	if err != nil {
		t.Fatal(err)
	}
	// 111 is in the data: real Madagascar tuple.
	obj, err := ix.Select("probe", boolean.MustParseSet(u, "{111}"))
	if err != nil {
		t.Fatal(err)
	}
	if obj.Tuples[0][4].Str() != "Madagascar" {
		t.Errorf("selected origin = %q", obj.Tuples[0][4].Str())
	}
	if !ix.HasClass(u.MustParse("111")) || ix.HasClass(u.MustParse("001")) {
		t.Error("HasClass wrong")
	}
	// 001 absent: synthesized, abstraction still exact.
	obj, err = ix.Select("probe2", boolean.MustParseSet(u, "{001}"))
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.Abstract(obj.Tuples[0]); got != u.MustParse("001") {
		t.Errorf("synthesized class = %s", u.Format(got))
	}
}

func TestIndexErrors(t *testing.T) {
	ps := ChocolatePropositions()
	bad := Fig1Dataset()
	bad.Objects[0].Tuples[0] = bad.Objects[0].Tuples[0][:2]
	if _, err := NewIndex(ps, bad); err == nil {
		t.Error("invalid dataset indexed")
	}
	ix, err := NewIndex(ps, Fig1Dataset())
	if err != nil {
		t.Fatal(err)
	}
	wrong := query.Query{U: boolean.MustUniverse(5)}
	if _, err := ix.Execute(wrong); err == nil {
		t.Error("mismatched universe executed")
	}
	if _, err := ix.Count(wrong); err == nil {
		t.Error("mismatched universe counted")
	}
}

// TestIndexBackedLearningSession: an entire learning session where
// every question is served from the index with real tuples where
// possible.
func TestIndexBackedLearningSession(t *testing.T) {
	ps := ChocolatePropositions()
	u := ps.Universe()
	rng := rand.New(rand.NewSource(18))
	ix, err := NewIndex(ps, RandomChocolates(rng, 300, 6))
	if err != nil {
		t.Fatal(err)
	}
	intended := query.MustParse(u, "∀x1 ∃x2x3")
	user := oracle.Func(func(s boolean.Set) bool {
		obj, err := ix.Select("q", s)
		if err != nil {
			t.Fatalf("select: %v", err)
		}
		return intended.Eval(ps.AbstractObject(obj))
	})
	learned, _ := learn.Qhorn1(u, user)
	if !learned.Equivalent(intended) {
		t.Fatalf("learned %s", learned)
	}
	got, err := ix.Count(learned)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.Count(intended)
	if err != nil || got != want {
		t.Fatalf("counts differ: %d vs %d (%v)", got, want, err)
	}
}
