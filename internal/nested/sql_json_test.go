package nested

import (
	"strings"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

func TestSQLIntroQuery(t *testing.T) {
	ps := ChocolatePropositions()
	u := ps.Universe()
	q := query.MustParse(u, "∀x1 ∃x2x3")
	sql, err := SQL(q, ps)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"SELECT o.id, o.name",
		"FROM box o",
		"NOT EXISTS (SELECT 1 FROM chocolate t WHERE t.box_id = o.id AND NOT (t.isDark))",
		"EXISTS (SELECT 1 FROM chocolate t WHERE t.box_id = o.id AND t.isDark)",
		"t.hasFilling AND t.origin = 'Madagascar'",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestSQLHornExpression(t *testing.T) {
	ps := ChocolatePropositions()
	u := ps.Universe()
	q := query.MustParse(u, "∀x2 → x1")
	sql, err := SQL(q, ps)
	if err != nil {
		t.Fatal(err)
	}
	// Violation clause: body true, head false.
	if !strings.Contains(sql, "t.hasFilling AND NOT (t.isDark)") {
		t.Errorf("violation clause missing:\n%s", sql)
	}
	// Guarantee clause: body and head true.
	if !strings.Contains(sql, "t.hasFilling AND t.isDark") {
		t.Errorf("guarantee clause missing:\n%s", sql)
	}
}

func TestSQLOperatorsAndEscaping(t *testing.T) {
	s := Schema{Object: "Order", Tuple: "Item", Attrs: []Attr{
		{Name: "price", Kind: Number},
		{Name: "label", Kind: String},
		{Name: "fragile", Kind: Bool},
	}}
	ps := Propositions{Schema: s, Props: []Proposition{
		{Name: "cheap", Attr: "price", Op: Lt, Val: N(10)},
		{Name: "notOddLabel", Attr: "label", Op: Ne, Val: S("it's odd")},
		{Name: "sturdy", Attr: "fragile", Op: IsFalse},
	}}
	q := query.MustParse(ps.Universe(), "∃x1x2x3")
	sql, err := SQL(q, ps)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"t.price < 10",
		"t.label <> 'it''s odd'",
		"NOT t.fragile",
		"FROM order o",
		"t.order_id = o.id",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestSQLEmptyQuery(t *testing.T) {
	ps := ChocolatePropositions()
	sql, err := SQL(query.Query{U: ps.Universe()}, ps)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "WHERE TRUE") {
		t.Errorf("empty query SQL:\n%s", sql)
	}
}

func TestSQLArityMismatch(t *testing.T) {
	ps := ChocolatePropositions()
	bad := query.Query{U: boolean.MustUniverse(5)}
	if _, err := SQL(bad, ps); err == nil {
		t.Fatal("mismatched universe accepted")
	}
}

func TestDatasetJSONRoundTrip(t *testing.T) {
	d := Fig1Dataset()
	data, err := EncodeDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Objects) != len(d.Objects) {
		t.Fatalf("objects = %d", len(back.Objects))
	}
	ps := ChocolatePropositions()
	for i := range d.Objects {
		if !ps.AbstractObject(back.Objects[i]).Equal(ps.AbstractObject(d.Objects[i])) {
			t.Fatalf("object %d changed through JSON", i)
		}
	}
}

func TestPropositionsJSONRoundTrip(t *testing.T) {
	ps := ChocolatePropositions()
	data, err := EncodePropositions(ps)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePropositions(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Props) != len(ps.Props) {
		t.Fatalf("props = %d", len(back.Props))
	}
	for i := range ps.Props {
		if back.Props[i] != ps.Props[i] {
			t.Fatalf("prop %d: %+v vs %+v", i, back.Props[i], ps.Props[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeDataset([]byte(`{`)); err == nil {
		t.Error("malformed dataset JSON accepted")
	}
	// Kind mismatch: origin declared bool but value is a string.
	badData := `{"Schema":{"Object":"B","Tuple":"C","Attrs":[{"Name":"a","Kind":"bool"}]},
	  "Objects":[{"Name":"x","Tuples":[["oops"]]}]}`
	if _, err := DecodeDataset([]byte(badData)); err == nil {
		t.Error("kind-mismatched dataset accepted")
	}
	if _, err := DecodePropositions([]byte(`{`)); err == nil {
		t.Error("malformed propositions JSON accepted")
	}
	badProp := `{"Schema":{"Object":"B","Tuple":"C","Attrs":[{"Name":"a","Kind":"bool"}]},
	  "Props":[{"Name":"p","Attr":"missing","Op":"isTrue"}]}`
	if _, err := DecodePropositions([]byte(badProp)); err == nil {
		t.Error("unknown-attribute proposition accepted")
	}
	var k Kind
	if err := k.UnmarshalJSON([]byte(`"nope"`)); err == nil {
		t.Error("unknown kind accepted")
	}
	var op Op
	if err := op.UnmarshalJSON([]byte(`"nope"`)); err == nil {
		t.Error("unknown op accepted")
	}
	var v Value
	if err := v.UnmarshalJSON([]byte(`[1,2]`)); err == nil {
		t.Error("array value accepted")
	}
}

func TestValueJSONScalars(t *testing.T) {
	for _, v := range []Value{S("x"), B(true), N(2.5)} {
		data, err := v.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back Value
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatal(err)
		}
		if !back.Equal(v) {
			t.Errorf("round trip %s -> %s", v, back)
		}
	}
}
