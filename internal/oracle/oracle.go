// Package oracle implements the membership-question oracles of the
// qhorn learning model (§2.1.2). A membership question is an object —
// a set of Boolean tuples — that the user classifies as an answer or
// a non-answer to her intended query.
//
// The package provides the user simulations every experiment needs:
// an oracle backed by a hidden target query, instrumentation wrappers
// that count questions and tuples (the complexity measures of every
// theorem in the paper), a transcript recorder, a response-flipping
// noisy oracle (§5, "Noisy Users"), an interactive oracle that asks a
// human over an io.Reader/Writer pair, and the adversarial oracles
// that realize the paper's lower-bound constructions (Theorem 2.1,
// Lemma 3.4, Theorem 3.6).
package oracle

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/query"
)

// Oracle answers membership questions: Ask reports whether the object
// s is an answer (true) or a non-answer (false) to the user's
// intended query.
type Oracle interface {
	Ask(s boolean.Set) bool
}

// Func adapts a function to the Oracle interface.
type Func func(boolean.Set) bool

// Ask implements Oracle.
func (f Func) Ask(s boolean.Set) bool { return f(s) }

// Target returns an oracle that answers according to the given target
// query — the simulated user of every learning experiment. The
// substitution is exact: the paper's question counts are worst-case
// over users consistent with some query in the class.
func Target(q query.Query) Oracle {
	return Func(q.Eval)
}

// Counter wraps an oracle and records the complexity measures the
// paper reports: the number of questions asked, the total and maximum
// number of tuples per question. It is safe for concurrent use —
// concurrent experiment sweeps may share one Counter — but the public
// fields must only be read once the learners using it have returned
// (or through Snapshot, which locks). The zero value is not usable;
// wrap with Count or CountInto.
type Counter struct {
	mu        sync.Mutex
	inner     Oracle
	reg       *obs.Registry
	Questions int
	Tuples    int
	MaxTuples int
}

// Count wraps inner with a fresh Counter.
func Count(inner Oracle) *Counter { return &Counter{inner: inner} }

// CountInto wraps inner with a Counter that doubles as a thin adapter
// over the metrics registry: every question also updates
// qhorn_questions_total, qhorn_tuples_total, the tuples-per-question
// histogram and the oracle answer-latency histogram. A nil registry
// degrades to Count.
func CountInto(inner Oracle, reg *obs.Registry) *Counter {
	return &Counter{inner: inner, reg: reg}
}

// Ask implements Oracle, forwarding to the wrapped oracle.
func (c *Counter) Ask(s boolean.Set) bool {
	size := s.Size()
	c.mu.Lock()
	c.Questions++
	c.Tuples += size
	if size > c.MaxTuples {
		c.MaxTuples = size
	}
	reg := c.reg
	c.mu.Unlock()
	if reg == nil {
		return c.inner.Ask(s)
	}
	reg.Counter(obs.MetricQuestions).Inc()
	reg.Counter(obs.MetricTuples).Add(int64(size))
	reg.Histogram(obs.MetricTuplesPerQuestion, obs.TuplesPerQuestionBuckets).Observe(float64(size))
	start := time.Now()
	a := c.inner.Ask(s)
	reg.Histogram(obs.MetricOracleSeconds, obs.LatencyBuckets).Observe(time.Since(start).Seconds())
	return a
}

// Snapshot returns a consistent view of the counters, safe to call
// while learners are still asking.
func (c *Counter) Snapshot() (questions, tuples, maxTuples int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Questions, c.Tuples, c.MaxTuples
}

// Reset clears the counters.
func (c *Counter) Reset() {
	c.mu.Lock()
	c.Questions, c.Tuples, c.MaxTuples = 0, 0, 0
	c.mu.Unlock()
}

// Entry is one recorded membership question and its response.
type Entry struct {
	Question boolean.Set
	Answer   bool
}

// Transcript wraps an oracle and records every question and response,
// in order. A transcript is the interaction history that §5 proposes
// showing users so they can revise mistaken responses. It is safe for
// concurrent use; read Entries only after the learners using it have
// returned, or through Len/Copy which lock.
type Transcript struct {
	mu      sync.Mutex
	inner   Oracle
	Entries []Entry
}

// Record wraps inner with a fresh Transcript.
func Record(inner Oracle) *Transcript { return &Transcript{inner: inner} }

// Ask implements Oracle.
func (t *Transcript) Ask(s boolean.Set) bool {
	a := t.inner.Ask(s)
	t.mu.Lock()
	t.Entries = append(t.Entries, Entry{Question: s, Answer: a})
	t.mu.Unlock()
	return a
}

// Len reports the number of recorded entries, safe to call while
// learners are still asking.
func (t *Transcript) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.Entries)
}

// Copy returns a snapshot of the recorded entries.
func (t *Transcript) Copy() []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Entry{}, t.Entries...)
}

// Noisy wraps an oracle and flips each response independently with
// probability p, simulating the noisy users discussed in §5. The rng
// must not be nil.
func Noisy(inner Oracle, p float64, rng *rand.Rand) Oracle {
	return Func(func(s boolean.Set) bool {
		a := inner.Ask(s)
		if rng.Float64() < p {
			return !a
		}
		return a
	})
}

// Budget wraps an oracle with a hard cap on the number of questions —
// the interactive patience of a real user. Exceeding the budget
// panics with ErrBudget via BudgetExceeded, which callers recover as
// a signal; tests use it to enforce the paper's question bounds
// mechanically.
type Budget struct {
	inner Oracle
	Limit int
	Used  int
}

// ErrBudget is the panic value raised when a Budget is exhausted.
type ErrBudget struct {
	Limit int
}

// Error implements error.
func (e ErrBudget) Error() string {
	return fmt.Sprintf("oracle: question budget of %d exhausted", e.Limit)
}

// WithBudget wraps inner with a question cap.
func WithBudget(inner Oracle, limit int) *Budget {
	return &Budget{inner: inner, Limit: limit}
}

// Ask implements Oracle; it panics with ErrBudget when the cap is
// exceeded.
func (b *Budget) Ask(s boolean.Set) bool {
	if b.Used >= b.Limit {
		panic(ErrBudget{Limit: b.Limit})
	}
	b.Used++
	return b.inner.Ask(s)
}

// Remaining returns the questions left in the budget.
func (b *Budget) Remaining() int { return b.Limit - b.Used }

// Memo wraps an oracle and caches responses by canonical question
// key, so repeated questions are answered without consulting the
// inner oracle. Wrap the Counter inside Memo to count only distinct
// questions, or outside to count all.
func Memo(inner Oracle) Oracle {
	cache := map[string]bool{}
	return Func(func(s boolean.Set) bool {
		k := s.Key()
		if a, ok := cache[k]; ok {
			return a
		}
		a := inner.Ask(s)
		cache[k] = a
		return a
	})
}

// Interactive returns an oracle that renders each membership question
// to w in the paper's tuple notation and reads y/n responses from r.
// Malformed input is re-prompted; EOF defaults to non-answer.
func Interactive(u boolean.Universe, r io.Reader, w io.Writer) Oracle {
	br := bufio.NewReader(r)
	return Func(func(s boolean.Set) bool {
		for {
			fmt.Fprintf(w, "Is this object an answer to your query? %s [y/n] ", s.Format(u))
			line, err := br.ReadString('\n')
			line = strings.ToLower(strings.TrimSpace(line))
			switch line {
			case "y", "yes", "answer", "a":
				return true
			case "n", "no", "non-answer", "non":
				return false
			}
			if err != nil {
				fmt.Fprintln(w, "\n(end of input: recording non-answer)")
				return false
			}
			fmt.Fprintln(w, "Please answer y or n.")
		}
	})
}
