// Package oracle implements the membership-question oracles of the
// qhorn learning model (§2.1.2). A membership question is an object —
// a set of Boolean tuples — that the user classifies as an answer or
// a non-answer to her intended query.
//
// The package provides the user simulations every experiment needs:
// an oracle backed by a hidden target query, instrumentation wrappers
// that count questions and tuples (the complexity measures of every
// theorem in the paper), a transcript recorder, a response-flipping
// noisy oracle (§5, "Noisy Users"), an interactive oracle that asks a
// human over an io.Reader/Writer pair, and the adversarial oracles
// that realize the paper's lower-bound constructions (Theorem 2.1,
// Lemma 3.4, Theorem 3.6).
package oracle

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/query"
)

// Oracle answers membership questions: Ask reports whether the object
// s is an answer (true) or a non-answer (false) to the user's
// intended query.
type Oracle interface {
	Ask(s boolean.Set) bool
}

// Func adapts a function to the Oracle interface.
type Func func(boolean.Set) bool

// Ask implements Oracle.
func (f Func) Ask(s boolean.Set) bool { return f(s) }

// Target returns an oracle that answers according to the given target
// query — the simulated user of every learning experiment. The
// substitution is exact: the paper's question counts are worst-case
// over users consistent with some query in the class.
//
// Answers are computed by the compiled evaluation kernel
// (query.Compile), which the difffuzz kernel judge pins bit-identical
// to the interpreted evaluator; TargetInterpreted is the escape hatch
// forcing the interpreted path (run.WithInterpretedEval and the CLIs'
// -interpreted-eval flag reach it).
func Target(q query.Query) Oracle {
	return Func(query.Compile(q).Eval)
}

// TargetInterpreted is Target evaluating through the interpreted
// Query.Eval instead of the compiled kernel — the reference path for
// differential tests and for diagnosing a suspected kernel bug.
func TargetInterpreted(q query.Query) Oracle {
	return Func(q.Eval)
}

// Counter wraps an oracle and records the complexity measures the
// paper reports: the number of questions asked, the total and maximum
// number of tuples per question. It is safe for concurrent use —
// concurrent experiment sweeps may share one Counter — but the public
// fields must only be read once the learners using it have returned
// (or through Snapshot, which locks). The zero value is not usable;
// wrap with Count or CountInto.
type Counter struct {
	mu        sync.Mutex
	inner     Oracle
	reg       *obs.Registry
	Questions int
	Tuples    int
	MaxTuples int
}

// Count wraps inner with a fresh Counter.
func Count(inner Oracle) *Counter { return &Counter{inner: inner} }

// CountInto wraps inner with a Counter that doubles as a thin adapter
// over the metrics registry: every question also updates
// qhorn_questions_total, qhorn_tuples_total, the tuples-per-question
// histogram and the oracle answer-latency histogram. A nil registry
// degrades to Count.
func CountInto(inner Oracle, reg *obs.Registry) *Counter {
	return &Counter{inner: inner, reg: reg}
}

// Ask implements Oracle, forwarding to the wrapped oracle.
func (c *Counter) Ask(s boolean.Set) bool {
	size := s.Size()
	c.mu.Lock()
	c.Questions++
	c.Tuples += size
	if size > c.MaxTuples {
		c.MaxTuples = size
	}
	reg := c.reg
	c.mu.Unlock()
	if reg == nil {
		return c.inner.Ask(s)
	}
	reg.Counter(obs.MetricQuestions).Inc()
	reg.Counter(obs.MetricTuples).Add(int64(size))
	reg.Histogram(obs.MetricTuplesPerQuestion, obs.TuplesPerQuestionBuckets).Observe(float64(size))
	start := time.Now()
	a := c.inner.Ask(s)
	reg.Histogram(obs.MetricOracleAskSeconds, obs.LatencyBuckets).Observe(time.Since(start).Seconds())
	return a
}

// AskBatch implements BatchOracle. The accounting is identical to
// asking each question serially — same question, tuple, and histogram
// increments, recorded before the inner oracle is consulted — except
// that the per-answer latency histogram is skipped here: within a
// batch, individual answer latencies overlap, so per-ask timing
// (qhorn_oracle_ask_seconds) is recorded worker-side by the pool
// (ParallelInto) where each inner ask is still bounded on its own, and
// the batch engine's qhorn_oracle_batch_seconds histogram covers the
// batch wall time.
func (c *Counter) AskBatch(qs []boolean.Set) []bool {
	c.mu.Lock()
	for _, q := range qs {
		size := q.Size()
		c.Questions++
		c.Tuples += size
		if size > c.MaxTuples {
			c.MaxTuples = size
		}
	}
	reg := c.reg
	c.mu.Unlock()
	if reg != nil {
		reg.Counter(obs.MetricQuestions).Add(int64(len(qs)))
		for _, q := range qs {
			reg.Counter(obs.MetricTuples).Add(int64(q.Size()))
			reg.Histogram(obs.MetricTuplesPerQuestion, obs.TuplesPerQuestionBuckets).Observe(float64(q.Size()))
		}
	}
	return AskAll(c.inner, qs)
}

// Snapshot returns a consistent view of the counters, safe to call
// while learners are still asking.
func (c *Counter) Snapshot() (questions, tuples, maxTuples int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Questions, c.Tuples, c.MaxTuples
}

// Reset clears the counters.
func (c *Counter) Reset() {
	c.mu.Lock()
	c.Questions, c.Tuples, c.MaxTuples = 0, 0, 0
	c.mu.Unlock()
}

// Entry is one recorded membership question and its response.
type Entry struct {
	Question boolean.Set
	Answer   bool
}

// Transcript wraps an oracle and records every question and response,
// in order. A transcript is the interaction history that §5 proposes
// showing users so they can revise mistaken responses. It is safe for
// concurrent use; read Entries only after the learners using it have
// returned, or through Len/Copy which lock.
type Transcript struct {
	mu      sync.Mutex
	inner   Oracle
	Entries []Entry
}

// Record wraps inner with a fresh Transcript.
func Record(inner Oracle) *Transcript { return &Transcript{inner: inner} }

// Ask implements Oracle.
func (t *Transcript) Ask(s boolean.Set) bool {
	a := t.inner.Ask(s)
	t.mu.Lock()
	t.Entries = append(t.Entries, Entry{Question: s, Answer: a})
	t.mu.Unlock()
	return a
}

// AskBatch implements BatchOracle; the batch's entries are appended
// in question order, regardless of the order the inner oracle
// answered them in.
func (t *Transcript) AskBatch(qs []boolean.Set) []bool {
	answers := AskAll(t.inner, qs)
	t.mu.Lock()
	for i, q := range qs {
		t.Entries = append(t.Entries, Entry{Question: q, Answer: answers[i]})
	}
	t.mu.Unlock()
	return answers
}

// Len reports the number of recorded entries, safe to call while
// learners are still asking.
func (t *Transcript) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.Entries)
}

// Copy returns a snapshot of the recorded entries.
func (t *Transcript) Copy() []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Entry{}, t.Entries...)
}

// Noisy wraps an oracle and flips each response independently with
// probability p, simulating the noisy users discussed in §5. The rng
// must not be nil; it is guarded by a mutex (a *rand.Rand is not safe
// for concurrent use), so the wrapper may be shared by concurrent
// askers. For a fixed seed, the flip sequence — and therefore the
// exact set of corrupted answers — is deterministic only under serial
// asking: concurrent Ask calls draw from the rng in scheduling order.
// AskBatch draws its flips in question order after the whole batch is
// answered, so batched runs keep a per-batch deterministic flip
// sequence even when the inner oracle answers concurrently.
func Noisy(inner Oracle, p float64, rng *rand.Rand) Oracle {
	return &noisy{inner: inner, p: p, rng: rng}
}

type noisy struct {
	inner Oracle
	p     float64
	mu    sync.Mutex
	rng   *rand.Rand
}

// Ask implements Oracle.
func (n *noisy) Ask(s boolean.Set) bool {
	a := n.inner.Ask(s)
	n.mu.Lock()
	flip := n.rng.Float64() < n.p
	n.mu.Unlock()
	if flip {
		return !a
	}
	return a
}

// AskBatch implements BatchOracle; see Noisy for the flip-sequence
// determinism contract.
func (n *noisy) AskBatch(qs []boolean.Set) []bool {
	answers := AskAll(n.inner, qs)
	n.mu.Lock()
	for i := range answers {
		if n.rng.Float64() < n.p {
			answers[i] = !answers[i]
		}
	}
	n.mu.Unlock()
	return answers
}

// Budget wraps an oracle with a hard cap on the number of questions —
// the interactive patience of a real user. Exceeding the budget
// panics with ErrBudget via BudgetExceeded, which callers recover as
// a signal; tests use it to enforce the paper's question bounds
// mechanically. The cap is enforced under a mutex so a budget of L
// admits exactly L questions even with concurrent askers — never
// L+workers. Read Used only after the askers have returned, or
// through Remaining, which locks.
type Budget struct {
	mu    sync.Mutex
	inner Oracle
	reg   *obs.Registry
	Limit int
	Used  int
}

// ErrBudget is the panic value raised when a Budget is exhausted.
type ErrBudget struct {
	Limit int
}

// Error implements error.
func (e ErrBudget) Error() string {
	return fmt.Sprintf("oracle: question budget of %d exhausted", e.Limit)
}

// WithBudget wraps inner with a question cap.
func WithBudget(inner Oracle, limit int) *Budget {
	return &Budget{inner: inner, Limit: limit}
}

// WithBudgetInto is WithBudget with shed accounting: every question
// the exhausted budget refuses increments qhorn_oracle_budget_shed_total
// — the load-shedding signal an admission-controlled service watches.
// A nil registry degrades to WithBudget.
func WithBudgetInto(inner Oracle, limit int, reg *obs.Registry) *Budget {
	return &Budget{inner: inner, Limit: limit, reg: reg}
}

// Ask implements Oracle; it panics with ErrBudget when the cap is
// exceeded. The slot is reserved before the inner oracle is consulted,
// so concurrent asks proceed in parallel while exactly Limit of them
// ever reach the inner oracle.
func (b *Budget) Ask(s boolean.Set) bool {
	b.take(1)
	return b.inner.Ask(s)
}

// AskBatch implements BatchOracle with the serial panic semantics
// intact: when the batch overruns the budget, the questions that fit
// are still asked — exactly what a serial caller would have gotten —
// and then ErrBudget is raised.
func (b *Budget) AskBatch(qs []boolean.Set) []bool {
	b.mu.Lock()
	allowed := b.Limit - b.Used
	if allowed > len(qs) {
		allowed = len(qs)
	}
	b.Used += allowed
	b.mu.Unlock()
	if allowed < len(qs) {
		b.reg.Counter(obs.MetricBudgetSheds).Add(int64(len(qs) - allowed))
		AskAll(b.inner, qs[:allowed])
		panic(ErrBudget{Limit: b.Limit})
	}
	return AskAll(b.inner, qs)
}

// take reserves n question slots or panics with ErrBudget.
func (b *Budget) take(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.Used+n > b.Limit {
		b.reg.Counter(obs.MetricBudgetSheds).Add(int64(n))
		panic(ErrBudget{Limit: b.Limit})
	}
	b.Used += n
}

// Remaining returns the questions left in the budget.
func (b *Budget) Remaining() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.Limit - b.Used
}

// Memo wraps an oracle and caches responses by canonical question
// key, so repeated questions are answered without consulting the
// inner oracle. Wrap the Counter inside Memo to count only distinct
// questions, or outside to count all. The cache is singleflight-
// guarded: when concurrent askers pose the same question, one of them
// asks the inner oracle and the rest wait for its answer, so the
// inner oracle sees each distinct question at most once even under
// concurrency.
func Memo(inner Oracle) Oracle {
	return MemoInto(inner, nil)
}

// MemoInto is Memo with cache accounting: every question served from
// the cache (or by joining another asker's in-flight question) counts
// into qhorn_oracle_memo_hits_total, every question forwarded to the
// inner oracle into qhorn_oracle_memo_misses_total. A nil registry
// degrades to Memo.
func MemoInto(inner Oracle, reg *obs.Registry) Oracle {
	return &memo{
		inner:    inner,
		reg:      reg,
		answers:  map[string]bool{},
		inflight: map[string]chan struct{}{},
	}
}

type memo struct {
	inner    Oracle
	reg      *obs.Registry
	mu       sync.Mutex
	answers  map[string]bool
	inflight map[string]chan struct{}
}

// Ask implements Oracle.
func (m *memo) Ask(s boolean.Set) bool {
	k := s.Key()
	for {
		m.mu.Lock()
		if a, ok := m.answers[k]; ok {
			m.mu.Unlock()
			m.reg.Counter(obs.MetricMemoHits).Inc()
			return a
		}
		if ch, ok := m.inflight[k]; ok {
			// Someone else is asking this exact question: wait for
			// their answer instead of double-asking the inner oracle.
			m.mu.Unlock()
			<-ch
			// Answered — or the leader panicked, in which case the
			// retry elects a new leader (re-raising the same panic for
			// deterministic panics such as ErrBudget).
			continue
		}
		ch := make(chan struct{})
		m.inflight[k] = ch
		m.mu.Unlock()
		return m.lead(k, ch, s)
	}
}

// lead asks the inner oracle on behalf of every goroutine waiting on
// key k, then wakes the waiters. The in-flight marker is removed even
// when the inner oracle panics, so no waiter is stranded. The miss is
// counted only once an answer is actually obtained: when the inner
// oracle panics (e.g. ErrBudget), every retrying waiter re-elects a
// leader for the same question, and counting before the ask would
// record a phantom miss per retry, skewing hit-rate metrics.
func (m *memo) lead(k string, ch chan struct{}, s boolean.Set) bool {
	defer func() {
		m.mu.Lock()
		delete(m.inflight, k)
		m.mu.Unlock()
		close(ch)
	}()
	a := m.inner.Ask(s)
	m.reg.Counter(obs.MetricMemoMisses).Inc()
	m.mu.Lock()
	m.answers[k] = a
	m.mu.Unlock()
	return a
}

// AskBatch implements BatchOracle: cached questions are answered from
// the cache, duplicates of questions already in flight wait for the
// existing asker, and the remaining distinct questions are forwarded
// to the inner oracle as one deduplicated sub-batch.
func (m *memo) AskBatch(qs []boolean.Set) []bool {
	keys := make([]string, len(qs))
	for i, q := range qs {
		keys[i] = q.Key()
	}
	answers := make([]bool, len(qs))
	pending := make([]int, len(qs))
	for i := range qs {
		pending[i] = i
	}
	// missed marks questions this batch led to the inner oracle, so
	// their own cache resolution on the next pass is not also a hit.
	missed := make([]bool, len(qs))
	var hits int64
	for len(pending) > 0 {
		var (
			still   []int           // unresolved after the cache pass
			leaders []int           // first unresolved index per new key
			chans   []chan struct{} // their in-flight markers
			wait    chan struct{}   // another asker's flight to await
		)
		led := map[string]bool{}
		m.mu.Lock()
		for _, i := range pending {
			k := keys[i]
			if a, ok := m.answers[k]; ok {
				answers[i] = a
				if !missed[i] {
					hits++
				}
				continue
			}
			still = append(still, i)
			if led[k] {
				continue
			}
			if ch, ok := m.inflight[k]; ok {
				if wait == nil {
					wait = ch
				}
				continue
			}
			ch := make(chan struct{})
			m.inflight[k] = ch
			led[k] = true
			leaders = append(leaders, i)
			chans = append(chans, ch)
			missed[i] = true
		}
		m.mu.Unlock()
		switch {
		case len(leaders) > 0:
			m.leadBatch(keys, leaders, chans, qs)
		case wait != nil:
			<-wait
		}
		pending = still
	}
	if hits > 0 {
		m.reg.Counter(obs.MetricMemoHits).Add(hits)
	}
	return answers
}

// leadBatch asks the inner oracle the deduplicated sub-batch at the
// given leader indices and settles their flights. As in lead, misses
// are counted only after the inner oracle actually answered: a
// panicking sub-batch (budget, abort) records no misses, so retries
// cannot inflate the count.
func (m *memo) leadBatch(keys []string, leaders []int, chans []chan struct{}, qs []boolean.Set) {
	defer func() {
		m.mu.Lock()
		for _, i := range leaders {
			delete(m.inflight, keys[i])
		}
		m.mu.Unlock()
		for _, ch := range chans {
			close(ch)
		}
	}()
	sub := make([]boolean.Set, len(leaders))
	for j, i := range leaders {
		sub[j] = qs[i]
	}
	res := AskAll(m.inner, sub)
	m.reg.Counter(obs.MetricMemoMisses).Add(int64(len(leaders)))
	m.mu.Lock()
	for j, i := range leaders {
		m.answers[keys[i]] = res[j]
	}
	m.mu.Unlock()
}

// Interactive returns an oracle that renders each membership question
// to w in the paper's tuple notation and reads y/n responses from r.
// Malformed input is re-prompted; EOF defaults to non-answer.
func Interactive(u boolean.Universe, r io.Reader, w io.Writer) Oracle {
	br := bufio.NewReader(r)
	return Func(func(s boolean.Set) bool {
		for {
			fmt.Fprintf(w, "Is this object an answer to your query? %s [y/n] ", s.Format(u))
			line, err := br.ReadString('\n')
			line = strings.ToLower(strings.TrimSpace(line))
			switch line {
			case "y", "yes", "answer", "a":
				return true
			case "n", "no", "non-answer", "non":
				return false
			}
			if err != nil {
				fmt.Fprintln(w, "\n(end of input: recording non-answer)")
				return false
			}
			fmt.Fprintln(w, "Please answer y or n.")
		}
	})
}
