package oracle

// This file implements the parallel batched question engine. The
// paper's learners and verifier ask large sets of *independent*
// membership questions — the n head questions of §3.1.1/§3.2.1, the
// per-variable binary searches of Algorithms 2–3, the per-root
// lattice searches of §3.2.1, and the A1–A4/N1–N2 verification
// families of Fig. 6. The engine lets those sets be answered
// concurrently without changing what is asked:
//
//   - BatchOracle extends Oracle with AskBatch, answering a slice of
//     independent questions with order-aligned results.
//   - AskAll is the polymorphic entry point callers use: one AskBatch
//     when available, a serial loop otherwise.
//   - Pool is the worker-pool driver that turns any concurrency-safe
//     Oracle into a BatchOracle.
//   - Drive interleaves several *adaptive* question streams (e.g. one
//     binary search per lattice root) so that each round's questions
//     form one batch, while each stream still asks exactly the
//     questions it would ask running alone.
//
// Question and tuple accounting stays exactly deterministic: every
// wrapper in this package implements AskBatch with the same counter
// increments as the serial path, and the learners' differential tests
// (internal/difffuzz) enforce identical question counts between the
// serial and parallel learners.

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
)

// BatchOracle extends Oracle with AskBatch: answer a slice of
// independent membership questions, returning the answers aligned
// with the question order. Implementations may answer the questions
// concurrently; the caller must not assume anything about the order
// in which the inner work happens, only about the result layout.
type BatchOracle interface {
	Oracle
	AskBatch(qs []boolean.Set) []bool
}

// AskAll answers every question of qs through o: with one AskBatch
// call when o implements BatchOracle, serially in question order
// otherwise. Either way the returned slice is aligned with qs, so
// callers are agnostic to the oracle's batching capability.
func AskAll(o Oracle, qs []boolean.Set) []bool {
	if len(qs) == 0 {
		return nil
	}
	if b, ok := o.(BatchOracle); ok {
		return b.AskBatch(qs)
	}
	out := make([]bool, len(qs))
	for i, q := range qs {
		out[i] = o.Ask(q)
	}
	return out
}

// DefaultWorkers is the worker count Parallel substitutes for a
// non-positive request: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Pool is the worker-pool batch driver: AskBatch fans its questions
// out to at most Workers goroutines asking the inner oracle
// concurrently. The inner oracle must be safe for concurrent use —
// Target and every wrapper of this package are; the adaptive
// lower-bound adversaries (Adversary, PairAdversary, …) are not, and
// neither is Interactive, whose prompts would interleave.
//
// A panic in the inner oracle (e.g. an exhausted Budget) stops the
// batch — questions not yet started are skipped — and is re-raised on
// the AskBatch caller once every worker has finished.
type Pool struct {
	inner   Oracle
	workers int
	reg     *obs.Registry
}

// Parallel wraps inner with a worker pool of the given size; workers
// <= 0 selects DefaultWorkers.
func Parallel(inner Oracle, workers int) *Pool {
	return ParallelInto(inner, workers, nil)
}

// ParallelInto is Parallel with engine metrics recorded into reg:
// the in-flight gauge (qhorn_oracle_in_flight), the batch counter and
// batch-size histogram, the per-batch latency histogram, and —
// worker-side, where each inner ask is bounded on its own even though
// answers overlap — the per-question ask-latency histogram
// (qhorn_oracle_ask_seconds) for batched questions. A nil registry
// degrades to Parallel.
func ParallelInto(inner Oracle, workers int, reg *obs.Registry) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Pool{inner: inner, workers: workers, reg: reg}
}

// Workers reports the pool's concurrency cap.
func (p *Pool) Workers() int { return p.workers }

// Ask implements Oracle: single questions bypass the pool and only
// touch the in-flight gauge.
func (p *Pool) Ask(s boolean.Set) bool {
	g := p.reg.Gauge(obs.MetricOracleInFlight)
	g.Add(1)
	defer g.Add(-1)
	return p.inner.Ask(s)
}

// AskBatch implements BatchOracle, answering up to Workers questions
// concurrently. Results are aligned with qs no matter which worker
// answered which question.
func (p *Pool) AskBatch(qs []boolean.Set) []bool {
	if len(qs) == 0 {
		return nil
	}
	start := time.Now()
	p.reg.Counter(obs.MetricBatches).Inc()
	p.reg.Histogram(obs.MetricBatchSize, obs.BatchSizeBuckets).Observe(float64(len(qs)))
	answers := make([]bool, len(qs))
	workers := p.workers
	if workers > len(qs) {
		workers = len(qs)
	}
	gauge := p.reg.Gauge(obs.MetricOracleInFlight)
	var askSeconds *obs.Histogram
	if p.reg != nil {
		askSeconds = p.reg.Histogram(obs.MetricOracleAskSeconds, obs.LatencyBuckets)
	}
	var (
		mu         sync.Mutex
		wg         sync.WaitGroup
		panicked   bool
		firstPanic interface{}
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if !panicked {
								panicked, firstPanic = true, r
							}
							mu.Unlock()
						}
					}()
					gauge.Add(1)
					defer gauge.Add(-1)
					if askSeconds != nil {
						askStart := time.Now()
						answers[i] = p.inner.Ask(qs[i])
						askSeconds.Observe(time.Since(askStart).Seconds())
						return
					}
					answers[i] = p.inner.Ask(qs[i])
				}()
			}
		}()
	}
	for i := range qs {
		mu.Lock()
		stop := panicked
		mu.Unlock()
		if stop {
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicked {
		panic(firstPanic)
	}
	p.reg.Histogram(obs.MetricBatchSeconds, obs.LatencyBuckets).Observe(time.Since(start).Seconds())
	return answers
}

// AskFunc is the synchronous question callback Drive hands to each of
// its streams.
type AskFunc func(boolean.Set) bool

// driveAbort unwinds a stream goroutine once the driver has stopped
// answering; Drive recovers it internally.
type driveAbort struct{}

// Drive interleaves n adaptive question streams over one oracle.
// Each stream is a sequential search (stream i runs in its own
// goroutine and asks questions through the provided AskFunc); every
// round the driver gathers the next question of each still-running
// stream, answers the round as one batch through AskAll — hence
// concurrently when o implements BatchOracle — and resumes each
// stream with its answer. A stream therefore receives exactly the
// answers it would receive running alone, so its question sequence —
// and the total question count — is identical to serial execution;
// only wall-clock time changes.
//
// Rounds are deterministic: a round's batch holds the r-th question
// of every stream still alive at round r, ordered by stream index.
// observe, when non-nil, is called in the driver's goroutine for
// every answered question in that order — a single-threaded hook for
// accounting and tracing that needs no synchronization.
//
// A panic in the oracle (e.g. an exhausted Budget) or in a stream is
// re-raised on the Drive caller after every stream goroutine has
// unwound.
func Drive(o Oracle, n int, stream func(i int, ask AskFunc), observe func(i int, s boolean.Set, answer bool)) {
	if n <= 0 {
		return
	}
	type request struct {
		idx   int
		q     boolean.Set
		reply chan bool
	}
	var (
		requests = make(chan request)
		done     = make(chan interface{}, n) // each stream's recover()
		aborted  = make(chan struct{})
	)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- recover() }()
			// One reply channel per stream, reused for every question:
			// a stream has at most one question in flight, and always
			// drains the answer before asking again, so cap 1 suffices
			// and the per-question channel churn disappears.
			reply := make(chan bool, 1)
			stream(i, func(q boolean.Set) bool {
				req := request{idx: i, q: q, reply: reply}
				select {
				case requests <- req:
				case <-aborted:
					panic(driveAbort{})
				}
				select {
				case a := <-req.reply:
					return a
				case <-aborted:
					panic(driveAbort{})
				}
			})
		}(i)
	}

	live := n
	var pending []request
	var streamPanic interface{}
	abort := func(p interface{}) {
		if streamPanic == nil {
			streamPanic = p
		}
		close(aborted)
		// Wake nothing else: every remaining stream unwinds via the
		// aborted channel; drain their completions.
		for live > 0 {
			<-done
			live--
		}
	}
	for live > 0 {
		// Gather one event (question or completion) from every live
		// stream: after this loop the round is complete.
		pending = pending[:0]
		waiting := live
		for waiting > 0 {
			select {
			case req := <-requests:
				pending = append(pending, req)
				waiting--
			case p := <-done:
				live--
				waiting--
				if p != nil {
					if _, isAbort := p.(driveAbort); !isAbort {
						abort(p)
						panic(streamPanic)
					}
				}
			}
		}
		if len(pending) == 0 {
			continue
		}
		sort.Slice(pending, func(a, b int) bool { return pending[a].idx < pending[b].idx })
		qs := make([]boolean.Set, len(pending))
		for j, req := range pending {
			qs[j] = req.q
		}
		answers, err := askAllRecover(o, qs)
		if err != nil {
			abort(err)
			panic(streamPanic)
		}
		for j, req := range pending {
			if observe != nil {
				observe(req.idx, req.q, answers[j])
			}
			req.reply <- answers[j]
		}
	}
}

// askAllRecover runs AskAll, converting a panic into a returned value
// so Drive can unwind its streams before re-raising it.
func askAllRecover(o Oracle, qs []boolean.Set) (answers []bool, panicked interface{}) {
	defer func() { panicked = recover() }()
	return AskAll(o, qs), nil
}
