package oracle_test

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

func ExampleCount() {
	u := boolean.MustUniverse(3)
	o := oracle.Count(oracle.Target(query.MustParse(u, "∀x1 ∃x2x3")))
	o.Ask(boolean.MustParseSet(u, "{111}"))
	o.Ask(boolean.MustParseSet(u, "{111, 011}"))
	fmt.Println(o.Questions, "questions,", o.Tuples, "tuples, max", o.MaxTuples)
	// Output:
	// 2 questions, 3 tuples, max 2
}

func ExampleNewAdversary() {
	// Theorem 2.1's worst-case user over the Uni/Alias class.
	u := boolean.MustUniverse(3)
	adv := oracle.NewAdversary(oracle.AliasClass(u))
	asked := 0
	for _, q := range oracle.AliasQuestions(u) {
		if q.Size() == 1 || adv.Remaining() == 1 {
			continue
		}
		adv.Ask(q)
		asked++
	}
	fmt.Println("questions forced:", asked)
	// Output:
	// questions forced: 7
}
