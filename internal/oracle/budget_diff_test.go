package oracle_test

import (
	"errors"
	"math/rand"
	"testing"

	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// TestBudgetCoversGeneratedQueries: a budget of twice the advertised
// estimate never trips for generated targets — the same 2× bound the
// differential fuzz engine enforces as its budget judge, exercised
// here at the oracle layer where ErrBudget actually fires.
func TestBudgetCoversGeneratedQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 30; i++ {
		n := 2 + rng.Intn(7)
		target := query.GenQhorn1(rng, n)
		budgeted := oracle.WithBudget(oracle.Target(target), 2*learn.EstimateQhorn1(n))
		func() {
			defer func() {
				if r := recover(); r != nil {
					err, ok := r.(error)
					if ok && errors.As(err, &oracle.ErrBudget{}) {
						t.Errorf("n=%d target %s: budget tripped: %v", n, target, err)
						return
					}
					panic(r)
				}
			}()
			learned, _ := learn.Qhorn1(target.U, budgeted)
			if !learned.Equivalent(target) {
				t.Errorf("learned %s for %s", learned, target)
			}
		}()
	}
}
