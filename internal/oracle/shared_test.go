package oracle_test

import (
	"sync"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
)

// countingInner is an inner oracle that counts asks per question key.
type countingInner struct {
	mu    sync.Mutex
	asks  map[string]int
	total int
	fn    func(boolean.Set) bool
}

func newCountingInner(fn func(boolean.Set) bool) *countingInner {
	return &countingInner{asks: map[string]int{}, fn: fn}
}

func (c *countingInner) Ask(s boolean.Set) bool {
	c.mu.Lock()
	c.asks[s.Key()]++
	c.total++
	c.mu.Unlock()
	return c.fn(s)
}

func (c *countingInner) count(s boolean.Set) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.asks[s.Key()]
}

func parity(s boolean.Set) bool { return s.Size()%2 == 1 }

// TestSharedMemoServesRepeatsFromCache pins the basic contract: the
// inner oracle sees each distinct question once per identity, repeats
// are hits, and the tier metrics account for both.
func TestSharedMemoServesRepeatsFromCache(t *testing.T) {
	u := boolean.MustUniverse(5)
	reg := obs.NewRegistry()
	sm := oracle.NewSharedMemoInto(1024, reg)
	inner := newCountingInner(parity)
	o := sm.Oracle("alice", inner)

	qs := probeQuestions(u, 6)
	for round := 0; round < 3; round++ {
		for _, q := range qs {
			if o.Ask(q) != parity(q) {
				t.Fatalf("wrong answer for %s on round %d", q.Key(), round)
			}
		}
	}
	if inner.total != len(qs) {
		t.Errorf("inner saw %d asks, want %d", inner.total, len(qs))
	}
	if got := reg.CounterValue(obs.MetricMemoTierMisses); got != int64(len(qs)) {
		t.Errorf("misses = %d, want %d", got, len(qs))
	}
	if got := reg.CounterValue(obs.MetricMemoTierHits); got != int64(2*len(qs)) {
		t.Errorf("hits = %d, want %d", got, 2*len(qs))
	}
	if sm.Len() != len(qs) {
		t.Errorf("Len = %d, want %d", sm.Len(), len(qs))
	}
	if got := reg.Gauge(obs.MetricMemoTierSize).Value(); got != float64(len(qs)) {
		t.Errorf("size gauge = %v, want %d", got, len(qs))
	}
}

// TestSharedMemoBoundedEviction fills a tiny tier past capacity and
// checks the bound holds, evictions are counted, and the size gauge
// tracks the live entry count.
func TestSharedMemoBoundedEviction(t *testing.T) {
	u := boolean.MustUniverse(5)
	reg := obs.NewRegistry()
	const capacity = 4
	sm := oracle.NewSharedMemoInto(capacity, reg)
	if sm.Capacity() != capacity {
		t.Fatalf("Capacity = %d", sm.Capacity())
	}
	inner := newCountingInner(parity)
	o := sm.Oracle("alice", inner)

	qs := probeQuestions(u, 10)
	for _, q := range qs {
		o.Ask(q)
	}
	if sm.Len() > capacity {
		t.Errorf("Len = %d exceeds capacity %d", sm.Len(), capacity)
	}
	wantEvict := int64(len(qs) - capacity)
	if got := reg.CounterValue(obs.MetricMemoTierEvictions); got != wantEvict {
		t.Errorf("evictions = %d, want %d", got, wantEvict)
	}
	if got := reg.Gauge(obs.MetricMemoTierSize).Value(); got != float64(sm.Len()) {
		t.Errorf("size gauge = %v, Len = %d", got, sm.Len())
	}
}

// TestSharedMemoScanResistance pins the 2Q policy: entries re-used
// once are promoted to the protected segment, and a one-shot scan of
// fresh questions evicts only probation — the hot set survives.
func TestSharedMemoScanResistance(t *testing.T) {
	u := boolean.MustUniverse(6)
	sm := oracle.NewSharedMemo(4) // one shard, protected segment 3
	inner := newCountingInner(parity)
	o := sm.Oracle("alice", inner)

	qs := probeQuestions(u, 12)
	hot := qs[:2]
	for _, q := range hot {
		o.Ask(q) // admit to probation
		o.Ask(q) // promote to protected
	}
	for _, q := range qs[2:] { // one-shot scan, 10 fresh questions
		o.Ask(q)
	}
	for _, q := range hot {
		o.Ask(q)
		if got := inner.count(q); got != 1 {
			t.Errorf("hot question %s re-asked: inner saw it %d times, want 1", q.Key(), got)
		}
	}
}

// TestSharedMemoIdentityIsolation pins the per-user keying: the same
// question under two identities consults each identity's own oracle,
// and their answers never cross.
func TestSharedMemoIdentityIsolation(t *testing.T) {
	u := boolean.MustUniverse(4)
	sm := oracle.NewSharedMemo(64)
	yes := newCountingInner(func(boolean.Set) bool { return true })
	no := newCountingInner(func(boolean.Set) bool { return false })
	alice := sm.Oracle("alice", yes)
	bob := sm.Oracle("bob", no)

	q := boolean.NewSet(u.All())
	if !alice.Ask(q) {
		t.Error("alice's oracle answers true")
	}
	if bob.Ask(q) {
		t.Error("bob got alice's cached answer")
	}
	if yes.total != 1 || no.total != 1 {
		t.Errorf("inner asks alice=%d bob=%d, want 1 each", yes.total, no.total)
	}
	// Repeats hit each identity's own entry.
	if !alice.Ask(q) || bob.Ask(q) {
		t.Error("cached answers crossed identities")
	}
	if yes.total != 1 || no.total != 1 {
		t.Error("repeat consulted an inner oracle")
	}
}

// TestSharedMemoUpdatePropagatesCorrection pins the amendment hook:
// Update overwrites a cached answer in place so later sessions of the
// same identity see the correction without re-asking.
func TestSharedMemoUpdatePropagatesCorrection(t *testing.T) {
	u := boolean.MustUniverse(4)
	sm := oracle.NewSharedMemo(64)
	inner := newCountingInner(func(boolean.Set) bool { return true })
	o := sm.Oracle("alice", inner)

	q := boolean.NewSet(u.All())
	if !o.Ask(q) {
		t.Fatal("initial answer")
	}
	sm.Update("alice", q, false)
	if o.Ask(q) {
		t.Error("correction not served")
	}
	if inner.total != 1 {
		t.Errorf("inner asked %d times, want 1 (update must not invalidate)", inner.total)
	}
	// Update of a never-asked question inserts it.
	q2 := boolean.NewSet(u.All().Without(0))
	sm.Update("alice", q2, true)
	if !o.Ask(q2) || inner.count(q2) != 0 {
		t.Error("inserted update not served from cache")
	}
}

// TestSharedMemoCrossSessionSingleflight pins the tentpole guarantee:
// two sessions of the same identity asking the same question
// concurrently share one flight — the joiner's oracle is never
// consulted.
func TestSharedMemoCrossSessionSingleflight(t *testing.T) {
	u := boolean.MustUniverse(4)
	sm := oracle.NewSharedMemo(64)
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderInner := oracle.Func(func(boolean.Set) bool {
		close(entered)
		<-release
		return true
	})
	joinerInner := newCountingInner(parity)
	leader := sm.Oracle("alice", leaderInner)
	joiner := sm.Oracle("alice", joinerInner)

	q := boolean.NewSet(u.All())
	got := make(chan bool, 2)
	go func() { got <- leader.Ask(q) }()
	<-entered // the leader holds the flight, blocked in its user
	go func() { got <- joiner.Ask(q) }()
	close(release)
	if a, b := <-got, <-got; !a || !b {
		t.Errorf("answers (%v, %v), want shared true", a, b)
	}
	if joinerInner.total != 0 {
		t.Errorf("joiner's oracle consulted %d times, want 0", joinerInner.total)
	}
}

// TestSharedMemoLeaderPanicReelects pins abort resilience: when the
// leading session dies mid-question (its oracle panics), the waiting
// session is woken, re-elects itself leader, and answers through its
// own oracle — and only that successful ask counts as a miss.
func TestSharedMemoLeaderPanicReelects(t *testing.T) {
	u := boolean.MustUniverse(4)
	reg := obs.NewRegistry()
	sm := oracle.NewSharedMemoInto(64, reg)
	entered := make(chan struct{})
	abort := make(chan struct{})
	dying := sm.Oracle("alice", oracle.Func(func(boolean.Set) bool {
		close(entered)
		<-abort
		panic(oracle.ErrBudget{Limit: 0})
	}))
	healthyInner := newCountingInner(func(boolean.Set) bool { return true })
	healthy := sm.Oracle("alice", healthyInner)

	q := boolean.NewSet(u.All())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		defer func() { recover() }()
		dying.Ask(q)
	}()
	<-entered
	joined := make(chan bool)
	go func() { joined <- healthy.Ask(q) }()
	close(abort)
	<-leaderDone
	if !<-joined {
		t.Error("re-elected leader returned wrong answer")
	}
	if healthyInner.total != 1 {
		t.Errorf("healthy oracle asked %d times, want 1", healthyInner.total)
	}
	if got := reg.CounterValue(obs.MetricMemoTierMisses); got != 1 {
		t.Errorf("misses = %d, want 1 (the panicked lead must not count)", got)
	}
}

// TestSharedMemoColdBatchForwardsDeduplicated pins the batch path: a
// cold tier forwards exactly the deduplicated sub-batch, in original
// order — the bit-identity precondition for serve sessions.
func TestSharedMemoColdBatchForwardsDeduplicated(t *testing.T) {
	u := boolean.MustUniverse(5)
	sm := oracle.NewSharedMemo(1024)
	var batches [][]string
	inner := batchRecorder{batches: &batches}
	o := sm.Oracle("alice", inner)

	qs := probeQuestions(u, 4)
	batch := []boolean.Set{qs[0], qs[1], qs[0], qs[2], qs[1], qs[3]}
	answers := oracle.AskAll(o, batch)
	for i, q := range batch {
		if answers[i] != parity(q) {
			t.Errorf("answer %d wrong", i)
		}
	}
	if len(batches) != 1 {
		t.Fatalf("inner saw %d batches, want 1", len(batches))
	}
	want := []string{qs[0].Key(), qs[1].Key(), qs[2].Key(), qs[3].Key()}
	if len(batches[0]) != len(want) {
		t.Fatalf("sub-batch = %v, want %v", batches[0], want)
	}
	for i := range want {
		if batches[0][i] != want[i] {
			t.Fatalf("sub-batch order = %v, want %v", batches[0], want)
		}
	}
	// A warm repeat of the same batch never reaches the inner oracle.
	oracle.AskAll(o, batch)
	if len(batches) != 1 {
		t.Errorf("warm batch consulted the inner oracle: %d batches", len(batches))
	}
}

// batchRecorder records the sub-batches an inner BatchOracle sees.
type batchRecorder struct{ batches *[][]string }

func (b batchRecorder) Ask(s boolean.Set) bool { return parity(s) }

func (b batchRecorder) AskBatch(qs []boolean.Set) []bool {
	keys := make([]string, len(qs))
	answers := make([]bool, len(qs))
	for i, q := range qs {
		keys[i] = q.Key()
		answers[i] = parity(q)
	}
	*b.batches = append(*b.batches, keys)
	return answers
}

// TestSharedMemoNilTierPassesThrough: a nil *SharedMemo degrades to
// the inner oracle, so callers can wire the tier unconditionally.
func TestSharedMemoNilTierPassesThrough(t *testing.T) {
	inner := newCountingInner(parity)
	var sm *oracle.SharedMemo
	if o := sm.Oracle("alice", inner); o != oracle.Oracle(inner) {
		t.Error("nil tier did not return inner unchanged")
	}
}

// TestSharedMemoConcurrentSessionsRaceClean hammers one tier from
// many wrappers — same identity, distinct identities, serial and
// batch — under -race, with a large capacity so the singleflight
// guarantee is assertable: each identity's inner oracle sees each
// distinct question exactly once.
func TestSharedMemoConcurrentSessionsRaceClean(t *testing.T) {
	u := boolean.MustUniverse(6)
	reg := obs.NewRegistry()
	sm := oracle.NewSharedMemoInto(1<<16, reg)
	qs := probeQuestions(u, 16)
	inners := map[string]*countingInner{
		"alice": newCountingInner(parity),
		"bob":   newCountingInner(parity),
	}

	var wg sync.WaitGroup
	for id, inner := range inners {
		for g := 0; g < 8; g++ {
			o := sm.Oracle(id, inner) // one wrapper per simulated session
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				if g%2 == 0 {
					oracle.AskAll(o, qs)
					return
				}
				for r := 0; r < 40; r++ {
					q := qs[(g+r)%len(qs)]
					if o.Ask(q) != parity(q) {
						t.Errorf("torn answer for %s", q.Key())
					}
				}
			}(g)
		}
	}
	wg.Wait()
	for id, inner := range inners {
		for _, q := range qs {
			if got := inner.count(q); got != 1 {
				t.Errorf("identity %s: inner saw %s %d times, want exactly 1", id, q.Key(), got)
			}
		}
	}
	wantMiss := int64(len(inners) * len(qs))
	if got := reg.CounterValue(obs.MetricMemoTierMisses); got != wantMiss {
		t.Errorf("misses = %d, want %d", got, wantMiss)
	}
}

// TestSharedMemoConcurrentEvictionRaceClean hammers a tier far past
// its capacity from concurrent sessions; under -race this pins the
// sharded lock discipline of the eviction path, and the bound must
// hold at quiescence.
func TestSharedMemoConcurrentEvictionRaceClean(t *testing.T) {
	u := boolean.MustUniverse(8)
	reg := obs.NewRegistry()
	const capacity = 32
	sm := oracle.NewSharedMemoInto(capacity, reg)
	inner := newCountingInner(parity)
	qs := probeQuestions(u, 200)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		o := sm.Oracle("alice", inner)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				for _, q := range qs {
					if o.Ask(q) != parity(q) {
						t.Errorf("torn answer for %s", q.Key())
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if sm.Len() > capacity {
		t.Errorf("Len = %d exceeds capacity %d", sm.Len(), capacity)
	}
	if got := reg.Gauge(obs.MetricMemoTierSize).Value(); got != float64(sm.Len()) {
		t.Errorf("size gauge = %v, Len = %d", got, sm.Len())
	}
}
