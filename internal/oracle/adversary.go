package oracle

import (
	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

// Adversary is the worst-case user of the paper's lower-bound proofs.
// It maintains the set of candidate target queries still consistent
// with its past responses, and answers each membership question so as
// to keep as many candidates alive as possible (the halving
// adversary). For the structured classes of Theorem 2.1, Lemma 3.4
// and Theorem 3.6, each question eliminates at most one candidate, so
// the adversary forces the stated lower bounds.
type Adversary struct {
	candidates []query.Query
}

// NewAdversary returns an adversary over the given candidate class.
// The slice is not retained.
func NewAdversary(candidates []query.Query) *Adversary {
	return &Adversary{candidates: append([]query.Query{}, candidates...)}
}

// Ask implements Oracle: it answers with the classification shared by
// the majority of remaining candidates, then eliminates the
// minority. Ties go to non-answer, matching the proofs ("consider an
// adversary who always responds non-answer").
func (a *Adversary) Ask(s boolean.Set) bool {
	var yes, no []query.Query
	for _, q := range a.candidates {
		if q.Eval(s) {
			yes = append(yes, q)
		} else {
			no = append(no, q)
		}
	}
	if len(yes) > len(no) {
		a.candidates = yes
		return true
	}
	a.candidates = no
	return false
}

// Remaining returns the number of candidate queries still consistent
// with the adversary's responses.
func (a *Adversary) Remaining() int { return len(a.candidates) }

// Resolved returns the unique remaining candidate, if only one is
// left.
func (a *Adversary) Resolved() (query.Query, bool) {
	if len(a.candidates) == 1 {
		return a.candidates[0], true
	}
	return query.Query{}, false
}

// AliasClass builds the query class φ = Uni(X) ∧ Alias(Y) of
// Theorem 2.1 on n variables: every subset Y of the variables yields
// one query in which the variables of Y form an alias (all true or
// all false together, expressed as a cycle of universal Horn
// expressions) and the remaining variables are universally quantified
// and bodyless. There are 2^n instances; learning the class requires
// Ω(2^n) membership questions.
//
// Note these queries repeat variables as both heads and bodies, so
// they are in qhorn but not in role-preserving qhorn — exactly the
// point of the theorem.
func AliasClass(u boolean.Universe) []query.Query {
	n := u.N()
	out := make([]query.Query, 0, 1<<uint(n))
	for m := 0; m < 1<<uint(n); m++ {
		y := boolean.Tuple(m)
		out = append(out, AliasQuery(u, y))
	}
	return out
}

// AliasQuery builds the Theorem 2.1 instance Uni(X) ∧ Alias(Y) where
// Y = aliasVars and X is the rest of the universe.
func AliasQuery(u boolean.Universe, aliasVars boolean.Tuple) query.Query {
	var exprs []query.Expr
	for _, x := range u.Complement(aliasVars).Vars() {
		exprs = append(exprs, query.BodylessUniversal(x))
	}
	ys := aliasVars.Vars()
	for i, y := range ys {
		next := ys[(i+1)%len(ys)]
		if len(ys) == 1 {
			// A one-variable alias imposes no constraint beyond the
			// guarantee; represent it as ∃y so the 2^n instances stay
			// distinct.
			exprs = append(exprs, query.Conjunction(boolean.FromVars(y)))
			break
		}
		exprs = append(exprs, query.UniversalHorn(boolean.FromVars(y), next))
	}
	return query.MustNew(u, exprs...)
}

// AliasQuestions returns the only informative membership questions
// for the alias class (proof of Theorem 2.1): for each subset Y of
// variables, the object {1^n, tuple with exactly Y false}. Each such
// question satisfies exactly the instance whose alias is Y.
func AliasQuestions(u boolean.Universe) []boolean.Set {
	n := u.N()
	out := make([]boolean.Set, 0, 1<<uint(n))
	all := u.All()
	for m := 0; m < 1<<uint(n); m++ {
		y := boolean.Tuple(m)
		out = append(out, boolean.NewSet(all, all.Minus(y)))
	}
	return out
}

// HeadPairClass builds the query class of Lemma 3.4 on n variables:
// for each pair {i, j}, the query ∃C→xi ∃C→xj with C all other
// variables. Learning the class with questions of at most c tuples
// requires Ω(n²/c²) questions.
func HeadPairClass(u boolean.Universe) []query.Query {
	n := u.N()
	var out []query.Query
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := u.All().Without(i).Without(j)
			out = append(out, query.MustNew(u,
				query.ExistentialHorn(c, i),
				query.ExistentialHorn(c, j),
			))
		}
	}
	return out
}

// HeadPairQuestions enumerates the class-2 questions of the Lemma 3.4
// proof with exactly c tuples each: every question picks c distinct
// variables H and contains, for each x ∈ H, the tuple where only x is
// false. A question is an answer iff both head variables are in H.
// The enumeration walks combinations in lexicographic order.
func HeadPairQuestions(u boolean.Universe, c int) []boolean.Set {
	n := u.N()
	if c > n {
		c = n
	}
	var out []boolean.Set
	idx := make([]int, c)
	for i := range idx {
		idx[i] = i
	}
	all := u.All()
	for {
		tuples := make([]boolean.Tuple, c)
		for i, v := range idx {
			tuples[i] = all.Without(v)
		}
		out = append(out, boolean.NewSet(tuples...))
		// next combination
		i := c - 1
		for i >= 0 && idx[i] == n-c+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < c; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return out
}

// BodyClass builds the query class of Theorem 3.6 for a head variable
// h: θ−1 disjoint bodies B1..B_{θ−1} of size n/(θ−1) each over the
// first n non-head variables, which are fixed across the class, plus
// a θ-th body Bθ that omits exactly one variable from each Bi. The
// class has (n/(θ−1))^(θ−1) instances, one per choice of omitted
// variables, and learning it requires Ω((n/θ)^(θ−1)) questions.
//
// The universe has n+1 variables; variable n is the head h. n must be
// divisible by θ−1 and θ must be at least 2.
func BodyClass(u boolean.Universe, theta int) []query.Query {
	n := u.N() - 1
	h := n
	if theta < 2 || n%(theta-1) != 0 {
		panic("oracle: BodyClass requires θ ≥ 2 and (n−1) divisible by θ−1")
	}
	size := n / (theta - 1)
	bodies := make([]boolean.Tuple, theta-1)
	for i := range bodies {
		for v := i * size; v < (i+1)*size; v++ {
			bodies[i] = bodies[i].With(v)
		}
	}
	base := make([]query.Expr, 0, theta)
	for _, b := range bodies {
		base = append(base, query.UniversalHorn(b, h))
	}
	// Enumerate one omitted variable per body.
	var out []query.Query
	var rec func(i int, omit boolean.Tuple)
	rec = func(i int, omit boolean.Tuple) {
		if i == len(bodies) {
			bTheta := boolean.AllTrue(n).Minus(omit)
			exprs := append(append([]query.Expr{}, base...), query.UniversalHorn(bTheta, h))
			out = append(out, query.MustNew(u, exprs...))
			return
		}
		for _, v := range bodies[i].Vars() {
			rec(i+1, omit.With(v))
		}
	}
	rec(0, 0)
	return out
}
