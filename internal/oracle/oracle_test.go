package oracle

import (
	"math/rand"
	"strings"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

func TestTargetOracle(t *testing.T) {
	u := boolean.MustUniverse(3)
	q := query.MustParse(u, "∀x1 ∃x2x3")
	o := Target(q)
	if !o.Ask(boolean.MustParseSet(u, "{111}")) {
		t.Error("111 should be an answer")
	}
	if o.Ask(boolean.MustParseSet(u, "{011}")) {
		t.Error("011 violates ∀x1")
	}
}

func TestCounter(t *testing.T) {
	u := boolean.MustUniverse(3)
	o := Count(Target(query.MustParse(u, "∃x1")))
	o.Ask(boolean.MustParseSet(u, "{111, 011}"))
	o.Ask(boolean.MustParseSet(u, "{100}"))
	if o.Questions != 2 || o.Tuples != 3 || o.MaxTuples != 2 {
		t.Errorf("Counter = %+v", o)
	}
	o.Reset()
	if o.Questions != 0 || o.Tuples != 0 || o.MaxTuples != 0 {
		t.Errorf("Reset failed: %+v", o)
	}
}

func TestTranscript(t *testing.T) {
	u := boolean.MustUniverse(2)
	tr := Record(Target(query.MustParse(u, "∃x1")))
	q1 := boolean.MustParseSet(u, "{10}")
	q2 := boolean.MustParseSet(u, "{01}")
	tr.Ask(q1)
	tr.Ask(q2)
	if len(tr.Entries) != 2 {
		t.Fatalf("entries = %d", len(tr.Entries))
	}
	if !tr.Entries[0].Answer || tr.Entries[1].Answer {
		t.Errorf("recorded answers wrong: %+v", tr.Entries)
	}
	if !tr.Entries[0].Question.Equal(q1) {
		t.Error("question not recorded")
	}
}

func TestNoisy(t *testing.T) {
	u := boolean.MustUniverse(2)
	rng := rand.New(rand.NewSource(9))
	truth := Target(query.MustParse(u, "∃x1"))
	noisy := Noisy(truth, 0.3, rng)
	q := boolean.MustParseSet(u, "{10}")
	flips := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if noisy.Ask(q) != true {
			flips++
		}
	}
	rate := float64(flips) / trials
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("flip rate = %.3f, want ≈0.3", rate)
	}
	if silent := Noisy(truth, 0, rng); !silent.Ask(q) {
		t.Error("p=0 flipped a response")
	}
}

func TestMemo(t *testing.T) {
	u := boolean.MustUniverse(2)
	c := Count(Target(query.MustParse(u, "∃x1")))
	m := Memo(c)
	q := boolean.MustParseSet(u, "{10}")
	for i := 0; i < 5; i++ {
		if !m.Ask(q) {
			t.Fatal("wrong answer")
		}
	}
	if c.Questions != 1 {
		t.Errorf("inner oracle asked %d times, want 1", c.Questions)
	}
}

func TestInteractive(t *testing.T) {
	u := boolean.MustUniverse(2)
	in := strings.NewReader("y\nmaybe\nn\n")
	var out strings.Builder
	o := Interactive(u, in, &out)
	if !o.Ask(boolean.MustParseSet(u, "{11}")) {
		t.Error("first response should be answer")
	}
	if o.Ask(boolean.MustParseSet(u, "{10}")) {
		t.Error("after re-prompt, response should be non-answer")
	}
	if !strings.Contains(out.String(), "Please answer") {
		t.Error("no re-prompt on malformed input")
	}
	// EOF defaults to non-answer.
	o2 := Interactive(u, strings.NewReader(""), &out)
	if o2.Ask(boolean.MustParseSet(u, "{11}")) {
		t.Error("EOF should default to non-answer")
	}
}

func TestAliasClassTheorem21(t *testing.T) {
	// The paper's example instance: n=6, alias {x2,x4,x6}. Only two
	// questions satisfy it: {1^6} and {1^6, 101010}.
	u := boolean.MustUniverse(6)
	q := AliasQuery(u, boolean.FromVars(1, 3, 5))
	all := u.All()
	if !q.Eval(boolean.NewSet(all)) {
		t.Error("{1^6} must be an answer")
	}
	if !q.Eval(boolean.NewSet(all, u.MustParse("101010"))) {
		t.Error("{1^6, 101010} must be an answer")
	}
	// Any other single-extra-tuple question is a non-answer.
	for m := 0; m < 64; m++ {
		tp := boolean.Tuple(m)
		if tp == all || tp == u.MustParse("101010") {
			continue
		}
		if q.Eval(boolean.NewSet(all, tp)) {
			t.Errorf("{1^6, %s} unexpectedly an answer", u.Format(tp))
		}
	}
}

func TestAliasQuestionsIdentifyExactlyOneInstance(t *testing.T) {
	u := boolean.MustUniverse(4)
	class := AliasClass(u)
	questions := AliasQuestions(u)
	if len(class) != 16 || len(questions) != 16 {
		t.Fatalf("class=%d questions=%d, want 16", len(class), len(questions))
	}
	// Each question (other than Y=∅, which is {1^n} twice, i.e. the
	// one-tuple question) is an answer for exactly one instance.
	for qi, question := range questions {
		if question.Size() == 1 {
			// Y=∅: {1^n} is an answer for every instance.
			count := 0
			for _, inst := range class {
				if inst.Eval(question) {
					count++
				}
			}
			if count != len(class) {
				t.Errorf("{1^n} answered by %d of %d instances", count, len(class))
			}
			continue
		}
		count := 0
		match := -1
		for ci, inst := range class {
			if inst.Eval(question) {
				count++
				match = ci
			}
		}
		if count != 1 || match != qi {
			t.Errorf("question %d answered by %d instances (match %d)", qi, count, match)
		}
	}
}

func TestAdversaryForcesExponentialQuestions(t *testing.T) {
	// Theorem 2.1: the halving adversary answers non-answer to every
	// informative question, eliminating one instance each time.
	u := boolean.MustUniverse(5)
	adv := NewAdversary(AliasClass(u))
	asked := 0
	for _, q := range AliasQuestions(u) {
		if q.Size() == 1 {
			continue // uninformative
		}
		if adv.Remaining() == 1 {
			break
		}
		if adv.Ask(q) {
			t.Fatal("adversary conceded an answer early")
		}
		asked++
	}
	if asked != (1<<5)-1 { // Theorem 2.1: 2^n − 1 questions in the worst case
		t.Errorf("asked = %d, want 2^n-1 = %d", asked, (1<<5)-1)
	}
	if _, ok := adv.Resolved(); !ok {
		t.Error("adversary not resolved after exhausting questions")
	}
}

func TestHeadPairClass(t *testing.T) {
	u := boolean.MustUniverse(5)
	class := HeadPairClass(u)
	if len(class) != 10 { // C(5,2)
		t.Fatalf("class size = %d", len(class))
	}
	// A question with tuples Ti, Tj for the head pair {i,j} is an
	// answer; for any other pair it is a non-answer (Lemma 3.4).
	all := u.All()
	target := class[0] // pair {x1, x2}
	ans := boolean.NewSet(all.Without(0), all.Without(1))
	if !target.Eval(ans) {
		t.Error("T1,T2 should be an answer for head pair {1,2}")
	}
	wrong := boolean.NewSet(all.Without(2), all.Without(3))
	if target.Eval(wrong) {
		t.Error("T3,T4 should be a non-answer for head pair {1,2}")
	}
	single := boolean.NewSet(all.Without(0))
	if target.Eval(single) {
		t.Error("question with one class-2 tuple is always a non-answer")
	}
}

func TestHeadPairQuestions(t *testing.T) {
	u := boolean.MustUniverse(5)
	qs := HeadPairQuestions(u, 2)
	if len(qs) != 10 {
		t.Fatalf("C(5,2) = 10, got %d", len(qs))
	}
	for _, q := range qs {
		if q.Size() != 2 {
			t.Fatalf("question size %d, want 2", q.Size())
		}
	}
	if got := len(HeadPairQuestions(u, 3)); got != 10 { // C(5,3)
		t.Fatalf("C(5,3) = 10, got %d", got)
	}
	// c > n clamps.
	if got := len(HeadPairQuestions(u, 9)); got != 1 {
		t.Fatalf("clamped c: %d questions", got)
	}
}

func TestHeadPairAdversaryLowerBound(t *testing.T) {
	// Lemma 3.4: with c=2 tuples per question, each question
	// eliminates at most one pair; the adversary forces C(n,2)-1
	// questions.
	u := boolean.MustUniverse(6)
	adv := NewAdversary(HeadPairClass(u))
	asked := 0
	for _, q := range HeadPairQuestions(u, 2) {
		if adv.Remaining() == 1 {
			break
		}
		adv.Ask(q)
		asked++
	}
	if adv.Remaining() != 1 {
		t.Fatalf("adversary still has %d candidates", adv.Remaining())
	}
	want := 6*5/2 - 1
	if asked != want {
		t.Errorf("asked = %d, want %d", asked, want)
	}
}

func TestBodyClass(t *testing.T) {
	// Theorem 3.6 with n=6 body variables, θ=3: bodies of size 3,
	// 3^2 = 9 instances.
	u := boolean.MustUniverse(7)
	class := BodyClass(u, 3)
	if len(class) != 9 {
		t.Fatalf("class size = %d, want 9", len(class))
	}
	for _, q := range class {
		if !q.IsRolePreserving() {
			t.Fatalf("instance not role-preserving: %s", q)
		}
		if got := q.CausalDensity(); got != 3 {
			t.Fatalf("θ = %d, want 3: %s", got, q)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("BodyClass with bad θ did not panic")
		}
	}()
	BodyClass(boolean.MustUniverse(6), 3) // 5 not divisible by 2
}

func TestFuncAdapter(t *testing.T) {
	o := Func(func(s boolean.Set) bool { return s.Size() > 1 })
	if o.Ask(boolean.NewSet(0)) || !o.Ask(boolean.NewSet(0, 1)) {
		t.Error("Func adapter broken")
	}
}

func TestBudget(t *testing.T) {
	u := boolean.MustUniverse(2)
	b := WithBudget(Target(query.MustParse(u, "∃x1")), 2)
	q := boolean.MustParseSet(u, "{10}")
	b.Ask(q)
	b.Ask(q)
	if b.Remaining() != 0 || b.Used != 2 {
		t.Fatalf("budget accounting: %+v", b)
	}
	defer func() {
		r := recover()
		eb, ok := r.(ErrBudget)
		if !ok {
			t.Fatalf("panic value = %v", r)
		}
		if eb.Limit != 2 || eb.Error() == "" {
			t.Fatalf("ErrBudget = %+v", eb)
		}
	}()
	b.Ask(q)
	t.Fatal("third question did not panic")
}
