package oracle_test

import (
	"sync"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// TestSharedInstrumentationIsRaceClean runs two learners concurrently
// against one shared Counter, Transcript and metrics registry — the
// shape of a concurrent experiment sweep. Run under -race (CI does)
// this pins the mutex protection of the instrumentation wrappers.
func TestSharedInstrumentationIsRaceClean(t *testing.T) {
	// The target is both qhorn-1 and role-preserving, so either
	// learner recovers it exactly from the shared oracle.
	u := boolean.MustUniverse(6)
	target := query.MustParse(u, "∀x1x2 → x4 ∃x1x2 → x5 ∃x3 → x6")
	reg := obs.NewRegistry()
	counter := oracle.CountInto(oracle.Target(target), reg)
	transcript := oracle.Record(counter)

	var wg sync.WaitGroup
	results := make([]query.Query, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		results[0], _ = learn.RolePreserving(u, transcript)
	}()
	go func() {
		defer wg.Done()
		results[1], _ = learn.Qhorn1(u, transcript)
	}()
	// Concurrent readers exercise the snapshot paths while the
	// learners are mid-flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			counter.Snapshot()
			transcript.Len()
		}
	}()
	wg.Wait()
	<-done

	for i, got := range results {
		if !got.Equivalent(target) {
			t.Errorf("learner %d under shared instrumentation got %s", i, got)
		}
	}
	questions, tuples, maxT := counter.Snapshot()
	if questions == 0 || tuples < questions || maxT == 0 {
		t.Errorf("counter snapshot (%d, %d, %d) implausible", questions, tuples, maxT)
	}
	if transcript.Len() != questions {
		t.Errorf("transcript has %d entries, counter says %d questions", transcript.Len(), questions)
	}
	if got := reg.CounterValue(obs.MetricQuestions); got != int64(questions) {
		t.Errorf("registry %s = %d, counter = %d", obs.MetricQuestions, got, questions)
	}
}

// TestCountIntoRecordsMetrics pins the Counter→Registry adapter: one
// wrapped oracle call updates every metric family the adapter owns.
func TestCountIntoRecordsMetrics(t *testing.T) {
	u := boolean.MustUniverse(3)
	target := query.MustParse(u, "∃x1")
	reg := obs.NewRegistry()
	c := oracle.CountInto(oracle.Target(target), reg)

	q := boolean.NewSet(u.All(), u.All().Without(0))
	c.Ask(q)
	c.Ask(q)

	if got := reg.CounterValue(obs.MetricQuestions); got != 2 {
		t.Errorf("%s = %d, want 2", obs.MetricQuestions, got)
	}
	if got := reg.CounterValue(obs.MetricTuples); got != 4 {
		t.Errorf("%s = %d, want 4", obs.MetricTuples, got)
	}
	h := reg.Histogram(obs.MetricTuplesPerQuestion, obs.TuplesPerQuestionBuckets)
	if h.Count() != 2 || h.Sum() != 4 {
		t.Errorf("tuple histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	if reg.Histogram(obs.MetricOracleSeconds, obs.LatencyBuckets).Count() != 2 {
		t.Error("latency histogram missed samples")
	}
	if c.Questions != 2 || c.Tuples != 4 || c.MaxTuples != 2 {
		t.Errorf("counter fields (%d, %d, %d)", c.Questions, c.Tuples, c.MaxTuples)
	}
}

// TestTranscriptCopyIsIndependent guards the snapshot semantics of
// Transcript.Copy.
func TestTranscriptCopyIsIndependent(t *testing.T) {
	u := boolean.MustUniverse(2)
	tr := oracle.Record(oracle.Target(query.MustParse(u, "∃x1")))
	tr.Ask(boolean.NewSet(u.All()))
	snap := tr.Copy()
	tr.Ask(boolean.NewSet(u.All().Without(0)))
	if len(snap) != 1 || tr.Len() != 2 {
		t.Errorf("copy len %d, live len %d", len(snap), tr.Len())
	}
}
