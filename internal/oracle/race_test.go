package oracle_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// TestSharedInstrumentationIsRaceClean runs two learners concurrently
// against one shared Counter, Transcript and metrics registry — the
// shape of a concurrent experiment sweep. Run under -race (CI does)
// this pins the mutex protection of the instrumentation wrappers.
func TestSharedInstrumentationIsRaceClean(t *testing.T) {
	// The target is both qhorn-1 and role-preserving, so either
	// learner recovers it exactly from the shared oracle.
	u := boolean.MustUniverse(6)
	target := query.MustParse(u, "∀x1x2 → x4 ∃x1x2 → x5 ∃x3 → x6")
	reg := obs.NewRegistry()
	counter := oracle.CountInto(oracle.Target(target), reg)
	transcript := oracle.Record(counter)

	var wg sync.WaitGroup
	results := make([]query.Query, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		results[0], _ = learn.RolePreserving(u, transcript)
	}()
	go func() {
		defer wg.Done()
		results[1], _ = learn.Qhorn1(u, transcript)
	}()
	// Concurrent readers exercise the snapshot paths while the
	// learners are mid-flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			counter.Snapshot()
			transcript.Len()
		}
	}()
	wg.Wait()
	<-done

	for i, got := range results {
		if !got.Equivalent(target) {
			t.Errorf("learner %d under shared instrumentation got %s", i, got)
		}
	}
	questions, tuples, maxT := counter.Snapshot()
	if questions == 0 || tuples < questions || maxT == 0 {
		t.Errorf("counter snapshot (%d, %d, %d) implausible", questions, tuples, maxT)
	}
	if transcript.Len() != questions {
		t.Errorf("transcript has %d entries, counter says %d questions", transcript.Len(), questions)
	}
	if got := reg.CounterValue(obs.MetricQuestions); got != int64(questions) {
		t.Errorf("registry %s = %d, counter = %d", obs.MetricQuestions, got, questions)
	}
}

// TestCountIntoRecordsMetrics pins the Counter→Registry adapter: one
// wrapped oracle call updates every metric family the adapter owns.
func TestCountIntoRecordsMetrics(t *testing.T) {
	u := boolean.MustUniverse(3)
	target := query.MustParse(u, "∃x1")
	reg := obs.NewRegistry()
	c := oracle.CountInto(oracle.Target(target), reg)

	q := boolean.NewSet(u.All(), u.All().Without(0))
	c.Ask(q)
	c.Ask(q)

	if got := reg.CounterValue(obs.MetricQuestions); got != 2 {
		t.Errorf("%s = %d, want 2", obs.MetricQuestions, got)
	}
	if got := reg.CounterValue(obs.MetricTuples); got != 4 {
		t.Errorf("%s = %d, want 4", obs.MetricTuples, got)
	}
	h := reg.Histogram(obs.MetricTuplesPerQuestion, obs.TuplesPerQuestionBuckets)
	if h.Count() != 2 || h.Sum() != 4 {
		t.Errorf("tuple histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	if reg.Histogram(obs.MetricOracleAskSeconds, obs.LatencyBuckets).Count() != 2 {
		t.Error("latency histogram missed samples")
	}
	if c.Questions != 2 || c.Tuples != 4 || c.MaxTuples != 2 {
		t.Errorf("counter fields (%d, %d, %d)", c.Questions, c.Tuples, c.MaxTuples)
	}
}

// TestTranscriptCopyIsIndependent guards the snapshot semantics of
// Transcript.Copy.
func TestTranscriptCopyIsIndependent(t *testing.T) {
	u := boolean.MustUniverse(2)
	tr := oracle.Record(oracle.Target(query.MustParse(u, "∃x1")))
	tr.Ask(boolean.NewSet(u.All()))
	snap := tr.Copy()
	tr.Ask(boolean.NewSet(u.All().Without(0)))
	if len(snap) != 1 || tr.Len() != 2 {
		t.Errorf("copy len %d, live len %d", len(snap), tr.Len())
	}
}

// TestMemoConcurrentAskersSingleflight hammers one Memo with many
// goroutines asking a small set of overlapping questions. Under -race
// this pins both the data-race fix and the singleflight guarantee: the
// inner oracle sees each distinct question exactly once — no
// double-asks, no torn cache. The pre-fix Memo (bare map, no lock)
// fails both ways.
func TestMemoConcurrentAskersSingleflight(t *testing.T) {
	u := boolean.MustUniverse(5)
	const distinct = 8
	qs := probeQuestions(u, distinct)
	index := map[string]int{}
	for i, q := range qs {
		index[q.Key()] = i
	}
	askedBy := make([]atomicCounter, distinct)
	m := oracle.Memo(oracle.Func(func(s boolean.Set) bool {
		askedBy[index[s.Key()]].add(1)
		return s.Size()%2 == 1
	}))

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				q := qs[(g+r)%distinct]
				if m.Ask(q) != (q.Size()%2 == 1) {
					t.Errorf("memo returned a wrong cached answer for %s", q.Key())
				}
			}
		}(g)
	}
	// Batches race against the single askers too.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			oracle.AskAll(m, qs)
		}()
	}
	wg.Wait()
	for i := range askedBy {
		if got := askedBy[i].load(); got != 1 {
			t.Errorf("inner oracle asked question %d %d times, want exactly 1", i, got)
		}
	}
}

// TestBudgetConcurrentAskersExact hammers one Budget of L with far
// more concurrent asks than L. Under -race this pins the fix: exactly
// L questions reach the inner oracle (never L+workers), every excess
// ask panics ErrBudget, and Used never tears.
func TestBudgetConcurrentAskersExact(t *testing.T) {
	u := boolean.MustUniverse(4)
	const limit = 25
	var inner atomicCounter
	b := oracle.WithBudget(oracle.Func(func(boolean.Set) bool {
		inner.add(1)
		return true
	}), limit)

	var wg sync.WaitGroup
	var budgetPanics atomicCounter
	q := boolean.NewSet(u.All())
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				func() {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(oracle.ErrBudget); !ok {
								panic(r)
							}
							budgetPanics.add(1)
						}
					}()
					b.Ask(q)
				}()
			}
		}()
	}
	wg.Wait()
	if got := inner.load(); got != limit {
		t.Errorf("inner oracle asked %d questions, want exactly the budget %d", got, limit)
	}
	if got := budgetPanics.load(); got != 100-limit {
		t.Errorf("%d asks panicked ErrBudget, want %d", got, 100-limit)
	}
	if b.Remaining() != 0 {
		t.Errorf("Remaining = %d after exhaustion", b.Remaining())
	}
}

// TestNoisyConcurrentAskersRaceClean hammers one Noisy wrapper from
// many goroutines. Under -race this pins the rng mutex: *rand.Rand is
// not concurrency-safe, and the pre-fix wrapper raced (and could
// corrupt the rng state) the moment two askers overlapped.
func TestNoisyConcurrentAskersRaceClean(t *testing.T) {
	u := boolean.MustUniverse(4)
	n := oracle.Noisy(oracle.Func(func(boolean.Set) bool { return true }), 0.3, rand.New(rand.NewSource(11)))
	qs := probeQuestions(u, 8)
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 100; r++ {
				n.Ask(qs[(g+r)%len(qs)])
			}
		}(g)
	}
	wg.Wait()
}

// TestPoolConcurrentBatchesRaceClean hammers one Pool — over the full
// wrapper stack — with concurrent batches and single asks. Under
// -race this pins the engine itself: workers write disjoint answer
// slots, the in-flight gauge is atomic, and the wrappers' batch paths
// hold their locks.
func TestPoolConcurrentBatchesRaceClean(t *testing.T) {
	u := boolean.MustUniverse(6)
	target := query.MustParse(u, "∀x1x2 → x4 ∃x1x2 → x5 ∃x3 → x6")
	reg := obs.NewRegistry()
	pool := oracle.ParallelInto(oracle.Target(target), 4, reg)
	stack := oracle.Record(oracle.CountInto(oracle.Memo(pool), reg))
	qs := probeQuestions(u, 30)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				oracle.AskAll(stack, qs)
				return
			}
			for _, q := range qs {
				stack.Ask(q)
			}
		}(g)
	}
	wg.Wait()
	if got := reg.Gauge(obs.MetricOracleInFlight).Value(); got != 0 {
		t.Errorf("in-flight gauge = %v after quiescence, want 0", got)
	}
}

// TestMemoMissCountedOnlyOnAnswer pins the miss-accounting fix: a
// miss is recorded only when an answer is actually obtained from the
// inner oracle. Pre-fix, the leader counted the miss before asking,
// so a panicking inner oracle (ErrBudget) made every retrying waiter
// re-elect a leader and count another phantom miss for the same
// question.
func TestMemoMissCountedOnlyOnAnswer(t *testing.T) {
	u := boolean.MustUniverse(4)
	qs := probeQuestions(u, 2)

	t.Run("serial panic counts nothing", func(t *testing.T) {
		reg := obs.NewRegistry()
		m := oracle.MemoInto(oracle.WithBudget(oracle.Func(func(boolean.Set) bool { return true }), 0), reg)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { recover() }()
				m.Ask(qs[0])
			}()
		}
		wg.Wait()
		if got := reg.CounterValue(obs.MetricMemoMisses); got != 0 {
			t.Errorf("misses = %d after budget-0 panics, want 0", got)
		}
	})

	t.Run("retry storm counts one miss", func(t *testing.T) {
		// Budget 1 under the memo: exactly one of the two questions
		// gets the slot; every ask of the other panics, re-electing
		// leaders over and over. Only the answered question is a miss.
		reg := obs.NewRegistry()
		m := oracle.MemoInto(oracle.WithBudget(oracle.Func(func(boolean.Set) bool { return true }), 1), reg)
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for r := 0; r < 20; r++ {
					func() {
						defer func() { recover() }()
						m.Ask(qs[(g+r)%2])
					}()
				}
			}(g)
		}
		wg.Wait()
		if got := reg.CounterValue(obs.MetricMemoMisses); got != 1 {
			t.Errorf("misses = %d, want exactly 1 (the answered question)", got)
		}
	})

	t.Run("batch panic counts nothing", func(t *testing.T) {
		reg := obs.NewRegistry()
		m := oracle.MemoInto(oracle.WithBudget(oracle.Func(func(boolean.Set) bool { return true }), 0), reg)
		func() {
			defer func() { recover() }()
			oracle.AskAll(m, qs)
		}()
		if got := reg.CounterValue(obs.MetricMemoMisses); got != 0 {
			t.Errorf("batch misses = %d after budget-0 panic, want 0", got)
		}
	})
}

// atomicCounter is a tiny test helper.
type atomicCounter struct{ v int64 }

func (c *atomicCounter) add(n int64) { atomic.AddInt64(&c.v, n) }
func (c *atomicCounter) load() int64 { return atomic.LoadInt64(&c.v) }
