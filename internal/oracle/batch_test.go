package oracle_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// probeQuestions builds n small questions over u, distinct as long as
// n stays below 2^|u|.
func probeQuestions(u boolean.Universe, n int) []boolean.Set {
	qs := make([]boolean.Set, n)
	for i := range qs {
		qs[i] = boolean.NewSet(boolean.Tuple(i+1).Intersect(u.All()), u.All())
	}
	return qs
}

// TestAskAllSerialFallback pins AskAll's contract for a plain Oracle:
// questions are asked in order, answers are aligned with the input.
func TestAskAllSerialFallback(t *testing.T) {
	u := boolean.MustUniverse(4)
	var asked []string
	o := oracle.Func(func(s boolean.Set) bool {
		asked = append(asked, s.Key())
		return s.Size()%2 == 0
	})
	qs := probeQuestions(u, 5)
	answers := oracle.AskAll(o, qs)
	if len(answers) != len(qs) || len(asked) != len(qs) {
		t.Fatalf("asked %d, answered %d, want %d", len(asked), len(answers), len(qs))
	}
	for i, q := range qs {
		if asked[i] != q.Key() {
			t.Errorf("question %d asked out of order", i)
		}
		if answers[i] != (q.Size()%2 == 0) {
			t.Errorf("answer %d misaligned", i)
		}
	}
	if got := oracle.AskAll(o, nil); got != nil {
		t.Errorf("AskAll(nil) = %v, want nil", got)
	}
}

// TestPoolMatchesSerial pins the pool's core contract: AskBatch over a
// concurrency-safe oracle returns exactly the serial answers, aligned
// with the questions, for any worker count.
func TestPoolMatchesSerial(t *testing.T) {
	u := boolean.MustUniverse(6)
	target := query.MustParse(u, "∀x1x2 → x4 ∃x5x6")
	qs := probeQuestions(u, 40)
	want := oracle.AskAll(oracle.Target(target), qs)
	for _, workers := range []int{1, 2, 7, 64} {
		pool := oracle.Parallel(oracle.Target(target), workers)
		if pool.Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", pool.Workers(), workers)
		}
		got := pool.AskBatch(qs)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d: answer %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
		if pool.Ask(qs[0]) != want[0] {
			t.Errorf("workers=%d: single Ask disagrees with serial", workers)
		}
	}
	if w := oracle.Parallel(oracle.Target(target), 0).Workers(); w != oracle.DefaultWorkers() {
		t.Errorf("Parallel(_, 0).Workers() = %d, want DefaultWorkers %d", w, oracle.DefaultWorkers())
	}
}

// TestPoolRecordsMetrics pins the engine's observability: batches,
// batch sizes, per-batch latency, and the in-flight gauge returning
// to zero.
func TestPoolRecordsMetrics(t *testing.T) {
	u := boolean.MustUniverse(4)
	reg := obs.NewRegistry()
	pool := oracle.ParallelInto(oracle.Target(query.MustParse(u, "∃x1")), 4, reg)
	qs := probeQuestions(u, 9)
	pool.AskBatch(qs)
	pool.AskBatch(qs[:3])
	pool.Ask(qs[0])
	if got := reg.CounterValue(obs.MetricBatches); got != 2 {
		t.Errorf("%s = %d, want 2", obs.MetricBatches, got)
	}
	h := reg.Histogram(obs.MetricBatchSize, obs.BatchSizeBuckets)
	if h.Count() != 2 || h.Sum() != 12 {
		t.Errorf("batch size histogram count=%d sum=%v, want 2/12", h.Count(), h.Sum())
	}
	if reg.Histogram(obs.MetricBatchSeconds, obs.LatencyBuckets).Count() != 2 {
		t.Error("batch latency histogram missed samples")
	}
	if got := reg.Gauge(obs.MetricOracleInFlight).Value(); got != 0 {
		t.Errorf("in-flight gauge = %v after quiescence, want 0", got)
	}
}

// TestPoolPropagatesBudgetPanic pins panic propagation: a Budget
// exhausted mid-batch re-raises ErrBudget on the AskBatch caller with
// exactly Limit questions admitted — never Limit+workers.
func TestPoolPropagatesBudgetPanic(t *testing.T) {
	u := boolean.MustUniverse(4)
	var inner atomic.Int64
	counted := oracle.Func(func(s boolean.Set) bool {
		inner.Add(1)
		return true
	})
	budget := oracle.WithBudget(counted, 5)
	pool := oracle.Parallel(budget, 3)
	recovered := func() (r interface{}) {
		defer func() { r = recover() }()
		pool.AskBatch(probeQuestions(u, 12))
		return nil
	}()
	if _, ok := recovered.(oracle.ErrBudget); !ok {
		t.Fatalf("recovered %v, want ErrBudget", recovered)
	}
	if got := inner.Load(); got != 5 {
		t.Errorf("inner oracle asked %d questions, want exactly the budget 5", got)
	}
}

// TestDriveMatchesSerialStreams pins the stream driver's determinism
// contract: each interleaved stream receives exactly the answers of
// its stand-alone serial run, the observe hook sees every question,
// and the batched rounds reach the oracle.
func TestDriveMatchesSerialStreams(t *testing.T) {
	u := boolean.MustUniverse(6)
	target := query.MustParse(u, "∀x1 → x2 ∃x3x4")
	o := oracle.Target(target)

	// Each stream binary-searches its own slice of questions: answers
	// steer which question is asked next, making the streams adaptive.
	search := func(base int, ask func(boolean.Set) bool) []bool {
		var got []bool
		q := base
		for i := 0; i < 5; i++ {
			a := ask(boolean.NewSet(boolean.Tuple(q+1).Intersect(u.All()), u.All()))
			got = append(got, a)
			if a {
				q = q*2 + 1
			} else {
				q = q * 3
			}
			q %= 61
		}
		return got
	}

	want := make([][]bool, 4)
	for i := range want {
		want[i] = search(i*7, o.Ask)
	}

	var observed atomic.Int64
	got := make([][]bool, 4)
	oracle.Drive(oracle.Parallel(o, 4), 4, func(i int, ask oracle.AskFunc) {
		got[i] = search(i*7, func(s boolean.Set) bool { return ask(s) })
	}, func(i int, s boolean.Set, answer bool) {
		observed.Add(1)
	})
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("stream %d answer %d = %v, want serial %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	if observed.Load() != 20 {
		t.Errorf("observe saw %d questions, want 20", observed.Load())
	}
}

// TestDrivePropagatesStreamPanic pins that a panicking stream unwinds
// every other stream and re-raises on the Drive caller.
func TestDrivePropagatesStreamPanic(t *testing.T) {
	u := boolean.MustUniverse(3)
	o := oracle.Target(query.MustParse(u, "∃x1"))
	recovered := func() (r interface{}) {
		defer func() { r = recover() }()
		oracle.Drive(o, 3, func(i int, ask oracle.AskFunc) {
			ask(boolean.NewSet(u.All()))
			if i == 1 {
				panic("stream bug")
			}
			// The surviving streams keep asking; they must be unwound,
			// not deadlocked.
			for j := 0; j < 100; j++ {
				ask(boolean.NewSet(u.All()))
			}
		}, nil)
		return nil
	}()
	if recovered != "stream bug" {
		t.Fatalf("recovered %v, want the stream's panic", recovered)
	}
}

// TestDrivePropagatesOraclePanic pins that an oracle panic (here an
// exhausted budget) unwinds the streams and re-raises.
func TestDrivePropagatesOraclePanic(t *testing.T) {
	u := boolean.MustUniverse(3)
	budget := oracle.WithBudget(oracle.Target(query.MustParse(u, "∃x1")), 4)
	recovered := func() (r interface{}) {
		defer func() { r = recover() }()
		oracle.Drive(budget, 3, func(i int, ask oracle.AskFunc) {
			for j := 0; j < 50; j++ {
				ask(boolean.NewSet(u.All(), boolean.Tuple(j+1).Intersect(u.All())))
			}
		}, nil)
		return nil
	}()
	if _, ok := recovered.(oracle.ErrBudget); !ok {
		t.Fatalf("recovered %v, want ErrBudget", recovered)
	}
}

// TestMemoBatchDeduplicates pins Memo's AskBatch: duplicate questions
// within one batch, and questions already cached, reach the inner
// oracle exactly once each.
func TestMemoBatchDeduplicates(t *testing.T) {
	u := boolean.MustUniverse(4)
	var inner atomic.Int64
	m := oracle.Memo(oracle.Func(func(s boolean.Set) bool {
		inner.Add(1)
		return s.Size() > 1
	}))
	qs := probeQuestions(u, 4)
	batch := []boolean.Set{qs[0], qs[1], qs[0], qs[2], qs[1]}
	answers := oracle.AskAll(m, batch)
	if inner.Load() != 3 {
		t.Errorf("inner asked %d times, want 3 distinct", inner.Load())
	}
	if answers[0] != answers[2] || answers[1] != answers[4] {
		t.Error("duplicate questions answered inconsistently")
	}
	oracle.AskAll(m, batch) // fully cached now
	if inner.Load() != 3 {
		t.Errorf("cached batch re-asked inner (%d)", inner.Load())
	}
}

// TestBudgetBatchSemantics pins Budget.AskBatch: a batch that fits
// consumes its size; an overrunning batch asks exactly the remaining
// questions and then raises ErrBudget, like the serial path would.
func TestBudgetBatchSemantics(t *testing.T) {
	u := boolean.MustUniverse(4)
	var inner atomic.Int64
	b := oracle.WithBudget(oracle.Func(func(s boolean.Set) bool {
		inner.Add(1)
		return true
	}), 6)
	oracle.AskAll(b, probeQuestions(u, 4))
	if b.Remaining() != 2 {
		t.Fatalf("Remaining = %d after a batch of 4 on budget 6", b.Remaining())
	}
	recovered := func() (r interface{}) {
		defer func() { r = recover() }()
		oracle.AskAll(b, probeQuestions(u, 5))
		return nil
	}()
	if _, ok := recovered.(oracle.ErrBudget); !ok {
		t.Fatalf("recovered %v, want ErrBudget", recovered)
	}
	if inner.Load() != 6 {
		t.Errorf("inner asked %d questions, want exactly the budget 6", inner.Load())
	}
}

// TestNoisyBatchFlipSequence pins the documented per-batch
// determinism: for a fixed seed, a batched Noisy oracle corrupts the
// same positions on every run, because flips are drawn in question
// order after the batch is answered.
func TestNoisyBatchFlipSequence(t *testing.T) {
	u := boolean.MustUniverse(4)
	qs := probeQuestions(u, 32)
	flips := func() []bool {
		pool := oracle.Parallel(oracle.Func(func(boolean.Set) bool { return false }), 4)
		n := oracle.Noisy(pool, 0.5, rand.New(rand.NewSource(7)))
		return oracle.AskAll(n, qs)
	}
	a, b := flips(), flips()
	someFlip := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flip sequence not deterministic at %d", i)
		}
		someFlip = someFlip || a[i]
	}
	if !someFlip {
		t.Error("p=0.5 over 32 questions flipped nothing — rng not consulted?")
	}
}

// TestCounterAndTranscriptBatchAccounting pins that the batched paths
// of Counter and Transcript account exactly like their serial paths.
func TestCounterAndTranscriptBatchAccounting(t *testing.T) {
	u := boolean.MustUniverse(4)
	target := query.MustParse(u, "∃x1x2")
	qs := probeQuestions(u, 7)

	serialC := oracle.Count(oracle.Target(target))
	for _, q := range qs {
		serialC.Ask(q)
	}
	reg := obs.NewRegistry()
	batchC := oracle.CountInto(oracle.Target(target), reg)
	tr := oracle.Record(batchC)
	answers := oracle.AskAll(tr, qs)

	if batchC.Questions != serialC.Questions || batchC.Tuples != serialC.Tuples || batchC.MaxTuples != serialC.MaxTuples {
		t.Errorf("batched counter (%d, %d, %d) != serial (%d, %d, %d)",
			batchC.Questions, batchC.Tuples, batchC.MaxTuples,
			serialC.Questions, serialC.Tuples, serialC.MaxTuples)
	}
	if got := reg.CounterValue(obs.MetricQuestions); got != int64(len(qs)) {
		t.Errorf("%s = %d, want %d", obs.MetricQuestions, got, len(qs))
	}
	entries := tr.Copy()
	if len(entries) != len(qs) {
		t.Fatalf("transcript has %d entries, want %d", len(entries), len(qs))
	}
	for i, e := range entries {
		if e.Question.Key() != qs[i].Key() || e.Answer != answers[i] {
			t.Errorf("transcript entry %d out of order or misanswered", i)
		}
	}
}

// TestPoolOverWrapperStack pins that a batch survives a realistic
// wrapper stack — Transcript over Counter over Memo over Pool — with
// consistent accounting at every layer.
func TestPoolOverWrapperStack(t *testing.T) {
	u := boolean.MustUniverse(5)
	target := query.MustParse(u, "∀x1 → x3 ∃x4x5")
	pool := oracle.Parallel(oracle.Target(target), 4)
	memo := oracle.Memo(pool)
	counter := oracle.Count(memo)
	tr := oracle.Record(counter)

	qs := probeQuestions(u, 20)
	got := oracle.AskAll(tr, qs)
	want := oracle.AskAll(oracle.Target(target), qs)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stacked answer %d = %v, want %v", i, got[i], want[i])
		}
	}
	if counter.Questions != len(qs) || tr.Len() != len(qs) {
		t.Errorf("counter %d / transcript %d, want %d", counter.Questions, tr.Len(), len(qs))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			oracle.AskAll(tr, qs)
		}()
	}
	wg.Wait()
}
