package oracle

import (
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/query"
)

func TestMemoIntoHitMissCounters(t *testing.T) {
	u := boolean.MustUniverse(3)
	reg := obs.NewRegistry()
	m := MemoInto(Target(query.MustParse(u, "∃x1")), reg)
	q1 := boolean.MustParseSet(u, "{100}")
	q2 := boolean.MustParseSet(u, "{010}")

	m.Ask(q1) // miss
	m.Ask(q1) // hit
	m.Ask(q2) // miss
	m.Ask(q2) // hit
	m.Ask(q1) // hit
	if got := reg.CounterValue(obs.MetricMemoMisses); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
	if got := reg.CounterValue(obs.MetricMemoHits); got != 3 {
		t.Errorf("hits = %d, want 3", got)
	}
}

func TestMemoIntoBatchHitMissCounters(t *testing.T) {
	u := boolean.MustUniverse(3)
	reg := obs.NewRegistry()
	m := MemoInto(Target(query.MustParse(u, "∃x1")), reg).(BatchOracle)
	q1 := boolean.MustParseSet(u, "{100}")
	q2 := boolean.MustParseSet(u, "{010}")

	// q1 and q2 lead to the inner oracle (2 misses); the duplicate q1
	// resolves from their answer and counts as the batch's one hit.
	m.AskBatch([]boolean.Set{q1, q1, q2})
	if got := reg.CounterValue(obs.MetricMemoMisses); got != 2 {
		t.Errorf("misses after first batch = %d, want 2", got)
	}
	if got := reg.CounterValue(obs.MetricMemoHits); got != 1 {
		t.Errorf("hits after first batch = %d, want 1", got)
	}

	// Fully cached batch: all hits, no new misses.
	m.AskBatch([]boolean.Set{q2, q1})
	if got := reg.CounterValue(obs.MetricMemoMisses); got != 2 {
		t.Errorf("misses after second batch = %d, want 2", got)
	}
	if got := reg.CounterValue(obs.MetricMemoHits); got != 3 {
		t.Errorf("hits after second batch = %d, want 3", got)
	}
}

func TestBudgetIntoShedCounter(t *testing.T) {
	u := boolean.MustUniverse(3)
	reg := obs.NewRegistry()
	b := WithBudgetInto(Target(query.MustParse(u, "∃x1")), 2, reg)
	q := boolean.MustParseSet(u, "{100}")

	b.Ask(q)
	b.Ask(q)
	func() {
		defer func() {
			if _, ok := recover().(ErrBudget); !ok {
				t.Error("exhausted budget did not panic with ErrBudget")
			}
		}()
		b.Ask(q)
	}()
	if got := reg.CounterValue(obs.MetricBudgetSheds); got != 1 {
		t.Errorf("sheds = %d, want 1", got)
	}
}

func TestBudgetIntoBatchShedCounter(t *testing.T) {
	u := boolean.MustUniverse(3)
	reg := obs.NewRegistry()
	b := WithBudgetInto(Target(query.MustParse(u, "∃x1")), 2, reg)
	qs := make([]boolean.Set, 5)
	for i := range qs {
		qs[i] = boolean.MustParseSet(u, "{100}")
	}
	func() {
		defer func() {
			if _, ok := recover().(ErrBudget); !ok {
				t.Error("overrun batch did not panic with ErrBudget")
			}
		}()
		b.AskBatch(qs)
	}()
	// 2 of 5 fit the budget; the other 3 were shed.
	if got := reg.CounterValue(obs.MetricBudgetSheds); got != 3 {
		t.Errorf("sheds = %d, want 3", got)
	}
	if b.Remaining() != 0 {
		t.Errorf("remaining = %d, want 0", b.Remaining())
	}
}

func TestPoolBatchRecordsPerAskLatency(t *testing.T) {
	u := boolean.MustUniverse(4)
	reg := obs.NewRegistry()
	p := ParallelInto(Target(query.MustParse(u, "∃x1")), 2, reg)
	var qs []boolean.Set
	for _, s := range []string{"{1000}", "{0100}", "{0010}", "{0001}", "{1100}", "{0110}"} {
		qs = append(qs, boolean.MustParseSet(u, s))
	}

	p.AskBatch(qs)
	h := reg.Histogram(obs.MetricOracleAskSeconds, obs.LatencyBuckets)
	if got := h.Count(); got != 6 {
		t.Errorf("ask-latency samples after batch = %d, want 6 (one per question)", got)
	}
	// Serial asks through the pool are not double-timed here — the
	// Counter at the top of the stack owns the serial ask latency.
	p.Ask(qs[0])
	if got := h.Count(); got != 6 {
		t.Errorf("ask-latency samples after serial ask = %d, want 6 still", got)
	}
	if got := reg.Histogram(obs.MetricBatchSeconds, obs.LatencyBuckets).Count(); got != 1 {
		t.Errorf("batch-latency samples = %d, want 1", got)
	}
}
