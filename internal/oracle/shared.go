package oracle

// The shared memo tier: a bounded, concurrency-safe, cross-session
// answer cache. Where Memo lives and dies with a single run, a
// SharedMemo outlives sessions — a qhornd server owns one and threads
// it under every session of the same oracle identity, so a user whose
// target drifts by a clause replays the settled part of the lattice
// for free instead of re-answering it over the wire.
//
// Entries are keyed by (identity, canonical boolean.Set.Key). The
// identity names a user/target intent; distinct identities never
// share answers, so one server-wide tier gives per-user isolation
// under one global memory bound. Replacement is 2Q-style segmented
// LRU — new answers enter a probation segment and are promoted to a
// protected segment on re-use — which keeps one-shot question sweeps
// from flushing the hot working set. Locks are sharded by key hash so
// concurrent sessions rarely contend, and the per-run Memo's
// singleflight contract is preserved across sessions: when two
// sessions of the same identity pose the same question concurrently,
// one leads and the other waits for its answer.

import (
	"sync"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
)

// memoKeySep joins identity and question key; it cannot appear in
// either (identities are caller-chosen strings without control
// characters by convention, Set.Key is decimal digits and commas).
const memoKeySep = "\x1f"

// SharedMemo is the bounded cross-session answer cache. Construct
// with NewSharedMemo or NewSharedMemoInto; the zero value is not
// usable. All methods are safe for concurrent use.
//
// Memory: each cached answer costs one small heap entry plus its key
// string (roughly 100–200 bytes at production tuple sizes), so the
// default qhornd capacity of 1M entries holds a few hundred MB and
// capacities in the millions are practical.
type SharedMemo struct {
	reg      *obs.Registry
	shards   []memoShard
	mask     uint64
	capacity int
}

// NewSharedMemo returns a shared memo tier bounded to capacity cached
// answers (clamped to at least 1), with no metrics.
func NewSharedMemo(capacity int) *SharedMemo {
	return NewSharedMemoInto(capacity, nil)
}

// NewSharedMemoInto is NewSharedMemo with tier accounting on reg:
// qhornd_memo_hits_total, qhornd_memo_misses_total,
// qhornd_memo_evictions_total and the qhornd_memo_size gauge. A nil
// registry degrades to NewSharedMemo.
func NewSharedMemoInto(capacity int, reg *obs.Registry) *SharedMemo {
	if capacity < 1 {
		capacity = 1
	}
	n := memoShardCount(capacity)
	sm := &SharedMemo{
		reg:      reg,
		shards:   make([]memoShard, n),
		mask:     uint64(n - 1),
		capacity: capacity,
	}
	perShard := (capacity + n - 1) / n
	// The protected segment takes ≈ 75% of the shard; probation keeps
	// at least one slot so a full protected segment can never starve
	// new admissions (put evicts from probation first).
	probation := perShard / 4
	if probation < 1 {
		probation = 1
	}
	for i := range sm.shards {
		sh := &sm.shards[i]
		sh.cap = perShard
		sh.protCap = perShard - probation
		sh.entries = map[string]*memoEntry{}
		sh.inflight = map[string]chan struct{}{}
	}
	return sm
}

// memoShardCount picks a power-of-two shard count: one shard per 64
// entries of capacity, capped at 64 shards. Small caches (tests,
// -memo-capacity tuning) collapse to one shard, which makes the
// eviction order globally exact.
func memoShardCount(capacity int) int {
	n := 1
	for n < 64 && n*64 <= capacity {
		n <<= 1
	}
	return n
}

// Capacity returns the bound the tier was constructed with.
func (sm *SharedMemo) Capacity() int { return sm.capacity }

// Len returns the number of answers currently cached across all
// shards and identities.
func (sm *SharedMemo) Len() int {
	n := 0
	for i := range sm.shards {
		sh := &sm.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Update inserts or overwrites the cached answer for (identity, s).
// The amendment path uses it to propagate a user's correction into
// the tier, so later sessions of the same identity see the corrected
// answer instead of the stale one.
func (sm *SharedMemo) Update(identity string, s boolean.Set, answer bool) {
	k := identity + memoKeySep + s.Key()
	sh := sm.shard(k)
	sh.mu.Lock()
	sh.put(k, answer, sm)
	sh.mu.Unlock()
}

// Oracle returns an oracle that serves questions for the given
// identity from the tier, forwarding misses to inner. The returned
// wrapper implements BatchOracle: a batch is answered from the cache
// where possible and the remaining distinct questions are forwarded
// to inner as one deduplicated sub-batch in original order — so with
// a cold tier the inner oracle sees exactly the batches it would have
// seen without the tier (bit-identity), and with a warm tier it only
// ever sees fewer questions. A nil *SharedMemo returns inner
// unchanged.
func (sm *SharedMemo) Oracle(identity string, inner Oracle) Oracle {
	if sm == nil {
		return inner
	}
	return &tierOracle{sm: sm, prefix: identity + memoKeySep, inner: inner}
}

func (sm *SharedMemo) shard(k string) *memoShard {
	// FNV-1a over the full key; identity lands in the hash so the
	// same question under different identities spreads across shards.
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return &sm.shards[h&sm.mask]
}

// memoEntry is one cached answer, threaded on an intrusive list of
// its segment (probation or protected).
type memoEntry struct {
	key        string
	answer     bool
	protected  bool
	prev, next *memoEntry
}

// memoList is an intrusive doubly-linked list, most recent at front.
type memoList struct {
	front, back *memoEntry
	n           int
}

func (l *memoList) pushFront(e *memoEntry) {
	e.prev, e.next = nil, l.front
	if l.front != nil {
		l.front.prev = e
	} else {
		l.back = e
	}
	l.front = e
	l.n++
}

func (l *memoList) remove(e *memoEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.back = e.prev
	}
	e.prev, e.next = nil, nil
	l.n--
}

// memoShard is one lock domain of the tier: a bounded segmented-LRU
// answer map plus the in-flight singleflight markers for its keys.
type memoShard struct {
	mu        sync.Mutex
	cap       int
	protCap   int
	entries   map[string]*memoEntry
	probation memoList
	protected memoList
	inflight  map[string]chan struct{}
}

// lookup returns the cached answer for k and records the use (2Q
// promotion). Caller holds mu.
func (sh *memoShard) lookup(k string) (answer, ok bool) {
	e := sh.entries[k]
	if e == nil {
		return false, false
	}
	sh.touch(e)
	return e.answer, true
}

// touch moves e to the most-recent position: protected entries to the
// protected front, probation entries up into the protected segment
// (demoting its LRU entry back to probation if the segment is full).
// Caller holds mu.
func (sh *memoShard) touch(e *memoEntry) {
	if e.protected {
		sh.protected.remove(e)
		sh.protected.pushFront(e)
		return
	}
	sh.probation.remove(e)
	e.protected = true
	sh.protected.pushFront(e)
	if sh.protected.n > sh.protCap {
		d := sh.protected.back
		sh.protected.remove(d)
		d.protected = false
		sh.probation.pushFront(d)
	}
}

// put inserts or overwrites the answer for k, evicting the shard's
// least valuable entry when over capacity. Caller holds mu.
func (sh *memoShard) put(k string, answer bool, sm *SharedMemo) {
	if e := sh.entries[k]; e != nil {
		e.answer = answer
		sh.touch(e)
		return
	}
	e := &memoEntry{key: k, answer: answer}
	sh.entries[k] = e
	sh.probation.pushFront(e)
	sm.reg.Gauge(obs.MetricMemoTierSize).Add(1)
	if len(sh.entries) > sh.cap {
		victim := sh.probation.back
		if victim != nil {
			sh.probation.remove(victim)
		} else {
			victim = sh.protected.back
			sh.protected.remove(victim)
		}
		delete(sh.entries, victim.key)
		sm.reg.Counter(obs.MetricMemoTierEvictions).Inc()
		sm.reg.Gauge(obs.MetricMemoTierSize).Add(-1)
	}
}

// tierOracle adapts one (identity, inner) pair to the Oracle and
// BatchOracle interfaces over the shared tier. The singleflight
// protocol is the per-run memo's, per shard: hits are counted when a
// question is served from the cache or by joining another session's
// flight; misses only once an answer is actually obtained, so a
// panicking leader (budget, abort) leaves the count untouched and a
// retrying waiter re-elects a leader without inflating it.
type tierOracle struct {
	sm     *SharedMemo
	prefix string
	inner  Oracle
}

// Ask implements Oracle.
func (o *tierOracle) Ask(s boolean.Set) bool {
	k := o.prefix + s.Key()
	sh := o.sm.shard(k)
	for {
		sh.mu.Lock()
		if a, ok := sh.lookup(k); ok {
			sh.mu.Unlock()
			o.sm.reg.Counter(obs.MetricMemoTierHits).Inc()
			return a
		}
		if ch, ok := sh.inflight[k]; ok {
			// Another session of this identity is asking this exact
			// question: wait for its answer instead of double-asking.
			sh.mu.Unlock()
			<-ch
			// Answered — or the leader panicked, in which case the
			// retry elects a new leader.
			continue
		}
		ch := make(chan struct{})
		sh.inflight[k] = ch
		sh.mu.Unlock()
		return o.lead(sh, k, ch, s)
	}
}

// lead asks the inner oracle on behalf of every session waiting on
// key k, then wakes the waiters. The in-flight marker is removed even
// when the inner oracle panics, so no waiter is stranded — crucially,
// an aborted session's flights settle and the waiting sessions fall
// back to their own wire.
func (o *tierOracle) lead(sh *memoShard, k string, ch chan struct{}, s boolean.Set) bool {
	defer func() {
		sh.mu.Lock()
		delete(sh.inflight, k)
		sh.mu.Unlock()
		close(ch)
	}()
	a := o.inner.Ask(s)
	o.sm.reg.Counter(obs.MetricMemoTierMisses).Inc()
	sh.mu.Lock()
	sh.put(k, a, o.sm)
	sh.mu.Unlock()
	return a
}

// AskBatch implements BatchOracle: cached questions are answered from
// the tier, duplicates of questions already in flight wait for the
// existing asker, and the remaining distinct questions are forwarded
// to the inner oracle as one deduplicated sub-batch in original
// order.
func (o *tierOracle) AskBatch(qs []boolean.Set) []bool {
	keys := make([]string, len(qs))
	for i, q := range qs {
		keys[i] = o.prefix + q.Key()
	}
	answers := make([]bool, len(qs))
	pending := make([]int, len(qs))
	for i := range qs {
		pending[i] = i
	}
	// missed marks questions this batch led to the inner oracle, so
	// their own cache resolution on the next pass is not also a hit.
	missed := make([]bool, len(qs))
	var hits int64
	for len(pending) > 0 {
		var (
			still   []int           // unresolved after the cache pass
			leaders []int           // first unresolved index per new key
			chans   []chan struct{} // their in-flight markers
			wait    chan struct{}   // another asker's flight to await
		)
		led := map[string]bool{}
		for _, i := range pending {
			k := keys[i]
			if led[k] {
				still = append(still, i)
				continue
			}
			sh := o.sm.shard(k)
			sh.mu.Lock()
			var a, ok bool
			if missed[i] {
				// This batch led the question itself: read the stored
				// answer without touching recency, so settling one's
				// own miss does not promote the entry out of probation.
				if e := sh.entries[k]; e != nil {
					a, ok = e.answer, true
				}
			} else {
				a, ok = sh.lookup(k)
			}
			if ok {
				sh.mu.Unlock()
				answers[i] = a
				if !missed[i] {
					hits++
				}
				continue
			}
			if ch, ok := sh.inflight[k]; ok {
				sh.mu.Unlock()
				still = append(still, i)
				if wait == nil {
					wait = ch
				}
				continue
			}
			ch := make(chan struct{})
			sh.inflight[k] = ch
			sh.mu.Unlock()
			led[k] = true
			still = append(still, i)
			leaders = append(leaders, i)
			chans = append(chans, ch)
			missed[i] = true
		}
		switch {
		case len(leaders) > 0:
			o.leadBatch(keys, leaders, chans, qs)
		case wait != nil:
			<-wait
		}
		pending = still
	}
	if hits > 0 {
		o.sm.reg.Counter(obs.MetricMemoTierHits).Add(hits)
	}
	return answers
}

// leadBatch asks the inner oracle the deduplicated sub-batch at the
// given leader indices and settles their flights. Misses are counted
// only after the inner oracle actually answered.
func (o *tierOracle) leadBatch(keys []string, leaders []int, chans []chan struct{}, qs []boolean.Set) {
	defer func() {
		for j, i := range leaders {
			sh := o.sm.shard(keys[i])
			sh.mu.Lock()
			delete(sh.inflight, keys[i])
			sh.mu.Unlock()
			close(chans[j])
		}
	}()
	sub := make([]boolean.Set, len(leaders))
	for j, i := range leaders {
		sub[j] = qs[i]
	}
	res := AskAll(o.inner, sub)
	o.sm.reg.Counter(obs.MetricMemoTierMisses).Add(int64(len(leaders)))
	for j, i := range leaders {
		sh := o.sm.shard(keys[i])
		sh.mu.Lock()
		sh.put(keys[i], res[j], o.sm)
		sh.mu.Unlock()
	}
}
