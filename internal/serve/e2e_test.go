package serve_test

// End-to-end harness for the qhornd session server: every test drives
// real HTTP against a listening server and holds the service to the
// repo's core bar — an HTTP-driven learn must be question-for-question
// bit-identical to a direct learn.Run over the same simulated user.
// The direct reference runs the same engine stack (session history +
// batch mode) with a local oracle; the server runs it with the answer
// exchange. Identical recorded histories (order, tuples, answers) and
// identical learned queries prove the network inversion is invisible
// to the algorithms.

import (
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/difffuzz"
	"qhorn/internal/learn"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	engine "qhorn/internal/run"
	"qhorn/internal/serve"
	qsession "qhorn/internal/session"
	"qhorn/internal/verify"
)

// startServer boots a listening server and returns a client for it.
func startServer(t *testing.T, cfg serve.Config) (*serve.Server, *serve.Client) {
	t.Helper()
	srv := serve.New(cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, serve.NewClient(srv.URL())
}

// directLearn is the reference implementation an HTTP-driven learn
// must match bit-for-bit: the same engine, the same session-history
// wrapper, the same batch mode, a local simulated user.
func directLearn(target query.Query, alg engine.Algorithm) (query.Query, []qsession.Entry, int) {
	hist := qsession.New(oracle.Target(target))
	q, _ := learn.Run(target.U, hist, engine.WithAlgorithm(alg), engine.WithBatch())
	return q, hist.Entries(), hist.LiveQuestions
}

// matchHistory asserts the server-side history is identical — same
// length, same order, same questions, same answers — to the direct
// reference.
func matchHistory(t *testing.T, u boolean.Universe, got []serve.HistoryEntry, want []qsession.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("history length %d over HTTP, %d direct", len(got), len(want))
	}
	for i, w := range want {
		wantTuples := make([]string, 0, len(w.Question.Tuples()))
		for _, tu := range w.Question.Tuples() {
			wantTuples = append(wantTuples, u.Format(tu))
		}
		g := got[i]
		if g.Answer != w.Answer {
			t.Fatalf("history[%d]: answer %v over HTTP, %v direct", i, g.Answer, w.Answer)
		}
		if len(g.Tuples) != len(wantTuples) {
			t.Fatalf("history[%d]: %d tuples over HTTP, %d direct", i, len(g.Tuples), len(wantTuples))
		}
		for j := range wantTuples {
			if g.Tuples[j] != wantTuples[j] {
				t.Fatalf("history[%d] tuple %d: %q over HTTP, %q direct", i, j, g.Tuples[j], wantTuples[j])
			}
		}
	}
}

// driveIdentity learns target over HTTP and asserts the run is
// bit-identical to the direct reference.
func driveIdentity(t *testing.T, c *serve.Client, target query.Query, alg engine.Algorithm, opt serve.DriveOptions) {
	t.Helper()
	driveIdentityAs(t, c, target, alg, "", opt)
}

// driveIdentityAs is driveIdentity with an oracle identity: the session
// attaches to the server's shared memo tier as user (empty opts out).
func driveIdentityAs(t *testing.T, c *serve.Client, target query.Query, alg engine.Algorithm, user string, opt serve.DriveOptions) {
	t.Helper()
	want, wantHist, wantLive := directLearn(target, alg)
	info, err := c.Create(serve.CreateRequest{Variables: target.N(), Algorithm: alg.String(), User: user})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	final, err := c.Drive(info.ID, serve.AnswererFor(target.U, oracle.Target(target)), opt)
	if err != nil {
		t.Fatalf("drive: %v", err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("session ended %q (error %q), want done", final.State, final.Error)
	}
	if final.Learned != want.String() {
		t.Fatalf("target %s: learned %q over HTTP, %q direct", target, final.Learned, want)
	}
	if final.LiveQuestions != wantLive {
		t.Fatalf("target %s: %d live questions over HTTP, %d direct", target, final.LiveQuestions, wantLive)
	}
	hist, err := c.History(info.ID)
	if err != nil {
		t.Fatalf("history: %v", err)
	}
	matchHistory(t, target.U, hist, wantHist)
	if err := c.Delete(info.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
}

// targets draws count hidden queries from the difffuzz generators.
func targets(class difffuzz.Class, seed int64, count int) []query.Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]query.Query, count)
	for i := range out {
		out[i] = difffuzz.GenCase(rng, class, 3, 6).Hidden
	}
	return out
}

func identityCount(t *testing.T) int {
	if testing.Short() {
		return 5
	}
	return 20
}

func TestE2EIdentityQhorn1(t *testing.T) {
	_, c := startServer(t, serve.Config{})
	for _, target := range targets(difffuzz.ClassQhorn1, 1, identityCount(t)) {
		driveIdentity(t, c, target, engine.Qhorn1, serve.DriveOptions{Poll: 2 * time.Second})
	}
}

func TestE2EIdentityRolePreserving(t *testing.T) {
	_, c := startServer(t, serve.Config{})
	for _, target := range targets(difffuzz.ClassRP, 2, identityCount(t)) {
		driveIdentity(t, c, target, engine.RolePreserving, serve.DriveOptions{Poll: 2 * time.Second})
	}
}

// TestE2EOutOfOrderAnswers shuffles each batch's answer order and
// splits it across single-answer deliveries: the learn must still be
// bit-identical, because answers are keyed, not positional.
func TestE2EOutOfOrderAnswers(t *testing.T) {
	_, c := startServer(t, serve.Config{})
	rng := rand.New(rand.NewSource(7))
	n := 3
	if testing.Short() {
		n = 2
	}
	for _, target := range targets(difffuzz.ClassQhorn1, 3, n) {
		driveIdentity(t, c, target, engine.Qhorn1, serve.DriveOptions{
			Poll:       2 * time.Second,
			Rng:        rng,
			MaxPerPost: 1,
		})
	}
}

// TestE2ECrashResume kills a session mid-learn and resumes it from its
// snapshot on a brand-new server: the recorded answers replay for
// free, only the in-flight batch is re-asked, and the completed run is
// bit-identical to a direct learn.
func TestE2ECrashResume(t *testing.T) {
	u, err := boolean.NewUniverse(5)
	if err != nil {
		t.Fatal(err)
	}
	target, err := query.Parse(u, "Ax1 -> x2 Ax3 -> x4 Ex5")
	if err != nil {
		t.Fatal(err)
	}
	want, wantHist, _ := directLearn(target, engine.Qhorn1)
	answer := serve.AnswererFor(u, oracle.Target(target))

	_, c := startServer(t, serve.Config{})
	info, err := c.Create(serve.CreateRequest{Variables: 5, Algorithm: "qhorn1"})
	if err != nil {
		t.Fatal(err)
	}
	// Answer the first batch only, then wait for the next batch to be
	// posted so the session is quiescent (awaiting) for the snapshot.
	qb, err := c.Questions(info.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if qb.State != serve.StateAwaiting || len(qb.Questions) == 0 {
		t.Fatalf("first poll: state %q with %d questions", qb.State, len(qb.Questions))
	}
	answers := map[string]bool{}
	for _, q := range qb.Questions {
		a, err := answer(q)
		if err != nil {
			t.Fatal(err)
		}
		answers[q.Key] = a
	}
	if _, err := c.Answer(info.ID, answers); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		qb, err = c.Questions(info.ID, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if qb.State == serve.StateAwaiting && len(qb.Questions) > 0 {
			break
		}
		if qb.State == serve.StateDone {
			t.Fatal("session finished after one batch; the crash/resume test needs a longer run")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no second batch appeared; state %q", qb.State)
		}
	}
	snap, err := c.Snapshot(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	recorded := len(answers)                  // history at snapshot = the settled first batch
	if err := c.Delete(info.ID); err != nil { // the "crash"
		t.Fatal(err)
	}

	// Resume on a brand-new server.
	_, c2 := startServer(t, serve.Config{})
	resumed, err := c2.Resume(snap)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if resumed.QuestionsOnRecord != recorded {
		t.Fatalf("resumed with %d questions on record, want %d", resumed.QuestionsOnRecord, recorded)
	}
	final, err := c2.Drive(resumed.ID, answer, serve.DriveOptions{Poll: 2 * time.Second})
	if err != nil {
		t.Fatalf("drive resumed: %v", err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("resumed session ended %q (error %q)", final.State, final.Error)
	}
	if final.Learned != want.String() {
		t.Fatalf("resumed learn %q, direct %q", final.Learned, want)
	}
	if wantTotal := len(wantHist); final.LiveQuestions != wantTotal-recorded {
		t.Fatalf("resumed run asked %d live questions, want %d (replays are free)",
			final.LiveQuestions, wantTotal-recorded)
	}
	hist, err := c2.History(final.ID)
	if err != nil {
		t.Fatal(err)
	}
	matchHistory(t, u, hist, wantHist)
}

// TestE2EVerify runs a verification session over HTTP and matches the
// verdict — correctness, question count, disagreement set — against a
// direct verify run.
func TestE2EVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_, c := startServer(t, serve.Config{})
	n := 5
	if testing.Short() {
		n = 2
	}
	for i := 0; i < n; i++ {
		cs := difffuzz.GenCase(rng, difffuzz.ClassVerify, 3, 5)
		hidden, given := cs.Hidden, cs.Given
		wantRes, err := verify.Run(given, qsession.New(oracle.Target(hidden)), engine.WithBatch())
		if err != nil {
			t.Fatal(err)
		}
		info, err := c.Create(serve.CreateRequest{
			Variables: given.N(),
			Mode:      serve.ModeVerify,
			Given:     given.String(),
		})
		if err != nil {
			t.Fatalf("create verify: %v", err)
		}
		final, err := c.Drive(info.ID, serve.AnswererFor(given.U, oracle.Target(hidden)), serve.DriveOptions{Poll: 2 * time.Second})
		if err != nil {
			t.Fatalf("drive verify: %v", err)
		}
		if final.State != serve.StateDone || final.Verify == nil {
			t.Fatalf("verify session ended %q (verdict %v)", final.State, final.Verify)
		}
		if final.Verify.Correct != wantRes.Correct {
			t.Fatalf("case %s: correct=%v over HTTP, %v direct", cs, final.Verify.Correct, wantRes.Correct)
		}
		if final.Verify.QuestionsAsked != wantRes.QuestionsAsked {
			t.Fatalf("case %s: %d questions over HTTP, %d direct", cs, final.Verify.QuestionsAsked, wantRes.QuestionsAsked)
		}
		if len(final.Verify.Disagreements) != len(wantRes.Disagreements) {
			t.Fatalf("case %s: %d disagreements over HTTP, %d direct",
				cs, len(final.Verify.Disagreements), len(wantRes.Disagreements))
		}
		for j, d := range wantRes.Disagreements {
			if final.Verify.Disagreements[j].Key != d.Question.Set.Key() {
				t.Fatalf("case %s: disagreement %d key mismatch", cs, j)
			}
		}
	}
}

// TestE2EAmend runs the paper's §5 revision loop over HTTP: a user
// misanswers one question, the learn completes wrong, the user flips
// the recorded answer, and the relaunched learner — replaying the
// corrected history for free — converges to the honest result.
func TestE2EAmend(t *testing.T) {
	u, err := boolean.NewUniverse(4)
	if err != nil {
		t.Fatal(err)
	}
	target, err := query.Parse(u, "Ax1 -> x2 Ex3")
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := directLearn(target, engine.Qhorn1)
	honest := serve.AnswererFor(u, oracle.Target(target))

	_, c := startServer(t, serve.Config{})
	info, err := c.Create(serve.CreateRequest{Variables: 4, Algorithm: "qhorn1"})
	if err != nil {
		t.Fatal(err)
	}
	// Lie on exactly one question, remembering which.
	var liedKey string
	liar := func(q serve.WireQuestion) (bool, error) {
		a, err := honest(q)
		if err != nil {
			return false, err
		}
		if liedKey == "" {
			liedKey = q.Key
			return !a, nil
		}
		return a, nil
	}
	noisy, err := c.Drive(info.ID, liar, serve.DriveOptions{Poll: 2 * time.Second})
	if err != nil {
		t.Fatalf("noisy drive: %v", err)
	}
	if noisy.State != serve.StateDone {
		t.Fatalf("noisy session ended %q (error %q)", noisy.State, noisy.Error)
	}
	if liedKey == "" {
		t.Fatal("the liar never got a question")
	}

	// Flip the mistaken answer; the learner relaunches over the
	// corrected history.
	amended, err := c.Amend(info.ID, serve.AmendRequest{Key: liedKey})
	if err != nil {
		t.Fatalf("amend: %v", err)
	}
	if amended.Runs != 2 {
		t.Fatalf("amended session reports %d runs, want 2", amended.Runs)
	}
	final, err := c.Drive(info.ID, honest, serve.DriveOptions{Poll: 2 * time.Second})
	if err != nil {
		t.Fatalf("honest drive: %v", err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("amended session ended %q (error %q)", final.State, final.Error)
	}
	if final.Learned != want.String() {
		t.Fatalf("after amendment learned %q, want %q", final.Learned, want)
	}
	// The amended entry must be flagged in the history.
	hist, err := c.History(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	foundAmended := false
	for _, e := range hist {
		if e.Amended {
			foundAmended = true
		}
	}
	if !foundAmended {
		t.Fatal("no history entry is flagged amended")
	}
}

// TestE2EMetrics checks the server's own telemetry after real traffic:
// the qhornd_* series are present on /metrics with plausible values.
func TestE2EMetrics(t *testing.T) {
	srv, c := startServer(t, serve.Config{})
	target := targets(difffuzz.ClassQhorn1, 5, 1)[0]
	driveIdentity(t, c, target, engine.Qhorn1, serve.DriveOptions{Poll: 2 * time.Second})

	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	for _, series := range []string{
		"qhornd_sessions_active",
		"qhornd_questions_outstanding",
		"qhornd_answer_latency_seconds",
		`qhornd_sessions_total{outcome="done"}`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
	if reg := srv.Registry(); reg.CounterValue(obs.MetricServeSessions, "outcome", "done") < 1 {
		t.Errorf("done-outcome counter not incremented")
	}
}
