package serve_test

// Load and race coverage for the qhornd server: many concurrent
// sessions across shards, answerers with randomized delays and
// shuffled partial deliveries, interleaved state polls, and a clean
// shutdown with sessions still in flight. Run under -race this is the
// strongest concurrency evidence the package has; the correctness bar
// stays absolute — every session must finish with the exact query a
// direct learn produces, which is impossible if any answer is lost or
// any question duplicated.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"qhorn/internal/difffuzz"
	"qhorn/internal/oracle"
	engine "qhorn/internal/run"
	"qhorn/internal/serve"
)

func TestLoadConcurrentSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	sessions := 200
	srv, c := startServer(t, serve.Config{Shards: 4})

	type job struct {
		target  int // index into ts
		err     error
		learned string
		want    string
	}
	ts := targets(difffuzz.ClassQhorn1, 42, sessions)
	results := make([]job, sessions)

	// Interleaved observers: poll the session list and per-session
	// info while the fleet runs, exercising the read paths against
	// live mutation.
	stopPolls := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stopPolls:
				return
			default:
			}
			list, err := c.List()
			if err != nil {
				t.Errorf("list: %v", err)
				return
			}
			for i, in := range list.Sessions {
				if i >= 5 {
					break
				}
				if _, err := c.Info(in.ID); err != nil && !serve.IsStatus(err, 404) {
					t.Errorf("info: %v", err)
					return
				}
				if _, err := c.History(in.ID); err != nil && !serve.IsStatus(err, 404) {
					t.Errorf("history: %v", err)
					return
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			target := ts[i]
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			want, _, _ := directLearn(target, engine.Qhorn1)
			results[i].want = want.String()
			info, err := c.Create(serve.CreateRequest{Variables: target.N(), Algorithm: "qhorn1"})
			if err != nil {
				results[i].err = err
				return
			}
			final, err := c.Drive(info.ID, serve.AnswererFor(target.U, oracle.Target(target)), serve.DriveOptions{
				Poll:       time.Second,
				Rng:        rng,
				MaxPerPost: 1 + rng.Intn(3),
				Delay:      func() time.Duration { return time.Duration(rng.Intn(500)) * time.Microsecond },
			})
			if err != nil {
				results[i].err = err
				return
			}
			if final.State != serve.StateDone {
				results[i].err = &serve.StatusError{Status: 0, Msg: "state " + final.State + ": " + final.Error}
				return
			}
			results[i].learned = final.Learned
			// No duplicate questions: the recorded history must hold
			// distinct keys (the session replays repeats internally).
			hist, err := c.History(info.ID)
			if err != nil {
				results[i].err = err
				return
			}
			seen := map[string]bool{}
			for _, e := range hist {
				k := ""
				for _, tu := range e.Tuples {
					k += tu + ","
				}
				if seen[k] {
					results[i].err = &serve.StatusError{Msg: "duplicate question in history: " + k}
					return
				}
				seen[k] = true
			}
		}(i)
	}
	wg.Wait()
	close(stopPolls)
	pollWG.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("session %d (target %s): %v", i, ts[i], r.err)
		}
		if r.learned != r.want {
			t.Fatalf("session %d: learned %q, direct learn gives %q — an answer was lost or misrouted", i, r.learned, r.want)
		}
	}

	// Every question posted was answered: the outstanding gauge is
	// back to zero and no session is still active.
	if v := srv.Registry().Gauge("qhornd_questions_outstanding").Value(); v != 0 {
		t.Errorf("outstanding gauge %v after all sessions finished, want 0", v)
	}
	if v := srv.Registry().Gauge("qhornd_sessions_active").Value(); v != 0 {
		t.Errorf("active gauge %v after all sessions finished, want 0", v)
	}
}

// TestLoadShutdownWithInFlight closes the server while sessions are
// blocked awaiting answers: Close must abort every learner, wait for
// the goroutines, and leave the sessions failed rather than leaking.
func TestLoadShutdownWithInFlight(t *testing.T) {
	sessions := 20
	if testing.Short() {
		sessions = 5
	}
	srv, c := startServer(t, serve.Config{Shards: 2})
	ids := make([]string, 0, sessions)
	ts := targets(difffuzz.ClassQhorn1, 77, sessions)
	for i := 0; i < sessions; i++ {
		info, err := c.Create(serve.CreateRequest{Variables: ts[i].N(), Algorithm: "qhorn1"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	// Wait until each session has posted its first batch (learner
	// blocked in the exchange), then shut down with everything in
	// flight.
	for _, id := range ids {
		qb, err := c.Questions(id, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if qb.State != serve.StateAwaiting {
			t.Fatalf("session %s in state %q before shutdown, want awaiting", id, qb.State)
		}
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return with sessions in flight")
	}
	// All learner goroutines unwound through the abort path.
	if v := srv.Registry().Gauge("qhornd_sessions_active").Value(); v != 0 {
		t.Errorf("active gauge %v after shutdown, want 0", v)
	}
	if v := srv.Registry().Gauge("qhornd_questions_outstanding").Value(); v != 0 {
		t.Errorf("outstanding gauge %v after shutdown, want 0", v)
	}
	if got := srv.Registry().CounterValue("qhornd_sessions_total", "outcome", "aborted"); got != int64(sessions) {
		t.Errorf("aborted outcome counter %d, want %d", got, sessions)
	}
	// New sessions are refused once closed.
	if _, err := c.Create(serve.CreateRequest{Variables: 3}); err == nil {
		t.Error("create after Close succeeded, want refusal")
	}
}
