package serve

import "encoding/json"

// Wire types of the qhornd session API (docs/SERVICE.md). Tuples
// travel in the paper's fixed-width notation ("0110", leftmost x1);
// questions are keyed by the canonical boolean.Set.Key, which is also
// the answer key, so answers may arrive out of order and across
// batches without ambiguity.

// CreateRequest is the body of POST /sessions.
type CreateRequest struct {
	// Variables sizes the universe (ignored when resuming: the
	// snapshot's history records it).
	Variables int `json:"variables,omitempty"`
	// Algorithm is "qhorn1" (default) or "rp".
	Algorithm string `json:"algorithm,omitempty"`
	// Mode is "learn" (default) or "verify".
	Mode string `json:"mode,omitempty"`
	// Given is the query under verification (verify mode), in the
	// paper's shorthand ("Ax1x2 -> x3 Ex4").
	Given string `json:"given,omitempty"`
	// Budget caps the live questions of the session: 0 takes the
	// server default, negative is unlimited.
	Budget int `json:"budget,omitempty"`
	// User is the oracle identity of the answering user. Sessions of
	// the same user share the server's cross-session memo tier —
	// questions one session settled are answered from the cache in
	// later sessions — while distinct users never share answers.
	// Empty opts the session out of the tier.
	User string `json:"user,omitempty"`
	// Snapshot resumes a persisted session instead of starting fresh;
	// every other field is taken from the snapshot.
	Snapshot *Snapshot `json:"snapshot,omitempty"`
}

// Snapshot is the persisted form of a session: enough to resume the
// run on any qhornd after a crash or a client-side save. History is
// the session.EncodeJSON payload; recorded answers replay for free on
// resume, and only the batch that was in flight at snapshot time is
// re-asked.
type Snapshot struct {
	Version   int             `json:"qhornd_snapshot"`
	Mode      string          `json:"mode"`
	Algorithm string          `json:"algorithm"`
	Given     string          `json:"given,omitempty"`
	Budget    int             `json:"budget"` // remaining at snapshot; -1 unlimited
	User      string          `json:"user,omitempty"`
	History   json.RawMessage `json:"history"`
}

// SessionInfo is the state document of GET /sessions/{id}.
type SessionInfo struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Mode      string `json:"mode"`
	Algorithm string `json:"algorithm"`
	Variables int    `json:"variables"`
	Given     string `json:"given,omitempty"`
	User      string `json:"user,omitempty"`
	// Runs counts learner launches: 1, plus one per amend relaunch.
	Runs int `json:"runs"`
	// Outstanding is the number of unanswered questions of the
	// current batch.
	Outstanding int `json:"outstanding"`
	// QuestionsOnRecord is the interaction-history length;
	// LiveQuestions counts the ones the current run asked over the
	// wire (replays after amend/resume are free).
	QuestionsOnRecord int  `json:"questions_on_record"`
	LiveQuestions     int  `json:"live_questions"`
	BudgetRemaining   *int `json:"budget_remaining,omitempty"`
	// Learned is the learned query in the paper's shorthand (learn
	// mode, state done).
	Learned string      `json:"learned,omitempty"`
	Stats   *StatsInfo  `json:"stats,omitempty"`
	Verify  *VerifyInfo `json:"verify,omitempty"`
	// Revision reports the last run's revision fast path, when an
	// amendment was repaired through internal/revise instead of a full
	// relearn.
	Revision *RevisionInfo `json:"revision,omitempty"`
	// Error describes why a failed session failed.
	Error string `json:"error,omitempty"`
}

// RevisionInfo is the question breakdown of an amend run that took
// the revision fast path: verification passes plus targeted repair of
// the damaged sub-lattice, escalating to a full relearn only when the
// damage attribution under-approximated.
type RevisionInfo struct {
	VerificationQuestions int  `json:"verification_questions"`
	RepairQuestions       int  `json:"repair_questions"`
	Escalated             bool `json:"escalated"`
}

// StatsInfo is the per-phase question breakdown of a finished learning
// run (run.Stats).
type StatsInfo struct {
	HeadQuestions        int `json:"head_questions"`
	BodyQuestions        int `json:"body_questions"`
	ExistentialQuestions int `json:"existential_questions"`
	Total                int `json:"total"`
}

// VerifyInfo is the verdict of a finished verification run.
type VerifyInfo struct {
	Correct        bool           `json:"correct"`
	QuestionsAsked int            `json:"questions_asked"`
	Disagreements  []WireQuestion `json:"disagreements,omitempty"`
}

// WireQuestion is one membership question on the wire.
type WireQuestion struct {
	// Key is the canonical boolean.Set.Key — the answer key.
	Key string `json:"key"`
	// Tuples are the question's tuples in fixed-width notation.
	Tuples []string `json:"tuples"`
}

// QuestionBatch is the body of GET /sessions/{id}/questions: the
// outstanding questions, or an empty list when the session is
// computing or finished.
type QuestionBatch struct {
	State     string         `json:"state"`
	Questions []WireQuestion `json:"questions"`
}

// AnswerRequest is the body of POST /sessions/{id}/answers: answers
// keyed by question key, in any order, possibly partial. A single-
// question client may instead send {"key": ..., "answer": ...}; both
// forms may appear in one body and are merged.
type AnswerRequest struct {
	Answers map[string]bool `json:"answers,omitempty"`
	// Key/Answer are the single-question form.
	Key    string `json:"key,omitempty"`
	Answer *bool  `json:"answer,omitempty"`
}

// AnswerReport is the response to an answer delivery. Duplicate
// answers (retries of settled questions) are counted, not errors, so
// at-least-once clients are safe; unknown keys are listed. When the
// session died (deleted, server shutdown), AbortReason says so —
// otherwise a delivery racing an abort would report legitimately
// in-flight answers as Unknown with no signal the batch is gone.
type AnswerReport struct {
	Accepted    int      `json:"accepted"`
	Duplicate   int      `json:"duplicate"`
	Unknown     []string `json:"unknown,omitempty"`
	Outstanding int      `json:"outstanding"`
	State       string   `json:"state"`
	AbortReason string   `json:"abort_reason,omitempty"`
	// Next is the fused-mode payload: POST /answers?wait=D responds,
	// once the delivered batch settles, with the next outstanding batch
	// (long-polled up to D) in the same round trip, halving the per-
	// batch HTTP cost of a drive loop. Absent without ?wait.
	Next *QuestionBatch `json:"next,omitempty"`
}

// HistoryEntry is one recorded question of GET /sessions/{id}/history.
type HistoryEntry struct {
	Index   int      `json:"index"`
	Tuples  []string `json:"tuples"`
	Answer  bool     `json:"answer"`
	Amended bool     `json:"amended,omitempty"`
}

// AmendRequest is the body of POST /sessions/{id}/amend: flip the
// recorded answer at Index (history order) or with the given Key,
// then rerun over the corrected history. Strategy selects how:
//
//	""         auto — the revision fast path when eligible (a learn
//	           session of the role-preserving algorithm with a prior
//	           learned query), else a full relearn
//	"relearn"  always a full relearn
//	"revise"   demand the fast path; 409 when the session is not
//	           eligible
type AmendRequest struct {
	Index    *int   `json:"index,omitempty"`
	Key      string `json:"key,omitempty"`
	Strategy string `json:"strategy,omitempty"`
}

// SessionList is the body of GET /sessions.
type SessionList struct {
	Sessions []SessionInfo `json:"sessions"`
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}
