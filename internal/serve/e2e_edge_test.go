package serve_test

// Race coverage for the exchange/deliver edges the load tests don't
// reach deterministically: a delivery racing the session's deletion, a
// second delivery racing the batch-settling close(batchReady), and the
// questions long-poll waking promptly when the session aborts. All of
// these run under -race in CI; the assertions pin the atomicity
// contract of deliver (it holds the session lock, so a delivery either
// wholly precedes or wholly follows an abort — never straddles it).

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"qhorn/internal/difffuzz"
	"qhorn/internal/oracle"
	engine "qhorn/internal/run"
	"qhorn/internal/serve"
)

// firstBatchAnswers polls the session's first outstanding batch and
// evaluates it without delivering.
func firstBatchAnswers(t *testing.T, c *serve.Client, id string, answer serve.Answerer) map[string]bool {
	t.Helper()
	qb, err := c.Questions(id, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if qb.State != serve.StateAwaiting || len(qb.Questions) == 0 {
		t.Fatalf("first poll: state %q with %d questions", qb.State, len(qb.Questions))
	}
	answers := map[string]bool{}
	for _, q := range qb.Questions {
		a, err := answer(q)
		if err != nil {
			t.Fatal(err)
		}
		answers[q.Key] = a
	}
	return answers
}

// TestE2EDeliverRacesDelete races a full-batch delivery against the
// session's deletion. Whatever the interleaving, the delivery must be
// atomic: every answer accepted (delete lost the race to the lock), or
// every answer unknown with the abort reason attached, or a clean 404
// (delete removed the session before the lookup).
func TestE2EDeliverRacesDelete(t *testing.T) {
	_, c := startServer(t, serve.Config{})
	rounds := 12
	if testing.Short() {
		rounds = 4
	}
	for i := 0; i < rounds; i++ {
		target := targets(difffuzz.ClassQhorn1, int64(50+i), 1)[0]
		honest := serve.AnswererFor(target.U, oracle.Target(target))
		info, err := c.Create(serve.CreateRequest{Variables: target.N(), Algorithm: "qhorn1"})
		if err != nil {
			t.Fatal(err)
		}
		answers := firstBatchAnswers(t, c, info.ID, honest)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			rep, err := c.Answer(info.ID, answers)
			if err != nil {
				if !serve.IsStatus(err, http.StatusNotFound) {
					t.Errorf("racing delivery: %v", err)
				}
				return
			}
			if got := rep.Accepted + rep.Duplicate + len(rep.Unknown); got != len(answers) {
				t.Errorf("racing delivery accounted for %d answers, sent %d", got, len(answers))
			}
			if len(rep.Unknown) > 0 {
				if rep.AbortReason == "" {
					t.Errorf("delivery lost %d answers to the abort with no abort reason", len(rep.Unknown))
				}
				if rep.Accepted != 0 {
					t.Errorf("delivery straddled the abort: %d accepted, %d unknown", rep.Accepted, len(rep.Unknown))
				}
			}
		}()
		go func() {
			defer wg.Done()
			if err := c.Delete(info.ID); err != nil {
				t.Errorf("racing delete: %v", err)
			}
		}()
		wg.Wait()
		if _, err := c.Info(info.ID); !serve.IsStatus(err, http.StatusNotFound) {
			t.Fatalf("session survived its deletion: %v", err)
		}
	}
}

// TestE2EDoubleDeliverRace posts the same full batch from two clients
// at once — the at-least-once retry pattern. Exactly one delivery may
// settle each question (the other sees duplicates), the batch-settling
// close(batchReady) must fire once, and the session must still finish
// bit-identical to a direct learn.
func TestE2EDoubleDeliverRace(t *testing.T) {
	_, c := startServer(t, serve.Config{})
	rounds := 8
	if testing.Short() {
		rounds = 3
	}
	for i := 0; i < rounds; i++ {
		target := targets(difffuzz.ClassQhorn1, int64(70+i), 1)[0]
		want, _, _ := directLearn(target, engine.Qhorn1)
		honest := serve.AnswererFor(target.U, oracle.Target(target))
		info, err := c.Create(serve.CreateRequest{Variables: target.N(), Algorithm: "qhorn1"})
		if err != nil {
			t.Fatal(err)
		}
		answers := firstBatchAnswers(t, c, info.ID, honest)
		reports := make([]serve.AnswerReport, 2)
		var wg sync.WaitGroup
		for j := range reports {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				rep, err := c.Answer(info.ID, answers)
				if err != nil {
					t.Errorf("delivery %d: %v", j, err)
					return
				}
				reports[j] = rep
			}(j)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		accepted := reports[0].Accepted + reports[1].Accepted
		duplicate := reports[0].Duplicate + reports[1].Duplicate
		if accepted != len(answers) || duplicate != len(answers) {
			t.Fatalf("double delivery: %d accepted, %d duplicate across both (want %d each)",
				accepted, duplicate, len(answers))
		}
		if len(reports[0].Unknown)+len(reports[1].Unknown) != 0 {
			t.Fatalf("double delivery reported unknown keys: %v %v", reports[0].Unknown, reports[1].Unknown)
		}
		final, err := c.Drive(info.ID, honest, serve.DriveOptions{Poll: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if final.State != serve.StateDone || final.Learned != want.String() {
			t.Fatalf("after double delivery: state %q, learned %q, want done %q", final.State, final.Learned, want)
		}
		if err := c.Delete(info.ID); err != nil {
			t.Fatal(err)
		}
	}
}

// TestE2ELongPollReturnsPromptlyOnAbort holds a 10-second long-poll
// against a session while its server shuts down: the poller must
// observe the failed state within a couple of seconds, because abort
// transitions wake every parked long-poll rather than letting it sleep
// out its wait.
func TestE2ELongPollReturnsPromptlyOnAbort(t *testing.T) {
	srv := serve.New(serve.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Close()
	c := serve.NewClient(hs.URL)
	target := targets(difffuzz.ClassQhorn1, 90, 1)[0]
	info, err := c.Create(serve.CreateRequest{Variables: target.N(), Algorithm: "qhorn1"})
	if err != nil {
		t.Fatal(err)
	}
	if qb, err := c.Questions(info.ID, 5*time.Second); err != nil || qb.State != serve.StateAwaiting {
		t.Fatalf("first poll: %v (state %q)", err, qb.State)
	}
	observed := make(chan time.Duration, 1)
	errs := make(chan error, 1)
	start := time.Now()
	go func() {
		for {
			qb, err := c.Questions(info.ID, 10*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if qb.State == serve.StateFailed {
				observed <- time.Since(start)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-observed:
		if d > 5*time.Second {
			t.Fatalf("poller needed %v to observe the abort; parked long-polls did not wake", d)
		}
	case err := <-errs:
		t.Fatalf("poller: %v", err)
	case <-time.After(8 * time.Second):
		t.Fatal("poller never observed the aborted session")
	}
}
