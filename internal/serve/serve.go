// Package serve is the qhornd session server: learning-as-a-service
// over HTTP (docs/SERVICE.md). It hosts many concurrent learn/verify
// sessions, each a resumable state machine (session.go) whose learner
// runs the ordinary composable engine (internal/run) against an
// answer exchange instead of a local user — questions go out as
// batches over GET /sessions/{id}/questions, answers come back out of
// order over POST /sessions/{id}/answers, keyed by canonical
// boolean.Set.Key.
//
// Sessions shard by ID hash across fixed worker shards, each with its
// own lock, so lookups never contend globally. Admission control is
// two-layered: a max-sessions gate sheds new sessions with 429, and
// the per-session question budget (the engine's oracle.Budget
// wrapper) bounds what one session can cost. The observability plane
// (internal/obs) is mounted on the same mux: /metrics, /healthz,
// /spans, /progress and /debug/pprof come from obs.Server, extended
// with the qhornd_* series (sessions active, questions outstanding,
// answer latency, outcomes, admission rejections).
package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/run"
)

// Config sizes a Server. The zero value is usable: DefaultShards
// shards, unlimited sessions, DefaultBudget questions per session.
type Config struct {
	// Shards is the session-table shard count; <= 0 selects
	// DefaultShards.
	Shards int
	// MaxSessions caps concurrently running sessions; creations
	// beyond it are shed with 429. <= 0 is unlimited.
	MaxSessions int
	// Budget is the default per-session live-question cap, applied
	// when a CreateRequest leaves Budget zero; <= 0 is unlimited.
	Budget int
	// MemoCapacity bounds the server's shared cross-session memo tier
	// (answers cached across sessions of the same user identity): 0
	// selects DefaultMemoCapacity, negative disables the tier.
	MemoCapacity int
	// Obs, when non-nil, is the observability server to mount;
	// otherwise one is created with FlightSpans capacity.
	Obs *obs.Server
	// FlightSpans sizes the created flight recorder (ignored when Obs
	// is provided); <= 0 selects the obs default.
	FlightSpans int
	// Logf receives server diagnostics (learner panics, shutdown);
	// nil discards them.
	Logf func(format string, args ...interface{})
}

// DefaultShards is the shard count a zero Config selects.
const DefaultShards = 8

// DefaultMemoCapacity is the shared memo tier bound a zero Config
// selects: a million cached answers, a few hundred MB at production
// tuple sizes.
const DefaultMemoCapacity = 1 << 20

// Server is the qhornd HTTP daemon. Create with New, mount Handler
// (or Start a listener), and Close to abort in-flight sessions and
// wait for their learner goroutines.
type Server struct {
	cfg    Config
	obs    *obs.Server
	reg    *obs.Registry
	tracer *obs.Tracer
	mux    *http.ServeMux

	shards      []*shard
	memo        *oracle.SharedMemo // nil when MemoCapacity < 0
	outstanding *obs.Gauge
	activeGauge *obs.Gauge

	admitMu sync.Mutex
	active  int
	closed  bool
	idSeq   uint64

	wg sync.WaitGroup

	srv *http.Server
	ln  net.Listener
}

// shard is one lock-scoped slice of the session table.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*session
}

// New builds a server over the config.
func New(cfg Config) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	o := cfg.Obs
	if o == nil {
		o = obs.NewServer(nil, nil, obs.NewFlightRecorder(cfg.FlightSpans))
	}
	s := &Server{
		cfg:    cfg,
		obs:    o,
		reg:    o.Registry(),
		tracer: o.SpanTracer(),
		shards: make([]*shard, cfg.Shards),
	}
	for i := range s.shards {
		s.shards[i] = &shard{sessions: map[string]*session{}}
	}
	if cfg.MemoCapacity >= 0 {
		capacity := cfg.MemoCapacity
		if capacity == 0 {
			capacity = DefaultMemoCapacity
		}
		s.memo = oracle.NewSharedMemoInto(capacity, s.reg)
		s.reg.Describe(obs.MetricMemoTierHits, "questions the shared memo tier answered from cache")
		s.reg.Describe(obs.MetricMemoTierMisses, "questions the shared memo tier forwarded and got answered")
		s.reg.Describe(obs.MetricMemoTierEvictions, "answers evicted by the shared memo tier's 2Q policy")
		s.reg.Describe(obs.MetricMemoTierSize, "answers currently cached by the shared memo tier")
	}
	s.reg.Describe(obs.MetricServeSessionsActive, "live qhornd sessions (learner goroutine running)")
	s.reg.Describe(obs.MetricServeQuestionsOutstanding, "questions posted to answerers and not yet answered")
	s.reg.Describe(obs.MetricServeAnswerSeconds, "remote answer latency from question posting to delivery")
	s.reg.Describe(obs.MetricServeSessions, "finished session runs by outcome")
	s.reg.Describe(obs.MetricServeRejected, "session creations shed by the max-sessions admission gate")
	s.outstanding = s.reg.Gauge(obs.MetricServeQuestionsOutstanding)
	s.activeGauge = s.reg.Gauge(obs.MetricServeSessionsActive)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.handleCreate)
	mux.HandleFunc("GET /sessions", s.handleList)
	mux.HandleFunc("GET /sessions/{id}", s.handleInfo)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleDelete)
	mux.HandleFunc("GET /sessions/{id}/questions", s.handleQuestions)
	mux.HandleFunc("POST /sessions/{id}/answers", s.handleAnswers)
	mux.HandleFunc("GET /sessions/{id}/history", s.handleHistory)
	mux.HandleFunc("GET /sessions/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /sessions/{id}/amend", s.handleAmend)
	mux.Handle("/", o.Handler())
	s.mux = mux
	return s
}

// Registry returns the server's metrics registry (shared with the
// mounted observability plane).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Memo returns the server's shared cross-session memo tier, or nil
// when the tier is disabled (MemoCapacity < 0).
func (s *Server) Memo() *oracle.SharedMemo { return s.memo }

// Handler returns the server's HTTP handler, for mounting into an
// httptest harness or an existing listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (port 0 picks a free port) and serves in a
// background goroutine until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return nil
}

// Addr returns the listening address, or "" before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL, or "" before Start.
func (s *Server) URL() string {
	if s.ln == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close stops admitting sessions, aborts every in-flight learner,
// waits for their goroutines to unwind, and stops the listener.
// Closing twice is a no-op.
func (s *Server) Close() error {
	s.admitMu.Lock()
	if s.closed {
		s.admitMu.Unlock()
		return nil
	}
	s.closed = true
	s.admitMu.Unlock()
	for _, sh := range s.shards {
		sh.mu.RLock()
		live := make([]*session, 0, len(sh.sessions))
		for _, sess := range sh.sessions {
			live = append(live, sess)
		}
		sh.mu.RUnlock()
		for _, sess := range live {
			sess.abort("server shutting down")
		}
	}
	s.wg.Wait()
	var err error
	if s.srv != nil {
		err = s.srv.Close()
		s.srv, s.ln = nil, nil
	}
	return err
}

// logf forwards to the configured logger.
func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// admit reserves an active-session slot, enforcing the shutdown and
// max-sessions gates.
func (s *Server) admit() error {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.closed {
		return errClosed
	}
	if s.cfg.MaxSessions > 0 && s.active >= s.cfg.MaxSessions {
		s.reg.Counter(obs.MetricServeRejected).Inc()
		return errAtCapacity
	}
	s.active++
	s.activeGauge.Add(1)
	return nil
}

// readmit reserves a slot for an amend relaunch; it respects shutdown
// but not the max-sessions gate (the session was already admitted).
func (s *Server) readmit() bool {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.closed {
		return false
	}
	s.active++
	s.activeGauge.Add(1)
	return true
}

// sessionExit releases an active slot and records the run outcome.
func (s *Server) sessionExit(outcome string) {
	s.admitMu.Lock()
	s.active--
	s.admitMu.Unlock()
	s.activeGauge.Add(-1)
	s.reg.Counter(obs.MetricServeSessions, "outcome", outcome).Inc()
}

var (
	errClosed     = errors.New("serve: server is shutting down")
	errAtCapacity = errors.New("serve: server at max-sessions capacity")
)

// nextID returns the given id, or a fresh random one: 8 bytes of
// crypto randomness, hex, collision-free for any realistic fleet.
func (s *Server) nextID(id string) string {
	if id != "" {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a process-local sequence; rand.Read failing is
		// effectively unreachable on supported platforms.
		s.admitMu.Lock()
		s.idSeq++
		n := s.idSeq
		s.admitMu.Unlock()
		return fmt.Sprintf("s%08d", n)
	}
	return hex.EncodeToString(b[:])
}

// shardFor hashes a session ID onto its shard.
func (s *Server) shardFor(id string) *shard {
	h := fnv.New32a()
	io.WriteString(h, id) //nolint:errcheck // fnv never errors
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// lookup finds a session by ID.
func (s *Server) lookup(id string) (*session, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	sess, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return sess, ok
}

// ---- HTTP handlers ----

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	mode := req.Mode
	algStr := req.Algorithm
	given := req.Given
	budget := req.Budget
	user := req.User
	var history []byte
	if req.Snapshot != nil {
		snap := req.Snapshot
		if snap.Version != 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unsupported snapshot version %d", snap.Version))
			return
		}
		mode, algStr, given, budget = snap.Mode, snap.Algorithm, snap.Given, snap.Budget
		history = snap.History
		if snap.User != "" {
			user = snap.User
		}
	}
	if mode == "" {
		mode = ModeLearn
	}
	if mode != ModeLearn && mode != ModeVerify {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown mode %q (want learn or verify)", mode))
		return
	}
	var alg run.Algorithm
	if algStr != "" {
		var err error
		if alg, err = run.ParseAlgorithm(algStr); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if budget == 0 {
		budget = s.cfg.Budget
	}
	if err := s.admit(); err != nil {
		status := http.StatusTooManyRequests
		if errors.Is(err, errClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	sess, err := newSession(s, "", mode, alg, req.Variables, given, budget, user, history)
	if err != nil {
		s.admitMu.Lock()
		s.active--
		s.admitMu.Unlock()
		s.activeGauge.Add(-1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sh := s.shardFor(sess.id)
	sh.mu.Lock()
	sh.sessions[sess.id] = sess
	sh.mu.Unlock()
	sess.launch()
	writeJSON(w, http.StatusCreated, sess.info())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	list := SessionList{Sessions: []SessionInfo{}}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, sess := range sh.sessions {
			list.Sessions = append(list.Sessions, sess.info())
		}
		sh.mu.RUnlock()
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sh := s.shardFor(id)
	sh.mu.Lock()
	sess, ok := sh.sessions[id]
	delete(sh.sessions, id)
	sh.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(id))
		return
	}
	sess.abort("session deleted")
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleQuestions(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(r.PathValue("id")))
		return
	}
	var wait time.Duration
	if ws := r.URL.Query().Get("wait"); ws != "" {
		var err error
		if wait, err = time.ParseDuration(ws); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad wait %q: %w", ws, err))
			return
		}
		if wait > maxQuestionWait {
			wait = maxQuestionWait
		}
	}
	writeJSON(w, http.StatusOK, sess.questions(wait))
}

// maxQuestionWait bounds the long-poll of GET /sessions/{id}/questions
// so load balancers and tests never hold a handler for long.
const maxQuestionWait = 30 * time.Second

func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(r.PathValue("id")))
		return
	}
	var req AnswerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, sess.deliver(req.Answers))
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, sess.history())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(r.PathValue("id")))
		return
	}
	snap, err := sess.snapshot()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, errSnapshotBusy) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleAmend(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(r.PathValue("id")))
		return
	}
	var req AmendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	if err := sess.amend(req); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

func errNoSession(id string) error {
	return fmt.Errorf("serve: no session %q", id)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the write error is the client's disconnect
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
