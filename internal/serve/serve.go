// Package serve is the qhornd session server: learning-as-a-service
// over HTTP (docs/SERVICE.md). It hosts many concurrent learn/verify
// sessions, each a resumable state machine (session.go) whose learner
// runs the ordinary composable engine (internal/run) against an
// answer exchange instead of a local user — questions go out as
// batches over GET /sessions/{id}/questions, answers come back out of
// order over POST /sessions/{id}/answers, keyed by canonical
// boolean.Set.Key. A drive loop can fuse the two: POST
// /sessions/{id}/answers?wait=D responds, once the delivered batch
// settles, with the next outstanding batch in the same round trip,
// and GET questions?limit=1 serves single-question clients.
//
// Sessions shard by ID hash across fixed worker shards, each with its
// own lock, so lookups never contend globally; admission control is
// an atomic session counter behind a read-write shutdown gate, so
// creations never serialize on a global mutex either. The per-session
// question budget (the engine's oracle.Budget wrapper) bounds what
// one session can cost. The observability plane (internal/obs) is
// mounted on the same mux: /metrics, /healthz, /spans, /progress and
// /debug/pprof come from obs.Server, extended with the qhornd_*
// series (sessions active, questions outstanding, answer latency,
// outcomes, admission rejections, per-route HTTP latency). The hot
// routes encode and decode through pooled buffers (encode.go) and are
// allocation-gated in CI.
package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/run"
)

// Config sizes a Server. The zero value is usable: DefaultShards
// shards, unlimited sessions, DefaultBudget questions per session,
// hardened HTTP timeouts.
type Config struct {
	// Shards is the session-table shard count; <= 0 selects
	// DefaultShards.
	Shards int
	// MaxSessions caps concurrently running sessions; creations
	// beyond it are shed with 429. <= 0 is unlimited.
	MaxSessions int
	// Budget is the default per-session live-question cap, applied
	// when a CreateRequest leaves Budget zero; <= 0 is unlimited.
	Budget int
	// MemoCapacity bounds the server's shared cross-session memo tier
	// (answers cached across sessions of the same user identity): 0
	// selects DefaultMemoCapacity, negative disables the tier.
	MemoCapacity int
	// Obs, when non-nil, is the observability server to mount;
	// otherwise one is created with FlightSpans capacity.
	Obs *obs.Server
	// FlightSpans sizes the created flight recorder (ignored when Obs
	// is provided); <= 0 selects the obs default.
	FlightSpans int
	// Logf receives server diagnostics (learner panics, shutdown);
	// nil discards them.
	Logf func(format string, args ...interface{})

	// ReadHeaderTimeout bounds how long Start's listener waits for a
	// client's request headers — the slow-loris defense. Zero selects
	// DefaultReadHeaderTimeout; negative disables the limit.
	ReadHeaderTimeout time.Duration
	// WriteTimeout bounds a whole response write. Zero selects
	// DefaultWriteTimeout — deliberately above maxQuestionWait so
	// long-polls are never cut mid-wait; negative disables.
	WriteTimeout time.Duration
	// IdleTimeout bounds keep-alive connection idleness. Zero selects
	// DefaultIdleTimeout; negative disables.
	IdleTimeout time.Duration
	// MaxHeaderBytes caps request header size. Zero selects
	// DefaultMaxHeaderBytes; negative selects the net/http default.
	MaxHeaderBytes int
}

// DefaultShards is the shard count a zero Config selects.
const DefaultShards = 8

// DefaultMemoCapacity is the shared memo tier bound a zero Config
// selects: a million cached answers, a few hundred MB at production
// tuple sizes.
const DefaultMemoCapacity = 1 << 20

// HTTP hardening defaults of Start's listener (Config zero values).
const (
	// DefaultReadHeaderTimeout drops clients that trickle request
	// headers (slow loris) within seconds.
	DefaultReadHeaderTimeout = 10 * time.Second
	// DefaultWriteTimeout exceeds maxQuestionWait with slack, so a
	// full long-poll plus its response write always fits.
	DefaultWriteTimeout = 75 * time.Second
	// DefaultIdleTimeout reclaims abandoned keep-alive connections.
	DefaultIdleTimeout = 120 * time.Second
	// DefaultMaxHeaderBytes bounds header memory per connection; the
	// qhornd API needs no large headers.
	DefaultMaxHeaderBytes = 64 << 10
)

// Server is the qhornd HTTP daemon. Create with New, mount Handler
// (or Start a listener), and Close to abort in-flight sessions and
// wait for their learner goroutines.
type Server struct {
	cfg    Config
	obs    *obs.Server
	reg    *obs.Registry
	tracer *obs.Tracer
	mux    *http.ServeMux

	shards []*shard
	memo   *oracle.SharedMemo // nil when MemoCapacity < 0

	// Hot-path metric instances, resolved once — Registry lookups take
	// a registry-wide mutex, which the per-answer path must not.
	outstanding   *obs.Gauge
	activeGauge   *obs.Gauge
	answerLatency *obs.Histogram
	httpInFlight  *obs.Gauge
	rejected      *obs.Counter
	outcomes      map[string]*obs.Counter // per-outcome session counters

	// closeMu is the shutdown gate: Close write-holds it to flip
	// closed, creations read-hold it across admit→launch so no session
	// slips past the abort sweep. Admission itself is the lock-free
	// active counter: a CAS against MaxSessions, no global mutex.
	closeMu sync.RWMutex
	closed  bool // guarded by closeMu
	active  atomic.Int64
	idSeq   atomic.Uint64

	wg sync.WaitGroup

	srv *http.Server
	ln  net.Listener
}

// shard is one lock-scoped slice of the session table.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*session
}

// New builds a server over the config.
func New(cfg Config) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	o := cfg.Obs
	if o == nil {
		o = obs.NewServer(nil, nil, obs.NewFlightRecorder(cfg.FlightSpans))
	}
	s := &Server{
		cfg:    cfg,
		obs:    o,
		reg:    o.Registry(),
		tracer: o.SpanTracer(),
		shards: make([]*shard, cfg.Shards),
	}
	for i := range s.shards {
		s.shards[i] = &shard{sessions: map[string]*session{}}
	}
	if cfg.MemoCapacity >= 0 {
		capacity := cfg.MemoCapacity
		if capacity == 0 {
			capacity = DefaultMemoCapacity
		}
		s.memo = oracle.NewSharedMemoInto(capacity, s.reg)
		s.reg.Describe(obs.MetricMemoTierHits, "questions the shared memo tier answered from cache")
		s.reg.Describe(obs.MetricMemoTierMisses, "questions the shared memo tier forwarded and got answered")
		s.reg.Describe(obs.MetricMemoTierEvictions, "answers evicted by the shared memo tier's 2Q policy")
		s.reg.Describe(obs.MetricMemoTierSize, "answers currently cached by the shared memo tier")
	}
	s.reg.Describe(obs.MetricServeSessionsActive, "live qhornd sessions (learner goroutine running)")
	s.reg.Describe(obs.MetricServeQuestionsOutstanding, "questions posted to answerers and not yet answered")
	s.reg.Describe(obs.MetricServeAnswerSeconds, "remote answer latency from question posting to delivery")
	s.reg.Describe(obs.MetricServeSessions, "finished session runs by outcome")
	s.reg.Describe(obs.MetricServeRejected, "session creations shed by the max-sessions admission gate")
	s.reg.Describe(obs.MetricServeHTTPSeconds, "qhornd HTTP handler wall time by route, long-polls included")
	s.reg.Describe(obs.MetricServeHTTPInFlight, "HTTP requests currently inside a qhornd handler")
	s.outstanding = s.reg.Gauge(obs.MetricServeQuestionsOutstanding)
	s.activeGauge = s.reg.Gauge(obs.MetricServeSessionsActive)
	s.answerLatency = s.reg.Histogram(obs.MetricServeAnswerSeconds, obs.AnswerLatencyBuckets)
	s.httpInFlight = s.reg.Gauge(obs.MetricServeHTTPInFlight)
	s.rejected = s.reg.Counter(obs.MetricServeRejected)
	s.outcomes = map[string]*obs.Counter{}
	for _, outcome := range []string{"done", "budget", "aborted", "panic"} {
		s.outcomes[outcome] = s.reg.Counter(obs.MetricServeSessions, "outcome", outcome)
	}

	mux := http.NewServeMux()
	s.mux = mux
	s.route("POST /sessions", "create", s.handleCreate)
	s.route("GET /sessions", "list", s.handleList)
	s.route("GET /sessions/{id}", "info", s.handleInfo)
	s.route("DELETE /sessions/{id}", "delete", s.handleDelete)
	s.route("GET /sessions/{id}/questions", "questions", s.handleQuestions)
	s.route("POST /sessions/{id}/answers", "answers", s.handleAnswers)
	s.route("GET /sessions/{id}/history", "history", s.handleHistory)
	s.route("GET /sessions/{id}/snapshot", "snapshot", s.handleSnapshot)
	s.route("POST /sessions/{id}/amend", "amend", s.handleAmend)
	s.route("/", "obs", o.Handler().ServeHTTP)
	return s
}

// route mounts a handler wrapped with the per-route latency histogram
// and the in-flight gauge. The histogram instance is resolved once at
// mount time, so the per-request cost is two gauge moves and one
// histogram observation.
func (s *Server) route(pattern, label string, h http.HandlerFunc) {
	hist := s.reg.Histogram(obs.MetricServeHTTPSeconds, obs.HTTPLatencyBuckets, "route", label)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.httpInFlight.Add(1)
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start).Seconds())
		s.httpInFlight.Add(-1)
	})
}

// Registry returns the server's metrics registry (shared with the
// mounted observability plane).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Memo returns the server's shared cross-session memo tier, or nil
// when the tier is disabled (MemoCapacity < 0).
func (s *Server) Memo() *oracle.SharedMemo { return s.memo }

// Handler returns the server's HTTP handler, for mounting into an
// httptest harness or an existing listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (port 0 picks a free port) and serves in a
// background goroutine until Close, with the hardened timeouts of the
// config applied.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: timeoutOr(s.cfg.ReadHeaderTimeout, DefaultReadHeaderTimeout),
		WriteTimeout:      timeoutOr(s.cfg.WriteTimeout, DefaultWriteTimeout),
		IdleTimeout:       timeoutOr(s.cfg.IdleTimeout, DefaultIdleTimeout),
	}
	if s.cfg.MaxHeaderBytes > 0 {
		s.srv.MaxHeaderBytes = s.cfg.MaxHeaderBytes
	} else if s.cfg.MaxHeaderBytes == 0 {
		s.srv.MaxHeaderBytes = DefaultMaxHeaderBytes
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return nil
}

// timeoutOr maps the Config timeout convention (zero → default,
// negative → disabled) onto http.Server's (zero → disabled).
func timeoutOr(v, def time.Duration) time.Duration {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	default:
		return v
	}
}

// Addr returns the listening address, or "" before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL, or "" before Start.
func (s *Server) URL() string {
	if s.ln == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close stops admitting sessions, aborts every in-flight learner,
// waits for their goroutines to unwind, and stops the listener.
// Closing twice is a no-op. The write lock synchronizes with
// creations, which read-hold closeMu from admission to launch: once
// it is acquired, every admitted session is in its shard and counted
// in wg, so the sweep and the Wait miss nothing.
func (s *Server) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	s.closeMu.Unlock()
	for _, sh := range s.shards {
		sh.mu.RLock()
		live := make([]*session, 0, len(sh.sessions))
		for _, sess := range sh.sessions {
			live = append(live, sess)
		}
		sh.mu.RUnlock()
		for _, sess := range live {
			sess.abort("server shutting down")
		}
	}
	s.wg.Wait()
	var err error
	if s.srv != nil {
		err = s.srv.Close()
		s.srv, s.ln = nil, nil
	}
	return err
}

// logf forwards to the configured logger.
func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// admitLocked reserves an active-session slot, enforcing the shutdown
// and max-sessions gates. Callers hold closeMu.RLock (so the closed
// flag is stable) and keep holding it until the session is launched.
func (s *Server) admitLocked() error {
	if s.closed {
		return errClosed
	}
	if max := int64(s.cfg.MaxSessions); max > 0 {
		for {
			cur := s.active.Load()
			if cur >= max {
				s.rejected.Inc()
				return errAtCapacity
			}
			if s.active.CompareAndSwap(cur, cur+1) {
				break
			}
		}
	} else {
		s.active.Add(1)
	}
	s.activeGauge.Add(1)
	return nil
}

// unadmit releases a slot reserved by admitLocked when the session
// never launched.
func (s *Server) unadmit() {
	s.active.Add(-1)
	s.activeGauge.Add(-1)
}

// relaunch reserves a slot for an amend relaunch and starts the
// learner; it respects shutdown but not the max-sessions gate (the
// session was already admitted). The read lock spans the wg.Add in
// launch, so a concurrent Close cannot Wait before the run is
// counted.
func (s *Server) relaunch(sess *session) bool {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return false
	}
	s.active.Add(1)
	s.activeGauge.Add(1)
	sess.launch()
	return true
}

// sessionExit releases an active slot and records the run outcome.
func (s *Server) sessionExit(outcome string) {
	s.active.Add(-1)
	s.activeGauge.Add(-1)
	if c, ok := s.outcomes[outcome]; ok {
		c.Inc()
	} else {
		s.reg.Counter(obs.MetricServeSessions, "outcome", outcome).Inc()
	}
}

var (
	errClosed     = errors.New("serve: server is shutting down")
	errAtCapacity = errors.New("serve: server at max-sessions capacity")
)

// nextID returns the given id, or a fresh random one: 8 bytes of
// crypto randomness, hex, collision-free for any realistic fleet.
func (s *Server) nextID(id string) string {
	if id != "" {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a process-local sequence; rand.Read failing is
		// effectively unreachable on supported platforms.
		return fmt.Sprintf("s%08d", s.idSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// shardFor hashes a session ID onto its shard: inline FNV-1a, no
// hasher allocation.
func (s *Server) shardFor(id string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return s.shards[h%uint32(len(s.shards))]
}

// lookup finds a session by ID.
func (s *Server) lookup(id string) (*session, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	sess, ok := sh.sessions[id]
	sh.mu.RUnlock()
	return sess, ok
}

// ---- HTTP handlers ----

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	mode := req.Mode
	algStr := req.Algorithm
	given := req.Given
	budget := req.Budget
	user := req.User
	var history []byte
	if req.Snapshot != nil {
		snap := req.Snapshot
		if snap.Version != 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unsupported snapshot version %d", snap.Version))
			return
		}
		mode, algStr, given, budget = snap.Mode, snap.Algorithm, snap.Given, snap.Budget
		history = snap.History
		if snap.User != "" {
			user = snap.User
		}
	}
	if mode == "" {
		mode = ModeLearn
	}
	if mode != ModeLearn && mode != ModeVerify {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown mode %q (want learn or verify)", mode))
		return
	}
	var alg run.Algorithm
	if algStr != "" {
		var err error
		if alg, err = run.ParseAlgorithm(algStr); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if budget == 0 {
		budget = s.cfg.Budget
	}
	s.closeMu.RLock()
	if err := s.admitLocked(); err != nil {
		s.closeMu.RUnlock()
		status := http.StatusTooManyRequests
		if errors.Is(err, errClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	sess, err := newSession(s, "", mode, alg, req.Variables, given, budget, user, history)
	if err != nil {
		s.unadmit()
		s.closeMu.RUnlock()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sh := s.shardFor(sess.id)
	sh.mu.Lock()
	sh.sessions[sess.id] = sess
	sh.mu.Unlock()
	sess.launch()
	s.closeMu.RUnlock()
	writeJSON(w, http.StatusCreated, sess.info())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	list := SessionList{Sessions: []SessionInfo{}}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, sess := range sh.sessions {
			list.Sessions = append(list.Sessions, sess.info())
		}
		sh.mu.RUnlock()
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sh := s.shardFor(id)
	sh.mu.Lock()
	sess, ok := sh.sessions[id]
	delete(sh.sessions, id)
	sh.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(id))
		return
	}
	sess.abort("session deleted")
	w.WriteHeader(http.StatusNoContent)
}

// jsonCT is the preallocated Content-Type header value of the pooled
// hot-path responses (direct map assignment skips Set's allocation).
var jsonCT = []string{"application/json"}

func (s *Server) handleQuestions(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(r.PathValue("id")))
		return
	}
	wait, limit, err := parseQuestionQuery(r.URL.RawQuery)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	bp := getBuf()
	b := sess.questionsInto((*bp)[:0], wait, limit)
	w.Header()["Content-Type"] = jsonCT
	w.Write(b) //nolint:errcheck // the write error is the client's disconnect
	*bp = b
	putBuf(bp)
}

// parseQuestionQuery extracts the long-poll wait and the question
// limit from a raw query without materializing url.Values.
func parseQuestionQuery(rawQuery string) (wait time.Duration, limit int, err error) {
	if ws := queryParam(rawQuery, "wait"); ws != "" {
		if strings.ContainsAny(ws, "%+") {
			// Escaped duration units (µs) take the cold unescape path.
			if un, uerr := url.QueryUnescape(ws); uerr == nil {
				ws = un
			}
		}
		if wait, err = time.ParseDuration(ws); err != nil {
			return 0, 0, fmt.Errorf("serve: bad wait %q: %w", ws, err)
		}
		if wait > maxQuestionWait {
			wait = maxQuestionWait
		}
	}
	if ls := queryParam(rawQuery, "limit"); ls != "" {
		if limit, err = strconv.Atoi(ls); err != nil || limit < 0 {
			return 0, 0, fmt.Errorf("serve: bad limit %q", ls)
		}
	}
	return wait, limit, nil
}

// maxQuestionWait bounds the long-poll of GET /sessions/{id}/questions
// (and of the fused POST answers?wait) so load balancers and tests
// never hold a handler for long.
const maxQuestionWait = 30 * time.Second

func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(r.PathValue("id")))
		return
	}
	wait, limit, err := parseQuestionQuery(r.URL.RawQuery)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	bodyBuf := getBuf()
	defer putBuf(bodyBuf)
	body, err := readBody((*bodyBuf)[:0], r.Body)
	*bodyBuf = body[:0]
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: reading request body: %w", err))
		return
	}
	scratch := answerPool.Get().(*answerScratch)
	defer func() {
		scratch.pairs = scratch.pairs[:0]
		scratch.rep.unknown = scratch.rep.unknown[:0]
		answerPool.Put(scratch)
	}()
	pairs, fast := parseAnswers(body, scratch.pairs[:0])
	if !fast {
		// The body used escapes, unknown fields, or is malformed: let
		// encoding/json produce the verdict and the error message.
		var req AnswerRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
			return
		}
		pairs = pairs[:0]
		for k, a := range req.Answers {
			pairs = append(pairs, wireAnswer{key: []byte(k), answer: a})
		}
		// A missing key with an answer means the empty key (the
		// empty-set question; omitempty drops "" on the wire). A key
		// without an answer is an error.
		if req.Answer != nil {
			pairs = append(pairs, wireAnswer{key: []byte(req.Key), answer: *req.Answer})
		} else if req.Key != "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: the single-question form needs an answer with its key"))
			return
		}
	}
	scratch.pairs = pairs
	rep := &scratch.rep
	*rep = answerOutcome{unknown: rep.unknown[:0]}
	sess.deliver(pairs, rep)

	outBuf := getBuf()
	b := appendAnswerReport((*outBuf)[:0], rep, wait > 0)
	if wait > 0 {
		// The fused round trip: long-poll the next batch (or the
		// remainder of this one, on a partial delivery) into the same
		// response.
		b = append(b, `,"next":`...)
		b = sess.questionsInto(b, wait, limit)
		b = append(b, '}')
	}
	w.Header()["Content-Type"] = jsonCT
	w.Write(b) //nolint:errcheck // the write error is the client's disconnect
	*outBuf = b
	putBuf(outBuf)
}

// readBody reads rc into the (pooled) buffer b, growing as needed.
func readBody(b []byte, rc io.Reader) ([]byte, error) {
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := rc.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			return b, err
		}
	}
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, sess.history())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(r.PathValue("id")))
		return
	}
	snap, err := sess.snapshot()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, errSnapshotBusy) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleAmend(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(r.PathValue("id")))
		return
	}
	var req AmendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	if err := sess.amend(req); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

func errNoSession(id string) error {
	return fmt.Errorf("serve: no session %q", id)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the write error is the client's disconnect
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
