package serve

// A typed client for the qhornd session API, used by the end-to-end
// harness, the load tests, the serve experiment (internal/exp) and
// anything else that drives a server programmatically. Drive is the
// canonical answering loop: poll the outstanding batch, evaluate each
// question, post the answers — optionally shuffled, split across
// deliveries and delayed, to exercise the out-of-order answer path.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
)

// Client talks to one qhornd server.
type Client struct {
	// Base is the server's base URL (Server.URL, or an httptest URL).
	Base string
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client

	rt atomic.Int64 // HTTP round trips issued through do
}

// RoundTrips reports the HTTP requests this client has issued — the
// per-session wire cost a drive loop actually pays.
func (c *Client) RoundTrips() int64 { return c.rt.Load() }

// NewClient returns a client for the server at base.
func NewClient(base string) *Client { return &Client{Base: base} }

// StatusError is the decoded error envelope of a non-2xx response.
type StatusError struct {
	Status int
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: server returned %d: %s", e.Status, e.Msg)
}

// IsStatus reports whether err is a StatusError with the given code.
func IsStatus(err error, status int) bool {
	se, ok := err.(*StatusError)
	return ok && se.Status == status
}

// do runs one JSON request/response exchange. in == nil sends no body;
// out == nil discards the response body.
func (c *Client) do(method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.Base+path, body)
	if err != nil {
		return err
	}
	c.rt.Add(1)
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb errorBody
		data, _ := io.ReadAll(resp.Body)
		if json.Unmarshal(data, &eb) != nil || eb.Error == "" {
			eb.Error = string(data)
		}
		return &StatusError{Status: resp.StatusCode, Msg: eb.Error}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Create starts a session (POST /sessions).
func (c *Client) Create(req CreateRequest) (SessionInfo, error) {
	var in SessionInfo
	err := c.do("POST", "/sessions", req, &in)
	return in, err
}

// Resume starts a session from a snapshot (POST /sessions).
func (c *Client) Resume(snap Snapshot) (SessionInfo, error) {
	return c.Create(CreateRequest{Snapshot: &snap})
}

// Info fetches the session state (GET /sessions/{id}).
func (c *Client) Info(id string) (SessionInfo, error) {
	var in SessionInfo
	err := c.do("GET", "/sessions/"+url.PathEscape(id), nil, &in)
	return in, err
}

// List fetches every live session (GET /sessions).
func (c *Client) List() (SessionList, error) {
	var l SessionList
	err := c.do("GET", "/sessions", nil, &l)
	return l, err
}

// Questions fetches the outstanding batch (GET /sessions/{id}/questions),
// long-polling up to wait while the session is computing.
func (c *Client) Questions(id string, wait time.Duration) (QuestionBatch, error) {
	return c.QuestionsLimit(id, wait, 0)
}

// QuestionsLimit is Questions with a cap on the returned questions;
// limit 1 is the single-question compatibility mode. limit <= 0
// returns the whole outstanding batch.
func (c *Client) QuestionsLimit(id string, wait time.Duration, limit int) (QuestionBatch, error) {
	path := "/sessions/" + url.PathEscape(id) + "/questions"
	sep := byte('?')
	if wait > 0 {
		path += string(sep) + "wait=" + url.QueryEscape(wait.String())
		sep = '&'
	}
	if limit > 0 {
		path += string(sep) + "limit=" + strconv.Itoa(limit)
	}
	var qb QuestionBatch
	err := c.do("GET", path, nil, &qb)
	return qb, err
}

// Answer delivers answers keyed by question key
// (POST /sessions/{id}/answers).
func (c *Client) Answer(id string, answers map[string]bool) (AnswerReport, error) {
	var rep AnswerReport
	err := c.do("POST", "/sessions/"+url.PathEscape(id)+"/answers", AnswerRequest{Answers: answers}, &rep)
	return rep, err
}

// AnswerNext is the fused round trip (POST /sessions/{id}/answers?wait=D):
// it delivers the answers and, once the batch settles, receives the
// next outstanding batch in Report.Next — one round trip per batch
// instead of a poll plus a post.
func (c *Client) AnswerNext(id string, answers map[string]bool, wait time.Duration) (AnswerReport, error) {
	path := "/sessions/" + url.PathEscape(id) + "/answers?wait=" + url.QueryEscape(wait.String())
	var rep AnswerReport
	err := c.do("POST", path, AnswerRequest{Answers: answers}, &rep)
	return rep, err
}

// AnswerOne delivers a single answer in the compact single-question
// form ({"key":...,"answer":...}).
func (c *Client) AnswerOne(id, key string, answer bool) (AnswerReport, error) {
	var rep AnswerReport
	err := c.do("POST", "/sessions/"+url.PathEscape(id)+"/answers",
		AnswerRequest{Key: key, Answer: &answer}, &rep)
	return rep, err
}

// History fetches the recorded interaction history
// (GET /sessions/{id}/history).
func (c *Client) History(id string) ([]HistoryEntry, error) {
	var h []HistoryEntry
	err := c.do("GET", "/sessions/"+url.PathEscape(id)+"/history", nil, &h)
	return h, err
}

// Snapshot persists the session (GET /sessions/{id}/snapshot),
// retrying while the server reports 409 (learner mid-computation).
func (c *Client) Snapshot(id string) (Snapshot, error) {
	var snap Snapshot
	for i := 0; ; i++ {
		err := c.do("GET", "/sessions/"+url.PathEscape(id)+"/snapshot", nil, &snap)
		if err == nil || !IsStatus(err, http.StatusConflict) || i >= 200 {
			return snap, err
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Amend flips a recorded answer and relaunches the learner
// (POST /sessions/{id}/amend).
func (c *Client) Amend(id string, req AmendRequest) (SessionInfo, error) {
	var in SessionInfo
	err := c.do("POST", "/sessions/"+url.PathEscape(id)+"/amend", req, &in)
	return in, err
}

// Delete aborts and removes the session (DELETE /sessions/{id}).
func (c *Client) Delete(id string) error {
	return c.do("DELETE", "/sessions/"+url.PathEscape(id), nil, nil)
}

// Answerer evaluates one wire question to a membership answer.
type Answerer func(q WireQuestion) (bool, error)

// AnswererFor adapts a local oracle (typically oracle.Target over a
// generated query) into an Answerer: each wire question's tuples are
// parsed back into a boolean.Set and asked locally.
func AnswererFor(u boolean.Universe, o oracle.Oracle) Answerer {
	return func(q WireQuestion) (bool, error) {
		tuples := make([]boolean.Tuple, len(q.Tuples))
		for i, s := range q.Tuples {
			t, err := u.Parse(s)
			if err != nil {
				return false, err
			}
			tuples[i] = t
		}
		return o.Ask(boolean.NewSet(tuples...)), nil
	}
}

// CountingAnswerer wraps an Answerer, counting successfully evaluated
// answers into n — the wire cost the answering user actually pays.
// Questions served by the server's shared memo tier never reach the
// wire, so comparing counts across sessions measures the tier.
func CountingAnswerer(inner Answerer, n *int64) Answerer {
	return func(q WireQuestion) (bool, error) {
		a, err := inner(q)
		if err == nil {
			atomic.AddInt64(n, 1)
		}
		return a, err
	}
}

// WireMode selects how a Drive loop talks to the server.
type WireMode int

const (
	// WireBatched is the classic loop: GET the outstanding batch, POST
	// its answers, repeat — two round trips per batch.
	WireBatched WireMode = iota
	// WireFused rides the fused round trip: the final POST of a batch
	// carries ?wait and receives the next batch in the same response —
	// one round trip per batch in the steady state.
	WireFused
	// WireSingle is the single-question compatibility mode: one
	// question per GET (?limit=1), one answer per POST in the
	// {"key","answer"} form — the per-question baseline.
	WireSingle
)

// String names the mode for reports and flags.
func (m WireMode) String() string {
	switch m {
	case WireFused:
		return "fused"
	case WireSingle:
		return "single"
	default:
		return "batched"
	}
}

// ParseWireMode parses a WireMode name.
func ParseWireMode(s string) (WireMode, error) {
	switch s {
	case "batched", "":
		return WireBatched, nil
	case "fused":
		return WireFused, nil
	case "single":
		return WireSingle, nil
	}
	return 0, fmt.Errorf("serve: unknown wire mode %q (want batched, fused or single)", s)
}

// DriveOptions shape a Drive loop. The zero value answers every batch
// in one in-order delivery with a default long-poll over the batched
// wire mode.
type DriveOptions struct {
	// Rng, when non-nil, shuffles the answer order within each batch,
	// exercising out-of-order delivery.
	Rng *rand.Rand
	// MaxPerPost splits each batch into deliveries of at most this many
	// answers; <= 0 delivers the whole batch in one POST.
	MaxPerPost int
	// Delay, when non-nil, is slept before each delivery.
	Delay func() time.Duration
	// Poll is the long-poll wait per questions fetch; <= 0 uses 10s.
	Poll time.Duration
	// MaxRounds bounds the poll/answer loop; <= 0 uses 100000. The
	// bound turns a livelock into an error instead of a hung test.
	MaxRounds int
	// Wire selects the wire mode (batched, fused, single).
	Wire WireMode
}

// Drive answers a session to completion: it fetches outstanding
// questions, evaluates each with answer, posts the answers — over the
// selected wire mode — and repeats until the session reaches done or
// failed, returning the final session state.
func (c *Client) Drive(id string, answer Answerer, opt DriveOptions) (SessionInfo, error) {
	poll := opt.Poll
	if poll <= 0 {
		poll = 10 * time.Second
	}
	maxRounds := opt.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 100000
	}
	var qb QuestionBatch
	havePending := false // fused mode: qb came back with the last POST
	for round := 0; round < maxRounds; round++ {
		if !havePending {
			limit := 0
			if opt.Wire == WireSingle {
				limit = 1
			}
			var err error
			if qb, err = c.QuestionsLimit(id, poll, limit); err != nil {
				return SessionInfo{}, err
			}
		}
		havePending = false
		if qb.State == StateDone || qb.State == StateFailed {
			return c.Info(id)
		}
		if len(qb.Questions) == 0 {
			continue // computing, or racing another answerer; poll again
		}
		qs := qb.Questions
		if opt.Rng != nil {
			qs = append([]WireQuestion(nil), qs...)
			opt.Rng.Shuffle(len(qs), func(i, j int) { qs[i], qs[j] = qs[j], qs[i] })
		}
		if opt.Wire == WireSingle {
			// One answer per POST in the single-question form; the next
			// question arrives on the next ?limit=1 poll.
			for _, q := range qs {
				a, err := answer(q)
				if err != nil {
					return SessionInfo{}, fmt.Errorf("serve: answering %s: %w", q.Key, err)
				}
				if opt.Delay != nil {
					time.Sleep(opt.Delay())
				}
				if _, err := c.AnswerOne(id, q.Key, a); err != nil {
					return SessionInfo{}, err
				}
			}
			continue
		}
		chunk := opt.MaxPerPost
		if chunk <= 0 {
			chunk = len(qs)
		}
		for lo := 0; lo < len(qs); lo += chunk {
			hi := lo + chunk
			if hi > len(qs) {
				hi = len(qs)
			}
			answers := map[string]bool{}
			for _, q := range qs[lo:hi] {
				a, err := answer(q)
				if err != nil {
					return SessionInfo{}, fmt.Errorf("serve: answering %s: %w", q.Key, err)
				}
				answers[q.Key] = a
			}
			if opt.Delay != nil {
				time.Sleep(opt.Delay())
			}
			if opt.Wire == WireFused && hi == len(qs) {
				// The batch's final delivery fuses the next poll into the
				// same round trip.
				rep, err := c.AnswerNext(id, answers, poll)
				if err != nil {
					return SessionInfo{}, err
				}
				if rep.Next != nil {
					qb, havePending = *rep.Next, true
				}
				continue
			}
			if _, err := c.Answer(id, answers); err != nil {
				return SessionInfo{}, err
			}
		}
	}
	return SessionInfo{}, fmt.Errorf("serve: session %s did not finish within %d drive rounds", id, maxRounds)
}
