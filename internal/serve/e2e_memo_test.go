package serve_test

// End-to-end coverage of the shared cross-session memo tier and the
// §5 amendment revision fast path. The tier's contract has two halves:
// cold it is invisible (bit-identical runs), warm it only removes wire
// questions, never changes what is learned — and answers never cross
// oracle identities. The revision fast path must converge to the same
// normal form a full relearn produces (Prop 4.1), while exposing its
// question breakdown on the session info.

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qhorn/internal/difffuzz"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	engine "qhorn/internal/run"
	"qhorn/internal/serve"
)

// TestE2EMemoColdIdentity attaches sessions to a cold shared tier and
// holds them to the repo's core bar: learned query, live-question
// count and recorded history identical to a direct learn.Run. A cold
// tier forwards every batch unchanged, so the network inversion plus
// the tier must still be invisible to the algorithms.
func TestE2EMemoColdIdentity(t *testing.T) {
	cases := []struct {
		alg   engine.Algorithm
		class difffuzz.Class
		seed  int64
	}{
		{engine.Qhorn1, difffuzz.ClassQhorn1, 21},
		{engine.RolePreserving, difffuzz.ClassRP, 22},
	}
	n := 3
	if testing.Short() {
		n = 1
	}
	for _, cs := range cases {
		for _, target := range targets(cs.class, cs.seed, n) {
			// A fresh server per target keeps the tier cold.
			_, c := startServer(t, serve.Config{})
			driveIdentityAs(t, c, target, cs.alg, "alice", serve.DriveOptions{Poll: 2 * time.Second})
		}
	}
}

// TestE2EMemoWarmRepeat learns the same target three times on one
// server: twice as alice, once as bob. The second alice session must
// learn the identical query while paying strictly fewer wire
// questions; bob, a distinct identity, must pay full price — cached
// answers never cross users.
func TestE2EMemoWarmRepeat(t *testing.T) {
	srv, c := startServer(t, serve.Config{})
	target := targets(difffuzz.ClassQhorn1, 23, 1)[0]
	want, _, _ := directLearn(target, engine.Qhorn1)
	honest := serve.AnswererFor(target.U, oracle.Target(target))

	learnAs := func(user string) int64 {
		t.Helper()
		var wire int64
		info, err := c.Create(serve.CreateRequest{Variables: target.N(), Algorithm: "qhorn1", User: user})
		if err != nil {
			t.Fatalf("create as %q: %v", user, err)
		}
		final, err := c.Drive(info.ID, serve.CountingAnswerer(honest, &wire), serve.DriveOptions{Poll: 2 * time.Second})
		if err != nil {
			t.Fatalf("drive as %q: %v", user, err)
		}
		if final.State != serve.StateDone {
			t.Fatalf("session of %q ended %q (error %q)", user, final.State, final.Error)
		}
		if final.Learned != want.String() {
			t.Fatalf("session of %q learned %q, want %q", user, final.Learned, want)
		}
		return wire
	}

	cold := learnAs("alice")
	if cold == 0 {
		t.Fatal("cold session answered no wire questions")
	}
	if warm := learnAs("alice"); warm >= cold {
		t.Fatalf("second alice session answered %d wire questions, first answered %d; the tier saved nothing", warm, cold)
	}
	if stranger := learnAs("bob"); stranger != cold {
		t.Fatalf("bob's first session answered %d wire questions, alice's cold run %d; identities leak", stranger, cold)
	}

	if hits := srv.Registry().CounterValue(obs.MetricMemoTierHits); hits == 0 {
		t.Error("qhornd_memo_hits_total is zero after a warm session")
	}
	if srv.Memo().Len() == 0 {
		t.Error("shared tier is empty after three sessions")
	}
}

// TestE2EAmendReviseFastPath runs the §5 loop on a role-preserving
// session twice — once demanding the revision fast path, once a full
// relearn — and requires both to converge to the direct learn's normal
// form (Prop 4.1: equivalent role-preserving queries share a syntactic
// normal form), with the fast path exposing its question breakdown.
// The quantitative savings claim lives in the revise experiment
// (BENCH_revise.json), which replays one-clause drifts at scale; a
// single lie on a small target is no measure of it.
func TestE2EAmendReviseFastPath(t *testing.T) {
	target := targets(difffuzz.ClassRP, 31, 1)[0]
	want, _, _ := directLearn(target, engine.RolePreserving)
	honest := serve.AnswererFor(target.U, oracle.Target(target))
	_, c := startServer(t, serve.Config{})

	lieLearnAmend := func(strategy string) (serve.SessionInfo, int64) {
		t.Helper()
		info, err := c.Create(serve.CreateRequest{Variables: target.N(), Algorithm: "rp"})
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		var liedKey string
		liar := func(q serve.WireQuestion) (bool, error) {
			a, err := honest(q)
			if err != nil {
				return false, err
			}
			if liedKey == "" {
				liedKey = q.Key
				return !a, nil
			}
			return a, nil
		}
		noisy, err := c.Drive(info.ID, liar, serve.DriveOptions{Poll: 2 * time.Second})
		if err != nil {
			t.Fatalf("noisy drive: %v", err)
		}
		if noisy.State != serve.StateDone {
			t.Fatalf("noisy session ended %q (error %q)", noisy.State, noisy.Error)
		}
		if liedKey == "" {
			t.Fatal("the liar never got a question")
		}
		amended, err := c.Amend(info.ID, serve.AmendRequest{Key: liedKey, Strategy: strategy})
		if err != nil {
			t.Fatalf("amend (%s): %v", strategy, err)
		}
		if amended.Runs != 2 {
			t.Fatalf("amended session reports %d runs, want 2", amended.Runs)
		}
		var wire int64
		final, err := c.Drive(info.ID, serve.CountingAnswerer(honest, &wire), serve.DriveOptions{Poll: 2 * time.Second})
		if err != nil {
			t.Fatalf("honest drive: %v", err)
		}
		if final.State != serve.StateDone {
			t.Fatalf("amended session ended %q (error %q)", final.State, final.Error)
		}
		return final, wire
	}

	revised, reviseWire := lieLearnAmend(serve.StrategyRevise)
	if revised.Learned != want.String() {
		t.Fatalf("revision fast path learned %q, direct learn %q", revised.Learned, want)
	}
	if revised.Revision == nil {
		t.Fatal("fast-path session reports no revision breakdown")
	}
	relearned, relearnWire := lieLearnAmend(serve.StrategyRelearn)
	if relearned.Learned != want.String() {
		t.Fatalf("relearn after amendment learned %q, direct learn %q", relearned.Learned, want)
	}
	if relearned.Revision != nil {
		t.Fatal("relearn strategy reports a revision breakdown")
	}
	t.Logf("wire questions after amend: %d revised (%d verify + %d repair, escalated=%v), %d relearned",
		reviseWire, revised.Revision.VerificationQuestions, revised.Revision.RepairQuestions,
		revised.Revision.Escalated, relearnWire)
}

// TestE2EAmendStrategyValidation: demanding the fast path on an
// ineligible (qhorn-1) session, or naming an unknown strategy, is a
// 409 that leaves the session untouched.
func TestE2EAmendStrategyValidation(t *testing.T) {
	target := targets(difffuzz.ClassQhorn1, 37, 1)[0]
	honest := serve.AnswererFor(target.U, oracle.Target(target))
	_, c := startServer(t, serve.Config{})
	info, err := c.Create(serve.CreateRequest{Variables: target.N(), Algorithm: "qhorn1"})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Drive(info.ID, honest, serve.DriveOptions{Poll: 2 * time.Second})
	if err != nil || final.State != serve.StateDone {
		t.Fatalf("drive: %v (state %q)", err, final.State)
	}
	zero := 0
	if _, err := c.Amend(info.ID, serve.AmendRequest{Index: &zero, Strategy: serve.StrategyRevise}); !serve.IsStatus(err, http.StatusConflict) {
		t.Fatalf("demanding revise on a qhorn1 session: got %v, want 409", err)
	}
	if _, err := c.Amend(info.ID, serve.AmendRequest{Index: &zero, Strategy: "bogus"}); !serve.IsStatus(err, http.StatusConflict) {
		t.Fatalf("unknown strategy: got %v, want 409", err)
	}
	in, err := c.Info(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if in.Runs != 1 {
		t.Fatalf("rejected amends relaunched the session: %d runs", in.Runs)
	}
	amended, err := c.Amend(info.ID, serve.AmendRequest{Index: &zero, Strategy: serve.StrategyRelearn})
	if err != nil {
		t.Fatalf("relearn amend: %v", err)
	}
	if amended.Runs != 2 {
		t.Fatalf("amended session reports %d runs, want 2", amended.Runs)
	}
	if final, err = c.Drive(info.ID, honest, serve.DriveOptions{Poll: 2 * time.Second}); err != nil || final.State != serve.StateDone {
		t.Fatalf("drive after amend: %v (state %q)", err, final.State)
	}
}

// TestE2EAbortReasonOnShutdown delivers a batch into a session whose
// server shut down mid-flight. The answers are necessarily unknown —
// the abort cleared the batch — but the report must say the session
// died, not let the driver believe it typo'd its keys. The handler
// stays mounted (httptest owns the listener), which is exactly the
// late-delivery window a reverse proxy gives a draining qhornd.
func TestE2EAbortReasonOnShutdown(t *testing.T) {
	srv := serve.New(serve.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Close()
	c := serve.NewClient(hs.URL)
	target := targets(difffuzz.ClassQhorn1, 41, 1)[0]
	honest := serve.AnswererFor(target.U, oracle.Target(target))

	info, err := c.Create(serve.CreateRequest{Variables: target.N(), Algorithm: "qhorn1"})
	if err != nil {
		t.Fatal(err)
	}
	qb, err := c.Questions(info.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if qb.State != serve.StateAwaiting || len(qb.Questions) == 0 {
		t.Fatalf("first poll: state %q with %d questions", qb.State, len(qb.Questions))
	}
	answers := map[string]bool{}
	for _, q := range qb.Questions {
		a, err := honest(q)
		if err != nil {
			t.Fatal(err)
		}
		answers[q.Key] = a
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Answer(info.ID, answers)
	if err != nil {
		t.Fatalf("late delivery: %v", err)
	}
	if rep.AbortReason == "" {
		t.Fatal("late delivery into an aborted session carries no abort reason")
	}
	if rep.Accepted != 0 || len(rep.Unknown) != len(answers) {
		t.Fatalf("aborted delivery: %d accepted, %d unknown (want 0, %d)", rep.Accepted, len(rep.Unknown), len(answers))
	}
	if rep.State != serve.StateFailed {
		t.Fatalf("aborted delivery reports state %q, want failed", rep.State)
	}
}
