package serve_test

// Black-box coverage of the serving-plane hardening (header-read
// timeouts, header-size caps) and of the batched/fused/single wire
// modes: every mode must reproduce the direct learn bit-for-bit, and
// the batched modes must deliver the round-trip reduction the docs
// claim.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/difffuzz"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	engine "qhorn/internal/run"
	"qhorn/internal/serve"
)

// TestSlowHeaderClientDropped is the hardening regression test: a
// client that opens a connection and trickles the request header must
// be cut off by ReadHeaderTimeout instead of pinning a connection
// forever.
func TestSlowHeaderClientDropped(t *testing.T) {
	srv, _ := startServer(t, serve.Config{MemoCapacity: -1, ReadHeaderTimeout: 150 * time.Millisecond})
	addr := strings.TrimPrefix(srv.URL(), "http://")

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request: the request line and one header, never the
	// terminating blank line.
	if _, err := io.WriteString(conn, "GET /healthz HTTP/1.1\r\nHost: qhornd\r\n"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 512)
	for {
		_, err := conn.Read(buf)
		if err != nil {
			break // server dropped us (EOF or reset)
		}
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("slow-header connection survived %v, want drop near the 150ms ReadHeaderTimeout", waited)
	}

	// A well-formed request on a fresh connection still works.
	resp, err := http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatalf("healthy request after slow-client drop: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d after slow-client drop", resp.StatusCode)
	}
}

// TestOversizedHeaderRejected checks the MaxHeaderBytes cap: a header
// past the default 64 KiB budget must be refused, not buffered.
func TestOversizedHeaderRejected(t *testing.T) {
	srv, _ := startServer(t, serve.Config{MemoCapacity: -1})
	req, err := http.NewRequest(http.MethodGet, srv.URL()+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Padding", strings.Repeat("q", serve.DefaultMaxHeaderBytes*2))
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestHeaderFieldsTooLarge {
			t.Fatalf("oversized header got %d, want %d or a dropped connection",
				resp.StatusCode, http.StatusRequestHeaderFieldsTooLarge)
		}
	}
	// err != nil is also acceptable: the server may hang up mid-write.
}

// TestWireModeIdentity drives the same hidden targets through every
// wire mode and requires each run to be bit-identical to the direct
// learn — same learned query, history, and live-question count.
func TestWireModeIdentity(t *testing.T) {
	_, c := startServer(t, serve.Config{MemoCapacity: -1})
	n := 3
	if !testing.Short() {
		n = 8
	}
	for _, wire := range []serve.WireMode{serve.WireBatched, serve.WireFused, serve.WireSingle} {
		t.Run(wire.String(), func(t *testing.T) {
			for _, target := range targets(difffuzz.ClassQhorn1, 31, n) {
				driveIdentity(t, c, target, engine.Qhorn1, serve.DriveOptions{Poll: 2 * time.Second, Wire: wire})
			}
			for _, target := range targets(difffuzz.ClassRP, 32, n) {
				driveIdentity(t, c, target, engine.RolePreserving, serve.DriveOptions{Poll: 2 * time.Second, Wire: wire})
			}
		})
	}
}

// TestWireModeRoundTrips measures HTTP round trips per wire mode on a
// role-preserving learn. Batching must cut round trips by at least 3×
// versus the single-question wire (the docs/SERVICE.md claim), and
// the fused wire must not exceed the batched wire.
func TestWireModeRoundTrips(t *testing.T) {
	srv, _ := startServer(t, serve.Config{MemoCapacity: -1})
	// A wide role-preserving target: six head variables, so the
	// per-head body searches run as six concurrent streams and every
	// Drive round forms a six-question batch — the shape the batched
	// wire exists for.
	u := boolean.MustUniverse(12)
	target := query.MustParse(u, "∀x1x2 → x7 ∀x1x3 → x8 ∀x2x3 → x9 ∀x4x5 → x10 ∀x4x6 → x11 ∀x5x6 → x12")
	rts := map[serve.WireMode]int64{}
	for _, wire := range []serve.WireMode{serve.WireBatched, serve.WireFused, serve.WireSingle} {
		c := serve.NewClient(srv.URL()) // fresh counter per mode
		info, err := c.Create(serve.CreateRequest{Variables: target.N(), Algorithm: engine.RolePreserving.String()})
		if err != nil {
			t.Fatal(err)
		}
		final, err := c.Drive(info.ID, serve.AnswererFor(target.U, oracle.Target(target)), serve.DriveOptions{Poll: 2 * time.Second, Wire: wire})
		if err != nil {
			t.Fatal(err)
		}
		if final.State != serve.StateDone {
			t.Fatalf("wire %s ended %q", wire, final.State)
		}
		rts[wire] = c.RoundTrips()
	}
	t.Logf("round trips: single=%d batched=%d fused=%d", rts[serve.WireSingle], rts[serve.WireBatched], rts[serve.WireFused])
	if rts[serve.WireSingle] < 3*rts[serve.WireBatched] {
		t.Errorf("batched wire made %d round trips vs %d single — want ≥3× reduction",
			rts[serve.WireBatched], rts[serve.WireSingle])
	}
	if rts[serve.WireFused] > rts[serve.WireBatched] {
		t.Errorf("fused wire made %d round trips, batched %d — fusing must not add trips",
			rts[serve.WireFused], rts[serve.WireBatched])
	}
}

// TestAnswerBatchWire exercises the batched answer POST and the fused
// answers?wait= form at the HTTP level, independent of the Client.
func TestAnswerBatchWire(t *testing.T) {
	srv, c := startServer(t, serve.Config{MemoCapacity: -1})
	target := targets(difffuzz.ClassQhorn1, 34, 1)[0]
	info, err := c.Create(serve.CreateRequest{Variables: target.N(), Algorithm: engine.Qhorn1.String()})
	if err != nil {
		t.Fatal(err)
	}
	ans := serve.AnswererFor(target.U, oracle.Target(target))
	qb, err := c.Questions(info.ID, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for qb.State == serve.StateAwaiting && len(qb.Questions) > 0 {
		// Answer the whole batch with one fused POST built by hand.
		body := strings.Builder{}
		body.WriteString(`{"answers":{`)
		for i, q := range qb.Questions {
			if i > 0 {
				body.WriteByte(',')
			}
			a, err := ans(q)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&body, "%q:%v", q.Key, a)
		}
		body.WriteString(`}}`)
		resp, err := http.Post(srv.URL()+"/sessions/"+info.ID+"/answers?wait=2s", "application/json", strings.NewReader(body.String()))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(bufio.NewReader(resp.Body))
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("answers POST %d: %s", resp.StatusCode, raw)
		}
		var rep serve.AnswerReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatalf("answer report %s: %v", raw, err)
		}
		if rep.Accepted != len(qb.Questions) {
			t.Fatalf("accepted %d of %d", rep.Accepted, len(qb.Questions))
		}
		if rep.Next == nil {
			t.Fatal("fused POST returned no next batch")
		}
		qb = *rep.Next
	}
	if qb.State != serve.StateDone {
		t.Fatalf("session ended %q, want done", qb.State)
	}
	if err := c.Delete(info.ID); err != nil {
		t.Fatal(err)
	}
}
