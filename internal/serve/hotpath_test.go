package serve

// White-box coverage of the allocation-bounded hot path (encode.go):
// the CI-gated allocation budgets on question encode, answer decode
// and long-poll delivery, plus property tests pinning the hand-rolled
// JSON subset to encoding/json semantics.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/url"
	"strings"
	"testing"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/run"
)

// awaitingSession builds a server-attached session with one published
// batch of outstanding questions (the learner stand-in is a goroutine
// blocked in the exchange). The cleanup delivers the batch so the
// goroutine unwinds.
func awaitingSession(t *testing.T, tuples ...string) (*session, []boolean.Set) {
	t.Helper()
	srv := New(Config{MemoCapacity: -1})
	sess, err := newSession(srv, "", ModeLearn, run.Qhorn1, 4, "", 0, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	u := sess.u
	qs := make([]boolean.Set, len(tuples))
	for i, s := range tuples {
		set, err := boolean.ParseSet(u, s)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = set
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }() //nolint:errcheck // abortError unwind
		exchange{sess}.AskBatch(qs)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sess.mu.Lock()
		st := sess.state
		sess.mu.Unlock()
		if st == StateAwaiting {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never published; state %q", st)
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		pairs := make([]wireAnswer, 0, len(qs))
		for _, q := range qs {
			pairs = append(pairs, wireAnswer{key: []byte(q.Key()), answer: true})
		}
		var rep answerOutcome
		sess.deliver(pairs, &rep)
		<-done
	})
	return sess, qs
}

// TestServeHotPathAllocs is the CI allocation gate on the serving hot
// path: rendering the outstanding batch (the long-poll delivery body),
// parsing an answer body, and rendering an answer report must not
// allocate in the steady state, given pooled buffers at capacity.
func TestServeHotPathAllocs(t *testing.T) {
	sess, qs := awaitingSession(t, "{1100, 0011}", "{1000}", "{0110, 1001, 1111}")

	buf := make([]byte, 0, 1<<14)
	if allocs := testing.AllocsPerRun(1000, func() {
		buf = sess.questionsInto(buf[:0], 0, 0)
	}); allocs != 0 {
		t.Errorf("questionsInto allocates %.1f times per render, want 0", allocs)
	}

	var body []byte
	body = append(body, `{"answers":{`...)
	for i, q := range qs {
		if i > 0 {
			body = append(body, ',')
		}
		body = appendJSONString(body, q.Key())
		body = append(body, `:true`...)
	}
	body = append(body, `}}`...)
	pairs := make([]wireAnswer, 0, len(qs))
	if allocs := testing.AllocsPerRun(1000, func() {
		var ok bool
		if pairs, ok = parseAnswers(body, pairs[:0]); !ok {
			t.Fatal("fast parser refused a canonical answer body")
		}
	}); allocs != 0 {
		t.Errorf("parseAnswers allocates %.1f times per body, want 0", allocs)
	}

	rep := answerOutcome{accepted: 3, duplicate: 1, outstanding: 2, state: StateAwaiting}
	out := make([]byte, 0, 256)
	if allocs := testing.AllocsPerRun(1000, func() {
		out = appendAnswerReport(out[:0], &rep, false)
	}); allocs != 0 {
		t.Errorf("appendAnswerReport allocates %.1f times per report, want 0", allocs)
	}
}

// TestQuestionsIntoMatchesWire pins the hand-rolled QuestionBatch
// encoder to the wire struct: decoding its output through
// encoding/json yields exactly the batch the session holds.
func TestQuestionsIntoMatchesWire(t *testing.T) {
	sess, qs := awaitingSession(t, "{1100, 0011}", "{1000}")
	b := sess.questionsInto(nil, 0, 0)
	var qb QuestionBatch
	if err := json.Unmarshal(b, &qb); err != nil {
		t.Fatalf("questionsInto produced invalid JSON %q: %v", b, err)
	}
	if qb.State != StateAwaiting {
		t.Fatalf("state %q, want %q", qb.State, StateAwaiting)
	}
	if len(qb.Questions) != len(qs) {
		t.Fatalf("%d questions, want %d", len(qb.Questions), len(qs))
	}
	for i, q := range qs {
		if qb.Questions[i].Key != q.Key() {
			t.Fatalf("question %d key %q, want %q", i, qb.Questions[i].Key, q.Key())
		}
		want := formatTuples(sess.u, q)
		if len(qb.Questions[i].Tuples) != len(want) {
			t.Fatalf("question %d: %d tuples, want %d", i, len(qb.Questions[i].Tuples), len(want))
		}
		for j := range want {
			if qb.Questions[i].Tuples[j] != want[j] {
				t.Fatalf("question %d tuple %d: %q, want %q", i, j, qb.Questions[i].Tuples[j], want[j])
			}
		}
	}
	// The limit renders a prefix.
	b = sess.questionsInto(nil, 0, 1)
	if err := json.Unmarshal(b, &qb); err != nil {
		t.Fatal(err)
	}
	if len(qb.Questions) != 1 || qb.Questions[0].Key != qs[0].Key() {
		t.Fatalf("limit=1 rendered %d questions (first %q)", len(qb.Questions), qb.Questions[0].Key)
	}
}

// TestAppendAnswerReportMatchesWire pins the report encoder to the
// AnswerReport wire struct, including the open form the fused path
// extends with a next batch.
func TestAppendAnswerReportMatchesWire(t *testing.T) {
	rep := answerOutcome{
		accepted:    2,
		duplicate:   1,
		unknown:     [][]byte{[]byte("aa,bb"), []byte("cc")},
		outstanding: 4,
		state:       StateAwaiting,
		abortReason: "",
	}
	var got AnswerReport
	if err := json.Unmarshal(appendAnswerReport(nil, &rep, false), &got); err != nil {
		t.Fatal(err)
	}
	if got.Accepted != 2 || got.Duplicate != 1 || got.Outstanding != 4 || got.State != StateAwaiting {
		t.Fatalf("report mismatch: %+v", got)
	}
	if len(got.Unknown) != 2 || got.Unknown[0] != "aa,bb" || got.Unknown[1] != "cc" {
		t.Fatalf("unknown mismatch: %v", got.Unknown)
	}
	rep.abortReason = "server shutting down"
	open := appendAnswerReport(nil, &rep, true)
	closed := append(append(open, `,"next":{"state":"failed","questions":[]}`...), '}')
	if err := json.Unmarshal(closed, &got); err != nil {
		t.Fatalf("open report + next failed to parse: %v", err)
	}
	if got.AbortReason != "server shutting down" || got.Next == nil || got.Next.State != StateFailed {
		t.Fatalf("fused report mismatch: %+v", got)
	}
}

// TestParseAnswersMatchesStdlib drives the fast scanner against
// encoding/json over generated bodies: whenever the scanner accepts a
// body, its pairs must equal the stdlib decode; bodies it refuses
// must be exactly the ones that exercise escapes, unknown fields or
// malformed syntax.
func TestParseAnswersMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	keyAlphabet := []string{"a1,b2", "ff", "0,1,2", "deadbeef", "k" + strings.Repeat("0", 40)}
	for trial := 0; trial < 500; trial++ {
		answers := map[string]bool{}
		for i, n := 0, rng.Intn(4); i < n; i++ {
			answers[keyAlphabet[rng.Intn(len(keyAlphabet))]+fmt.Sprint(i)] = rng.Intn(2) == 0
		}
		req := AnswerRequest{Answers: answers}
		if rng.Intn(3) == 0 {
			a := rng.Intn(2) == 0
			req.Key, req.Answer = "solo,"+fmt.Sprint(trial), &a
			if len(answers) == 0 {
				req.Answers = nil
			}
		}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		pairs, ok := parseAnswers(body, nil)
		if !ok {
			t.Fatalf("trial %d: fast parser refused canonical body %s", trial, body)
		}
		want := map[string]bool{}
		for k, v := range req.Answers {
			want[k] = v
		}
		if req.Key != "" {
			want[req.Key] = *req.Answer
		}
		if len(pairs) != len(want) {
			t.Fatalf("trial %d: %d pairs from %s, want %d", trial, len(pairs), body, len(want))
		}
		for _, p := range pairs {
			if a, ok := want[string(p.key)]; !ok || a != p.answer {
				t.Fatalf("trial %d: pair %q=%v not in %v", trial, p.key, p.answer, want)
			}
		}
	}

	// Bodies the fast path must refuse — escapes, unknown fields,
	// malformed JSON, half a single form — and leave to encoding/json.
	for _, body := range []string{
		"{\"answers\":{\"a\\u0031\":true}}",
		`{"answers":{"a":true},"extra":1}`,
		`{"answers":{"a":maybe}}`,
		`{"answers":["a"]}`,
		`{"key":"a"}`,
		`{"answers":{"a":true}`,
		`{"answers":{"a":true}} trailing`,
	} {
		if _, ok := parseAnswers([]byte(body), nil); ok {
			t.Errorf("fast parser accepted %q, want fallback", body)
		}
	}
	// The empty object is fine and empty.
	if pairs, ok := parseAnswers([]byte(" { } "), nil); !ok || len(pairs) != 0 {
		t.Errorf("empty object: ok=%v pairs=%v", ok, pairs)
	}
	// An answer with no key is the empty-set question (its canonical
	// key "" is dropped by omitempty on the wire).
	if pairs, ok := parseAnswers([]byte(`{"answer":true}`), nil); !ok || len(pairs) != 1 || len(pairs[0].key) != 0 || !pairs[0].answer {
		t.Errorf("keyless answer: ok=%v pairs=%v, want one empty-key pair", ok, pairs)
	}
}

// TestAppendJSONStringMatchesStdlib pins the string fast path (and
// its escape fallback) to json.Marshal for adversarial inputs.
func TestAppendJSONStringMatchesStdlib(t *testing.T) {
	cases := []string{
		"", "plain", "a1,b2", "with space", `quote"inside`, `back\slash`,
		"control\x01char", "tab\there", "unicode µ Ω 試", "emoji 🎲",
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		b := make([]byte, rng.Intn(12))
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		cases = append(cases, string(b))
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got string
		if err := json.Unmarshal(appendJSONString(nil, s), &got); err != nil {
			t.Fatalf("appendJSONString(%q) produced invalid JSON: %v", s, err)
		}
		var wantS string
		if err := json.Unmarshal(want, &wantS); err != nil {
			t.Fatal(err)
		}
		if got != wantS {
			t.Fatalf("appendJSONString(%q) decodes to %q, stdlib %q", s, got, wantS)
		}
	}
}

// TestQueryParam pins the allocation-free query extractor to net/url.
func TestQueryParam(t *testing.T) {
	for _, raw := range []string{
		"", "wait=2s", "wait=2s&limit=1", "limit=1&wait=250ms", "other=x",
		"wait=", "waitx=3s", "limit=0", "a=b&wait=30s&c=d", "wait",
	} {
		want, err := url.ParseQuery(raw)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"wait", "limit"} {
			if got := queryParam(raw, key); got != want.Get(key) {
				t.Errorf("queryParam(%q, %q) = %q, url.Values %q", raw, key, got, want.Get(key))
			}
		}
	}
}

// TestHardenedTimeoutDefaults checks the Config→http.Server timeout
// mapping: zero selects the hardened defaults, negative disables.
func TestHardenedTimeoutDefaults(t *testing.T) {
	srv := New(Config{MemoCapacity: -1})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := srv.srv
	if hs.ReadHeaderTimeout != DefaultReadHeaderTimeout {
		t.Errorf("ReadHeaderTimeout %v, want %v", hs.ReadHeaderTimeout, DefaultReadHeaderTimeout)
	}
	if hs.WriteTimeout != DefaultWriteTimeout {
		t.Errorf("WriteTimeout %v, want %v", hs.WriteTimeout, DefaultWriteTimeout)
	}
	if hs.IdleTimeout != DefaultIdleTimeout {
		t.Errorf("IdleTimeout %v, want %v", hs.IdleTimeout, DefaultIdleTimeout)
	}
	if hs.MaxHeaderBytes != DefaultMaxHeaderBytes {
		t.Errorf("MaxHeaderBytes %d, want %d", hs.MaxHeaderBytes, DefaultMaxHeaderBytes)
	}
	if DefaultWriteTimeout <= maxQuestionWait {
		t.Fatalf("DefaultWriteTimeout %v must exceed maxQuestionWait %v or long-polls get cut", DefaultWriteTimeout, maxQuestionWait)
	}

	srv2 := New(Config{MemoCapacity: -1, ReadHeaderTimeout: -1, WriteTimeout: -1, IdleTimeout: -1, MaxHeaderBytes: -1})
	if err := srv2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	hs2 := srv2.srv
	if hs2.ReadHeaderTimeout != 0 || hs2.WriteTimeout != 0 || hs2.IdleTimeout != 0 || hs2.MaxHeaderBytes != 0 {
		t.Errorf("negative config should disable limits, got %v/%v/%v/%d",
			hs2.ReadHeaderTimeout, hs2.WriteTimeout, hs2.IdleTimeout, hs2.MaxHeaderBytes)
	}
}
