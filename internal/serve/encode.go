package serve

// Allocation-bounded JSON for the qhornd hot path. The two routes a
// drive loop hammers — GET /sessions/{id}/questions and POST
// /sessions/{id}/answers — never go through encoding/json in the
// steady state: responses are appended into pooled byte buffers by
// hand-rolled encoders (question keys and tuples are plain ASCII, so
// the string fast path is branch-per-byte, escape-free),
// and the answer body is parsed by a minimal scanner that borrows its
// keys from the request buffer — the m[string(b)] map-lookup form
// compiles to a no-alloc lookup, so a full delivery allocates only
// when it must retain data past the request. Anything the scanner
// does not recognize (escaped strings, unknown fields) falls back to
// encoding/json, property-tested equivalent in encode_test.go.

import (
	"bytes"
	"encoding/json"
	"strconv"
	"sync"
)

// bufPool recycles request/response byte buffers across requests.
// Buffers that grew beyond maxPooledBuf are dropped so one giant
// history render cannot pin memory forever.
var bufPool = sync.Pool{New: func() interface{} { b := make([]byte, 0, 4096); return &b }}

const maxPooledBuf = 1 << 17

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// answerScratch is the pooled per-request state of handleAnswers: the
// parsed key/answer pairs plus the decoded body they alias.
type answerScratch struct {
	pairs []wireAnswer
	rep   answerOutcome
}

var answerPool = sync.Pool{New: func() interface{} { return new(answerScratch) }}

// wireAnswer is one parsed answer; key aliases the request buffer and
// must not be retained past the handler.
type wireAnswer struct {
	key    []byte
	answer bool
}

// appendJSONString appends s as a JSON string. Question keys, session
// states and tuple strings are plain ASCII, so the fast path is a
// single scan + copy; anything needing escapes takes the stdlib path.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			q, _ := json.Marshal(s) // cold path: exact JSON escaping
			return append(b, q...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendJSONBytes is appendJSONString over a borrowed byte slice.
func appendJSONBytes(b, s []byte) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			q, _ := json.Marshal(string(s))
			return append(b, q...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendBool appends a JSON boolean.
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

// answerOutcome is the deliver result before encoding. Unknown holds
// slices aliasing the request buffer; the handler encodes the report
// before the buffer returns to the pool.
type answerOutcome struct {
	accepted    int
	duplicate   int
	unknown     [][]byte
	outstanding int
	state       string
	abortReason string
}

// appendAnswerReport renders an answerOutcome as the AnswerReport wire
// JSON, minus the closing brace when open is true (the fused path
// appends ,"next":{...} before closing).
func appendAnswerReport(b []byte, rep *answerOutcome, open bool) []byte {
	b = append(b, `{"accepted":`...)
	b = strconv.AppendInt(b, int64(rep.accepted), 10)
	b = append(b, `,"duplicate":`...)
	b = strconv.AppendInt(b, int64(rep.duplicate), 10)
	if len(rep.unknown) > 0 {
		b = append(b, `,"unknown":[`...)
		for i, k := range rep.unknown {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONBytes(b, k)
		}
		b = append(b, ']')
	}
	b = append(b, `,"outstanding":`...)
	b = strconv.AppendInt(b, int64(rep.outstanding), 10)
	b = append(b, `,"state":`...)
	b = appendJSONString(b, rep.state)
	if rep.abortReason != "" {
		b = append(b, `,"abort_reason":`...)
		b = appendJSONString(b, rep.abortReason)
	}
	if !open {
		b = append(b, '}')
	}
	return b
}

// ---- minimal answer-body scanner ----

// parseAnswers parses the hot-path subset of an AnswerRequest body —
// {"answers":{"<key>":bool,...}} and/or {"key":"<key>","answer":bool}
// with no escaped strings — appending pairs into dst. ok=false means
// the body needs the encoding/json fallback (it may still be valid).
func parseAnswers(body []byte, dst []wireAnswer) (out []wireAnswer, ok bool) {
	p := scanner{buf: body}
	p.space()
	if !p.lit('{') {
		return dst, false
	}
	p.space()
	if p.lit('}') {
		p.space()
		return dst, p.eof()
	}
	var singleKey []byte
	var singleAns *bool
	for {
		field, ok := p.str()
		if !ok || !p.colon() {
			return dst, false
		}
		switch {
		case bytes.Equal(field, keyAnswers):
			if !p.lit('{') {
				return dst, false
			}
			p.space()
			if !p.lit('}') {
				for {
					k, ok := p.str()
					if !ok || !p.colon() {
						return dst, false
					}
					v, ok := p.boolean()
					if !ok {
						return dst, false
					}
					dst = append(dst, wireAnswer{key: k, answer: v})
					p.space()
					if p.lit(',') {
						p.space()
						continue
					}
					if !p.lit('}') {
						return dst, false
					}
					break
				}
			}
		case bytes.Equal(field, keyKey):
			k, ok := p.str()
			if !ok {
				return dst, false
			}
			singleKey = k
		case bytes.Equal(field, keyAnswer):
			v, ok := p.boolean()
			if !ok {
				return dst, false
			}
			singleAns = &v
		default:
			return dst, false // unknown field: let encoding/json decide
		}
		p.space()
		if p.lit(',') {
			p.space()
			continue
		}
		if !p.lit('}') {
			return dst, false
		}
		break
	}
	p.space()
	if !p.eof() {
		return dst, false
	}
	// The single-question form needs only the answer: the empty-set
	// question's canonical key is "", which omitempty drops from the
	// body, so a missing key means the empty key. A key without an
	// answer is malformed — fall back for the error message.
	if singleAns != nil {
		dst = append(dst, wireAnswer{key: singleKey, answer: *singleAns})
	} else if len(singleKey) > 0 {
		return dst, false
	}
	return dst, true
}

var (
	keyAnswers = []byte("answers")
	keyKey     = []byte("key")
	keyAnswer  = []byte("answer")
)

// scanner is a cursor over an answer body.
type scanner struct {
	buf []byte
	i   int
}

func (p *scanner) space() {
	for p.i < len(p.buf) {
		switch p.buf[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *scanner) eof() bool { return p.i == len(p.buf) }

func (p *scanner) lit(c byte) bool {
	if p.i < len(p.buf) && p.buf[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *scanner) colon() bool {
	p.space()
	if !p.lit(':') {
		return false
	}
	p.space()
	return true
}

// str parses a JSON string with no escapes, returning the borrowed
// content bytes.
func (p *scanner) str() ([]byte, bool) {
	p.space()
	if !p.lit('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.buf) {
		switch c := p.buf[p.i]; {
		case c == '"':
			s := p.buf[start:p.i]
			p.i++
			return s, true
		case c == '\\' || c < 0x20:
			return nil, false // escapes: stdlib fallback
		default:
			p.i++
		}
	}
	return nil, false
}

func (p *scanner) boolean() (bool, bool) {
	p.space()
	if bytes.HasPrefix(p.buf[p.i:], jsonTrue) {
		p.i += len(jsonTrue)
		return true, true
	}
	if bytes.HasPrefix(p.buf[p.i:], jsonFalse) {
		p.i += len(jsonFalse)
		return false, true
	}
	return false, false
}

var (
	jsonTrue  = []byte("true")
	jsonFalse = []byte("false")
)

// queryParam extracts the raw value of key from a raw query string
// without building the url.Values map. Values on the hot path (wait
// durations, limits) never contain %-escapes; a value that does is
// returned raw and fails its downstream parse like any garbage.
func queryParam(rawQuery, key string) string {
	for len(rawQuery) > 0 {
		part := rawQuery
		if i := indexByte(rawQuery, '&'); i >= 0 {
			part, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			rawQuery = ""
		}
		if len(part) > len(key) && part[len(key)] == '=' && part[:len(key)] == key {
			return part[len(key)+1:]
		}
	}
	return ""
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}
