package serve

// This file is the per-session state machine of the qhornd server: a
// resumable learn/verify run whose oracle is the network. A learner
// goroutine runs the ordinary engine (learn.Run / verify.Set.RunWith
// with run.WithBatch) over an interaction-history Session
// (internal/session); at the bottom of that stack sits the answer
// exchange, an oracle.BatchOracle whose AskBatch publishes the batch
// as the session's outstanding questions and blocks until remote
// answers — arriving out of order over POST /sessions/{id}/answers,
// keyed by canonical boolean.Set.Key — have settled every one of
// them. Control is fully inverted: the algorithm drives the question
// stream exactly as it would against a local user, and HTTP handlers
// only deliver answers and observe state.
//
// States:
//
//	learning          the learner goroutine is computing; no
//	                  outstanding questions
//	awaiting-answers  an outstanding batch is published; the learner
//	                  is blocked in the exchange
//	done              the run finished; the learned query (or the
//	                  verification verdict) is available
//	failed            the run aborted: question budget exhausted,
//	                  session deleted, or server shutdown
//
// done is not terminal: POST /sessions/{id}/amend flips a recorded
// answer and relaunches the learner over the corrected history — the
// paper's §5 revision loop — replaying settled questions for free.

import (
	"fmt"
	"sync"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/revise"
	"qhorn/internal/run"
	qsession "qhorn/internal/session"
	"qhorn/internal/verify"
)

// Session states, as reported by the wire SessionInfo.State.
const (
	StateLearning = "learning"
	StateAwaiting = "awaiting-answers"
	StateDone     = "done"
	StateFailed   = "failed"
)

// Session modes.
const (
	ModeLearn  = "learn"
	ModeVerify = "verify"
)

// abortError is the panic value the exchange raises into a learner
// whose session was deleted or whose server is shutting down.
type abortError struct{ reason string }

func (e abortError) Error() string { return "serve: session aborted: " + e.reason }

// pendingQ is one outstanding question of the current batch. The
// session reuses its pqs slice across rounds, so entries (and their
// tuples slices) are recycled rather than reallocated per question.
type pendingQ struct {
	key      string
	q        boolean.Set
	tuples   []string // fixed-width wire rendering, formatted once at publish
	posted   time.Time
	answered bool
	answer   bool
}

// session is one live learn/verify session. All mutable state is
// guarded by mu; the learner goroutine only touches it through the
// exchange (AskBatch) and the terminal transition in run.
type session struct {
	id  string
	srv *Server

	mode      string
	alg       run.Algorithm
	u         boolean.Universe
	givenStr  string
	user      string     // oracle identity in the shared memo tier; "" detached
	vs        verify.Set // verify mode: the prebuilt verification set
	budget    *oracle.Budget
	budgetCap int // -1 unlimited, else the admitted live-question cap

	mu          sync.Mutex
	state       string
	stateSeq    chan struct{} // closed and replaced on every state change
	running     bool
	aborted     bool
	abortReason string

	// hist is the learner's interaction history. The learner goroutine
	// mutates it OUTSIDE mu (inside qsession recording, between
	// exchange calls), so handlers never read hist while the learner is
	// computing; they read the histEntries/histLen/histLive cache,
	// captured under mu at the quiescent points (batch publication, run
	// termination, amend).
	hist        *qsession.Session
	histEntries []qsession.Entry
	histLen     int
	histLive    int
	pending     map[string]int32 // key → index into pqs
	pqs         []pendingQ       // current batch in posted order, reused across rounds
	remaining   int
	waiting     bool          // a batch is blocked on wake
	wake        chan struct{} // cap 1; one token when the batch settles or aborts
	settled     map[string]bool

	runs        int
	haveLearned bool
	learned     query.Query
	stats       run.Stats
	statsKnown  bool         // stats came from a full learn; false after a revise run
	reviseFrom  *query.Query // amend set it: revise this query instead of relearning
	revision    *RevisionInfo
	verdict     *verify.Result
	failure     string
}

// newSession builds an unlaunched session; the caller inserts it into
// a shard and calls launch. history, when non-nil, is a snapshot's
// session.EncodeJSON payload to resume from; otherwise variables
// sizes a fresh universe.
func newSession(srv *Server, id, mode string, alg run.Algorithm, variables int, givenStr string, budgetCap int, userID string, history []byte) (*session, error) {
	s := &session{
		id:        srv.nextID(id),
		srv:       srv,
		mode:      mode,
		alg:       alg,
		givenStr:  givenStr,
		user:      userID,
		budgetCap: budgetCap,
		state:     StateLearning,
		stateSeq:  make(chan struct{}),
		wake:      make(chan struct{}, 1),
		pending:   map[string]int32{},
		settled:   map[string]bool{},
	}
	// The oracle under the interaction history, innermost first:
	// exchange (the wire) → budget → shared memo tier. The tier sits
	// above the budget so questions another session of this user
	// already settled cost this session nothing; with a cold tier it
	// forwards every batch unchanged, so question sequences stay
	// bit-identical to a direct learn.Run.
	var user oracle.Oracle = exchange{s}
	if budgetCap > 0 {
		s.budget = oracle.WithBudgetInto(user, budgetCap, srv.reg)
		user = s.budget
	}
	if userID != "" {
		user = srv.memo.Oracle(userID, user)
	}
	if history != nil {
		hist, u, err := qsession.DecodeJSON(history, user)
		if err != nil {
			return nil, fmt.Errorf("serve: resume: %w", err)
		}
		s.hist, s.u = hist, u
		for _, e := range hist.Entries() {
			s.settled[e.Question.Key()] = true
		}
	} else {
		u, err := boolean.NewUniverse(variables)
		if err != nil {
			return nil, err
		}
		if variables == 0 {
			return nil, fmt.Errorf("serve: a session needs at least one variable")
		}
		s.hist, s.u = qsession.New(user), u
	}
	if mode == ModeVerify {
		given, err := query.Parse(s.u, givenStr)
		if err != nil {
			return nil, fmt.Errorf("serve: given query: %w", err)
		}
		vs, err := verify.Build(given)
		if err != nil {
			return nil, fmt.Errorf("serve: given query: %w", err)
		}
		s.vs = vs
	}
	s.captureHistoryLocked() // not yet shared: no lock needed
	return s, nil
}

// captureHistoryLocked refreshes the handler-facing history cache.
// Called under s.mu at the points where hist is quiescent: when the
// exchange publishes a batch (the learner, the only mutator, is about
// to block), when the run terminates, and after an amendment.
func (s *session) captureHistoryLocked() {
	s.histEntries = s.hist.Entries()
	s.histLen = s.hist.Len()
	s.histLive = s.hist.LiveQuestions
}

// launch starts a learner run; the caller must have admitted the
// session (Server.admit) and hold no locks.
func (s *session) launch() {
	s.mu.Lock()
	s.running = true
	s.aborted = false
	s.runs++
	s.haveLearned = false
	s.statsKnown = false
	s.revision = nil
	s.verdict = nil
	s.failure = ""
	s.setStateLocked(StateLearning)
	s.mu.Unlock()
	s.srv.wg.Add(1)
	go s.run()
}

// setStateLocked transitions the state and wakes every long-poller.
// Callers hold s.mu.
func (s *session) setStateLocked(state string) {
	s.state = state
	close(s.stateSeq)
	s.stateSeq = make(chan struct{})
}

// run is the learner goroutine: one full engine run over the
// interaction history, terminating in done or failed.
func (s *session) run() {
	defer s.srv.wg.Done()
	outcome := "done"
	defer func() {
		r := recover()
		s.mu.Lock()
		s.running = false
		s.captureHistoryLocked()
		if r != nil {
			switch v := r.(type) {
			case abortError:
				outcome, s.failure = "aborted", v.reason
			case oracle.ErrBudget:
				outcome, s.failure = "budget", v.Error()
			default:
				outcome, s.failure = "panic", fmt.Sprintf("learner panic: %v", v)
				s.srv.logf("serve: session %s: %s", s.id, s.failure)
			}
			s.setStateLocked(StateFailed)
		} else {
			s.setStateLocked(StateDone)
		}
		s.mu.Unlock()
		s.srv.sessionExit(outcome)
	}()

	opts := []run.Option{
		run.WithAlgorithm(s.alg),
		run.WithBatch(),
		run.WithCounter(),
		run.WithInstrumentation(run.Instrumentation{Spans: s.srv.tracer, Metrics: s.srv.reg}),
	}
	if s.mode == ModeVerify {
		res := s.vs.RunWith(s.hist, opts...)
		s.mu.Lock()
		s.verdict = &res
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	reviseFrom := s.reviseFrom
	s.reviseFrom = nil
	s.mu.Unlock()
	if reviseFrom != nil {
		// The amendment fast path (§5 + the §6 revision sketch): replay
		// the prior run's settled history through internal/revise, so
		// only the damaged sub-lattice generates new wire questions. The
		// history replays recorded answers for free; revise verifies the
		// prior learned query against it, repairs the implicated parts,
		// and escalates to a full learn only if damage attribution
		// under-approximated.
		if res, err := revise.Revise(*reviseFrom, s.hist); err == nil {
			s.mu.Lock()
			s.learned, s.haveLearned = res.Revised, true
			s.revision = &RevisionInfo{
				VerificationQuestions: res.VerificationQuestions,
				RepairQuestions:       res.RepairQuestions,
				Escalated:             res.Escalated,
			}
			s.mu.Unlock()
			return
		}
		// Revise refused (the prior query left the role-preserving
		// class): fall back to a full relearn.
	}
	q, st := learn.Run(s.u, s.hist, opts...)
	s.mu.Lock()
	s.learned, s.stats, s.haveLearned, s.statsKnown = q, st, true, true
	s.mu.Unlock()
}

// exchange is the network-facing oracle at the bottom of a session's
// stack: AskBatch publishes the batch and blocks the learner until
// every question is answered over HTTP.
type exchange struct{ s *session }

// Ask implements oracle.Oracle; a lone adaptive question (a binary-
// search probe) is a batch of one.
func (e exchange) Ask(q boolean.Set) bool { return e.AskBatch([]boolean.Set{q})[0] }

// AskBatch implements oracle.BatchOracle. The session history above
// guarantees the batch holds distinct, never-before-asked questions.
// The pending table (pqs + index map) and the wake channel are reused
// across rounds, so a round allocates only the answers slice handed
// back up the oracle stack.
func (e exchange) AskBatch(qs []boolean.Set) []bool {
	s := e.s
	s.mu.Lock()
	if s.aborted {
		reason := s.abortReason
		s.mu.Unlock()
		panic(abortError{reason})
	}
	now := time.Now()
	s.waiting = true
	s.remaining = len(qs)
	if n := len(qs); n <= cap(s.pqs) {
		s.pqs = s.pqs[:n]
	} else {
		s.pqs = append(s.pqs[:cap(s.pqs)], make([]pendingQ, n-cap(s.pqs))...)
	}
	for i, q := range qs {
		p := &s.pqs[i]
		key := q.Key()
		p.key, p.q, p.posted, p.answered = key, q, now, false
		p.tuples = formatTuplesInto(p.tuples[:0], s.u, q)
		s.pending[key] = int32(i)
	}
	s.srv.outstanding.Add(float64(len(qs)))
	s.captureHistoryLocked() // the learner is about to block: hist is quiescent
	s.setStateLocked(StateAwaiting)
	s.mu.Unlock()

	<-s.wake

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aborted {
		panic(abortError{s.abortReason})
	}
	answers := make([]bool, len(qs))
	for i := range s.pqs {
		answers[i] = s.pqs[i].answer
	}
	clear(s.pending)
	s.pqs = s.pqs[:0]
	return answers
}

// deliver applies (possibly partial, possibly out-of-order) answer
// pairs to the outstanding batch, filling rep. Unknown keys are
// reported (as borrowed slices of the request buffer — the handler
// encodes before releasing it), repeats of settled questions counted
// as duplicates; when the last outstanding question settles the
// learner wakes and the state returns to learning. Keys reach the
// pending and settled maps through the m[string(b)] form, which the
// compiler lowers to an allocation-free lookup.
func (s *session) deliver(pairs []wireAnswer, rep *answerOutcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pa := range pairs {
		idx, ok := s.pending[string(pa.key)]
		if !ok {
			if s.settled[string(pa.key)] {
				rep.duplicate++
			} else {
				rep.unknown = append(rep.unknown, pa.key)
			}
			continue
		}
		p := &s.pqs[idx]
		if p.answered {
			rep.duplicate++
			continue
		}
		p.answered, p.answer = true, pa.answer
		s.settled[p.key] = true
		s.remaining--
		rep.accepted++
		s.srv.outstanding.Add(-1)
		s.srv.answerLatency.Observe(time.Since(p.posted).Seconds())
	}
	if s.remaining == 0 && s.waiting {
		s.waiting = false
		s.wake <- struct{}{} // cap 1; at most one token in flight (see abort)
		s.setStateLocked(StateLearning)
	}
	rep.outstanding = s.remaining
	rep.state = s.state
	if s.aborted {
		// The abort cleared the batch, so answers that were
		// legitimately in flight land in Unknown; the reason tells the
		// driver the session died rather than that it typo'd a key.
		rep.abortReason = s.abortReason
	}
}

// deliverMap adapts deliver to a decoded answer map — the cold path
// of bodies the fast scanner refused, and of direct in-process use.
func (s *session) deliverMap(answers map[string]bool) AnswerReport {
	pairs := make([]wireAnswer, 0, len(answers))
	for k, a := range answers {
		pairs = append(pairs, wireAnswer{key: []byte(k), answer: a})
	}
	var out answerOutcome
	s.deliver(pairs, &out)
	rep := AnswerReport{
		Accepted:    out.accepted,
		Duplicate:   out.duplicate,
		Outstanding: out.outstanding,
		State:       out.state,
		AbortReason: out.abortReason,
	}
	for _, k := range out.unknown {
		rep.Unknown = append(rep.Unknown, string(k))
	}
	return rep
}

// abort wakes a blocked learner with a panic and marks the session so
// any later question also aborts. Aborting a finished session is a
// no-op.
func (s *session) abort(reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aborted || !s.running {
		return
	}
	s.aborted = true
	s.abortReason = reason
	if s.waiting {
		s.waiting = false
		s.srv.outstanding.Add(-float64(s.remaining))
		s.remaining = 0
		clear(s.pending)
		s.pqs = s.pqs[:0]
		s.wake <- struct{}{} // cap 1; the waiting flag serializes producers
	}
}

// questionsInto renders the outstanding batch as QuestionBatch wire
// JSON appended to b. A positive wait long-polls: while the session
// is computing (state learning) the call blocks — up to wait — for
// the next state change, so drivers see fresh batches without
// busy-polling. limit > 0 caps the rendered questions, the single-
// question compatibility mode (?limit=1). Tuples were formatted once
// at batch publication, so rendering is a pure append pass.
func (s *session) questionsInto(b []byte, wait time.Duration, limit int) []byte {
	deadline := time.Now().Add(wait)
	for {
		s.mu.Lock()
		if s.state != StateLearning || time.Now().After(deadline) {
			b = append(b, `{"state":`...)
			b = appendJSONString(b, s.state)
			b = append(b, `,"questions":[`...)
			n := 0
			for i := range s.pqs {
				p := &s.pqs[i]
				if p.answered {
					continue
				}
				if limit > 0 && n == limit {
					break
				}
				if n > 0 {
					b = append(b, ',')
				}
				n++
				b = append(b, `{"key":`...)
				b = appendJSONString(b, p.key)
				b = append(b, `,"tuples":[`...)
				for j, t := range p.tuples {
					if j > 0 {
						b = append(b, ',')
					}
					b = appendJSONString(b, t)
				}
				b = append(b, "]}"...)
			}
			b = append(b, "]}"...)
			s.mu.Unlock()
			return b
		}
		ch := s.stateSeq
		s.mu.Unlock()
		remaining := time.Until(deadline)
		if remaining <= 0 {
			continue
		}
		timer := time.NewTimer(remaining)
		select {
		case <-ch:
		case <-timer.C:
		}
		timer.Stop()
	}
}

// info snapshots the session for GET /sessions/{id}.
func (s *session) info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	in := SessionInfo{
		ID:                s.id,
		State:             s.state,
		Mode:              s.mode,
		Algorithm:         s.alg.String(),
		Variables:         s.u.N(),
		User:              s.user,
		Runs:              s.runs,
		Outstanding:       s.remaining,
		QuestionsOnRecord: s.histLen,
		LiveQuestions:     s.histLive,
		Revision:          s.revision,
		Error:             s.failure,
	}
	if s.mode == ModeVerify {
		in.Given = s.givenStr
	}
	if s.budget != nil {
		r := s.budget.Remaining()
		in.BudgetRemaining = &r
	}
	if s.haveLearned {
		in.Learned = s.learned.String()
		if s.statsKnown {
			in.Stats = &StatsInfo{
				HeadQuestions:        s.stats.HeadQuestions,
				BodyQuestions:        s.stats.BodyQuestions,
				ExistentialQuestions: s.stats.ExistentialQuestions,
				Total:                s.stats.Total(),
			}
		}
	}
	if s.verdict != nil {
		v := &VerifyInfo{Correct: s.verdict.Correct, QuestionsAsked: s.verdict.QuestionsAsked}
		for _, d := range s.verdict.Disagreements {
			v.Disagreements = append(v.Disagreements, WireQuestion{
				Key:    d.Question.Set.Key(),
				Tuples: formatTuples(s.u, d.Question.Set),
			})
		}
		in.Verify = v
	}
	return in
}

// history renders the recorded interaction history from the quiescent-
// point cache, so it is safe (and consistent) even while the learner is
// computing.
func (s *session) history() []HistoryEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.histEntries
	out := make([]HistoryEntry, len(entries))
	for i, e := range entries {
		out[i] = HistoryEntry{
			Index:   i,
			Tuples:  formatTuples(s.u, e.Question),
			Answer:  e.Answer,
			Amended: e.Amended,
		}
	}
	return out
}

// snapshot serializes the session for crash/resume. While the learner
// is computing the history is in motion, so the caller gets
// errSnapshotBusy and should retry; while awaiting answers (or done,
// or failed) the history is quiescent. Answers of the in-flight batch
// are not yet on record — resume re-asks that batch, and nothing else.
func (s *session) snapshot() (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running && s.state == StateLearning {
		return Snapshot{}, errSnapshotBusy
	}
	hist, err := s.hist.EncodeJSON(s.u)
	if err != nil {
		return Snapshot{}, err
	}
	snap := Snapshot{
		Version:   1,
		Mode:      s.mode,
		Algorithm: s.alg.String(),
		Given:     s.givenStr,
		Budget:    -1,
		User:      s.user,
		History:   hist,
	}
	if s.budget != nil {
		snap.Budget = s.budget.Remaining()
	}
	return snap, nil
}

// errSnapshotBusy reports a snapshot attempt while the learner is
// computing between batches; the handler maps it to 409.
var errSnapshotBusy = fmt.Errorf("serve: session is computing; retry snapshot shortly")

// amend flips recorded answers (by history index, or by question key)
// and reruns the learner over the corrected history — the §5 revision
// loop. Only a finished (done or failed) session may amend; an
// in-flight run would race its own history.
//
// Eligible learn sessions take the revision fast path: the prior
// learned query is repaired through internal/revise over the replayed
// history instead of relearned from scratch. Eligibility requires the
// role-preserving algorithm with a learned query on record — the rp
// learner emits Prop 4.1 normal forms, so the revised query is
// textually identical to what a full relearn would produce; the
// qhorn-1 learner's output is not normalized, so those sessions
// relearn to preserve bit-identity.
func (s *session) amend(req AmendRequest) error {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		return fmt.Errorf("serve: session is still running; answer or delete it before amending")
	}
	if req.Index == nil && req.Key == "" {
		s.mu.Unlock()
		return fmt.Errorf("serve: amend needs an index or a key")
	}
	eligible := s.mode == ModeLearn && s.alg == run.RolePreserving &&
		s.haveLearned && s.learned.IsRolePreserving()
	var reviseFrom *query.Query
	switch req.Strategy {
	case "", StrategyAuto:
		if eligible {
			prior := s.learned
			reviseFrom = &prior
		}
	case StrategyRelearn:
	case StrategyRevise:
		if !eligible {
			s.mu.Unlock()
			return fmt.Errorf("serve: session not eligible for the revision fast path (need a finished role-preserving learn)")
		}
		prior := s.learned
		reviseFrom = &prior
	default:
		s.mu.Unlock()
		return fmt.Errorf("serve: unknown amend strategy %q (want auto, relearn or revise)", req.Strategy)
	}
	var err error
	var fixedAt int
	if req.Index != nil {
		fixedAt, err = *req.Index, s.hist.Amend(*req.Index)
	} else {
		fixedAt, err = s.amendByKeyLocked(req.Key)
	}
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if s.user != "" {
		// Propagate the correction into the shared tier, so later
		// sessions of this user see the corrected answer instead of
		// the stale one.
		e := s.hist.Entries()[fixedAt]
		s.srv.memo.Update(s.user, e.Question, e.Answer)
	}
	s.reviseFrom = reviseFrom
	s.hist.ResetRun()
	s.captureHistoryLocked()
	s.mu.Unlock()
	if !s.srv.relaunch(s) {
		return fmt.Errorf("serve: server is shutting down")
	}
	return nil
}

// Amend strategies (AmendRequest.Strategy).
const (
	StrategyAuto    = "auto"
	StrategyRelearn = "relearn"
	StrategyRevise  = "revise"
)

// amendByKeyLocked flips the recorded answer of the history entry with
// the given canonical key, returning its index. Callers hold s.mu.
func (s *session) amendByKeyLocked(key string) (int, error) {
	for i, e := range s.hist.Entries() {
		if e.Question.Key() == key {
			return i, s.hist.AmendQuestion(e.Question)
		}
	}
	return 0, fmt.Errorf("serve: no history entry with key %q", key)
}

// formatTuples renders a question's tuples in the paper's fixed-width
// notation, the wire format answerers evaluate against.
func formatTuples(u boolean.Universe, q boolean.Set) []string {
	return formatTuplesInto(make([]string, 0, len(q.Tuples())), u, q)
}

// formatTuplesInto is formatTuples appending into dst, so a recycled
// pendingQ reuses its tuples slice across rounds.
func formatTuplesInto(dst []string, u boolean.Universe, q boolean.Set) []string {
	for _, t := range q.Tuples() {
		dst = append(dst, u.Format(t))
	}
	return dst
}
