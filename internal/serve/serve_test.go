package serve_test

// Unit coverage of the server's edges: admission control, budgets,
// unknown sessions, malformed requests, answer-report accounting and
// the amend guard rails. Everything here runs in -short mode and backs
// the CI coverage floor.

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/serve"
)

func TestAdmissionControl(t *testing.T) {
	srv, c := startServer(t, serve.Config{MaxSessions: 1})
	first, err := c.Create(serve.CreateRequest{Variables: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Create(serve.CreateRequest{Variables: 3})
	if !serve.IsStatus(err, http.StatusTooManyRequests) {
		t.Fatalf("second create got %v, want 429", err)
	}
	if got := srv.Registry().CounterValue(obs.MetricServeRejected); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}
	// Draining the first session frees the slot.
	u, _ := boolean.NewUniverse(3)
	target, _ := query.Parse(u, "Ex1")
	if _, err := c.Drive(first.ID, serve.AnswererFor(u, oracle.Target(target)), serve.DriveOptions{Poll: time.Second}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(serve.CreateRequest{Variables: 3}); err != nil {
		t.Fatalf("create after drain: %v", err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	srv, c := startServer(t, serve.Config{})
	info, err := c.Create(serve.CreateRequest{Variables: 4, Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if info.BudgetRemaining == nil || *info.BudgetRemaining > 2 {
		t.Fatalf("budgeted session reports remaining %v", info.BudgetRemaining)
	}
	u, _ := boolean.NewUniverse(4)
	target, _ := query.Parse(u, "Ax1 -> x2 Ax3 -> x4")
	final, err := c.Drive(info.ID, serve.AnswererFor(u, oracle.Target(target)), serve.DriveOptions{Poll: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateFailed {
		t.Fatalf("2-question budget ended %q, want failed", final.State)
	}
	if !strings.Contains(final.Error, "budget") {
		t.Fatalf("failure %q does not mention the budget", final.Error)
	}
	if got := srv.Registry().CounterValue(obs.MetricServeSessions, "outcome", "budget"); got != 1 {
		t.Fatalf("budget outcome counter %d, want 1", got)
	}
}

func TestServerDefaultBudget(t *testing.T) {
	_, c := startServer(t, serve.Config{Budget: 3})
	info, err := c.Create(serve.CreateRequest{Variables: 3})
	if err != nil {
		t.Fatal(err)
	}
	if info.BudgetRemaining == nil || *info.BudgetRemaining != 3 {
		t.Fatalf("server-default budget not applied: remaining %v", info.BudgetRemaining)
	}
	// An explicit negative budget opts out of the server default.
	unlimited, err := c.Create(serve.CreateRequest{Variables: 3, Budget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.BudgetRemaining != nil {
		t.Fatalf("budget -1 still budgeted: remaining %v", *unlimited.BudgetRemaining)
	}
}

func TestUnknownSession(t *testing.T) {
	_, c := startServer(t, serve.Config{})
	if _, err := c.Info("nope"); !serve.IsStatus(err, 404) {
		t.Errorf("info: %v, want 404", err)
	}
	if _, err := c.Questions("nope", 0); !serve.IsStatus(err, 404) {
		t.Errorf("questions: %v, want 404", err)
	}
	if _, err := c.Answer("nope", nil); !serve.IsStatus(err, 404) {
		t.Errorf("answer: %v, want 404", err)
	}
	if _, err := c.History("nope"); !serve.IsStatus(err, 404) {
		t.Errorf("history: %v, want 404", err)
	}
	if _, err := c.Snapshot("nope"); !serve.IsStatus(err, 404) {
		t.Errorf("snapshot: %v, want 404", err)
	}
	if _, err := c.Amend("nope", serve.AmendRequest{}); !serve.IsStatus(err, 404) {
		t.Errorf("amend: %v, want 404", err)
	}
	if err := c.Delete("nope"); !serve.IsStatus(err, 404) {
		t.Errorf("delete: %v, want 404", err)
	}
}

func TestBadRequests(t *testing.T) {
	srv, c := startServer(t, serve.Config{})
	cases := []serve.CreateRequest{
		{Variables: 3, Mode: "meditate"},
		{Variables: 3, Algorithm: "qhorn9"},
		{Variables: 0},
		{Variables: -1},
		{Variables: 3, Mode: serve.ModeVerify, Given: "not a query"},
		{Snapshot: &serve.Snapshot{Version: 99}},
	}
	for _, req := range cases {
		if _, err := c.Create(req); !serve.IsStatus(err, http.StatusBadRequest) {
			t.Errorf("create %+v: %v, want 400", req, err)
		}
	}
	// Malformed JSON bodies.
	for _, path := range []string{"/sessions"} {
		resp, err := http.Post(srv.URL()+path, "application/json", strings.NewReader("{"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s with bad JSON: %d, want 400", path, resp.StatusCode)
		}
	}
	// Bad long-poll duration.
	info, err := c.Create(serve.CreateRequest{Variables: 3})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL() + "/sessions/" + info.ID + "/questions?wait=soon")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad wait: %d, want 400", resp.StatusCode)
	}
	// Malformed answer and amend bodies.
	for _, path := range []string{"/answers", "/amend"} {
		resp, err := http.Post(srv.URL()+"/sessions/"+info.ID+path, "application/json", strings.NewReader("{"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s with bad JSON: %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestAnswerAccounting(t *testing.T) {
	_, c := startServer(t, serve.Config{})
	info, err := c.Create(serve.CreateRequest{Variables: 3})
	if err != nil {
		t.Fatal(err)
	}
	qb, err := c.Questions(info.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if qb.State != serve.StateAwaiting || len(qb.Questions) == 0 {
		t.Fatalf("state %q with %d questions, want an outstanding batch", qb.State, len(qb.Questions))
	}
	// Unknown key.
	rep, err := c.Answer(info.ID, map[string]bool{"deadbeef": true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unknown) != 1 || rep.Accepted != 0 {
		t.Fatalf("unknown-key report %+v", rep)
	}
	// One real answer; repeating it is a duplicate, not an error.
	key := qb.Questions[0].Key
	rep, err = c.Answer(info.ID, map[string]bool{key: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 1 {
		t.Fatalf("first answer report %+v", rep)
	}
	rep, err = c.Answer(info.ID, map[string]bool{key: false})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duplicate != 1 || rep.Accepted != 0 {
		t.Fatalf("retry report %+v, want one duplicate", rep)
	}
	if rep.Outstanding != len(qb.Questions)-1 {
		t.Fatalf("outstanding %d, want %d", rep.Outstanding, len(qb.Questions)-1)
	}
}

func TestAmendGuards(t *testing.T) {
	_, c := startServer(t, serve.Config{})
	info, err := c.Create(serve.CreateRequest{Variables: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Amending a running session is refused.
	if _, err := c.Amend(info.ID, serve.AmendRequest{Key: "deadbeef"}); !serve.IsStatus(err, http.StatusConflict) {
		t.Fatalf("amend while running: %v, want 409", err)
	}
	u, _ := boolean.NewUniverse(3)
	target, _ := query.Parse(u, "Ex1")
	final, err := c.Drive(info.ID, serve.AnswererFor(u, oracle.Target(target)), serve.DriveOptions{Poll: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("session ended %q", final.State)
	}
	// No index, no key.
	if _, err := c.Amend(info.ID, serve.AmendRequest{}); !serve.IsStatus(err, http.StatusConflict) {
		t.Fatalf("empty amend: %v, want 409", err)
	}
	// Unknown key, out-of-range index.
	if _, err := c.Amend(info.ID, serve.AmendRequest{Key: "feedface"}); !serve.IsStatus(err, http.StatusConflict) {
		t.Fatalf("unknown-key amend: %v, want 409", err)
	}
	oob := 10000
	if _, err := c.Amend(info.ID, serve.AmendRequest{Index: &oob}); !serve.IsStatus(err, http.StatusConflict) {
		t.Fatalf("out-of-range amend: %v, want 409", err)
	}
}

func TestListAndStatePoll(t *testing.T) {
	_, c := startServer(t, serve.Config{})
	a, err := c.Create(serve.CreateRequest{Variables: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Create(serve.CreateRequest{Variables: 3, Algorithm: "rp"})
	if err != nil {
		t.Fatal(err)
	}
	list, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 2 {
		t.Fatalf("list has %d sessions, want 2", len(list.Sessions))
	}
	ids := map[string]bool{}
	for _, in := range list.Sessions {
		ids[in.ID] = true
	}
	if !ids[a.ID] || !ids[b.ID] {
		t.Fatalf("list %v missing created sessions %s, %s", ids, a.ID, b.ID)
	}
	// A zero-wait poll returns immediately with the current state.
	qb, err := c.Questions(a.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if qb.State != serve.StateLearning && qb.State != serve.StateAwaiting {
		t.Fatalf("unexpected state %q", qb.State)
	}
	if err := c.Delete(a.ID); err != nil {
		t.Fatal(err)
	}
	list, err = c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 1 {
		t.Fatalf("list has %d sessions after delete, want 1", len(list.Sessions))
	}
}

func TestServerAccessorsBeforeStart(t *testing.T) {
	srv := serve.New(serve.Config{})
	if srv.Addr() != "" || srv.URL() != "" {
		t.Errorf("Addr/URL before Start: %q %q, want empty", srv.Addr(), srv.URL())
	}
	if srv.Handler() == nil || srv.Registry() == nil {
		t.Error("Handler or Registry is nil")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close before start: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
