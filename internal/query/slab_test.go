package query

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
)

// TestSlabEvalAllExhaustive pins the bit-sliced kernel to the
// per-candidate compiled kernel over every query and every object of
// small universes, packing the enumerated queries into full-width
// slabs so the identity covers all 64 bit positions.
func TestSlabEvalAllExhaustive(t *testing.T) {
	for n := 0; n <= 3; n++ {
		u := boolean.MustUniverse(n)
		objects := boolean.AllObjects(u)
		queries := AllQueries(u)
		for lo := 0; lo < len(queries); lo += SlabWidth {
			hi := lo + SlabWidth
			if hi > len(queries) {
				hi = len(queries)
			}
			chunk := queries[lo:hi]
			slab := CompileSlab(chunk)
			compiled := make([]*Compiled, len(chunk))
			for i, q := range chunk {
				compiled[i] = Compile(q)
			}
			for _, o := range objects {
				word := slab.EvalAll(o)
				for i, c := range compiled {
					got := word&(1<<uint(i)) != 0
					if want := c.Eval(o); got != want {
						t.Fatalf("n=%d slab[%d..%d) bit %d query %s object %s: sliced %v, scalar %v",
							n, lo, hi, i, chunk[i], o.Format(u), got, want)
					}
				}
			}
		}
	}
}

// TestSlabEvalAllRandom cross-checks random slab packings on universes
// too large to enumerate, with random widths from 1 to 64.
func TestSlabEvalAllRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(10)
		u := boolean.MustUniverse(n)
		width := 1 + rng.Intn(SlabWidth)
		queries := make([]Query, width)
		compiled := make([]*Compiled, width)
		for i := range queries {
			if rng.Intn(2) == 0 {
				queries[i] = GenQhorn1(rng, n)
			} else {
				queries[i] = GenRolePreserving(rng, n, RPOptions{
					Heads: 1 + rng.Intn(3), BodiesPerHead: 1 + rng.Intn(2),
					MaxBodySize: 3, Conjs: rng.Intn(3), MaxConjSize: 1 + n/2,
				})
			}
			compiled[i] = Compile(queries[i])
		}
		slab := CompileSlab(queries)
		if slab.Len() != width {
			t.Fatalf("Len = %d, want %d", slab.Len(), width)
		}
		for probe := 0; probe < 30; probe++ {
			var tuples []boolean.Tuple
			for j := rng.Intn(5); j >= 0; j-- {
				tuples = append(tuples, boolean.Tuple(rng.Int63()).Intersect(u.All()))
			}
			o := boolean.NewSet(tuples...)
			word := slab.EvalAll(o)
			for i, c := range compiled {
				if got, want := word&(1<<uint(i)) != 0, c.Eval(o); got != want {
					t.Fatalf("width %d bit %d query %s object %s: sliced %v, scalar %v",
						width, i, queries[i], o.Format(u), got, want)
				}
			}
		}
		// High bits beyond the packed width must stay clear.
		if width < SlabWidth {
			if word := slab.EvalAll(boolean.Set{}); word>>uint(width) != 0 {
				t.Fatalf("width %d: EvalAll set bits beyond the packed candidates: %#x", width, word)
			}
		}
	}
}

// TestSlabDedup: candidates sharing requirement masks and rules must
// collapse to single slab entries with merged owner words.
func TestSlabDedup(t *testing.T) {
	u := boolean.MustUniverse(4)
	q := MustParse(u, "∀x1x2 → x3 ∃x1x4")
	same := MustParse(u, "∀x1x2 → x3 ∃x1x4")
	other := MustParse(u, "∀x1x2 → x3 ∃x2x4")
	slab := CompileSlab([]Query{q, same, other})
	// One shared rule across all three candidates.
	if len(slab.rules) != 1 {
		t.Fatalf("%d distinct rules, want 1", len(slab.rules))
	}
	if slab.rules[0].owners != 0b111 {
		t.Fatalf("rule owners %#b, want 0b111", slab.rules[0].owners)
	}
	// Requirements: the shared guarantee {x1,x2,x3}, ∃x1x4 (candidates
	// 0 and 1) and ∃x2x4 (candidate 2).
	if len(slab.reqs) != 3 {
		t.Fatalf("%d distinct requirements, want 3", len(slab.reqs))
	}
	owners := map[uint64]uint64{}
	for _, r := range slab.reqs {
		owners[r.mask] = r.owners
	}
	guar := uint64(boolean.FromVars(0, 1, 2))
	if owners[guar] != 0b111 {
		t.Fatalf("guarantee owners %#b, want 0b111", owners[guar])
	}
	if owners[uint64(boolean.FromVars(0, 3))] != 0b011 {
		t.Fatalf("∃x1x4 owners %#b, want 0b011", owners[uint64(boolean.FromVars(0, 3))])
	}
	if owners[uint64(boolean.FromVars(1, 3))] != 0b100 {
		t.Fatalf("∃x2x4 owners %#b, want 0b100", owners[uint64(boolean.FromVars(1, 3))])
	}
}

// TestSlabQueriesRoundTrip: the slab remembers its candidates in bit
// order.
func TestSlabQueriesRoundTrip(t *testing.T) {
	u := boolean.MustUniverse(3)
	qs := []Query{MustParse(u, "∀x1 → x2"), MustParse(u, "∃x3")}
	got := CompileSlab(qs).Queries()
	if len(got) != 2 || !got[0].Equal(qs[0]) || !got[1].Equal(qs[1]) {
		t.Fatalf("Queries() returned %v", got)
	}
}

// TestCompileSlabPanics: widths outside 1..64 are programmer errors.
func TestCompileSlabPanics(t *testing.T) {
	u := boolean.MustUniverse(2)
	for _, width := range []int{0, SlabWidth + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CompileSlab accepted %d queries", width)
				}
			}()
			CompileSlab(make([]Query, width))
		}()
	}
	_ = u
}

// TestSlabEvalAllZeroAllocs is the steady-state allocation gate CI
// enforces alongside Compiled.Eval's: Slab.EvalAll must not allocate.
func TestSlabEvalAllZeroAllocs(t *testing.T) {
	u := boolean.MustUniverse(6)
	rng := rand.New(rand.NewSource(43))
	queries := make([]Query, SlabWidth)
	for i := range queries {
		queries[i] = GenRolePreserving(rng, 6, RPOptions{
			Heads: 1 + rng.Intn(2), BodiesPerHead: 1 + rng.Intn(2),
			MaxBodySize: 3, Conjs: 1 + rng.Intn(2), MaxConjSize: 3,
		})
	}
	slab := CompileSlab(queries)
	s := boolean.MustParseSet(u, "{111001, 011110, 110011, 011011, 100110}")
	if allocs := testing.AllocsPerRun(1000, func() { slab.EvalAll(s) }); allocs != 0 {
		t.Fatalf("Slab.EvalAll allocates %.1f times per call, want 0", allocs)
	}
}

// BenchmarkSlabEvalAll measures the per-object cost of answering all
// 64 candidates at once, against 64 scalar Eval calls.
func BenchmarkSlabEvalAll(b *testing.B) {
	u := boolean.MustUniverse(6)
	rng := rand.New(rand.NewSource(47))
	queries := make([]Query, SlabWidth)
	compiled := make([]*Compiled, SlabWidth)
	for i := range queries {
		queries[i] = GenRolePreserving(rng, 6, RPOptions{
			Heads: 1 + rng.Intn(2), BodiesPerHead: 1 + rng.Intn(2),
			MaxBodySize: 3, Conjs: 1 + rng.Intn(2), MaxConjSize: 3,
		})
		compiled[i] = Compile(queries[i])
	}
	slab := CompileSlab(queries)
	s := boolean.MustParseSet(u, "{111001, 011110, 110011, 011011, 100110}")
	b.Run("sliced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			slab.EvalAll(s)
		}
	})
	b.Run("scalar64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, c := range compiled {
				c.Eval(s)
			}
		}
	})
}
