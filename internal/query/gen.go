package query

import (
	"math/rand"

	"qhorn/internal/boolean"
)

// GenQhorn1 generates a uniformly structured random qhorn-1 query on
// n variables: a random partition of the variables into parts; each
// singleton part becomes a bodyless universal or existential head, and
// each larger part is split into a body and one or more heads, each
// head quantified universally or existentially at random (§2.1.3).
// The result always satisfies IsQhorn1.
func GenQhorn1(rng *rand.Rand, n int) Query {
	u := boolean.MustUniverse(n)
	vars := rng.Perm(n)
	var exprs []Expr
	for len(vars) > 0 {
		// Random part size, biased small the way user queries are.
		max := len(vars)
		size := 1 + rng.Intn(max)
		if size > 4 && rng.Intn(2) == 0 {
			size = 1 + rng.Intn(4)
		}
		part := vars[:size]
		vars = vars[size:]
		if size == 1 {
			if rng.Intn(2) == 0 {
				exprs = append(exprs, BodylessUniversal(part[0]))
			} else {
				exprs = append(exprs, ExistentialHorn(0, part[0]))
			}
			continue
		}
		bodySize := 1 + rng.Intn(size-1)
		body := boolean.FromVars(part[:bodySize]...)
		for _, h := range part[bodySize:] {
			if rng.Intn(2) == 0 {
				exprs = append(exprs, UniversalHorn(body, h))
			} else {
				exprs = append(exprs, ExistentialHorn(body, h))
			}
		}
	}
	return MustNew(u, exprs...)
}

// GenQhorn1Sized is GenQhorn1 with every part of the variable
// partition capped at maxPart variables, yielding queries of size
// k = Θ(n). This is the workload where the §3.1.2 serial baseline
// pays its full O(n²) cost while the binary-search learner stays at
// O(n lg n).
func GenQhorn1Sized(rng *rand.Rand, n, maxPart int) Query {
	u := boolean.MustUniverse(n)
	if maxPart < 1 {
		maxPart = 1
	}
	vars := rng.Perm(n)
	var exprs []Expr
	for len(vars) > 0 {
		max := maxPart
		if max > len(vars) {
			max = len(vars)
		}
		size := 1 + rng.Intn(max)
		part := vars[:size]
		vars = vars[size:]
		if size == 1 {
			if rng.Intn(2) == 0 {
				exprs = append(exprs, BodylessUniversal(part[0]))
			} else {
				exprs = append(exprs, ExistentialHorn(0, part[0]))
			}
			continue
		}
		bodySize := 1 + rng.Intn(size-1)
		body := boolean.FromVars(part[:bodySize]...)
		for _, h := range part[bodySize:] {
			if rng.Intn(2) == 0 {
				exprs = append(exprs, UniversalHorn(body, h))
			} else {
				exprs = append(exprs, ExistentialHorn(body, h))
			}
		}
	}
	return MustNew(u, exprs...)
}

// RPOptions bounds the shape of a random role-preserving query.
type RPOptions struct {
	// Heads is the number of universal head variables.
	Heads int
	// BodiesPerHead is the number of incomparable bodies generated
	// for each head: the causal density θ of the head.
	BodiesPerHead int
	// MinBodySize floors the variables per body (default 1).
	MinBodySize int
	// MaxBodySize caps the variables per body (at least 1).
	MaxBodySize int
	// Conjs is the number of existential conjunctions.
	Conjs int
	// MaxConjSize caps the variables per conjunction (at least 1).
	MaxConjSize int
}

// GenRolePreserving generates a random role-preserving qhorn query on
// n variables (§2.1.4): universal Horn expressions whose heads never
// reappear as body variables, plus existential conjunctions over
// arbitrary variables. Bodies for the same head are made pairwise
// incomparable so the generated causal density matches
// o.BodiesPerHead when the variable budget allows.
func GenRolePreserving(rng *rand.Rand, n int, o RPOptions) Query {
	u := boolean.MustUniverse(n)
	if o.Heads > n/2 {
		o.Heads = n / 2
	}
	if o.MaxBodySize < 1 {
		o.MaxBodySize = 1
	}
	if o.MinBodySize < 1 {
		o.MinBodySize = 1
	}
	if o.MinBodySize > o.MaxBodySize {
		o.MinBodySize = o.MaxBodySize
	}
	if o.MaxConjSize < 1 {
		o.MaxConjSize = 1
	}
	perm := rng.Perm(n)
	heads := perm[:o.Heads]
	nonHeads := perm[o.Heads:]
	var exprs []Expr
	for _, h := range heads {
		var bodies []boolean.Tuple
		for attempt := 0; len(bodies) < o.BodiesPerHead && attempt < 20*o.BodiesPerHead+20; attempt++ {
			b := randSubset(rng, nonHeads, o.MinBodySize, o.MaxBodySize)
			incomparable := true
			for _, prev := range bodies {
				if prev.Comparable(b) {
					incomparable = false
					break
				}
			}
			if incomparable {
				bodies = append(bodies, b)
			}
		}
		if len(bodies) == 0 {
			exprs = append(exprs, BodylessUniversal(h))
			continue
		}
		for _, b := range bodies {
			exprs = append(exprs, UniversalHorn(b, h))
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	for i := 0; i < o.Conjs; i++ {
		exprs = append(exprs, Conjunction(randSubset(rng, all, 1, o.MaxConjSize)))
	}
	return MustNew(u, exprs...)
}

// GenConjunctions generates a query of k random existential
// conjunctions on n variables with no universal expressions, the
// workload of the existential-learning experiments (Theorem 3.8).
// Conjunctions are filtered to a dominant (pairwise incomparable) set
// so the generated query size matches k when possible.
func GenConjunctions(rng *rand.Rand, n, k, maxSize int) Query {
	u := boolean.MustUniverse(n)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	if maxSize < 1 {
		maxSize = 1
	}
	var conjs []boolean.Tuple
	for attempt := 0; len(conjs) < k && attempt < 50*k+50; attempt++ {
		c := randSubset(rng, all, 1, maxSize)
		ok := true
		for _, prev := range conjs {
			if prev.Comparable(c) {
				ok = false
				break
			}
		}
		if ok {
			conjs = append(conjs, c)
		}
	}
	exprs := make([]Expr, len(conjs))
	for i, c := range conjs {
		exprs[i] = Conjunction(c)
	}
	return MustNew(u, exprs...)
}

// Mutate applies `edits` random expression-level edits to a
// role-preserving query — dropping an expression, adding a random
// conjunction, or perturbing a conjunction by one variable — keeping
// the result role-preserving. It generates the "close but wrong"
// queries of the revision experiments (§6) and of user-error
// simulations; each edit moves the distinguishing-tuple distance by
// a small amount.
func Mutate(rng *rand.Rand, q Query, edits int) Query {
	exprs := append([]Expr{}, q.Normalize().Exprs...)
	heads := q.UniversalHeads()
	nonHeads := q.U.Complement(heads).Vars()
	for e := 0; e < edits && len(exprs) > 0; e++ {
		switch rng.Intn(3) {
		case 0: // drop a random expression
			i := rng.Intn(len(exprs))
			exprs = append(exprs[:i], exprs[i+1:]...)
		case 1: // add a random conjunction
			if len(nonHeads) > 0 {
				size := 1 + rng.Intn(minIntGen(3, len(nonHeads)))
				var c boolean.Tuple
				for _, i := range rng.Perm(len(nonHeads))[:size] {
					c = c.With(nonHeads[i])
				}
				exprs = append(exprs, Conjunction(c))
			}
		default: // perturb a conjunction by one variable
			idx := -1
			for _, i := range rng.Perm(len(exprs)) {
				if exprs[i].IsConjunction() {
					idx = i
					break
				}
			}
			if idx >= 0 && len(nonHeads) > 0 {
				v := nonHeads[rng.Intn(len(nonHeads))]
				c := exprs[idx].Body
				if c.Has(v) && c.Count() > 1 {
					c = c.Without(v)
				} else {
					c = c.With(v)
				}
				exprs[idx] = Conjunction(c)
			}
		}
	}
	return Query{U: q.U, Exprs: exprs}
}

func minIntGen(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// AllQueries enumerates every syntactically distinct role-preserving
// qhorn query on the universe, up to normalization: each element is
// already in normal form, and no two elements are semantically
// equivalent. It is exponential and intended for the Fig 7/8
// experiments, exhaustive small-n tests, and the brute cross-validation
// judges (n ≤ 4).
//
// The enumeration walks normal forms directly instead of arbitrary
// expression sets: a choice of universal head variables, per head an
// antichain of bodies over the non-head variables (normalization keeps
// only the minimal bodies of a head, which form an antichain; the
// {∅}-antichain is the bodyless ∀h), and an antichain of non-empty
// existential conjunctions (normalization keeps the dominant set).
// Every normal form arises from exactly one such choice up to
// redundancy between universals and conjunctions, so the per-head
// factor is the Dedekind count M(n−|heads|) rather than 2^2^(n−|heads|)
// — which is what makes n=4 tractable (~43k combinations instead of
// ~10^8) while n ≤ 3 yields the identical query set as the historical
// subset-based enumeration (pinned by TestAllQueriesMatchesSubsetEnum).
func AllQueries(u boolean.Universe) []Query {
	n := u.N()
	if n > 4 {
		panic("query: AllQueries is exhaustive and limited to n <= 4")
	}
	var out []Query
	seen := map[string]bool{}
	conjAntichains := antichains(submasks(u.All())[1:]) // over non-empty conjunctions
	for hm := 0; hm < 1<<uint(n); hm++ {
		heads := boolean.Tuple(hm)
		nonHeads := u.All().Minus(heads)
		bodyAntichains := antichains(submasks(nonHeads)) // ∅ body = bodyless ∀h
		headList := heads.Vars()
		var assign func(i int, acc []Expr)
		assign = func(i int, acc []Expr) {
			if i == len(headList) {
				for _, conjs := range conjAntichains {
					exprs := append([]Expr{}, acc...)
					for _, c := range conjs {
						exprs = append(exprs, Conjunction(c))
					}
					nf := (Query{U: u, Exprs: exprs}).Normalize()
					if key := nf.String(); !seen[key] {
						seen[key] = true
						out = append(out, nf)
					}
				}
				return
			}
			h := headList[i]
			for _, bodies := range bodyAntichains {
				if len(bodies) == 0 {
					continue // a chosen head needs at least one body
				}
				exprs := append([]Expr{}, acc...)
				for _, b := range bodies {
					exprs = append(exprs, UniversalHorn(b, h))
				}
				assign(i+1, exprs)
			}
		}
		assign(0, nil)
	}
	return out
}

// antichains enumerates every antichain (pairwise ⊆-incomparable
// selection, including the empty one) of the given subsets, in a
// deterministic order. The subset slice must be duplicate-free.
func antichains(subsets []boolean.Tuple) [][]boolean.Tuple {
	var out [][]boolean.Tuple
	var acc []boolean.Tuple
	var dfs func(i int)
	dfs = func(i int) {
		if i == len(subsets) {
			out = append(out, append([]boolean.Tuple{}, acc...))
			return
		}
		dfs(i + 1) // without subsets[i]
		for _, prev := range acc {
			if prev.Comparable(subsets[i]) {
				return
			}
		}
		acc = append(acc, subsets[i])
		dfs(i + 1)
		acc = acc[:len(acc)-1]
	}
	dfs(0)
	return out
}

// SampleQueries draws count distinct (by normal form) role-preserving
// queries over the universe, for the sampled cross-validation range
// where AllQueries is intractable (n ≥ 5). The result is normalized
// and deduplicated, a deterministic function of the rng stream; fewer
// than count queries are returned only if the attempt budget runs out
// on tiny universes.
func SampleQueries(rng *rand.Rand, u boolean.Universe, count int) []Query {
	n := u.N()
	var out []Query
	seen := map[string]bool{}
	for attempts := 0; len(out) < count && attempts < 200*count+1000; attempts++ {
		q := GenRolePreserving(rng, n, RPOptions{
			Heads:         rng.Intn(n/2 + 1),
			BodiesPerHead: 1 + rng.Intn(2),
			MaxBodySize:   1 + rng.Intn(3),
			Conjs:         rng.Intn(4),
			MaxConjSize:   1 + rng.Intn(n),
		})
		nf := q.Normalize()
		if key := nf.String(); !seen[key] {
			seen[key] = true
			out = append(out, nf)
		}
	}
	return out
}

// submasks returns every subset of the set bits of m, in ascending
// order, starting with the empty tuple.
func submasks(m boolean.Tuple) []boolean.Tuple {
	var out []boolean.Tuple
	s := boolean.Tuple(0)
	for {
		out = append(out, s)
		if s == m {
			break
		}
		s = (s - m) & m // next submask: (s - m) & m enumerates submasks ascending
	}
	return out
}

// randSubset returns a random subset of vars with between min and max
// elements (clamped to len(vars)).
func randSubset(rng *rand.Rand, vars []int, min, max int) boolean.Tuple {
	if max > len(vars) {
		max = len(vars)
	}
	if min > max {
		min = max
	}
	size := min
	if max > min {
		size = min + rng.Intn(max-min+1)
	}
	idx := rng.Perm(len(vars))[:size]
	var t boolean.Tuple
	for _, i := range idx {
		t = t.With(vars[i])
	}
	return t
}
