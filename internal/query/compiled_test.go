package query

import (
	"fmt"
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
)

// TestCompiledEvalExhaustive pins the kernel to the interpreted
// evaluator over every query and every object of small universes —
// the strongest identity check available.
func TestCompiledEvalExhaustive(t *testing.T) {
	for n := 0; n <= 3; n++ {
		u := boolean.MustUniverse(n)
		objects := boolean.AllObjects(u)
		for _, q := range AllQueries(u) {
			c := Compile(q)
			for _, o := range objects {
				if got, want := c.Eval(o), q.Eval(o); got != want {
					t.Fatalf("n=%d query %s object %s: compiled %v, interpreted %v",
						n, q, o.Format(u), got, want)
				}
			}
		}
	}
}

// TestCompiledEvalRandom cross-checks the kernel on random generated
// queries and random objects over universes too large to enumerate.
func TestCompiledEvalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(12)
		u := boolean.MustUniverse(n)
		var q Query
		if trial%2 == 0 {
			q = GenQhorn1(rng, n)
		} else {
			q = GenRolePreserving(rng, n, RPOptions{
				Heads: 1 + rng.Intn(3), BodiesPerHead: 1 + rng.Intn(2),
				MaxBodySize: 3, Conjs: rng.Intn(3), MaxConjSize: n / 2,
			})
		}
		c := Compile(q)
		for probe := 0; probe < 40; probe++ {
			var tuples []boolean.Tuple
			for j := rng.Intn(5); j >= 0; j-- {
				tuples = append(tuples, boolean.Tuple(rng.Int63()).Intersect(u.All()))
			}
			o := boolean.NewSet(tuples...)
			if got, want := c.Eval(o), q.Eval(o); got != want {
				t.Fatalf("query %s object %s: compiled %v, interpreted %v",
					q, o.Format(u), got, want)
			}
		}
		// The empty object (the paper's empty chocolate box) is the
		// classic edge: a non-answer to any non-empty query.
		if got, want := c.Eval(boolean.Set{}), q.Eval(boolean.Set{}); got != want {
			t.Fatalf("query %s empty object: compiled %v, interpreted %v", q, got, want)
		}
	}
}

// TestCompiledManyConjunctions drives a query with hundreds of
// required conjunctions — far beyond anything the paper's classes
// produce — through the kernel: the flat requirement scan has no size
// limit and must agree with the interpreter throughout.
func TestCompiledManyConjunctions(t *testing.T) {
	u := boolean.MustUniverse(12)
	rng := rand.New(rand.NewSource(9))
	var exprs []Expr
	seen := map[boolean.Tuple]bool{}
	for len(exprs) < 261 {
		c := boolean.Tuple(rng.Int63()).Intersect(u.All())
		if c.IsEmpty() || seen[c] {
			continue
		}
		seen[c] = true
		exprs = append(exprs, Conjunction(c))
	}
	q := MustNew(u, exprs...)
	c := Compile(q)
	if len(c.req) != len(exprs) {
		t.Fatalf("compiled %d requirements, want %d", len(c.req), len(exprs))
	}
	for probe := 0; probe < 50; probe++ {
		var tuples []boolean.Tuple
		for j := rng.Intn(4); j >= 0; j-- {
			tuples = append(tuples, boolean.Tuple(rng.Int63()).Intersect(u.All()))
		}
		o := boolean.NewSet(tuples...)
		if got, want := c.Eval(o), q.Eval(o); got != want {
			t.Fatalf("object %s: compiled %v, interpreted %v", o.Format(u), got, want)
		}
	}
}

// TestCompiledEvalZeroAllocs is the steady-state allocation gate CI
// enforces: Compiled.Eval must not allocate.
func TestCompiledEvalZeroAllocs(t *testing.T) {
	u := boolean.MustUniverse(6)
	q := MustParse(u, "∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
	c := Compile(q)
	s := boolean.MustParseSet(u, "{111001, 011110, 110011, 011011, 100110}")
	if allocs := testing.AllocsPerRun(1000, func() { c.Eval(s) }); allocs != 0 {
		t.Fatalf("Compiled.Eval allocates %.1f times per call, want 0", allocs)
	}
}

// TestCompiledNormalizeCached checks the cached normal form and the
// normal-form-reusing Equivalent/Implies wrappers.
func TestCompiledNormalizeCached(t *testing.T) {
	u := boolean.MustUniverse(6)
	a := MustParse(u, "∀x1x2 → x5 ∃x3x4")
	b := MustParse(u, "∃x3x4 ∀x1x2 → x5 ∃x1x2x5") // same semantics, redundant conjunction
	ca, cb := Compile(a), Compile(b)
	nf := ca.Normalize()
	if !nf.Equal(a.Normalize()) {
		t.Fatalf("cached normal form %s differs from Normalize() %s", nf, a.Normalize())
	}
	if again := ca.Normalize(); &again.Exprs[0] != &nf.Exprs[0] {
		t.Fatal("Normalize recomputed instead of returning the cached form")
	}
	if !ca.Equivalent(cb) || !cb.Equivalent(ca) {
		t.Fatalf("%s and %s should be equivalent", a, b)
	}
	if !ca.Implies(cb) || !cb.Implies(ca) {
		t.Fatalf("%s and %s should imply each other", a, b)
	}
	stronger := Compile(MustParse(u, "∀x1x2 → x5 ∃x3x4 ∃x1x2x5x6"))
	if !stronger.Implies(ca) {
		t.Fatalf("%s should imply %s", stronger.Query(), a)
	}
	if ca.Implies(stronger) {
		t.Fatalf("%s should not imply %s", a, stronger.Query())
	}
	other := Compile(MustParse(boolean.MustUniverse(4), "∃x1x2"))
	if ca.Equivalent(other) {
		t.Fatal("queries over different universes cannot be equivalent")
	}
}

// TestNormalizeIdempotentCached: Normalize on a normalized query is a
// no-op returning the receiver, and the Equal fast path agrees with
// the key-based slow path.
func TestNormalizeIdempotentCached(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		q := GenRolePreserving(rng, 4, RPOptions{
			Heads: 1, BodiesPerHead: 1, MaxBodySize: 2, Conjs: 2, MaxConjSize: 3,
		})
		nf := q.Normalize()
		if !nf.normal {
			t.Fatalf("Normalize did not mark %s as normal", nf)
		}
		again := nf.Normalize()
		if len(again.Exprs) > 0 && &again.Exprs[0] != &nf.Exprs[0] {
			t.Fatalf("Normalize recomputed an already-normal query %s", nf)
		}
		// Fast path (both normal) agrees with the key-based path
		// (at least one side unmarked).
		unmarked := Query{U: nf.U, Exprs: nf.Exprs}
		if !nf.Equal(q.Normalize()) || !nf.Equal(unmarked) || !unmarked.Equal(nf) {
			t.Fatalf("Equal fast path diverged on %s", nf)
		}
	}
}

// TestCompiledQueryRoundTrip: the kernel remembers its source query.
func TestCompiledQueryRoundTrip(t *testing.T) {
	u := boolean.MustUniverse(3)
	q := MustParse(u, "∀x1 → x2 ∃x3")
	if got := Compile(q).Query(); !got.Equal(q) {
		t.Fatalf("Query() returned %s, want %s", got, q)
	}
}

func BenchmarkCompile(b *testing.B) {
	u := boolean.MustUniverse(6)
	q := MustParse(u, "∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compile(q)
	}
}

func ExampleCompile() {
	u := boolean.MustUniverse(3)
	q := MustParse(u, "∀x1 → x3 ∃x2")
	c := Compile(q)
	fmt.Println(c.Eval(boolean.MustParseSet(u, "{101, 010}")))
	fmt.Println(c.Eval(boolean.MustParseSet(u, "{100}")))
	// Output:
	// true
	// false
}
