package query

import (
	"fmt"

	"qhorn/internal/boolean"
)

// ClassReport explains which qhorn subclasses a query belongs to and,
// when it does not, which restriction fails — the "verify that the
// user's query is indeed in qhorn-1 or role-preserving qhorn" check
// §6 calls for. Every violation message names the offending
// expressions so a query interface can point at them.
type ClassReport struct {
	// Qhorn1 and RolePreserving report class membership (§2.1.3,
	// §2.1.4).
	Qhorn1         bool
	RolePreserving bool
	// Qhorn1Violations lists the qhorn-1 restrictions the query
	// breaks, empty when Qhorn1 is true.
	Qhorn1Violations []string
	// RoleViolations lists the role-preservation violations, empty
	// when RolePreserving is true.
	RoleViolations []string
}

// Classify checks the query against both learnable subclasses and
// reports every violated restriction.
func (q Query) Classify() ClassReport {
	r := ClassReport{}
	r.RoleViolations = q.roleViolations()
	r.RolePreserving = len(r.RoleViolations) == 0
	r.Qhorn1Violations = q.qhorn1Violations()
	r.Qhorn1 = len(r.Qhorn1Violations) == 0
	return r
}

// roleViolations names every variable that appears both as a head and
// as a body variable across universal Horn expressions (§2.1.4).
func (q Query) roleViolations() []string {
	var heads, bodies boolean.Tuple
	for _, e := range q.Exprs {
		if e.Quant != Forall {
			continue
		}
		heads = heads.With(e.Head)
		bodies = bodies.Union(e.Body)
	}
	var out []string
	for _, v := range heads.Intersect(bodies).Vars() {
		var asHead, asBody Expr
		for _, e := range q.Exprs {
			if e.Quant != Forall {
				continue
			}
			if e.Head == v {
				asHead = e
			}
			if e.Body.Has(v) {
				asBody = e
			}
		}
		out = append(out, fmt.Sprintf(
			"x%d is the head of %s but a body variable of %s: roles must be preserved across universal Horn expressions",
			v+1, asHead, asBody))
	}
	return out
}

// qhorn1Violations checks the four qhorn-1 restrictions of §2.1.3.
func (q Query) qhorn1Violations() []string {
	var out []string
	var heads, bodyUnion boolean.Tuple
	type bodied struct {
		body boolean.Tuple
		expr Expr
	}
	var bodies []bodied
	for _, e := range q.Exprs {
		if e.Head == NoHead {
			out = append(out, fmt.Sprintf(
				"%s is a headless conjunction: qhorn-1 expressions are Horn rules (rewrite as ∃body → head)", e))
			continue
		}
		if heads.Has(e.Head) {
			out = append(out, fmt.Sprintf(
				"head x%d appears in more than one expression: a head variable has only one body", e.Head+1))
		}
		heads = heads.With(e.Head)
		bodies = append(bodies, bodied{e.Body, e})
		bodyUnion = bodyUnion.Union(e.Body)
	}
	for _, v := range heads.Intersect(bodyUnion).Vars() {
		out = append(out, fmt.Sprintf(
			"x%d is both a head and a body variable: qhorn-1 forbids variable repetition", v+1))
	}
	for i := range bodies {
		for j := i + 1; j < len(bodies); j++ {
			bi, bj := bodies[i].body, bodies[j].body
			if bi.Intersects(bj) && bi != bj {
				out = append(out, fmt.Sprintf(
					"bodies of %s and %s overlap without being equal: bodies must be identical or disjoint",
					bodies[i].expr, bodies[j].expr))
			}
		}
	}
	if uncovered := q.U.All().Minus(heads.Union(bodyUnion)); !uncovered.IsEmpty() {
		out = append(out, fmt.Sprintf(
			"variables %s appear in no expression: qhorn-1 queries quantify every proposition (add ∀x or ∃x)",
			uncovered))
	}
	return out
}
