package query

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"qhorn/internal/boolean"
)

// genValue draws a random role-preserving query for testing/quick.
type rpQuery struct{ Q Query }

// Generate implements quick.Generator.
func (rpQuery) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 2 + rng.Intn(6)
	q := GenRolePreserving(rng, n, RPOptions{
		Heads:         rng.Intn(n / 2),
		BodiesPerHead: 1 + rng.Intn(2),
		MaxBodySize:   1 + rng.Intn(3),
		Conjs:         rng.Intn(4),
		MaxConjSize:   1 + rng.Intn(n),
	})
	return reflect.ValueOf(rpQuery{q})
}

// randomObject draws a random object over q's universe.
func randomObject(rng *rand.Rand, u boolean.Universe) boolean.Set {
	m := rng.Intn(5)
	tuples := make([]boolean.Tuple, m)
	for i := range tuples {
		tuples[i] = boolean.Tuple(rng.Int63()) & u.All()
	}
	return boolean.NewSet(tuples...)
}

var quickCfg = &quick.Config{MaxCount: 200}

func TestQuickNormalizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	f := func(w rpQuery) bool {
		nf := w.Q.Normalize()
		for i := 0; i < 20; i++ {
			obj := randomObject(rng, w.Q.U)
			if w.Q.Eval(obj) != nf.Eval(obj) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(w rpQuery) bool {
		nf := w.Q.Normalize()
		return nf.Equal(nf.Normalize())
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickClosureIdempotentAndExtensive(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	f := func(w rpQuery) bool {
		c := boolean.Tuple(rng.Int63()) & w.Q.U.All()
		cl := w.Q.Closure(c)
		return cl.Contains(c) && w.Q.Closure(cl) == cl
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickClosureMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	f := func(w rpQuery) bool {
		a := boolean.Tuple(rng.Int63()) & w.Q.U.All()
		b := a & boolean.Tuple(rng.Int63()) // b ⊆ a
		return w.Q.Closure(a).Contains(w.Q.Closure(b))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDominantConjunctionsAntichain(t *testing.T) {
	f := func(w rpQuery) bool {
		conjs := w.Q.DominantConjunctions()
		for i := range conjs {
			for j := range conjs {
				if i != j && conjs[i].Contains(conjs[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDominantUniversalsAntichainPerHead(t *testing.T) {
	f := func(w rpQuery) bool {
		dom := w.Q.DominantUniversals()
		for i := range dom {
			for j := range dom {
				if i != j && dom[i].Head == dom[j].Head && dom[i].Body.Contains(dom[j].Body) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickParsePrintRoundTrip(t *testing.T) {
	f := func(w rpQuery) bool {
		if len(w.Q.Exprs) == 0 {
			return true // "⊤" is display-only
		}
		back, err := Parse(w.Q.U, w.Q.String())
		return err == nil && back.Equivalent(w.Q)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickEquivalentReflexiveSymmetric(t *testing.T) {
	f := func(a, b rpQuery) bool {
		if a.Q.U.N() != b.Q.U.N() {
			return true
		}
		if !a.Q.Equivalent(a.Q) {
			return false
		}
		return a.Q.Equivalent(b.Q) == b.Q.Equivalent(a.Q)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickEvalMonotoneOnNonViolatingTuples: adding a tuple that
// violates no universal expression never turns an answer into a
// non-answer — the monotonicity the lattice learner's pruning relies
// on.
func TestQuickEvalMonotoneOnNonViolatingTuples(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	f := func(w rpQuery) bool {
		obj := randomObject(rng, w.Q.U)
		if !w.Q.Eval(obj) {
			return true
		}
		extra := w.Q.RepairUp(boolean.Tuple(rng.Int63()) & w.Q.U.All())
		return w.Q.Eval(obj.With(extra))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickGuaranteeTupleIsAnswer: the object consisting of all
// dominant distinguishing tuples is always an answer (the A1 fact).
func TestQuickGuaranteeTupleIsAnswer(t *testing.T) {
	f := func(w rpQuery) bool {
		obj := boolean.NewSet(w.Q.DominantConjunctions()...)
		return w.Q.Eval(obj)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRepairUpFixesViolations: RepairUp's result never violates
// a universal expression.
func TestQuickRepairUpFixesViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	f := func(w rpQuery) bool {
		tp := boolean.Tuple(rng.Int63()) & w.Q.U.All()
		return !w.Q.Violates(w.Q.RepairUp(tp))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMinimalMaximalTuples(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	f := func() bool {
		m := rng.Intn(8)
		ts := make([]boolean.Tuple, m)
		for i := range ts {
			ts[i] = boolean.Tuple(rng.Intn(256))
		}
		mins := minimalTuples(ts)
		maxs := maximalTuples(ts)
		// Every input is dominated by some minimal (⊇) and some
		// maximal (⊆) survivor.
		for _, t := range ts {
			okMin, okMax := false, false
			for _, mn := range mins {
				if t.Contains(mn) {
					okMin = true
				}
			}
			for _, mx := range maxs {
				if mx.Contains(t) {
					okMax = true
				}
			}
			if !okMin || !okMax {
				return false
			}
		}
		// Survivors are antichains.
		for i := range mins {
			for j := range mins {
				if i != j && mins[i].Contains(mins[j]) {
					return false
				}
			}
		}
		for i := range maxs {
			for j := range maxs {
				if i != j && maxs[i].Contains(maxs[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
