package query

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
)

func TestGenQhorn1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(20)
		q := GenQhorn1(rng, n)
		if !q.IsQhorn1() {
			t.Fatalf("GenQhorn1(n=%d) produced non-qhorn-1 query %s", n, q)
		}
		if q.CausalDensity() > 1 {
			t.Fatalf("qhorn-1 query has θ > 1: %s", q)
		}
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenQhorn1Sized(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		n := 4 + rng.Intn(28)
		q := GenQhorn1Sized(rng, n, 4)
		if !q.IsQhorn1() {
			t.Fatalf("GenQhorn1Sized produced non-qhorn-1 query %s", q)
		}
		// Parts capped at 4 variables force k ≥ n/4 expressions.
		if q.Size() < n/4 {
			t.Fatalf("n=%d: only %d expressions", n, q.Size())
		}
		for _, e := range q.Exprs {
			if e.Vars().Count() > 4 {
				t.Fatalf("expression %s spans more than 4 variables", e)
			}
		}
	}
}

func TestGenRolePreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		n := 4 + rng.Intn(16)
		o := RPOptions{
			Heads:         rng.Intn(n / 2),
			BodiesPerHead: 1 + rng.Intn(3),
			MaxBodySize:   1 + rng.Intn(4),
			Conjs:         rng.Intn(5),
			MaxConjSize:   1 + rng.Intn(n),
		}
		q := GenRolePreserving(rng, n, o)
		if !q.IsRolePreserving() {
			t.Fatalf("GenRolePreserving produced non-role-preserving query %s", q)
		}
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenRolePreservingTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// With a generous variable budget the requested causal density is
	// achieved.
	for i := 0; i < 50; i++ {
		q := GenRolePreserving(rng, 24, RPOptions{Heads: 2, BodiesPerHead: 3, MaxBodySize: 3, Conjs: 2, MaxConjSize: 5})
		if got := q.CausalDensity(); got != 3 {
			t.Fatalf("θ = %d, want 3 for %s", got, q)
		}
	}
}

func TestGenConjunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		n := 6 + rng.Intn(14)
		k := 1 + rng.Intn(6)
		q := GenConjunctions(rng, n, k, n/2)
		if len(q.Exprs) == 0 {
			t.Fatal("no conjunctions generated")
		}
		for _, e := range q.Exprs {
			if !e.IsConjunction() {
				t.Fatalf("non-conjunction expr %s", e)
			}
		}
		// Generated conjunctions are pairwise incomparable, so the
		// query is already in normal form with size preserved.
		if got := len(q.Normalize().DominantConjunctions()); got != len(q.Exprs) {
			t.Fatalf("conjunctions not dominant: %d of %d", got, len(q.Exprs))
		}
	}
}

func TestAllQueriesTwoVars(t *testing.T) {
	u := boolean.MustUniverse(2)
	queries := AllQueries(u)
	// Every pair must be semantically inequivalent.
	objects := boolean.AllObjects(u)
	for i := range queries {
		for j := i + 1; j < len(queries); j++ {
			same := true
			for _, obj := range objects {
				if queries[i].Eval(obj) != queries[j].Eval(obj) {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("duplicate semantics: %s vs %s", queries[i], queries[j])
			}
		}
	}
	// The class on two variables contains the paper's Fig 7 queries.
	want := []string{
		"∃x1x2", "∃x1 ∃x2", "∃x1",
		"∀x1 → x2", "∀x2 → x1",
		"∀x1", "∀x1 ∃x2", "∀x1 ∀x2",
	}
	for _, w := range want {
		q := MustParse(u, w)
		found := false
		for _, cand := range queries {
			if cand.Equivalent(q) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("query %q missing from AllQueries", w)
		}
	}
	t.Logf("distinct role-preserving queries on 2 variables: %d", len(queries))
}

func TestAllQueriesPanicsOnLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AllQueries(n=5) did not panic")
		}
	}()
	AllQueries(boolean.MustUniverse(5))
}

// allQueriesSubsetEnum is the historical subset-based enumeration
// (arbitrary body and conjunction sets, deduplicated by normal form),
// kept here as the reference TestAllQueriesMatchesSubsetEnum pins the
// antichain walk against. It is 2^2^k per head choice, hence n ≤ 3.
func allQueriesSubsetEnum(u boolean.Universe) []Query {
	n := u.N()
	var out []Query
	seen := map[string]bool{}
	conjChoices := submasks(u.All())[1:]
	for hm := 0; hm < 1<<uint(n); hm++ {
		heads := boolean.Tuple(hm)
		nonHeads := u.All().Minus(heads)
		bodyChoices := submasks(nonHeads)
		headList := heads.Vars()
		var assign func(i int, acc []Expr)
		assign = func(i int, acc []Expr) {
			if i == len(headList) {
				for cm := 0; cm < 1<<uint(len(conjChoices)); cm++ {
					exprs := append([]Expr{}, acc...)
					for b := range conjChoices {
						if cm&(1<<uint(b)) != 0 {
							exprs = append(exprs, Conjunction(conjChoices[b]))
						}
					}
					nf := (Query{U: u, Exprs: exprs}).Normalize()
					if key := nf.String(); !seen[key] {
						seen[key] = true
						out = append(out, nf)
					}
				}
				return
			}
			h := headList[i]
			for bm := 1; bm < 1<<uint(len(bodyChoices)); bm++ {
				exprs := append([]Expr{}, acc...)
				for b := range bodyChoices {
					if bm&(1<<uint(b)) != 0 {
						exprs = append(exprs, UniversalHorn(bodyChoices[b], h))
					}
				}
				assign(i+1, exprs)
			}
		}
		assign(0, nil)
	}
	return out
}

// TestAllQueriesMatchesSubsetEnum: the antichain-based enumeration
// yields exactly the normal forms of the historical subset-based one
// on every universe the latter can enumerate.
func TestAllQueriesMatchesSubsetEnum(t *testing.T) {
	for n := 0; n <= 3; n++ {
		u := boolean.MustUniverse(n)
		got := AllQueries(u)
		want := allQueriesSubsetEnum(u)
		if len(got) != len(want) {
			t.Fatalf("n=%d: antichain enumeration has %d queries, subset enumeration %d", n, len(got), len(want))
		}
		wantSet := map[string]bool{}
		for _, q := range want {
			wantSet[q.String()] = true
		}
		for _, q := range got {
			if !wantSet[q.String()] {
				t.Fatalf("n=%d: antichain enumeration produced %s, absent from subset enumeration", n, q)
			}
		}
	}
}

// TestAllQueriesFourVars sanity-checks the newly reachable n=4 range:
// the count is pinned (a change means the enumeration or the normal
// form moved), every query is normalized role-preserving, and a random
// subsample is pairwise inequivalent.
func TestAllQueriesFourVars(t *testing.T) {
	if testing.Short() {
		t.Skip("n=4 enumeration is ~150ms; skipped in -short")
	}
	u := boolean.MustUniverse(4)
	queries := AllQueries(u)
	if len(queries) != 1576 {
		t.Fatalf("AllQueries(4) has %d queries, want 1576", len(queries))
	}
	for _, q := range queries {
		if !q.IsRolePreserving() {
			t.Fatalf("non-role-preserving query %s", q)
		}
		if !q.Equal(q.Normalize()) {
			t.Fatalf("query %s is not in normal form", q)
		}
	}
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 300; trial++ {
		i, j := rng.Intn(len(queries)), rng.Intn(len(queries))
		if i != j && queries[i].Equivalent(queries[j]) {
			t.Fatalf("duplicate semantics: %s vs %s", queries[i], queries[j])
		}
	}
}

// TestSampleQueries: samples are distinct normal forms inside the
// role-preserving class.
func TestSampleQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	u := boolean.MustUniverse(5)
	qs := SampleQueries(rng, u, 120)
	if len(qs) != 120 {
		t.Fatalf("sampled %d queries, want 120", len(qs))
	}
	seen := map[string]bool{}
	for _, q := range qs {
		if !q.IsRolePreserving() {
			t.Fatalf("non-role-preserving sample %s", q)
		}
		if !q.Equal(q.Normalize()) {
			t.Fatalf("sample %s not normalized", q)
		}
		if seen[q.String()] {
			t.Fatalf("duplicate sample %s", q)
		}
		seen[q.String()] = true
	}
	// Determinism: the same seed reproduces the same sample.
	again := SampleQueries(rand.New(rand.NewSource(59)), u, 120)
	for i := range qs {
		if !qs[i].Equal(again[i]) {
			t.Fatalf("sample %d differs across identical seeds", i)
		}
	}
}

func TestSubmasks(t *testing.T) {
	m := boolean.FromVars(0, 2)
	got := submasks(m)
	want := []boolean.Tuple{0, 1, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("submasks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("submasks = %v, want %v", got, want)
		}
	}
	if got := submasks(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("submasks(0) = %v", got)
	}
}

func TestRandSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vars := []int{1, 3, 5, 7}
	for i := 0; i < 100; i++ {
		s := randSubset(rng, vars, 1, 3)
		c := s.Count()
		if c < 1 || c > 3 {
			t.Fatalf("size %d out of range", c)
		}
		for _, v := range s.Vars() {
			if v != 1 && v != 3 && v != 5 && v != 7 {
				t.Fatalf("unexpected variable %d", v)
			}
		}
	}
	// min/max clamping
	if s := randSubset(rng, vars, 2, 10); s.Count() < 2 || s.Count() > 4 {
		t.Fatalf("clamped size wrong: %d", s.Count())
	}
}

func TestMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		n := 6 + rng.Intn(8)
		q := GenRolePreserving(rng, n, RPOptions{
			Heads: 2, BodiesPerHead: 1, MaxBodySize: 3, Conjs: 3, MaxConjSize: 4,
		})
		// Zero edits preserve semantics.
		if !Mutate(rng, q, 0).Equivalent(q) {
			t.Fatal("0-edit mutation changed semantics")
		}
		m := Mutate(rng, q, 2)
		if !m.IsRolePreserving() {
			t.Fatalf("mutation left the class: %s", m)
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
