package query

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
)

func TestGenQhorn1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(20)
		q := GenQhorn1(rng, n)
		if !q.IsQhorn1() {
			t.Fatalf("GenQhorn1(n=%d) produced non-qhorn-1 query %s", n, q)
		}
		if q.CausalDensity() > 1 {
			t.Fatalf("qhorn-1 query has θ > 1: %s", q)
		}
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenQhorn1Sized(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		n := 4 + rng.Intn(28)
		q := GenQhorn1Sized(rng, n, 4)
		if !q.IsQhorn1() {
			t.Fatalf("GenQhorn1Sized produced non-qhorn-1 query %s", q)
		}
		// Parts capped at 4 variables force k ≥ n/4 expressions.
		if q.Size() < n/4 {
			t.Fatalf("n=%d: only %d expressions", n, q.Size())
		}
		for _, e := range q.Exprs {
			if e.Vars().Count() > 4 {
				t.Fatalf("expression %s spans more than 4 variables", e)
			}
		}
	}
}

func TestGenRolePreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		n := 4 + rng.Intn(16)
		o := RPOptions{
			Heads:         rng.Intn(n / 2),
			BodiesPerHead: 1 + rng.Intn(3),
			MaxBodySize:   1 + rng.Intn(4),
			Conjs:         rng.Intn(5),
			MaxConjSize:   1 + rng.Intn(n),
		}
		q := GenRolePreserving(rng, n, o)
		if !q.IsRolePreserving() {
			t.Fatalf("GenRolePreserving produced non-role-preserving query %s", q)
		}
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenRolePreservingTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// With a generous variable budget the requested causal density is
	// achieved.
	for i := 0; i < 50; i++ {
		q := GenRolePreserving(rng, 24, RPOptions{Heads: 2, BodiesPerHead: 3, MaxBodySize: 3, Conjs: 2, MaxConjSize: 5})
		if got := q.CausalDensity(); got != 3 {
			t.Fatalf("θ = %d, want 3 for %s", got, q)
		}
	}
}

func TestGenConjunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		n := 6 + rng.Intn(14)
		k := 1 + rng.Intn(6)
		q := GenConjunctions(rng, n, k, n/2)
		if len(q.Exprs) == 0 {
			t.Fatal("no conjunctions generated")
		}
		for _, e := range q.Exprs {
			if !e.IsConjunction() {
				t.Fatalf("non-conjunction expr %s", e)
			}
		}
		// Generated conjunctions are pairwise incomparable, so the
		// query is already in normal form with size preserved.
		if got := len(q.Normalize().DominantConjunctions()); got != len(q.Exprs) {
			t.Fatalf("conjunctions not dominant: %d of %d", got, len(q.Exprs))
		}
	}
}

func TestAllQueriesTwoVars(t *testing.T) {
	u := boolean.MustUniverse(2)
	queries := AllQueries(u)
	// Every pair must be semantically inequivalent.
	objects := boolean.AllObjects(u)
	for i := range queries {
		for j := i + 1; j < len(queries); j++ {
			same := true
			for _, obj := range objects {
				if queries[i].Eval(obj) != queries[j].Eval(obj) {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("duplicate semantics: %s vs %s", queries[i], queries[j])
			}
		}
	}
	// The class on two variables contains the paper's Fig 7 queries.
	want := []string{
		"∃x1x2", "∃x1 ∃x2", "∃x1",
		"∀x1 → x2", "∀x2 → x1",
		"∀x1", "∀x1 ∃x2", "∀x1 ∀x2",
	}
	for _, w := range want {
		q := MustParse(u, w)
		found := false
		for _, cand := range queries {
			if cand.Equivalent(q) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("query %q missing from AllQueries", w)
		}
	}
	t.Logf("distinct role-preserving queries on 2 variables: %d", len(queries))
}

func TestAllQueriesPanicsOnLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AllQueries(n=4) did not panic")
		}
	}()
	AllQueries(boolean.MustUniverse(4))
}

func TestSubmasks(t *testing.T) {
	m := boolean.FromVars(0, 2)
	got := submasks(m)
	want := []boolean.Tuple{0, 1, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("submasks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("submasks = %v, want %v", got, want)
		}
	}
	if got := submasks(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("submasks(0) = %v", got)
	}
}

func TestRandSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vars := []int{1, 3, 5, 7}
	for i := 0; i < 100; i++ {
		s := randSubset(rng, vars, 1, 3)
		c := s.Count()
		if c < 1 || c > 3 {
			t.Fatalf("size %d out of range", c)
		}
		for _, v := range s.Vars() {
			if v != 1 && v != 3 && v != 5 && v != 7 {
				t.Fatalf("unexpected variable %d", v)
			}
		}
	}
	// min/max clamping
	if s := randSubset(rng, vars, 2, 10); s.Count() < 2 || s.Count() > 4 {
		t.Fatalf("clamped size wrong: %d", s.Count())
	}
}

func TestMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		n := 6 + rng.Intn(8)
		q := GenRolePreserving(rng, n, RPOptions{
			Heads: 2, BodiesPerHead: 1, MaxBodySize: 3, Conjs: 3, MaxConjSize: 4,
		})
		// Zero edits preserve semantics.
		if !Mutate(rng, q, 0).Equivalent(q) {
			t.Fatal("0-edit mutation changed semantics")
		}
		m := Mutate(rng, q, 2)
		if !m.IsRolePreserving() {
			t.Fatalf("mutation left the class: %s", m)
		}
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
