package query

import (
	"strings"
	"testing"

	"qhorn/internal/boolean"
)

var u6 = boolean.MustUniverse(6)

// paperQuery is the running example of §3.2 and §4.2:
// ∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6.
func paperQuery() Query {
	return MustParse(u6, "∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
}

func TestParsePrintRoundTrip(t *testing.T) {
	tests := []string{
		"∀x1x2 → x3 ∀x4 ∃x5",
		"∃x1x2x3",
		"∀x1 ∃x2",
		"∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6",
	}
	for _, s := range tests {
		q := MustParse(u6, s)
		q2 := MustParse(u6, q.String())
		if !q.Equal(q2) {
			t.Errorf("round trip of %q: %q -> %q", s, q.String(), q2.String())
		}
	}
}

func TestParseASCII(t *testing.T) {
	a := MustParse(u6, "Ax1x2 -> x3 Ax4 Ex5")
	b := MustParse(u6, "∀x1x2 → x3 ∀x4 ∃x5")
	if !a.Equal(b) {
		t.Errorf("ASCII parse differs: %s vs %s", a, b)
	}
	c := MustParse(u6, "forall x1x2 -> x3 forall x4 exists x5")
	if !c.Equal(b) {
		t.Errorf("word parse differs: %s vs %s", c, b)
	}
}

func TestParseUniversalConjunctionSugar(t *testing.T) {
	// ∀x1x2 means ∀x1 ∀x2 (§2.1: universal conjunction of bodyless
	// expressions).
	a := MustParse(u6, "∀x1x2")
	b := MustParse(u6, "∀x1 ∀x2")
	if !a.Equal(b) {
		t.Errorf("∀x1x2 parsed as %s, want %s", a, b)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"x1",          // no quantifier
		"∀",           // no variables
		"∃x1 →",       // missing head
		"∀x1 → y2",    // bad token
		"∃x7",         // outside universe
		"∀x1 → x7",    // head outside universe
		"∀x1 - x2",    // bad arrow
		"∃x",          // no index
		"∃x0",         // variables start at x1
		"∀x1 → x1",    // head in body
		"zzz",         // garbage
		"∃x1 ∀x2 → ∃", // quantifier as head
	} {
		if _, err := Parse(u6, bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestEvalPaperIntroQuery(t *testing.T) {
	// Query (1) of §2 over propositions p1,p2,p3:
	// ∀(x1) ∧ ∃(x2 ∧ x3), evaluated on the Fig. 1 boxes.
	u := boolean.MustUniverse(3)
	q := MustParse(u, "∀x1 ∃x2x3")
	globalGround := boolean.MustParseSet(u, "{111, 100, 111}") // Fig 1 S1: 111, 000->? see below
	_ = globalGround
	s1 := boolean.MustParseSet(u, "{111, 000, 110}")
	s2 := boolean.MustParseSet(u, "{100, 110}")
	if q.Eval(s1) {
		t.Error("S1 has a non-dark chocolate (000): should be non-answer")
	}
	if q.Eval(s2) {
		t.Error("S2 has no filled Madagascar chocolate: should be non-answer")
	}
	s3 := boolean.MustParseSet(u, "{111, 110}")
	if !q.Eval(s3) {
		t.Error("all dark, one filled Madagascar: should be answer")
	}
}

func TestEvalGuaranteeClause(t *testing.T) {
	u := boolean.MustUniverse(3)
	q := MustParse(u, "∀x1 → x2")
	// Universal constraint satisfied vacuously but guarantee clause
	// ∃x1x2 unsatisfied: the all-false box is a non-answer (§2.1
	// property 2: the empty / irrelevant box).
	if q.Eval(boolean.MustParseSet(u, "{000}")) {
		t.Error("guarantee clause not enforced")
	}
	if q.Eval(boolean.NewSet()) {
		t.Error("empty object should be a non-answer")
	}
	if !q.Eval(boolean.MustParseSet(u, "{110}")) {
		t.Error("{110} satisfies ∀x1→x2 and its guarantee")
	}
	if q.Eval(boolean.MustParseSet(u, "{110, 100}")) {
		t.Error("{100} violates x1→x2")
	}
	// Empty query accepts everything, including the empty object.
	empty := Query{U: u}
	if !empty.Eval(boolean.NewSet()) {
		t.Error("empty query rejected empty object")
	}
}

func TestEvalExistentialHornEqualsConjunction(t *testing.T) {
	u := boolean.MustUniverse(3)
	horn := MustParse(u, "∃x1x2 → x3")
	conj := MustParse(u, "∃x1x2x3")
	for _, obj := range boolean.AllObjects(u) {
		if horn.Eval(obj) != conj.Eval(obj) {
			t.Fatalf("∃x1x2→x3 and ∃x1x2x3 differ on %s", obj.Format(u))
		}
	}
}

func TestViolatesAndRepairUp(t *testing.T) {
	q := paperQuery()
	if !q.Violates(u6.MustParse("111110")) {
		t.Error("111110 should violate ∀x1x2→x6")
	}
	if q.Violates(u6.MustParse("111111")) {
		t.Error("all-true violates nothing")
	}
	if q.Violates(u6.MustParse("011110")) {
		t.Error("011110 triggers no body")
	}
	// Repair of the conjunction ∃x1x2x3 adds x6 (rule R3): the
	// normalized query (2) of §3.2.2.
	if got := q.RepairUp(u6.MustParse("111000")); got != u6.MustParse("111001") {
		t.Errorf("RepairUp(111000) = %s", u6.Format(got))
	}
	// Cascading repair: x3x4 forces x5.
	if got := q.RepairUp(u6.MustParse("001100")); got != u6.MustParse("001110") {
		t.Errorf("RepairUp(001100) = %s", u6.Format(got))
	}
}

func TestDominantUniversalsR2(t *testing.T) {
	u := boolean.MustUniverse(4)
	// R2 example: ∀x1x2x3→h ∀x1x2→h ∀x1→h ≡ ∀x1→h (+ guarantee of the
	// largest body).
	q := MustParse(u, "∀x1x2x3 → x4 ∀x1x2 → x4 ∀x1 → x4")
	dom := q.DominantUniversals()
	if len(dom) != 1 {
		t.Fatalf("dominant universals = %v", dom)
	}
	if dom[0].Body != boolean.FromVars(0) || dom[0].Head != 3 {
		t.Fatalf("dominant = %s", dom[0])
	}
	// The dominated guarantee ∃x1x2x3x4 must survive as a dominant
	// conjunction.
	conjs := q.DominantConjunctions()
	if len(conjs) != 1 || conjs[0] != u.All() {
		t.Fatalf("dominant conjunctions = %v", conjs)
	}
}

func TestDominantConjunctionsR1(t *testing.T) {
	u := boolean.MustUniverse(3)
	// R1 example: ∃x1x2x3 ∃x1x2 ∃x2x3 ≡ ∃x1x2x3.
	q := MustParse(u, "∃x1x2x3 ∃x1x2 ∃x2x3")
	conjs := q.DominantConjunctions()
	if len(conjs) != 1 || conjs[0] != u.All() {
		t.Fatalf("dominant conjunctions = %v", conjs)
	}
}

func TestNormalizePaperExample(t *testing.T) {
	// §3.2.2: the paper's query (2) has dominant conjunctions
	// ∃x1x4x5 ∃x1x2x3x6 ∃x2x3x4x5 ∃x1x2x5x6 ∃x2x3x5x6.
	q := paperQuery()
	conjs := q.DominantConjunctions()
	want := map[string]bool{
		"100110": true, // ∃x1x4x5 (guarantee of ∀x1x4→x5)
		"111001": true, // ∃x1x2x3x6
		"011110": true, // ∃x2x3x4x5
		"110011": true, // ∃x1x2x5x6
		"011011": true, // ∃x2x3x5x6
	}
	if len(conjs) != len(want) {
		t.Fatalf("got %d dominant conjunctions, want %d", len(conjs), len(want))
	}
	for _, c := range conjs {
		if !want[u6.Format(c)] {
			t.Errorf("unexpected dominant conjunction %s", u6.Format(c))
		}
	}
	// Note the guarantee of ∀x3x4→x5 (∃x3x4x5 → closure 001110) is
	// dominated by ∃x2x3x4x5, and the guarantee of ∀x1x2→x6 (111001
	// after closure... ∃x1x2x6 → 110001) is dominated by ∃x1x2x5x6.
	dom := q.DominantUniversals()
	if len(dom) != 3 {
		t.Fatalf("dominant universals = %v", dom)
	}
}

func TestEquivalent(t *testing.T) {
	u := boolean.MustUniverse(3)
	tests := []struct {
		a, b string
		want bool
	}{
		{"∃x1x2x3 ∃x1x2", "∃x1x2x3", true},
		{"∀x1 → x2 ∃x1x3", "∀x1 → x2 ∃x1x2x3", true}, // R3
		{"∀x1 → x2", "∀x1 → x3", false},
		{"∃x1 ∃x2", "∃x1x2", false},
		{"∀x1 ∃x2", "∀x1 ∃x1x2", true},
		{"∀x1x2 → x3 ∀x1 → x3", "∀x1 → x3 ∃x1x2x3", true}, // R2
	}
	for _, tc := range tests {
		a, b := MustParse(u, tc.a), MustParse(u, tc.b)
		if got := a.Equivalent(b); got != tc.want {
			t.Errorf("Equivalent(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestEquivalentMatchesExhaustiveEval cross-checks Proposition 4.1:
// normal-form equality coincides with agreement on every object, for
// every pair of role-preserving queries on 2 variables and a sample on
// 3 variables.
func TestEquivalentMatchesExhaustiveEval(t *testing.T) {
	for _, n := range []int{2, 3} {
		u := boolean.MustUniverse(n)
		queries := AllQueries(u)
		if n == 3 && testing.Short() {
			continue
		}
		objects := boolean.AllObjects(u)
		limit := len(queries)
		if n == 3 && limit > 60 {
			limit = 60 // sample: full cross product is large
		}
		for i := 0; i < limit; i++ {
			for j := i; j < limit; j++ {
				qa, qb := queries[i], queries[j]
				same := true
				for _, obj := range objects {
					if qa.Eval(obj) != qb.Eval(obj) {
						same = false
						break
					}
				}
				if got := qa.Equivalent(qb); got != same {
					t.Fatalf("Equivalent(%s, %s) = %v, exhaustive = %v", qa, qb, got, same)
				}
			}
		}
	}
}

func TestNormalizePreservesSemantics(t *testing.T) {
	for _, n := range []int{2, 3} {
		u := boolean.MustUniverse(n)
		objects := boolean.AllObjects(u)
		for _, q := range AllQueries(u) {
			nf := q.Normalize()
			for _, obj := range objects {
				if q.Eval(obj) != nf.Eval(obj) {
					t.Fatalf("Normalize changed semantics of %s on %s", q, obj.Format(u))
				}
			}
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	u := boolean.MustUniverse(3)
	for _, q := range AllQueries(u) {
		nf := q.Normalize()
		if !nf.Equal(nf.Normalize()) {
			t.Fatalf("Normalize not idempotent on %s", q)
		}
	}
}

func TestSizeAndCausalDensity(t *testing.T) {
	q := paperQuery()
	if got := q.Size(); got != 7 {
		t.Errorf("Size = %d, want 7", got)
	}
	// x5 has two non-dominated universal expressions.
	if got := q.CausalDensity(); got != 2 {
		t.Errorf("CausalDensity = %d, want 2", got)
	}
	u := boolean.MustUniverse(4)
	if got := MustParse(u, "∃x1x2").CausalDensity(); got != 0 {
		t.Errorf("conjunction-only θ = %d, want 0", got)
	}
	if got := MustParse(u, "∀x1x2x3 → x4 ∀x1 → x4").CausalDensity(); got != 1 {
		t.Errorf("dominated expression counted: θ = %d, want 1", got)
	}
}

func TestIsRolePreserving(t *testing.T) {
	// §2.1.4 examples.
	yes := MustParse(u6, "∀x1x4 → x5 ∀x3x4 → x5 ∀x2x4 → x6 ∃x1x2x3 ∃x1x2x5x6")
	if !yes.IsRolePreserving() {
		t.Error("paper's role-preserving example rejected")
	}
	no := MustParse(u6, "∀x1x4 → x5 ∀x2x3x5 → x6")
	if no.IsRolePreserving() {
		t.Error("x5 is both head and body: should be rejected")
	}
}

func TestIsQhorn1(t *testing.T) {
	u7 := boolean.MustUniverse(7)
	// §2.1.3 partition example: ∀x1 ∀x2 ∃x3→x4 ∃x5x6→x7.
	yes := MustParse(u7, "∀x1 ∀x2 ∃x3 → x4 ∃x5x6 → x7")
	if !yes.IsQhorn1() {
		t.Error("partition query rejected")
	}
	// Shared body with two heads is allowed (Fig 2).
	shared := MustParse(u6, "∀x1x2 → x4 ∃x1x2 → x5 ∃x3 → x6")
	if !shared.IsQhorn1() {
		t.Error("shared-body query rejected")
	}
	for _, bad := range []string{
		"∀x1x2 → x4 ∃x2x3 → x5 ∃x6",     // overlapping unequal bodies
		"∀x1 → x4 ∃x4x2 → x5 ∃x3 ∃x6",   // head reused in body
		"∃x1x2x3 ∀x4 ∀x5 ∃x6",           // headless conjunction
		"∀x1 → x4 ∃x2 → x4 ∃x3 ∃x5 ∃x6", // repeated head
		"∀x1x2 → x4 ∃x5",                // x3, x6 uncovered
	} {
		if MustParse(u6, bad).IsQhorn1() {
			t.Errorf("IsQhorn1(%q) = true", bad)
		}
	}
}

func TestDistinguishingTuples(t *testing.T) {
	q := paperQuery()
	// §4.1.2: ∀x1x4→x5 ⇒ 100101, ∀x3x4→x5 ⇒ 001101, ∀x1x2→x6 ⇒ 110010.
	tests := []struct {
		expr string
		want string
	}{
		{"∀x1x4 → x5", "100101"},
		{"∀x3x4 → x5", "001101"},
		{"∀x1x2 → x6", "110010"},
	}
	for _, tc := range tests {
		e := MustParse(u6, tc.expr).Exprs[0]
		if got := u6.Format(q.UniversalDistinguishingTuple(e)); got != tc.want {
			t.Errorf("UniversalDistinguishingTuple(%s) = %s, want %s", tc.expr, got, tc.want)
		}
	}
	// §4.2 A1: ∃x1x2x3 ⇒ 111001 (x6 raised to avoid ∀x1x2→x6).
	if got := u6.Format(q.ExistentialDistinguishingTuple(u6.MustParse("111000"))); got != "111001" {
		t.Errorf("ExistentialDistinguishingTuple(∃x1x2x3) = %s", got)
	}
}

func TestExprString(t *testing.T) {
	tests := []struct {
		expr Expr
		want string
	}{
		{UniversalHorn(boolean.FromVars(0, 1), 3), "∀x1x2 → x4"},
		{BodylessUniversal(2), "∀x3"},
		{ExistentialHorn(boolean.FromVars(2), 5), "∃x3 → x6"},
		{ExistentialHorn(0, 4), "∃x5"},
		{Conjunction(boolean.FromVars(0, 4)), "∃x1x5"},
	}
	for _, tc := range tests {
		if got := tc.expr.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
	if got := (Query{}).String(); got != "⊤" {
		t.Errorf("empty query String = %q", got)
	}
}

func TestValidateErrors(t *testing.T) {
	u := boolean.MustUniverse(3)
	bad := []Expr{
		{Quant: Forall, Head: NoHead},                       // universal without head
		{Quant: Exists, Head: NoHead},                       // empty conjunction
		{Quant: Forall, Head: 5},                            // head outside universe
		{Quant: Forall, Body: boolean.FromVars(0), Head: 0}, // head in body
		{Quant: Exists, Body: boolean.FromVars(4), Head: 1}, // body outside universe
	}
	for _, e := range bad {
		if _, err := New(u, e); err == nil {
			t.Errorf("New accepted invalid expr %+v", e)
		}
	}
	if _, err := New(u, Conjunction(boolean.FromVars(0))); err != nil {
		t.Errorf("valid expr rejected: %v", err)
	}
}

func TestQuantifierString(t *testing.T) {
	if Forall.String() != "∀" || Exists.String() != "∃" {
		t.Error("quantifier symbols wrong")
	}
	if !strings.Contains(Quantifier(9).String(), "9") {
		t.Error("unknown quantifier should show its value")
	}
}
