package query_test

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

func ExampleParse() {
	u := boolean.MustUniverse(6)
	q, err := query.Parse(u, "∀x1x2 → x3 ∀x4 ∃x5 ∃x1x2x5")
	if err != nil {
		panic(err)
	}
	fmt.Println(q)
	fmt.Println("size k:", q.Size())
	fmt.Println("causal density θ:", q.CausalDensity())
	// Output:
	// ∀x1x2 → x3 ∀x4 ∃x1x2x5 ∃x5
	// size k: 4
	// causal density θ: 1
}

func ExampleQuery_Eval() {
	// Query (1) of the paper: every chocolate is dark, and some
	// chocolate is filled and from Madagascar.
	u := boolean.MustUniverse(3)
	q := query.MustParse(u, "∀x1 ∃x2x3")
	answer := boolean.MustParseSet(u, "{111, 110}")
	nonAnswer := boolean.MustParseSet(u, "{111, 010}")
	fmt.Println(q.Eval(answer))
	fmt.Println(q.Eval(nonAnswer))
	// Output:
	// true
	// false
}

func ExampleQuery_Normalize() {
	// Rules R1–R3 in action: dominated expressions collapse, implied
	// heads are folded into conjunctions, dominated universal bodies
	// leave only their guarantee clause behind.
	u := boolean.MustUniverse(4)
	q := query.MustParse(u, "∀x1x2 → x3 ∀x1 → x3 ∃x1x2 ∃x1")
	fmt.Println(q.Normalize())
	// Output:
	// ∀x1 → x3 ∃x1x2x3
}

func ExampleQuery_Equivalent() {
	u := boolean.MustUniverse(3)
	a := query.MustParse(u, "∀x1 → x2 ∃x1x3")
	b := query.MustParse(u, "∀x1 → x2 ∃x1x2x3") // R3: x2 is implied
	fmt.Println(a.Equivalent(b))
	// Output:
	// true
}

func ExampleQuery_Classify() {
	u := boolean.MustUniverse(6)
	q := query.MustParse(u, "∀x1x4 → x5 ∀x2x3x5 → x6")
	r := q.Classify()
	fmt.Println("role-preserving:", r.RolePreserving)
	fmt.Println(r.RoleViolations[0])
	// Output:
	// role-preserving: false
	// x5 is the head of ∀x1x4 → x5 but a body variable of ∀x2x3x5 → x6: roles must be preserved across universal Horn expressions
}
