// Package query implements the qhorn query class of Abouzied et al.
// (PODS 2013, §2.1): conjunctions of quantified Horn expressions over
// the tuples of a nested relation, with guarantee clauses, the
// equivalence rules R1–R3, normalization to dominant distinguishing
// tuples, the qhorn-1 and role-preserving subclasses, the structural
// metrics (query size k, causal density θ), a parser and printer for
// the paper's shorthand notation, and random query generators.
package query

import (
	"fmt"
	"sort"
	"strings"

	"qhorn/internal/boolean"
)

// Quantifier distinguishes universal (∀t ∈ S) from existential
// (∃t ∈ S) expressions.
type Quantifier uint8

const (
	// Forall quantifies an expression over every tuple of the object.
	Forall Quantifier = iota
	// Exists quantifies an expression over at least one tuple.
	Exists
)

// String returns the paper's symbol for the quantifier.
func (q Quantifier) String() string {
	switch q {
	case Forall:
		return "∀"
	case Exists:
		return "∃"
	default:
		return fmt.Sprintf("Quantifier(%d)", uint8(q))
	}
}

// NoHead marks a headless expression: an existential conjunction.
const NoHead = -1

// Expr is one quantified (Horn) expression of a qhorn query.
//
//   - Quant == Forall: the universal Horn expression ∀ Body → Head.
//     Head must be a valid variable; Body may be empty (the paper's
//     degenerate bodyless expression ∀h). Per §2.1 every universal
//     Horn expression carries an implicit guarantee clause
//     ∃ Body ∪ {Head}, which evaluation enforces.
//   - Quant == Exists, Head == NoHead: the existential conjunction
//     ∃ Body.
//   - Quant == Exists, Head >= 0: the existential Horn expression
//     ∃ Body → Head, which together with its guarantee clause is
//     equivalent to the conjunction ∃ Body ∪ {Head} (§2.1 property 2).
type Expr struct {
	Quant Quantifier
	Body  boolean.Tuple
	Head  int
}

// UniversalHorn returns the expression ∀ body → head.
func UniversalHorn(body boolean.Tuple, head int) Expr {
	return Expr{Quant: Forall, Body: body, Head: head}
}

// BodylessUniversal returns the expression ∀ head.
func BodylessUniversal(head int) Expr {
	return Expr{Quant: Forall, Head: head}
}

// ExistentialHorn returns the expression ∃ body → head.
func ExistentialHorn(body boolean.Tuple, head int) Expr {
	return Expr{Quant: Exists, Body: body, Head: head}
}

// Conjunction returns the existential conjunction ∃ vars.
func Conjunction(vars boolean.Tuple) Expr {
	return Expr{Quant: Exists, Body: vars, Head: NoHead}
}

// Vars returns all variables mentioned by the expression: the body
// plus the head, if any.
func (e Expr) Vars() boolean.Tuple {
	if e.Head == NoHead {
		return e.Body
	}
	return e.Body.With(e.Head)
}

// IsConjunction reports whether e is a headless existential
// conjunction.
func (e Expr) IsConjunction() bool {
	return e.Quant == Exists && e.Head == NoHead
}

// validate checks the structural invariants of the expression within
// a universe of n variables.
func (e Expr) validate(u boolean.Universe) error {
	if !u.Contains(e.Body) {
		return fmt.Errorf("query: body %v outside universe of %d variables", e.Body, u.N())
	}
	switch {
	case e.Head == NoHead:
		if e.Quant == Forall {
			return fmt.Errorf("query: universal expression must have a head")
		}
		if e.Body.IsEmpty() {
			return fmt.Errorf("query: empty existential conjunction")
		}
	case e.Head < 0 || e.Head >= u.N():
		return fmt.Errorf("query: head x%d outside universe of %d variables", e.Head+1, u.N())
	case e.Body.Has(e.Head):
		return fmt.Errorf("query: head x%d appears in its own body", e.Head+1)
	}
	return nil
}

// String renders the expression in the paper's shorthand, e.g.
// "∀x1x2 → x3", "∀x4", "∃x1x2x5".
func (e Expr) String() string {
	var b strings.Builder
	b.WriteString(e.Quant.String())
	writeVars := func(t boolean.Tuple) {
		for _, v := range t.Vars() {
			fmt.Fprintf(&b, "x%d", v+1)
		}
	}
	switch {
	case e.Head == NoHead:
		writeVars(e.Body)
	case e.Body.IsEmpty():
		fmt.Fprintf(&b, "x%d", e.Head+1)
	default:
		writeVars(e.Body)
		fmt.Fprintf(&b, " → x%d", e.Head+1)
	}
	return b.String()
}

// Query is a qhorn query: a conjunction of quantified (Horn)
// expressions over the Boolean abstraction of an embedded relation's
// tuples (§2.1). The zero value is the empty query over zero
// variables, which classifies every object as an answer.
type Query struct {
	// U is the universe of Boolean variables, one per proposition.
	U boolean.Universe
	// Exprs are the conjoined expressions. Guarantee clauses are
	// implicit and enforced by evaluation; they are never stored.
	Exprs []Expr
	// normal marks a query produced by Normalize, whose expression
	// list is already the canonical normal form. Normalize returns such
	// queries unchanged, so Equivalent and Implies never re-derive a
	// normal form they already hold; literal construction clears the
	// flag, which only ever costs a recomputation.
	normal bool
}

// New builds a validated query. It returns an error if any expression
// is structurally invalid for the universe.
func New(u boolean.Universe, exprs ...Expr) (Query, error) {
	q := Query{U: u, Exprs: exprs}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// MustNew is New for fixtures and examples; it panics on error.
func MustNew(u boolean.Universe, exprs ...Expr) Query {
	q, err := New(u, exprs...)
	if err != nil {
		panic(err)
	}
	return q
}

// Validate checks every expression against the universe.
func (q Query) Validate() error {
	for i, e := range q.Exprs {
		if err := e.validate(q.U); err != nil {
			return fmt.Errorf("expression %d (%s): %w", i, e, err)
		}
	}
	return nil
}

// N returns the number of Boolean variables (propositions).
func (q Query) N() int { return q.U.N() }

// Size returns the query size k of Definition 2.5: the number of
// expressions, not counting guarantee clauses.
func (q Query) Size() int { return len(q.Exprs) }

// Universals returns the universal Horn expressions of the query.
func (q Query) Universals() []Expr {
	var out []Expr
	for _, e := range q.Exprs {
		if e.Quant == Forall {
			out = append(out, e)
		}
	}
	return out
}

// Existentials returns the existential expressions (Horn or
// conjunction) of the query.
func (q Query) Existentials() []Expr {
	var out []Expr
	for _, e := range q.Exprs {
		if e.Quant == Exists {
			out = append(out, e)
		}
	}
	return out
}

// UniversalHeads returns the set of universal head variables.
func (q Query) UniversalHeads() boolean.Tuple {
	var heads boolean.Tuple
	for _, e := range q.Exprs {
		if e.Quant == Forall {
			heads = heads.With(e.Head)
		}
	}
	return heads
}

// CausalDensity returns θ of Definition 2.6: the maximum over head
// variables h of the number of distinct non-dominated universal Horn
// expressions with head h.
func (q Query) CausalDensity() int {
	dominant := q.DominantUniversals()
	counts := map[int]int{}
	max := 0
	for _, e := range dominant {
		counts[e.Head]++
		if counts[e.Head] > max {
			max = counts[e.Head]
		}
	}
	return max
}

// String renders the query in the paper's shorthand: expressions
// separated by spaces, universals first then existentials, each group
// in deterministic order. The empty query prints as "⊤".
func (q Query) String() string {
	if len(q.Exprs) == 0 {
		return "⊤"
	}
	exprs := append([]Expr{}, q.Exprs...)
	sort.SliceStable(exprs, func(i, j int) bool {
		a, b := exprs[i], exprs[j]
		if a.Quant != b.Quant {
			return a.Quant == Forall
		}
		if a.Head != b.Head {
			return a.Head < b.Head
		}
		return a.Body < b.Body
	})
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// Equal reports syntactic equality up to expression order and
// duplicates. For semantic equivalence use Equivalent.
func (q Query) Equal(other Query) bool {
	if q.U.N() != other.U.N() {
		return false
	}
	if q.normal && other.normal {
		// Normal forms are deduplicated and deterministically ordered,
		// so equality is element-wise — no key strings needed.
		if len(q.Exprs) != len(other.Exprs) {
			return false
		}
		for i, e := range q.Exprs {
			if other.Exprs[i] != e {
				return false
			}
		}
		return true
	}
	key := func(qq Query) string {
		parts := make([]string, len(qq.Exprs))
		for i, e := range qq.Exprs {
			parts[i] = fmt.Sprintf("%d:%x:%d", e.Quant, uint64(e.Body), e.Head)
		}
		sort.Strings(parts)
		// Collapse duplicates.
		var uniq []string
		for _, p := range parts {
			if len(uniq) == 0 || uniq[len(uniq)-1] != p {
				uniq = append(uniq, p)
			}
		}
		return strings.Join(uniq, " ")
	}
	return key(q) == key(other)
}
