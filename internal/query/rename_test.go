package query

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
)

// TestRename: variables move to their images in every head and body.
func TestRename(t *testing.T) {
	u := boolean.MustUniverse(4)
	q := MustParse(u, "∀x1x2 → x3 ∃x4")
	got, err := Rename(q, []int{3, 2, 1, 0}) // reverse
	if err != nil {
		t.Fatal(err)
	}
	want := MustParse(u, "∀x3x4 → x2 ∃x1")
	if !got.Equal(want) {
		t.Errorf("Rename = %s, want %s", got, want)
	}
}

// TestRenameIdentityAndInverse: the identity permutation is a no-op
// and applying a permutation then its inverse round-trips.
func TestRenameIdentityAndInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 50; i++ {
		n := 2 + rng.Intn(6)
		q := GenQhorn1(rng, n)
		perm := rng.Perm(n)
		inverse := make([]int, n)
		for from, to := range perm {
			inverse[to] = from
		}
		renamed, err := Rename(q, perm)
		if err != nil {
			t.Fatal(err)
		}
		if !renamed.IsQhorn1() {
			t.Fatalf("renaming left qhorn-1: %s", renamed)
		}
		back, err := Rename(renamed, inverse)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(q) {
			t.Errorf("perm+inverse changed %s into %s", q, back)
		}
	}
}

// TestRenameErrors: non-permutations are rejected.
func TestRenameErrors(t *testing.T) {
	u := boolean.MustUniverse(3)
	q := MustParse(u, "∃x1x2x3")
	for _, perm := range [][]int{
		{0, 1},          // wrong length
		{0, 1, 1},       // repeated image
		{0, 1, 3},       // out of range
		{-1, 1, 2},      // negative
		{0, 1, 2, 3, 4}, // too long
	} {
		if _, err := Rename(q, perm); err == nil {
			t.Errorf("Rename with %v succeeded, want error", perm)
		}
	}
}
