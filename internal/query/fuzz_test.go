package query

import (
	"testing"

	"qhorn/internal/boolean"
)

// FuzzParse checks the shorthand parser never panics and that every
// accepted query validates and round-trips through String.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"∀x1x2 → x3 ∀x4 ∃x5",
		"Ax1x2 -> x3 Ex4",
		"forall x1 exists x2",
		"∃x1x2x3",
		"∀x1 → x1",
		"∃x0",
		"x1 → x2",
		"∀∃",
		"∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3",
		"A E -> x x9999999999",
		"∃x1 ∧ ∃x2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	u := boolean.MustUniverse(6)
	f.Fuzz(func(t *testing.T, s string) {
		q, err := Parse(u, s)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted query fails validation: %v", err)
		}
		back, err := Parse(u, q.String())
		if err != nil {
			t.Fatalf("printed query %q does not re-parse: %v", q.String(), err)
		}
		if !back.Equal(q) {
			t.Fatalf("round trip changed query: %q -> %q", q.String(), back.String())
		}
	})
}
