package query

import "qhorn/internal/boolean"

// Eval reports whether the object s is an answer to the query (§2,
// Def. 2.4). The semantics follow the paper exactly:
//
//   - ∀ B → h holds iff every tuple containing B also contains h,
//     AND (guarantee clause, §2.1 property 2) some tuple contains
//     B ∪ {h}.
//   - ∃ B → h and ∃ C hold iff some tuple contains B ∪ {h}
//     (respectively C); the existential Horn form is implied by its
//     guarantee clause.
//
// The empty query accepts every object. Because of guarantee clauses,
// the empty object is a non-answer to any non-empty query — the
// paper's empty chocolate box.
func (q Query) Eval(s boolean.Set) bool {
	for _, e := range q.Exprs {
		if !q.evalExpr(e, s) {
			return false
		}
	}
	return true
}

func (q Query) evalExpr(e Expr, s boolean.Set) bool {
	switch e.Quant {
	case Forall:
		for _, t := range s.Tuples() {
			if t.Contains(e.Body) && !t.Has(e.Head) {
				return false
			}
		}
		// Guarantee clause: ∃ Body ∪ {Head}.
		return s.AnyContains(e.Body.With(e.Head))
	case Exists:
		return s.AnyContains(e.Vars())
	default:
		panic("query: invalid quantifier")
	}
}

// Violates reports whether tuple t violates some universal Horn
// expression of the query: all body variables true but the head
// false. The lattice learners and the verifier remove such tuples from
// membership questions (§3.2.2, Fig. 6 footnote).
func (q Query) Violates(t boolean.Tuple) bool {
	for _, e := range q.Exprs {
		if e.Quant == Forall && t.Contains(e.Body) && !t.Has(e.Head) {
			return true
		}
	}
	return false
}

// RepairUp returns t with head variables raised to true until no
// universal Horn expression of the query is violated. This implements
// the construction note of Fig. 6: "we set a head variable to true if
// the existential expression contains a body for the head variable"
// (equivalence rule R3). The result is the least tuple ⊇ t that does
// not violate any universal expression.
func (q Query) RepairUp(t boolean.Tuple) boolean.Tuple {
	for changed := true; changed; {
		changed = false
		for _, e := range q.Exprs {
			if e.Quant == Forall && t.Contains(e.Body) && !t.Has(e.Head) {
				t = t.With(e.Head)
				changed = true
			}
		}
	}
	return t
}

// Closure returns the R3-closure of a conjunction: the set of
// variables obtained by repeatedly adding every universal head whose
// body is contained in the conjunction. Normalized existential
// conjunctions are closed (§3.2.2, query (2) of the paper).
func (q Query) Closure(conj boolean.Tuple) boolean.Tuple {
	return q.RepairUp(conj)
}
