package query

import (
	"testing"

	"qhorn/internal/boolean"
)

func TestImpliesBasics(t *testing.T) {
	u := boolean.MustUniverse(4)
	tests := []struct {
		a, b string
		want bool
	}{
		{"∃x1x2", "∃x1", true},          // stronger witness
		{"∃x1", "∃x1x2", false},         // weaker witness
		{"∀x1 → x2 ∃x3", "∃x3", true},   // dropping a constraint
		{"∃x3", "∀x1 → x2 ∃x3", false},  // adding one
		{"∀x1 → x2 ∃x1", "∃x1x2", true}, // R3: x2 implied in every answer
		// R2 subtlety: ∀x1→x2 entails ∀x1x3→x2's universal constraint
		// but NOT its guarantee clause ∃x1x2x3 — no implication either
		// way (the object {110, 001} separates them).
		{"∀x1 → x2 ∃x3", "∀x1x3 → x2 ∃x3", false},
		{"∀x1x3 → x2 ∃x3", "∀x1 → x2 ∃x3", false},
		// With the guarantee supplied explicitly, the implication holds.
		{"∀x1 → x2 ∃x1x3", "∀x1x3 → x2 ∃x3", true},
		{"∃x1 ∃x2", "∃x1", true},
		{"∃x1x2", "∃x1 ∃x2", true},
		{"∃x1 ∃x2", "∃x1x2", false}, // separate witnesses don't merge
	}
	for _, tc := range tests {
		a, b := MustParse(u, tc.a), MustParse(u, tc.b)
		if got := a.Implies(b); got != tc.want {
			t.Errorf("Implies(%q, %q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	// Mismatched universes never imply.
	if MustParse(boolean.MustUniverse(2), "∃x1").Implies(MustParse(u, "∃x1")) {
		t.Error("cross-universe implication")
	}
}

// TestImpliesMatchesExhaustiveEval: structural containment coincides
// with object-level containment for every pair of role-preserving
// queries on 2 and 3 variables.
func TestImpliesMatchesExhaustiveEval(t *testing.T) {
	for _, n := range []int{2, 3} {
		if n == 3 && testing.Short() {
			continue
		}
		u := boolean.MustUniverse(n)
		queries := AllQueries(u)
		objects := boolean.AllObjects(u)
		for _, a := range queries {
			for _, b := range queries {
				want := true
				for _, obj := range objects {
					if a.Eval(obj) && !b.Eval(obj) {
						want = false
						break
					}
				}
				if got := a.Implies(b); got != want {
					t.Fatalf("Implies(%s, %s) = %v, exhaustive = %v", a, b, got, want)
				}
			}
		}
	}
}

func TestImpliesEquivalenceConsistency(t *testing.T) {
	u := boolean.MustUniverse(3)
	queries := AllQueries(u)
	for _, a := range queries {
		for _, b := range queries {
			both := a.Implies(b) && b.Implies(a)
			if both != a.Equivalent(b) {
				t.Fatalf("mutual implication disagrees with equivalence: %s vs %s", a, b)
			}
		}
	}
}

func TestImpliesPartialOrder(t *testing.T) {
	u := boolean.MustUniverse(3)
	queries := AllQueries(u)
	// Reflexive.
	for _, q := range queries {
		if !q.Implies(q) {
			t.Fatalf("not reflexive: %s", q)
		}
	}
	// Transitive (sampled triples).
	for i := 0; i < len(queries); i += 7 {
		for j := 0; j < len(queries); j += 5 {
			for k := 0; k < len(queries); k += 3 {
				a, b, c := queries[i], queries[j], queries[k]
				if a.Implies(b) && b.Implies(c) && !a.Implies(c) {
					t.Fatalf("not transitive: %s ⊨ %s ⊨ %s", a, b, c)
				}
			}
		}
	}
}
