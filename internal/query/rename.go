package query

import (
	"fmt"

	"qhorn/internal/boolean"
)

// Rename applies a variable permutation to the query: variable i is
// renamed to perm[i] in every head and body. perm must be a
// permutation of 0..n-1 for the query's universe. Renaming preserves
// class membership (qhorn-1, role-preserving) and query shape but in
// general changes semantics relative to a fixed oracle, which makes it
// the "permute parts" adversarial mutation of the differential fuzzer.
func Rename(q Query, perm []int) (Query, error) {
	n := q.U.N()
	if len(perm) != n {
		return Query{}, fmt.Errorf("query: permutation has %d entries, universe has %d variables", len(perm), n)
	}
	seen := boolean.Tuple(0)
	for _, p := range perm {
		if p < 0 || p >= n || seen.Has(p) {
			return Query{}, fmt.Errorf("query: %v is not a permutation of 0..%d", perm, n-1)
		}
		seen = seen.With(p)
	}
	exprs := make([]Expr, len(q.Exprs))
	for i, e := range q.Exprs {
		var body boolean.Tuple
		for _, v := range e.Body.Vars() {
			body = body.With(perm[v])
		}
		head := e.Head
		if head != NoHead {
			head = perm[head]
		}
		exprs[i] = Expr{Quant: e.Quant, Body: body, Head: head}
	}
	return New(q.U, exprs...)
}
