package query

import (
	"fmt"
	"math/bits"
	"sort"

	"qhorn/internal/boolean"
)

// This file implements the bit-sliced evaluation kernel
// (docs/PERFORMANCE.md). Compiled.Eval answers one (query, object)
// pair per call; bulk consumers like the brute answer matrix evaluate
// the same object against thousands of candidate queries, re-scanning
// the object's tuples once per candidate even though most candidates
// share requirement masks and Horn rules. A Slab transposes that loop:
// it packs up to 64 candidates column-wise — one bit per candidate —
// dedupes the masks and rules they share, and answers one object for
// the whole word of candidates in a single two-pass sweep.

// SlabWidth is the number of candidates one Slab packs: one per bit of
// the EvalAll result word.
const SlabWidth = 64

// Slab is the bit-sliced evaluation form of up to 64 queries. Each
// distinct requirement mask and each distinct fused Horn rule appears
// once, tagged with the owner word naming the candidates it belongs
// to; EvalAll starts from the all-live word and clears owner bits as
// requirements fail to be witnessed or rules are violated. A Slab is
// immutable after CompileSlab and safe for concurrent use; EvalAll
// performs no heap allocation.
type Slab struct {
	queries []Query
	full    uint64 // low len(queries) bits set
	// reqs holds the distinct required conjunctions across all
	// candidates, sorted largest-popcount first like Compiled.req.
	reqs []slabReq
	// rules holds the distinct fused violation rules, sorted by
	// ascending body like Compiled.rules so the per-tuple scan can stop
	// at the first body numerically above the tuple.
	rules []slabRule
}

// slabReq is one distinct required conjunction and the candidates
// (owner bits) that require it.
type slabReq struct{ mask, owners uint64 }

// slabRule is one distinct fused Horn rule and the candidates that
// carry it. Tuple w violates the rule iff w & guar == body, exactly as
// in Compiled.
type slabRule struct{ guar, body, owners uint64 }

// CompileSlab packs the queries — at most SlabWidth of them — into one
// bit-sliced kernel. Candidate i owns bit i of every owner word and of
// the EvalAll result. Compilation dedupes requirement masks and rules
// across candidates, so slabs over structurally similar candidate
// lattices shrink well below 64 distinct entries per pass.
func CompileSlab(queries []Query) *Slab {
	if len(queries) == 0 || len(queries) > SlabWidth {
		panic(fmt.Sprintf("query: CompileSlab: %d queries, want 1..%d", len(queries), SlabWidth))
	}
	s := &Slab{queries: queries}
	if len(queries) == SlabWidth {
		s.full = ^uint64(0)
	} else {
		s.full = 1<<uint(len(queries)) - 1
	}
	reqOwners := make(map[uint64]uint64)
	ruleOwners := make(map[rule]uint64)
	for i, q := range queries {
		bit := uint64(1) << uint(i)
		for _, e := range q.Exprs {
			switch e.Quant {
			case Forall:
				body := uint64(e.Body)
				guar := body | uint64(1)<<uint(e.Head)
				reqOwners[guar] |= bit
				ruleOwners[rule{guar: guar, body: body}] |= bit
			case Exists:
				reqOwners[uint64(e.Vars())] |= bit
			}
		}
	}
	s.reqs = make([]slabReq, 0, len(reqOwners))
	for m, owners := range reqOwners {
		s.reqs = append(s.reqs, slabReq{mask: m, owners: owners})
	}
	sort.Slice(s.reqs, func(i, j int) bool {
		pi, pj := bits.OnesCount64(s.reqs[i].mask), bits.OnesCount64(s.reqs[j].mask)
		if pi != pj {
			return pi > pj
		}
		return s.reqs[i].mask > s.reqs[j].mask
	})
	s.rules = make([]slabRule, 0, len(ruleOwners))
	for r, owners := range ruleOwners {
		s.rules = append(s.rules, slabRule{guar: r.guar, body: r.body, owners: owners})
	}
	sort.Slice(s.rules, func(i, j int) bool {
		if s.rules[i].body != s.rules[j].body {
			return s.rules[i].body < s.rules[j].body
		}
		return s.rules[i].guar < s.rules[j].guar
	})
	return s
}

// Queries returns the candidate slice the slab was compiled from;
// candidate i owns bit i of the EvalAll result.
func (s *Slab) Queries() []Query { return s.queries }

// Len returns the number of candidates packed into the slab.
func (s *Slab) Len() int { return len(s.queries) }

// EvalAll reports, in one word, whether the object is an answer to
// each of the slab's candidates: bit i of the result equals
// Compile(queries[i]).Eval(set) (the slab identity test pins exactly
// that, and the difffuzz kernel judge cross-checks it on every
// generated case). One witness scan per distinct requirement mask and
// one violation scan per tuple serve all candidates at once; a
// candidate's bit clears the first time one of its requirements goes
// unwitnessed or one of its rules fires, and the sweep returns early
// once no candidate remains live.
func (s *Slab) EvalAll(set boolean.Set) uint64 {
	tuples := set.Tuples()
	live := s.full
	for _, r := range s.reqs {
		if r.owners&live == 0 {
			continue // every owner already dead
		}
		witnessed := false
		// Descending scan with the same cutoff as Compiled.Eval: tuples
		// sort ascending, so anything numerically below the mask cannot
		// contain it.
		for i := len(tuples) - 1; i >= 0; i-- {
			t := uint64(tuples[i])
			if t < r.mask {
				break
			}
			if t&r.mask == r.mask {
				witnessed = true
				break
			}
		}
		if !witnessed {
			live &^= r.owners
			if live == 0 {
				return 0
			}
		}
	}
	for _, t := range tuples {
		w := uint64(t)
		for _, r := range s.rules {
			if r.body > w {
				// Rules sort by body; no later body fits in w either.
				break
			}
			if w&r.guar == r.body && r.owners&live != 0 {
				live &^= r.owners
				if live == 0 {
					return 0
				}
			}
		}
	}
	return live
}
