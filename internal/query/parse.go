package query

import (
	"fmt"
	"strings"
	"unicode"

	"qhorn/internal/boolean"
)

// Parse reads a query in the paper's shorthand notation over the
// given universe. The notation is a space-separated sequence of
// quantified expressions:
//
//	∀x1x2 → x3  ∀x4  ∃x5  ∃x1x2x5
//
// ASCII equivalents are accepted: 'A' or "forall" for ∀, 'E' or
// "exists" for ∃, and "->" for →. The '∧' conjunction symbol between
// expressions is optional and ignored. An existential expression with
// an arrow is parsed as an existential Horn expression; without an
// arrow it is a conjunction (a single-variable existential such as
// ∃x5 is parsed as the conjunction {x5}).
func Parse(u boolean.Universe, s string) (Query, error) {
	if strings.TrimSpace(s) == "⊤" {
		// The empty query accepts every object; String prints it as ⊤.
		return Query{U: u}, nil
	}
	toks, err := tokenize(s)
	if err != nil {
		return Query{}, err
	}
	var exprs []Expr
	i := 0
	for i < len(toks) {
		t := toks[i]
		if t.kind != tokQuant {
			return Query{}, fmt.Errorf("query: expected quantifier at %q", t.text)
		}
		quant := t.quant
		i++
		var body boolean.Tuple
		nvars := 0
		for i < len(toks) && toks[i].kind == tokVar {
			v := toks[i].varIndex
			if v >= u.N() {
				return Query{}, fmt.Errorf("query: variable x%d outside universe of %d variables", v+1, u.N())
			}
			body = body.With(v)
			nvars++
			i++
		}
		if nvars == 0 {
			return Query{}, fmt.Errorf("query: quantifier %s with no variables", quant)
		}
		head := NoHead
		if i < len(toks) && toks[i].kind == tokArrow {
			i++
			if i >= len(toks) || toks[i].kind != tokVar {
				return Query{}, fmt.Errorf("query: expected head variable after →")
			}
			head = toks[i].varIndex
			if head >= u.N() {
				return Query{}, fmt.Errorf("query: head x%d outside universe of %d variables", head+1, u.N())
			}
			i++
		}
		switch {
		case quant == Forall && head == NoHead:
			// ∀x1x2 is shorthand for the conjunction of bodyless
			// universal expressions ∀x1 ∀x2 (§2.1).
			for _, v := range body.Vars() {
				exprs = append(exprs, BodylessUniversal(v))
			}
		case quant == Forall:
			exprs = append(exprs, UniversalHorn(body, head))
		case head == NoHead && body.Count() == 1:
			// ∃x is the degenerate bodyless existential Horn
			// expression (§2.1), keeping single-variable quantifiers
			// inside qhorn-1's Horn form.
			exprs = append(exprs, ExistentialHorn(0, body.Lowest()))
		case head == NoHead:
			exprs = append(exprs, Conjunction(body))
		default:
			exprs = append(exprs, ExistentialHorn(body, head))
		}
	}
	return New(u, exprs...)
}

// MustParse is Parse for fixtures and examples; it panics on error.
func MustParse(u boolean.Universe, s string) Query {
	q, err := Parse(u, s)
	if err != nil {
		panic(err)
	}
	return q
}

type tokKind int

const (
	tokQuant tokKind = iota
	tokVar
	tokArrow
)

type token struct {
	kind     tokKind
	quant    Quantifier
	varIndex int
	text     string
}

func tokenize(s string) ([]token, error) {
	var toks []token
	rs := []rune(s)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r) || r == '∧' || r == '&':
			i++
		case r == '∀':
			toks = append(toks, token{kind: tokQuant, quant: Forall, text: "∀"})
			i++
		case r == '∃':
			toks = append(toks, token{kind: tokQuant, quant: Exists, text: "∃"})
			i++
		case r == 'A':
			toks = append(toks, token{kind: tokQuant, quant: Forall, text: "A"})
			i++
		case r == 'E':
			toks = append(toks, token{kind: tokQuant, quant: Exists, text: "E"})
			i++
		case r == '→':
			toks = append(toks, token{kind: tokArrow, text: "→"})
			i++
		case r == '-':
			if i+1 < len(rs) && rs[i+1] == '>' {
				toks = append(toks, token{kind: tokArrow, text: "->"})
				i += 2
			} else {
				return nil, fmt.Errorf("query: unexpected '-' at position %d", i)
			}
		case r == 'x' || r == 'X':
			j := i + 1
			for j < len(rs) && unicode.IsDigit(rs[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("query: variable at position %d has no index", i)
			}
			idx := 0
			for _, d := range rs[i+1 : j] {
				idx = idx*10 + int(d-'0')
			}
			if idx < 1 {
				return nil, fmt.Errorf("query: variables are numbered from x1, got x%d", idx)
			}
			toks = append(toks, token{kind: tokVar, varIndex: idx - 1, text: string(rs[i:j])})
			i = j
		case strings.HasPrefix(strings.ToLower(string(rs[i:])), "forall"):
			toks = append(toks, token{kind: tokQuant, quant: Forall, text: "forall"})
			i += len("forall")
		case strings.HasPrefix(strings.ToLower(string(rs[i:])), "exists"):
			toks = append(toks, token{kind: tokQuant, quant: Exists, text: "exists"})
			i += len("exists")
		default:
			return nil, fmt.Errorf("query: unexpected character %q at position %d", r, i)
		}
	}
	return toks, nil
}
