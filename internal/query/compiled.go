package query

import (
	"math/bits"
	"sort"
	"sync"

	"qhorn/internal/boolean"
)

// This file implements the compiled query-evaluation kernel
// (docs/PERFORMANCE.md). Query.Eval re-walks the expression list on
// every call, switching on the quantifier and re-deriving the
// guarantee mask of each universal expression; every subsystem that
// evaluates queries in bulk — the brute-force answer matrix, the
// difffuzz judges, the verifier's exhaustive cross-checks, every
// simulated user — pays that interpretation cost per call. Compile
// flattens the query once into flat machine-word slices so that
// evaluation is two cache-friendly passes over the object's tuple
// slice — witnesses first, violations second, each with early exit —
// with no interface dispatch and no per-call allocation.

// Compiled is the compiled evaluation form of a Query: the universal
// Horn expressions flattened into parallel body-mask / head-bit /
// guarantee-mask word slices, the existential expressions into
// required-conjunction masks, plus a lazily cached normal form shared
// by Equivalent and Implies. A Compiled is immutable after Compile and
// safe for concurrent use; Eval performs no heap allocation.
type Compiled struct {
	src Query
	// uBody[i], uHead[i] and uGuar[i] describe the i-th universal Horn
	// expression: the body variables, the head bit, and the guarantee
	// conjunction Body ∪ {Head}.
	uBody []uint64
	uHead []uint64
	uGuar []uint64
	// req lists every conjunction some tuple must contain for the
	// object to be an answer: the guarantee masks (aliasing uGuar) and
	// the existential expressions' variable masks.
	req []uint64
	// rules fuses each universal expression into the single-compare
	// violation test Eval runs: tuple w violates rule i iff
	// w & guar == body, i.e. the body is contained and the head bit —
	// the one bit by which guar exceeds body — is absent.
	rules []rule

	nfOnce sync.Once
	nf     Query
}

// rule is one fused universal Horn expression; see Compiled.rules.
type rule struct{ guar, body uint64 }

// Compile flattens q into its compiled evaluation form. Compilation is
// O(len(q.Exprs)) and does not normalize; the cached normal form is
// computed on first use by Normalize, Equivalent or Implies.
func Compile(q Query) *Compiled {
	c := &Compiled{src: q}
	for _, e := range q.Exprs {
		switch e.Quant {
		case Forall:
			body := uint64(e.Body)
			head := uint64(1) << uint(e.Head)
			c.uBody = append(c.uBody, body)
			c.uHead = append(c.uHead, head)
			c.uGuar = append(c.uGuar, body|head)
			c.rules = append(c.rules, rule{guar: body | head, body: body})
		case Exists:
			c.req = append(c.req, uint64(e.Vars()))
		}
	}
	// The guarantee clauses are requirements too.
	c.req = append(c.req, c.uGuar...)
	// Evaluation order is free for both checks — every requirement must
	// hold and any violation rejects — so sort each for early exit:
	// requirements largest-mask first (the hardest to witness, the
	// likeliest rejection), rules by ascending body so the violation
	// scan can stop at the first body numerically above the tuple.
	sort.Slice(c.req, func(i, j int) bool {
		pi, pj := bits.OnesCount64(c.req[i]), bits.OnesCount64(c.req[j])
		if pi != pj {
			return pi > pj
		}
		return c.req[i] > c.req[j]
	})
	sort.Slice(c.rules, func(i, j int) bool { return c.rules[i].body < c.rules[j].body })
	return c
}

// Query returns the source query the kernel was compiled from.
func (c *Compiled) Query() Query { return c.src }

// Eval reports whether the object s is an answer to the compiled
// query, with semantics identical to Query.Eval (the difffuzz kernel
// judge pins the two against each other on every generated case).
// Evaluation is two flat passes with early exit. The witness pass runs
// first: on non-answers a missing required conjunction is by far the
// most common rejection, and it surfaces after a single scan of the
// tuples for the first unwitnessed requirement. The violation pass
// then checks every tuple against every universal body in straight
// word operations.
func (c *Compiled) Eval(s boolean.Set) bool {
	tuples := s.Tuples()
	for _, m := range c.req {
		witnessed := false
		// Scan descending: tuples sort ascending by value, so the
		// densest tuples — the likeliest witnesses for any conjunction —
		// sit at the top, and a tuple numerically below the mask can
		// never contain it.
		for i := len(tuples) - 1; i >= 0; i-- {
			t := uint64(tuples[i])
			if t < m {
				break
			}
			if t&m == m {
				witnessed = true
				break
			}
		}
		if !witnessed {
			return false
		}
	}
	for _, t := range tuples {
		w := uint64(t)
		for _, r := range c.rules {
			if r.body > w {
				// Rules sort by body; no later body fits in w either.
				break
			}
			if w&r.guar == r.body {
				return false
			}
		}
	}
	return true
}

// Normalize returns the query's canonical semantic normal form
// (Proposition 4.1), computed once and cached for the lifetime of the
// Compiled. The cache is what lets Equivalent and Implies skip the
// repeated Normalize calls of the interpreted path.
func (c *Compiled) Normalize() Query {
	c.nfOnce.Do(func() { c.nf = c.src.Normalize() })
	return c.nf
}

// Equivalent reports semantic equivalence with other by Proposition
// 4.1, comparing the two cached normal forms.
func (c *Compiled) Equivalent(other *Compiled) bool {
	if c.src.U.N() != other.src.U.N() {
		return false
	}
	return c.Normalize().Equal(other.Normalize())
}

// Implies reports query containment against other, reusing both
// cached normal forms (see Query.Implies for the decision procedure).
func (c *Compiled) Implies(other *Compiled) bool {
	return c.Normalize().Implies(other.Normalize())
}
