package query

import (
	"math/rand"
	"strings"
	"testing"

	"qhorn/internal/boolean"
)

func TestClassifyAgreesWithPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for i := 0; i < 200; i++ {
		n := 2 + rng.Intn(8)
		var q Query
		if i%2 == 0 {
			q = GenQhorn1(rng, n)
		} else {
			q = GenRolePreserving(rng, n, RPOptions{
				Heads:         rng.Intn(n / 2),
				BodiesPerHead: 1 + rng.Intn(2),
				MaxBodySize:   1 + rng.Intn(3),
				Conjs:         rng.Intn(3),
				MaxConjSize:   1 + rng.Intn(n),
			})
		}
		r := q.Classify()
		if r.Qhorn1 != q.IsQhorn1() {
			t.Fatalf("Classify.Qhorn1 = %v, IsQhorn1 = %v for %s\nviolations: %v",
				r.Qhorn1, q.IsQhorn1(), q, r.Qhorn1Violations)
		}
		if r.RolePreserving != q.IsRolePreserving() {
			t.Fatalf("Classify.RolePreserving = %v, IsRolePreserving = %v for %s",
				r.RolePreserving, q.IsRolePreserving(), q)
		}
		if r.Qhorn1 && len(r.Qhorn1Violations) > 0 {
			t.Fatal("member with violations")
		}
		if !r.Qhorn1 && len(r.Qhorn1Violations) == 0 {
			t.Fatal("non-member without violations")
		}
	}
}

func TestClassifyDiagnostics(t *testing.T) {
	u := boolean.MustUniverse(6)
	tests := []struct {
		query string
		wants []string
	}{
		{
			// §2.1.4's non-role-preserving example.
			"∀x1x4 → x5 ∀x2x3x5 → x6",
			[]string{"x5 is the head of", "roles must be preserved"},
		},
		{
			"∃x1x2x3 ∀x4 ∀x5 ∃x6",
			[]string{"headless conjunction", "rewrite as"},
		},
		{
			"∀x1 → x4 ∃x2 → x4 ∃x3 ∃x5 ∃x6",
			[]string{"head x4 appears in more than one expression"},
		},
		{
			"∀x1x2 → x4 ∃x2x3 → x5 ∃x6",
			[]string{"overlap without being equal"},
		},
		{
			"∀x1x2 → x4 ∃x5",
			[]string{"appear in no expression"},
		},
	}
	for _, tc := range tests {
		r := MustParse(u, tc.query).Classify()
		all := strings.Join(append(r.Qhorn1Violations, r.RoleViolations...), " | ")
		for _, want := range tc.wants {
			if !strings.Contains(all, want) {
				t.Errorf("Classify(%q): missing %q in %q", tc.query, want, all)
			}
		}
	}
}

func TestClassifyFig2Example(t *testing.T) {
	// Fig 2's qhorn-1 query is a member of both classes.
	u := boolean.MustUniverse(6)
	r := MustParse(u, "∀x1x2 → x4 ∃x1x2 → x5 ∃x3 → x6").Classify()
	if !r.Qhorn1 || !r.RolePreserving {
		t.Fatalf("Fig 2 query misclassified: %+v", r)
	}
}
