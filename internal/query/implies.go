package query

// Implies reports whether every object accepted by q is accepted by
// other — query containment, decided structurally on the normal
// forms (no object enumeration):
//
//   - every dominant universal Horn expression of other must be
//     dominated by one of q's (same head, body ⊆ other's body, rule
//     R2), and
//   - every dominant conjunction of other — closed under q's
//     universal expressions, which hold in all of q's answers (rule
//     R3) — must be contained in one of q's dominant conjunctions
//     (rule R1).
//
// Both queries must be role-preserving (as everywhere else, by
// Proposition 4.1's normal-form reasoning). Equivalent(a, b) ⟺
// Implies(a, b) ∧ Implies(b, a); tests check Implies against
// exhaustive evaluation on small universes.
func (q Query) Implies(other Query) bool {
	if q.U.N() != other.U.N() {
		return false
	}
	qa, qb := q.Normalize(), other.Normalize()

	// Universal expressions: each of b's must be entailed by a
	// stronger (smaller-body, same-head) expression of a.
	aUniv := qa.DominantUniversals()
	for _, eb := range qb.DominantUniversals() {
		entailed := false
		for _, ea := range aUniv {
			if ea.Head == eb.Head && eb.Body.Contains(ea.Body) {
				entailed = true
				break
			}
		}
		if !entailed {
			return false
		}
	}

	// Conjunctions: each of b's, closed under a's universal rules
	// (true in every a-answer), must be witnessed by one of a's
	// conjunctions.
	aConjs := qa.DominantConjunctions()
	for _, cb := range qb.DominantConjunctions() {
		need := qa.Closure(cb)
		witnessed := false
		for _, ca := range aConjs {
			if ca.Contains(need) {
				witnessed = true
				break
			}
		}
		if !witnessed {
			return false
		}
	}
	return true
}
