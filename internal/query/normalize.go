package query

import (
	"sort"

	"qhorn/internal/boolean"
)

// DominantUniversals returns the non-dominated universal Horn
// expressions of the query, deduplicated, in deterministic order
// (head, then body). By equivalence rule R2, a universal Horn
// expression with body B and head h dominates any universal expression
// with the same head and body B' ⊇ B; dominated expressions are
// dropped (their guarantee clauses survive in DominantConjunctions).
func (q Query) DominantUniversals() []Expr {
	byHead := map[int][]boolean.Tuple{}
	for _, e := range q.Exprs {
		if e.Quant != Forall {
			continue
		}
		byHead[e.Head] = append(byHead[e.Head], e.Body)
	}
	var out []Expr
	for head, bodies := range byHead {
		for _, b := range minimalTuples(bodies) {
			out = append(out, UniversalHorn(b, head))
		}
		_ = head
	}
	sortExprs(out)
	return out
}

// DominantConjunctions returns the distinguishing tuples of all
// dominant existential expressions of the query (§4.1.1): every
// existential expression and every guarantee clause — including those
// of dominated universal expressions, which rule R2 preserves — is
// closed under rule R3 (implied heads added) and then filtered to the
// maximal conjunctions under rule R1 (a conjunction dominates
// conjunctions over subsets of its variables).
func (q Query) DominantConjunctions() []boolean.Tuple {
	var conjs []boolean.Tuple
	for _, e := range q.Exprs {
		switch e.Quant {
		case Exists:
			conjs = append(conjs, q.Closure(e.Vars()))
		case Forall:
			// Guarantee clause ∃ Body ∪ {Head}.
			conjs = append(conjs, q.Closure(e.Body.With(e.Head)))
		}
	}
	out := maximalTuples(conjs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Normalize returns the canonical semantic normal form of the query:
// its dominant universal Horn expressions plus one existential
// conjunction per dominant distinguishing tuple. For role-preserving
// qhorn queries, two queries are semantically equivalent iff their
// normal forms are syntactically equal (Proposition 4.1).
func (q Query) Normalize() Query {
	if q.normal {
		return q
	}
	exprs := q.DominantUniversals()
	for _, c := range q.DominantConjunctions() {
		exprs = append(exprs, Conjunction(c))
	}
	return Query{U: q.U, Exprs: exprs, normal: true}
}

// Equivalent reports whether two role-preserving qhorn queries are
// semantically equivalent, by Proposition 4.1: they have identical
// sets of dominant universal and existential distinguishing tuples.
// Tests cross-check this decision against exhaustive evaluation over
// all objects for small universes.
func (q Query) Equivalent(other Query) bool {
	if q.U.N() != other.U.N() {
		return false
	}
	return q.Normalize().Equal(other.Normalize())
}

// UniversalDistinguishingTuple returns the distinguishing tuple of a
// universal Horn expression ∀ B → h (Definition 3.4, §4.1.2): the
// body variables true, the head false, all other head variables of
// the query true, and the remaining variables false.
func (q Query) UniversalDistinguishingTuple(e Expr) boolean.Tuple {
	heads := q.UniversalHeads()
	return e.Body.Union(heads).Without(e.Head)
}

// ExistentialDistinguishingTuple returns the distinguishing tuple of
// an existential conjunction over vars (Definition 3.5, §4.1.1): the
// conjunction's variables true — raised by rule R3 so no universal
// Horn expression is violated — and all other variables false.
func (q Query) ExistentialDistinguishingTuple(vars boolean.Tuple) boolean.Tuple {
	return q.Closure(vars)
}

// IsRolePreserving reports whether the query is in the
// role-preserving qhorn class (§2.1.4): across universal Horn
// expressions, no variable appears both as a head and as a body
// variable. Existential expressions are unconstrained (they are read
// as conjunctions).
func (q Query) IsRolePreserving() bool {
	var heads, bodies boolean.Tuple
	for _, e := range q.Exprs {
		if e.Quant != Forall {
			continue
		}
		heads = heads.With(e.Head)
		bodies = bodies.Union(e.Body)
	}
	return !heads.Intersects(bodies)
}

// IsQhorn1 reports whether the query is in the qhorn-1 class
// (§2.1.3). Every expression must be in Horn form (head present), and:
//
//  1. bodies are pairwise disjoint or identical,
//  2. head variables are pairwise distinct,
//  3. no head variable appears in any body,
//  4. every variable of the universe appears in exactly one role —
//     qhorn-1 forbids variable repetition, and the class is built from
//     partitions of all n variables (§2.1.3), so the learner's output
//     always covers the universe.
func (q Query) IsQhorn1() bool {
	var heads, bodyUnion boolean.Tuple
	var bodies []boolean.Tuple
	for _, e := range q.Exprs {
		if e.Head == NoHead {
			return false
		}
		if heads.Has(e.Head) {
			return false // repeated head
		}
		heads = heads.With(e.Head)
		bodies = append(bodies, e.Body)
		bodyUnion = bodyUnion.Union(e.Body)
	}
	if heads.Intersects(bodyUnion) {
		return false
	}
	for i := range bodies {
		for j := i + 1; j < len(bodies); j++ {
			if bodies[i].Intersects(bodies[j]) && bodies[i] != bodies[j] {
				return false
			}
		}
	}
	return heads.Union(bodyUnion) == q.U.All()
}

// minimalTuples keeps the tuples that contain no other tuple of the
// input (minimal under ⊆), deduplicated.
func minimalTuples(ts []boolean.Tuple) []boolean.Tuple {
	var out []boolean.Tuple
	for i, t := range ts {
		keep := true
		for j, u := range ts {
			if i == j {
				continue
			}
			if t.Contains(u) && u != t {
				keep = false // t dominated by strict subset u
				break
			}
			if u == t && j < i {
				keep = false // duplicate
				break
			}
		}
		if keep {
			out = append(out, t)
		}
	}
	return out
}

// maximalTuples keeps the tuples contained in no other tuple of the
// input (maximal under ⊆), deduplicated.
func maximalTuples(ts []boolean.Tuple) []boolean.Tuple {
	var out []boolean.Tuple
	for i, t := range ts {
		keep := true
		for j, u := range ts {
			if i == j {
				continue
			}
			if u.Contains(t) && u != t {
				keep = false
				break
			}
			if u == t && j < i {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, t)
		}
	}
	return out
}

func sortExprs(es []Expr) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.Quant != b.Quant {
			return a.Quant == Forall
		}
		if a.Head != b.Head {
			return a.Head < b.Head
		}
		return a.Body < b.Body
	})
}
