package learn

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// Qhorn1Stats reports the per-phase question counts of the qhorn-1
// learner, the quantities bounded by §3.1: O(n) head questions,
// O(n lg n) universal-dependence questions (Lemma 3.2) and O(n lg n)
// existential questions (Lemma 3.3).
type Qhorn1Stats struct {
	HeadQuestions        int
	BodyQuestions        int
	ExistentialQuestions int
}

// Total returns the total number of membership questions asked.
func (s Qhorn1Stats) Total() int {
	return s.HeadQuestions + s.BodyQuestions + s.ExistentialQuestions
}

// Qhorn1 learns a qhorn-1 query over u exactly, using O(n lg n)
// membership questions against an oracle backed by a target query in
// the class (Theorem 3.1). The returned query is semantically
// equivalent to the target. If the oracle is not consistent with any
// qhorn-1 query, the result is unspecified (exact learning has no
// error signal; use verify.Verify to check a result).
//
// Qhorn1 is the default configuration of the run engine; it is
// equivalent to learn.Run(u, o) (docs/ENGINE.md).
func Qhorn1(u boolean.Universe, o oracle.Oracle) (query.Query, Qhorn1Stats) {
	q, s := Run(u, o)
	return q, qhorn1Stats(s)
}

type qhorn1Learner struct {
	u     boolean.Universe
	o     oracle.Oracle
	stats Qhorn1Stats
	phase *int // current phase counter
	// serial switches the variable searches from binary search to
	// the one-question-per-variable baseline of §3.1.2 (Qhorn1Naive).
	serial bool
	// batch surfaces independent question sets as oracle.AskAll
	// batches (Qhorn1Parallel): the n head questions, each FindAll
	// level, and the co-head separation questions. The questions —
	// and the per-phase counts — are identical to the serial run;
	// only the asking overlaps in time.
	batch bool
	// in carries the observability hooks (see Qhorn1Observed); its
	// zero value is silent.
	in instr
}

// note annotates the next question with its phase and purpose.
func (l *qhorn1Learner) note(phase, purpose string) {
	l.in.note(phase, purpose)
}

// elimQuestion describes the membership question behind an
// elimination predicate of Algorithms 2–3: how to build the question
// for a candidate set, how to annotate it, and which oracle answer
// eliminates the set. Factoring the question out of the closure lets
// the batch mode issue whole FindAll levels as one oracle batch with
// unchanged annotations and accounting.
type elimQuestion struct {
	phase          string
	build          func(d []int) boolean.Set
	purpose        func(d []int) string
	eliminatedWhen bool
}

// eliminate adapts e to the serial predicate findOne/findAll expect.
func (l *qhorn1Learner) eliminate(e elimQuestion) func([]int) bool {
	return func(d []int) bool {
		l.note(e.phase, e.purpose(d))
		return l.ask(e.build(d)) == e.eliminatedWhen
	}
}

// eliminateBatch adapts e to the level-batch predicate of
// findAllBatched.
func (l *qhorn1Learner) eliminateBatch(e elimQuestion) func([][]int) []bool {
	return func(ds [][]int) []bool {
		qs := make([]boolean.Set, len(ds))
		for i, d := range ds {
			qs[i] = e.build(d)
		}
		answers := l.askBatch(qs, func(i int) (string, string) {
			return e.phase, e.purpose(ds[i])
		})
		for i := range answers {
			answers[i] = answers[i] == e.eliminatedWhen
		}
		return answers
	}
}

// askBatch asks one batch of independent questions through
// oracle.AskAll and then runs the serial accounting — phase counter,
// note, observe — per question in question order, so a batched run
// reports exactly what the serial run reports.
func (l *qhorn1Learner) askBatch(qs []boolean.Set, note func(i int) (phase, purpose string)) []bool {
	answers := oracle.AskAll(l.o, qs)
	for i, a := range answers {
		*l.phase++
		l.in.note(note(i))
		l.in.observe(qs[i], a)
	}
	return answers
}

// varNames renders a variable list as "x1,x3".
func varNames(vars []int) string {
	s := ""
	for i, v := range vars {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("x%d", v+1)
	}
	return s
}

// find dispatches to binary or serial search for one target variable,
// under a "find" span (Algorithm 2). The binary search is adaptive —
// each question depends on the previous answer — so it stays serial
// even in batch mode.
func (l *qhorn1Learner) find(vars []int, e elimQuestion) (int, bool) {
	defer l.in.begin("find")()
	if l.serial {
		return serialFindOne(vars, l.eliminate(e))
	}
	return findOne(vars, l.eliminate(e))
}

// findEvery dispatches to binary, serial, or level-batched search for
// all targets, under a "findall" span (Algorithm 3).
func (l *qhorn1Learner) findEvery(vars []int, e elimQuestion) []int {
	defer l.in.begin("findall")()
	switch {
	case l.serial:
		return serialFindAll(vars, l.eliminate(e))
	case l.batch:
		return findAllBatched(vars, l.eliminateBatch(e))
	default:
		return findAll(vars, l.eliminate(e))
	}
}

func (l *qhorn1Learner) ask(s boolean.Set) bool {
	*l.phase++
	a := l.o.Ask(s)
	l.in.observe(s, a)
	return a
}

func (l *qhorn1Learner) learn() (query.Query, Qhorn1Stats) {
	n := l.u.N()
	var exprs []query.Expr
	name := "learn/qhorn1"
	if l.serial {
		name = "learn/qhorn1-naive"
	}
	defer l.in.start(name, obs.Af("n", "%d", n))()

	// Phase 1 (§3.1.1): classify every variable as universal head or
	// existential with one question each.
	l.phase = &l.stats.HeadQuestions
	endPhase := l.in.begin("heads")
	var uniHeads, existential []int
	headAnswer := func(x int, answer bool) {
		if answer {
			existential = append(existential, x)
		} else {
			uniHeads = append(uniHeads, x)
		}
	}
	if l.batch {
		// The n head questions are mutually independent: one batch.
		qs := make([]boolean.Set, n)
		for x := 0; x < n; x++ {
			qs[x] = HeadTestQuestion(l.u, x)
		}
		answers := l.askBatch(qs, func(x int) (string, string) {
			return "heads", fmt.Sprintf("is x%d a universal head variable?", x+1)
		})
		for x, a := range answers {
			headAnswer(x, a)
		}
	} else {
		for x := 0; x < n; x++ {
			l.note("heads", fmt.Sprintf("is x%d a universal head variable?", x+1))
			headAnswer(x, l.ask(HeadTestQuestion(l.u, x)))
		}
	}
	endPhase()

	// Phase 2 (§3.1.2, Algorithm 1): learn the body of each universal
	// head by binary search, reusing known bodies.
	l.phase = &l.stats.BodyQuestions
	endPhase = l.in.begin("bodies")
	var bodies []boolean.Tuple // disjoint learned bodies
	for _, h := range uniHeads {
		b := l.findBodyFor(h, bodies, existential)
		if b.IsEmpty() {
			exprs = append(exprs, query.BodylessUniversal(h))
			continue
		}
		exprs = append(exprs, query.UniversalHorn(b, h))
		bodies = appendBody(bodies, b)
	}
	endPhase()

	// Phase 3 (§3.1.3, Algorithm 4): learn existential Horn
	// expressions among the remaining existential variables.
	l.phase = &l.stats.ExistentialQuestions
	endPhase = l.in.begin("existential")
	defer endPhase()
	var bodyUnion boolean.Tuple
	for _, b := range bodies {
		bodyUnion = bodyUnion.Union(b)
	}
	pending := make([]int, 0, len(existential))
	for _, e := range existential {
		if !bodyUnion.Has(e) {
			pending = append(pending, e)
		}
	}
	for len(pending) > 0 {
		e := pending[0]
		pending = pending[1:]
		// Does e depend on a variable of a known body? Then e is an
		// existential head of that body.
		eT := boolean.FromVars(e)
		knownVars := tupleVars(bodies)
		knownElim := elimQuestion{
			phase: "existential",
			build: func(d []int) boolean.Set {
				return ExistentialIndependenceQuestion(l.u, eT, boolean.FromVars(d...))
			},
			purpose: func(d []int) string {
				return fmt.Sprintf("does x%d depend on one of the known body variables %s?", e+1, varNames(d))
			},
			eliminatedWhen: true,
		}
		if b, found := l.find(knownVars, knownElim); found {
			for _, known := range bodies {
				if known.Has(b) {
					exprs = append(exprs, query.ExistentialHorn(known, e))
					break
				}
			}
			continue
		}
		// Find all variables D that e depends on among the pending
		// existential variables.
		dVars := l.findEvery(pending, elimQuestion{
			phase: "existential",
			build: func(d []int) boolean.Set {
				return ExistentialIndependenceQuestion(l.u, eT, boolean.FromVars(d...))
			},
			purpose: func(d []int) string {
				return fmt.Sprintf("does x%d depend on any of %s?", e+1, varNames(d))
			},
			eliminatedWhen: true,
		})
		d := boolean.FromVars(dVars...)
		if d.IsEmpty() {
			// e participates in no Horn expression with other
			// variables: the singleton ∃e.
			exprs = append(exprs, query.ExistentialHorn(0, e))
			continue
		}
		// Decide the roles within D (Lemma 3.3 / Algorithm 5).
		h1, twoHeads := l.getHead(dVars)
		if !twoHeads {
			// At most one head variable in D: we may take e as the
			// head and all of D as its body; any other assignment is
			// semantically identical (the conjunction is D ∪ {e}).
			exprs = append(exprs, query.ExistentialHorn(d, e))
			bodies = appendBody(bodies, d)
			pending = removeVars(pending, d)
			continue
		}
		// h1 is one head; separate the remaining heads from the body
		// variables with one independence question each. The questions
		// are mutually independent, so batch mode issues them at once.
		heads := boolean.FromVars(h1)
		h1T := boolean.FromVars(h1)
		cand := make([]int, 0, len(dVars))
		for _, dv := range dVars {
			if dv != h1 {
				cand = append(cand, dv)
			}
		}
		if l.batch {
			qs := make([]boolean.Set, len(cand))
			for i, dv := range cand {
				qs[i] = ExistentialIndependenceQuestion(l.u, h1T, boolean.FromVars(dv))
			}
			answers := l.askBatch(qs, func(i int) (string, string) {
				return "existential", fmt.Sprintf("are x%d and x%d independent co-heads?", h1+1, cand[i]+1)
			})
			for i, a := range answers {
				if a {
					heads = heads.With(cand[i])
				}
			}
		} else {
			for _, dv := range cand {
				l.note("existential", fmt.Sprintf("are x%d and x%d independent co-heads?", h1+1, dv+1))
				if l.ask(ExistentialIndependenceQuestion(l.u, h1T, boolean.FromVars(dv))) {
					heads = heads.With(dv)
				}
			}
		}
		bodyVars := d.Minus(heads).With(e)
		for _, h := range heads.Vars() {
			exprs = append(exprs, query.ExistentialHorn(bodyVars, h))
		}
		bodies = appendBody(bodies, bodyVars)
		pending = removeVars(pending, d)
	}

	q := query.Query{U: l.u, Exprs: exprs}
	return q, l.stats
}

// findBodyFor learns the body of universal head h (Algorithm 1):
// first a binary search within the union of known bodies — one shared
// variable identifies the whole body — then a full FindAll over the
// existential variables.
func (l *qhorn1Learner) findBodyFor(h int, bodies []boolean.Tuple, existential []int) boolean.Tuple {
	eliminate := elimQuestion{
		phase: "bodies",
		build: func(d []int) boolean.Set {
			return UniversalDependenceQuestion(l.u, h, boolean.FromVars(d...))
		},
		purpose: func(d []int) string {
			return fmt.Sprintf("does the body of x%d include a variable of %s?", h+1, varNames(d))
		},
		eliminatedWhen: false,
	}
	knownVars := tupleVars(bodies)
	if b, found := l.find(knownVars, eliminate); found {
		for _, known := range bodies {
			if known.Has(b) {
				return known
			}
		}
	}
	// h's body is disjoint from every known body: search the
	// remaining existential variables.
	var known boolean.Tuple
	for _, b := range bodies {
		known = known.Union(b)
	}
	rest := make([]int, 0, len(existential))
	for _, e := range existential {
		if !known.Has(e) {
			rest = append(rest, e)
		}
	}
	return boolean.FromVars(l.findEvery(rest, eliminate)...)
}

// getHead locates one existential head variable within the dependent
// set D using independence-matrix questions (Lemma 3.3). It returns
// ok=false when D contains at most one head variable, in which case
// the matrix question on D is a non-answer. The implementation is an
// invariant-based binary search equivalent to Algorithm 5: tester T
// holds at most one head, candidate C satisfies #heads(T ∪ C) ≥ 2,
// and each question halves C.
func (l *qhorn1Learner) getHead(dVars []int) (int, bool) {
	defer l.in.begin("gethead")()
	matrix := func(vars []int) bool {
		l.note("existential", fmt.Sprintf("do at least two head variables lie in %s?", varNames(vars)))
		return l.ask(MatrixQuestion(l.u, boolean.FromVars(vars...)))
	}
	if !matrix(dVars) {
		return 0, false
	}
	var tester []int
	cand := dVars
	for len(cand) > 1 {
		half := cand[:len(cand)/2]
		rest := cand[len(cand)/2:]
		if matrix(append(append([]int{}, tester...), half...)) {
			cand = half
		} else {
			tester = append(tester, half...)
			cand = rest
		}
	}
	return cand[0], true
}

// appendBody adds a newly learned body to the list unless an equal
// body is already present.
func appendBody(bodies []boolean.Tuple, b boolean.Tuple) []boolean.Tuple {
	for _, known := range bodies {
		if known == b {
			return bodies
		}
	}
	return append(bodies, b)
}

// tupleVars flattens a list of disjoint variable sets into a sorted
// variable slice.
func tupleVars(bodies []boolean.Tuple) []int {
	var union boolean.Tuple
	for _, b := range bodies {
		union = union.Union(b)
	}
	return union.Vars()
}

// removeVars drops the variables of d from the pending list.
func removeVars(pending []int, d boolean.Tuple) []int {
	out := pending[:0]
	for _, v := range pending {
		if !d.Has(v) {
			out = append(out, v)
		}
	}
	return out
}
