package learn

import (
	"math"
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

func learnQhorn1Target(t *testing.T, target query.Query) (query.Query, Qhorn1Stats) {
	t.Helper()
	learned, stats := Qhorn1(target.U, oracle.Target(target))
	if !learned.Equivalent(target) {
		t.Fatalf("target %s learned as %s", target, learned)
	}
	return learned, stats
}

func TestQhorn1LearnsFixedQueries(t *testing.T) {
	u6 := boolean.MustUniverse(6)
	u7 := boolean.MustUniverse(7)
	targets := []query.Query{
		// Fig 2's qhorn-1 query.
		query.MustParse(u6, "∀x1x2 → x4 ∃x1x2 → x5 ∃x3 → x6"),
		// The §2.1.3 partition query.
		query.MustParse(u7, "∀x1 ∀x2 ∃x3 → x4 ∃x5x6 → x7"),
		// All-universal.
		query.MustParse(u6, "∀x1 ∀x2 ∀x3 ∀x4 ∀x5 ∀x6"),
		// All-existential singletons.
		query.MustParse(u6, "∃x1 ∃x2 ∃x3 ∃x4 ∃x5 ∃x6"),
		// One big body with several heads.
		query.MustParse(u7, "∀x1x2x3 → x4 ∃x1x2x3 → x5 ∀x1x2x3 → x6 ∃x1x2x3 → x7"),
		// Universal heads sharing one body.
		query.MustParse(u6, "∀x1x2 → x3 ∀x1x2 → x4 ∀x1x2 → x5 ∃x6"),
	}
	for _, target := range targets {
		learnQhorn1Target(t, target)
	}
}

func TestQhorn1LearnsSingleVariable(t *testing.T) {
	u := boolean.MustUniverse(1)
	for _, s := range []string{"∀x1", "∃x1"} {
		learnQhorn1Target(t, query.MustParse(u, s))
	}
}

func TestQhorn1RoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		n := 1 + rng.Intn(16)
		target := query.GenQhorn1(rng, n)
		learnQhorn1Target(t, target)
	}
}

func TestQhorn1RoundTripLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 10; i++ {
		target := query.GenQhorn1(rng, 40)
		learnQhorn1Target(t, target)
	}
}

// TestQhorn1QuestionBound checks Theorem 3.1 empirically: the total
// number of questions stays within a small constant of n lg n.
func TestQhorn1QuestionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{8, 16, 32, 64} {
		worst := 0
		for i := 0; i < 20; i++ {
			target := query.GenQhorn1(rng, n)
			_, stats := learnQhorn1Target(t, target)
			if q := stats.Total(); q > worst {
				worst = q
			}
		}
		bound := int(6*float64(n)*math.Log2(float64(n))) + 6*n
		if worst > bound {
			t.Errorf("n=%d: worst question count %d exceeds 6·n·lg n + 6n = %d", n, worst, bound)
		}
	}
}

// TestQhorn1HeadPhaseExact: classifying heads takes exactly n
// questions (§3.1.1).
func TestQhorn1HeadPhaseExact(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 20; i++ {
		n := 2 + rng.Intn(20)
		target := query.GenQhorn1(rng, n)
		_, stats := learnQhorn1Target(t, target)
		if stats.HeadQuestions != n {
			t.Fatalf("head questions = %d, want n = %d", stats.HeadQuestions, n)
		}
	}
}

// TestQhorn1QuestionsHaveConstantTuples: every question of the
// qhorn-1 learner has at most max(2, |D|) tuples; the head/body
// phases use exactly two tuples (§3.1).
func TestQhorn1QuestionsHaveFewTuples(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 30; i++ {
		n := 2 + rng.Intn(14)
		target := query.GenQhorn1(rng, n)
		c := oracle.Count(oracle.Target(target))
		learned, _ := Qhorn1(target.U, c)
		if !learned.Equivalent(target) {
			t.Fatalf("target %s learned as %s", target, learned)
		}
		if c.MaxTuples > n {
			t.Fatalf("question with %d tuples for n=%d", c.MaxTuples, n)
		}
	}
}

// TestQhorn1AgainstBruteForce cross-validates the learner against
// explicit elimination over the full qhorn-1 class on 3 variables.
func TestQhorn1AgainstBruteForce(t *testing.T) {
	u := boolean.MustUniverse(3)
	targets := enumerateQhorn1(u)
	if len(targets) < 20 {
		t.Fatalf("enumeration too small: %d", len(targets))
	}
	for _, target := range targets {
		learnQhorn1Target(t, target)
	}
}

// enumerateQhorn1 lists all qhorn-1 queries on a tiny universe by
// enumerating set partitions and role/quantifier assignments.
func enumerateQhorn1(u boolean.Universe) []query.Query {
	n := u.N()
	var out []query.Query
	seen := map[string]bool{}
	// Enumerate partitions via restricted growth strings.
	rgs := make([]int, n)
	var rec func(i, maxPart int)
	rec = func(i, maxPart int) {
		if i == n {
			parts := make([]boolean.Tuple, maxPart)
			for v, p := range rgs {
				parts[p] = parts[p].With(v)
			}
			emit(u, parts, nil, &out, seen)
			return
		}
		for p := 0; p <= maxPart; p++ {
			rgs[i] = p
			next := maxPart
			if p == maxPart {
				next++
			}
			rec(i+1, next)
		}
	}
	rec(0, 0)
	return out
}

// emit enumerates, for a partition, every choice of body/head split
// and quantifier per head, appending the distinct queries.
func emit(u boolean.Universe, parts []boolean.Tuple, acc []query.Expr, out *[]query.Query, seen map[string]bool) {
	if len(parts) == 0 {
		q := query.Query{U: u, Exprs: append([]query.Expr{}, acc...)}
		if !q.IsQhorn1() {
			return
		}
		key := q.Normalize().String()
		if !seen[key] {
			seen[key] = true
			*out = append(*out, q)
		}
		return
	}
	part := parts[0]
	rest := parts[1:]
	vars := part.Vars()
	if len(vars) == 1 {
		for _, e := range []query.Expr{query.BodylessUniversal(vars[0]), query.ExistentialHorn(0, vars[0])} {
			emit(u, rest, append(acc, e), out, seen)
		}
		return
	}
	// Choose a non-empty proper subset as the body; the rest are
	// heads, each universally or existentially quantified.
	for bm := 1; bm < 1<<uint(len(vars)); bm++ {
		var bodyT boolean.Tuple
		var heads []int
		for i, v := range vars {
			if bm&(1<<uint(i)) != 0 {
				bodyT = bodyT.With(v)
			} else {
				heads = append(heads, v)
			}
		}
		if len(heads) == 0 {
			continue
		}
		var assign func(i int, acc2 []query.Expr)
		assign = func(i int, acc2 []query.Expr) {
			if i == len(heads) {
				emit(u, rest, acc2, out, seen)
				return
			}
			assign(i+1, append(acc2, query.UniversalHorn(bodyT, heads[i])))
			assign(i+1, append(acc2, query.ExistentialHorn(bodyT, heads[i])))
		}
		assign(0, append([]query.Expr{}, acc...))
	}
}
