package learn

import (
	"math/rand"
	"testing"

	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// TestEstimateQhorn1IsUpperBound: the estimate dominates the measured
// question count on random targets.
func TestEstimateQhorn1IsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for i := 0; i < 60; i++ {
		n := 2 + rng.Intn(30)
		target := query.GenQhorn1Sized(rng, n, 4)
		_, st := Qhorn1(target.U, oracle.Target(target))
		if st.Total() > EstimateQhorn1(n) {
			t.Fatalf("n=%d: %d questions exceed estimate %d", n, st.Total(), EstimateQhorn1(n))
		}
	}
	if EstimateQhorn1(0) != 0 || EstimateQhorn1(1) != 1 {
		t.Error("degenerate estimates wrong")
	}
}

// TestEstimateRolePreservingIsUpperBound: same for the role-preserving
// learner when the shape parameters are known.
func TestEstimateRolePreservingIsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	for i := 0; i < 30; i++ {
		n := 4 + rng.Intn(9)
		heads := rng.Intn(n / 2)
		theta := 1 + rng.Intn(2)
		conjs := 1 + rng.Intn(3)
		target := query.GenRolePreserving(rng, n, query.RPOptions{
			Heads: heads, BodiesPerHead: theta, MaxBodySize: 3,
			Conjs: conjs, MaxConjSize: n / 2,
		})
		_, st := RolePreserving(target.U, oracle.Target(target))
		// k includes guarantee clauses of the universals.
		k := conjs + heads*theta
		bound := EstimateRolePreserving(n, heads, theta, k)
		if st.Total() > bound {
			t.Fatalf("n=%d heads=%d θ=%d k=%d: %d questions exceed estimate %d",
				n, heads, theta, k, st.Total(), bound)
		}
	}
	if EstimateRolePreserving(0, 1, 1, 1) != 0 {
		t.Error("degenerate estimate wrong")
	}
	if EstimateRolePreserving(4, -1, 0, 0) <= 0 {
		t.Error("clamped estimate wrong")
	}
}
