package learn

// This file is the learner half of the composable run engine
// (docs/ENGINE.md): Run composes functional options from internal/run
// into one Config, assembles the oracle wrapper stack in one place,
// and constructs the single core learner path from the result. The
// named entry points of this package (Qhorn1, Qhorn1Naive,
// Qhorn1Traced, Qhorn1Observed, Qhorn1Parallel, and the RolePreserving
// family) are thin documented wrappers over Run, pinned bit-identical
// to their historical behavior by the options-matrix differential
// tests.

import (
	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
)

// The cross-cutting run types are shared with the verifier through
// internal/run; the aliases keep this package's historical names
// valid.
type (
	// Instrumentation bundles the optional observability hooks of a
	// run; the zero value is silent. See run.Instrumentation.
	Instrumentation = run.Instrumentation
	// Step is one annotated membership question. See run.Step.
	Step = run.Step
	// Tracer observes learner questions; nil is silent. See
	// run.Tracer.
	Tracer = run.Tracer
	// Ablations disables role-preserving optimizations (E16). See
	// run.Ablations.
	Ablations = run.Ablations
)

// Run learns a query over u through the composable run engine:
// options select the algorithm, search strategy, ablations,
// instrumentation, batching and oracle wrappers, composing into one
// internal config instead of one exported function per combination.
//
//	q, st := learn.Run(u, user,
//	    run.WithAlgorithm(run.RolePreserving),
//	    run.WithParallel(8),
//	    run.WithSteps(print))
//
// The default (no options) is the serial qhorn-1 learner of §3.1.
func Run(u boolean.Universe, o oracle.Oracle, opts ...run.Option) (query.Query, run.Stats) {
	cfg := run.New(opts...)
	st := cfg.Assemble(o)
	return runConfigured(u, st.Oracle, cfg)
}

// runConfigured constructs the configured learner core over an
// already-assembled oracle stack.
func runConfigured(u boolean.Universe, o oracle.Oracle, cfg run.Config) (query.Query, run.Stats) {
	switch cfg.Algorithm {
	case run.RolePreserving:
		l := &rpLearner{u: u, o: o, ablations: cfg.Ablations, batch: cfg.Batch, in: instr{u: u, ins: cfg.Ins}}
		q, s := l.learn()
		return q, run.Stats{
			HeadQuestions:        s.HeadQuestions,
			BodyQuestions:        s.UniversalQuestions,
			ExistentialQuestions: s.ExistentialQuestions,
		}
	default:
		l := &qhorn1Learner{u: u, o: o, serial: cfg.Naive, batch: cfg.Batch, in: instr{u: u, ins: cfg.Ins}}
		q, s := l.learn()
		return q, run.Stats(s)
	}
}

// qhorn1Stats converts unified engine stats back to the qhorn-1
// breakdown the legacy entry points return.
func qhorn1Stats(s run.Stats) Qhorn1Stats { return Qhorn1Stats(s) }

// rpStats converts unified engine stats back to the role-preserving
// breakdown: the engine's body phase is the learner's universal phase.
func rpStats(s run.Stats) RPStats {
	return RPStats{
		HeadQuestions:        s.HeadQuestions,
		UniversalQuestions:   s.BodyQuestions,
		ExistentialQuestions: s.ExistentialQuestions,
	}
}
