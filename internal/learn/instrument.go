package learn

import (
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
)

// Instrumentation — historically defined here — now lives in
// internal/run, shared with the verifier so one instrumentation value
// threads through learning and verification alike; learn/options.go
// aliases it back into this package.

// Qhorn1Observed is Qhorn1 with full observability: per-question
// steps, span tracing and metrics, any subset of which may be unset.
// It is a thin wrapper over the run engine:
// learn.Run(u, o, run.WithInstrumentation(ins)).
func Qhorn1Observed(u boolean.Universe, o oracle.Oracle, ins Instrumentation) (query.Query, Qhorn1Stats) {
	q, s := Run(u, o, run.WithInstrumentation(ins))
	return q, qhorn1Stats(s)
}

// RolePreservingObserved is RolePreserving with full observability, a
// thin wrapper over the run engine.
func RolePreservingObserved(u boolean.Universe, o oracle.Oracle, ins Instrumentation) (query.Query, RPStats) {
	q, s := Run(u, o, run.WithAlgorithm(run.RolePreserving), run.WithInstrumentation(ins))
	return q, rpStats(s)
}

// instr is the per-run instrumentation state embedded in each
// learner: the current span, and the phase/purpose annotation of the
// next question. Its zero value is silent, so the exported phase
// helpers (ClassifyHeads, LearnBodies, …) need no special casing.
type instr struct {
	u   boolean.Universe
	ins Instrumentation
	cur *obs.Span
	// phase and purpose annotate the next question (set by note).
	phase, purpose string
}

// start opens the run's root span; close it with the returned func.
// When metrics are configured the phase-duration histogram
// (qhorn_phase_seconds{phase=name}) observes the span's wall time.
func (in *instr) start(name string, attrs ...obs.Attr) func() {
	root := in.ins.Spans.StartSpan(name, attrs...)
	in.cur = root
	done := in.timePhase(name)
	return func() {
		root.End()
		done()
	}
}

// begin opens a child span of the current span and makes it current;
// the returned func ends it, restores the parent and observes the
// phase-duration histogram.
func (in *instr) begin(name string, attrs ...obs.Attr) func() {
	parent := in.cur
	sp := parent.StartChild(name, attrs...)
	in.cur = sp
	done := in.timePhase(name)
	return func() {
		sp.End()
		in.cur = parent
		done()
	}
}

// timePhase returns a func observing the phase's wall time into
// qhorn_phase_seconds, or a no-op when metrics are off — the clock is
// only read when someone is listening.
func (in *instr) timePhase(name string) func() {
	if in.ins.Metrics == nil {
		return func() {}
	}
	h := in.ins.Metrics.Histogram(obs.MetricPhaseSeconds, obs.LatencyBuckets, "phase", name)
	begun := time.Now()
	return func() { h.Observe(time.Since(begun).Seconds()) }
}

// note annotates the next question(s) with their phase and purpose.
func (in *instr) note(phase, purpose string) {
	in.phase, in.purpose = phase, purpose
}

// observe reports one asked question to every configured hook.
func (in *instr) observe(s boolean.Set, answer bool) {
	if in.ins.Steps != nil {
		in.ins.Steps(Step{Phase: in.phase, Purpose: in.purpose, Question: s, Answer: answer})
	}
	if in.cur != nil {
		verdict := "non-answer"
		if answer {
			verdict = "answer"
		}
		in.cur.Event("question",
			obs.A("phase", in.phase),
			obs.A("purpose", in.purpose),
			obs.A("question", s.Format(in.u)),
			obs.A("answer", verdict))
	}
	if in.ins.Metrics != nil {
		in.ins.Metrics.Counter(obs.MetricQuestionsByPhase, "phase", in.phase).Inc()
	}
}

// visited counts one explored lattice node.
func (in *instr) visited() {
	if in.ins.Metrics != nil {
		in.ins.Metrics.Counter(obs.MetricLatticeVisited).Inc()
	}
}

// pruned counts lattice nodes skipped by dominance or violation
// pruning.
func (in *instr) pruned(n int) {
	if in.ins.Metrics != nil && n > 0 {
		in.ins.Metrics.Counter(obs.MetricLatticePruned).Add(int64(n))
	}
}
