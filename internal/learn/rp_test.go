package learn

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/verify"
)

func learnRPTarget(t *testing.T, target query.Query) (query.Query, RPStats) {
	t.Helper()
	learned, stats := RolePreserving(target.U, oracle.Target(target))
	if !learned.Equivalent(target) {
		t.Fatalf("target %s learned as %s", target, learned)
	}
	return learned, stats
}

func TestRolePreservingLearnsPaperExample(t *testing.T) {
	// The running example of §3.2.1–§3.2.2.
	u := boolean.MustUniverse(6)
	target := query.MustParse(u, "∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
	learned, _ := learnRPTarget(t, target)
	// The learned normal form must carry exactly the paper's
	// dominant conjunctions (§3.2.2) and universal expressions.
	conjs := learned.DominantConjunctions()
	want := map[string]bool{
		"100110": true, "111001": true, "011110": true,
		"110011": true, "011011": true,
	}
	if len(conjs) != len(want) {
		t.Fatalf("learned %d dominant conjunctions, want %d: %s", len(conjs), len(want), learned)
	}
	for _, c := range conjs {
		if !want[u.Format(c)] {
			t.Errorf("unexpected conjunction %s", u.Format(c))
		}
	}
	if got := len(learned.DominantUniversals()); got != 3 {
		t.Errorf("learned %d universal expressions, want 3", got)
	}
}

func TestRolePreservingLearnsFixedQueries(t *testing.T) {
	u4 := boolean.MustUniverse(4)
	u6 := boolean.MustUniverse(6)
	targets := []query.Query{
		// §2.1.4's role-preserving example.
		query.MustParse(u6, "∀x1x4 → x5 ∀x3x4 → x5 ∀x2x4 → x6 ∃x1x2x3 ∃x1x2x5x6"),
		// Empty query: everything is an answer.
		{U: u4},
		// Only existential conjunctions.
		query.MustParse(u4, "∃x1x2 ∃x3x4"),
		// Only universals.
		query.MustParse(u4, "∀x1 → x2 ∀x3 → x4"),
		// Bodyless universal plus conjunction.
		query.MustParse(u4, "∀x1 ∃x2x3"),
		// Head with three incomparable bodies (θ = 3).
		query.MustParse(u6, "∀x1x2 → x6 ∀x3x4 → x6 ∀x5 → x6"),
		// Full-width conjunction only.
		query.MustParse(u4, "∃x1x2x3x4"),
		// Overlapping bodies for different heads.
		query.MustParse(u6, "∀x1x2 → x5 ∀x2x3 → x6 ∃x4"),
	}
	for _, target := range targets {
		learnRPTarget(t, target)
	}
}

// TestRolePreservingExhaustiveTwoVars learns every semantically
// distinct role-preserving query on two variables.
func TestRolePreservingExhaustiveTwoVars(t *testing.T) {
	u := boolean.MustUniverse(2)
	for _, target := range query.AllQueries(u) {
		learnRPTarget(t, target)
	}
}

// TestRolePreservingExhaustiveThreeVars learns every semantically
// distinct role-preserving query on three variables.
func TestRolePreservingExhaustiveThreeVars(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive class on 3 variables")
	}
	u := boolean.MustUniverse(3)
	targets := query.AllQueries(u)
	t.Logf("learning %d queries", len(targets))
	for _, target := range targets {
		learnRPTarget(t, target)
	}
}

func TestRolePreservingRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 150; i++ {
		n := 3 + rng.Intn(10)
		target := query.GenRolePreserving(rng, n, query.RPOptions{
			Heads:         rng.Intn(n / 2),
			BodiesPerHead: 1 + rng.Intn(2),
			MaxBodySize:   1 + rng.Intn(3),
			Conjs:         rng.Intn(4),
			MaxConjSize:   1 + rng.Intn(n),
		})
		learnRPTarget(t, target)
	}
}

func TestRolePreservingRoundTripLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 15; i++ {
		target := query.GenRolePreserving(rng, 16, query.RPOptions{
			Heads:         3,
			BodiesPerHead: 2,
			MaxBodySize:   3,
			Conjs:         4,
			MaxConjSize:   6,
		})
		learnRPTarget(t, target)
	}
}

// TestRolePreservingSubsumesQhorn1: qhorn-1 targets are also learned
// exactly by the role-preserving learner (qhorn-1 ⊂ role-preserving).
func TestRolePreservingSubsumesQhorn1(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 50; i++ {
		n := 2 + rng.Intn(9)
		target := query.GenQhorn1(rng, n)
		learnRPTarget(t, target)
	}
}

// TestRolePreservingQuestionBound checks Theorems 3.5/3.8
// empirically: for fixed θ the question count is polynomial —
// comfortably under a crude n^(θ+1) + k·n·lg n envelope.
func TestRolePreservingQuestionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, n := range []int{8, 12, 16} {
		for _, theta := range []int{1, 2} {
			worst := 0
			for i := 0; i < 10; i++ {
				target := query.GenRolePreserving(rng, n, query.RPOptions{
					Heads: 2, BodiesPerHead: theta, MaxBodySize: 3,
					Conjs: 3, MaxConjSize: 5,
				})
				_, stats := learnRPTarget(t, target)
				if q := stats.Total(); q > worst {
					worst = q
				}
			}
			k := float64(2*theta + 3)
			nf := float64(n)
			bound := int(8*(math.Pow(nf, float64(theta)+1)) + 8*k*nf*math.Log2(nf) + 50)
			if worst > bound {
				t.Errorf("n=%d θ=%d: worst=%d exceeds envelope %d", n, theta, worst, bound)
			}
		}
	}
}

// TestFindBodiesDirect exercises the universal body search on the
// paper's Fig 5 lattice.
func TestFindBodiesDirect(t *testing.T) {
	u := boolean.MustUniverse(6)
	target := query.MustParse(u, "∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
	l := &rpLearner{u: u, o: oracle.Target(target)}
	l.phase = &l.stats.UniversalQuestions
	heads := boolean.FromVars(4, 5) // x5, x6
	bodies := l.findBodies(4, heads)
	want := map[boolean.Tuple]bool{
		boolean.FromVars(0, 3): true, // x1x4
		boolean.FromVars(2, 3): true, // x3x4
	}
	if len(bodies) != 2 {
		t.Fatalf("bodies = %v", bodies)
	}
	for _, b := range bodies {
		if !want[b] {
			t.Fatalf("unexpected body %s", b)
		}
	}
	// x6 has the single body x1x2.
	bodies = l.findBodies(5, heads)
	if len(bodies) != 1 || bodies[0] != boolean.FromVars(0, 1) {
		t.Fatalf("x6 bodies = %v", bodies)
	}
}

// TestFindBodiesBodyless: a bodyless head is detected with the
// lattice-bottom question.
func TestFindBodiesBodyless(t *testing.T) {
	u := boolean.MustUniverse(4)
	target := query.MustParse(u, "∀x1 ∃x2x3")
	l := &rpLearner{u: u, o: oracle.Target(target)}
	l.phase = &l.stats.UniversalQuestions
	bodies := l.findBodies(0, boolean.FromVars(0))
	if len(bodies) != 1 || !bodies[0].IsEmpty() {
		t.Fatalf("bodies = %v, want [∅]", bodies)
	}
}

// TestRolePreservingNoisyOracleStillTerminates: with a noisy user the
// result is unspecified but the learner must terminate.
func TestRolePreservingNoisyOracleStillTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for i := 0; i < 20; i++ {
		n := 3 + rng.Intn(5)
		target := query.GenRolePreserving(rng, n, query.RPOptions{
			Heads: 1, BodiesPerHead: 1, MaxBodySize: 2, Conjs: 2, MaxConjSize: 3,
		})
		noisy := oracle.Noisy(oracle.Target(target), 0.1, rng)
		q, _ := RolePreserving(target.U, noisy)
		if err := q.Validate(); err != nil {
			t.Fatalf("noisy learning produced invalid query: %v", err)
		}
	}
}

func TestQhorn1NoisyOracleStillTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for i := 0; i < 20; i++ {
		n := 2 + rng.Intn(8)
		target := query.GenQhorn1(rng, n)
		noisy := oracle.Noisy(oracle.Target(target), 0.1, rng)
		q, _ := Qhorn1(target.U, noisy)
		if err := q.Validate(); err != nil {
			t.Fatalf("noisy learning produced invalid query: %v", err)
		}
	}
}

// rpTarget is a quick.Generator for random role-preserving queries.
type rpTarget struct{ Q query.Query }

func (rpTarget) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 3 + rng.Intn(7)
	q := query.GenRolePreserving(rng, n, query.RPOptions{
		Heads:         rng.Intn(n / 2),
		BodiesPerHead: 1 + rng.Intn(2),
		MaxBodySize:   1 + rng.Intn(3),
		Conjs:         rng.Intn(3),
		MaxConjSize:   1 + rng.Intn(n),
	})
	return reflect.ValueOf(rpTarget{q})
}

// TestQuickLearnerRoundTrip: the exactness property stated with
// testing/quick — any generated target is recovered up to semantic
// equivalence.
func TestQuickLearnerRoundTrip(t *testing.T) {
	f := func(w rpTarget) bool {
		learned, _ := RolePreserving(w.Q.U, oracle.Target(w.Q))
		return learned.Equivalent(w.Q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickLearnerVerifierAgree: what the learner outputs always
// passes verification against the same user.
func TestQuickLearnerVerifierAgree(t *testing.T) {
	f := func(w rpTarget) bool {
		learned, _ := RolePreserving(w.Q.U, oracle.Target(w.Q))
		vs, err := verify.Build(learned)
		if err != nil {
			return false
		}
		return vs.Run(oracle.Target(w.Q)).Correct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
