package learn_test

import (
	"fmt"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

func ExampleQhorn1() {
	// Fig 2's qhorn-1 query, learned exactly from membership
	// questions.
	u := boolean.MustUniverse(6)
	target := query.MustParse(u, "∀x1x2 → x4 ∃x1x2 → x5 ∃x3 → x6")
	learned, stats := learn.Qhorn1(u, oracle.Target(target))
	fmt.Println("equivalent:", learned.Equivalent(target))
	fmt.Println("head questions:", stats.HeadQuestions)
	// Output:
	// equivalent: true
	// head questions: 6
}

func ExampleRolePreserving() {
	// The running example of §3.2, learned through the Boolean
	// lattice.
	u := boolean.MustUniverse(6)
	target := query.MustParse(u,
		"∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
	learned, _ := learn.RolePreserving(u, oracle.Target(target))
	fmt.Println("equivalent:", learned.Equivalent(target))
	for _, c := range learned.DominantConjunctions() {
		fmt.Println(u.Format(c))
	}
	// Output:
	// equivalent: true
	// 100110
	// 011110
	// 111001
	// 110011
	// 011011
}

func ExampleMatrixQuestion() {
	// The Lemma 3.3 example: D = {x2, x3, x4} over four variables.
	u := boolean.MustUniverse(4)
	q := learn.MatrixQuestion(u, boolean.FromVars(1, 2, 3))
	fmt.Println(q.Format(u))
	// Two heads sharing the body {x1, x3} make it an answer.
	twoHeads := query.MustParse(u, "∃x1x3 → x2 ∃x1x3 → x4")
	fmt.Println(twoHeads.Eval(q))
	// Output:
	// {1110, 1101, 1011}
	// true
}
