package learn

import (
	"math"
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// Edge-case structures that stress specific paths of the learners.

func TestRPClosureChains(t *testing.T) {
	// Cascading closures: x1 forces x5 forces nothing; x2x5... heads
	// never feed other bodies (role preservation), but conjunction
	// closures can involve several heads at once.
	u := boolean.MustUniverse(6)
	targets := []string{
		"∀x1 → x5 ∀x1 → x6 ∃x1x2",        // one body, two heads
		"∀x1 → x5 ∀x2 → x6 ∃x1x2",        // conjunction closing over two heads
		"∀x1 → x5 ∀x2 → x5 ∀x3 → x5 ∃x4", // θ = 3 singleton bodies
		"∀x1x2x3x4 → x5 ∃x6",             // one maximal body
		"∀x1 ∀x2 ∀x3 ∀x4 ∀x5 ∀x6",        // all bodyless heads
	}
	for _, s := range targets {
		target := query.MustParse(u, s)
		learned, _ := RolePreserving(u, oracle.Target(target))
		if !learned.Equivalent(target) {
			t.Errorf("target %s learned as %s", target, learned)
		}
	}
}

func TestRPDeepConjunction(t *testing.T) {
	// A conjunction at the bottom levels of the lattice: singleton
	// conjunctions force the descent down n−1 levels.
	u := boolean.MustUniverse(8)
	target := query.MustParse(u, "∃x1 ∃x2 ∃x3")
	learned, stats := RolePreserving(u, oracle.Target(target))
	if !learned.Equivalent(target) {
		t.Fatalf("learned %s", learned)
	}
	if stats.ExistentialQuestions == 0 {
		t.Fatal("no existential questions counted")
	}
}

func TestRPConjunctionEqualsGuarantee(t *testing.T) {
	// The target's only conjunction IS a guarantee clause: the seeded
	// optimization should handle it without extra descent.
	u := boolean.MustUniverse(5)
	target := query.MustParse(u, "∀x1x2 → x3")
	learned, _ := RolePreserving(u, oracle.Target(target))
	if !learned.Equivalent(target) {
		t.Fatalf("learned %s", learned)
	}
	// The normal form carries exactly the guarantee conjunction.
	conjs := learned.DominantConjunctions()
	if len(conjs) != 1 || conjs[0] != boolean.FromVars(0, 1, 2) {
		t.Fatalf("conjunctions = %v", conjs)
	}
}

func TestRPOverlappingBodiesAcrossHeads(t *testing.T) {
	// Bodies may overlap across heads (only per-head dominance
	// matters).
	u := boolean.MustUniverse(8)
	target := query.MustParse(u, "∀x1x2 → x7 ∀x2x3 → x8 ∀x1x3 → x7 ∃x4x5x6")
	learned, _ := RolePreserving(u, oracle.Target(target))
	if !learned.Equivalent(target) {
		t.Fatalf("learned %s", learned)
	}
}

func TestRPThetaFour(t *testing.T) {
	u := boolean.MustUniverse(9)
	target := query.MustParse(u, "∀x1x2 → x9 ∀x3x4 → x9 ∀x5x6 → x9 ∀x7x8 → x9")
	learned, stats := RolePreserving(u, oracle.Target(target))
	if !learned.Equivalent(target) {
		t.Fatalf("θ=4 target learned as %s", learned)
	}
	if got := learned.CausalDensity(); got != 4 {
		t.Fatalf("learned θ = %d", got)
	}
	t.Logf("θ=4 universal questions: %d", stats.UniversalQuestions)
}

func TestQhorn1BigSharedBody(t *testing.T) {
	// One body of 10 variables shared by 6 heads: the per-extra-head
	// cost must stay logarithmic (Lemma 3.2).
	u := boolean.MustUniverse(16)
	target := query.MustParse(u,
		"∀x1x2x3x4x5x6x7x8x9x10 → x11 ∀x1x2x3x4x5x6x7x8x9x10 → x12 "+
			"∃x1x2x3x4x5x6x7x8x9x10 → x13 ∃x1x2x3x4x5x6x7x8x9x10 → x14 "+
			"∀x1x2x3x4x5x6x7x8x9x10 → x15 ∃x1x2x3x4x5x6x7x8x9x10 → x16")
	c := oracle.Count(oracle.Target(target))
	learned, _ := Qhorn1(u, c)
	if !learned.Equivalent(target) {
		t.Fatalf("learned %s", learned)
	}
	// 16 head questions + first body O(10 lg 16) + 5 extra heads at
	// O(lg 16) each: comfortably under 16 + 10*5 + 5*5*2 = 116.
	if c.Questions > 140 {
		t.Errorf("shared-body learning took %d questions", c.Questions)
	}
}

func TestQhorn1AllPairsPartition(t *testing.T) {
	// n/2 parts of exactly two variables: the maximum number of
	// expressions for the existential phase.
	u := boolean.MustUniverse(12)
	target := query.MustParse(u,
		"∃x1 → x2 ∃x3 → x4 ∃x5 → x6 ∃x7 → x8 ∃x9 → x10 ∃x11 → x12")
	learned, _ := Qhorn1(u, oracle.Target(target))
	if !learned.Equivalent(target) {
		t.Fatalf("learned %s", learned)
	}
}

func TestQhorn1ManyHeadsOneBody(t *testing.T) {
	// GetHead must find a head pair among many existential heads.
	u := boolean.MustUniverse(10)
	target := query.MustParse(u,
		"∃x1x2 → x3 ∃x1x2 → x4 ∃x1x2 → x5 ∃x1x2 → x6 ∃x1x2 → x7 ∃x8 ∃x9 ∃x10")
	learned, _ := Qhorn1(u, oracle.Target(target))
	if !learned.Equivalent(target) {
		t.Fatalf("learned %s", learned)
	}
}

func TestLearnersLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale round trips")
	}
	rng := rand.New(rand.NewSource(131))
	// qhorn-1 at n = 64 (the bitset limit).
	target := query.GenQhorn1Sized(rng, 64, 4)
	learned, stats := Qhorn1(target.U, oracle.Target(target))
	if !learned.Equivalent(target) {
		t.Fatal("n=64 qhorn-1 round trip failed")
	}
	t.Logf("n=64 qhorn-1: %d questions", stats.Total())
	// Role-preserving at n = 24.
	rp := query.GenRolePreserving(rng, 24, query.RPOptions{
		Heads: 4, BodiesPerHead: 2, MaxBodySize: 4, Conjs: 6, MaxConjSize: 8,
	})
	learnedRP, rpStats := RolePreserving(rp.U, oracle.Target(rp))
	if !learnedRP.Equivalent(rp) {
		t.Fatal("n=24 role-preserving round trip failed")
	}
	t.Logf("n=24 role-preserving: %d questions", rpStats.Total())
}

// TestLearnersIgnoreDuplicateExpressions: syntactic duplicates in the
// target change nothing.
func TestLearnersIgnoreDuplicateExpressions(t *testing.T) {
	u := boolean.MustUniverse(4)
	dup := query.MustNew(u,
		query.UniversalHorn(boolean.FromVars(0), 2),
		query.UniversalHorn(boolean.FromVars(0), 2),
		query.Conjunction(boolean.FromVars(1, 3)),
		query.Conjunction(boolean.FromVars(1, 3)),
	)
	learned, _ := RolePreserving(u, oracle.Target(dup))
	if !learned.Equivalent(dup) {
		t.Fatalf("learned %s", learned)
	}
}

// TestSubLearnerAPI exercises the exported revision entry points.
func TestSubLearnerAPI(t *testing.T) {
	u := boolean.MustUniverse(6)
	target := query.MustParse(u, "∀x1x4 → x5 ∀x3x4 → x5 ∃x2x3")
	o := oracle.Target(target)
	heads := ClassifyHeads(u, o)
	if heads != boolean.FromVars(4) {
		t.Fatalf("heads = %v", heads)
	}
	bodies := LearnBodies(u, o, 4, heads)
	if len(bodies) != 2 {
		t.Fatalf("bodies = %v", bodies)
	}
	var universals []query.Expr
	for _, b := range bodies {
		universals = append(universals, query.UniversalHorn(b, 4))
	}
	conjs := LearnConjunctions(u, o, universals)
	rebuilt := query.Query{U: u, Exprs: universals}
	for _, c := range conjs {
		rebuilt.Exprs = append(rebuilt.Exprs, query.Conjunction(c))
	}
	if !rebuilt.Normalize().Equivalent(target) {
		t.Fatalf("rebuilt %s", rebuilt.Normalize())
	}
}

// TestBudgetEnforcesTheoremBound mechanically re-checks Theorem 3.1:
// the qhorn-1 learner must finish inside a 6·n·lg n + 6n question
// budget; the budget oracle panics otherwise.
func TestBudgetEnforcesTheoremBound(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	for i := 0; i < 20; i++ {
		n := 4 + rng.Intn(28)
		target := query.GenQhorn1Sized(rng, n, 4)
		limit := int(6*float64(n)*math.Log2(float64(n))) + 6*n
		b := oracle.WithBudget(oracle.Target(target), limit)
		learned, _ := Qhorn1(target.U, b)
		if !learned.Equivalent(target) {
			t.Fatalf("target %s learned as %s", target, learned)
		}
	}
}
