package learn

import (
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/query"
)

func TestHeadTestQuestion(t *testing.T) {
	// §3.1.1: to test x1 over three variables, ask {111, 011}.
	u := boolean.MustUniverse(3)
	got := HeadTestQuestion(u, 0)
	want := boolean.MustParseSet(u, "{111, 011}")
	if !got.Equal(want) {
		t.Errorf("HeadTestQuestion = %s, want %s", got.Format(u), want.Format(u))
	}
	// A universal head classifies it as non-answer; an existential
	// variable as answer.
	if query.MustParse(u, "∀x1 ∃x2 ∃x3").Eval(got) {
		t.Error("universal head: question should be a non-answer")
	}
	if !query.MustParse(u, "∃x1 ∃x2 ∃x3").Eval(got) {
		t.Error("existential variable: question should be an answer")
	}
	if !query.MustParse(u, "∃x2x3 → x1").Eval(got) {
		t.Error("existential head: question should be an answer")
	}
}

func TestUniversalDependenceQuestion(t *testing.T) {
	// §3.1.2 example: four variables, testing whether x1 depends on
	// {x2, x3} asks {1111, 0001}.
	u := boolean.MustUniverse(4)
	got := UniversalDependenceQuestion(u, 0, boolean.FromVars(1, 2))
	want := boolean.MustParseSet(u, "{1111, 0001}")
	if !got.Equal(want) {
		t.Errorf("question = %s, want %s", got.Format(u), want.Format(u))
	}
	// ∀x4→x1: x1's body is outside {x2,x3}: non-answer (the second
	// tuple has x4 true and x1 false).
	if query.MustParse(u, "∀x4 → x1 ∃x2 ∃x3").Eval(got) {
		t.Error("body outside V: should be non-answer")
	}
	// ∀x2→x1: body inside V: answer.
	if !query.MustParse(u, "∀x2 → x1 ∃x3 ∃x4").Eval(got) {
		t.Error("body inside V: should be answer")
	}
}

func TestExistentialIndependenceQuestion(t *testing.T) {
	u := boolean.MustUniverse(4)
	got := ExistentialIndependenceQuestion(u, boolean.FromVars(0), boolean.FromVars(2, 3))
	want := boolean.MustParseSet(u, "{0111, 1100}")
	if !got.Equal(want) {
		t.Errorf("question = %s, want %s", got.Format(u), want.Format(u))
	}
	// x1 and x3 in the same Horn expression: non-answer.
	if query.MustParse(u, "∃x3 → x1 ∃x2 ∃x4").Eval(got) {
		t.Error("dependent variables: should be non-answer")
	}
	// Heads of the same body are independent: answer.
	if !query.MustParse(u, "∃x2 → x1 ∃x2 → x3 ∃x4").Eval(got) {
		t.Error("co-heads: should be answer")
	}
}

func TestMatrixQuestion(t *testing.T) {
	// Lemma 3.3 example: D = {x2,x3,x4} gives {1011, 1101, 1110}.
	u := boolean.MustUniverse(4)
	got := MatrixQuestion(u, boolean.FromVars(1, 2, 3))
	want := boolean.MustParseSet(u, "{1011, 1101, 1110}")
	if !got.Equal(want) {
		t.Errorf("question = %s, want %s", got.Format(u), want.Format(u))
	}
	// Two heads x2, x4 with body {x1, x3}: answer.
	if !query.MustParse(u, "∃x1x3 → x2 ∃x1x3 → x4").Eval(got) {
		t.Error("two heads: should be answer")
	}
	// One head x4 with body {x1,x2,x3}: the needed tuple 1111 is
	// absent: non-answer.
	if query.MustParse(u, "∃x1x2x3 → x4").Eval(got) {
		t.Error("one head: should be non-answer")
	}
}

func TestFindOne(t *testing.T) {
	targets := map[int]bool{3: true, 7: true}
	vars := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	questions := 0
	eliminate := func(d []int) bool {
		questions++
		for _, v := range d {
			if targets[v] {
				return false
			}
		}
		return true
	}
	got, ok := findOne(vars, eliminate)
	if !ok || !targets[got] {
		t.Fatalf("findOne = %d, %v", got, ok)
	}
	if questions > 6 { // 1 + ceil(lg 9) + slack
		t.Errorf("findOne asked %d questions", questions)
	}
	if _, ok := findOne(vars, func([]int) bool { return true }); ok {
		t.Error("findOne found a target in an empty target set")
	}
	if _, ok := findOne(nil, eliminate); ok {
		t.Error("findOne on empty domain")
	}
}

func TestFindAll(t *testing.T) {
	targets := map[int]bool{0: true, 5: true, 9: true}
	vars := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	questions := 0
	eliminate := func(d []int) bool {
		questions++
		for _, v := range d {
			if targets[v] {
				return false
			}
		}
		return true
	}
	got := findAll(vars, eliminate)
	if len(got) != 3 {
		t.Fatalf("findAll = %v", got)
	}
	for _, v := range got {
		if !targets[v] {
			t.Fatalf("non-target %d returned", v)
		}
	}
	// O(|found| lg n) questions.
	if questions > 3*5+5 {
		t.Errorf("findAll asked %d questions", questions)
	}
	if got := findAll(vars, func([]int) bool { return true }); got != nil {
		t.Errorf("findAll on empty target set = %v", got)
	}
}
