package learn

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// TestAblationsPreserveExactness: disabling either optimization must
// not change what is learned, only how many questions it takes.
func TestAblationsPreserveExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	variants := []Ablations{
		{NoGuaranteeSeeds: true},
		{SerialPrune: true},
		{NoGuaranteeSeeds: true, SerialPrune: true},
	}
	for i := 0; i < 60; i++ {
		n := 3 + rng.Intn(7)
		target := query.GenRolePreserving(rng, n, query.RPOptions{
			Heads:         rng.Intn(n / 2),
			BodiesPerHead: 1 + rng.Intn(2),
			MaxBodySize:   1 + rng.Intn(3),
			Conjs:         rng.Intn(3),
			MaxConjSize:   1 + rng.Intn(n),
		})
		for _, ab := range variants {
			learned, _ := RolePreservingAblated(target.U, oracle.Target(target), ab)
			if !learned.Equivalent(target) {
				t.Fatalf("ablation %+v: target %s learned as %s", ab, target, learned)
			}
		}
	}
}

// TestAblationsCostQuestions: each optimization saves questions on a
// workload designed to exercise it.
func TestAblationsCostQuestions(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	const n = 12
	var full, noSeeds, serial int
	for i := 0; i < 15; i++ {
		target := query.GenRolePreserving(rng, n, query.RPOptions{
			Heads: 2, BodiesPerHead: 2, MaxBodySize: 3, Conjs: 4, MaxConjSize: 5,
		})
		o := oracle.Target(target)
		_, st := RolePreserving(target.U, o)
		full += st.Total()
		_, st = RolePreservingAblated(target.U, o, Ablations{NoGuaranteeSeeds: true})
		noSeeds += st.Total()
		_, st = RolePreservingAblated(target.U, o, Ablations{SerialPrune: true})
		serial += st.Total()
	}
	if noSeeds <= full {
		t.Errorf("guarantee seeding saves nothing: full=%d noSeeds=%d", full, noSeeds)
	}
	if serial <= full {
		t.Errorf("binary pruning saves nothing: full=%d serial=%d", full, serial)
	}
}

// TestAblationExhaustiveTwoVars: the ablated learner is exact on the
// full two-variable class.
func TestAblationExhaustiveTwoVars(t *testing.T) {
	u := mustU(t, 2)
	for _, target := range query.AllQueries(u) {
		learned, _ := RolePreservingAblated(u, oracle.Target(target),
			Ablations{NoGuaranteeSeeds: true, SerialPrune: true})
		if !learned.Equivalent(target) {
			t.Fatalf("target %s learned as %s", target, learned)
		}
	}
}

func mustU(t *testing.T, n int) boolean.Universe {
	t.Helper()
	return boolean.MustUniverse(n)
}
