// Package learn implements the paper's two polynomial-question exact
// learning algorithms:
//
//   - Qhorn1 (§3.1): learns qhorn-1 queries with O(n lg n) membership
//     questions using universal-dependence questions, existential-
//     independence questions and independence-matrix questions
//     (Algorithms 1–5).
//   - RolePreserving (§3.2): learns role-preserving qhorn queries
//     with O(n^(θ+1)) questions for the universal Horn expressions
//     (Boolean-lattice body search, Algorithm 6 plus multi-root
//     search) and O(k·n·lg n) questions for the existential
//     conjunctions (lattice descent with pruning, Algorithms 7–8).
//
// Both learners are exact: against an oracle backed by a target query
// in the class, the learned query is semantically equivalent to the
// target. Question counts are exposed through per-phase statistics.
package learn

import (
	"qhorn/internal/boolean"
)

// Questions in this file are the Boolean-domain membership questions
// of §3.1, constructed over a universe u of n variables.

// HeadTestQuestion returns the question that decides whether variable
// x is a universal head variable (§3.1.1): the object {1^n, 1^n−x}.
// If the object is a non-answer, x is a universal head.
func HeadTestQuestion(u boolean.Universe, x int) boolean.Set {
	all := u.All()
	return boolean.NewSet(all, all.Without(x))
}

// UniversalDependenceQuestion returns the question of Definition 3.1
// on head h and variable set V: the object {1^n, t} where t has h and
// all of V false and every other variable true. If the object is an
// answer, h depends on some variable in V; if it is a non-answer, h
// has no body variable in V.
func UniversalDependenceQuestion(u boolean.Universe, h int, v boolean.Tuple) boolean.Set {
	all := u.All()
	return boolean.NewSet(all, all.Minus(v).Without(h))
}

// ExistentialIndependenceQuestion returns the question of
// Definition 3.2 on disjoint variable sets X and Y: the object
// {1^n−X, 1^n−Y}. If the object is an answer, X and Y are independent
// (no existential Horn expression relates them); if it is a
// non-answer, some variable of X depends on some variable of Y.
func ExistentialIndependenceQuestion(u boolean.Universe, x, y boolean.Tuple) boolean.Set {
	all := u.All()
	return boolean.NewSet(all.Minus(x), all.Minus(y))
}

// MatrixQuestion returns the independence-matrix question of
// Definition 3.3 on the variable set D: one tuple per variable d ∈ D
// with only d false. The question is an answer iff D contains at
// least two existential head variables (Lemma 3.3).
func MatrixQuestion(u boolean.Universe, d boolean.Tuple) boolean.Set {
	all := u.All()
	tuples := make([]boolean.Tuple, 0, d.Count())
	for _, v := range d.Vars() {
		tuples = append(tuples, all.Without(v))
	}
	return boolean.NewSet(tuples...)
}
