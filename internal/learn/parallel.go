package learn

// This file exposes the batch-mode learners of the parallel question
// engine (docs/PARALLELISM.md). The parallel variants ask exactly the
// questions — and report exactly the per-phase counts — of their
// serial counterparts; they differ only in surfacing independent
// question sets through oracle.AskAll and oracle.Drive so that a
// BatchOracle (e.g. oracle.Parallel around a simulated user) answers
// them concurrently. With a plain serial Oracle the batch mode
// degrades to asking the same questions one at a time.
//
// What is batched, per learner:
//
//   - qhorn-1 (§3.1): the n head questions of phase 1 form one batch;
//     each FindAll level of the body and existential searches
//     (Algorithm 3) forms one batch; the co-head separation questions
//     of Algorithm 5 form one batch. The adaptive binary searches
//     (Find, GetHead) stay serial — each question depends on the
//     previous answer.
//   - role-preserving (§3.2): the n head questions form one batch;
//     the per-head lattice searches of §3.2.1 run as concurrent
//     question streams through oracle.Drive, one batch per round.
//     The conjunction descent of §3.2.2 stays serial: each question's
//     base embeds the tuples discovered and pruned so far, so
//     questions are sequentially dependent by construction.

import (
	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
)

// Qhorn1Parallel is Qhorn1 with the independent question sets issued
// as batches. Equivalent output and identical question counts to
// Qhorn1; wall time drops when o answers batches concurrently. It is
// a thin wrapper over the run engine — learn.Run(u, o,
// run.WithBatch()) — and does not wrap a pool itself: the caller
// brings the BatchOracle (or use run.WithParallel(n) to have the
// engine assemble one).
func Qhorn1Parallel(u boolean.Universe, o oracle.Oracle) (query.Query, Qhorn1Stats) {
	q, s := Run(u, o, run.WithBatch())
	return q, qhorn1Stats(s)
}

// Qhorn1ParallelObserved is Qhorn1Parallel with observability. All
// accounting — spans, steps, metrics — happens in the calling
// goroutine, in deterministic question order.
func Qhorn1ParallelObserved(u boolean.Universe, o oracle.Oracle, ins Instrumentation) (query.Query, Qhorn1Stats) {
	q, s := Run(u, o, run.WithBatch(), run.WithInstrumentation(ins))
	return q, qhorn1Stats(s)
}

// RolePreservingParallel is RolePreserving with the independent
// question sets issued as batches and the per-head lattice searches
// run as concurrent question streams. Equivalent output and identical
// question counts to RolePreserving. Thin wrapper over the run
// engine, like Qhorn1Parallel.
func RolePreservingParallel(u boolean.Universe, o oracle.Oracle) (query.Query, RPStats) {
	q, s := Run(u, o, run.WithAlgorithm(run.RolePreserving), run.WithBatch())
	return q, rpStats(s)
}

// RolePreservingParallelObserved is RolePreservingParallel with
// observability. The per-head "lattice-search" spans are omitted —
// the searches overlap in time — but every question event, step, and
// metric is emitted from the calling goroutine in deterministic
// order.
func RolePreservingParallelObserved(u boolean.Universe, o oracle.Oracle, ins Instrumentation) (query.Query, RPStats) {
	q, s := Run(u, o, run.WithAlgorithm(run.RolePreserving), run.WithBatch(), run.WithInstrumentation(ins))
	return q, rpStats(s)
}
