package learn_test

import (
	"testing"

	"qhorn/internal/difffuzz"
)

// TestDifferentialSmoke cross-validates both learners against the
// verifier, brute force, and ground-truth semantics through the
// differential engine — a short deterministic slice of what
// cmd/qhornfuzz and the native fuzz targets run at scale.
func TestDifferentialSmoke(t *testing.T) {
	for _, class := range []difffuzz.Class{difffuzz.ClassQhorn1, difffuzz.ClassRP} {
		rep := difffuzz.Run(difffuzz.Config{Seed: 271, Runs: 40, Class: class})
		for _, d := range rep.Disagreements {
			t.Errorf("%s: %s", class, d)
		}
		if rep.CasesByClass[class] != 40 {
			t.Errorf("%s: ran %d cases, want 40", class, rep.CasesByClass[class])
		}
	}
}
