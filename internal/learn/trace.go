package learn

// Step and Tracer — the per-question annotation types this file
// historically defined — now live in internal/run, shared with the
// verifier; learn/options.go aliases them back into this package. The
// traced entry points below are thin wrappers over the run engine:
// learn.Run(u, o, run.WithSteps(trace), ...).

import (
	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
)

// Qhorn1Traced is Qhorn1 with a tracer receiving every question
// annotated with its phase and purpose.
func Qhorn1Traced(u boolean.Universe, o oracle.Oracle, trace Tracer) (query.Query, Qhorn1Stats) {
	q, s := Run(u, o, run.WithSteps(trace))
	return q, qhorn1Stats(s)
}

// RolePreservingTraced is RolePreserving with a tracer receiving
// every question annotated with its phase and purpose.
func RolePreservingTraced(u boolean.Universe, o oracle.Oracle, trace Tracer) (query.Query, RPStats) {
	q, s := Run(u, o, run.WithAlgorithm(run.RolePreserving), run.WithSteps(trace))
	return q, rpStats(s)
}
