package learn

import (
	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// Step describes one membership question at the moment it is asked:
// which phase of the algorithm produced it, what it is for in plain
// words, and how the user answered. Interactive interfaces show the
// purpose next to the example so the user understands why she is
// being asked — the "human-like interaction" the paper's introduction
// motivates.
type Step struct {
	// Phase is the algorithm phase: "heads", "bodies", "existential".
	Phase string
	// Purpose explains the question, e.g. "is x3 a universal head
	// variable?".
	Purpose string
	// Question is the membership question asked.
	Question boolean.Set
	// Answer is the user's response.
	Answer bool
}

// Tracer observes learner questions as they are asked. A nil Tracer
// is silent.
type Tracer func(Step)

// tracingOracle wraps an oracle so every question is reported to the
// tracer with the purpose the learner set beforehand.
type tracingOracle struct {
	inner   oracle.Oracle
	trace   Tracer
	phase   string
	purpose string
}

func (t *tracingOracle) Ask(s boolean.Set) bool {
	a := t.inner.Ask(s)
	if t.trace != nil {
		t.trace(Step{Phase: t.phase, Purpose: t.purpose, Question: s, Answer: a})
	}
	return a
}

// explain sets the annotation for the next question(s).
func (t *tracingOracle) explain(phase, purpose string) {
	t.phase, t.purpose = phase, purpose
}

// Qhorn1Traced is Qhorn1 with a tracer receiving every question
// annotated with its phase and purpose.
func Qhorn1Traced(u boolean.Universe, o oracle.Oracle, trace Tracer) (query.Query, Qhorn1Stats) {
	to := &tracingOracle{inner: o, trace: trace}
	l := &qhorn1Learner{u: u, o: to, explain: to.explain}
	return l.learn()
}

// RolePreservingTraced is RolePreserving with a tracer receiving
// every question annotated with its phase and purpose.
func RolePreservingTraced(u boolean.Universe, o oracle.Oracle, trace Tracer) (query.Query, RPStats) {
	to := &tracingOracle{inner: o, trace: trace}
	l := &rpLearner{u: u, o: to, explain: to.explain}
	return l.learn()
}
