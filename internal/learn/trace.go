package learn

import (
	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// Step describes one membership question at the moment it is asked:
// which phase of the algorithm produced it, what it is for in plain
// words, and how the user answered. Interactive interfaces show the
// purpose next to the example so the user understands why she is
// being asked — the "human-like interaction" the paper's introduction
// motivates.
type Step struct {
	// Phase is the algorithm phase: "heads", "bodies", "existential".
	Phase string
	// Purpose explains the question, e.g. "is x3 a universal head
	// variable?".
	Purpose string
	// Question is the membership question asked.
	Question boolean.Set
	// Answer is the user's response.
	Answer bool
}

// Tracer observes learner questions as they are asked. A nil Tracer
// is silent. Tracer is the step-level view; Instrumentation carries
// it alongside span tracing and metrics.
type Tracer func(Step)

// Qhorn1Traced is Qhorn1 with a tracer receiving every question
// annotated with its phase and purpose.
func Qhorn1Traced(u boolean.Universe, o oracle.Oracle, trace Tracer) (query.Query, Qhorn1Stats) {
	return Qhorn1Observed(u, o, Instrumentation{Steps: trace})
}

// RolePreservingTraced is RolePreserving with a tracer receiving
// every question annotated with its phase and purpose.
func RolePreservingTraced(u boolean.Universe, o oracle.Oracle, trace Tracer) (query.Query, RPStats) {
	return RolePreservingObserved(u, o, Instrumentation{Steps: trace})
}
