package learn

// The options-matrix differential test: a seeded corpus of queries
// from both classes runs through every meaningful engine option
// combination, and every combination — and every legacy named entry
// point — must reproduce the plain serial run: identical question
// transcripts (as seen by the user's oracle) and identical per-phase
// stats. This is the test that pins the thin wrappers of trace.go,
// naive.go, instrument.go and parallel.go bit-identical to the engine
// (docs/ENGINE.md).

import (
	"fmt"
	"sort"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
)

// matrixCorpus is the seeded corpus: hand-picked shapes exercising
// every phase (heads, bodies, existentials, guarantee clauses) on two
// universe sizes.
func matrixCorpus(t *testing.T, alg run.Algorithm) []query.Query {
	t.Helper()
	u4 := boolean.MustUniverse(4)
	u6 := boolean.MustUniverse(6)
	qhorn1 := []query.Query{
		query.MustParse(u4, "∀x1 → x2"),
		query.MustParse(u4, "∀x1x3 → x2 ∃x4"),
		query.MustParse(u4, "∃x1x2 ∃x3"),
		query.MustParse(u6, "∀x1x2 → x3 ∀x4 → x5 ∃x6"),
		query.MustParse(u6, "∃x1x2x3 → x4"),
	}
	rp := []query.Query{
		query.MustParse(u4, "∀x1 → x2 ∀x3 → x2"),
		query.MustParse(u4, "∀x1 → x2 ∃x3x4"),
		query.MustParse(u4, "∃x1 ∃x2x3"),
		query.MustParse(u6, "∀x1 → x2 ∀x1 → x4 ∃x5"),
		query.MustParse(u6, "∀x2 → x1 ∀x3 → x1 ∃x2x5"),
	}
	if alg == run.RolePreserving {
		return rp
	}
	return qhorn1
}

// transcriptOf renders a user-facing transcript comparably.
func transcriptOf(rec *oracle.Transcript) []string {
	var out []string
	for _, e := range rec.Copy() {
		out = append(out, fmt.Sprintf("%s=%v", e.Question.Key(), e.Answer))
	}
	return out
}

// dedupFirst removes repeated questions from a transcript, keeping the
// first occurrence — what a memoized run's user sees of the serial
// stream.
func dedupFirst(tr []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range tr {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// sameTranscript compares two transcripts, optionally up to order —
// batched runs interleave independent question streams into waves, so
// the question multiset is their invariant (docs/PARALLELISM.md).
func sameTranscript(t *testing.T, label string, ref, got []string, sorted bool) {
	t.Helper()
	if sorted {
		ref, got = append([]string(nil), ref...), append([]string(nil), got...)
		sort.Strings(ref)
		sort.Strings(got)
	}
	if len(ref) != len(got) {
		t.Errorf("%s: %d questions vs %d serial", label, len(got), len(ref))
		return
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Errorf("%s: question %d is %s, serial asked %s", label, i, got[i], ref[i])
			return
		}
	}
}

// TestEngineOptionsMatrix: every option combination reproduces the
// plain serial engine run on the corpus.
func TestEngineOptionsMatrix(t *testing.T) {
	for _, alg := range []run.Algorithm{run.Qhorn1, run.RolePreserving} {
		for qi, h := range matrixCorpus(t, alg) {
			collect := func(extra ...run.Option) ([]string, run.Stats, query.Query) {
				rec := oracle.Record(oracle.Target(h))
				opts := append([]run.Option{run.WithAlgorithm(alg)}, extra...)
				q, st := Run(h.U, rec, opts...)
				return transcriptOf(rec), st, q
			}
			refTr, refStats, refQ := collect()
			combos := []struct {
				name   string
				opts   []run.Option
				sorted bool
				dedup  bool // memo: the user sees the serial stream deduplicated
			}{
				{name: "batch", opts: []run.Option{run.WithBatch()}, sorted: true},
				{name: "parallel-2", opts: []run.Option{run.WithParallel(2)}, sorted: true},
				{name: "parallel-8", opts: []run.Option{run.WithParallel(8)}, sorted: true},
				{name: "budget", opts: []run.Option{run.WithBudget(refStats.Total())}},
				{name: "memo", opts: []run.Option{run.WithMemo()}, dedup: true},
				{name: "counter", opts: []run.Option{run.WithCounter()}},
				{name: "transcript", opts: []run.Option{run.WithTranscript()}},
				{name: "steps", opts: []run.Option{run.WithSteps(func(run.Step) {})}},
				{name: "observed", opts: []run.Option{run.WithInstrumentation(run.Instrumentation{
					Spans:   obs.NewTracer(obs.NewTreeSink()),
					Metrics: obs.NewRegistry(),
				})}},
			}
			for _, combo := range combos {
				label := fmt.Sprintf("%s corpus[%d] %s", alg, qi, combo.name)
				tr, st, q := collect(combo.opts...)
				if st != refStats {
					t.Errorf("%s: stats %+v differ from serial %+v", label, st, refStats)
				}
				if !q.Equivalent(refQ) {
					t.Errorf("%s: learned %s, serial learned %s", label, q, refQ)
				}
				ref := refTr
				if combo.dedup {
					ref = dedupFirst(ref)
				}
				sameTranscript(t, label, ref, tr, combo.sorted)
			}
		}
	}
}

// TestLegacyEntryPointsPinned: every named entry point is bit-identical
// — same user-facing transcript, same stats — to the engine run with
// the Config its documentation promises.
func TestLegacyEntryPointsPinned(t *testing.T) {
	type variant struct {
		name   string
		opts   []run.Option // the engine side
		legacy func(u boolean.Universe, o oracle.Oracle) (query.Query, run.Stats)
		sorted bool
	}
	noTrace := func(Step) {}
	silent := Instrumentation{}
	qhorn1Variants := []variant{
		{"Qhorn1", nil, func(u boolean.Universe, o oracle.Oracle) (query.Query, run.Stats) {
			q, s := Qhorn1(u, o)
			return q, run.Stats(s)
		}, false},
		{"Qhorn1Naive", []run.Option{run.WithNaiveSearch()}, func(u boolean.Universe, o oracle.Oracle) (query.Query, run.Stats) {
			q, s := Qhorn1Naive(u, o)
			return q, run.Stats(s)
		}, false},
		{"Qhorn1Traced", []run.Option{run.WithSteps(noTrace)}, func(u boolean.Universe, o oracle.Oracle) (query.Query, run.Stats) {
			q, s := Qhorn1Traced(u, o, noTrace)
			return q, run.Stats(s)
		}, false},
		{"Qhorn1Observed", nil, func(u boolean.Universe, o oracle.Oracle) (query.Query, run.Stats) {
			q, s := Qhorn1Observed(u, o, silent)
			return q, run.Stats(s)
		}, false},
		{"Qhorn1Parallel", []run.Option{run.WithBatch()}, func(u boolean.Universe, o oracle.Oracle) (query.Query, run.Stats) {
			q, s := Qhorn1Parallel(u, o)
			return q, run.Stats(s)
		}, false},
	}
	toStats := func(s RPStats) run.Stats {
		return run.Stats{HeadQuestions: s.HeadQuestions, BodyQuestions: s.UniversalQuestions, ExistentialQuestions: s.ExistentialQuestions}
	}
	ab := Ablations{NoGuaranteeSeeds: true, SerialPrune: true}
	rpVariants := []variant{
		{"RolePreserving", nil, func(u boolean.Universe, o oracle.Oracle) (query.Query, run.Stats) {
			q, s := RolePreserving(u, o)
			return q, toStats(s)
		}, false},
		{"RolePreservingAblated", []run.Option{run.WithAblations(ab)}, func(u boolean.Universe, o oracle.Oracle) (query.Query, run.Stats) {
			q, s := RolePreservingAblated(u, o, ab)
			return q, toStats(s)
		}, false},
		{"RolePreservingTraced", []run.Option{run.WithSteps(noTrace)}, func(u boolean.Universe, o oracle.Oracle) (query.Query, run.Stats) {
			q, s := RolePreservingTraced(u, o, noTrace)
			return q, toStats(s)
		}, false},
		{"RolePreservingObserved", nil, func(u boolean.Universe, o oracle.Oracle) (query.Query, run.Stats) {
			q, s := RolePreservingObserved(u, o, silent)
			return q, toStats(s)
		}, false},
		{"RolePreservingParallel", []run.Option{run.WithBatch()}, func(u boolean.Universe, o oracle.Oracle) (query.Query, run.Stats) {
			q, s := RolePreservingParallel(u, o)
			return q, toStats(s)
		}, false},
	}
	for _, alg := range []run.Algorithm{run.Qhorn1, run.RolePreserving} {
		variants := qhorn1Variants
		if alg == run.RolePreserving {
			variants = rpVariants
		}
		for qi, h := range matrixCorpus(t, alg) {
			for _, v := range variants {
				label := fmt.Sprintf("%s corpus[%d] %s", alg, qi, v.name)
				engineRec := oracle.Record(oracle.Target(h))
				eq, est := Run(h.U, engineRec, append([]run.Option{run.WithAlgorithm(alg)}, v.opts...)...)
				legacyRec := oracle.Record(oracle.Target(h))
				lq, lst := v.legacy(h.U, legacyRec)
				if lst != est {
					t.Errorf("%s: stats %+v differ from engine %+v", label, lst, est)
				}
				if !lq.Equivalent(eq) {
					t.Errorf("%s: learned %s, engine learned %s", label, lq, eq)
				}
				sameTranscript(t, label, transcriptOf(engineRec), transcriptOf(legacyRec), v.sorted)
			}
		}
	}
}

// TestNaiveMatchesEngineOption: the naive baseline through the engine
// asks the same questions as the dedicated entry point even when the
// batch structure is layered on top.
func TestNaiveMatchesEngineOption(t *testing.T) {
	u := boolean.MustUniverse(4)
	h := query.MustParse(u, "∀x1x3 → x2 ∃x4")
	rec1 := oracle.Record(oracle.Target(h))
	q1, s1 := Qhorn1Naive(u, rec1)
	rec2 := oracle.Record(oracle.Target(h))
	q2, s2 := Run(u, rec2, run.WithNaiveSearch())
	if Qhorn1Stats(s2) != s1 {
		t.Errorf("stats %+v vs %+v", s2, s1)
	}
	if !q1.Equivalent(q2) {
		t.Errorf("learned %s vs %s", q1, q2)
	}
	sameTranscript(t, "naive", transcriptOf(rec1), transcriptOf(rec2), false)
}
