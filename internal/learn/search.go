package learn

// This file implements the binary-search subroutines of §3.1.2
// (Algorithms 2 and 3). Both operate on a slice of candidate
// variables and an elimination predicate backed by a membership
// question: eliminate(D) must report, with one question, whether D
// can be discarded because it contains no target variable.

// findOne returns one target variable from vars, or ok=false if the
// whole set is eliminated by a single question (Algorithm 2, "Find").
// It asks O(lg |vars|) questions when a target exists.
func findOne(vars []int, eliminate func([]int) bool) (int, bool) {
	if len(vars) == 0 {
		return 0, false
	}
	if eliminate(vars) {
		return 0, false
	}
	return narrow(vars, eliminate), true
}

// narrow binary-searches a set known to contain at least one target
// variable down to a single target variable.
func narrow(vars []int, eliminate func([]int) bool) int {
	for len(vars) > 1 {
		half := vars[:len(vars)/2]
		if eliminate(half) {
			vars = vars[len(vars)/2:]
		} else {
			vars = half
		}
	}
	return vars[0]
}

// findAll returns every target variable in vars (Algorithm 3,
// "FindAll"). Subtrees without targets are eliminated with one
// question each, so the total is O(|found|·lg|vars|) questions plus
// one.
func findAll(vars []int, eliminate func([]int) bool) []int {
	if len(vars) == 0 {
		return nil
	}
	if eliminate(vars) {
		return nil
	}
	if len(vars) == 1 {
		return []int{vars[0]}
	}
	mid := len(vars) / 2
	out := findAll(vars[:mid], eliminate)
	return append(out, findAll(vars[mid:], eliminate)...)
}
