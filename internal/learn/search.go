package learn

import "sort"

// This file implements the binary-search subroutines of §3.1.2
// (Algorithms 2 and 3). Both operate on a slice of candidate
// variables and an elimination predicate backed by a membership
// question: eliminate(D) must report, with one question, whether D
// can be discarded because it contains no target variable.

// findOne returns one target variable from vars, or ok=false if the
// whole set is eliminated by a single question (Algorithm 2, "Find").
// It asks O(lg |vars|) questions when a target exists.
func findOne(vars []int, eliminate func([]int) bool) (int, bool) {
	if len(vars) == 0 {
		return 0, false
	}
	if eliminate(vars) {
		return 0, false
	}
	return narrow(vars, eliminate), true
}

// narrow binary-searches a set known to contain at least one target
// variable down to a single target variable.
func narrow(vars []int, eliminate func([]int) bool) int {
	for len(vars) > 1 {
		half := vars[:len(vars)/2]
		if eliminate(half) {
			vars = vars[len(vars)/2:]
		} else {
			vars = half
		}
	}
	return vars[0]
}

// findAll returns every target variable in vars (Algorithm 3,
// "FindAll"). Subtrees without targets are eliminated with one
// question each, so the total is O(|found|·lg|vars|) questions plus
// one.
func findAll(vars []int, eliminate func([]int) bool) []int {
	if len(vars) == 0 {
		return nil
	}
	if eliminate(vars) {
		return nil
	}
	if len(vars) == 1 {
		return []int{vars[0]}
	}
	mid := len(vars) / 2
	out := findAll(vars[:mid], eliminate)
	return append(out, findAll(vars[mid:], eliminate)...)
}

// findAllBatched is findAll with the recursion unrolled level by
// level: the elimination questions of one recursion depth are
// independent of each other, so each level is issued as a single
// batch that a BatchOracle answers concurrently. It visits exactly
// the segments the recursive findAll visits — same splits, same
// questions, same total count — and returns the targets in the same
// left-to-right order.
func findAllBatched(vars []int, eliminateBatch func([][]int) []bool) []int {
	if len(vars) == 0 {
		return nil
	}
	type segment struct {
		vars []int
		pos  int // start offset in the original slice, for output order
	}
	type hit struct{ v, pos int }
	level := []segment{{vars, 0}}
	var found []hit
	for len(level) > 0 {
		batch := make([][]int, len(level))
		for i, s := range level {
			batch[i] = s.vars
		}
		eliminated := eliminateBatch(batch)
		var next []segment
		for i, s := range level {
			if eliminated[i] {
				continue
			}
			if len(s.vars) == 1 {
				found = append(found, hit{s.vars[0], s.pos})
				continue
			}
			mid := len(s.vars) / 2
			next = append(next,
				segment{s.vars[:mid], s.pos},
				segment{s.vars[mid:], s.pos + mid})
		}
		level = next
	}
	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	out := make([]int, len(found))
	for i, h := range found {
		out[i] = h.v
	}
	return out
}
