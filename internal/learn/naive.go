package learn

import (
	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
)

// Qhorn1Naive learns a qhorn-1 query with the straightforward serial
// strategy the paper uses as the baseline in §3.1.2: instead of
// binary-searching for body variables and dependents, it tests each
// candidate variable with its own membership question, using O(n²)
// questions in total. It exists so the experiments can reproduce the
// paper's comparison between the serial and the O(n lg n) strategies.
//
// Qhorn1Naive is a thin wrapper over the run engine:
// learn.Run(u, o, run.WithNaiveSearch()).
func Qhorn1Naive(u boolean.Universe, o oracle.Oracle) (query.Query, Qhorn1Stats) {
	q, s := Run(u, o, run.WithNaiveSearch())
	return q, qhorn1Stats(s)
}

// serialFindOne scans candidates one at a time, asking one question
// per variable.
func serialFindOne(vars []int, eliminate func([]int) bool) (int, bool) {
	for _, v := range vars {
		if !eliminate([]int{v}) {
			return v, true
		}
	}
	return 0, false
}

// serialFindAll tests every candidate individually.
func serialFindAll(vars []int, eliminate func([]int) bool) []int {
	var out []int
	for _, v := range vars {
		if !eliminate([]int{v}) {
			out = append(out, v)
		}
	}
	return out
}
