package learn

import (
	"strings"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

func TestQhorn1TracedAnnotatesEveryQuestion(t *testing.T) {
	u := boolean.MustUniverse(6)
	target := query.MustParse(u, "∀x1x2 → x4 ∃x1x2 → x5 ∃x3 → x6")
	var steps []Step
	learned, stats := Qhorn1Traced(u, oracle.Target(target), func(s Step) {
		steps = append(steps, s)
	})
	if !learned.Equivalent(target) {
		t.Fatalf("learned %s", learned)
	}
	if len(steps) != stats.Total() {
		t.Fatalf("traced %d steps, stats say %d questions", len(steps), stats.Total())
	}
	phases := map[string]int{}
	for _, s := range steps {
		if s.Purpose == "" || s.Phase == "" {
			t.Fatalf("unannotated step: %+v", s)
		}
		if s.Question.IsEmpty() {
			t.Fatal("empty question traced")
		}
		phases[s.Phase]++
	}
	if phases["heads"] != stats.HeadQuestions {
		t.Errorf("head steps = %d, stats = %d", phases["heads"], stats.HeadQuestions)
	}
	if phases["bodies"] != stats.BodyQuestions {
		t.Errorf("body steps = %d, stats = %d", phases["bodies"], stats.BodyQuestions)
	}
	if phases["existential"] != stats.ExistentialQuestions {
		t.Errorf("existential steps = %d, stats = %d", phases["existential"], stats.ExistentialQuestions)
	}
	// Purposes are readable sentences mentioning variables.
	found := false
	for _, s := range steps {
		if strings.Contains(s.Purpose, "universal head variable") {
			found = true
		}
	}
	if !found {
		t.Error("no head-test purpose traced")
	}
}

func TestRolePreservingTracedAnnotatesEveryQuestion(t *testing.T) {
	u := boolean.MustUniverse(6)
	target := query.MustParse(u, "∀x1x4 → x5 ∃x2x3")
	var steps []Step
	learned, stats := RolePreservingTraced(u, oracle.Target(target), func(s Step) {
		steps = append(steps, s)
	})
	if !learned.Equivalent(target) {
		t.Fatalf("learned %s", learned)
	}
	if len(steps) != stats.Total() {
		t.Fatalf("traced %d steps, stats say %d", len(steps), stats.Total())
	}
	wantPhases := map[string]bool{"heads": false, "bodies": false, "existential": false}
	for _, s := range steps {
		if s.Phase != "" {
			wantPhases[s.Phase] = true
		}
	}
	for ph, seen := range wantPhases {
		if !seen {
			t.Errorf("phase %q never traced", ph)
		}
	}
}

func TestTracedNilTracerIsSilent(t *testing.T) {
	u := boolean.MustUniverse(3)
	target := query.MustParse(u, "∀x1 ∃x2x3")
	learned, _ := Qhorn1Traced(u, oracle.Target(target), nil)
	if !learned.Equivalent(target) {
		t.Fatal("nil tracer broke learning")
	}
	learned, _ = RolePreservingTraced(u, oracle.Target(target), nil)
	if !learned.Equivalent(target) {
		t.Fatal("nil tracer broke RP learning")
	}
}

func TestVarNames(t *testing.T) {
	if got := varNames([]int{0, 2, 5}); got != "x1,x3,x6" {
		t.Errorf("varNames = %q", got)
	}
	if got := varNames(nil); got != "" {
		t.Errorf("varNames(nil) = %q", got)
	}
}
