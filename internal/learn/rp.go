package learn

import (
	"fmt"
	"sort"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
)

// RPStats reports the per-phase question counts of the role-
// preserving learner: O(n) head questions, O(n^(θ+1)) universal
// body-search questions (Theorem 3.5), and O(k·n·lg n) existential
// lattice questions (Theorem 3.8).
type RPStats struct {
	HeadQuestions        int
	UniversalQuestions   int
	ExistentialQuestions int
}

// Total returns the total number of membership questions asked.
func (s RPStats) Total() int {
	return s.HeadQuestions + s.UniversalQuestions + s.ExistentialQuestions
}

// RolePreserving learns a role-preserving qhorn query over u exactly
// (§3.2), returning the query in normal form. Against an oracle
// backed by a target query in the class, the result is semantically
// equivalent to the target. It is a thin wrapper over the run engine:
// learn.Run(u, o, run.WithAlgorithm(run.RolePreserving)).
func RolePreserving(u boolean.Universe, o oracle.Oracle) (query.Query, RPStats) {
	q, s := Run(u, o, run.WithAlgorithm(run.RolePreserving))
	return q, rpStats(s)
}

// Ablations — historically defined here — now lives in internal/run
// (see run.Ablations); learn/options.go aliases it back into this
// package.

// RolePreservingAblated is RolePreserving with selected optimizations
// disabled: learn.Run(u, o, run.WithAlgorithm(run.RolePreserving),
// run.WithAblations(ab)).
func RolePreservingAblated(u boolean.Universe, o oracle.Oracle, ab Ablations) (query.Query, RPStats) {
	q, s := Run(u, o, run.WithAlgorithm(run.RolePreserving), run.WithAblations(ab))
	return q, rpStats(s)
}

type rpLearner struct {
	u         boolean.Universe
	o         oracle.Oracle
	stats     RPStats
	phase     *int
	ablations Ablations
	// batch surfaces independent question sets as oracle.AskAll
	// batches (RolePreservingParallel): the n head questions as one
	// batch, and the per-head lattice searches of §3.2.1 — which
	// depend only on the head set, not on each other — interleaved
	// through oracle.Drive so each round's questions form one batch.
	// Questions and per-phase counts are identical to the serial run.
	batch bool
	// in carries the observability hooks (see
	// RolePreservingObserved); its zero value is silent.
	in instr
}

// note annotates the next question with its phase and purpose.
func (l *rpLearner) note(phase, purpose string) {
	l.in.note(phase, purpose)
}

// askBatch asks one batch of independent questions through
// oracle.AskAll and runs the serial accounting per question in
// question order (see qhorn1Learner.askBatch).
func (l *rpLearner) askBatch(qs []boolean.Set, note func(i int) (phase, purpose string)) []bool {
	answers := oracle.AskAll(l.o, qs)
	for i, a := range answers {
		*l.phase++
		l.in.note(note(i))
		l.in.observe(qs[i], a)
	}
	return answers
}

func (l *rpLearner) ask(s boolean.Set) bool {
	*l.phase++
	a := l.o.Ask(s)
	l.in.observe(s, a)
	return a
}

func (l *rpLearner) learn() (query.Query, RPStats) {
	defer l.in.start("learn/rp", obs.Af("n", "%d", l.u.N()))()

	// Phase 1 (§3.2.1): determine the universal head variables, one
	// question per variable, exactly as in §3.1.1.
	l.phase = &l.stats.HeadQuestions
	endPhase := l.in.begin("heads")
	headSet := l.classifyHeads()
	endPhase()

	// Phase 2 (§3.2.1): for each head, search the Boolean lattice on
	// the non-head variables (other heads pinned true, h pinned
	// false) for the distinguishing tuples of h's dominant bodies.
	// The per-head searches depend only on the head set, never on one
	// another, so batch mode runs them as concurrent question streams.
	l.phase = &l.stats.UniversalQuestions
	endPhase = l.in.begin("bodies")
	heads := headSet.Vars()
	bodiesByHead := make([][]boolean.Tuple, len(heads))
	if l.batch && len(heads) > 1 {
		l.findBodiesConcurrently(heads, headSet, bodiesByHead)
	} else {
		for i, h := range heads {
			bodiesByHead[i] = l.findBodies(h, headSet)
		}
	}
	var universals []query.Expr
	for i, h := range heads {
		for _, b := range bodiesByHead[i] {
			if b.IsEmpty() {
				universals = append(universals, query.BodylessUniversal(h))
			} else {
				universals = append(universals, query.UniversalHorn(b, h))
			}
		}
	}
	endPhase()

	// Phase 3 (§3.2.2): search the full Boolean lattice for the
	// distinguishing tuples of the dominant existential conjunctions.
	l.phase = &l.stats.ExistentialQuestions
	endPhase = l.in.begin("existential")
	conjs := l.findConjunctions(universals)
	endPhase()

	exprs := append([]query.Expr{}, universals...)
	for _, c := range conjs {
		if !c.IsEmpty() {
			exprs = append(exprs, query.Conjunction(c))
		}
	}
	return (query.Query{U: l.u, Exprs: exprs}).Normalize(), l.stats
}

// classifyHeads asks one head-test question per variable and returns
// the set of universal head variables. The questions are mutually
// independent, so batch mode issues all n at once.
func (l *rpLearner) classifyHeads() boolean.Tuple {
	var headSet boolean.Tuple
	if l.batch {
		qs := make([]boolean.Set, l.u.N())
		for x := range qs {
			qs[x] = HeadTestQuestion(l.u, x)
		}
		answers := l.askBatch(qs, func(x int) (string, string) {
			return "heads", fmt.Sprintf("is x%d a universal head variable?", x+1)
		})
		for x, a := range answers {
			if !a {
				headSet = headSet.With(x)
			}
		}
		return headSet
	}
	for x := 0; x < l.u.N(); x++ {
		l.note("heads", fmt.Sprintf("is x%d a universal head variable?", x+1))
		if !l.ask(HeadTestQuestion(l.u, x)) {
			headSet = headSet.With(x)
		}
	}
	return headSet
}

// ClassifyHeads determines the universal head variables of the
// oracle's hidden role-preserving query with exactly n questions
// (§3.1.1/§3.2.1). Exposed for the revision algorithm, which repairs
// a nearly-correct query phase by phase.
func ClassifyHeads(u boolean.Universe, o oracle.Oracle) boolean.Tuple {
	l := &rpLearner{u: u, o: o}
	var c int
	l.phase = &c
	return l.classifyHeads()
}

// LearnBodies finds the dominant universal Horn bodies of head h in
// the oracle's hidden query, given the full head set (§3.2.1). A
// single empty body means ∀h. Exposed for the revision algorithm.
func LearnBodies(u boolean.Universe, o oracle.Oracle, h int, headSet boolean.Tuple) []boolean.Tuple {
	l := &rpLearner{u: u, o: o}
	var c int
	l.phase = &c
	return l.findBodies(h, headSet)
}

// LearnConjunctions finds the distinguishing tuples of the dominant
// existential conjunctions of the oracle's hidden query, given its
// universal Horn expressions (§3.2.2). Exposed for the revision
// algorithm.
func LearnConjunctions(u boolean.Universe, o oracle.Oracle, universals []query.Expr) []boolean.Tuple {
	l := &rpLearner{u: u, o: o}
	var c int
	l.phase = &c
	return l.findConjunctions(universals)
}

// bodyAsk asks one lattice question of a per-head body search; the
// serial path routes it through l.ask, the concurrent path through a
// Drive stream that defers the accounting to the driver goroutine.
type bodyAsk func(s boolean.Set, purpose string) bool

// findBodies returns the dominant bodies of universal head h,
// searching serially under a per-head "lattice-search" span.
func (l *rpLearner) findBodies(h int, headSet boolean.Tuple) []boolean.Tuple {
	defer l.in.begin("lattice-search", obs.Af("head", "x%d", h+1))()
	return l.searchBodies(h, headSet, func(s boolean.Set, purpose string) bool {
		l.note("bodies", purpose)
		return l.ask(s)
	})
}

// findBodiesConcurrently runs the per-head lattice searches as
// concurrent question streams through oracle.Drive: each round's
// questions — one per still-searching head — are answered as one
// batch. Every stream asks exactly the questions its serial
// counterpart asks, and the driver callback replays the serial
// accounting (phase counter, note, observe) in stream order, so
// counts and traces stay deterministic. The per-head lattice-search
// spans are skipped in this mode: the searches overlap in time, and
// the span stack is single-threaded by design.
func (l *rpLearner) findBodiesConcurrently(heads []int, headSet boolean.Tuple, out [][]boolean.Tuple) {
	purposes := make([]string, len(heads))
	oracle.Drive(l.o, len(heads), func(i int, ask oracle.AskFunc) {
		out[i] = l.searchBodies(heads[i], headSet, func(s boolean.Set, purpose string) bool {
			purposes[i] = purpose
			return ask(s)
		})
	}, func(i int, s boolean.Set, a bool) {
		*l.phase++
		l.in.note("bodies", purposes[i])
		l.in.observe(s, a)
	})
}

// searchBodies is the body-search engine behind findBodies (§3.2.1).
// The search starts from the top of the restricted lattice (Fig. 5),
// minimizes down to one body with Algorithm 6, then explores the
// sub-lattices rooted at tuples that exclude one variable from each
// known body, until no root uncovers a new body (Theorem 3.5).
// A single empty body means h is bodyless (∀h).
func (l *rpLearner) searchBodies(h int, headSet boolean.Tuple, ask bodyAsk) []boolean.Tuple {
	all := l.u.All()
	free := all.Minus(headSet)
	pinned := headSet.Without(h) // other heads true, h false
	top := free.Union(pinned)

	// question(t) pairs the all-true tuple with lattice point t; it
	// is a non-answer iff t contains a complete body for h.
	hasBody := func(t boolean.Tuple) bool {
		purpose := fmt.Sprintf("does a complete body for x%d lie within %s?", h+1, varNames(t.Intersect(free).Vars()))
		return !ask(boolean.NewSet(all, t), purpose)
	}

	// Bodyless check at the lattice bottom: the bottom contains a
	// body only if the body is empty.
	if hasBody(pinned) {
		return []boolean.Tuple{0}
	}

	var found []boolean.Tuple
	visited := map[boolean.Tuple]bool{}
	queue := []boolean.Tuple{top}
	for len(queue) > 0 {
		root := queue[0]
		queue = queue[1:]
		if visited[root] {
			l.in.pruned(1)
			continue
		}
		visited[root] = true
		l.in.visited()
		if !hasBody(root) {
			continue
		}
		b := l.minimizeBody(root, free, hasBody)
		if containsTuple(found, b) {
			continue
		}
		found = append(found, b)
		// Regenerate the search roots: one excluded variable from
		// each known body (§3.2.1's |B1|×…×|Bm| roots).
		queue = queue[:0]
		for _, r := range bodyRoots(top, found) {
			if !visited[r] {
				queue = append(queue, r)
			}
		}
	}
	return found
}

// minimizeBody walks Algorithm 6: starting from a lattice point known
// to contain a body, greedily set each free variable to false,
// keeping the change whenever the question remains a non-answer. The
// surviving true free variables form a dominant body.
func (l *rpLearner) minimizeBody(start, free boolean.Tuple, hasBody func(boolean.Tuple) bool) boolean.Tuple {
	cur := start
	for _, v := range start.Intersect(free).Vars() {
		if hasBody(cur.Without(v)) {
			cur = cur.Without(v)
		}
	}
	return cur.Intersect(free)
}

// bodyRoots enumerates the tuples obtained from top by setting false
// exactly one variable from each body in found (the cartesian
// product of the bodies), deduplicated.
func bodyRoots(top boolean.Tuple, found []boolean.Tuple) []boolean.Tuple {
	roots := map[boolean.Tuple]bool{}
	var rec func(i int, excluded boolean.Tuple)
	rec = func(i int, excluded boolean.Tuple) {
		if i == len(found) {
			roots[top.Minus(excluded)] = true
			return
		}
		for _, v := range found[i].Vars() {
			rec(i+1, excluded.With(v))
		}
	}
	rec(0, 0)
	out := make([]boolean.Tuple, 0, len(roots))
	for r := range roots {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// findConjunctions runs the lattice descent of Algorithm 7 over the
// full Boolean lattice, given the already-learned universal Horn
// expressions. It returns the distinguishing tuples of the target's
// dominant existential conjunctions (possibly including guarantee
// clauses, which Normalize later folds in).
func (l *rpLearner) findConjunctions(universals []query.Expr) []boolean.Tuple {
	defer l.in.begin("lattice-search", obs.A("target", "conjunctions"))()
	qU := query.Query{U: l.u, Exprs: universals}

	// Seed the discovered set with the distinguishing tuples of the
	// guarantee clauses: they are conjunctions of every consistent
	// target, keep every question's universal guarantees satisfied,
	// and implement the paper's optimization of not descending below
	// them.
	var discovered []boolean.Tuple
	if !l.ablations.NoGuaranteeSeeds {
		for _, e := range universals {
			g := qU.Closure(e.Body.With(e.Head))
			if !containsTuple(discovered, g) {
				discovered = append(discovered, g)
			}
		}
	}

	dominatedByDiscovered := func(t boolean.Tuple) bool {
		for _, d := range discovered {
			if d.Contains(t) {
				return true
			}
		}
		return false
	}

	frontier := []boolean.Tuple{l.u.All()}
	for len(frontier) > 0 {
		var next []boolean.Tuple
		for i := 0; i < len(frontier); i++ {
			t := frontier[i]
			if dominatedByDiscovered(t) {
				// Everything at or below t is dominated by a known
				// conjunction (rule R1): stop descending.
				l.in.pruned(1)
				continue
			}
			l.in.visited()
			// Children that do not violate a universal Horn
			// expression (the lattice of §3.2.2 with violating
			// tuples removed).
			var children []boolean.Tuple
			for _, v := range t.Vars() {
				c := t.Without(v)
				if !qU.Violates(c) {
					children = append(children, c)
				} else {
					l.in.pruned(1)
				}
			}
			base := concatTuples(discovered, frontier[i+1:], next)
			l.note("existential", fmt.Sprintf("can the conjunction over %s be weakened to its children?", varNames(t.Vars())))
			if l.ask(boolean.NewSet(append(base, children...)...)) {
				kept := l.pruneTuples(children, base)
				next = append(next, kept...)
			} else {
				// Replacing t with its children flipped the response:
				// t distinguishes a conjunction of the target.
				discovered = append(discovered, t)
			}
		}
		frontier = dedupeTuples(next)
	}
	return discovered
}

// pruneTuples implements Algorithm 8: it returns a small subset K of
// cands such that the question base ∪ K is still an answer, asking
// O(|K| lg |cands|) questions. Monotonicity holds because every tuple
// involved is universal-violation free.
func (l *rpLearner) pruneTuples(cands []boolean.Tuple, base []boolean.Tuple) []boolean.Tuple {
	defer l.in.begin("prune")()
	askWith := func(extra ...[]boolean.Tuple) bool {
		l.note("existential", "which candidate tuples are needed to keep your query satisfied?")
		return l.ask(boolean.NewSet(concatTuples(append([][]boolean.Tuple{base}, extra...)...)...))
	}
	if l.ablations.SerialPrune {
		// The pre-optimization strategy of §3.2.2: try removing each
		// tuple individually, keeping it when the question flips to a
		// non-answer. One question per candidate.
		kept := append([]boolean.Tuple{}, cands...)
		for i := 0; i < len(kept); {
			without := append(append([]boolean.Tuple{}, kept[:i]...), kept[i+1:]...)
			if askWith(without) {
				kept = without
			} else {
				i++
			}
		}
		return kept
	}
	var kept []boolean.Tuple
	for !askWith(kept) {
		// The full candidate set restores the answer; binary-search
		// one necessary tuple.
		work := make([]boolean.Tuple, 0, len(cands))
		for _, c := range cands {
			if !containsTuple(kept, c) {
				work = append(work, c)
			}
		}
		if len(work) == 0 {
			// Only possible with an oracle inconsistent with every
			// query in the class (e.g. a noisy user): the answer
			// cannot be restored, so keep everything and move on.
			return cands
		}
		var extra []boolean.Tuple
		for len(work) > 1 {
			half := work[:len(work)/2]
			rest := work[len(work)/2:]
			if askWith(kept, extra, half) {
				work = half
			} else {
				extra = append(extra, half...)
				work = rest
			}
		}
		kept = append(kept, work[0])
	}
	return kept
}

func containsTuple(ts []boolean.Tuple, t boolean.Tuple) bool {
	for _, u := range ts {
		if u == t {
			return true
		}
	}
	return false
}

func concatTuples(groups ...[]boolean.Tuple) []boolean.Tuple {
	var out []boolean.Tuple
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

func dedupeTuples(ts []boolean.Tuple) []boolean.Tuple {
	seen := map[boolean.Tuple]bool{}
	out := ts[:0]
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
