package learn_test

import (
	"math/rand"
	"reflect"
	"testing"

	"qhorn/internal/difffuzz"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// runSerialAndParallel learns target with both the serial and the
// batched learner and returns the two counters for comparison. The
// parallel learner asks through an oracle.Parallel pool so batches
// really are answered concurrently.
func runSerialAndParallel(t *testing.T, target query.Query, workers int,
	serial func(o oracle.Oracle) (query.Query, int),
	parallel func(o oracle.Oracle) (query.Query, int)) (sc, pc *oracle.Counter) {
	t.Helper()
	sc = oracle.Count(oracle.Target(target))
	sq, st := serial(sc)
	pc = oracle.Count(oracle.Target(target))
	pq, pt := parallel(oracle.Parallel(pc, workers))
	if !sq.Equivalent(target) {
		t.Errorf("serial learner got %s, not equivalent to %s", sq, target)
	}
	if !pq.Equivalent(sq) {
		t.Errorf("parallel learner got %s, serial got %s (target %s)", pq, sq, target)
	}
	if st != pt {
		t.Errorf("per-phase stats diverge for %s: serial total %d, parallel total %d", target, st, pt)
	}
	if sc.Questions != pc.Questions || sc.Tuples != pc.Tuples || sc.MaxTuples != pc.MaxTuples {
		t.Errorf("oracle accounting diverges for %s: serial (%d, %d, %d), parallel (%d, %d, %d)",
			target, sc.Questions, sc.Tuples, sc.MaxTuples, pc.Questions, pc.Tuples, pc.MaxTuples)
	}
	return sc, pc
}

// TestQhorn1ParallelMatchesSerial pins the engine's determinism
// contract for qhorn-1 (docs/PARALLELISM.md): on seeded random
// targets, the batched learner returns an equivalent query with
// identical per-phase question counts and identical oracle-side
// question/tuple accounting.
func TestQhorn1ParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 60; i++ {
		c := difffuzz.GenCase(rng, difffuzz.ClassQhorn1, 2, 8)
		var sst, pst learn.Qhorn1Stats
		runSerialAndParallel(t, c.Hidden, 1+i%7,
			func(o oracle.Oracle) (query.Query, int) {
				q, st := learn.Qhorn1(c.Hidden.U, o)
				sst = st
				return q, st.Total()
			},
			func(o oracle.Oracle) (query.Query, int) {
				q, st := learn.Qhorn1Parallel(c.Hidden.U, o)
				pst = st
				return q, st.Total()
			})
		if sst != pst {
			t.Errorf("%s: serial stats %+v, parallel stats %+v", c.Hidden, sst, pst)
		}
	}
}

// TestRolePreservingParallelMatchesSerial is the same contract for the
// role-preserving learner, whose per-head lattice searches run as
// concurrent question streams through oracle.Drive.
func TestRolePreservingParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 60; i++ {
		c := difffuzz.GenCase(rng, difffuzz.ClassRP, 2, 8)
		var sst, pst learn.RPStats
		runSerialAndParallel(t, c.Hidden, 1+i%7,
			func(o oracle.Oracle) (query.Query, int) {
				q, st := learn.RolePreserving(c.Hidden.U, o)
				sst = st
				return q, st.Total()
			},
			func(o oracle.Oracle) (query.Query, int) {
				q, st := learn.RolePreservingParallel(c.Hidden.U, o)
				pst = st
				return q, st.Total()
			})
		if sst != pst {
			t.Errorf("%s: serial stats %+v, parallel stats %+v", c.Hidden, sst, pst)
		}
	}
}

// TestParallelMatchesSerialOnCorpus replays every persisted difffuzz
// repro — each one a past or near-miss bug — through both learners.
// The corpus cases are exactly where serial/parallel divergence would
// hide.
func TestParallelMatchesSerialOnCorpus(t *testing.T) {
	cases, err := difffuzz.LoadCorpus("../difffuzz/testdata/corpus")
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	if len(cases) == 0 {
		t.Fatal("corpus is empty")
	}
	for _, c := range cases {
		switch c.Class {
		case difffuzz.ClassQhorn1:
			runSerialAndParallel(t, c.Hidden, 4,
				func(o oracle.Oracle) (query.Query, int) {
					q, st := learn.Qhorn1(c.Hidden.U, o)
					return q, st.Total()
				},
				func(o oracle.Oracle) (query.Query, int) {
					q, st := learn.Qhorn1Parallel(c.Hidden.U, o)
					return q, st.Total()
				})
		case difffuzz.ClassRP:
			runSerialAndParallel(t, c.Hidden, 4,
				func(o oracle.Oracle) (query.Query, int) {
					q, st := learn.RolePreserving(c.Hidden.U, o)
					return q, st.Total()
				},
				func(o oracle.Oracle) (query.Query, int) {
					q, st := learn.RolePreservingParallel(c.Hidden.U, o)
					return q, st.Total()
				})
		}
	}
}

// TestDifferentialParallelSmoke runs the full judge battery with the
// parallel-engine judge enabled: every generated case also runs the
// batched learner (and batched verifier) and must agree with the
// serial path question-for-question.
func TestDifferentialParallelSmoke(t *testing.T) {
	rep := difffuzz.Run(difffuzz.Config{
		Seed:    977,
		Runs:    30,
		Options: difffuzz.Options{Parallel: 4},
	})
	for _, d := range rep.Disagreements {
		t.Errorf("%s", d)
	}
}

// TestParallelObservedAccounting pins that the observed parallel
// learners report instrumentation question counts identical to their
// serial observed counterparts — all accounting happens in the calling
// goroutine, in deterministic order.
func TestParallelObservedAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	countSteps := func(run func(ins learn.Instrumentation)) map[string]int {
		counts := map[string]int{}
		run(learn.Instrumentation{Steps: func(s learn.Step) { counts[s.Phase]++ }})
		return counts
	}
	for i := 0; i < 10; i++ {
		c := difffuzz.GenCase(rng, difffuzz.ClassQhorn1, 2, 6)
		serial := countSteps(func(ins learn.Instrumentation) {
			learn.Qhorn1Observed(c.Hidden.U, oracle.Target(c.Hidden), ins)
		})
		parallel := countSteps(func(ins learn.Instrumentation) {
			learn.Qhorn1ParallelObserved(c.Hidden.U, oracle.Parallel(oracle.Target(c.Hidden), 4), ins)
		})
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%s: serial observed %v question events by phase, parallel %v", c.Hidden, serial, parallel)
		}
	}
	for i := 0; i < 10; i++ {
		c := difffuzz.GenCase(rng, difffuzz.ClassRP, 2, 6)
		serial := countSteps(func(ins learn.Instrumentation) {
			learn.RolePreservingObserved(c.Hidden.U, oracle.Target(c.Hidden), ins)
		})
		parallel := countSteps(func(ins learn.Instrumentation) {
			learn.RolePreservingParallelObserved(c.Hidden.U, oracle.Parallel(oracle.Target(c.Hidden), 4), ins)
		})
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%s: serial observed %v question events by phase, parallel %v", c.Hidden, serial, parallel)
		}
	}
}
