package learn

import "math"

// Estimates give a user-facing upper bound on how many membership
// questions a learning session may take before it starts — the
// number a query interface shows next to "start learning". They are
// the paper's bounds with the small constants measured in experiment
// E1–E3 (EXPERIMENTS.md), rounded up.

// EstimateQhorn1 bounds the questions to learn a qhorn-1 query on n
// propositions: n head questions plus ≈ n lg n for bodies and
// existential structure (Theorem 3.1; measured constant ≈ 1.1, bound
// uses 2).
func EstimateQhorn1(n int) int {
	if n <= 0 {
		return 0
	}
	if n == 1 {
		return 1
	}
	return n + int(math.Ceil(2*float64(n)*math.Log2(float64(n))))
}

// EstimateRolePreserving bounds the questions to learn a
// role-preserving query on n propositions with at most `heads`
// universal head variables of causal density at most theta and at
// most k existential conjunctions: n head questions, O(n^θ) per head
// for bodies (Theorem 3.5), and ≈ k·n·lg n for conjunctions
// (Theorem 3.8).
func EstimateRolePreserving(n, heads, theta, k int) int {
	if n <= 0 {
		return 0
	}
	if heads < 0 {
		heads = 0
	}
	if theta < 1 {
		theta = 1
	}
	if k < 1 {
		k = 1
	}
	lg := math.Log2(float64(n))
	if n == 1 {
		lg = 1
	}
	universal := float64(heads) * math.Pow(float64(n), float64(theta))
	existential := 2 * float64(k) * float64(n) * lg
	return n + int(math.Ceil(universal+existential))
}
