package learn

import (
	"math/rand"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// TestGetHeadExhaustive validates the invariant-based GetHead
// (Algorithm 5) directly against every possible head subset: for a
// part with body B and head set H over D = B ∪ H (minus the probe
// variable), GetHead must return a member of H exactly when |H| ≥ 2.
func TestGetHeadExhaustive(t *testing.T) {
	for n := 3; n <= 9; n++ {
		u := boolean.MustUniverse(n)
		// Variable 0 is the probe variable e; D = {1..n-1}.
		dVars := make([]int, 0, n-1)
		for v := 1; v < n; v++ {
			dVars = append(dVars, v)
		}
		// Enumerate every split of D into heads H and body rest; e
		// joins the body. The query is ∃(body ∪ {e}) → h per head, or
		// the single conjunction when H is empty.
		for hm := 0; hm < 1<<uint(len(dVars)); hm++ {
			var heads []int
			var body boolean.Tuple
			body = body.With(0) // e
			for i, v := range dVars {
				if hm&(1<<uint(i)) != 0 {
					heads = append(heads, v)
				} else {
					body = body.With(v)
				}
			}
			var exprs []query.Expr
			if len(heads) == 0 {
				exprs = append(exprs, query.Conjunction(body))
			}
			for _, h := range heads {
				exprs = append(exprs, query.ExistentialHorn(body, h))
			}
			target := query.MustNew(u, exprs...)
			l := &qhorn1Learner{u: u, o: oracle.Target(target)}
			l.phase = &l.stats.ExistentialQuestions
			got, ok := l.getHead(dVars)
			if len(heads) >= 2 {
				if !ok {
					t.Fatalf("n=%d heads=%v: GetHead found nothing", n, heads)
				}
				isHead := false
				for _, h := range heads {
					if h == got {
						isHead = true
					}
				}
				if !isHead {
					t.Fatalf("n=%d heads=%v: GetHead returned body variable x%d", n, heads, got+1)
				}
			} else if ok {
				t.Fatalf("n=%d heads=%v: GetHead returned x%d with <2 heads", n, heads, got+1)
			}
		}
	}
}

// TestGetHeadQuestionBound: O(lg |D|) matrix questions per call once
// two heads exist (Lemma 3.3).
func TestGetHeadQuestionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(10)
		u := boolean.MustUniverse(n)
		dVars := make([]int, 0, n-1)
		for v := 1; v < n; v++ {
			dVars = append(dVars, v)
		}
		// Two random heads, rest body.
		perm := rng.Perm(len(dVars))
		h1, h2 := dVars[perm[0]], dVars[perm[1]]
		body := boolean.FromVars(0)
		for _, v := range dVars {
			if v != h1 && v != h2 {
				body = body.With(v)
			}
		}
		target := query.MustNew(u,
			query.ExistentialHorn(body, h1),
			query.ExistentialHorn(body, h2),
		)
		c := oracle.Count(oracle.Target(target))
		l := &qhorn1Learner{u: u, o: c}
		l.phase = &l.stats.ExistentialQuestions
		if _, ok := l.getHead(dVars); !ok {
			t.Fatal("two heads not detected")
		}
		// 1 initial matrix question + ⌈lg |D|⌉ halvings, with slack.
		if c.Questions > 2+2*bitsLen(len(dVars)) {
			t.Errorf("n=%d: GetHead asked %d questions", n, c.Questions)
		}
	}
}

func bitsLen(x int) int {
	n := 0
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}
