package learn

import (
	"math/rand"
	"testing"

	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

func TestQhorn1NaiveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(12)
		target := query.GenQhorn1(rng, n)
		learned, _ := Qhorn1Naive(target.U, oracle.Target(target))
		if !learned.Equivalent(target) {
			t.Fatalf("target %s learned as %s", target, learned)
		}
	}
}

// TestNaiveAsksMoreQuestions: on queries with few, large bodies the
// binary-search learner beats the serial baseline (the point of
// §3.1.2's "we can do better").
func TestNaiveAsksMoreQuestions(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 32
	var fastTotal, naiveTotal int
	for i := 0; i < 20; i++ {
		target := query.GenQhorn1(rng, n)
		_, fast := Qhorn1(target.U, oracle.Target(target))
		_, naive := Qhorn1Naive(target.U, oracle.Target(target))
		fastTotal += fast.Total()
		naiveTotal += naive.Total()
	}
	if naiveTotal <= fastTotal {
		t.Errorf("naive asked %d, binary asked %d: expected naive to ask more", naiveTotal, fastTotal)
	}
}

func TestSerialSearchHelpers(t *testing.T) {
	targets := map[int]bool{2: true, 4: true}
	eliminate := func(d []int) bool {
		for _, v := range d {
			if targets[v] {
				return false
			}
		}
		return true
	}
	if v, ok := serialFindOne([]int{0, 1, 2, 3, 4}, eliminate); !ok || v != 2 {
		t.Errorf("serialFindOne = %d, %v", v, ok)
	}
	if _, ok := serialFindOne([]int{0, 1}, eliminate); ok {
		t.Error("serialFindOne found absent target")
	}
	got := serialFindAll([]int{0, 1, 2, 3, 4}, eliminate)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("serialFindAll = %v", got)
	}
}
