package learn

import (
	"strings"
	"testing"

	"qhorn/internal/boolean"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
)

// annotationGrid is the target grid for the annotation-coverage tests:
// queries spanning bodyless universals, shared bodies, existential
// conjunctions and multi-head expressions.
var annotationGrid = []struct {
	n      int
	target string
	qhorn1 bool // in the qhorn-1 class too?
}{
	{1, "∃x1", true},
	// x2, x3 unmentioned: role-preserving only (qhorn-1 assumes every
	// variable participates).
	{3, "∃x1", false},
	{3, "∀x1 ∃x2x3", true},
	{4, "∀x1 → x2 ∃x3 → x4", true},
	{6, "∀x1x2 → x4 ∃x1x2 → x5 ∃x3 → x6", true},
	{6, "∀x1x4 → x5 ∃x2x3", false},
	{5, "∀x1x2 → x3 ∀x1x2 → x4 ∃x5", false},
	{7, "∃x1x2 → x3 ∃x1x2 → x4 ∀x5 → x6 ∃x7", false},
}

// TestEveryQuestionAnnotatedGrid pins the contract behind the
// explaining interfaces: every membership question either learner
// asks, over a grid of targets, carries a non-empty Phase and Purpose.
func TestEveryQuestionAnnotatedGrid(t *testing.T) {
	for _, tc := range annotationGrid {
		u := boolean.MustUniverse(tc.n)
		target := query.MustParse(u, tc.target)
		check := func(name string, steps []Step, total int) {
			t.Helper()
			if len(steps) != total {
				t.Errorf("%s %q: traced %d steps, stats say %d", name, tc.target, len(steps), total)
			}
			for i, s := range steps {
				if s.Phase == "" {
					t.Errorf("%s %q: step %d has empty Phase (purpose %q)", name, tc.target, i, s.Purpose)
				}
				if s.Purpose == "" {
					t.Errorf("%s %q: step %d has empty Purpose (phase %q)", name, tc.target, i, s.Phase)
				}
			}
		}

		var rpSteps []Step
		learned, rpStats := RolePreservingTraced(u, oracle.Target(target), func(s Step) {
			rpSteps = append(rpSteps, s)
		})
		if !learned.Equivalent(target) {
			t.Errorf("rp %q: learned %s", tc.target, learned)
		}
		check("rp", rpSteps, rpStats.Total())

		if !tc.qhorn1 {
			continue
		}
		var q1Steps []Step
		learned, q1Stats := Qhorn1Traced(u, oracle.Target(target), func(s Step) {
			q1Steps = append(q1Steps, s)
		})
		if !learned.Equivalent(target) {
			t.Errorf("qhorn1 %q: learned %s", tc.target, learned)
		}
		check("qhorn1", q1Steps, q1Stats.Total())
	}
}

// TestQhorn1ObservedSpansAndMetrics runs the qhorn-1 learner with the
// full instrumentation bundle and checks the span tree covers the
// paper's phases and the by-phase counters reconcile with the stats.
func TestQhorn1ObservedSpansAndMetrics(t *testing.T) {
	u := boolean.MustUniverse(6)
	target := query.MustParse(u, "∀x1x2 → x4 ∃x1x2 → x5 ∃x3 → x6")
	tree := obs.NewTreeSink()
	tr := obs.NewTracer(tree)
	reg := obs.NewRegistry()
	learned, stats := Qhorn1Observed(u, oracle.Target(target), Instrumentation{
		Spans:   tr,
		Metrics: reg,
	})
	if !learned.Equivalent(target) {
		t.Fatalf("learned %s", learned)
	}

	names := tree.SpanNames()
	for _, want := range []string{"learn/qhorn1", "heads", "bodies", "existential", "find", "findall", "gethead"} {
		if !containsString(names, want) {
			t.Errorf("span %q missing from tree (have %v)", want, names)
		}
	}

	byPhase := map[string]int64{
		"heads":       reg.CounterValue(obs.MetricQuestionsByPhase, "phase", "heads"),
		"bodies":      reg.CounterValue(obs.MetricQuestionsByPhase, "phase", "bodies"),
		"existential": reg.CounterValue(obs.MetricQuestionsByPhase, "phase", "existential"),
	}
	if byPhase["heads"] != int64(stats.HeadQuestions) ||
		byPhase["bodies"] != int64(stats.BodyQuestions) ||
		byPhase["existential"] != int64(stats.ExistentialQuestions) {
		t.Errorf("by-phase counters %v, stats %+v", byPhase, stats)
	}
	if got := reg.SumCounter(obs.MetricQuestionsByPhase); got != int64(stats.Total()) {
		t.Errorf("by-phase sum = %d, stats total = %d", got, stats.Total())
	}

	var b strings.Builder
	tree.Render(&b)
	if !strings.Contains(b.String(), "learn/qhorn1") {
		t.Errorf("rendered tree missing root:\n%s", b.String())
	}
}

// TestRolePreservingObservedSpansAndMetrics does the same for the
// role-preserving learner, including the lattice counters.
func TestRolePreservingObservedSpansAndMetrics(t *testing.T) {
	u := boolean.MustUniverse(6)
	target := query.MustParse(u, "∀x1x4 → x5 ∃x2x3")
	tree := obs.NewTreeSink()
	tr := obs.NewTracer(tree)
	reg := obs.NewRegistry()
	learned, stats := RolePreservingObserved(u, oracle.Target(target), Instrumentation{
		Spans:   tr,
		Metrics: reg,
	})
	if !learned.Equivalent(target) {
		t.Fatalf("learned %s", learned)
	}

	names := tree.SpanNames()
	for _, want := range []string{"learn/rp", "heads", "bodies", "existential", "lattice-search"} {
		if !containsString(names, want) {
			t.Errorf("span %q missing from tree (have %v)", want, names)
		}
	}
	if got := reg.SumCounter(obs.MetricQuestionsByPhase); got != int64(stats.Total()) {
		t.Errorf("by-phase sum = %d, stats total = %d", got, stats.Total())
	}
	if reg.CounterValue(obs.MetricLatticeVisited) == 0 {
		t.Error("lattice visited counter never incremented")
	}
}

// TestPhaseDurationHistograms checks an observed run feeds the
// engine-wide qhorn_phase_seconds histogram: one observation for the
// root span, at least one per paper phase, and none without metrics.
func TestPhaseDurationHistograms(t *testing.T) {
	u := boolean.MustUniverse(6)
	target := query.MustParse(u, "∀x1x2 → x4 ∃x1x2 → x5 ∃x3 → x6")
	reg := obs.NewRegistry()
	learned, _ := Qhorn1Observed(u, oracle.Target(target), Instrumentation{Metrics: reg})
	if !learned.Equivalent(target) {
		t.Fatalf("learned %s", learned)
	}

	if got := reg.Histogram(obs.MetricPhaseSeconds, obs.LatencyBuckets, "phase", "learn/qhorn1").Count(); got != 1 {
		t.Errorf("root phase observations = %d, want 1", got)
	}
	for _, phase := range []string{"heads", "bodies", "existential"} {
		if got := reg.Histogram(obs.MetricPhaseSeconds, obs.LatencyBuckets, "phase", phase).Count(); got == 0 {
			t.Errorf("phase %q never observed a duration", phase)
		}
	}

	// The role-preserving learner reports under its own root phase.
	reg = obs.NewRegistry()
	rpTarget := query.MustParse(u, "∀x1x4 → x5 ∃x2x3")
	if learned, _ := RolePreservingObserved(u, oracle.Target(rpTarget), Instrumentation{Metrics: reg}); !learned.Equivalent(rpTarget) {
		t.Fatalf("rp learned %s", learned)
	}
	if got := reg.Histogram(obs.MetricPhaseSeconds, obs.LatencyBuckets, "phase", "learn/rp").Count(); got != 1 {
		t.Errorf("rp root phase observations = %d, want 1", got)
	}
}

func containsString(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
