// Package load is the sustained-load harness for the qhornd serving
// plane: a persistent-connection load generator that drives many
// concurrent learn/verify/amend sessions through the public HTTP API
// and reports throughput (sessions/sec, questions/sec) and latency
// (client-side session percentiles plus the server's own
// qhornd_http_seconds{route=} and qhorn_oracle_ask_seconds
// histograms, scraped from /progress).
//
// The generator is deterministic given Options.Seed: the session mix
// (learn vs verify vs amend, warm vs cold memo), the hidden targets
// and the think-time draws all come from seeded RNGs, so a load run
// doubles as a correctness harness — with AssertIdentity every learn
// is checked bit-for-bit against the direct in-process reference,
// under full concurrency.
package load

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qhorn/internal/difffuzz"
	"qhorn/internal/learn"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
	"qhorn/internal/serve"
	qsession "qhorn/internal/session"
)

// Options configures a load run. The zero value is usable: 64 learn
// sessions over 8 workers against an in-process server.
type Options struct {
	// Base is the target server ("http://host:port"). Empty spawns an
	// in-process server with Config for the duration of the run.
	Base   string
	Config serve.Config

	// Sessions is the total session count (default 64); Workers is
	// the number of concurrent drivers (default 8). Duration, when
	// positive, stops launching new sessions after it elapses.
	Sessions int
	Workers  int
	Duration time.Duration

	// Wire selects the wire mode every driver uses.
	Wire serve.WireMode
	// Algorithm is the learning algorithm of learn/amend sessions.
	Algorithm run.Algorithm
	// Targets is the hidden-query pool size (default 12): session i
	// learns pool target i mod Targets. MinVars/MaxVars bound the
	// universe size of generated targets (defaults 3 and 6); wider
	// universes make wider question batches.
	Targets int
	MinVars int
	MaxVars int

	// VerifyFrac is the fraction of sessions that run verification of
	// a correct given query instead of a learn; AmendFrac is the
	// fraction that lie on one answer and then amend; WarmFrac is the
	// fraction of plain learns that attach to a shared per-target
	// oracle identity, so the server's memo tier answers repeated
	// questions (warm cache). Fractions are of the total and the
	// kinds are drawn deterministically from Seed.
	VerifyFrac float64
	AmendFrac  float64
	WarmFrac   float64

	// ThinkMean, when positive, sleeps an exponentially-distributed
	// think time (with this mean) before each answer delivery.
	ThinkMean time.Duration

	// Seed fixes the target pool, the session mix and the think-time
	// draws.
	Seed int64

	// AssertIdentity checks every completed session against the
	// direct in-process reference: learns (cold and warm) must learn
	// the identical query, cold learns must ask the identical live
	// question count, and verifies must validate. Any mismatch fails
	// the run.
	AssertIdentity bool

	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...interface{})
}

// Quantiles summarizes one latency histogram scraped from the server.
type Quantiles struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Report is the outcome of a load run.
type Report struct {
	// Sessions completed, split by kind; Questions is the live
	// questions answered over the wire; RoundTrips counts every HTTP
	// request the generator issued.
	Sessions   int64 `json:"sessions"`
	Learns     int64 `json:"learns"`
	Verifies   int64 `json:"verifies"`
	Amends     int64 `json:"amends"`
	WarmLearns int64 `json:"warm_learns"`
	Questions  int64 `json:"questions"`
	RoundTrips int64 `json:"round_trips"`

	Wall            time.Duration `json:"wall_ns"`
	SessionsPerSec  float64       `json:"sessions_per_sec"`
	QuestionsPerSec float64       `json:"questions_per_sec"`

	// SessionP* are client-observed whole-session latencies.
	SessionP50 time.Duration `json:"session_p50_ns"`
	SessionP90 time.Duration `json:"session_p90_ns"`
	SessionP99 time.Duration `json:"session_p99_ns"`

	// HTTP holds the server's per-route request-latency quantiles
	// (qhornd_http_seconds{route=...}) and Ask the oracle ask-latency
	// quantiles (qhorn_oracle_ask_seconds), scraped from /progress
	// after the run. For an external server they are cumulative since
	// that server started.
	HTTP map[string]Quantiles `json:"http,omitempty"`
	Ask  Quantiles            `json:"ask"`
}

// String renders the report as the one-screen summary qhornload
// prints.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sessions %d (%d learn, %d warm, %d verify, %d amend) in %v\n",
		r.Sessions, r.Learns, r.WarmLearns, r.Verifies, r.Amends, r.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "throughput %.1f sessions/sec, %.1f questions/sec, %d round trips\n",
		r.SessionsPerSec, r.QuestionsPerSec, r.RoundTrips)
	fmt.Fprintf(&b, "session latency p50 %v p90 %v p99 %v\n",
		r.SessionP50.Round(time.Microsecond), r.SessionP90.Round(time.Microsecond), r.SessionP99.Round(time.Microsecond))
	routes := make([]string, 0, len(r.HTTP))
	for route := range r.HTTP {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	for _, route := range routes {
		q := r.HTTP[route]
		fmt.Fprintf(&b, "http %-10s n=%-7d p50 %.3fms p95 %.3fms p99 %.3fms\n",
			route, q.Count, q.P50*1e3, q.P95*1e3, q.P99*1e3)
	}
	if r.Ask.Count > 0 {
		fmt.Fprintf(&b, "oracle ask n=%-7d p50 %.3fms p95 %.3fms p99 %.3fms\n",
			r.Ask.Count, r.Ask.P50*1e3, r.Ask.P95*1e3, r.Ask.P99*1e3)
	}
	return b.String()
}

// session kinds of the deterministic mix.
const (
	kindLearn = iota
	kindWarm
	kindVerify
	kindAmend
)

// plan is one scheduled session.
type plan struct {
	kind   int
	target int // index into the target pool
}

// reference is the precomputed direct-learn outcome for one pool
// target, the bit-identity baseline.
type reference struct {
	target query.Query
	want   string // learned query, direct
	live   int    // live questions, direct cold learn
}

// Run executes the load run and reports. It returns an error when a
// session fails, when an identity assertion trips, or when the server
// is unreachable.
func Run(opt Options) (Report, error) {
	if opt.Sessions <= 0 {
		opt.Sessions = 64
	}
	if opt.Workers <= 0 {
		opt.Workers = 8
	}
	if opt.Targets <= 0 {
		opt.Targets = 12
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	base := opt.Base
	if base == "" {
		srv := serve.New(opt.Config)
		if err := srv.Start("127.0.0.1:0"); err != nil {
			return Report{}, err
		}
		defer srv.Close()
		base = srv.URL()
		logf("load: spawned in-process qhornd at %s", base)
	}

	refs, plans := buildPlans(opt)
	client := serve.NewClient(base)

	var (
		rep       Report
		mu        sync.Mutex // latencies + report counters
		latencies []time.Duration
		questions atomic.Int64
		next      atomic.Int64
		firstErr  error
		errOnce   sync.Once
		wg        sync.WaitGroup
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
	deadline := time.Time{}
	if opt.Duration > 0 {
		deadline = time.Now().Add(opt.Duration)
	}

	start := time.Now()
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + 7919*int64(w) + 1))
			for {
				i := int(next.Add(1)) - 1
				if i >= len(plans) {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}
				p := plans[i]
				s0 := time.Now()
				live, err := runSession(client, opt, refs[p.target], p, rng)
				elapsed := time.Since(s0)
				if err != nil {
					fail(fmt.Errorf("load: session %d (kind %d, target %d): %w", i, p.kind, p.target, err))
					return
				}
				questions.Add(int64(live))
				mu.Lock()
				latencies = append(latencies, elapsed)
				rep.Sessions++
				switch p.kind {
				case kindLearn:
					rep.Learns++
				case kindWarm:
					rep.WarmLearns++
				case kindVerify:
					rep.Verifies++
				case kindAmend:
					rep.Amends++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	rep.Wall = time.Since(start)
	if firstErr != nil {
		return rep, firstErr
	}

	rep.Questions = questions.Load()
	rep.RoundTrips = client.RoundTrips()
	secs := rep.Wall.Seconds()
	if secs > 0 {
		rep.SessionsPerSec = float64(rep.Sessions) / secs
		rep.QuestionsPerSec = float64(rep.Questions) / secs
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	rep.SessionP50 = percentile(latencies, 0.50)
	rep.SessionP90 = percentile(latencies, 0.90)
	rep.SessionP99 = percentile(latencies, 0.99)

	if err := scrape(base, &rep); err != nil {
		// The numbers above stand on their own; surface the scrape
		// failure without discarding them.
		return rep, fmt.Errorf("load: scraping %s/progress: %w", base, err)
	}
	return rep, nil
}

// buildPlans draws the target pool, its direct references and the
// deterministic session mix.
func buildPlans(opt Options) ([]reference, []plan) {
	rng := rand.New(rand.NewSource(opt.Seed))
	class := difffuzz.ClassQhorn1
	if opt.Algorithm == run.RolePreserving {
		class = difffuzz.ClassRP
	}
	minVars, maxVars := opt.MinVars, opt.MaxVars
	if minVars <= 0 {
		minVars = 3
	}
	if maxVars < minVars {
		maxVars = minVars + 3
	}
	refs := make([]reference, opt.Targets)
	for i := range refs {
		target := difffuzz.GenCase(rng, class, minVars, maxVars).Hidden
		hist := qsession.New(oracle.Target(target))
		learned, _ := learn.Run(target.U, hist, run.WithAlgorithm(opt.Algorithm), run.WithBatch())
		refs[i] = reference{target: target, want: learned.String(), live: hist.LiveQuestions}
	}
	plans := make([]plan, opt.Sessions)
	for i := range plans {
		p := plan{kind: kindLearn, target: i % opt.Targets}
		switch f := rng.Float64(); {
		case f < opt.VerifyFrac:
			p.kind = kindVerify
		case f < opt.VerifyFrac+opt.AmendFrac:
			p.kind = kindAmend
		case f < opt.VerifyFrac+opt.AmendFrac+opt.WarmFrac:
			p.kind = kindWarm
		}
		plans[i] = p
	}
	return refs, plans
}

// runSession drives one planned session to completion and returns its
// live-question count.
func runSession(c *serve.Client, opt Options, ref reference, p plan, rng *rand.Rand) (int, error) {
	honest := serve.AnswererFor(ref.target.U, oracle.Target(ref.target))
	drive := serve.DriveOptions{Poll: 10 * time.Second, Wire: opt.Wire}
	if opt.ThinkMean > 0 {
		drive.Delay = func() time.Duration {
			return time.Duration(rng.ExpFloat64() * float64(opt.ThinkMean))
		}
	}
	req := serve.CreateRequest{Variables: ref.target.N(), Algorithm: opt.Algorithm.String()}
	switch p.kind {
	case kindWarm:
		// All warm sessions of one target share an oracle identity, so
		// the server's memo tier answers questions earlier sessions
		// settled. The first such session per target warms the tier.
		req.User = fmt.Sprintf("load-warm-%d-%d", opt.Seed, p.target)
	case kindVerify:
		req.Mode = serve.ModeVerify
		req.Given = ref.target.String()
	}

	info, err := c.Create(req)
	if err != nil {
		return 0, err
	}
	defer c.Delete(info.ID) //nolint:errcheck // best-effort cleanup on error paths

	answer := honest
	liedKey := ""
	if p.kind == kindAmend {
		answer = func(q serve.WireQuestion) (bool, error) {
			a, err := honest(q)
			if err != nil {
				return false, err
			}
			if liedKey == "" {
				liedKey = q.Key
				return !a, nil
			}
			return a, nil
		}
	}
	final, err := c.Drive(info.ID, answer, drive)
	if err != nil {
		return 0, err
	}
	if final.State != serve.StateDone {
		return 0, fmt.Errorf("session ended %q (error %q)", final.State, final.Error)
	}
	live := final.LiveQuestions
	if p.kind == kindAmend && liedKey != "" {
		if _, err := c.Amend(info.ID, serve.AmendRequest{Key: liedKey}); err != nil {
			return 0, err
		}
		if final, err = c.Drive(info.ID, honest, drive); err != nil {
			return 0, err
		}
		if final.State != serve.StateDone {
			return 0, fmt.Errorf("amended session ended %q (error %q)", final.State, final.Error)
		}
		live += final.LiveQuestions
	}

	if opt.AssertIdentity {
		switch p.kind {
		case kindVerify:
			if final.Verify == nil || !final.Verify.Correct {
				return 0, fmt.Errorf("verification of the true query reported incorrect: %+v", final.Verify)
			}
		default:
			if final.Learned != ref.want {
				return 0, fmt.Errorf("learned %q over HTTP, %q direct", final.Learned, ref.want)
			}
			if p.kind == kindLearn && final.LiveQuestions != ref.live {
				return 0, fmt.Errorf("cold learn asked %d live questions over HTTP, %d direct", final.LiveQuestions, ref.live)
			}
		}
	}
	return live, nil
}

// percentile reads the p-quantile of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// scrape pulls the server's /progress snapshot and fills the report's
// HTTP and Ask quantiles.
func scrape(base string, rep *Report) error {
	resp, err := http.Get(base + "/progress")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var prog obs.Progress
	if err := json.Unmarshal(body, &prog); err != nil {
		return err
	}
	for key, h := range prog.Histograms {
		q := Quantiles{Count: h.Count, Sum: h.Sum, P50: h.P50, P95: h.P95, P99: h.P99}
		switch {
		case key == obs.MetricOracleAskSeconds:
			rep.Ask = q
		case strings.HasPrefix(key, obs.MetricServeHTTPSeconds+"{"):
			route := routeLabel(key)
			if route == "" {
				route = key
			}
			if rep.HTTP == nil {
				rep.HTTP = map[string]Quantiles{}
			}
			rep.HTTP[route] = q
		}
	}
	return nil
}

// routeLabel extracts the route label value from a histogram key like
// `qhornd_http_seconds{route="answers"}`.
func routeLabel(key string) string {
	const marker = `route="`
	i := strings.Index(key, marker)
	if i < 0 {
		return ""
	}
	rest := key[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}
