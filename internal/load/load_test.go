package load

import (
	"strings"
	"testing"
	"time"

	"qhorn/internal/run"
	"qhorn/internal/serve"
)

// TestRunInProcess is the harness's own smoke test: a mixed workload
// against a spawned server, with every session's bit-identity
// asserted against the direct reference.
func TestRunInProcess(t *testing.T) {
	var lines []string
	rep, err := Run(Options{
		Sessions:       16,
		Workers:        4,
		Targets:        4,
		VerifyFrac:     0.2,
		AmendFrac:      0.2,
		WarmFrac:       0.2,
		ThinkMean:      100 * time.Microsecond,
		Seed:           11,
		AssertIdentity: true,
		Logf:           func(f string, a ...interface{}) { lines = append(lines, f) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 16 {
		t.Fatalf("completed %d sessions, want 16", rep.Sessions)
	}
	if got := rep.Learns + rep.WarmLearns + rep.Verifies + rep.Amends; got != rep.Sessions {
		t.Fatalf("kind counts sum to %d, sessions %d", got, rep.Sessions)
	}
	if rep.Questions == 0 || rep.RoundTrips == 0 {
		t.Fatalf("no traffic recorded: %+v", rep)
	}
	if rep.SessionsPerSec <= 0 || rep.QuestionsPerSec <= 0 {
		t.Fatalf("no throughput computed: %+v", rep)
	}
	if rep.SessionP50 <= 0 || rep.SessionP99 < rep.SessionP50 {
		t.Fatalf("implausible session percentiles: p50=%v p99=%v", rep.SessionP50, rep.SessionP99)
	}
	// The scrape must surface the per-route histograms and the oracle
	// ask latency for the traffic we just generated.
	if q, ok := rep.HTTP["answers"]; !ok || q.Count == 0 {
		t.Fatalf("no answers-route latency scraped: %+v", rep.HTTP)
	}
	if q, ok := rep.HTTP["create"]; !ok || q.Count != 16 {
		t.Fatalf("create-route count %+v, want 16", rep.HTTP["create"])
	}
	if rep.Ask.Count == 0 {
		t.Fatal("no oracle ask latency scraped")
	}
	if len(lines) == 0 {
		t.Fatal("Logf never called for the in-process spawn")
	}
	out := rep.String()
	for _, want := range []string{"sessions 16", "throughput", "session latency", "http answers"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report summary missing %q:\n%s", want, out)
		}
	}
}

// TestRunExternalServer drives an already-running server through
// Base, the deployment shape of the CI load-smoke job.
func TestRunExternalServer(t *testing.T) {
	srv := serve.New(serve.Config{MemoCapacity: -1})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rep, err := Run(Options{
		Base:           srv.URL(),
		Sessions:       6,
		Workers:        3,
		Targets:        3,
		Wire:           serve.WireFused,
		Seed:           5,
		AssertIdentity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 6 {
		t.Fatalf("completed %d sessions, want 6", rep.Sessions)
	}
	if q, ok := rep.HTTP["answers"]; !ok || q.Count == 0 {
		t.Fatalf("no answers-route latency scraped from the external server: %+v", rep.HTTP)
	}
}

// TestRunWireModes runs each wire mode with identity asserts — the
// sustained-load flavor of the wire-mode identity e2e test.
func TestRunWireModes(t *testing.T) {
	for _, wire := range []serve.WireMode{serve.WireBatched, serve.WireFused, serve.WireSingle} {
		t.Run(wire.String(), func(t *testing.T) {
			rep, err := Run(Options{
				Sessions: 4, Workers: 2, Targets: 2,
				Wire: wire, Seed: 7, AssertIdentity: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Sessions != 4 {
				t.Fatalf("%s: %d sessions, want 4", wire, rep.Sessions)
			}
		})
	}
}

// TestRunRolePreserving covers the rp algorithm path and the warm
// memo tier under it.
func TestRunRolePreserving(t *testing.T) {
	rep, err := Run(Options{
		Sessions: 4, Workers: 2, Targets: 2,
		Algorithm: run.RolePreserving, WarmFrac: 0.5,
		Seed: 13, AssertIdentity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 4 {
		t.Fatalf("%d sessions, want 4", rep.Sessions)
	}
}

// TestRunUnreachableBase fails fast against a dead server.
func TestRunUnreachableBase(t *testing.T) {
	_, err := Run(Options{Base: "http://127.0.0.1:1", Sessions: 2, Workers: 1, Targets: 1, Seed: 3})
	if err == nil {
		t.Fatal("Run against a dead server succeeded")
	}
}

// TestRunDurationStops launches fewer sessions when the duration
// elapses before the session budget.
func TestRunDurationStops(t *testing.T) {
	rep, err := Run(Options{
		Sessions: 10000, Workers: 2, Targets: 2,
		Duration: 50 * time.Millisecond,
		ThinkMean: 2 * time.Millisecond,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions == 0 || rep.Sessions >= 10000 {
		t.Fatalf("duration-bounded run completed %d sessions", rep.Sessions)
	}
}

// TestBuildPlansDeterministic pins the session mix to the seed.
func TestBuildPlansDeterministic(t *testing.T) {
	opt := Options{Sessions: 200, Targets: 4, VerifyFrac: 0.25, AmendFrac: 0.25, WarmFrac: 0.25, Seed: 21}
	_, a := buildPlans(opt)
	_, b := buildPlans(opt)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("plan lengths %d/%d", len(a), len(b))
	}
	counts := map[int]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
		counts[a[i].kind]++
		if a[i].target != i%4 {
			t.Fatalf("plan %d target %d, want %d", i, a[i].target, i%4)
		}
	}
	// Each quarter-weighted kind should land within a loose band.
	for kind, n := range counts {
		if n < 20 || n > 110 {
			t.Fatalf("kind %d drawn %d times of 200 with fraction 0.25", kind, n)
		}
	}
}

// TestPercentile pins the rank convention.
func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.99); got != 0 {
		t.Fatalf("empty percentile %v", got)
	}
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 0.50); got != 5 {
		t.Fatalf("p50 of 1..10 = %v, want 5", got)
	}
	if got := percentile(sorted, 0.99); got != 9 {
		t.Fatalf("p99 of 1..10 = %v, want 9", got)
	}
	if got := percentile(sorted, 1.0); got != 10 {
		t.Fatalf("p100 of 1..10 = %v, want 10", got)
	}
}

// TestRouteLabel pins the histogram-key parser.
func TestRouteLabel(t *testing.T) {
	if got := routeLabel(`qhornd_http_seconds{route="answers"}`); got != "answers" {
		t.Fatalf("routeLabel = %q", got)
	}
	if got := routeLabel(`qhornd_http_seconds`); got != "" {
		t.Fatalf("label-less key gave %q", got)
	}
	if got := routeLabel(`qhornd_http_seconds{route="x`); got != "" {
		t.Fatalf("truncated key gave %q", got)
	}
}
