package exp

import (
	"fmt"
	"math/rand"

	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E21",
		Name:  "noise-sensitivity",
		Paper: "§5 (noisy users)",
		Claim: "exact learning is brittle to response noise — the quantitative case for the §5 history/amendment mechanism",
		Run:   runNoiseSensitivity,
	})
}

// runNoiseSensitivity measures how often the exact learners still
// recover the target when each response flips independently with
// probability p.
func runNoiseSensitivity(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("noise-sensitivity")
	t := stats.NewTable(header(e),
		"flip probability p", "qhorn-1 exact (of trials)", "role-preserving exact (of trials)")
	ps := []float64{0, 0.005, 0.01, 0.02, 0.05, 0.1}
	if cfg.Quick {
		ps = []float64{0, 0.05}
	}
	const n = 8
	for _, p := range ps {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(p*1000)))
		q1ok, rpok := 0, 0
		for i := 0; i < cfg.Trials; i++ {
			t1 := query.GenQhorn1Sized(rng, n, 4)
			noisy := oracle.Noisy(oracle.Target(t1), p, rng)
			if got, _ := learn.Qhorn1(t1.U, noisy); got.Equivalent(t1) {
				q1ok++
			}
			t2 := query.GenRolePreserving(rng, n, query.RPOptions{
				Heads: 1, BodiesPerHead: 1, MaxBodySize: 2, Conjs: 2, MaxConjSize: 4,
			})
			noisy2 := oracle.Noisy(oracle.Target(t2), p, rng)
			if got, _ := learn.RolePreserving(t2.U, noisy2); got.Equivalent(t2) {
				rpok++
			}
		}
		t.AddRow(fmt.Sprintf("%.3f", p),
			fmt.Sprintf("%d/%d", q1ok, cfg.Trials),
			fmt.Sprintf("%d/%d", rpok, cfg.Trials))
	}
	t.AddNote("a single flipped answer can corrupt the exact result — recovery is the job of the session/amendment machinery (E15)")
	return []*stats.Table{t}
}
