package exp

import (
	"fmt"
	"math/rand"

	"qhorn/internal/boolean"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/stats"
	"qhorn/internal/verify"
)

func init() {
	register(Experiment{
		ID:    "E7",
		Name:  "verification-cost",
		Paper: "Fig 6, §4",
		Claim: "a verification set has O(k) questions; question sizes follow Fig 6",
		Run:   runVerificationCost,
	})
	register(Experiment{
		ID:    "E8",
		Name:  "fig7",
		Paper: "Fig 7",
		Claim: "verification sets of every role-preserving query on two variables",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "E9",
		Name:  "fig8",
		Paper: "Fig 8",
		Claim: "some verification question detects every semantic difference between two-variable queries",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "E10",
		Name:  "worked-example",
		Paper: "§4.2",
		Claim: "the verification set of the paper's six-variable example query",
		Run:   runWorkedExample,
	})
}

// runVerificationCost sweeps query size k and reports question counts
// per family plus tuples per question, checking the O(k) claim.
func runVerificationCost(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("verification-cost")
	t := stats.NewTable(header(e),
		"k (mean)", "n", "questions", "A1", "A2", "A3", "A4", "N1", "N2", "max tuples/question")
	type shape struct {
		heads, bodies, conjs int
	}
	shapes := []shape{
		{1, 1, 1}, {1, 1, 3}, {2, 1, 3}, {2, 2, 3}, {3, 2, 5}, {4, 2, 6},
	}
	if cfg.Quick {
		shapes = shapes[:3]
	}
	const n = 16
	var xs, ys []float64
	for _, sh := range shapes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(sh.heads*100+sh.conjs)))
		var ks, total, maxTuples []int
		counts := map[verify.Kind][]int{}
		for i := 0; i < cfg.Trials; i++ {
			target := query.GenRolePreserving(rng, n, query.RPOptions{
				Heads:         sh.heads,
				BodiesPerHead: sh.bodies,
				MaxBodySize:   3,
				Conjs:         sh.conjs,
				MaxConjSize:   n / 2,
			})
			vs, err := verify.Build(target)
			if err != nil {
				panic(err)
			}
			ks = append(ks, vs.Query.Size())
			total = append(total, len(vs.Questions))
			perKind := map[verify.Kind]int{}
			maxT := 0
			for _, q := range vs.Questions {
				perKind[q.Kind]++
				if q.Set.Size() > maxT {
					maxT = q.Set.Size()
				}
			}
			maxTuples = append(maxTuples, maxT)
			for _, kind := range []verify.Kind{verify.A1, verify.A2, verify.A3, verify.A4, verify.N1, verify.N2} {
				counts[kind] = append(counts[kind], perKind[kind])
			}
		}
		kMean := stats.SummarizeInts(ks).Mean
		qMean := stats.SummarizeInts(total).Mean
		t.AddRow(kMean, n, qMean,
			stats.SummarizeInts(counts[verify.A1]).Mean,
			stats.SummarizeInts(counts[verify.A2]).Mean,
			stats.SummarizeInts(counts[verify.A3]).Mean,
			stats.SummarizeInts(counts[verify.A4]).Mean,
			stats.SummarizeInts(counts[verify.N1]).Mean,
			stats.SummarizeInts(counts[verify.N2]).Mean,
			stats.SummarizeInts(maxTuples).Mean)
		xs = append(xs, kMean)
		ys = append(ys, qMean)
	}
	t.AddNote("growth exponent of questions in k: %.2f (claim ≈ 1)", stats.GrowthExponent(xs, ys))
	return []*stats.Table{t}
}

// runFig7 regenerates Fig 7: the verification set of every
// semantically distinct role-preserving query on two variables.
func runFig7(cfg Config) []*stats.Table {
	e, _ := ByName("fig7")
	u := boolean.MustUniverse(2)
	t := stats.NewTable(header(e), "query", "kind", "expected", "question")
	for _, q := range query.AllQueries(u) {
		vs, err := verify.Build(q)
		if err != nil {
			panic(err)
		}
		for _, question := range vs.Questions {
			expect := "non-answer"
			if question.Expect {
				expect = "answer"
			}
			t.AddRow(q.String(), string(question.Kind), expect, question.Set.Format(u))
		}
	}
	t.AddNote("%d distinct role-preserving queries on two variables", len(query.AllQueries(u)))
	return []*stats.Table{t}
}

// runFig8 regenerates Fig 8: for every ordered (intended, given) pair
// of two-variable queries, the verification-set question family that
// surfaces the difference.
func runFig8(cfg Config) []*stats.Table {
	e, _ := ByName("fig8")
	u := boolean.MustUniverse(2)
	queries := query.AllQueries(u)
	cols := []string{"intended \\ given"}
	for _, g := range queries {
		cols = append(cols, g.String())
	}
	t := stats.NewTable(header(e), cols...)
	for _, intended := range queries {
		row := []interface{}{intended.String()}
		for _, given := range queries {
			vs, err := verify.Build(given)
			if err != nil {
				panic(err)
			}
			res := vs.Run(oracle.Target(intended))
			switch {
			case given.Equivalent(intended):
				if !res.Correct {
					row = append(row, "FALSE-ALARM")
				} else {
					row = append(row, "≡")
				}
			case res.Correct:
				row = append(row, "MISSED")
			default:
				row = append(row, string(res.Disagreements[0].Question.Kind))
			}
		}
		t.AddRow(row...)
	}
	t.AddNote("≡ marks equivalent pairs; any MISSED or FALSE-ALARM cell would falsify Theorem 4.2")
	return []*stats.Table{t}
}

// runWorkedExample prints the verification set of the §4.2 example
// query with the classification each question expects.
func runWorkedExample(cfg Config) []*stats.Table {
	e, _ := ByName("worked-example")
	u := boolean.MustUniverse(6)
	q := query.MustParse(u, "∀x1x4 → x5 ∀x3x4 → x5 ∀x1x2 → x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6")
	vs, err := verify.Build(q)
	if err != nil {
		panic(err)
	}
	t := stats.NewTable(header(e), "kind", "about", "expected", "tuples", "question")
	for _, question := range vs.Questions {
		expect := "non-answer"
		if question.Expect {
			expect = "answer"
		}
		t.AddRow(string(question.Kind), question.About, expect,
			question.Set.Size(), question.Set.Format(u))
	}
	t.AddNote("query: %s", q)
	t.AddNote("self-consistent: %v", vs.SelfConsistent())
	t.AddNote(fmt.Sprintf("%d questions total", len(vs.Questions)))
	return []*stats.Table{t}
}
