package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"qhorn/internal/stats"
)

// TestSummarizeExtractsMeasurements pins the table→JSON extraction:
// measured growth exponents come out of notes (claim references do
// not) and question counts out of the first questions column.
func TestSummarizeExtractsMeasurements(t *testing.T) {
	e := Experiment{ID: "E99", Name: "bench-fixture", Paper: "Thm X", Claim: "c"}
	tbl := stats.NewTable("fixture", "n", "questions (mean)", "questions / (n·lg n)")
	tbl.AddRow(8, 24.5, 1.02)
	tbl.AddRow(16, 61.0, 0.95)
	tbl.AddNote("growth exponent: learner 1.18 (n lg n ⇒ ≈1.0–1.4), serial baseline 2.01 (n² ⇒ ≈2.0)")
	tbl.AddNote("unrelated note with a number 3.14159")

	s := Summarize(e, Config{Seed: 7, Trials: 3}, []*stats.Table{tbl}, 250*time.Millisecond)

	if s.Experiment != "bench-fixture" || s.ID != "E99" || s.Seed != 7 || s.Trials != 3 {
		t.Errorf("header fields wrong: %+v", s)
	}
	if s.WallSeconds != 0.25 {
		t.Errorf("wall = %v", s.WallSeconds)
	}
	if len(s.GrowthExponents) != 2 {
		t.Fatalf("exponents = %+v, want the two measured values", s.GrowthExponents)
	}
	if s.GrowthExponents[0].Value != 1.18 || s.GrowthExponents[1].Value != 2.01 {
		t.Errorf("exponent values %+v", s.GrowthExponents)
	}
	if len(s.QuestionCounts) != 2 {
		t.Fatalf("question counts = %+v", s.QuestionCounts)
	}
	qc := s.QuestionCounts[0]
	if qc.Param != "n" || qc.ParamVal != "8" || qc.Questions != 24.5 {
		t.Errorf("first question count %+v", qc)
	}
	if qc.Stddev != 0 || qc.Samples != 1 {
		t.Errorf("single-row aggregate %+v, want stddev 0 and 1 sample", qc)
	}
	if s.FileName() != "BENCH_bench-fixture.json" {
		t.Errorf("file name %q", s.FileName())
	}
	// The bloat fix: per-measurement entries carry the short table key,
	// the legend states the full title once, and the table itself keeps
	// both (benchgate matches on the title).
	if s.Tables[0].Key != "t1" || s.TableLegend["t1"] != "fixture" {
		t.Errorf("table key/legend wrong: key=%q legend=%v", s.Tables[0].Key, s.TableLegend)
	}
	if qc.Table != "t1" || s.GrowthExponents[0].Table != "t1" {
		t.Errorf("measurements reference %q and %q, want the short key t1", qc.Table, s.GrowthExponents[0].Table)
	}
}

// TestSummarizeAggregatesQuestionCounts pins the BENCH_parallel.json
// duplication fix: rows repeating a parameter value across a second
// sweep dimension (E22's worker counts) collapse into one entry per
// (table, param, param_value), with mean and stddev over the rows.
func TestSummarizeAggregatesQuestionCounts(t *testing.T) {
	e := Experiment{ID: "E98", Name: "agg-fixture"}
	tbl := stats.NewTable("sweep", "class", "workers", "questions")
	tbl.AddRow("qhorn1", 1, 34.45)
	tbl.AddRow("qhorn1", 2, 34.45)
	tbl.AddRow("qhorn1", 4, 34.45)
	tbl.AddRow("rp", 1, 100.0)
	tbl.AddRow("rp", 2, 104.0)

	s := Summarize(e, Config{}, []*stats.Table{tbl}, time.Millisecond)
	if len(s.QuestionCounts) != 2 {
		t.Fatalf("question counts = %+v, want one per param value", s.QuestionCounts)
	}
	q1, rp := s.QuestionCounts[0], s.QuestionCounts[1]
	if q1.ParamVal != "qhorn1" || q1.Questions != 34.45 || q1.Stddev != 0 || q1.Samples != 3 {
		t.Errorf("qhorn1 aggregate %+v", q1)
	}
	if rp.ParamVal != "rp" || rp.Questions != 102.0 || rp.Samples != 2 {
		t.Errorf("rp aggregate %+v", rp)
	}
	if rp.Stddev < 1.99 || rp.Stddev > 2.01 {
		t.Errorf("rp stddev %v, want 2.0", rp.Stddev)
	}
}

// TestBenchRunsRealExperiment runs the smallest real experiment in
// quick mode end to end and checks the JSON round-trips.
func TestBenchRunsRealExperiment(t *testing.T) {
	e, ok := ByName("qhorn1-scaling")
	if !ok {
		t.Skip("qhorn1-scaling not registered")
	}
	s, tables := Bench(e, Config{Seed: 1, Trials: 2, Quick: true})
	if len(tables) == 0 || len(s.Tables) != len(tables) {
		t.Fatalf("tables missing: %d vs %d", len(tables), len(s.Tables))
	}
	if s.WallSeconds <= 0 {
		t.Error("wall time not measured")
	}
	if len(s.GrowthExponents) == 0 {
		t.Error("no growth exponents extracted from a scaling experiment")
	}
	if len(s.QuestionCounts) == 0 {
		t.Error("no question counts extracted from a scaling experiment")
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back BenchSummary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v\n%s", err, buf.String())
	}
	if back.Experiment != "qhorn1-scaling" {
		t.Errorf("round-tripped experiment %q", back.Experiment)
	}
	if !strings.Contains(buf.String(), `"wall_seconds"`) {
		t.Error("JSON missing wall_seconds")
	}
}
