package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"qhorn/internal/stats"
)

// TestSummarizeExtractsMeasurements pins the table→JSON extraction:
// measured growth exponents come out of notes (claim references do
// not) and question counts out of the first questions column.
func TestSummarizeExtractsMeasurements(t *testing.T) {
	e := Experiment{ID: "E99", Name: "bench-fixture", Paper: "Thm X", Claim: "c"}
	tbl := stats.NewTable("fixture", "n", "questions (mean)", "questions / (n·lg n)")
	tbl.AddRow(8, 24.5, 1.02)
	tbl.AddRow(16, 61.0, 0.95)
	tbl.AddNote("growth exponent: learner 1.18 (n lg n ⇒ ≈1.0–1.4), serial baseline 2.01 (n² ⇒ ≈2.0)")
	tbl.AddNote("unrelated note with a number 3.14159")

	s := Summarize(e, Config{Seed: 7, Trials: 3}, []*stats.Table{tbl}, 250*time.Millisecond)

	if s.Experiment != "bench-fixture" || s.ID != "E99" || s.Seed != 7 || s.Trials != 3 {
		t.Errorf("header fields wrong: %+v", s)
	}
	if s.WallSeconds != 0.25 {
		t.Errorf("wall = %v", s.WallSeconds)
	}
	if len(s.GrowthExponents) != 2 {
		t.Fatalf("exponents = %+v, want the two measured values", s.GrowthExponents)
	}
	if s.GrowthExponents[0].Value != 1.18 || s.GrowthExponents[1].Value != 2.01 {
		t.Errorf("exponent values %+v", s.GrowthExponents)
	}
	if len(s.QuestionCounts) != 2 {
		t.Fatalf("question counts = %+v", s.QuestionCounts)
	}
	qc := s.QuestionCounts[0]
	if qc.Param != "n" || qc.ParamVal != "8" || qc.Questions != 24.5 {
		t.Errorf("first question count %+v", qc)
	}
	if s.FileName() != "BENCH_bench-fixture.json" {
		t.Errorf("file name %q", s.FileName())
	}
}

// TestBenchRunsRealExperiment runs the smallest real experiment in
// quick mode end to end and checks the JSON round-trips.
func TestBenchRunsRealExperiment(t *testing.T) {
	e, ok := ByName("qhorn1-scaling")
	if !ok {
		t.Skip("qhorn1-scaling not registered")
	}
	s, tables := Bench(e, Config{Seed: 1, Trials: 2, Quick: true})
	if len(tables) == 0 || len(s.Tables) != len(tables) {
		t.Fatalf("tables missing: %d vs %d", len(tables), len(s.Tables))
	}
	if s.WallSeconds <= 0 {
		t.Error("wall time not measured")
	}
	if len(s.GrowthExponents) == 0 {
		t.Error("no growth exponents extracted from a scaling experiment")
	}
	if len(s.QuestionCounts) == 0 {
		t.Error("no question counts extracted from a scaling experiment")
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back BenchSummary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v\n%s", err, buf.String())
	}
	if back.Experiment != "qhorn1-scaling" {
		t.Errorf("round-tripped experiment %q", back.Experiment)
	}
	if !strings.Contains(buf.String(), `"wall_seconds"`) {
		t.Error("JSON missing wall_seconds")
	}
}
