package exp

import (
	"math/rand"

	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/stats"
	"qhorn/internal/verify"
)

func init() {
	register(Experiment{
		ID:    "E20",
		Name:  "partial-verification",
		Paper: "§4 (practical relaxation)",
		Claim: "asking only part of the verification set trades certainty for a detection probability that grows with the fraction asked",
		Run:   runPartialVerification,
	})
}

// runPartialVerification measures the probability that a random
// m-question subset of a verification set still catches a mutated
// intended query, as m sweeps from one question to the full set.
func runPartialVerification(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("partial-verification")
	t := stats.NewTable(header(e),
		"fraction of set asked", "detection rate (1 edit)", "detection rate (2 edits)")
	const n = 10
	fractions := []float64{0.25, 0.5, 0.75, 1.0}
	if cfg.Quick {
		fractions = []float64{0.5, 1.0}
	}
	for _, frac := range fractions {
		rates := map[int][]float64{}
		for _, edits := range []int{1, 2} {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(edits)))
			for i := 0; i < cfg.Trials; i++ {
				given := query.GenRolePreserving(rng, n, query.RPOptions{
					Heads: 1, BodiesPerHead: 1, MaxBodySize: 3, Conjs: 3, MaxConjSize: 5,
				})
				intended := query.Mutate(rng, given, edits)
				if given.Equivalent(intended) {
					continue // the mutation happened to be semantic noise
				}
				vs, err := verify.Build(given)
				if err != nil {
					panic(err)
				}
				m := int(frac*float64(len(vs.Questions)) + 0.5)
				if m < 1 {
					m = 1
				}
				rate := vs.DetectionRate(rng, oracle.Target(intended), m, 50)
				rates[edits] = append(rates[edits], rate)
			}
		}
		t.AddRow(frac,
			stats.Summarize(rates[1]).Mean,
			stats.Summarize(rates[2]).Mean)
	}
	t.AddNote("at fraction 1.0 detection is certain (Theorem 4.2); below it the rate reflects how many questions a given difference touches")
	return []*stats.Table{t}
}
