package exp

import (
	"math/rand"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/brute"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E27",
		Name:  "brute",
		Paper: "engineering (docs/PERFORMANCE.md)",
		Claim: "bit-sliced slab builds and sharded answer matrices push brute-force cross-validation from n=3 to exhaustive n=4 and sampled n=5",
		Run:   runBrute,
	})
}

// runBrute measures the brute-force cross-validation stack end to end:
// the per-learn cost a difffuzz judge pays (fresh scalar build+learn,
// the pre-cache path, against one learn over the process-cached sliced
// matrix), the matrix build itself (scalar per-candidate kernel vs the
// bit-sliced slab kernel, with raw vs compressed storage), and the
// sampled n=5 range where exhaustive enumeration is intractable. Every
// timed comparison asserts bit-identical behaviour in-run. `qhornexp
// -exp brute -json` writes the result as BENCH_brute.json.
func runBrute(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("brute")
	return []*stats.Table{
		bruteLearnTable(e, cfg),
		bruteBuildTable(e, cfg),
		bruteSampledTable(e, cfg),
	}
}

// ms converts a wall-clock duration into fractional milliseconds.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// bruteLearnTable is the headline per-learn comparison on exhaustive
// universes: what one brute cross-check costs through (a) the serial
// reference learner, (b) a freshly built scalar matrix — the judge path
// before this repo cached and bit-sliced the matrix — and (c) one learn
// over a prebuilt sliced matrix, the cached path difffuzz now runs.
// Question counts and learned queries are asserted identical across all
// three on every trial.
func bruteLearnTable(e Experiment, cfg Config) *stats.Table {
	t := stats.NewTable(header(e)+" — per-learn (exhaustive range)",
		"n", "candidates", "pool", "questions",
		"serial ms", "fresh scalar ms", "cached sliced ms", "per-learn speedup")
	reg := cfg.registry()

	sweep := []int{2, 3, 4}
	if cfg.Quick {
		sweep = []int{2, 3}
	}
	for _, n := range sweep {
		u := boolean.MustUniverse(n)
		candidates := query.AllQueries(u)
		pool := boolean.AllObjects(u)
		rng := rand.New(rand.NewSource(cfg.Seed))
		trials := cfg.Trials
		if trials > 6 {
			trials = 6
		}
		if n >= 4 && trials > 3 {
			trials = 3 // the fresh scalar build is ~1.5 s per trial at n=4
		}

		cached, err := brute.NewMatrixOpts(candidates, pool, brute.MatrixOptions{Registry: reg})
		if err != nil {
			panic(err)
		}
		var questions, serialMS, freshMS, cachedMS []float64
		for trial := 0; trial < trials; trial++ {
			target := candidates[rng.Intn(len(candidates))]

			sc := oracle.CountInto(oracle.Target(target), reg)
			start := time.Now()
			sres, serr := brute.LearnSerial(candidates, sc, pool)
			serialMS = append(serialMS, ms(time.Since(start)))

			fc := oracle.CountInto(oracle.Target(target), reg)
			start = time.Now()
			fresh, err := brute.NewMatrixOpts(candidates, pool, brute.MatrixOptions{Scalar: true, Registry: reg})
			if err != nil {
				panic(err)
			}
			fres, ferr := fresh.Learn(fc)
			freshMS = append(freshMS, ms(time.Since(start)))
			fresh.Close()

			mc := oracle.CountInto(oracle.Target(target), reg)
			start = time.Now()
			mres, merr := cached.Learn(mc)
			cachedMS = append(cachedMS, ms(time.Since(start)))

			// In-run identity asserts: all three paths ask the same
			// questions and learn the same query.
			if (serr == nil) != (merr == nil) || (serr == nil) != (ferr == nil) {
				panic("exp: brute learner variants changed the error outcome")
			}
			if sc.Questions != mc.Questions || sc.Questions != fc.Questions ||
				sres.Questions != mres.Questions || sres.Questions != fres.Questions {
				panic("exp: brute learner variants broke the question-count contract")
			}
			if serr == nil && (!sres.Learned.Equivalent(mres.Learned) || !sres.Learned.Equivalent(fres.Learned)) {
				panic("exp: brute learner variants diverged on the learned query")
			}
			questions = append(questions, float64(sres.Questions))
		}
		cached.Close()
		sm := stats.Summarize(serialMS).Mean
		fm := stats.Summarize(freshMS).Mean
		cm := stats.Summarize(cachedMS).Mean
		t.AddRow(n, len(candidates), len(pool), stats.Summarize(questions).Mean, sm, fm, cm, fm/cm)
	}
	t.AddNote("fresh scalar = matrix rebuilt per learn with the scalar per-candidate kernel (the judge path before the process-wide matrix cache and the bit-sliced builder); cached sliced = one learn over the prebuilt sliced matrix, its build amortized across the run; questions and learned queries asserted identical serial vs fresh vs cached on every trial")
	return t
}

// bruteBuildTable times the matrix build itself — the scalar
// per-candidate kernel against the bit-sliced slab kernel — and sizes
// the two storage forms. The two matrices are asserted answer-identical
// on sampled probes (the full bit-identity is pinned by
// TestMatrixScalarSlicedIdenticalRows).
func bruteBuildTable(e Experiment, cfg Config) *stats.Table {
	t := stats.NewTable(header(e)+" — matrix build",
		"n", "candidates", "pool", "scalar build ms", "sliced build ms", "build speedup",
		"raw KB", "compressed KB")

	sweep := []int{2, 3, 4}
	if cfg.Quick {
		sweep = []int{2, 3}
	}
	for _, n := range sweep {
		u := boolean.MustUniverse(n)
		candidates := query.AllQueries(u)
		pool := boolean.AllObjects(u)

		start := time.Now()
		scalar, err := brute.NewMatrixOpts(candidates, pool, brute.MatrixOptions{Scalar: true})
		if err != nil {
			panic(err)
		}
		scalarMS := ms(time.Since(start))

		start = time.Now()
		sliced, err := brute.NewMatrixOpts(candidates, pool, brute.MatrixOptions{})
		if err != nil {
			panic(err)
		}
		slicedMS := ms(time.Since(start))

		compressed, err := brute.NewMatrixOpts(candidates, pool, brute.MatrixOptions{Compress: true})
		if err != nil {
			panic(err)
		}

		rng := rand.New(rand.NewSource(cfg.Seed))
		for probe := 0; probe < 200; probe++ {
			i, j := rng.Intn(len(candidates)), rng.Intn(len(pool))
			a := scalar.Answer(i, j)
			if a != sliced.Answer(i, j) || a != compressed.Answer(i, j) {
				panic("exp: matrix storage variants disagree on an answer bit")
			}
		}
		t.AddRow(n, len(candidates), len(pool), scalarMS, slicedMS, scalarMS/slicedMS,
			float64(sliced.StorageBytes())/1024, float64(compressed.StorageBytes())/1024)
		scalar.Close()
		sliced.Close()
		compressed.Close()
	}
	t.AddNote("one slab evaluation answers a question for 64 candidates at once; storage variants asserted answer-identical on 200 sampled probes per n")
	return t
}

// bruteSampledTable covers the range past exhaustive enumeration:
// n=5, where the candidate set is a seeded sample of the
// role-preserving class (the hidden target always included) and the
// question pool a seeded sample of objects. Elimination may end
// ambiguous — a sampled pool need not separate every candidate pair —
// but an unambiguous winner must be equivalent to the target.
func bruteSampledTable(e Experiment, cfg Config) *stats.Table {
	t := stats.NewTable(header(e)+" — sampled range (n=5)",
		"n", "candidates", "pool", "questions",
		"scalar build ms", "sliced build ms", "build speedup", "learn ms", "ambiguous")
	reg := cfg.registry()

	const n = 5
	nCands, nPool, trials := 2048, 1024, cfg.Trials
	if trials > 5 {
		trials = 5
	}
	if cfg.Quick {
		nCands, nPool, trials = 512, 256, 2
	}
	u := boolean.MustUniverse(n)
	rng := rand.New(rand.NewSource(cfg.Seed))
	candidates := query.SampleQueries(rng, u, nCands)
	pool := boolean.SampleObjects(rng, u, nPool)

	start := time.Now()
	scalar, err := brute.NewMatrixOpts(candidates, pool, brute.MatrixOptions{Scalar: true})
	if err != nil {
		panic(err)
	}
	scalarMS := ms(time.Since(start))
	scalar.Close()

	start = time.Now()
	m, err := brute.NewMatrixOpts(candidates, pool, brute.MatrixOptions{Registry: reg})
	if err != nil {
		panic(err)
	}
	slicedMS := ms(time.Since(start))

	ambiguous := 0
	var questions, learnMS []float64
	for trial := 0; trial < trials; trial++ {
		target := candidates[rng.Intn(len(candidates))]
		c := oracle.CountInto(oracle.Target(target), reg)
		startL := time.Now()
		res, err := m.Learn(c)
		learnMS = append(learnMS, ms(time.Since(startL)))
		switch {
		case err == brute.ErrAmbiguous:
			ambiguous++
		case err != nil:
			panic(err)
		case !res.Learned.Equivalent(target):
			panic("exp: sampled brute learner missed its target")
		}
		questions = append(questions, float64(res.Questions))
	}
	m.Close()
	t.AddRow(n, len(candidates), len(pool), stats.Summarize(questions).Mean,
		scalarMS, slicedMS, scalarMS/slicedMS, stats.Summarize(learnMS).Mean, ambiguous)
	t.AddNote("candidates and objects are seeded samples (query.SampleQueries, boolean.SampleObjects) with the target always a candidate; ambiguous outcomes are tolerated, unambiguous winners asserted equivalent to the target")
	return t
}
