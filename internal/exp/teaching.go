package exp

import (
	"qhorn/internal/boolean"
	"qhorn/internal/query"
	"qhorn/internal/stats"
	"qhorn/internal/verify"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Name:  "teaching-sets",
		Paper: "§5 related work (Goldman–Kearns)",
		Claim: "the O(k) verification sets stay close to the exact minimal teaching sets",
		Run:   runTeachingSets,
	})
}

// runTeachingSets computes, for every two-variable role-preserving
// query, the exact minimal teaching set over the full object space
// and compares its size with the verification set of §4.
func runTeachingSets(cfg Config) []*stats.Table {
	e, _ := ByName("teaching-sets")
	u := boolean.MustUniverse(2)
	class := query.AllQueries(u)
	t := stats.NewTable(header(e),
		"query", "teaching minimum", "verification set", "ratio")
	worst := 0.0
	sumT, sumV := 0, 0
	for _, target := range class {
		teach, ver, err := verify.TeachingLowerBound(target, class)
		if err != nil {
			panic(err)
		}
		ratio := "-"
		if teach > 0 {
			r := float64(ver) / float64(teach)
			ratio = stats.FormatFloat(r)
			if r > worst {
				worst = r
			}
		}
		sumT += teach
		sumV += ver
		t.AddRow(target.String(), teach, ver, ratio)
	}
	t.AddNote("totals: teaching %d vs verification %d; worst ratio %.2f", sumT, sumV, worst)
	t.AddNote("teaching sets are information-theoretically minimal; verification sets trade a small constant for O(k) constructibility")
	return []*stats.Table{t}
}
