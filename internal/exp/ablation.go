package exp

import (
	"math/rand"

	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E16",
		Name:  "ablation",
		Paper: "§3.2.2 design choices",
		Claim: "guarantee-clause seeding and binary-search pruning each reduce the learner's question count",
		Run:   runAblation,
	})
}

// runAblation measures the role-preserving learner with each §3.2.2
// optimization disabled in turn.
func runAblation(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("ablation")
	t := stats.NewTable(header(e),
		"n", "full (mean questions)", "no guarantee seeds", "serial prune", "both off",
		"seeds save", "binary prune saves")
	sizes := []int{8, 12, 16}
	if cfg.Quick {
		sizes = []int{8}
	}
	variants := []learn.Ablations{
		{},
		{NoGuaranteeSeeds: true},
		{SerialPrune: true},
		{NoGuaranteeSeeds: true, SerialPrune: true},
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		sums := make([]float64, len(variants))
		for i := 0; i < cfg.Trials; i++ {
			target := query.GenRolePreserving(rng, n, query.RPOptions{
				Heads: 2, BodiesPerHead: 2, MaxBodySize: 3, Conjs: 4, MaxConjSize: n / 2,
			})
			o := oracle.Target(target)
			for vi, ab := range variants {
				learned, st := learn.RolePreservingAblated(target.U, o, ab)
				if !learned.Equivalent(target) {
					panic("ablated learner lost exactness")
				}
				sums[vi] += float64(st.Total())
			}
		}
		for vi := range sums {
			sums[vi] /= float64(cfg.Trials)
		}
		t.AddRow(n, sums[0], sums[1], sums[2], sums[3],
			stats.FormatFloat(sums[1]-sums[0])+" q", stats.FormatFloat(sums[2]-sums[0])+" q")
	}
	t.AddNote("every variant stays exact; the optimizations only save questions")
	return []*stats.Table{t}
}
