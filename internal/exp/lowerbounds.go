package exp

import (
	"math"

	"qhorn/internal/boolean"
	"qhorn/internal/brute"
	"qhorn/internal/oracle"
	"qhorn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Name:  "alias-lowerbound",
		Paper: "Theorem 2.1",
		Claim: "learning qhorn with repeated variables requires Ω(2^n) questions",
		Run:   runAliasLowerBound,
	})
	register(Experiment{
		ID:    "E5",
		Name:  "pair-lowerbound",
		Paper: "Lemma 3.4",
		Claim: "with c tuples per question, learning existential expressions requires ≈ n²/c² questions",
		Run:   runPairLowerBound,
	})
	register(Experiment{
		ID:    "E6",
		Name:  "body-lowerbound",
		Paper: "Theorem 3.6",
		Claim: "learning the θ universal Horn expressions of a head requires Ω((n/θ)^(θ−1)) questions",
		Run:   runBodyLowerBound,
	})
}

// runAliasLowerBound plays the brute-force learner against the
// Theorem 2.1 adversary over the Uni/Alias class and records that
// every instance costs 2^n − 1 questions.
func runAliasLowerBound(cfg Config) []*stats.Table {
	e, _ := ByName("alias-lowerbound")
	sizes := []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	if cfg.Quick {
		sizes = []int{2, 4, 6, 8}
	}
	t := stats.NewTable(header(e),
		"n", "class size 2^n", "questions forced", "2^n − 1", "match")
	for _, n := range sizes {
		u := boolean.MustUniverse(n)
		class := oracle.AliasClass(u)
		adv := oracle.NewAdversary(class)
		res, err := brute.Learn(class, adv, oracle.AliasQuestions(u))
		if err != nil {
			panic(err)
		}
		want := 1<<uint(n) - 1
		t.AddRow(n, len(class), res.Questions, want, res.Questions == want)
	}
	t.AddNote("each informative question eliminates exactly one candidate: the class is unlearnable in polynomial questions")
	return []*stats.Table{t}
}

// runPairLowerBound plays the brute-force learner against the
// Lemma 3.4 adversary with c-tuple questions: the measured counts
// track C(n,2)/C(c,2).
func runPairLowerBound(cfg Config) []*stats.Table {
	e, _ := ByName("pair-lowerbound")
	// Each c gets its own sweep with n ≫ c, where the cover-design
	// pool's n²/c² shape is visible.
	sweeps := map[int][]int{
		2: {8, 12, 16, 24, 32},
		4: {16, 24, 32, 48},
		8: {32, 48, 64},
	}
	cs := []int{2, 4, 8}
	if cfg.Quick {
		sweeps = map[int][]int{2: {8, 16}, 4: {16, 24}}
		cs = []int{2, 4}
	}
	t := stats.NewTable(header(e),
		"c (tuples/question)", "n", "questions forced", "C(n,2)/C(c,2)", "n²/c²")
	for _, c := range cs {
		var xs, ys []float64
		for _, n := range sweeps[c] {
			u := boolean.MustUniverse(n)
			class := oracle.HeadPairClass(u)
			adv := oracle.NewAdversary(class)
			res, err := brute.Learn(class, adv, headPairPool(u, c))
			if err != nil {
				panic(err)
			}
			pairs := float64(n*(n-1)) / 2
			perQ := float64(c*(c-1)) / 2
			t.AddRow(c, n, res.Questions, pairs/perQ, float64(n*n)/float64(c*c))
			xs = append(xs, float64(n))
			ys = append(ys, float64(res.Questions))
		}
		t.AddNote("c=%d growth exponent %.2f (claim ≈ 2)", c, stats.GrowthExponent(xs, ys))
	}
	return []*stats.Table{t}
}

// headPairPool builds a question pool of c-tuple class-2 questions
// (Lemma 3.4): a block-pair cover so that every variable pair lies in
// some question (≈ 2n²/c² questions), followed by the exhaustive
// 2-tuple questions as tie-breakers for head pairs that no c-subset
// of the cover separates. For c = 2 the cover is already exhaustive.
func headPairPool(u boolean.Universe, c int) []boolean.Set {
	if c <= 2 {
		return oracle.HeadPairQuestions(u, 2)
	}
	n := u.N()
	all := u.All()
	half := c / 2
	var blocks []boolean.Tuple
	for start := 0; start < n; start += half {
		var b boolean.Tuple
		for v := start; v < start+half && v < n; v++ {
			b = b.With(v)
		}
		blocks = append(blocks, b)
	}
	question := func(h boolean.Tuple) boolean.Set {
		tuples := make([]boolean.Tuple, 0, h.Count())
		for _, v := range h.Vars() {
			tuples = append(tuples, all.Without(v))
		}
		return boolean.NewSet(tuples...)
	}
	var pool []boolean.Set
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			pool = append(pool, question(blocks[i].Union(blocks[j])))
		}
	}
	return append(pool, oracle.HeadPairQuestions(u, 2)...)
}

// runBodyLowerBound plays the brute-force learner against the
// Theorem 3.6 adversary: one question per candidate Bθ combination.
func runBodyLowerBound(cfg Config) []*stats.Table {
	e, _ := ByName("body-lowerbound")
	type point struct{ n, theta int }
	points := []point{
		{6, 2}, {8, 2}, {12, 2}, {16, 2},
		{6, 3}, {8, 3}, {12, 3},
		{6, 4}, {9, 4}, {12, 4},
	}
	if cfg.Quick {
		points = []point{{6, 2}, {8, 2}, {6, 3}}
	}
	t := stats.NewTable(header(e),
		"θ", "n (body vars)", "class size (n/(θ−1))^(θ−1)", "questions forced", "(n/θ)^(θ−1)")
	for _, p := range points {
		u := boolean.MustUniverse(p.n + 1)
		class := oracle.BodyClass(u, p.theta)
		adv := oracle.NewAdversary(class)
		pool := bodyLowerBoundQuestions(u, p.theta)
		res, err := brute.Learn(class, adv, pool)
		if err != nil {
			panic(err)
		}
		ref := math.Pow(float64(p.n)/float64(p.theta), float64(p.theta-1))
		t.AddRow(p.theta, p.n, len(class), res.Questions, ref)
	}
	t.AddNote("questions forced = class size − 1: each question eliminates one candidate Bθ")
	return []*stats.Table{t}
}

// bodyLowerBoundQuestions enumerates the only informative questions
// of the Theorem 3.6 proof: for each choice of one variable per fixed
// body, the object {1^(n+1), t} where t sets the chosen variables and
// the head false.
func bodyLowerBoundQuestions(u boolean.Universe, theta int) []boolean.Set {
	n := u.N() - 1
	h := n
	size := n / (theta - 1)
	bodies := make([]boolean.Tuple, theta-1)
	for i := range bodies {
		for v := i * size; v < (i+1)*size; v++ {
			bodies[i] = bodies[i].With(v)
		}
	}
	all := u.All()
	var out []boolean.Set
	var rec func(i int, chosen boolean.Tuple)
	rec = func(i int, chosen boolean.Tuple) {
		if i == len(bodies) {
			out = append(out, boolean.NewSet(all, all.Minus(chosen).Without(h)))
			return
		}
		for _, v := range bodies[i].Vars() {
			rec(i+1, chosen.With(v))
		}
	}
	rec(0, 0)
	return out
}
