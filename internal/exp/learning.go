package exp

import (
	"math"
	"math/rand"

	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/stats"
	"qhorn/internal/verify"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Name:  "qhorn1-scaling",
		Paper: "Theorem 3.1, Lemmas 3.2–3.3",
		Claim: "qhorn-1 queries are learnable with O(n lg n) membership questions; the serial baseline needs O(n²)",
		Run:   runQhorn1Scaling,
	})
	register(Experiment{
		ID:    "E2",
		Name:  "universal-scaling",
		Paper: "Theorem 3.5",
		Claim: "the θ universal Horn expressions of a head are learnable with O(n^θ) questions",
		Run:   runUniversalScaling,
	})
	register(Experiment{
		ID:    "E3",
		Name:  "existential-scaling",
		Paper: "Theorems 3.8 and 3.9",
		Claim: "k existential conjunctions are learnable with O(k·n·lg n) questions against an Ω(nk) information bound",
		Run:   runExistentialScaling,
	})
	register(Experiment{
		ID:    "E11",
		Name:  "learn-vs-verify",
		Paper: "§4 motivation",
		Claim: "verifying a query takes O(k) questions versus O(n^(θ+1) + k·n·lg n) for learning it",
		Run:   runLearnVsVerify,
	})
}

// runQhorn1Scaling measures the qhorn-1 learner's question counts by
// phase across n, against the serial baseline and the n lg n
// reference curve.
func runQhorn1Scaling(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("qhorn1-scaling")
	sizes := []int{8, 12, 16, 24, 32, 48, 64}
	if cfg.Quick {
		sizes = []int{8, 16, 32}
	}
	t := stats.NewTable(header(e),
		"n", "questions (mean)", "head", "body", "existential",
		"serial baseline", "n·lg n", "questions / (n·lg n)")
	var xs, ys, naives []float64
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		var totals, heads, bodiesQ, exists, naiveTotals []int
		for i := 0; i < cfg.Trials; i++ {
			// Small parts give k = Θ(n), the regime where the serial
			// baseline pays its quadratic cost.
			target := query.GenQhorn1Sized(rng, n, 4)
			_, st := learn.Qhorn1(target.U, oracle.Target(target))
			totals = append(totals, st.Total())
			heads = append(heads, st.HeadQuestions)
			bodiesQ = append(bodiesQ, st.BodyQuestions)
			exists = append(exists, st.ExistentialQuestions)
			_, nst := learn.Qhorn1Naive(target.U, oracle.Target(target))
			naiveTotals = append(naiveTotals, nst.Total())
		}
		mean := stats.SummarizeInts(totals).Mean
		naive := stats.SummarizeInts(naiveTotals).Mean
		nlgn := float64(n) * math.Log2(float64(n))
		t.AddRow(n, mean,
			stats.SummarizeInts(heads).Mean,
			stats.SummarizeInts(bodiesQ).Mean,
			stats.SummarizeInts(exists).Mean,
			naive, nlgn, mean/nlgn)
		xs = append(xs, float64(n))
		ys = append(ys, mean)
		naives = append(naives, naive)
	}
	t.AddNote("growth exponent: learner %.2f (n lg n ⇒ ≈1.0–1.4), serial baseline %.2f (n² ⇒ ≈2.0)",
		stats.GrowthExponent(xs, ys), stats.GrowthExponent(xs, naives))
	return []*stats.Table{t}
}

// runUniversalScaling measures phase-2 questions of the
// role-preserving learner for θ ∈ {1,2,3} with body sizes scaling
// with n, so the measured growth shows the n^θ shape of Theorem 3.5.
func runUniversalScaling(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("universal-scaling")
	thetas := []int{1, 2, 3}
	sizes := []int{8, 12, 16, 20, 24}
	if cfg.Quick {
		sizes = []int{8, 12, 16}
	}
	t := stats.NewTable(header(e),
		"θ", "n", "universal questions (mean)", "max", "n^θ", "questions / n^θ")
	for _, theta := range thetas {
		var xs, ys []float64
		for _, n := range sizes {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(1000*theta+n)))
			var qs []int
			for i := 0; i < cfg.Trials; i++ {
				// Bodies of exactly n/4 variables: the regime where
				// the |B1|×…×|Bθ| search roots show the n^θ shape.
				target := query.GenRolePreserving(rng, n, query.RPOptions{
					Heads:         1,
					BodiesPerHead: theta,
					MinBodySize:   maxInt(2, n/4),
					MaxBodySize:   maxInt(2, n/4),
					Conjs:         2,
					MaxConjSize:   n / 2,
				})
				_, st := learn.RolePreserving(target.U, oracle.Target(target))
				qs = append(qs, st.UniversalQuestions)
			}
			s := stats.SummarizeInts(qs)
			ref := math.Pow(float64(n), float64(theta))
			t.AddRow(theta, n, s.Mean, s.Max, ref, s.Mean/ref)
			xs = append(xs, float64(n))
			ys = append(ys, s.Mean)
		}
		t.AddNote("θ=%d growth exponent %.2f (claim ≤ %d)", theta, stats.GrowthExponent(xs, ys), theta)
	}
	return []*stats.Table{t}
}

// runExistentialScaling measures phase-3 questions of the lattice
// learner on conjunction-only targets: sweep n at fixed k and sweep k
// at fixed n, against the k·n·lg n upper bound and the nk/2
// information-theoretic lower bound.
func runExistentialScaling(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("existential-scaling")

	sweepN := stats.NewTable(header(e)+" — sweep n (k = 4)",
		"n", "existential questions (mean)", "k·n·lg n", "n·k/2 lower bound", "questions / (k·n·lg n)")
	sizes := []int{8, 12, 16, 24, 32}
	if cfg.Quick {
		sizes = []int{8, 16}
	}
	const k = 4
	var xs, ys []float64
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		var qs []int
		for i := 0; i < cfg.Trials; i++ {
			target := query.GenConjunctions(rng, n, k, n/2)
			_, st := learn.RolePreserving(target.U, oracle.Target(target))
			qs = append(qs, st.ExistentialQuestions)
		}
		mean := stats.SummarizeInts(qs).Mean
		upper := float64(k) * float64(n) * math.Log2(float64(n))
		lower := float64(n) * float64(k) / 2
		sweepN.AddRow(n, mean, upper, lower, mean/upper)
		xs = append(xs, float64(n))
		ys = append(ys, mean)
	}
	sweepN.AddNote("growth exponent in n: %.2f (claim ≈ 1, up to the lg factor)", stats.GrowthExponent(xs, ys))

	sweepK := stats.NewTable(header(e)+" — sweep k (n = 16)",
		"k", "existential questions (mean)", "k·n·lg n", "questions / k")
	ks := []int{1, 2, 4, 6, 8}
	if cfg.Quick {
		ks = []int{1, 4}
	}
	const n16 = 16
	xs, ys = nil, nil
	for _, kk := range ks {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(100+kk)))
		var qs []int
		for i := 0; i < cfg.Trials; i++ {
			target := query.GenConjunctions(rng, n16, kk, n16/2)
			_, st := learn.RolePreserving(target.U, oracle.Target(target))
			qs = append(qs, st.ExistentialQuestions)
		}
		mean := stats.SummarizeInts(qs).Mean
		upper := float64(kk) * float64(n16) * math.Log2(float64(n16))
		sweepK.AddRow(kk, mean, upper, mean/float64(kk))
		xs = append(xs, float64(kk))
		ys = append(ys, mean)
	}
	sweepK.AddNote("growth exponent in k: %.2f (claim ≈ 1)", stats.GrowthExponent(xs, ys))
	return []*stats.Table{sweepN, sweepK}
}

// runLearnVsVerify puts the same random queries through the learner
// and the verifier, reproducing the §4 motivation that verification
// is O(k) questions while learning is polynomial in n.
func runLearnVsVerify(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("learn-vs-verify")
	t := stats.NewTable(header(e),
		"n", "k (mean)", "learn questions", "verify questions", "learn / verify")
	sizes := []int{8, 12, 16, 24}
	if cfg.Quick {
		sizes = []int{8, 16}
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		var learnQ, verifyQ, ks []int
		for i := 0; i < cfg.Trials; i++ {
			target := query.GenRolePreserving(rng, n, query.RPOptions{
				Heads:         2,
				BodiesPerHead: 2,
				MaxBodySize:   3,
				Conjs:         3,
				MaxConjSize:   n / 2,
			})
			_, st := learn.RolePreserving(target.U, oracle.Target(target))
			learnQ = append(learnQ, st.Total())
			vs, err := verify.Build(target)
			if err != nil {
				panic(err)
			}
			verifyQ = append(verifyQ, len(vs.Questions))
			ks = append(ks, vs.Query.Size())
		}
		lm := stats.SummarizeInts(learnQ).Mean
		vm := stats.SummarizeInts(verifyQ).Mean
		t.AddRow(n, stats.SummarizeInts(ks).Mean, lm, vm, lm/vm)
	}
	t.AddNote("verification stays near-constant in n while learning grows: the point of §4")
	return []*stats.Table{t}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
