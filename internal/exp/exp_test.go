package exp

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 3, Trials: 3, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"qhorn1-scaling", "universal-scaling", "existential-scaling",
		"alias-lowerbound", "pair-lowerbound", "body-lowerbound",
		"verification-cost", "fig7", "fig8", "worked-example",
		"learn-vs-verify", "data-domain",
		"revision", "pac-learning", "noisy-amendment", "ablation", "deep-nesting", "summary", "teaching-sets", "fig5", "partial-verification", "noise-sensitivity",
		"parallel", "kernel", "obs", "serve", "revise", "brute", "load",
	}
	for _, name := range want {
		e, ok := ByName(name)
		if !ok {
			t.Errorf("experiment %q not registered", name)
			continue
		}
		if e.ID == "" || e.Paper == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete: %+v", name, e)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := ByName("E4"); !ok {
		t.Error("lookup by ID failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("lookup of unknown name succeeded")
	}
	if len(Names()) != len(want) {
		t.Error("Names() incomplete")
	}
}

// TestAllExperimentsRun smoke-runs every experiment in quick mode and
// checks each produces at least one non-empty table.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tables := e.Run(quickCfg())
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("table %q has no rows", tb.Title)
				}
				if out := tb.Text(); len(out) == 0 {
					t.Errorf("table %q renders empty", tb.Title)
				}
			}
		})
	}
}

func TestAliasLowerBoundMatches(t *testing.T) {
	e, _ := ByName("alias-lowerbound")
	tables := e.Run(quickCfg())
	for _, row := range tables[0].Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("alias lower bound row mismatch: %v", row)
		}
	}
}

func TestBodyLowerBoundForcesClassSizeMinusOne(t *testing.T) {
	e, _ := ByName("body-lowerbound")
	tables := e.Run(quickCfg())
	for _, row := range tables[0].Rows {
		classSize, err1 := strconv.Atoi(row[2])
		questions, err2 := strconv.Atoi(row[3])
		if err1 != nil || err2 != nil {
			t.Fatalf("unparsable row %v", row)
		}
		if questions != classSize-1 {
			t.Errorf("θ=%s n=%s: %d questions, want class size − 1 = %d",
				row[0], row[1], questions, classSize-1)
		}
	}
}

func TestFig8HasNoMissedCells(t *testing.T) {
	e, _ := ByName("fig8")
	tables := e.Run(quickCfg())
	for _, row := range tables[0].Rows {
		for _, cell := range row {
			if cell == "MISSED" || cell == "FALSE-ALARM" {
				t.Fatalf("Theorem 4.2 violated in Fig 8 reproduction: %v", row)
			}
		}
	}
}

func TestWorkedExampleSelfConsistent(t *testing.T) {
	e, _ := ByName("worked-example")
	tables := e.Run(quickCfg())
	found := false
	for _, n := range tables[0].Notes {
		if strings.Contains(n, "self-consistent: true") {
			found = true
		}
	}
	if !found {
		t.Error("worked example not reported self-consistent")
	}
}

func TestDataDomainLearnsIntendedQuery(t *testing.T) {
	e, _ := ByName("data-domain")
	tables := e.Run(quickCfg())
	run := tables[1]
	if run.Rows[0][2] != "true" {
		t.Errorf("end-to-end learning not equivalent: %v", run.Rows[0])
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.normalize()
	if c.Seed != DefaultConfig.Seed || c.Trials != DefaultConfig.Trials {
		t.Errorf("normalize = %+v", c)
	}
	c = Config{Seed: 9, Trials: 5}.normalize()
	if c.Seed != 9 || c.Trials != 5 {
		t.Errorf("normalize clobbered fields: %+v", c)
	}
}

func TestHeaderFormat(t *testing.T) {
	e, _ := ByName("fig7")
	h := header(e)
	for _, want := range []string{"E8", "fig7", "Fig 7"} {
		if !strings.Contains(h, want) {
			t.Errorf("header %q missing %q", h, want)
		}
	}
}

// TestObsOverheadExperiment checks E24 produces the session-overhead
// gate table plus the per-instrument micro table, with real samples in
// both. The <5% gate itself is enforced inside the experiment (it
// panics on breach), so a clean run here is the gate passing.
func TestObsOverheadExperiment(t *testing.T) {
	e, _ := ByName("obs")
	tables := e.Run(quickCfg())
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2 (session overhead + micro costs)", len(tables))
	}
	session, micro := tables[0], tables[1]
	if !strings.Contains(session.Title, "session overhead") {
		t.Errorf("first table title = %q", session.Title)
	}
	if len(session.Rows) == 0 {
		t.Fatal("session table has no rows")
	}
	for _, row := range session.Rows {
		if len(row) != len(session.Columns) {
			t.Errorf("session row width %d, want %d", len(row), len(session.Columns))
		}
	}
	if !strings.Contains(micro.Title, "instrument micro-costs") {
		t.Errorf("second table title = %q", micro.Title)
	}
	if len(micro.Rows) < 4 {
		t.Errorf("micro table rows = %d, want the per-instrument breakdown", len(micro.Rows))
	}
}

func TestFig5ReproducesPaperTuples(t *testing.T) {
	e, _ := ByName("fig5")
	tables := e.Run(quickCfg())
	arts := tables[1]
	want := map[string]bool{
		"100101": false, "001101": false, "110010": false, // universal
		"100110": false, "111001": false, "011110": false,
		"110011": false, "011011": false, // existential
	}
	for _, row := range arts.Rows {
		tuple := row[len(row)-1]
		if _, ok := want[tuple]; ok {
			want[tuple] = true
		} else {
			t.Errorf("unexpected distinguishing tuple %s", tuple)
		}
	}
	for tuple, seen := range want {
		if !seen {
			t.Errorf("missing distinguishing tuple %s", tuple)
		}
	}
}

func TestSummaryAllPass(t *testing.T) {
	e, _ := ByName("summary")
	tables := e.Run(quickCfg())
	for _, row := range tables[0].Rows {
		if row[len(row)-1] != "PASS" {
			t.Errorf("reproduction gate failed: %v", row)
		}
	}
}
