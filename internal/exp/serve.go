package exp

import (
	"qhorn/internal/load"
	"qhorn/internal/serve"
	"qhorn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E25",
		Name:  "serve",
		Paper: "engineering (docs/SERVICE.md)",
		Claim: "qhornd sustains concurrent HTTP learn sessions with per-session results bit-identical to direct learning; shards scale lookup concurrency",
		Run:   runServe,
	})
}

// runServe measures session throughput of the qhornd server across
// shard counts with the sustained-load harness (internal/load): a
// pinned pool of persistent-connection workers drives the session
// fleet over the batched wire, three trials per shard count with
// distinct seeds, and every learned query is asserted bit-identical
// to a direct learn.Run of the same hidden target — in the run, not
// in a separate test, so a lost answer or duplicated question fails
// the experiment. The stddev column separates real shard scaling from
// scheduler noise, which the old single-trial,
// goroutine-per-session version of this experiment could not.
func runServe(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("serve")
	t := stats.NewTable(header(e)+" — HTTP session throughput vs shard count",
		"shards", "sessions", "questions", "wall ms", "sessions/sec", "stddev", "speedup vs 1 shard")

	shardSweep := []int{1, 2, 4, 8}
	fleet, workers, trials := 192, 8, 3
	if cfg.Quick {
		shardSweep = []int{1, 4}
		fleet, trials = 32, 2
	}

	base := load.Options{
		Sessions: fleet, Workers: workers,
		Targets: 16, MinVars: 4, MaxVars: 6,
		Wire: serve.WireBatched,
		Seed: cfg.Seed, AssertIdentity: true,
	}
	var baseRate float64
	for _, shards := range shardSweep {
		s := trialRates(base, trials, func(opt *load.Options) {
			opt.Config = serve.Config{Shards: shards}
		})
		if shards == shardSweep[0] {
			baseRate = s.rate
		}
		t.AddRow(shards, fleet*trials, s.questions, s.wallMS, s.rate, s.stddev, s.rate/baseRate)
	}
	t.AddNote("sustained-load harness (internal/load): %d sessions per trial over %d pinned persistent-connection workers, batched wire, %d trials per shard count with distinct seeds; sessions/sec is the mean, stddev the population deviation; every learned query (and cold live-question count) asserted bit-identical to a direct learn.Run before the row is accepted", fleet, workers, trials)
	return []*stats.Table{t}
}
