package exp

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"qhorn/internal/difffuzz"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
	"qhorn/internal/serve"
	"qhorn/internal/session"
	"qhorn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E25",
		Name:  "serve",
		Paper: "engineering (docs/SERVICE.md)",
		Claim: "qhornd sustains concurrent HTTP learn sessions with per-session results bit-identical to direct learning; shards scale lookup concurrency",
		Run:   runServe,
	})
}

// runServe measures session throughput of the qhornd server across
// shard counts: a fleet of concurrent clients each creates a session,
// answers its questions over real HTTP with a simulated user, and
// checks the learned query against a direct learn.Run of the same
// hidden query — the correctness assert runs inside the benchmark, so
// a lost answer or a duplicated question fails the experiment, not
// just a test. Throughput is sessions/sec of the whole fleet; the
// questions column is the total membership questions served.
func runServe(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("serve")
	t := stats.NewTable(header(e)+" — HTTP session throughput vs shard count",
		"shards", "sessions", "questions", "wall ms", "sessions/sec")

	shardSweep := []int{1, 2, 4, 8}
	fleet := 48
	if cfg.Quick {
		shardSweep = []int{1, 4}
		fleet = 16
	}

	// One fixed fleet of hidden queries, reused for every shard count
	// so the rows differ only in server configuration.
	rng := rand.New(rand.NewSource(cfg.Seed))
	targets := make([]query.Query, fleet)
	wants := make([]string, fleet)
	for i := range targets {
		targets[i] = difffuzz.GenCase(rng, difffuzz.ClassQhorn1, 4, 5).Hidden
		hist := session.New(oracle.Target(targets[i]))
		q, _ := learn.Run(targets[i].U, hist, run.WithAlgorithm(run.Qhorn1), run.WithBatch())
		wants[i] = q.String()
	}

	for _, shards := range shardSweep {
		srv := serve.New(serve.Config{Shards: shards})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			panic(fmt.Sprintf("exp: serve: %v", err))
		}
		c := serve.NewClient(srv.URL())

		var wg sync.WaitGroup
		errs := make([]error, fleet)
		questions := make([]int, fleet)
		start := time.Now()
		for i := 0; i < fleet; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				target := targets[i]
				info, err := c.Create(serve.CreateRequest{Variables: target.N(), Algorithm: "qhorn1"})
				if err != nil {
					errs[i] = err
					return
				}
				final, err := c.Drive(info.ID, serve.AnswererFor(target.U, oracle.Target(target)), serve.DriveOptions{Poll: 2 * time.Second})
				if err != nil {
					errs[i] = err
					return
				}
				if final.State != serve.StateDone {
					errs[i] = fmt.Errorf("session ended %q: %s", final.State, final.Error)
					return
				}
				// The in-run identity assert: HTTP must not perturb the
				// learn.
				if final.Learned != wants[i] {
					errs[i] = fmt.Errorf("learned %q over HTTP, %q direct", final.Learned, wants[i])
					return
				}
				questions[i] = final.QuestionsOnRecord
			}(i)
		}
		wg.Wait()
		wall := time.Since(start)
		srv.Close()
		totalQ := 0
		for i, err := range errs {
			if err != nil {
				panic(fmt.Sprintf("exp: serve: session %d (target %s): %v", i, targets[i], err))
			}
			totalQ += questions[i]
		}
		ms := float64(wall.Microseconds()) / 1000
		t.AddRow(shards, fleet, totalQ, ms, float64(fleet)/wall.Seconds())
	}
	t.AddNote("fleet of %d concurrent HTTP clients, each learning a hidden qhorn-1 query (4–5 vars) end to end over the wire with an in-process simulated answerer; every learned query is asserted bit-identical to a direct learn.Run of the same target before the row is accepted; same fleet for every shard count", fleet)
	return []*stats.Table{t}
}
