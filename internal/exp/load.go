package exp

import (
	"fmt"
	"math"

	"qhorn/internal/load"
	"qhorn/internal/run"
	"qhorn/internal/serve"
	"qhorn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E28",
		Name:  "load",
		Paper: "engineering (docs/SERVICE.md, sustained load)",
		Claim: "the batched wire and pooled hot path sustain ≥2× session throughput over the single-question baseline at 8 workers, cutting role-preserving round trips ≥3×, with every session bit-identical to a direct learn",
		Run:   runLoad,
	})
}

// runLoad is the sustained-load experiment over internal/load: a
// persistent-connection generator drives concurrent HTTP sessions
// against an in-process qhornd with bit-identity asserted on every
// session (cold learns additionally assert the exact live-question
// count). Three tables:
//
//   - wire modes: single-question wire (the baseline: one question
//     per GET, one answer per POST) vs the batched wire (whole batch
//     per round trip) vs the fused wire (answers+next-batch in one
//     round trip), per algorithm;
//   - shard sweep: session-table shards under the fused wire;
//   - memo tiers: cold sessions vs warm sessions sharing the
//     cross-session memo tier.
func runLoad(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("load")

	sessions, workers := 96, 8
	wires := []serve.WireMode{serve.WireSingle, serve.WireBatched, serve.WireFused}
	shardSweep := []int{1, 2, 4, 8}
	if cfg.Quick {
		sessions = 24
		wires = []serve.WireMode{serve.WireSingle, serve.WireFused}
		shardSweep = []int{1, 8}
	}
	base := load.Options{
		Sessions: sessions, Workers: workers,
		Targets: 12, MinVars: 11, MaxVars: 13,
		Seed: cfg.Seed, AssertIdentity: true,
	}

	// Table 1: wire modes, per algorithm, speedup vs the
	// single-question baseline of the same algorithm.
	wt := stats.NewTable(header(e)+" — wire modes at 8 workers (baseline: single-question wire)",
		"alg/wire", "sessions", "questions", "wall ms", "sessions/sec", "speedup vs single", "rt/session", "rt reduction")
	for _, alg := range []run.Algorithm{run.Qhorn1, run.RolePreserving} {
		var baseRate, baseRT float64
		for _, wire := range wires {
			opt := base
			opt.Algorithm, opt.Wire = alg, wire
			rep := mustLoad(opt)
			rtPerSession := float64(rep.RoundTrips) / float64(rep.Sessions)
			if wire == serve.WireSingle {
				baseRate, baseRT = rep.SessionsPerSec, rtPerSession
			}
			wt.AddRow(fmt.Sprintf("%s/%s", alg, wire), rep.Sessions, rep.Questions,
				float64(rep.Wall.Microseconds())/1000,
				rep.SessionsPerSec, rep.SessionsPerSec/baseRate,
				rtPerSession, baseRT/rtPerSession)
		}
	}
	wt.AddNote("%d sessions over %d persistent-connection workers per row, hidden targets on 11–13 variables; identical target pool per algorithm across wire modes; every session's learned query (and, cold, its live-question count) asserted bit-identical to direct learn.Run in-run", sessions, workers)

	// Table 2: shard sweep under the fused wire, mean ± stddev over
	// trials, speedup vs 1 shard.
	trials := 3
	if cfg.Quick {
		trials = 2
	}
	st := stats.NewTable(header(e)+" — session-table shard sweep (fused wire)",
		"shards", "sessions", "wall ms", "sessions/sec", "stddev", "speedup vs 1 shard")
	var shardBase float64
	for _, shards := range shardSweep {
		s := trialRates(base, trials, func(opt *load.Options) {
			opt.Wire = serve.WireFused
			opt.Config = serve.Config{Shards: shards}
		})
		if shards == shardSweep[0] {
			shardBase = s.rate
		}
		st.AddRow(shards, sessions*trials, s.wallMS, s.rate, s.stddev, s.rate/shardBase)
	}
	st.AddNote("%d trials per shard count (distinct seeds), %d sessions each; sessions/sec is the mean over trials, stddev the population deviation", trials, sessions)

	// Table 3: cold vs warm memo tier. Warm sessions share a
	// per-target oracle identity, so the server's cross-session memo
	// answers repeated questions without touching the wire.
	mt := stats.NewTable(header(e)+" — cold vs warm memo tier (fused wire)",
		"mix", "sessions", "wall ms", "sessions/sec", "rt/session", "answer posts")
	for _, warm := range []float64{0, 0.75} {
		opt := base
		opt.Wire = serve.WireFused
		opt.WarmFrac = warm
		rep := mustLoad(opt)
		label := "cold"
		if warm > 0 {
			label = fmt.Sprintf("%.0f%% warm", warm*100)
		}
		mt.AddRow(label, rep.Sessions,
			float64(rep.Wall.Microseconds())/1000,
			rep.SessionsPerSec, float64(rep.RoundTrips)/float64(rep.Sessions),
			rep.HTTP["answers"].Count)
	}
	mt.AddNote("warm sessions attach to a shared per-target user, so the server's cross-session memo tier answers previously-settled questions before they reach the wire — fewer answer POSTs and round trips per session; identity asserts still require the identical learned query")

	return []*stats.Table{wt, st, mt}
}

// mustLoad runs the load generator, converting any failure — drive
// errors and bit-identity mismatches alike — into an experiment
// panic.
func mustLoad(opt load.Options) load.Report {
	rep, err := load.Run(opt)
	if err != nil {
		panic(fmt.Sprintf("exp: load: %v", err))
	}
	return rep
}

// trialSummary aggregates repeated load runs: mean sessions/sec with
// its population stddev, summed wall milliseconds, and summed
// questions.
type trialSummary struct {
	rate, stddev, wallMS float64
	questions            int64
}

// trialRates runs the load generator trials times with distinct
// seeds and aggregates.
func trialRates(base load.Options, trials int, mutate func(*load.Options)) trialSummary {
	var s trialSummary
	rates := make([]float64, trials)
	for tr := 0; tr < trials; tr++ {
		opt := base
		opt.Seed = base.Seed + int64(tr)
		mutate(&opt)
		rep := mustLoad(opt)
		rates[tr] = rep.SessionsPerSec
		s.rate += rep.SessionsPerSec
		s.wallMS += float64(rep.Wall.Microseconds()) / 1000
		s.questions += rep.Questions
	}
	s.rate /= float64(trials)
	for _, r := range rates {
		s.stddev += (r - s.rate) * (r - s.rate)
	}
	s.stddev = math.Sqrt(s.stddev / float64(trials))
	return s
}
