package exp

import (
	"math/rand"
	"sort"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/obs"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
	"qhorn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E24",
		Name:  "obs",
		Paper: "engineering (docs/OBSERVABILITY.md)",
		Claim: "the always-on observability plane (latency histograms + span flight recorder) costs under 5% of session wall time",
		Run:   runObs,
	})
}

// obsOverheadLimit is the in-run acceptance gate: the median session
// overhead of the full observability plane must stay below this
// fraction of the bare run.
const obsOverheadLimit = 0.05

// runObs measures what the live observability plane costs: the same
// learning session runs bare and fully instrumented (question counter,
// ask-latency and phase histograms, span stream into a flight
// recorder — exactly the plane -obs-addr turns on), and the overhead
// is the relative wall-time difference. The session's user answers
// with a fixed think time, conservative against any real user (§2.1.2
// measures humans in seconds); the second table prices the individual
// instruments in ns/op so the overhead can be decomposed. The run
// panics if the median overhead breaches obsOverheadLimit, so
// `qhornexp -exp obs -json` (BENCH_obs.json) is self-gating.
func runObs(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("obs")
	return []*stats.Table{obsSessionTable(e, cfg), obsMicroTable(e, cfg)}
}

// obsThinkTime is the simulated user's per-answer think time in the
// session-overhead table. 100µs is three to four orders of magnitude
// faster than a human answering membership questions, so the measured
// overhead is a hard upper bound on what an interactive session pays.
const obsThinkTime = 100 * time.Microsecond

// obsSessionTable times full qhorn1 learning sessions bare vs
// instrumented and gates the median overhead.
func obsSessionTable(e Experiment, cfg Config) *stats.Table {
	t := stats.NewTable(header(e)+" — session overhead (simulated user)",
		"n", "questions", "bare ms", "instrumented ms", "overhead %", "spans", "ask samples")

	sweep := []int{12, 16}
	reps := 3
	if cfg.Quick {
		sweep = []int{12}
		reps = 2
	}
	trials := cfg.Trials
	if trials > 8 {
		trials = 8 // each trial runs reps×2 latency-bound sessions
	}
	for _, n := range sweep {
		rng := rand.New(rand.NewSource(cfg.Seed))
		u := boolean.MustUniverse(n)
		var questions, bareMS, instMS []float64
		var spans uint64
		var askSamples uint64
		for trial := 0; trial < trials; trial++ {
			target := query.GenQhorn1(rng, n)
			user := func() oracle.Oracle {
				inner := oracle.Target(target)
				return oracle.Func(func(s boolean.Set) bool {
					time.Sleep(obsThinkTime)
					return inner.Ask(s)
				})
			}

			// Min over reps suppresses scheduler noise; the arms
			// alternate so neither systematically benefits from cache
			// warmth.
			var bareBest, instBest float64
			var asked int
			for r := 0; r < reps; r++ {
				start := time.Now()
				_, st := learn.Run(u, user(), run.WithAlgorithm(run.Qhorn1))
				ms := float64(time.Since(start).Microseconds()) / 1000
				if r == 0 || ms < bareBest {
					bareBest = ms
				}
				asked = st.Total()

				reg := obs.NewRegistry()
				flight := obs.NewFlightRecorder(0)
				tracer := obs.NewTracer(flight)
				start = time.Now()
				learn.Run(u, user(),
					run.WithAlgorithm(run.Qhorn1),
					run.WithInstrumentation(run.Instrumentation{Spans: tracer, Metrics: reg}),
					run.WithCounter())
				ms = float64(time.Since(start).Microseconds()) / 1000
				if r == 0 || ms < instBest {
					instBest = ms
				}
				if r == reps-1 {
					_, completed, dropped := flight.Snapshot()
					spans += dropped + uint64(len(completed))
					askSamples += reg.Histogram(obs.MetricOracleAskSeconds, obs.LatencyBuckets).Count()
				}
			}
			questions = append(questions, float64(asked))
			bareMS = append(bareMS, bareBest)
			instMS = append(instMS, instBest)
		}
		bm := median(bareMS)
		im := median(instMS)
		overhead := (im - bm) / bm
		t.AddRow(n, stats.Summarize(questions).Mean, bm, im, overhead*100, spans, askSamples)
		if overhead > obsOverheadLimit {
			panic("exp: observability plane overhead breached the 5% gate")
		}
	}
	t.AddNote("simulated user think time per answer: %v (orders of magnitude below human latency, so the %% is an upper bound); instrumented arm = question counter + ask-latency and phase histograms + span stream into a flight recorder, the exact plane -obs-addr enables; medians over %d trials, min of %d reps each; gate: overhead < %.0f%%", obsThinkTime, trials, reps, obsOverheadLimit*100)
	return t
}

// obsMicroTable prices the individual instruments: the cost one
// membership question pays for each piece of the plane, with no user
// latency to hide behind.
func obsMicroTable(e Experiment, cfg Config) *stats.Table {
	t := stats.NewTable(header(e)+" — instrument micro-costs",
		"operation", "ops", "ns/op")

	ops := 200000
	if cfg.Quick {
		ops = 50000
	}
	reg := obs.NewRegistry()
	counter := reg.Counter(obs.MetricQuestions)
	hist := reg.Histogram(obs.MetricOracleAskSeconds, obs.LatencyBuckets)
	flight := obs.NewFlightRecorder(0)
	tracer := obs.NewTracer(flight)
	root := tracer.StartSpan("micro")

	bench := func(name string, f func()) {
		start := time.Now()
		for i := 0; i < ops; i++ {
			f()
		}
		t.AddRow(name, ops, float64(time.Since(start).Nanoseconds())/float64(ops))
	}
	bench("counter Inc", func() { counter.Inc() })
	bench("histogram Observe", func() { hist.Observe(42e-6) })
	bench("timed histogram Observe", func() {
		start := time.Now()
		hist.Observe(time.Since(start).Seconds())
	})
	bench("span event (flight recorder)", func() {
		root.Event("question", obs.A("phase", "heads"), obs.A("answer", "answer"))
	})
	bench("span start+end (flight recorder)", func() {
		root.StartChild("phase").End()
	})
	root.End()

	t.AddNote("single-goroutine costs of each instrument on this machine; a session pays roughly one counter + one timed histogram + one span event per question, and one span pair per phase")
	return t
}

// median returns the middle value of xs (mean of the middle two for
// even lengths); 0 for an empty sample.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
