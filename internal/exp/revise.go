package exp

import (
	"math/rand"
	"time"

	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/revise"
	"qhorn/internal/session"
	"qhorn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E26",
		Name:  "revise",
		Paper: "§5 amendment + §6 revision (docs/SERVICE.md fast path)",
		Claim: "replaying a settled session through revision repairs a one-clause target drift with ≥30% fewer questions than relearning cold",
		Run:   runReviseReplay,
	})
}

// runReviseReplay measures the qhornd amendment fast path end to end,
// without the HTTP in the way: learn a target with full history, drift
// the target by one clause, amend the recorded answers the drift
// invalidated (the §5 loop), and revise the prior learned query over
// the replayed history — against relearning the drifted target from
// nothing. Warm questions are only the live ones (replays are free);
// the correctness asserts run inside the benchmark, so a wrong
// revision fails the experiment, not just a table row.
func runReviseReplay(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("revise")
	t := stats.NewTable(header(e)+" — one-clause-drift replay, warm revision vs cold relearn",
		"n", "history (mean)", "cold questions", "warm questions", "question speedup",
		"questions saved", "cold ms", "warm ms", "escalations")
	sizes := []int{8, 10, 12}
	if cfg.Quick {
		sizes = []int{8}
	}
	opts := query.RPOptions{Heads: 2, BodiesPerHead: 1, MaxBodySize: 3, Conjs: 3, MaxConjSize: 5}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		var histLens, coldQs, warmQs []int
		var coldMS, warmMS []float64
		escalations := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			// The original target and a one-clause drift of it; harmless
			// drifts (equivalent queries) are redrawn so every trial
			// actually damages the prior result.
			original := query.GenRolePreserving(rng, n, opts)
			drifted := query.Mutate(rng, original, 1)
			for attempts := 0; drifted.Equivalent(original); attempts++ {
				if attempts > 100 {
					panic("exp: revise: no inequivalent one-clause drift found")
				}
				drifted = query.Mutate(rng, original, 1)
			}

			// Session 1: learn the original, keeping the full history.
			hist := session.New(oracle.Target(original))
			prior, _ := learn.RolePreserving(original.U, hist)

			// The drift arrives: recorded answers the drifted target
			// would give differently are amended, and the history
			// re-inners onto the drifted oracle — exactly how a qhornd
			// session replays after its user's world changed.
			driftedOracle := oracle.Target(drifted)
			if err := hist.AmendAll(hist.InconsistentWith(driftedOracle.Ask)); err != nil {
				panic(err)
			}
			enc, err := hist.EncodeJSON(original.U)
			if err != nil {
				panic(err)
			}
			warmHist, _, err := session.DecodeJSON(enc, driftedOracle)
			if err != nil {
				panic(err)
			}

			// Warm: revise the prior learned query over the replayed
			// history; only never-recorded questions go live.
			start := time.Now()
			res, err := revise.Revise(prior, warmHist)
			if err != nil {
				panic(err)
			}
			warmMS = append(warmMS, float64(time.Since(start).Microseconds())/1000)
			if !res.Revised.Equivalent(drifted) {
				panic("exp: revise: revision produced the wrong query")
			}
			if res.Escalated {
				escalations++
			}
			warmQs = append(warmQs, warmHist.LiveQuestions)

			// Cold: relearn the drifted target from nothing.
			c := oracle.Count(driftedOracle)
			start = time.Now()
			cold, _ := learn.RolePreserving(drifted.U, c)
			coldMS = append(coldMS, float64(time.Since(start).Microseconds())/1000)
			if !cold.Equivalent(drifted) {
				panic("exp: revise: cold relearn produced the wrong query")
			}
			coldQs = append(coldQs, c.Questions)
			histLens = append(histLens, hist.Len())
		}
		cq := stats.SummarizeInts(coldQs).Mean
		wq := stats.SummarizeInts(warmQs).Mean
		t.AddRow(n, stats.SummarizeInts(histLens).Mean, cq, wq, cq/wq,
			stats.FormatFloat((1-wq/cq)*100)+"%",
			stats.Summarize(coldMS).Mean, stats.Summarize(warmMS).Mean, escalations)
	}
	t.AddNote("warm questions are the live (non-replayed) questions of a revision over the amended history; cold questions relearn the drifted target from nothing; question speedup is cold/warm")
	return []*stats.Table{t}
}
