package exp

import (
	"math/rand"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/pac"
	"qhorn/internal/query"
	"qhorn/internal/revise"
	"qhorn/internal/session"
	"qhorn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Name:  "revision",
		Paper: "§6 future work (revision)",
		Claim: "a query close to the intended one is corrected with far fewer questions than learning from scratch",
		Run:   runRevision,
	})
	register(Experiment{
		ID:    "E14",
		Name:  "pac-learning",
		Paper: "§6 future work (PAC)",
		Claim: "random labeled examples learn the query approximately; error falls with sample size",
		Run:   runPAC,
	})
	register(Experiment{
		ID:    "E15",
		Name:  "noisy-amendment",
		Paper: "§5 (noisy users)",
		Claim: "with a response history, amending a mistaken answer recovers the exact query at the cost of the replay suffix only",
		Run:   runNoisyAmendment,
	})
}

// runRevision edits random queries by a controlled number of
// expressions and compares revision cost against full re-learning,
// bucketed by the paper's distinguishing-tuple distance.
func runRevision(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("revision")
	t := stats.NewTable(header(e),
		"edits", "distance (mean)", "revise questions", "learn questions", "revise / learn", "escalations")
	const n = 12
	editCounts := []int{0, 1, 2, 4}
	if cfg.Quick {
		editCounts = []int{0, 1}
	}
	for _, edits := range editCounts {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(edits)))
		var reviseQ, learnQ, dists []int
		escalations := 0
		for i := 0; i < cfg.Trials; i++ {
			intended := query.GenRolePreserving(rng, n, query.RPOptions{
				Heads: 2, BodiesPerHead: 1, MaxBodySize: 3, Conjs: 3, MaxConjSize: 5,
			})
			given := query.Mutate(rng, intended, edits)
			res, err := revise.Revise(given, oracle.Target(intended))
			if err != nil {
				panic(err)
			}
			if !res.Revised.Equivalent(intended) {
				panic("revision produced wrong query")
			}
			if res.Escalated {
				escalations++
			}
			reviseQ = append(reviseQ, res.Questions())
			c := oracle.Count(oracle.Target(intended))
			learn.RolePreserving(intended.U, c)
			learnQ = append(learnQ, c.Questions)
			dists = append(dists, revise.Distance(given, intended))
		}
		rm := stats.SummarizeInts(reviseQ).Mean
		lm := stats.SummarizeInts(learnQ).Mean
		t.AddRow(edits, stats.SummarizeInts(dists).Mean, rm, lm, rm/lm, escalations)
	}
	t.AddNote("0 edits = pure verification: the O(k) floor of §4")
	return []*stats.Table{t}
}

// runPAC measures hypothesis error against sample size under the
// boundary distribution.
func runPAC(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("pac-learning")
	t := stats.NewTable(header(e),
		"samples m", "positives (mean)", "error (mean)", "error (max)", "runs with error ≤ 0.05")
	sizes := []int{10, 30, 100, 300, 1000}
	if cfg.Quick {
		sizes = []int{10, 100}
	}
	const n = 6
	for _, m := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(m)))
		var errs []float64
		var positives []int
		good := 0
		for i := 0; i < cfg.Trials; i++ {
			u := boolean.MustUniverse(n)
			target := query.GenRolePreserving(rng, n, query.RPOptions{
				Heads: 1, BodiesPerHead: 1, MaxBodySize: 2, Conjs: 2, MaxConjSize: 3,
			})
			train := pac.NewBoundarySampler(target, rng, 2)
			h, st := pac.Learn(u, oracle.Target(target), train, m, pac.Params{})
			test := pac.NewBoundarySampler(target, rand.New(rand.NewSource(cfg.Seed+int64(1000+i))), 2)
			err := pac.Error(h, target, test, 1000)
			errs = append(errs, err)
			positives = append(positives, st.Positives)
			if err <= 0.05 {
				good++
			}
		}
		s := stats.Summarize(errs)
		t.AddRow(m, stats.SummarizeInts(positives).Mean, s.Mean, s.Max,
			stats.FormatFloat(float64(good))+"/"+stats.FormatFloat(float64(cfg.Trials)))
	}
	t.AddNote("most-specific hypothesis from positive examples; error measured on 1000 fresh draws from the same distribution")
	return []*stats.Table{t}
}

// runNoisyAmendment simulates a user who misanswers one question,
// reviews the history, fixes it, and re-runs the learner.
func runNoisyAmendment(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	e, _ := ByName("noisy-amendment")
	t := stats.NewTable(header(e),
		"n", "trials", "lie corrupted result", "recovered after amendment", "replayed questions (mean)", "new questions (mean)")
	sizes := []int{4, 6, 8}
	if cfg.Quick {
		sizes = []int{4}
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		corrupted, recovered := 0, 0
		var replayed, fresh []int
		for i := 0; i < cfg.Trials; i++ {
			target := query.GenRolePreserving(rng, n, query.RPOptions{
				Heads: 1, BodiesPerHead: 1, MaxBodySize: 2, Conjs: 2, MaxConjSize: 3,
			})
			truth := oracle.Target(target)
			lieAt := 1 + rng.Intn(10)
			asked := 0
			liar := oracle.Func(func(q boolean.Set) bool {
				asked++
				a := truth.Ask(q)
				if asked == lieAt {
					return !a
				}
				return a
			})
			s := session.New(liar)
			first, _ := learn.RolePreserving(target.U, s)
			if first.Equivalent(target) {
				continue // lie was harmless
			}
			corrupted++
			for j, entry := range s.Entries() {
				if truth.Ask(entry.Question) != entry.Answer {
					if err := s.Amend(j); err != nil {
						panic(err)
					}
				}
			}
			historyBefore := s.Len()
			s.ResetRun()
			again, _ := learn.RolePreserving(target.U, s)
			if again.Equivalent(target) {
				recovered++
			}
			fresh = append(fresh, s.LiveQuestions)
			replayed = append(replayed, historyBefore)
		}
		t.AddRow(n, cfg.Trials, corrupted, recovered,
			stats.SummarizeInts(replayed).Mean, stats.SummarizeInts(fresh).Mean)
	}
	t.AddNote("replayed questions are answered from the corrected history at zero user cost (§5)")
	return []*stats.Table{t}
}
