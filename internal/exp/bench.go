package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
	"time"

	"qhorn/internal/stats"
)

// BenchTable is the JSON rendering of one stats.Table. Key is the
// short identifier ("t1", "t2", …) the per-measurement entries
// (question_counts, growth_exponents) reference; Title stays here in
// full — tools/benchgate matches rows by it.
type BenchTable struct {
	Key     string     `json:"key"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// GrowthExponent is one measured growth exponent extracted from a
// table note, e.g. 1.18 from "growth exponent: learner 1.18 (…)".
// Table is the short table key; the summary's table_legend maps it to
// the full title.
type GrowthExponent struct {
	Table string  `json:"table"`
	Note  string  `json:"note"`
	Value float64 `json:"value"`
}

// QuestionCount is one aggregated question-count measurement: all
// rows of a table sharing the same sweep-parameter value (first
// column) collapse into one entry with the mean and standard deviation
// of their "questions" column. Tables whose rows vary a second
// dimension (e.g. the worker count of E22) previously emitted one
// identical entry per row; aggregation keeps exactly one per
// (table, param, param_value).
type QuestionCount struct {
	// Table is the short table key ("t1", "t2", …); the summary's
	// table_legend maps it to the full title. Repeating the multi-line
	// titles here once bloated every BENCH file.
	Table    string `json:"table"`
	Param    string `json:"param"`       // first column header, e.g. "n"
	ParamVal string `json:"param_value"` // e.g. "32"
	// Questions is the mean over the aggregated rows.
	Questions float64 `json:"questions"`
	// Stddev is the population standard deviation over the aggregated
	// rows; 0 when every row agrees (the common case: the question
	// count is a determinism invariant across the second dimension).
	Stddev float64 `json:"stddev"`
	// Samples is the number of table rows aggregated into this entry.
	Samples int `json:"samples"`
}

// BenchSummary is the machine-readable result of one experiment run,
// written by `qhornexp -json` as BENCH_<experiment>.json.
type BenchSummary struct {
	Experiment  string  `json:"experiment"`
	ID          string  `json:"id"`
	Paper       string  `json:"paper"`
	Claim       string  `json:"claim"`
	Seed        int64   `json:"seed"`
	Trials      int     `json:"trials"`
	Quick       bool    `json:"quick"`
	WallSeconds float64 `json:"wall_seconds"`

	// TableLegend maps the short table keys used by GrowthExponents
	// and QuestionCounts to the full table titles, stated once.
	TableLegend     map[string]string `json:"table_legend,omitempty"`
	GrowthExponents []GrowthExponent  `json:"growth_exponents,omitempty"`
	QuestionCounts  []QuestionCount   `json:"question_counts,omitempty"`
	Tables          []BenchTable      `json:"tables"`
}

// FileName returns the canonical output name, BENCH_<experiment>.json.
func (s *BenchSummary) FileName() string {
	return fmt.Sprintf("BENCH_%s.json", s.Experiment)
}

// WriteJSON writes the summary as indented JSON.
func (s *BenchSummary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Bench runs e under cfg, timing the run and extracting the
// machine-readable measurements from its tables.
func Bench(e Experiment, cfg Config) (*BenchSummary, []*stats.Table) {
	cfg = cfg.normalize()
	start := time.Now()
	tables := e.Run(cfg)
	return Summarize(e, cfg, tables, time.Since(start)), tables
}

// measuredExponent matches the %.2f-formatted exponents the
// experiments put in their notes; claim references like "≈ 1" or
// "n²" never carry two decimals, so they are not captured.
var measuredExponent = regexp.MustCompile(`-?\d+\.\d{2}`)

// Summarize builds a BenchSummary from an experiment's tables: growth
// exponents are taken from every note mentioning one, and question
// counts from the first column whose header names questions.
func Summarize(e Experiment, cfg Config, tables []*stats.Table, wall time.Duration) *BenchSummary {
	s := &BenchSummary{
		Experiment:  e.Name,
		ID:          e.ID,
		Paper:       e.Paper,
		Claim:       e.Claim,
		Seed:        cfg.Seed,
		Trials:      cfg.Trials,
		Quick:       cfg.Quick,
		WallSeconds: wall.Seconds(),
	}
	for ti, t := range tables {
		key := fmt.Sprintf("t%d", ti+1)
		if s.TableLegend == nil {
			s.TableLegend = map[string]string{}
		}
		s.TableLegend[key] = t.Title
		s.Tables = append(s.Tables, BenchTable{
			Key:     key,
			Title:   t.Title,
			Columns: t.Columns,
			Rows:    t.Rows,
			Notes:   t.Notes,
		})
		for _, note := range t.Notes {
			if !strings.Contains(note, "growth exponent") {
				continue
			}
			for _, m := range measuredExponent.FindAllString(note, -1) {
				v, err := strconv.ParseFloat(m, 64)
				if err != nil {
					continue
				}
				s.GrowthExponents = append(s.GrowthExponents, GrowthExponent{
					Table: key,
					Note:  note,
					Value: v,
				})
			}
		}
		qCol := questionColumn(t.Columns)
		if qCol < 0 {
			continue
		}
		param := ""
		if len(t.Columns) > 0 {
			param = t.Columns[0]
		}
		// Aggregate per parameter value: rows differing only in a
		// second sweep dimension (workers, options, …) collapse into
		// one entry with mean and stddev.
		type agg struct {
			sum, sumSq float64
			n          int
		}
		byVal := map[string]*agg{}
		var order []string
		for _, row := range t.Rows {
			if qCol >= len(row) || len(row) == 0 {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(row[qCol]), 64)
			if err != nil {
				continue
			}
			a := byVal[row[0]]
			if a == nil {
				a = &agg{}
				byVal[row[0]] = a
				order = append(order, row[0])
			}
			a.sum += v
			a.sumSq += v * v
			a.n++
		}
		for _, val := range order {
			a := byVal[val]
			mean := a.sum / float64(a.n)
			variance := a.sumSq/float64(a.n) - mean*mean
			if variance < 0 {
				variance = 0 // float rounding
			}
			s.QuestionCounts = append(s.QuestionCounts, QuestionCount{
				Table:     key,
				Param:     param,
				ParamVal:  val,
				Questions: mean,
				Stddev:    math.Sqrt(variance),
				Samples:   a.n,
			})
		}
	}
	return s
}

// questionColumn returns the index of the first column reporting a
// question count ("questions", "questions (mean)", …) but not a
// derived ratio, or -1.
func questionColumn(cols []string) int {
	for i, c := range cols {
		lc := strings.ToLower(c)
		if strings.Contains(lc, "question") && !strings.Contains(lc, "/") {
			return i
		}
	}
	return -1
}
