package exp

import (
	"qhorn/internal/boolean"
	"qhorn/internal/deep"
	"qhorn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Name:  "deep-nesting",
		Paper: "§6 future work (multi-level nesting)",
		Claim: "the query space and question complexity blow up with nesting depth, which is why the paper stops at single-level nesting",
		Run:   runDeepNesting,
	})
}

// runDeepNesting measures, for tiny universes, how many semantically
// distinct prefix-quantified queries exist per nesting depth and how
// many membership questions exhaustive elimination needs in the worst
// case.
func runDeepNesting(cfg Config) []*stats.Table {
	e, _ := ByName("deep-nesting")
	t := stats.NewTable(header(e),
		"n", "depth", "objects", "distinct queries (≤2 exprs)", "worst-case elimination questions")
	type point struct{ n, depth int }
	points := []point{{1, 1}, {1, 2}, {2, 1}}
	if !cfg.Quick {
		points = append(points, point{2, 2})
	}
	for _, p := range points {
		u := boolean.MustUniverse(p.n)
		objects := deep.AllObjects(u, p.depth)
		queries := deep.AllQueries(u, p.depth)
		worst := 0
		for _, target := range queries {
			_, q := deep.EliminationLearn(queries, target, objects)
			if q > worst {
				worst = q
			}
		}
		t.AddRow(p.n, p.depth, len(objects), len(queries), worst)
	}
	t.AddNote("queries capped at two expressions per candidate; the growth from depth 1 to 2 is the point")
	return []*stats.Table{t}
}
