package exp

import (
	"math/rand"
	"time"

	"qhorn/internal/boolean"
	"qhorn/internal/learn"
	"qhorn/internal/oracle"
	"qhorn/internal/query"
	"qhorn/internal/run"
	"qhorn/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E22",
		Name:  "parallel",
		Paper: "§2.1.2 (user latency) + docs/PARALLELISM.md",
		Claim: "batching independent questions cuts learning wall time near-linearly in workers while asking exactly the serial questions",
		Run:   runParallel,
	})
}

// runParallel measures the parallel batched question engine against a
// latency-simulating user: each answer costs a fixed think time, the
// dominant cost of any interactive session. For each worker count the
// serial and the batched learner run on the same targets; the engine's
// determinism contract — identical question counts — is asserted on
// every trial, so the speedup column never trades correctness for wall
// time.
func runParallel(cfg Config) []*stats.Table {
	cfg = cfg.normalize()
	reg := cfg.registry()
	e, _ := ByName("parallel")

	const n = 10
	delay := 200 * time.Microsecond
	workerSweep := []int{1, 2, 4, 8}
	if cfg.Quick {
		delay = 50 * time.Microsecond
		workerSweep = []int{1, 4}
	}
	if cfg.Parallel > 0 {
		workerSweep = []int{cfg.Parallel}
	}

	t := stats.NewTable(header(e),
		"class", "workers", "questions", "serial ms", "parallel ms", "speedup")
	type learner struct {
		alg run.Algorithm
		gen func(rng *rand.Rand) query.Query
	}
	learners := []learner{
		{
			alg: run.Qhorn1,
			gen: func(rng *rand.Rand) query.Query { return query.GenQhorn1(rng, n) },
		},
		{
			alg: run.RolePreserving,
			gen: func(rng *rand.Rand) query.Query {
				return query.GenRolePreserving(rng, n, query.RPOptions{
					Heads: 3, BodiesPerHead: 2, MaxBodySize: 3, Conjs: 2, MaxConjSize: 4,
				})
			},
		},
	}
	for _, l := range learners {
		for _, workers := range workerSweep {
			rng := rand.New(rand.NewSource(cfg.Seed))
			var questions, serialMS, parallelMS []float64
			for trial := 0; trial < cfg.Trials; trial++ {
				target := l.gen(rng)
				slowUser := func() oracle.Oracle {
					inner := oracle.Target(target)
					return oracle.Func(func(s boolean.Set) bool {
						time.Sleep(delay)
						return inner.Ask(s)
					})
				}

				sc := oracle.CountInto(slowUser(), reg)
				start := time.Now()
				sq, _ := learn.Run(target.U, sc, run.WithAlgorithm(l.alg))
				serialMS = append(serialMS, float64(time.Since(start).Microseconds())/1000)

				pc := oracle.CountInto(slowUser(), reg)
				start = time.Now()
				pq, _ := learn.Run(target.U, oracle.ParallelInto(pc, workers, reg),
					run.WithAlgorithm(l.alg), run.WithBatch())
				parallelMS = append(parallelMS, float64(time.Since(start).Microseconds())/1000)

				if !pq.Equivalent(sq) {
					panic("parallel learner diverged from serial output")
				}
				if pc.Questions != sc.Questions {
					panic("parallel learner broke the question-count contract")
				}
				questions = append(questions, float64(sc.Questions))
			}
			qm := stats.Summarize(questions).Mean
			sm := stats.Summarize(serialMS).Mean
			pm := stats.Summarize(parallelMS).Mean
			t.AddRow(l.alg.String(), workers, qm, sm, pm, sm/pm)
		}
	}
	t.AddNote("simulated user think time per answer: %v; question counts asserted identical serial vs parallel on every trial", delay)
	return []*stats.Table{t}
}
